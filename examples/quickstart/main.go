// Quickstart: train GTV on a built-in dataset split across two clients and
// print quality metrics for the joint synthetic table.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ml"
	"repro/internal/stats"
)

func main() {
	// 1. A dataset: 800 rows shaped like UCI Adult (ten features + income
	//    target). In a real deployment each party loads its own columns.
	d, err := datasets.Generate("adult", datasets.Config{Rows: 800, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := d.TrainTestSplit(rand.New(rand.NewSource(7)), 0.2)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Split columns across two clients and build the GTV system with the
	//    paper's preferred partition (discriminator on the server,
	//    generator on the clients).
	assignment, err := core.EvenAssignment(train.Cols(), 2)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Rounds = 300
	g, err := core.NewFromAssignment(train, assignment, 2, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train (Algorithm 1: critic steps, generator step, shared shuffle).
	fmt.Println("training GTV", opts.Plan.Name(), "on", train.Rows(), "rows ...")
	if err := g.Train(func(round int, dLoss, gLoss float64) {
		if (round+1)%100 == 0 {
			fmt.Printf("  round %d: critic %.3f generator %.3f\n", round+1, dLoss, gLoss)
		}
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Synthesize the joint table (clients decode and shuffle their own
	//    columns before publication).
	synth, err := g.Synthesize(train.Rows())
	if err != nil {
		log.Fatal(err)
	}

	// 5. Evaluate: statistical similarity and ML utility vs the real data.
	// The synthetic column order follows the client assignment, which for
	// EvenAssignment is the original order.
	sim, err := stats.Similarity(train, synth)
	if err != nil {
		log.Fatal(err)
	}
	util, err := ml.UtilityDifference(train, synth, test, d.Target, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("avg JSD %.4f | avg WD %.4f | Diff.Corr %.3f\n", sim.AvgJSD, sim.AvgWD, sim.DiffCorr)
	fmt.Printf("ML utility difference (lower is better): %s\n", util)
}
