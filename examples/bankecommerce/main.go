// The paper's motivating scenario: a bank and an e-commerce company hold
// different features for the same customers and want a joint synthetic
// dataset without sharing raw data. The bank holds income/credit features
// and the loan-default target; the e-commerce company holds purchasing
// behaviour. After GTV training, the published synthetic table preserves
// the cross-organization correlation (purchases vs income) that neither
// party could synthesize alone.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// buildCustomers fabricates the shared customer base: a latent "wealth"
// factor drives both the bank's and the shop's columns, so real
// cross-party correlation exists for GTV to learn.
func buildCustomers(n int, seed int64) (bank, shop *encoding.Table, err error) {
	rng := rand.New(rand.NewSource(seed))
	bankData := tensor.New(n, 3)
	shopData := tensor.New(n, 3)
	for i := 0; i < n; i++ {
		wealth := rng.NormFloat64()
		// Bank: income, credit score band, default flag.
		income := 50 + 25*wealth + rng.NormFloat64()*8
		band := 0.0
		if wealth > 0.4 {
			band = 2
		} else if wealth > -0.4 {
			band = 1
		}
		deflt := 0.0
		if wealth+rng.NormFloat64()*0.7 < -1.1 {
			deflt = 1
		}
		bankData.Set(i, 0, income)
		bankData.Set(i, 1, band)
		bankData.Set(i, 2, deflt)
		// Shop: monthly spend, premium membership, returns count.
		spend := 120 + 80*wealth + rng.NormFloat64()*30
		premium := 0.0
		if wealth+rng.NormFloat64()*0.5 > 0.6 {
			premium = 1
		}
		returns := float64(rng.Intn(3))
		shopData.Set(i, 0, spend)
		shopData.Set(i, 1, premium)
		shopData.Set(i, 2, returns)
	}
	bank, err = encoding.NewTable([]encoding.ColumnSpec{
		{Name: "income", Kind: encoding.KindContinuous},
		{Name: "credit_band", Kind: encoding.KindCategorical, Categories: []string{"low", "mid", "high"}},
		{Name: "default", Kind: encoding.KindCategorical, Categories: []string{"no", "yes"}},
	}, bankData)
	if err != nil {
		return nil, nil, err
	}
	shop, err = encoding.NewTable([]encoding.ColumnSpec{
		{Name: "monthly_spend", Kind: encoding.KindContinuous},
		{Name: "premium", Kind: encoding.KindCategorical, Categories: []string{"no", "yes"}},
		{Name: "returns", Kind: encoding.KindCategorical, Categories: []string{"0", "1", "2"}},
	}, shopData)
	return bank, shop, err
}

func main() {
	bank, shop, err := buildCustomers(800, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Each organization is one GTV client; neither ever ships a raw row.
	opts := core.DefaultOptions()
	opts.Rounds = 400
	opts.Plan.GenServer, opts.Plan.GenClient = 0, 2 // D2_0 G2_0: scalable default
	g, err := core.New([]*encoding.Table{bank, shop}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training joint bank + e-commerce synthesizer ...")
	if err := g.Train(nil); err != nil {
		log.Fatal(err)
	}

	joined, parts, err := g.SynthesizeParts(800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic table: %d rows x %d columns (bank %d + shop %d)\n",
		joined.Rows(), joined.Cols(), parts[0].Cols(), parts[1].Cols())

	// The pay-off: the cross-party association between the bank's income
	// and the shop's spend survives in the synthetic data.
	realJoined, err := encoding.ConcatColumns(bank, shop)
	if err != nil {
		log.Fatal(err)
	}
	realCorr := stats.Pearson(realJoined.Data.Col(0), realJoined.Data.Col(3))
	synthCorr := stats.Pearson(joined.Data.Col(0), joined.Data.Col(3))
	fmt.Printf("income vs monthly_spend correlation: real %.3f, synthetic %.3f\n", realCorr, synthCorr)

	across, err := stats.AcrossClientDiff(bank, shop, parts[0], parts[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("across-client Diff.Corr (lower is better): %.3f\n", across)
}
