// Multi-client example: four organizations with unequal feature counts
// train one GTV system. Demonstrates the ratio vector P_r, an imbalanced
// column assignment, and the paper's "enlarged generator" remedy for
// quality degradation at higher client counts.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/stats"
)

func main() {
	d, err := datasets.Generate("intrusion", datasets.Config{Rows: 600, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	// Imbalanced ownership: client 0 gets 5 columns, client 1 gets 3,
	// clients 2 and 3 get the rest.
	cols := d.Table.Cols()
	assignment := make([]int, cols)
	for j := range assignment {
		switch {
		case j < 5:
			assignment[j] = 0
		case j < 8:
			assignment[j] = 1
		case j < 10:
			assignment[j] = 2
		default:
			assignment[j] = 3
		}
	}

	for _, enlarged := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.Rounds = 250
		if enlarged {
			opts.GenBlockDim = 3 * opts.BlockDim
		}
		g, err := core.NewFromAssignment(d.Table, assignment, 4, opts)
		if err != nil {
			log.Fatal(err)
		}
		label := "default generator"
		if enlarged {
			label = "enlarged generator (3x block width)"
		}
		fmt.Printf("%s: P_r = %.2f\n", label, g.Ratios())
		if err := g.Train(nil); err != nil {
			log.Fatal(err)
		}
		_, parts, err := g.SynthesizeParts(600)
		if err != nil {
			log.Fatal(err)
		}
		realParts := g.ClientTables()
		avg, err := stats.AvgClientDiff(realParts, parts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  avg-client Diff.Corr: %.3f\n", avg)
	}
}
