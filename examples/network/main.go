// Network example: the full GTV protocol over TCP on localhost. Two client
// processes are simulated by goroutines serving real gtvwire listeners
// (the pipelined binary frame protocol — see DESIGN.md "Wire protocol");
// the server dials them like remote parties and drives Algorithm 1 over
// the wire. Byte-for-byte, this is the traffic a two-machine deployment
// (cmd/gtv-server + cmd/gtv-client, both with -wire binary) exchanges.
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/vfl"
)

func main() {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 400, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	assignment, err := core.EvenAssignment(d.Table.Cols(), 2)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := d.Table.VerticalSplit(assignment, 2)
	if err != nil {
		log.Fatal(err)
	}

	// The clients share a shuffle secret; the server never sees it.
	const shuffleSecret = 0xBEEF
	coord := vfl.NewShuffleCoordinator(shuffleSecret)

	clients := make([]vfl.Client, len(parts))
	for i, part := range parts {
		local, err := vfl.NewLocalClient(part, coord, int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		//lint:ignore goroleak demo serve loop: it lives for the life of the example process and dies with it
		go func() {
			if err := vfl.ServeClientWire(lis, local); err != nil {
				log.Println("client server:", err)
			}
		}()
		proxy, err := vfl.DialWireClient("tcp", lis.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		//lint:ignore errdrop teardown at example exit, nothing to lose if the close fails
		defer func() { _ = proxy.Close() }()
		clients[i] = proxy
		fmt.Printf("client %d serving %d columns at %s\n", i, part.Cols(), lis.Addr())
	}

	cfg := vfl.Config{
		Plan:      vfl.Plan{DiscServer: 2, GenClient: 2},
		Rounds:    150,
		DiscSteps: 3,
		BatchSize: 64,
		NoiseDim:  24,
		BlockDim:  64,
		LR:        5e-4,
		Seed:      1,
	}
	server, err := vfl.NewServer(clients, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training %s over TCP, P_r=%v\n", cfg.Plan.Name(), server.Ratios())
	if err := server.Train(func(round int, dLoss, gLoss float64) {
		if (round+1)%50 == 0 {
			fmt.Printf("  round %d: critic %.3f generator %.3f\n", round+1, dLoss, gLoss)
		}
	}); err != nil {
		log.Fatal(err)
	}

	synth, err := server.Synthesize(200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d rows x %d columns over the network\n", synth.Rows(), synth.Cols())
	// The 8 B/element payload estimate and the measured framed bytes.
	fmt.Printf("communication: %s\n", server.CommStats())
}
