package shapley

import (
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// plantedTable builds a table where the target is a deterministic function
// of column 0 ("signal"), while columns 1 and 2 are pure noise. Shapley
// importance must rank the signal column first.
func plantedTable(t *testing.T, rows int) *encoding.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	data := tensor.New(rows, 4)
	for i := 0; i < rows; i++ {
		row := data.RawRow(i)
		row[0] = rng.NormFloat64()
		row[1] = rng.NormFloat64()
		row[2] = float64(rng.Intn(3))
		if row[0] > 0 {
			row[3] = 1
		}
	}
	tbl, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "signal", Kind: encoding.KindContinuous},
		{Name: "noise_cont", Kind: encoding.KindContinuous},
		{Name: "noise_cat", Kind: encoding.KindCategorical, Categories: []string{"a", "b", "c"}},
		{Name: "target", Kind: encoding.KindCategorical, Categories: []string{"no", "yes"}},
	}, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tbl
}

func TestFeatureImportanceFindsPlantedSignal(t *testing.T) {
	tbl := plantedTable(t, 500)
	cfg := DefaultConfig()
	cfg.Permutations = 10
	cfg.Epochs = 60
	imp, err := FeatureImportance(tbl, 3, cfg)
	if err != nil {
		t.Fatalf("FeatureImportance: %v", err)
	}
	if len(imp) != 3 {
		t.Fatalf("importance length = %d want 3", len(imp))
	}
	if imp[0] <= imp[1] || imp[0] <= imp[2] {
		t.Fatalf("signal importance %v should dominate noise %v, %v", imp[0], imp[1], imp[2])
	}
	ranked, err := Rank(tbl, 3, imp)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if ranked[0] != 0 {
		t.Fatalf("top-ranked column = %d want 0 (signal)", ranked[0])
	}
}

func TestRankLengthMismatch(t *testing.T) {
	tbl := plantedTable(t, 20)
	if _, err := Rank(tbl, 3, []float64{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestSplitByImportance(t *testing.T) {
	ranked := []int{4, 2, 0, 1, 3}
	head, tail, err := SplitByImportance(ranked, 0.4)
	if err != nil {
		t.Fatalf("SplitByImportance: %v", err)
	}
	if len(head) != 2 || head[0] != 4 || head[1] != 2 {
		t.Fatalf("head = %v", head)
	}
	if len(tail) != 3 {
		t.Fatalf("tail = %v", tail)
	}
	// head/tail must partition the input.
	seen := map[int]bool{}
	for _, c := range append(append([]int(nil), head...), tail...) {
		seen[c] = true
	}
	if len(seen) != 5 {
		t.Fatalf("partition lost columns: %v + %v", head, tail)
	}
}

func TestSplitByImportanceBounds(t *testing.T) {
	// Tiny fractions still produce a non-empty head and tail.
	head, tail, err := SplitByImportance([]int{1, 2, 3}, 0.01)
	if err != nil {
		t.Fatalf("SplitByImportance: %v", err)
	}
	if len(head) != 1 || len(tail) != 2 {
		t.Fatalf("head/tail = %v/%v", head, tail)
	}
	if _, _, err := SplitByImportance([]int{1}, 0.5); err == nil {
		t.Fatal("expected error for single feature")
	}
	if _, _, err := SplitByImportance([]int{1, 2}, 1.5); err == nil {
		t.Fatal("expected error for bad fraction")
	}
}

func TestTopFractionOnDataset(t *testing.T) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 400, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Permutations = 5
	cfg.Epochs = 40
	head, tail, err := TopFraction(d.Table, d.Target, 0.1, cfg)
	if err != nil {
		t.Fatalf("TopFraction: %v", err)
	}
	if len(head) < 1 || len(head)+len(tail) != d.Table.Cols()-1 {
		t.Fatalf("head %v tail %v do not partition features", head, tail)
	}
	for _, c := range append(append([]int(nil), head...), tail...) {
		if c == d.Target {
			t.Fatal("target column leaked into feature partition")
		}
	}
}
