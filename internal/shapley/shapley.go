// Package shapley estimates per-feature Shapley values for the task of
// predicting a table's target column with an MLP, using the Monte Carlo
// permutation-sampling estimator of Castro et al. A feature "absent" from a
// coalition is marginalized by replacing its values with values drawn from
// random background rows, the standard sampling approximation of the
// conditional expectation.
//
// The GTV paper uses these importances twice: for the motivation case study
// (Fig. 3) and to construct the 1090/5050/9010 feature partitions of the
// data-partition experiments (§4.3.2).
package shapley

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/encoding"
	"repro/internal/ml"
)

// Config controls the Shapley estimation.
type Config struct {
	// Permutations is the number of sampled feature permutations
	// (default 20).
	Permutations int
	// EvalRows caps the number of rows used to evaluate coalition accuracy
	// (default 256).
	EvalRows int
	// Hidden is the MLP hidden width; the paper uses 100.
	Hidden int
	// Epochs trains the underlying MLP (default 80).
	Epochs int
	// Seed drives every random choice.
	Seed int64
}

// DefaultConfig returns the paper-flavoured configuration: an MLP with one
// hidden layer of 100 neurons.
func DefaultConfig() Config {
	return Config{Permutations: 20, EvalRows: 256, Hidden: 100, Epochs: 80, Seed: 1}
}

// FeatureImportance returns one Shapley value per non-target column of the
// table (indexed by raw column order, skipping the target). Higher means
// the feature contributes more accuracy to the MLP's target prediction.
func FeatureImportance(t *encoding.Table, target int, cfg Config) ([]float64, error) {
	if cfg.Permutations <= 0 {
		cfg.Permutations = 20
	}
	if cfg.EvalRows <= 0 {
		cfg.EvalRows = 256
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 100
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 80
	}
	feat, err := ml.NewFeaturizer(t, target)
	if err != nil {
		return nil, fmt.Errorf("shapley: %w", err)
	}
	x, y, err := feat.Transform(t)
	if err != nil {
		return nil, fmt.Errorf("shapley: featurizing: %w", err)
	}
	model := &ml.MLP{Hidden: cfg.Hidden, Epochs: cfg.Epochs, Seed: cfg.Seed}
	if err := model.Fit(x, y, feat.NumClasses()); err != nil {
		return nil, fmt.Errorf("shapley: training MLP: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	evalRows := cfg.EvalRows
	if evalRows > x.Rows() {
		evalRows = x.Rows()
	}
	evalIdx := rng.Perm(x.Rows())[:evalRows]
	xEval := x.GatherRows(evalIdx)
	yEval := make([]int, evalRows)
	for i, r := range evalIdx {
		yEval[i] = y[r]
	}

	ranges := feat.ColumnRanges()
	nFeatures := len(ranges)
	values := make([]float64, nFeatures)

	// value evaluates coalition accuracy: features in the coalition keep
	// their true values; the rest are replaced by values from random
	// background rows (drawn fresh for every evaluation).
	value := func(inCoalition []bool) float64 {
		perturbed := xEval.Clone()
		for fi, in := range inCoalition {
			if in {
				continue
			}
			r := ranges[fi]
			for i := 0; i < perturbed.Rows(); i++ {
				bg := x.RawRow(rng.Intn(x.Rows()))
				copy(perturbed.RawRow(i)[r.Start:r.Start+r.Width], bg[r.Start:r.Start+r.Width])
			}
		}
		return ml.Accuracy(ml.Predict(model, perturbed), yEval)
	}

	in := make([]bool, nFeatures)
	for p := 0; p < cfg.Permutations; p++ {
		perm := rng.Perm(nFeatures)
		for i := range in {
			in[i] = false
		}
		prev := value(in)
		for _, fi := range perm {
			in[fi] = true
			cur := value(in)
			values[fi] += cur - prev
			prev = cur
		}
	}
	for i := range values {
		values[i] /= float64(cfg.Permutations)
	}
	return values, nil
}

// Rank returns the raw-table column indices of the non-target features in
// descending importance order. ranges must pair with the importance slice
// as produced by FeatureImportance (raw column order, target skipped).
func Rank(t *encoding.Table, target int, importance []float64) ([]int, error) {
	var cols []int
	for j := range t.Specs {
		if j != target {
			cols = append(cols, j)
		}
	}
	if len(cols) != len(importance) {
		return nil, fmt.Errorf("shapley: %d importances for %d features", len(importance), len(cols))
	}
	order := make([]int, len(cols))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return importance[order[a]] > importance[order[b]] })
	out := make([]int, len(cols))
	for i, o := range order {
		out[i] = cols[o]
	}
	return out, nil
}

// SplitByImportance partitions the non-target columns into a "most
// important" head holding frac of the features (at least one) and the
// remaining tail, per the paper's 1090/5050/9010 data partitions.
func SplitByImportance(ranked []int, frac float64) (head, tail []int, err error) {
	if len(ranked) < 2 {
		return nil, nil, fmt.Errorf("shapley: cannot split %d features", len(ranked))
	}
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("shapley: fraction %v out of (0,1)", frac)
	}
	n := int(float64(len(ranked))*frac + 0.5)
	if n < 1 {
		n = 1
	}
	if n >= len(ranked) {
		n = len(ranked) - 1
	}
	head = append([]int(nil), ranked[:n]...)
	tail = append([]int(nil), ranked[n:]...)
	return head, tail, nil
}

// TopFraction is a convenience that ranks features by Shapley importance
// and returns the top-frac columns and the remainder.
func TopFraction(t *encoding.Table, target int, frac float64, cfg Config) (head, tail []int, err error) {
	imp, err := FeatureImportance(t, target, cfg)
	if err != nil {
		return nil, nil, err
	}
	ranked, err := Rank(t, target, imp)
	if err != nil {
		return nil, nil, err
	}
	return SplitByImportance(ranked, frac)
}
