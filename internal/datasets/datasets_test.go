package datasets

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/encoding"
)

func TestGenerateAllDatasets(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := Generate(name, Config{Rows: 500, Seed: 1})
			if err != nil {
				t.Fatalf("Generate(%s): %v", name, err)
			}
			if d.Table.Rows() != 500 {
				t.Fatalf("rows = %d", d.Table.Rows())
			}
			if d.Target != d.Table.Cols()-1 {
				t.Fatalf("target index = %d want %d", d.Target, d.Table.Cols()-1)
			}
			if d.Table.Specs[d.Target].Kind != encoding.KindCategorical {
				t.Fatal("target must be categorical")
			}
			if d.Table.Data.HasNaN() {
				t.Fatal("generated data contains NaN/Inf")
			}
		})
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("nope", Config{Rows: 10, Seed: 1}); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGenerateInvalidRows(t *testing.T) {
	if _, err := Generate("adult", Config{Rows: 0, Seed: 1}); err == nil {
		t.Fatal("expected error for zero rows")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a, err := Generate("loan", Config{Rows: 200, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate("loan", Config{Rows: 200, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !a.Table.Data.Equal(b.Table.Data) {
		t.Fatal("same seed must give identical data")
	}
	c, err := Generate("loan", Config{Rows: 200, Seed: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Table.Data.Equal(c.Table.Data) {
		t.Fatal("different seeds should give different data")
	}
}

func TestTargetPriorsApproximated(t *testing.T) {
	tests := []struct {
		name      string
		class     int
		wantPrior float64
		tolerance float64
	}{
		{"adult", 1, 0.24, 0.05},
		{"credit", 1, 0.02, 0.015},
		{"loan", 1, 0.096, 0.04},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Generate(tc.name, Config{Rows: 3000, Seed: 2})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			var count int
			for i := 0; i < d.Table.Rows(); i++ {
				if int(d.Table.Data.At(i, d.Target)) == tc.class {
					count++
				}
			}
			got := float64(count) / float64(d.Table.Rows())
			if math.Abs(got-tc.wantPrior) > tc.tolerance {
				t.Fatalf("class %d frequency = %v want ~%v", tc.class, got, tc.wantPrior)
			}
		})
	}
}

func TestEveryClassPresent(t *testing.T) {
	// Even tiny datasets must contain >= 2 rows of every class so
	// stratified splitting works.
	for _, name := range Names() {
		d, err := Generate(name, Config{Rows: 300, Seed: 3})
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		k := d.Table.Specs[d.Target].NumCategories()
		counts := make([]int, k)
		for i := 0; i < d.Table.Rows(); i++ {
			counts[int(d.Table.Data.At(i, d.Target))]++
		}
		for c, n := range counts {
			if n < 2 {
				t.Fatalf("%s: class %d has %d rows", name, c, n)
			}
		}
	}
}

func TestFeaturesCorrelateWithTarget(t *testing.T) {
	// The latent-factor model must induce predictive structure: at least
	// one continuous feature should have a noticeable mean shift between
	// classes. Without this, the GTV ML-utility experiments are vacuous.
	d, err := Generate("adult", Config{Rows: 4000, Seed: 4})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var bestShift float64
	for j, spec := range d.Table.Specs {
		if spec.Kind != encoding.KindContinuous {
			continue
		}
		var sum0, sum1, n0, n1, sq float64
		col := d.Table.Column(j)
		for i, v := range col {
			if int(d.Table.Data.At(i, d.Target)) == 0 {
				sum0 += v
				n0++
			} else {
				sum1 += v
				n1++
			}
			sq += v * v
		}
		mean := (sum0 + sum1) / float64(len(col))
		std := math.Sqrt(sq/float64(len(col)) - mean*mean)
		shift := math.Abs(sum0/n0-sum1/n1) / (std + 1e-12)
		if shift > bestShift {
			bestShift = shift
		}
	}
	if bestShift < 0.2 {
		t.Fatalf("no feature separates classes (best standardized shift %v)", bestShift)
	}
}

func TestMixedColumnsHaveSpecialValues(t *testing.T) {
	d, err := Generate("adult", Config{Rows: 1000, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	j := d.Table.ColumnByName("capital_gain")
	if j < 0 {
		t.Fatal("capital_gain column missing")
	}
	var zeros int
	for _, v := range d.Table.Column(j) {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / 1000
	if frac < 0.7 || frac > 0.95 {
		t.Fatalf("capital_gain special fraction = %v want ~0.85", frac)
	}
}

func TestTrainTestSplitStratified(t *testing.T) {
	d, err := Generate("credit", Config{Rows: 2000, Seed: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := d.TrainTestSplit(rng, 0.2)
	if err != nil {
		t.Fatalf("TrainTestSplit: %v", err)
	}
	if train.Rows()+test.Rows() != 2000 {
		t.Fatalf("split sizes %d + %d != 2000", train.Rows(), test.Rows())
	}
	// The rare fraud class must appear in both splits.
	countClass := func(tbl *encoding.Table) int {
		var n int
		for i := 0; i < tbl.Rows(); i++ {
			if int(tbl.Data.At(i, d.Target)) == 1 {
				n++
			}
		}
		return n
	}
	if countClass(train) == 0 || countClass(test) == 0 {
		t.Fatal("stratified split lost the minority class")
	}
}

func TestTrainTestSplitErrors(t *testing.T) {
	d, err := Generate("loan", Config{Rows: 100, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, _, err := d.TrainTestSplit(rng, 0); err == nil {
		t.Fatal("expected error for frac 0")
	}
	if _, _, err := d.TrainTestSplit(rng, 1); err == nil {
		t.Fatal("expected error for frac 1")
	}
}

func TestSchemasMatchPaperShape(t *testing.T) {
	// Column-type mix must match what each paper dataset is known for.
	tests := []struct {
		name         string
		wantClasses  int
		wantMixedMin int
		wantCatMin   int // categorical features excluding target
		wantContMin  int
	}{
		{"adult", 2, 2, 6, 2},
		{"covtype", 7, 0, 2, 9},
		{"intrusion", 5, 3, 4, 3},
		{"credit", 2, 0, 0, 10},
		{"loan", 2, 1, 6, 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Generate(tc.name, Config{Rows: 100, Seed: 8})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if got := d.Table.Specs[d.Target].NumCategories(); got != tc.wantClasses {
				t.Fatalf("classes = %d want %d", got, tc.wantClasses)
			}
			var mixed, cat, cont int
			for j, s := range d.Table.Specs {
				if j == d.Target {
					continue
				}
				switch s.Kind {
				case encoding.KindMixed:
					mixed++
				case encoding.KindCategorical:
					cat++
				case encoding.KindContinuous:
					cont++
				}
			}
			if mixed < tc.wantMixedMin || cat < tc.wantCatMin || cont < tc.wantContMin {
				t.Fatalf("mixed/cat/cont = %d/%d/%d want >= %d/%d/%d",
					mixed, cat, cont, tc.wantMixedMin, tc.wantCatMin, tc.wantContMin)
			}
		})
	}
}
