// Package datasets provides synthetic stand-ins for the five tabular
// datasets used by the GTV paper (Adult, Covertype, Intrusion, Credit,
// Loan). The real UCI/Kaggle files are not available in this offline
// environment, so each generator draws rows from a latent-factor model with
// a schema shaped like the original: the same mix of categorical,
// continuous and mixed columns, a target column with a comparable class
// imbalance, and learnable correlations between features and target.
//
// The GTV experiments measure the *difference* between models trained on
// real vs. synthetic data, so what matters is that inter-column structure
// exists for the GAN to learn — which the shared latent factors provide —
// not that the marginal distributions match the originals exactly.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/encoding"
	"repro/internal/tensor"
)

// Dataset is a generated tabular dataset with a designated target column.
type Dataset struct {
	Name   string
	Table  *encoding.Table
	Target int // index of the target column (always categorical)
}

// Config controls dataset generation.
type Config struct {
	Rows int
	Seed int64
}

// latentDim is the dimensionality of the shared latent factors that induce
// correlations between columns.
const latentDim = 4

// Names lists the supported dataset names in the paper's order.
func Names() []string {
	return []string{"loan", "adult", "covtype", "intrusion", "credit"}
}

// featureDef describes one generated column.
type featureDef struct {
	name       string
	kind       encoding.ColumnKind
	categories int       // for categorical
	specials   []float64 // for mixed
	// specialProb is the probability a mixed cell takes a special value
	// (which special value is chosen by a latent threshold).
	specialProb float64
	noise       float64
	scale       float64
	offset      float64
}

// schema describes one dataset family.
type schema struct {
	features []featureDef
	// target class priors; length = number of classes.
	priors []float64
}

// schemaFor returns the generator schema for a dataset name.
func schemaFor(name string) (schema, error) {
	switch name {
	case "adult":
		return schema{
			features: []featureDef{
				{name: "age", kind: encoding.KindContinuous, noise: 0.5, scale: 12, offset: 38},
				{name: "workclass", kind: encoding.KindCategorical, categories: 4},
				{name: "education", kind: encoding.KindCategorical, categories: 5},
				{name: "marital_status", kind: encoding.KindCategorical, categories: 3},
				{name: "occupation", kind: encoding.KindCategorical, categories: 6},
				{name: "relationship", kind: encoding.KindCategorical, categories: 4},
				{name: "sex", kind: encoding.KindCategorical, categories: 2},
				{name: "capital_gain", kind: encoding.KindMixed, specials: []float64{0}, specialProb: 0.85, noise: 0.4, scale: 8000, offset: 12000},
				{name: "capital_loss", kind: encoding.KindMixed, specials: []float64{0}, specialProb: 0.92, noise: 0.4, scale: 500, offset: 1500},
				{name: "hours_per_week", kind: encoding.KindContinuous, noise: 0.6, scale: 10, offset: 40},
			},
			priors: []float64{0.76, 0.24}, // <=50K, >50K
		}, nil
	case "covtype":
		fs := []featureDef{
			{name: "elevation", kind: encoding.KindContinuous, noise: 0.3, scale: 280, offset: 2950},
			{name: "aspect", kind: encoding.KindContinuous, noise: 0.8, scale: 110, offset: 155},
			{name: "slope", kind: encoding.KindContinuous, noise: 0.6, scale: 8, offset: 14},
			{name: "horiz_dist_hydro", kind: encoding.KindContinuous, noise: 0.5, scale: 210, offset: 270},
			{name: "vert_dist_hydro", kind: encoding.KindContinuous, noise: 0.5, scale: 58, offset: 46},
			{name: "horiz_dist_road", kind: encoding.KindContinuous, noise: 0.5, scale: 1550, offset: 2350},
			{name: "hillshade_9am", kind: encoding.KindContinuous, noise: 0.6, scale: 27, offset: 212},
			{name: "hillshade_noon", kind: encoding.KindContinuous, noise: 0.6, scale: 20, offset: 223},
			{name: "horiz_dist_fire", kind: encoding.KindContinuous, noise: 0.5, scale: 1325, offset: 1980},
			{name: "wilderness_area", kind: encoding.KindCategorical, categories: 4},
			{name: "soil_type", kind: encoding.KindCategorical, categories: 8},
		}
		return schema{
			features: fs,
			priors:   []float64{0.365, 0.495, 0.062, 0.005, 0.016, 0.030, 0.027},
		}, nil
	case "intrusion":
		return schema{
			features: []featureDef{
				{name: "duration", kind: encoding.KindMixed, specials: []float64{0}, specialProb: 0.8, noise: 0.5, scale: 700, offset: 300},
				{name: "protocol_type", kind: encoding.KindCategorical, categories: 3},
				{name: "service", kind: encoding.KindCategorical, categories: 8},
				{name: "flag", kind: encoding.KindCategorical, categories: 4},
				{name: "src_bytes", kind: encoding.KindMixed, specials: []float64{0}, specialProb: 0.3, noise: 0.5, scale: 18000, offset: 4000},
				{name: "dst_bytes", kind: encoding.KindMixed, specials: []float64{0}, specialProb: 0.45, noise: 0.5, scale: 9000, offset: 2000},
				{name: "logged_in", kind: encoding.KindCategorical, categories: 2},
				{name: "count", kind: encoding.KindContinuous, noise: 0.4, scale: 110, offset: 90},
				{name: "srv_count", kind: encoding.KindContinuous, noise: 0.4, scale: 90, offset: 65},
				{name: "serror_rate", kind: encoding.KindContinuous, noise: 0.4, scale: 0.35, offset: 0.2},
			},
			priors: []float64{0.53, 0.31, 0.12, 0.03, 0.01},
		}, nil
	case "credit":
		fs := make([]featureDef, 0, 10)
		for i := 1; i <= 8; i++ {
			fs = append(fs, featureDef{
				name: "v" + strconv.Itoa(i), kind: encoding.KindContinuous,
				noise: 0.45, scale: 1.2, offset: 0,
			})
		}
		fs = append(fs,
			featureDef{name: "amount", kind: encoding.KindContinuous, noise: 0.5, scale: 95, offset: 88},
			featureDef{name: "txn_hour", kind: encoding.KindContinuous, noise: 0.7, scale: 6, offset: 13},
		)
		return schema{
			features: fs,
			priors:   []float64{0.98, 0.02}, // legitimate, fraud
		}, nil
	case "loan":
		return schema{
			features: []featureDef{
				{name: "age", kind: encoding.KindContinuous, noise: 0.5, scale: 11, offset: 45},
				{name: "experience", kind: encoding.KindContinuous, noise: 0.5, scale: 11, offset: 20},
				{name: "income", kind: encoding.KindContinuous, noise: 0.4, scale: 46, offset: 74},
				{name: "family", kind: encoding.KindCategorical, categories: 4},
				{name: "ccavg", kind: encoding.KindContinuous, noise: 0.5, scale: 1.7, offset: 1.9},
				{name: "education", kind: encoding.KindCategorical, categories: 3},
				{name: "mortgage", kind: encoding.KindMixed, specials: []float64{0}, specialProb: 0.7, noise: 0.4, scale: 100, offset: 180},
				{name: "securities_account", kind: encoding.KindCategorical, categories: 2},
				{name: "cd_account", kind: encoding.KindCategorical, categories: 2},
				{name: "online", kind: encoding.KindCategorical, categories: 2},
				{name: "creditcard", kind: encoding.KindCategorical, categories: 2},
			},
			priors: []float64{0.904, 0.096}, // no personal loan, personal loan
		}, nil
	default:
		return schema{}, fmt.Errorf("datasets: unknown dataset %q (supported: %v)", name, Names())
	}
}

// Generate builds the named synthetic dataset.
func Generate(name string, cfg Config) (*Dataset, error) {
	sc, err := schemaFor(name)
	if err != nil {
		return nil, err
	}
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("datasets: rows %d must be positive", cfg.Rows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Latent factors per row.
	z := tensor.Randn(rng, cfg.Rows, latentDim, 0, 1)

	numCols := len(sc.features) + 1
	data := tensor.New(cfg.Rows, numCols)
	specs := make([]encoding.ColumnSpec, numCols)

	// Per-feature latent weights, drawn once so all rows share structure.
	for j, f := range sc.features {
		specs[j] = specFor(f)
		fillColumn(rng, data, j, f, z)
	}

	// Target column from a latent score per class, with biases tuned to hit
	// the configured priors.
	targetIdx := len(sc.features)
	k := len(sc.priors)
	cats := make([]string, k)
	for c := range cats {
		cats[c] = "class_" + strconv.Itoa(c)
	}
	specs[targetIdx] = encoding.ColumnSpec{Name: "target", Kind: encoding.KindCategorical, Categories: cats}
	fillTarget(rng, data, targetIdx, sc.priors, z)

	tbl, err := encoding.NewTable(specs, data)
	if err != nil {
		return nil, fmt.Errorf("datasets: building %s: %w", name, err)
	}
	return &Dataset{Name: name, Table: tbl, Target: targetIdx}, nil
}

// specFor converts a featureDef to a column spec.
func specFor(f featureDef) encoding.ColumnSpec {
	spec := encoding.ColumnSpec{Name: f.name, Kind: f.kind}
	switch f.kind {
	case encoding.KindCategorical:
		spec.Categories = make([]string, f.categories)
		for c := range spec.Categories {
			spec.Categories[c] = f.name + "_" + strconv.Itoa(c)
		}
	case encoding.KindMixed:
		spec.SpecialValues = f.specials
	}
	return spec
}

// fillColumn generates one feature column from the latent factors.
func fillColumn(rng *rand.Rand, data *tensor.Dense, j int, f featureDef, z *tensor.Dense) {
	rows := data.Rows()
	switch f.kind {
	case encoding.KindCategorical:
		// Per-category latent weight vectors; category = argmax of noisy score.
		w := tensor.Randn(rng, f.categories, latentDim, 0, 1)
		for i := 0; i < rows; i++ {
			zi := z.RawRow(i)
			best, bestScore := 0, math.Inf(-1)
			for c := 0; c < f.categories; c++ {
				s := dot(w.RawRow(c), zi) + gumbel(rng)*0.7
				if s > bestScore {
					best, bestScore = c, s
				}
			}
			data.Set(i, j, float64(best))
		}
	case encoding.KindContinuous:
		w := randUnit(rng)
		for i := 0; i < rows; i++ {
			v := dot(w, z.RawRow(i)) + rng.NormFloat64()*f.noise
			data.Set(i, j, v*f.scale+f.offset)
		}
	case encoding.KindMixed:
		w := randUnit(rng)
		wSpecial := randUnit(rng)
		// The special-value decision correlates with the latent factors via
		// a logistic threshold calibrated to specialProb.
		scores := make([]float64, rows)
		for i := 0; i < rows; i++ {
			scores[i] = dot(wSpecial, z.RawRow(i)) + rng.NormFloat64()*0.6
		}
		threshold := quantile(scores, f.specialProb)
		for i := 0; i < rows; i++ {
			if scores[i] <= threshold {
				s := f.specials[0]
				if len(f.specials) > 1 {
					s = f.specials[rng.Intn(len(f.specials))]
				}
				data.Set(i, j, s)
				continue
			}
			v := dot(w, z.RawRow(i)) + rng.NormFloat64()*f.noise
			v = v*f.scale + f.offset
			// Keep the continuous part clear of the special values.
			if v <= 0 {
				v = f.offset/4 + math.Abs(v)/8 + 1
			}
			data.Set(i, j, v)
		}
	}
}

// fillTarget assigns target classes with the given priors while keeping a
// strong dependence on the latent factors (so features predict the target).
func fillTarget(rng *rand.Rand, data *tensor.Dense, j int, priors []float64, z *tensor.Dense) {
	rows := data.Rows()
	k := len(priors)
	w := tensor.Randn(rng, k, latentDim, 0, 1)
	bias := make([]float64, k)
	classes := make([]int, rows)

	assign := func() []int {
		counts := make([]int, k)
		for i := 0; i < rows; i++ {
			zi := z.RawRow(i)
			best, bestScore := 0, math.Inf(-1)
			for c := 0; c < k; c++ {
				s := dot(w.RawRow(c), zi) + bias[c] + gumbel(rng)*0.5
				if s > bestScore {
					best, bestScore = c, s
				}
			}
			classes[i] = best
			counts[best]++
		}
		return counts
	}

	// Tune biases so empirical class frequencies approach the priors.
	for iter := 0; iter < 25; iter++ {
		counts := assign()
		done := true
		for c := 0; c < k; c++ {
			want := priors[c]
			got := float64(counts[c]) / float64(rows)
			if math.Abs(got-want) > 0.004 {
				done = false
			}
			bias[c] += 0.5 * (math.Log(want+1e-6) - math.Log(got+1e-6))
		}
		if done {
			break
		}
	}
	// Guarantee every class appears at least twice so stratified splits and
	// per-class metrics are well-defined at small row counts.
	counts := make([]int, k)
	for _, c := range classes {
		counts[c]++
	}
	next := 0
	for c := 0; c < k; c++ {
		for counts[c] < 2 {
			for counts[classes[next]] <= 2 {
				next++
			}
			counts[classes[next]]--
			classes[next] = c
			counts[c]++
		}
	}
	for i, c := range classes {
		data.Set(i, j, float64(c))
	}
}

// TrainTestSplit splits the dataset's rows into train and test tables,
// stratified by the target column so class ratios are preserved.
func (d *Dataset) TrainTestSplit(rng *rand.Rand, testFrac float64) (train, test *encoding.Table, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("datasets: testFrac %v out of (0,1)", testFrac)
	}
	byClass := make(map[int][]int)
	for i := 0; i < d.Table.Rows(); i++ {
		c := int(d.Table.Data.At(i, d.Target))
		byClass[c] = append(byClass[c], i)
	}
	// Consume the caller's RNG in sorted-class order: ranging over the map
	// here would hand each class a different permutation depending on the
	// iteration order of the moment, making the split — and everything
	// trained on it — irreproducible across processes.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	var trainIdx, testIdx []int
	for _, c := range classes {
		rowsOf := byClass[c]
		perm := rng.Perm(len(rowsOf))
		nTest := int(math.Round(testFrac * float64(len(rowsOf))))
		if nTest < 1 {
			nTest = 1
		}
		if nTest >= len(rowsOf) {
			nTest = len(rowsOf) - 1
		}
		for i, p := range perm {
			if i < nTest {
				testIdx = append(testIdx, rowsOf[p])
			} else {
				trainIdx = append(trainIdx, rowsOf[p])
			}
		}
	}
	sort.Ints(trainIdx)
	sort.Ints(testIdx)
	return d.Table.GatherRows(trainIdx), d.Table.GatherRows(testIdx), nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// gumbel draws a standard Gumbel variate, used for correlated categorical
// sampling (the Gumbel-max trick).
func gumbel(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u <= 0 {
		u = rng.Float64()
	}
	return -math.Log(-math.Log(u))
}

// randUnit draws a random unit vector in the latent space.
func randUnit(rng *rand.Rand) []float64 {
	v := make([]float64, latentDim)
	var n float64
	for i := range v {
		v[i] = rng.NormFloat64()
		n += v[i] * v[i]
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
	return v
}

// quantile returns the q-quantile of xs (0 <= q <= 1) by sorting a copy.
func quantile(xs []float64, q float64) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}
