package gmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoModeData draws n samples from 0.5*N(-5,1) + 0.5*N(5,1).
func twoModeData(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < 0.5 {
			out[i] = rng.NormFloat64() - 5
		} else {
			out[i] = rng.NormFloat64() + 5
		}
	}
	return out
}

func TestFitRecoverstTwoModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := twoModeData(rng, 2000)
	m, err := Fit(rng, data, DefaultConfig())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.K() < 2 {
		t.Fatalf("K = %d, want >= 2", m.K())
	}
	// Every surviving component must sit at one of the two true modes, and
	// each mode must carry roughly half the mass. (Plain EM may cover one
	// cluster with several overlapping components; that is fine for
	// mode-specific normalization.)
	var massNeg, massPos float64
	for c := 0; c < m.K(); c++ {
		switch {
		case math.Abs(m.Means[c]+5) < 1.5:
			massNeg += m.Weights[c]
		case math.Abs(m.Means[c]-5) < 1.5:
			massPos += m.Weights[c]
		default:
			t.Fatalf("component %d at mean %v is far from both true modes", c, m.Means[c])
		}
	}
	if massNeg < 0.35 || massNeg > 0.65 || massPos < 0.35 || massPos > 0.65 {
		t.Fatalf("mode masses = %v / %v, want ~0.5 each", massNeg, massPos)
	}
}

func TestFitPrunesSpuriousComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Unimodal data with 10 initial components should collapse to few.
	data := make([]float64, 1000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	m, err := Fit(rng, data, DefaultConfig())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for c := 0; c < m.K(); c++ {
		if m.Weights[c] < DefaultConfig().WeightThreshold {
			t.Fatalf("component %d survives with weight %v below threshold", c, m.Weights[c])
		}
	}
}

func TestFitWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := Fit(rng, twoModeData(rng, 500), DefaultConfig())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	var sum float64
	for _, w := range m.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestFitConstantColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 100)
	for i := range data {
		data[i] = 42
	}
	m, err := Fit(rng, data, DefaultConfig())
	if err != nil {
		t.Fatalf("Fit on constant column: %v", err)
	}
	if m.K() < 1 {
		t.Fatal("no components survived")
	}
	// All surviving mass should be at 42 (std floor keeps it finite).
	best := 0
	for c := range m.Weights {
		if m.Weights[c] > m.Weights[best] {
			best = c
		}
	}
	if math.Abs(m.Means[best]-42) > 0.01 {
		t.Fatalf("dominant mean = %v want 42", m.Means[best])
	}
}

func TestFitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := Fit(rng, nil, DefaultConfig()); err == nil {
		t.Fatal("expected error on empty data")
	}
	if _, err := Fit(rng, []float64{math.NaN()}, DefaultConfig()); err == nil {
		t.Fatal("expected error on NaN data")
	}
	cfg := DefaultConfig()
	cfg.MaxComponents = 0
	if _, err := Fit(rng, []float64{1, 2}, cfg); err == nil {
		t.Fatal("expected error on zero components")
	}
}

func TestFitFewSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := Fit(rng, []float64{1, 2, 3}, DefaultConfig())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.K() > 3 {
		t.Fatalf("K = %d exceeds sample count", m.K())
	}
}

func TestResponsibilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := Fit(rng, twoModeData(rng, 500), DefaultConfig())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for _, x := range []float64{-5, 0, 5, 100} {
		r := m.Responsibilities(x)
		var sum float64
		for _, p := range r {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("responsibilities for %v sum to %v", x, sum)
		}
	}
}

func TestResponsibilitiesPickNearestMode(t *testing.T) {
	m := &Model{Weights: []float64{0.5, 0.5}, Means: []float64{-5, 5}, Stds: []float64{1, 1}}
	r := m.Responsibilities(-5)
	if r[0] < 0.99 {
		t.Fatalf("x=-5 responsibility for mode 0 = %v", r[0])
	}
	r = m.Responsibilities(5)
	if r[1] < 0.99 {
		t.Fatalf("x=5 responsibility for mode 1 = %v", r[1])
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	m := &Model{Weights: []float64{1}, Means: []float64{10}, Stds: []float64{2}}
	for _, x := range []float64{10, 12, 8, 14.5} {
		a := m.Normalize(x, 0)
		back := m.Denormalize(a, 0)
		if math.Abs(back-x) > 1e-9 {
			t.Fatalf("round trip %v -> %v -> %v", x, a, back)
		}
	}
}

func TestNormalizeClips(t *testing.T) {
	m := &Model{Weights: []float64{1}, Means: []float64{0}, Stds: []float64{1}}
	if a := m.Normalize(100, 0); a != 1 {
		t.Fatalf("Normalize(100) = %v want clip at 1", a)
	}
	if a := m.Normalize(-100, 0); a != -1 {
		t.Fatalf("Normalize(-100) = %v want clip at -1", a)
	}
}

func TestSampleModeFollowsPosterior(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := &Model{Weights: []float64{0.5, 0.5}, Means: []float64{-5, 5}, Stds: []float64{1, 1}}
	counts := [2]int{}
	for i := 0; i < 200; i++ {
		counts[m.SampleMode(rng, -5)]++
	}
	if counts[0] < 195 {
		t.Fatalf("sampling for x=-5 picked mode 0 only %d/200 times", counts[0])
	}
}

func TestLogLikelihoodImprovesOverSingleGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := twoModeData(rng, 1000)
	fitted, err := Fit(rng, data, DefaultConfig())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	mu, std := meanStd(data)
	single := &Model{Weights: []float64{1}, Means: []float64{mu}, Stds: []float64{std}}
	if fitted.LogLikelihood(data) <= single.LogLikelihood(data) {
		t.Fatal("mixture log-likelihood should beat a single Gaussian on bimodal data")
	}
}

// Property: components are always sorted by mean, weights positive and
// normalized, stds at the floor or above.
func TestQuickModelInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(200)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()*float64(1+rng.Intn(5)) + float64(rng.Intn(10))
		}
		m, err := Fit(rng, data, DefaultConfig())
		if err != nil {
			return false
		}
		var sum float64
		for c := 0; c < m.K(); c++ {
			if m.Weights[c] <= 0 || m.Stds[c] < minStd {
				return false
			}
			if c > 0 && m.Means[c] < m.Means[c-1] {
				return false
			}
			sum += m.Weights[c]
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFit1000(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	data := twoModeData(rng, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(rng, data, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
