// Package gmm fits one-dimensional Gaussian mixture models with
// expectation-maximization. It is the statistical engine behind CTGAN's
// mode-specific normalization of continuous columns: each column is fitted
// with a mixture, low-weight components are pruned, and every cell is
// represented as (scalar offset within its mode, one-hot mode indicator).
package gmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// minStd keeps component standard deviations strictly positive so densities
// and normalized offsets stay finite even for near-constant data.
const minStd = 1e-4

// Model is a fitted one-dimensional Gaussian mixture. Components are sorted
// by mean. Invariant: the weights are positive and sum to 1, and every
// standard deviation is at least minStd.
type Model struct {
	Weights []float64
	Means   []float64
	Stds    []float64
}

// Config controls Fit.
type Config struct {
	// MaxComponents is the number of mixture components EM starts with.
	// CTGAN uses 10.
	MaxComponents int
	// WeightThreshold prunes components whose posterior weight falls below
	// it after fitting. CTGAN's variational GM effectively uses 0.005.
	WeightThreshold float64
	// MaxIter bounds the number of EM iterations.
	MaxIter int
	// Tol stops EM when the mean log-likelihood improves by less than Tol.
	Tol float64
}

// DefaultConfig returns the CTGAN-compatible fitting configuration.
func DefaultConfig() Config {
	return Config{MaxComponents: 10, WeightThreshold: 0.005, MaxIter: 100, Tol: 1e-4}
}

// Fit fits a Gaussian mixture to data using EM followed by low-weight
// component pruning. rng seeds the k-means++-style initialization.
func Fit(rng *rand.Rand, data []float64, cfg Config) (*Model, error) {
	if len(data) == 0 {
		return nil, errors.New("gmm: empty data")
	}
	if cfg.MaxComponents <= 0 {
		return nil, fmt.Errorf("gmm: MaxComponents %d must be positive", cfg.MaxComponents)
	}
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("gmm: data contains NaN or Inf")
		}
	}

	k := cfg.MaxComponents
	if k > len(data) {
		k = len(data)
	}

	m := initModel(rng, data, k)
	resp := make([][]float64, len(data)) // responsibilities, row per sample
	for i := range resp {
		resp[i] = make([]float64, k)
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		ll := m.eStep(data, resp)
		m.mStep(data, resp)
		if math.Abs(ll-prevLL) < cfg.Tol {
			break
		}
		prevLL = ll
	}

	m.prune(cfg.WeightThreshold)
	m.sortByMean()
	return m, nil
}

// initModel spreads initial means over the data quantiles and uses the
// global standard deviation for every component.
func initModel(rng *rand.Rand, data []float64, k int) *Model {
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)

	mean, std := meanStd(data)
	if std < minStd {
		std = minStd
	}
	_ = mean

	m := &Model{
		Weights: make([]float64, k),
		Means:   make([]float64, k),
		Stds:    make([]float64, k),
	}
	for c := 0; c < k; c++ {
		q := (float64(c) + 0.5) / float64(k)
		idx := int(q * float64(len(sorted)))
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		// A small jitter separates identical quantiles in discrete-heavy data.
		m.Means[c] = sorted[idx] + rng.NormFloat64()*std*1e-3
		m.Stds[c] = std
		m.Weights[c] = 1 / float64(k)
	}
	return m
}

// eStep fills resp with posterior responsibilities and returns the mean
// log-likelihood of the data under the current model.
func (m *Model) eStep(data []float64, resp [][]float64) float64 {
	var ll float64
	for i, x := range data {
		row := resp[i]
		maxLog := math.Inf(-1)
		for c := range m.Weights {
			row[c] = math.Log(m.Weights[c]) + logNormPDF(x, m.Means[c], m.Stds[c])
			if row[c] > maxLog {
				maxLog = row[c]
			}
		}
		var sum float64
		for c := range row {
			row[c] = math.Exp(row[c] - maxLog)
			sum += row[c]
		}
		for c := range row {
			row[c] /= sum
		}
		ll += maxLog + math.Log(sum)
	}
	return ll / float64(len(data))
}

// mStep re-estimates weights, means and stds from responsibilities.
func (m *Model) mStep(data []float64, resp [][]float64) {
	k := len(m.Weights)
	n := float64(len(data))
	for c := 0; c < k; c++ {
		var nk, mu float64
		for i, x := range data {
			nk += resp[i][c]
			mu += resp[i][c] * x
		}
		if nk < 1e-10 {
			// Dead component: park it; prune removes it later.
			m.Weights[c] = 0
			continue
		}
		mu /= nk
		var va float64
		for i, x := range data {
			d := x - mu
			va += resp[i][c] * d * d
		}
		va /= nk
		m.Weights[c] = nk / n
		m.Means[c] = mu
		m.Stds[c] = math.Sqrt(va)
		if m.Stds[c] < minStd {
			m.Stds[c] = minStd
		}
	}
}

// prune drops components with weight below threshold and renormalizes.
// At least one component always survives.
func (m *Model) prune(threshold float64) {
	bestIdx := 0
	for c, w := range m.Weights {
		if w > m.Weights[bestIdx] {
			bestIdx = c
		}
	}
	var ws, ms, ss []float64
	for c, w := range m.Weights {
		if w >= threshold || c == bestIdx {
			ws = append(ws, w)
			ms = append(ms, m.Means[c])
			ss = append(ss, m.Stds[c])
		}
	}
	var total float64
	for _, w := range ws {
		total += w
	}
	for i := range ws {
		ws[i] /= total
	}
	m.Weights, m.Means, m.Stds = ws, ms, ss
}

// sortByMean orders components ascending by mean so encodings are stable.
func (m *Model) sortByMean() {
	idx := make([]int, len(m.Means))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return m.Means[idx[a]] < m.Means[idx[b]] })
	ws := make([]float64, len(idx))
	ms := make([]float64, len(idx))
	ss := make([]float64, len(idx))
	for i, j := range idx {
		ws[i], ms[i], ss[i] = m.Weights[j], m.Means[j], m.Stds[j]
	}
	m.Weights, m.Means, m.Stds = ws, ms, ss
}

// K returns the number of (surviving) components.
func (m *Model) K() int { return len(m.Weights) }

// Responsibilities returns the posterior probability of each component for x.
func (m *Model) Responsibilities(x float64) []float64 {
	out := make([]float64, m.K())
	maxLog := math.Inf(-1)
	for c := range out {
		out[c] = math.Log(m.Weights[c]) + logNormPDF(x, m.Means[c], m.Stds[c])
		if out[c] > maxLog {
			maxLog = out[c]
		}
	}
	var sum float64
	for c := range out {
		out[c] = math.Exp(out[c] - maxLog)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}

// SampleMode draws a component index from the posterior over components
// given x, as CTGAN does when encoding training rows.
func (m *Model) SampleMode(rng *rand.Rand, x float64) int {
	resp := m.Responsibilities(x)
	u := rng.Float64()
	var cum float64
	for c, p := range resp {
		cum += p
		if u < cum {
			return c
		}
	}
	return len(resp) - 1
}

// Normalize maps x into mode c's offset coordinate: (x-mean)/(4*std),
// clipped to [-1, 1] as in CTGAN.
func (m *Model) Normalize(x float64, c int) float64 {
	a := (x - m.Means[c]) / (4 * m.Stds[c])
	if a > 1 {
		return 1
	}
	if a < -1 {
		return -1
	}
	return a
}

// Denormalize inverts Normalize for mode c.
func (m *Model) Denormalize(alpha float64, c int) float64 {
	if alpha > 1 {
		alpha = 1
	} else if alpha < -1 {
		alpha = -1
	}
	return alpha*4*m.Stds[c] + m.Means[c]
}

// LogLikelihood returns the mean log-likelihood of data under the model.
func (m *Model) LogLikelihood(data []float64) float64 {
	var ll float64
	for _, x := range data {
		var p float64
		for c := range m.Weights {
			p += m.Weights[c] * math.Exp(logNormPDF(x, m.Means[c], m.Stds[c]))
		}
		ll += math.Log(math.Max(p, 1e-300))
	}
	return ll / float64(len(data))
}

func logNormPDF(x, mean, std float64) float64 {
	d := (x - mean) / std
	return -0.5*d*d - math.Log(std) - 0.5*math.Log(2*math.Pi)
}

func meanStd(data []float64) (float64, float64) {
	var mu float64
	for _, v := range data {
		mu += v
	}
	mu /= float64(len(data))
	var va float64
	for _, v := range data {
		d := v - mu
		va += d * d
	}
	va /= float64(len(data))
	return mu, math.Sqrt(va)
}
