//go:build race

package autograd

// raceEnabled reports whether the race detector is active. Under the race
// detector sync.Pool deliberately drops a fraction of Put/Get operations
// (to expose lifetime misuse), so tests asserting that a released buffer
// comes back from the pool are unsound and must skip themselves.
const raceEnabled = true
