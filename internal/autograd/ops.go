package autograd

import (
	"math"

	"repro/internal/tensor"
)

// ---- element-wise binary operations (with broadcasting) ----
//
// As in package tensor, the second operand may broadcast onto the first:
// its rows and cols must each equal the first operand's or be 1. The output
// always has the first operand's shape.

type addOp struct{}

func (addOp) name() string { return "add" }
func (addOp) backward(inputs []*Value, _, grad *Value) []*Value {
	ar, ac := inputs[0].Shape()
	br, bc := inputs[1].Shape()
	return []*Value{reduceTo(grad, ar, ac), reduceTo(grad, br, bc)}
}

// Add returns a+b, broadcasting b onto a.
func Add(a, b *Value) *Value {
	return newValue(tensor.Add(a.data, b.data), addOp{}, a, b)
}

type subOp struct{}

func (subOp) name() string { return "sub" }
func (subOp) backward(inputs []*Value, _, grad *Value) []*Value {
	ar, ac := inputs[0].Shape()
	br, bc := inputs[1].Shape()
	return []*Value{reduceTo(grad, ar, ac), Neg(reduceTo(grad, br, bc))}
}

// Sub returns a-b, broadcasting b onto a.
func Sub(a, b *Value) *Value {
	return newValue(tensor.Sub(a.data, b.data), subOp{}, a, b)
}

type mulOp struct{}

func (mulOp) name() string { return "mul" }
func (mulOp) backward(inputs []*Value, _, grad *Value) []*Value {
	a, b := inputs[0], inputs[1]
	ar, ac := a.Shape()
	br, bc := b.Shape()
	ga := reduceTo(Mul(grad, b), ar, ac)
	gb := reduceTo(Mul(grad, a), br, bc)
	return []*Value{ga, gb}
}

// Mul returns the element-wise product a*b, broadcasting b onto a.
func Mul(a, b *Value) *Value {
	return newValue(tensor.Mul(a.data, b.data), mulOp{}, a, b)
}

type divOp struct{}

func (divOp) name() string { return "div" }
func (divOp) backward(inputs []*Value, _, grad *Value) []*Value {
	a, b := inputs[0], inputs[1]
	ar, ac := a.Shape()
	br, bc := b.Shape()
	ga := reduceTo(Div(grad, b), ar, ac)
	gb := reduceTo(Neg(Div(Mul(grad, a), Mul(b, b))), br, bc)
	return []*Value{ga, gb}
}

// Div returns the element-wise quotient a/b, broadcasting b onto a.
func Div(a, b *Value) *Value {
	return newValue(tensor.Div(a.data, b.data), divOp{}, a, b)
}

// ---- unary element-wise operations ----

type negOp struct{}

func (negOp) name() string { return "neg" }
func (negOp) backward(_ []*Value, _, grad *Value) []*Value {
	return []*Value{Neg(grad)}
}

// Neg returns -a.
func Neg(a *Value) *Value {
	return newValue(a.data.Scale(-1), negOp{}, a)
}

type scaleOp struct{ s float64 }

func (scaleOp) name() string { return "scale" }
func (o scaleOp) backward(_ []*Value, _, grad *Value) []*Value {
	return []*Value{Scale(grad, o.s)}
}

// Scale returns a*s for a scalar s.
func Scale(a *Value, s float64) *Value {
	return newValue(a.data.Scale(s), scaleOp{s: s}, a)
}

type addScalarOp struct{}

func (addScalarOp) name() string { return "addScalar" }
func (addScalarOp) backward(_ []*Value, _, grad *Value) []*Value {
	return []*Value{grad}
}

// AddScalar returns a+s element-wise for a scalar s.
func AddScalar(a *Value, s float64) *Value {
	return newValue(a.data.AddScalar(s), addScalarOp{}, a)
}

// Square returns the element-wise square of a.
func Square(a *Value) *Value { return Mul(a, a) }

type sqrtOp struct{}

func (sqrtOp) name() string { return "sqrt" }
func (sqrtOp) backward(_ []*Value, output, grad *Value) []*Value {
	// d/dx sqrt(x) = 1 / (2*sqrt(x)) = 1/(2*output).
	return []*Value{Div(grad, Scale(output, 2))}
}

// Sqrt returns the element-wise square root of a.
func Sqrt(a *Value) *Value {
	return newValue(a.data.Apply(math.Sqrt), sqrtOp{}, a)
}

type expOp struct{}

func (expOp) name() string { return "exp" }
func (expOp) backward(_ []*Value, output, grad *Value) []*Value {
	return []*Value{Mul(grad, output)}
}

// Exp returns the element-wise exponential of a.
func Exp(a *Value) *Value {
	return newValue(a.data.Apply(math.Exp), expOp{}, a)
}

type logOp struct{}

func (logOp) name() string { return "log" }
func (logOp) backward(inputs []*Value, _, grad *Value) []*Value {
	return []*Value{Div(grad, inputs[0])}
}

// Log returns the element-wise natural logarithm of a.
func Log(a *Value) *Value {
	return newValue(a.data.Apply(math.Log), logOp{}, a)
}

// ---- activations ----
//
// The piecewise-linear activations (ReLU, LeakyReLU) have an exactly-zero
// second derivative almost everywhere, so treating their input mask as a
// constant in backward is correct for higher-order differentiation too.

type reluOp struct{}

func (reluOp) name() string { return "relu" }
func (reluOp) backward(inputs []*Value, _, grad *Value) []*Value {
	mask := inputs[0].data.Apply(func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	})
	return []*Value{Mul(grad, Const(mask))}
}

// ReLU returns max(a, 0) element-wise.
func ReLU(a *Value) *Value {
	out := a.data.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
	return newValue(out, reluOp{}, a)
}

type leakyReLUOp struct{ slope float64 }

func (leakyReLUOp) name() string { return "leakyrelu" }
func (o leakyReLUOp) backward(inputs []*Value, _, grad *Value) []*Value {
	mask := inputs[0].data.Apply(func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return o.slope
	})
	return []*Value{Mul(grad, Const(mask))}
}

// LeakyReLU returns a where a > 0 and slope*a elsewhere.
func LeakyReLU(a *Value, slope float64) *Value {
	out := a.data.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return slope * v
	})
	return newValue(out, leakyReLUOp{slope: slope}, a)
}

type tanhOp struct{}

func (tanhOp) name() string { return "tanh" }
func (tanhOp) backward(_ []*Value, output, grad *Value) []*Value {
	// d tanh = 1 - tanh^2, expressed on the output so it stays differentiable.
	return []*Value{Mul(grad, AddScalar(Neg(Square(output)), 1))}
}

// Tanh returns the element-wise hyperbolic tangent of a.
func Tanh(a *Value) *Value {
	return newValue(a.data.Apply(math.Tanh), tanhOp{}, a)
}

type sigmoidOp struct{}

func (sigmoidOp) name() string { return "sigmoid" }
func (sigmoidOp) backward(_ []*Value, output, grad *Value) []*Value {
	return []*Value{Mul(grad, Mul(output, AddScalar(Neg(output), 1)))}
}

// Sigmoid returns 1/(1+exp(-a)) element-wise.
func Sigmoid(a *Value) *Value {
	out := a.data.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return newValue(out, sigmoidOp{}, a)
}

type softmaxOp struct{}

func (softmaxOp) name() string { return "softmaxRows" }
func (softmaxOp) backward(_ []*Value, output, grad *Value) []*Value {
	// dL/dx = y * (g - sum_j g_j y_j), row-wise.
	dot := SumCols(Mul(grad, output)) // Rx1
	return []*Value{Mul(output, Sub(grad, dot))}
}

// SoftmaxRows applies a numerically stable softmax independently to each row.
func SoftmaxRows(a *Value) *Value {
	rows, cols := a.data.Shape()
	out := tensor.NewPooled(rows, cols)
	for i := 0; i < rows; i++ {
		src := a.data.RawRow(i)
		dst := out.RawRow(i)
		maxv := math.Inf(-1)
		for _, v := range src {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range src {
			e := math.Exp(v - maxv)
			dst[j] = e
			sum += e
		}
		for j := range dst {
			dst[j] /= sum
		}
	}
	return newValue(out, softmaxOp{}, a)
}

// ---- matrix operations ----

type matmulOp struct{}

func (matmulOp) name() string { return "matmul" }
func (matmulOp) backward(inputs []*Value, _, grad *Value) []*Value {
	// dA = G·Bᵀ and dB = Aᵀ·G via the fused kernels: no transpose is ever
	// materialized, and the fused ops' own backwards close over {MatMul,
	// MatMulTA, MatMulTB}, so differentiating these gradients again (as the
	// WGAN-GP penalty does) stays within the fused set.
	a, b := inputs[0], inputs[1]
	return []*Value{
		MatMulTB(grad, b),
		MatMulTA(a, grad),
	}
}

// MatMul returns the matrix product a*b.
func MatMul(a, b *Value) *Value {
	return newValue(tensor.MatMul(a.data, b.data), matmulOp{}, a, b)
}

type matmulTAOp struct{}

func (matmulTAOp) name() string { return "matmulTA" }
func (matmulTAOp) backward(inputs []*Value, _, grad *Value) []*Value {
	// y = aᵀ·b with a KxM and b KxN, G MxN: dA = B·Gᵀ (KxM), dB = A·G (KxN).
	a, b := inputs[0], inputs[1]
	return []*Value{
		MatMulTB(b, grad),
		MatMul(a, grad),
	}
}

// MatMulTA returns aᵀ*b without materializing the transpose (a is KxM, b is
// KxN, the result is MxN).
func MatMulTA(a, b *Value) *Value {
	return newValue(tensor.MatMulTA(a.data, b.data), matmulTAOp{}, a, b)
}

type matmulTBOp struct{}

func (matmulTBOp) name() string { return "matmulTB" }
func (matmulTBOp) backward(inputs []*Value, _, grad *Value) []*Value {
	// y = a·bᵀ with a MxN and b PxN, G MxP: dA = G·B (MxN), dB = Gᵀ·A (PxN).
	a, b := inputs[0], inputs[1]
	return []*Value{
		MatMul(grad, b),
		MatMulTA(grad, a),
	}
}

// MatMulTB returns a*bᵀ without materializing the transpose (a is MxN, b is
// PxN, the result is MxP).
func MatMulTB(a, b *Value) *Value {
	return newValue(tensor.MatMulTB(a.data, b.data), matmulTBOp{}, a, b)
}

type affineOp struct{}

func (affineOp) name() string { return "affine" }
func (affineOp) backward(inputs []*Value, _, grad *Value) []*Value {
	x, w := inputs[0], inputs[1]
	return []*Value{
		MatMulTB(grad, w),
		MatMulTA(x, grad),
		SumRows(grad),
	}
}

// Affine returns x*w + bias in one fused kernel, where bias is a 1xCols(w)
// row broadcast over the rows of the product. It is the fused form of
// Add(MatMul(x, w), bias) used by Linear layers.
func Affine(x, w, bias *Value) *Value {
	return newValue(tensor.Affine(x.data, w.data, bias.data), affineOp{}, x, w, bias)
}

type transposeOp struct{}

func (transposeOp) name() string { return "transpose" }
func (transposeOp) backward(_ []*Value, _, grad *Value) []*Value {
	return []*Value{Transpose(grad)}
}

// Transpose returns the matrix transpose of a.
func Transpose(a *Value) *Value {
	return newValue(a.data.Transpose(), transposeOp{}, a)
}

// ---- shape operations ----

type expandOp struct{}

func (expandOp) name() string { return "expand" }
func (expandOp) backward(inputs []*Value, _, grad *Value) []*Value {
	ar, ac := inputs[0].Shape()
	return []*Value{reduceTo(grad, ar, ac)}
}

// Expand broadcasts a (1x1, 1xC or Rx1) to rows x cols.
func Expand(a *Value, rows, cols int) *Value {
	return newValue(a.data.Expand(rows, cols), expandOp{}, a)
}

type sumAllOp struct{}

func (sumAllOp) name() string { return "sumAll" }
func (sumAllOp) backward(inputs []*Value, _, grad *Value) []*Value {
	ar, ac := inputs[0].Shape()
	return []*Value{Expand(grad, ar, ac)}
}

// SumAll returns the 1x1 sum of all elements of a.
func SumAll(a *Value) *Value {
	out := tensor.NewPooled(1, 1)
	out.Set(0, 0, a.data.Sum())
	return newValue(out, sumAllOp{}, a)
}

// MeanAll returns the 1x1 mean of all elements of a.
func MeanAll(a *Value) *Value {
	r, c := a.Shape()
	n := r * c
	if n == 0 {
		return Scalar(0)
	}
	return Scale(SumAll(a), 1/float64(n))
}

type sumRowsOp struct{}

func (sumRowsOp) name() string { return "sumRows" }
func (sumRowsOp) backward(inputs []*Value, _, grad *Value) []*Value {
	ar, ac := inputs[0].Shape()
	return []*Value{Expand(grad, ar, ac)}
}

// SumRows returns the 1xC per-column sums of a.
func SumRows(a *Value) *Value {
	return newValue(a.data.SumRows(), sumRowsOp{}, a)
}

// MeanRows returns the 1xC per-column means of a.
func MeanRows(a *Value) *Value {
	r, _ := a.Shape()
	if r == 0 {
		return SumRows(a)
	}
	return Scale(SumRows(a), 1/float64(r))
}

type sumColsOp struct{}

func (sumColsOp) name() string { return "sumCols" }
func (sumColsOp) backward(inputs []*Value, _, grad *Value) []*Value {
	ar, ac := inputs[0].Shape()
	return []*Value{Expand(grad, ar, ac)}
}

// SumCols returns the Rx1 per-row sums of a.
func SumCols(a *Value) *Value {
	return newValue(a.data.SumCols(), sumColsOp{}, a)
}

type concatColsOp struct{ widths []int }

func (concatColsOp) name() string { return "concatCols" }
func (o concatColsOp) backward(_ []*Value, _, grad *Value) []*Value {
	out := make([]*Value, len(o.widths))
	off := 0
	for i, w := range o.widths {
		out[i] = SliceCols(grad, off, off+w)
		off += w
	}
	return out
}

// ConcatCols horizontally concatenates values with equal row counts.
func ConcatCols(vs ...*Value) *Value {
	mats := make([]*tensor.Dense, len(vs))
	widths := make([]int, len(vs))
	for i, v := range vs {
		mats[i] = v.data
		widths[i] = v.data.Cols()
	}
	return newValue(tensor.ConcatCols(mats...), concatColsOp{widths: widths}, vs...)
}

type sliceColsOp struct{ from, to int }

func (sliceColsOp) name() string { return "sliceCols" }
func (o sliceColsOp) backward(inputs []*Value, _, grad *Value) []*Value {
	_, ac := inputs[0].Shape()
	return []*Value{PadCols(grad, o.from, ac)}
}

// SliceCols returns columns [from, to) of a.
func SliceCols(a *Value, from, to int) *Value {
	return newValue(a.data.SliceCols(from, to), sliceColsOp{from: from, to: to}, a)
}

type padColsOp struct{ left, total int }

func (padColsOp) name() string { return "padCols" }
func (o padColsOp) backward(inputs []*Value, _, grad *Value) []*Value {
	_, ac := inputs[0].Shape()
	return []*Value{SliceCols(grad, o.left, o.left+ac)}
}

// PadCols embeds a into a wider zero matrix with `left` zero columns before
// it and total columns overall.
func PadCols(a *Value, left, total int) *Value {
	ar, ac := a.Shape()
	if left < 0 || left+ac > total {
		panic("autograd: PadCols out of range")
	}
	out := tensor.NewPooled(ar, total)
	for i := 0; i < ar; i++ {
		copy(out.RawRow(i)[left:left+ac], a.data.RawRow(i))
	}
	return newValue(out, padColsOp{left: left, total: total}, a)
}

type gatherRowsOp struct{ idx []int }

func (gatherRowsOp) name() string { return "gatherRows" }
func (o gatherRowsOp) backward(inputs []*Value, _, grad *Value) []*Value {
	ar, _ := inputs[0].Shape()
	return []*Value{ScatterRows(grad, o.idx, ar)}
}

// GatherRows returns the matrix whose row k is a's row idx[k].
func GatherRows(a *Value, idx []int) *Value {
	idxCopy := make([]int, len(idx))
	copy(idxCopy, idx)
	return newValue(a.data.GatherRows(idxCopy), gatherRowsOp{idx: idxCopy}, a)
}

type scatterRowsOp struct {
	idx  []int
	rows int
}

func (scatterRowsOp) name() string { return "scatterRows" }
func (o scatterRowsOp) backward(_ []*Value, _, grad *Value) []*Value {
	return []*Value{GatherRows(grad, o.idx)}
}

// ScatterRows returns a rows x Cols(a) matrix where row idx[k] accumulates
// a's row k (the adjoint of GatherRows).
func ScatterRows(a *Value, idx []int, rows int) *Value {
	ar, ac := a.Shape()
	if len(idx) != ar {
		panic("autograd: ScatterRows index length mismatch")
	}
	out := tensor.NewPooled(rows, ac)
	for k, i := range idx {
		dst := out.RawRow(i)
		src := a.data.RawRow(k)
		for j, v := range src {
			dst[j] += v
		}
	}
	idxCopy := make([]int, len(idx))
	copy(idxCopy, idx)
	return newValue(out, scatterRowsOp{idx: idxCopy, rows: rows}, a)
}

// ---- composed helpers ----

// RowL2Norm returns the Rx1 Euclidean norm of each row of a, smoothed by
// eps inside the square root for differentiability at zero.
func RowL2Norm(a *Value, eps float64) *Value {
	return Sqrt(AddScalar(SumCols(Square(a)), eps))
}

type reshapeOp struct{ fromRows, fromCols int }

func (reshapeOp) name() string { return "reshape" }
func (o reshapeOp) backward(_ []*Value, _, grad *Value) []*Value {
	return []*Value{Reshape(grad, o.fromRows, o.fromCols)}
}

// Reshape returns a value with the same elements viewed as rows x cols
// (row-major). The element count must match.
func Reshape(a *Value, rows, cols int) *Value {
	ar, ac := a.Shape()
	return newValue(a.Data().Reshape(rows, cols), reshapeOp{fromRows: ar, fromCols: ac}, a)
}
