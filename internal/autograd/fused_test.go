package autograd

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Gradient checks for the fused transposed-matmul ops and the fused affine
// op, plus coverage that their backward graphs stay differentiable (the
// WGAN-GP double-backprop requirement) and that Release recycles a step's
// graph without perturbing results.

func TestGradFusedMatMuls(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	t.Run("matmulTA", func(t *testing.T) {
		a := randVar(rng, 5, 3) // KxM
		b := randVar(rng, 5, 2) // KxN
		checkGrad(t, "matmulTA", func() *Value { return SumAll(Square(MatMulTA(a, b))) }, a, b)
	})
	t.Run("matmulTB", func(t *testing.T) {
		a := randVar(rng, 3, 5) // MxN
		b := randVar(rng, 4, 5) // PxN
		checkGrad(t, "matmulTB", func() *Value { return SumAll(Square(MatMulTB(a, b))) }, a, b)
	})
	t.Run("affine", func(t *testing.T) {
		x := randVar(rng, 4, 3)
		w := randVar(rng, 3, 2)
		bias := randVar(rng, 1, 2)
		checkGrad(t, "affine", func() *Value { return SumAll(Square(Affine(x, w, bias))) }, x, w, bias)
	})
}

func TestFusedMatMulsMatchComposedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randVar(rng, 6, 4)
	b := randVar(rng, 6, 3)
	if got, want := MatMulTA(a, b).Data(), MatMul(Transpose(a), b).Data(); !got.AllClose(want, 1e-12) {
		t.Error("MatMulTA forward differs from Transpose+MatMul")
	}
	c := randVar(rng, 5, 4)
	d := randVar(rng, 7, 4)
	if got, want := MatMulTB(c, d).Data(), MatMul(c, Transpose(d)).Data(); !got.AllClose(want, 1e-12) {
		t.Error("MatMulTB forward differs from MatMul+Transpose")
	}
	x := randVar(rng, 5, 4)
	w := randVar(rng, 4, 3)
	bias := randVar(rng, 1, 3)
	if got, want := Affine(x, w, bias).Data(), Add(MatMul(x, w), bias).Data(); !got.AllClose(want, 1e-12) {
		t.Error("Affine forward differs from MatMul+Add")
	}
}

// TestFusedDoubleBackprop differentiates the gradient of a fused-op graph —
// exactly what the gradient penalty does to the critic — and checks the
// second-order result against finite differences of the first-order one.
func TestFusedDoubleBackprop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randVar(rng, 3, 4)
	w := randVar(rng, 4, 2)
	bias := randVar(rng, 1, 2)

	// penalty(w) = sum_ij (d sum(affine(x,w,b)^2) / dx)_ij ^2, a scalar whose
	// w-gradient exercises backward-of-backward through affine/TA/TB.
	penalty := func() *Value {
		y := SumAll(Square(Affine(x, w, bias)))
		gx := Grad(y, x)[0]
		return SumAll(Square(gx))
	}
	y := penalty()
	gw := Grad(y, w)[0]
	num := numericGrad(func() float64 { return penalty().Item() }, w.Data())
	if !gw.Data().AllClose(num, 1e-3) {
		t.Errorf("double backprop through fused ops: analytic %v, numeric %v", gw.Data(), num)
	}
}

// TestReleasePreservesResults runs the same tiny training-style computation
// with and without tape releases and requires bitwise identical parameter
// trajectories: recycling must be invisible to the numerics.
func TestReleasePreservesResults(t *testing.T) {
	run := func(release bool) *tensor.Dense {
		rng := rand.New(rand.NewSource(31))
		w := Var(tensor.Randn(rng, 8, 6, 0, 1))
		bias := Var(tensor.Randn(rng, 1, 6, 0, 1))
		for step := 0; step < 20; step++ {
			x := Const(tensor.Randn(rng, 10, 8, 0, 1))
			loss := SumAll(Square(Affine(x, w, bias)))
			grads := Grad(loss, w, bias)
			// A hand-rolled SGD step keeps the test self-contained.
			w.Data().AxpyInPlace(-1e-3, grads[0].Data())
			bias.Data().AxpyInPlace(-1e-3, grads[1].Data())
			if release {
				var tape Tape
				tape.Track(loss)
				tape.Track(grads...)
				tape.Release()
			}
		}
		return w.Data().Clone()
	}
	if !run(false).Equal(run(true)) {
		t.Fatal("tape release changed the training trajectory")
	}
}

// TestReleaseProtectsLeaves: leaf data (parameters, detached buffers) must
// survive a release untouched even when interior nodes alias them.
func TestReleaseProtectsLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	w := Var(tensor.Randn(rng, 4, 4, 0, 1))
	snapshot := w.Data().Clone()

	x := Const(tensor.Randn(rng, 4, 4, 0, 1))
	h := MatMul(x, w)
	det := h.Detach() // leaf aliasing an interior node's buffer
	hData := h.Data()
	loss := SumAll(Square(Add(h, det)))
	grads := Grad(loss, w)

	Release(loss, grads[0])
	if !w.Data().Equal(snapshot) {
		t.Fatal("release corrupted a Var leaf")
	}
	// The detached buffer was shielded by the leaf: still readable, and the
	// next pooled allocation of the same class must not hand it back.
	probe := tensor.NewPooled(4, 4)
	if &probe.Data()[0] == &hData.Data()[0] {
		t.Fatal("release recycled a buffer shielded by a Detach leaf")
	}
}

// TestReleaseRecyclesBuffers: without a shielding leaf, an interior buffer
// must actually return to the pool (this is the whole point of the tape).
// Under the race detector sync.Pool deliberately drops roughly a quarter
// of Puts, so no single attempt is conclusive; instead the test retries
// until one released buffer is observably recycled. 25 independent
// attempts make a spurious failure (every Put dropped) vanishingly
// unlikely (~4^-25) while a genuine recycling bug still fails every time.
func TestReleaseRecyclesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const attempts = 25
	for i := 0; i < attempts; i++ {
		a := Var(tensor.Randn(rng, 16, 16, 0, 1))
		b := Var(tensor.Randn(rng, 16, 16, 0, 1))
		y := MatMul(a, b)
		ptr := &y.Data().Data()[0]
		Release(y)
		// Drain a few allocations: sync.Pool gives no ordering guarantee,
		// but single-threaded it returns the most recent Put first. The
		// mismatched probes are deliberately not released — putting one
		// back would make the next probe return it again forever.
		for j := 0; j < 4; j++ {
			d := tensor.NewPooled(16, 16)
			if &d.Data()[0] == ptr {
				return
			}
		}
	}
	t.Fatalf("no released interior buffer came back from the pool in %d attempts", attempts)
}
