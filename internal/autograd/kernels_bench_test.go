package autograd

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// BenchmarkMatMulBackward measures one forward+backward of a single matmul
// with tape recycling — the allocs/op column is the headline number for the
// buffer-reuse work (the seed engine sat at 35 allocs/op here).
func BenchmarkMatMulBackward(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := Var(tensor.Randn(rng, n, n, 0, 1))
			x := Var(tensor.Randn(rng, n, n, 0, 1))
			seed := Const(tensor.Full(n, n, 1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y := MatMul(a, x)
				grads := GradWithSeed(y, seed, a, x)
				Release(y, grads[0], grads[1])
			}
		})
	}
}

// BenchmarkLinearStep is a Linear-layer-shaped training step at CTGAN scale
// (batch 128, width 256): fused affine forward, backward, tape release.
func BenchmarkLinearStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Const(tensor.Randn(rng, 128, 256, 0, 1))
	w := Var(tensor.Randn(rng, 256, 256, 0, 1))
	bias := Var(tensor.Randn(rng, 1, 256, 0, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := SumAll(Square(Affine(x, w, bias)))
		grads := Grad(loss, w, bias)
		Release(loss, grads[0], grads[1])
	}
}
