package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// numericGrad estimates d f / d x with central finite differences.
func numericGrad(f func() float64, x *tensor.Dense) *tensor.Dense {
	const h = 1e-5
	out := tensor.New(x.Rows(), x.Cols())
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			orig := x.At(i, j)
			x.Set(i, j, orig+h)
			fp := f()
			x.Set(i, j, orig-h)
			fm := f()
			x.Set(i, j, orig)
			out.Set(i, j, (fp-fm)/(2*h))
		}
	}
	return out
}

// checkGrad verifies the analytic gradient of a scalar-valued function
// against finite differences on every listed variable.
func checkGrad(t *testing.T, name string, f func() *Value, vars ...*Value) {
	t.Helper()
	y := f()
	grads := Grad(y, vars...)
	for vi, v := range vars {
		num := numericGrad(func() float64 { return f().Item() }, v.Data())
		if !grads[vi].Data().AllClose(num, 1e-4) {
			t.Errorf("%s: analytic grad of var %d = %v, numeric = %v", name, vi, grads[vi].Data(), num)
		}
	}
}

func randVar(rng *rand.Rand, r, c int) *Value {
	return Var(tensor.Randn(rng, r, c, 0, 1))
}

func TestGradBinaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randVar(rng, 3, 4)
	b := randVar(rng, 3, 4)
	tests := []struct {
		name string
		f    func() *Value
	}{
		{"add", func() *Value { return SumAll(Add(a, b)) }},
		{"sub", func() *Value { return SumAll(Square(Sub(a, b))) }},
		{"mul", func() *Value { return SumAll(Mul(a, b)) }},
		{"div", func() *Value { return SumAll(Div(a, AddScalar(Square(b), 1))) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { checkGrad(t, tc.name, tc.f, a, b) })
	}
}

func TestGradBroadcastOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randVar(rng, 4, 3)
	row := randVar(rng, 1, 3)
	col := randVar(rng, 4, 1)
	scalar := randVar(rng, 1, 1)
	tests := []struct {
		name string
		f    func() *Value
		vars []*Value
	}{
		{"add row", func() *Value { return SumAll(Square(Add(a, row))) }, []*Value{a, row}},
		{"mul col", func() *Value { return SumAll(Square(Mul(a, col))) }, []*Value{a, col}},
		{"sub scalar", func() *Value { return SumAll(Square(Sub(a, scalar))) }, []*Value{a, scalar}},
		{"div row", func() *Value { return SumAll(Div(a, AddScalar(Square(row), 1))) }, []*Value{a, row}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { checkGrad(t, tc.name, tc.f, tc.vars...) })
	}
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randVar(rng, 3, 5)
	b := randVar(rng, 5, 2)
	checkGrad(t, "matmul", func() *Value { return SumAll(Square(MatMul(a, b))) }, a, b)
}

func TestGradUnaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randVar(rng, 3, 3)
	pos := Var(tensor.RandUniform(rng, 3, 3, 0.5, 2.0))
	tests := []struct {
		name string
		f    func() *Value
		v    *Value
	}{
		{"neg", func() *Value { return SumAll(Neg(Square(a))) }, a},
		{"scale", func() *Value { return SumAll(Scale(Square(a), 2.5)) }, a},
		{"addScalar", func() *Value { return SumAll(Square(AddScalar(a, 3))) }, a},
		{"sqrt", func() *Value { return SumAll(Sqrt(pos)) }, pos},
		{"exp", func() *Value { return SumAll(Exp(a)) }, a},
		{"log", func() *Value { return SumAll(Log(pos)) }, pos},
		{"tanh", func() *Value { return SumAll(Tanh(a)) }, a},
		{"sigmoid", func() *Value { return SumAll(Sigmoid(a)) }, a},
		{"relu", func() *Value { return SumAll(Square(ReLU(a))) }, a},
		{"leakyrelu", func() *Value { return SumAll(Square(LeakyReLU(a, 0.2))) }, a},
		{"transpose", func() *Value { return SumAll(Square(Transpose(a))) }, a},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { checkGrad(t, tc.name, tc.f, tc.v) })
	}
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randVar(rng, 4, 5)
	w := Const(tensor.Randn(rng, 4, 5, 0, 1))
	checkGrad(t, "softmax", func() *Value { return SumAll(Mul(SoftmaxRows(a), w)) }, a)
}

func TestGradShapeOps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randVar(rng, 3, 4)
	b := randVar(rng, 3, 2)
	small := randVar(rng, 1, 4)
	idx := []int{2, 0, 0, 1}
	tests := []struct {
		name string
		f    func() *Value
		vars []*Value
	}{
		{"concat", func() *Value { return SumAll(Square(ConcatCols(a, b))) }, []*Value{a, b}},
		{"slice", func() *Value { return SumAll(Square(SliceCols(a, 1, 3))) }, []*Value{a}},
		{"pad", func() *Value { return SumAll(Square(PadCols(b, 1, 5))) }, []*Value{b}},
		{"gather", func() *Value { return SumAll(Square(GatherRows(a, idx))) }, []*Value{a}},
		{"scatter", func() *Value { return SumAll(Square(ScatterRows(GatherRows(a, idx), idx, 3))) }, []*Value{a}},
		{"expand", func() *Value { return SumAll(Square(Expand(small, 3, 4))) }, []*Value{small}},
		{"sumCols", func() *Value { return SumAll(Square(SumCols(a))) }, []*Value{a}},
		{"sumRows", func() *Value { return SumAll(Square(SumRows(a))) }, []*Value{a}},
		{"meanRows", func() *Value { return SumAll(Square(MeanRows(a))) }, []*Value{a}},
		{"rowNorm", func() *Value { return SumAll(RowL2Norm(a, 1e-12)) }, []*Value{a}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { checkGrad(t, tc.name, tc.f, tc.vars...) })
	}
}

func TestGradMLPChain(t *testing.T) {
	// A two-layer network with every op class in one graph.
	rng := rand.New(rand.NewSource(7))
	x := Const(tensor.Randn(rng, 6, 4, 0, 1))
	w1 := randVar(rng, 4, 5)
	b1 := randVar(rng, 1, 5)
	w2 := randVar(rng, 5, 1)
	b2 := randVar(rng, 1, 1)
	f := func() *Value {
		h := LeakyReLU(Add(MatMul(x, w1), b1), 0.2)
		out := Add(MatMul(h, w2), b2)
		return MeanAll(Square(out))
	}
	checkGrad(t, "mlp", f, w1, b1, w2, b2)
}

func TestGradUnreachableIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randVar(rng, 2, 2)
	b := randVar(rng, 3, 3)
	g := Grad(SumAll(a), b)
	if g[0].Data().Norm() != 0 {
		t.Fatalf("unreachable var gradient = %v, want zeros", g[0].Data())
	}
	if r, c := g[0].Shape(); r != 3 || c != 3 {
		t.Fatalf("unreachable var gradient shape %dx%d, want 3x3", r, c)
	}
}

func TestGradAccumulatesFanOut(t *testing.T) {
	a := Var(tensor.Scalar(3))
	y := Add(Mul(a, a), a) // y = a^2 + a, dy/da = 2a+1 = 7
	g := Grad(y, a)
	if got := g[0].Item(); math.Abs(got-7) > 1e-12 {
		t.Fatalf("fan-out grad = %v want 7", got)
	}
}

func TestDetachStopsGradient(t *testing.T) {
	a := Var(tensor.Scalar(2))
	y := Mul(a.Detach(), a) // treated as const*a, dy/da = 2
	g := Grad(y, a)
	if got := g[0].Item(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("detached grad = %v want 2", got)
	}
}

// TestSecondOrderCubic checks grad-of-grad on y = sum(x^3):
// dy/dx = 3x^2 and d(sum(dy/dx))/dx = 6x.
func TestSecondOrderCubic(t *testing.T) {
	x := Var(tensor.FromRows([][]float64{{1, -2}, {0.5, 3}}))
	y := SumAll(Mul(Square(x), x))
	g1 := Grad(y, x)[0]
	g2 := Grad(SumAll(g1), x)[0]
	want := x.Data().Scale(6)
	if !g2.Data().AllClose(want, 1e-9) {
		t.Fatalf("second-order grad = %v want %v", g2.Data(), want)
	}
}

// TestSecondOrderGradientPenalty exercises the exact double-backprop shape
// used by WGAN-GP: a penalty on the input-gradient norm of a small
// discriminator, differentiated with respect to the weights.
func TestSecondOrderGradientPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := Const(tensor.Randn(rng, 5, 3, 0, 1))
	w1 := randVar(rng, 3, 4)
	w2 := randVar(rng, 4, 1)

	penalty := func() *Value {
		xv := Var(x.Data()) // differentiable input
		score := MatMul(LeakyReLU(MatMul(xv, w1), 0.2), w2)
		gradIn := Grad(score, xv)[0]
		norms := RowL2Norm(gradIn, 1e-12)
		return MeanAll(Square(AddScalar(norms, -1)))
	}

	y := penalty()
	analytic := Grad(y, w1, w2)
	for vi, v := range []*Value{w1, w2} {
		num := numericGrad(func() float64 { return penalty().Item() }, v.Data())
		if !analytic[vi].Data().AllClose(num, 1e-3) {
			t.Errorf("gradient-penalty second-order grad of w%d mismatch:\nanalytic %v\nnumeric  %v",
				vi+1, analytic[vi].Data(), num)
		}
	}
}

func TestGradWithSeed(t *testing.T) {
	a := Var(tensor.FromRows([][]float64{{1, 2}, {3, 4}}))
	y := Square(a)
	seed := Const(tensor.FromRows([][]float64{{1, 0}, {0, 2}}))
	g := GradWithSeed(y, seed, a)[0]
	want := tensor.FromRows([][]float64{{2, 0}, {0, 16}}) // 2*a*seed
	if !g.Data().AllClose(want, 1e-12) {
		t.Fatalf("seeded grad = %v want %v", g.Data(), want)
	}
}

func TestItemPanicsOnMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Var(tensor.New(2, 2)).Item()
}

// Property: for random polynomials p(x) = sum(a*x^2 + b*x), the analytic
// gradient 2*a*x + b matches Grad.
func TestQuickPolynomialGrad(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		x := Var(tensor.Randn(rng, 1, n, 0, 1))
		a := tensor.Randn(rng, 1, n, 0, 1)
		b := tensor.Randn(rng, 1, n, 0, 1)
		y := SumAll(Add(Mul(Const(a), Square(x)), Mul(Const(b), x)))
		g := Grad(y, x)[0]
		want := tensor.Add(tensor.Mul(a.Scale(2), x.Data()), b)
		return g.Data().AllClose(want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForwardBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := Const(tensor.Randn(rng, 64, 32, 0, 1))
	w1 := randVar(rng, 32, 64)
	w2 := randVar(rng, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := MeanAll(Square(MatMul(LeakyReLU(MatMul(x, w1), 0.2), w2)))
		Grad(y, w1, w2)
	}
}

func BenchmarkGradientPenalty(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.Randn(rng, 64, 32, 0, 1)
	w1 := randVar(rng, 32, 64)
	w2 := randVar(rng, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xv := Var(x)
		score := MatMul(LeakyReLU(MatMul(xv, w1), 0.2), w2)
		gradIn := Grad(score, xv)[0]
		pen := MeanAll(Square(AddScalar(RowL2Norm(gradIn, 1e-12), -1)))
		Grad(pen, w1, w2)
	}
}

func TestSecondOrderThroughExpLog(t *testing.T) {
	// y = sum(exp(log(x)^2)): both exp and log must support grad-of-grad.
	x := Var(tensor.FromRows([][]float64{{1.5, 2.5}}))
	y := SumAll(Exp(Square(Log(x))))
	g1 := Grad(y, x)[0]
	g2 := Grad(SumAll(g1), x)[0]
	// Verify second order numerically.
	const h = 1e-4
	for j := 0; j < 2; j++ {
		orig := x.Data().At(0, j)
		grad := func(v float64) float64 {
			x.Data().Set(0, j, v)
			yy := SumAll(Exp(Square(Log(x))))
			gg := Grad(yy, x)[0].Data().At(0, j)
			x.Data().Set(0, j, orig)
			return gg
		}
		num := (grad(orig+h) - grad(orig-h)) / (2 * h)
		if math.Abs(g2.Data().At(0, j)-num) > 1e-3 {
			t.Fatalf("second-order at %d: analytic %v numeric %v", j, g2.Data().At(0, j), num)
		}
	}
}

func TestReduceToUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// 3x4 cannot reduce to 2x2.
	g := Const(tensor.New(3, 4))
	reduceTo(g, 2, 2)
}

func TestGradWithSeedShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x := Var(tensor.New(2, 2))
	GradWithSeed(Square(x), Const(tensor.New(1, 1)), x)
}

func TestPadColsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PadCols(Const(tensor.New(1, 3)), 2, 4)
}

func TestScatterRowsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScatterRows(Const(tensor.New(2, 2)), []int{0}, 4)
}

func TestMeanAllEmptyAndScalar(t *testing.T) {
	if got := MeanAll(Const(tensor.New(0, 0))).Item(); got != 0 {
		t.Fatalf("MeanAll(empty) = %v", got)
	}
	if got := Scalar(3.5).Item(); got != 3.5 {
		t.Fatalf("Scalar = %v", got)
	}
}

func TestGradReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a := randVar(rng, 4, 6)
	w := Const(tensor.Randn(rng, 2, 12, 0, 1))
	checkGrad(t, "reshape", func() *Value {
		return SumAll(Square(Mul(Reshape(a, 2, 12), w)))
	}, a)
}

func TestReshapeBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Reshape(Const(tensor.New(2, 3)), 4, 4)
}
