// Package autograd implements an eager, tape-free reverse-mode automatic
// differentiation engine over tensor.Dense matrices.
//
// Every operation immediately computes its result and records its inputs,
// forming a DAG of *Value nodes. Grad walks that DAG in reverse topological
// order. Crucially, the backward pass of every operation is itself expressed
// in terms of differentiable operations, so the gradients returned by Grad
// are ordinary *Values that can be differentiated again. This higher-order
// capability is what lets the GTV discriminator train with the WGAN-GP
// gradient penalty, which requires differentiating the norm of an input
// gradient with respect to the model weights.
//
// Shape misuse panics (as in package tensor); Grad never returns an error —
// variables unreachable from the output receive zero gradients.
package autograd

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Value is a node in the autodiff graph: a matrix plus a record of how it
// was computed. Leaf Values are created with Var (differentiable) or Const
// (not differentiable); interior Values are created by the package-level
// operations.
type Value struct {
	data         *tensor.Dense
	op           op
	inputs       []*Value
	requiresGrad bool
}

// op describes how a Value was computed and how gradients flow to its inputs.
type op interface {
	// backward returns one gradient Value per input, given the output value
	// and the gradient of the loss with respect to the output. Each returned
	// gradient must have exactly the shape of the corresponding input. A nil
	// entry means "no gradient" (e.g. for integer-index inputs).
	backward(inputs []*Value, output, grad *Value) []*Value
	name() string
}

// Var returns a differentiable leaf holding d. The matrix is used directly
// (not copied); training code mutates it in place via optimizer steps.
func Var(d *tensor.Dense) *Value {
	return &Value{data: d, requiresGrad: true}
}

// Const returns a non-differentiable leaf holding d.
func Const(d *tensor.Dense) *Value {
	return &Value{data: d}
}

// Scalar returns a 1x1 non-differentiable leaf holding v.
func Scalar(v float64) *Value { return Const(tensor.Scalar(v)) }

// Data returns the underlying matrix. Mutating it mutates the Value.
func (v *Value) Data() *tensor.Dense { return v.data }

// Shape returns (rows, cols) of the underlying matrix.
func (v *Value) Shape() (int, int) { return v.data.Shape() }

// RequiresGrad reports whether gradients flow through this Value.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// Detach returns a new constant leaf sharing v's data, cutting the graph.
func (v *Value) Detach() *Value { return Const(v.data) }

// Item returns the single element of a 1x1 Value.
func (v *Value) Item() float64 {
	if r, c := v.data.Shape(); r != 1 || c != 1 {
		panic(fmt.Sprintf("autograd: Item on %dx%d value", r, c))
	}
	return v.data.At(0, 0)
}

// valuePool recycles interior Value structs between training steps (see
// Release in tape.go). Leaves made by Var/Const are never pooled: optimizer
// state and callers key off their identity.
var valuePool = sync.Pool{New: func() any { return new(Value) }}

// newValue wires up an interior node. requiresGrad is inherited from inputs.
// The struct may come from the recycle pool; the inputs are copied into the
// node's own slice so the varargs argument never escapes.
func newValue(data *tensor.Dense, o op, inputs ...*Value) *Value {
	v := valuePool.Get().(*Value)
	v.data = data
	v.op = o
	v.inputs = append(v.inputs[:0], inputs...)
	v.requiresGrad = false
	for _, in := range v.inputs {
		if in != nil && in.requiresGrad {
			v.requiresGrad = true
			break
		}
	}
	return v
}

// Grad computes the gradients of the scalar (or seed-weighted) output y with
// respect to each of xs. The returned gradients are themselves graph Values
// and can be differentiated again (e.g. for gradient penalties). Variables
// not reachable from y receive zero gradients of the appropriate shape.
func Grad(y *Value, xs ...*Value) []*Value {
	r, c := y.Shape()
	return GradWithSeed(y, Const(tensor.Full(r, c, 1)), xs...)
}

// GradWithSeed is Grad with an explicit output gradient (vector-Jacobian
// seed), which must have y's shape.
func GradWithSeed(y, seed *Value, xs ...*Value) []*Value {
	yr, yc := y.Shape()
	sr, sc := seed.Shape()
	if yr != sr || yc != sc {
		panic(fmt.Sprintf("autograd: seed shape %dx%d does not match output %dx%d", sr, sc, yr, yc))
	}

	st := gradStatePool.Get().(*gradState)
	st.topo(y)
	st.grads[y] = seed

	// Walk in reverse topological order so each node's gradient is complete
	// before it is propagated to its inputs.
	for i := len(st.order) - 1; i >= 0; i-- {
		node := st.order[i]
		g, ok := st.grads[node]
		if !ok || node.op == nil {
			continue
		}
		contribs := node.op.backward(node.inputs, node, g)
		if len(contribs) != len(node.inputs) {
			panic(fmt.Sprintf("autograd: op %s returned %d gradients for %d inputs",
				node.op.name(), len(contribs), len(node.inputs)))
		}
		for j, in := range node.inputs {
			if in == nil || !in.requiresGrad || contribs[j] == nil {
				continue
			}
			ir, ic := in.Shape()
			gr, gc := contribs[j].Shape()
			if ir != gr || ic != gc {
				panic(fmt.Sprintf("autograd: op %s produced gradient %dx%d for input %dx%d",
					node.op.name(), gr, gc, ir, ic))
			}
			if prev, ok := st.grads[in]; ok {
				st.grads[in] = Add(prev, contribs[j])
			} else {
				st.grads[in] = contribs[j]
			}
		}
	}

	out := make([]*Value, len(xs))
	for i, x := range xs {
		if g, ok := st.grads[x]; ok {
			out[i] = g
		} else {
			xr, xc := x.Shape()
			out[i] = Const(tensor.New(xr, xc))
		}
	}
	st.release()
	return out
}

// gradState holds the scratch structures of one backward pass. States are
// pooled: a training step runs Grad several times and the maps/slices reach a
// steady-state capacity after the first step, making subsequent backward
// passes allocation-free in the traversal machinery.
type gradState struct {
	order   []*Value
	stack   []frame
	visited map[*Value]bool
	grads   map[*Value]*Value
}

// frame is one step of the iterative DFS in gradState.topo.
type frame struct {
	v    *Value
	next int
}

var gradStatePool = sync.Pool{New: func() any {
	return &gradState{
		visited: make(map[*Value]bool, 64),
		grads:   make(map[*Value]*Value, 64),
	}
}}

func (s *gradState) release() {
	s.order = s.order[:0]
	s.stack = s.stack[:0]
	clear(s.visited)
	clear(s.grads)
	gradStatePool.Put(s)
}

// topo fills s.order with the nodes reachable from y that participate in
// differentiation, in topological order (inputs before outputs). Iterative
// DFS keeps deep graphs (e.g. unrolled double-backprop chains) from
// overflowing the goroutine stack.
func (s *gradState) topo(y *Value) {
	s.stack = append(s.stack, frame{v: y})
	s.visited[y] = true
	for len(s.stack) > 0 {
		f := &s.stack[len(s.stack)-1]
		if f.next < len(f.v.inputs) {
			in := f.v.inputs[f.next]
			f.next++
			if in != nil && in.requiresGrad && !s.visited[in] {
				s.visited[in] = true
				s.stack = append(s.stack, frame{v: in})
			}
			continue
		}
		s.order = append(s.order, f.v)
		s.stack = s.stack[:len(s.stack)-1]
	}
}

// reduceTo sums g down to the given target shape, inverting broadcasting.
// Supported targets are the broadcast-compatible shapes: same, 1xC, Rx1, 1x1.
func reduceTo(g *Value, rows, cols int) *Value {
	gr, gc := g.Shape()
	if gr == rows && gc == cols {
		return g
	}
	if rows == 1 && cols == 1 {
		return SumAll(g)
	}
	if rows == 1 && cols == gc {
		return SumRows(g)
	}
	if cols == 1 && rows == gr {
		return SumCols(g)
	}
	panic(fmt.Sprintf("autograd: cannot reduce %dx%d to %dx%d", gr, gc, rows, cols))
}
