package autograd

import (
	"sync"

	"repro/internal/tensor"
)

// Tape-scoped lifetime management. The engine itself stays tape-free — every
// op eagerly records its inputs on the Value — but training loops have a
// natural step boundary: once the optimizer has consumed the gradients,
// every interior node of the step's graph is dead. Release walks the graph
// from the step's roots and recycles those interiors (both the Value structs
// and their tensor backings) into the package free lists, so the next step
// re-uses the same memory instead of growing the heap.

// Tape accumulates the root Values of one training step so the whole step's
// graph can be released in a single call once the optimizer step is done.
//
// Usage:
//
//	var tape autograd.Tape
//	tape.Track(loss)
//	tape.Track(grads...)
//	opt.Step(...)
//	tape.Release()
//
// Track every Value the step produced that the caller still holds (the loss,
// the gradient slice, any auxiliary outputs): roots passed in one Release
// call are deduplicated against each other, whereas releasing overlapping
// graphs in separate calls would double-free their shared interiors.
type Tape struct{ roots []*Value }

// NewTape returns an empty tape. Equivalent to declaring a zero Tape; the
// constructor form exists so that acquisition sites are syntactically uniform
// and recognizable (gtv-lint's tapelifetime rule pairs NewTape/zero-Tape
// acquisitions with Release on every exit path).
func NewTape() *Tape { return &Tape{} }

// Track adds vs to the set of roots released by the next Release call.
func (t *Tape) Track(vs ...*Value) { t.roots = append(t.roots, vs...) }

// Release releases the graphs of all tracked roots (see the package-level
// Release) and resets the tape for reuse.
func (t *Tape) Release() {
	Release(t.roots...)
	t.roots = t.roots[:0]
}

// Release recycles every interior Value reachable from roots, returning the
// Value structs and their tensor backings to the free lists.
//
// Safety rules, enforced structurally:
//
//   - Leaves (Var and Const nodes) are never recycled and their matrices are
//     never released. Model parameters are Var leaves, so optimizer state
//     keyed by parameter identity survives; Detach() leaves shield any buffer
//     that must outlive the step (detaching a value and passing both into the
//     same Release call keeps the shared buffer alive).
//   - A backing slab aliased by any leaf in the walked graph is skipped even
//     when an interior node also points at it.
//   - Slabs shared by several interior nodes (Reshape views) are released
//     exactly once.
//
// After Release returns, every non-leaf Value reachable from roots is dead:
// the caller must drop all references to them. All roots of one step must be
// passed in a single call — their graphs overlap, and the shared interiors
// would otherwise be double-released.
func Release(roots ...*Value) {
	st := releaseStatePool.Get().(*releaseState)
	for _, r := range roots {
		if r != nil && !st.visited[r] {
			st.visited[r] = true
			st.stack = append(st.stack, r)
		}
	}
	// Collect the full graph first: leaf aliases must all be known before any
	// interior slab is released.
	for len(st.stack) > 0 {
		v := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		st.nodes = append(st.nodes, v)
		for _, in := range v.inputs {
			if in != nil && !st.visited[in] {
				st.visited[in] = true
				st.stack = append(st.stack, in)
			}
		}
	}
	for _, v := range st.nodes {
		if v.op == nil {
			if p := dataPtr(v.data); p != nil {
				st.leafPtrs[p] = true
			}
		}
	}
	for _, v := range st.nodes {
		if v.op == nil {
			continue
		}
		if p := dataPtr(v.data); p != nil && !st.leafPtrs[p] && !st.released[p] {
			st.released[p] = true
			v.data.Release()
		}
		v.data = nil
		v.op = nil
		v.inputs = v.inputs[:0]
		v.requiresGrad = false
		valuePool.Put(v)
	}
	st.reset()
	releaseStatePool.Put(st)
}

// dataPtr returns the identity of a matrix's backing storage (nil for empty
// matrices, which have nothing to release or protect).
func dataPtr(d *tensor.Dense) *float64 {
	if d == nil {
		return nil
	}
	s := d.Data()
	if len(s) == 0 {
		return nil
	}
	return &s[0]
}

// releaseState holds the scratch structures of one Release walk; pooled for
// the same reason as gradState.
type releaseState struct {
	stack    []*Value
	nodes    []*Value
	visited  map[*Value]bool
	leafPtrs map[*float64]bool
	released map[*float64]bool
}

var releaseStatePool = sync.Pool{New: func() any {
	return &releaseState{
		visited:  make(map[*Value]bool, 64),
		leafPtrs: make(map[*float64]bool, 64),
		released: make(map[*float64]bool, 64),
	}
}}

func (s *releaseState) reset() {
	s.stack = s.stack[:0]
	s.nodes = s.nodes[:0]
	clear(s.visited)
	clear(s.leafPtrs)
	clear(s.released)
}
