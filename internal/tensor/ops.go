package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BroadcastOK reports whether a matrix of shape (br, bc) can be broadcast
// against a matrix of shape (ar, ac): each dimension must either match or be
// exactly 1 on the smaller operand.
func BroadcastOK(ar, ac, br, bc int) bool {
	return (br == ar || br == 1) && (bc == ac || bc == 1)
}

// The four broadcasting binary operations are specialized per operator and
// per broadcast shape (same-shape, scalar, row vector, column vector)
// instead of funnelling every element through a closure. The same-shape
// case of large operands fans out across the kernel worker pool.

// binOp selects the operator for the shared broadcast dispatcher. The
// dispatcher switches on it once per row segment, not per element.
type binOp uint8

const (
	binAdd binOp = iota
	binSub
	binMul
	binDiv
)

// checkBroadcast panics unless b can broadcast onto a. It is the single
// definition of the broadcast-failure message, shared by the allocating
// and into-destination binary paths (and mirrored statically by the
// shapeflow lint rule).
func checkBroadcast(a, b *Dense) {
	if !BroadcastOK(a.rows, a.cols, b.rows, b.cols) {
		panic(fmt.Sprintf("tensor: cannot broadcast %dx%d onto %dx%d", b.rows, b.cols, a.rows, a.cols))
	}
}

func checkBinShapes(dst, a, b *Dense, op string) {
	checkBroadcast(a, b)
	if dst.rows != a.rows || dst.cols != a.cols {
		panic(fmt.Sprintf("tensor: %s dst %dx%d, want %dx%d", op, dst.rows, dst.cols, a.rows, a.cols))
	}
}

// binInto computes dst = a OP b with b broadcast over a. dst may alias a;
// it may alias b only when b has a's full shape.
func binInto(dst, a, b *Dense, op binOp) *Dense {
	switch {
	case b.rows == a.rows && b.cols == a.cols:
		if len(a.data) >= matmulParallelThreshold && poolWorkers() > 1 {
			parallelRowsFunc(a.rows, a.cols, func(lo, hi int) {
				c := a.cols
				binSame(dst.data[lo*c:hi*c], a.data[lo*c:hi*c], b.data[lo*c:hi*c], op)
			})
			return dst
		}
		binSame(dst.data, a.data, b.data, op)
	case b.rows == 1 && b.cols == 1:
		bv := b.data[0]
		od, ad := dst.data, a.data
		switch op {
		case binAdd:
			for i, av := range ad {
				od[i] = av + bv
			}
		case binSub:
			for i, av := range ad {
				od[i] = av - bv
			}
		case binMul:
			for i, av := range ad {
				od[i] = av * bv
			}
		case binDiv:
			for i, av := range ad {
				od[i] = av / bv
			}
		}
	case b.rows == 1: // 1xC row vector broadcast down the rows
		c := a.cols
		for i := 0; i < a.rows; i++ {
			binRow(dst.data[i*c:(i+1)*c], a.data[i*c:(i+1)*c], b.data, op)
		}
	default: // Rx1 column vector: one scalar per row
		c := a.cols
		for i := 0; i < a.rows; i++ {
			arow := a.data[i*c : (i+1)*c]
			orow := dst.data[i*c : (i+1)*c]
			bv := b.data[i]
			switch op {
			case binAdd:
				for j, av := range arow {
					orow[j] = av + bv
				}
			case binSub:
				for j, av := range arow {
					orow[j] = av - bv
				}
			case binMul:
				for j, av := range arow {
					orow[j] = av * bv
				}
			case binDiv:
				for j, av := range arow {
					orow[j] = av / bv
				}
			}
		}
	}
	return dst
}

// binSame applies op over equal-length flat slices.
func binSame(od, ad, bd []float64, op binOp) {
	bd = bd[:len(ad)]
	od = od[:len(ad)]
	switch op {
	case binAdd:
		for i, av := range ad {
			od[i] = av + bd[i]
		}
	case binSub:
		for i, av := range ad {
			od[i] = av - bd[i]
		}
	case binMul:
		for i, av := range ad {
			od[i] = av * bd[i]
		}
	case binDiv:
		for i, av := range ad {
			od[i] = av / bd[i]
		}
	}
}

// binRow applies op between one matrix row and a broadcast row vector.
func binRow(od, ad, bd []float64, op binOp) {
	bd = bd[:len(ad)]
	od = od[:len(ad)]
	switch op {
	case binAdd:
		for j, av := range ad {
			od[j] = av + bd[j]
		}
	case binSub:
		for j, av := range ad {
			od[j] = av - bd[j]
		}
	case binMul:
		for j, av := range ad {
			od[j] = av * bd[j]
		}
	case binDiv:
		for j, av := range ad {
			od[j] = av / bd[j]
		}
	}
}

// Add returns a+b with b broadcast over a where needed.
func Add(a, b *Dense) *Dense { return binInto(newBinDst(a, b, "Add"), a, b, binAdd) }

// Sub returns a-b with b broadcast over a where needed.
func Sub(a, b *Dense) *Dense { return binInto(newBinDst(a, b, "Sub"), a, b, binSub) }

// Mul returns the element-wise product a*b with b broadcast over a.
func Mul(a, b *Dense) *Dense { return binInto(newBinDst(a, b, "Mul"), a, b, binMul) }

// Div returns the element-wise quotient a/b with b broadcast over a.
func Div(a, b *Dense) *Dense { return binInto(newBinDst(a, b, "Div"), a, b, binDiv) }

// AddInto computes dst = a+b with b broadcast over a. dst may alias a; it
// may alias b only when b has a's full shape.
func AddInto(dst, a, b *Dense) *Dense {
	checkBinShapes(dst, a, b, "AddInto")
	return binInto(dst, a, b, binAdd)
}

// SubInto computes dst = a-b under the aliasing rules of AddInto.
func SubInto(dst, a, b *Dense) *Dense {
	checkBinShapes(dst, a, b, "SubInto")
	return binInto(dst, a, b, binSub)
}

// MulInto computes dst = a*b (element-wise) under the aliasing rules of
// AddInto.
func MulInto(dst, a, b *Dense) *Dense {
	checkBinShapes(dst, a, b, "MulInto")
	return binInto(dst, a, b, binMul)
}

// DivInto computes dst = a/b (element-wise) under the aliasing rules of
// AddInto.
func DivInto(dst, a, b *Dense) *Dense {
	checkBinShapes(dst, a, b, "DivInto")
	return binInto(dst, a, b, binDiv)
}

func newBinDst(a, b *Dense, op string) *Dense {
	checkBroadcast(a, b)
	return newPooledNoZero(a.rows, a.cols)
}

// Scale returns m*s.
func (m *Dense) Scale(s float64) *Dense {
	return m.Apply(func(v float64) float64 { return v * s })
}

// AddScalar returns m+s element-wise.
func (m *Dense) AddScalar(s float64) *Dense {
	return m.Apply(func(v float64) float64 { return v + s })
}

// AddInPlace adds src (same shape) into m and returns m.
func (m *Dense) AddInPlace(src *Dense) *Dense {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	for i, v := range src.data {
		m.data[i] += v
	}
	return m
}

// AxpyInPlace computes m += alpha*src in place and returns m.
func (m *Dense) AxpyInPlace(alpha float64, src *Dense) *Dense {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("tensor: AxpyInPlace shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	for i, v := range src.data {
		m.data[i] += alpha * v
	}
	return m
}

// Expand broadcasts m (with one or both singleton dimensions) to the
// requested shape. Supported inputs: 1x1, 1xC, Rx1 and RxC (identity).
func (m *Dense) Expand(rows, cols int) *Dense {
	if m.rows == rows && m.cols == cols {
		return m.Clone()
	}
	if !BroadcastOK(rows, cols, m.rows, m.cols) {
		panic(fmt.Sprintf("tensor: cannot expand %dx%d to %dx%d", m.rows, m.cols, rows, cols))
	}
	out := newPooledNoZero(rows, cols)
	for i := 0; i < rows; i++ {
		si := i
		if m.rows == 1 {
			si = 0
		}
		srow := m.data[si*m.cols : (si+1)*m.cols]
		orow := out.data[i*cols : (i+1)*cols]
		if m.cols == 1 {
			for j := range orow {
				orow[j] = srow[0]
			}
		} else {
			copy(orow, srow)
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements; 0 for an empty matrix.
func (m *Dense) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.data))
}

// SumRows returns a 1xC row vector with the sum over rows of each column.
func (m *Dense) SumRows() *Dense {
	out := NewPooled(1, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// SumCols returns an Rx1 column vector with the sum over columns of each row.
func (m *Dense) SumCols() *Dense {
	out := newPooledNoZero(m.rows, 1)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for _, v := range row {
			s += v
		}
		out.data[i] = s
	}
	return out
}

// MeanRows returns a 1xC row vector with the per-column mean.
func (m *Dense) MeanRows() *Dense {
	out := m.SumRows()
	if m.rows > 0 {
		inv := 1 / float64(m.rows)
		for j := range out.data {
			out.data[j] *= inv
		}
	}
	return out
}

// Col returns a copy of column j as a slice of length Rows.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: column %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetCol copies vals (length Rows) into column j.
func (m *Dense) SetCol(j int, vals []float64) {
	if len(vals) != m.rows {
		panic(fmt.Sprintf("tensor: SetCol length %d want %d", len(vals), m.rows))
	}
	for i, v := range vals {
		m.data[i*m.cols+j] = v
	}
}

// ConcatCols horizontally concatenates the given matrices, which must all
// have the same number of rows.
func ConcatCols(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].rows
	total := 0
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", m.rows, rows))
		}
		total += m.cols
	}
	out := newPooledNoZero(rows, total)
	for i := 0; i < rows; i++ {
		off := i * total
		for _, m := range ms {
			copy(out.data[off:off+m.cols], m.data[i*m.cols:(i+1)*m.cols])
			off += m.cols
		}
	}
	return out
}

// SliceCols returns a copy of columns [from, to).
func (m *Dense) SliceCols(from, to int) *Dense {
	if from < 0 || to > m.cols || from > to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range %d", from, to, m.cols))
	}
	out := newPooledNoZero(m.rows, to-from)
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*out.cols:(i+1)*out.cols], m.data[i*m.cols+from:i*m.cols+to])
	}
	return out
}

// SplitCols partitions m into len(widths) matrices of the given column
// widths, which must sum to Cols.
func (m *Dense) SplitCols(widths []int) []*Dense {
	total := 0
	for _, w := range widths {
		total += w
	}
	if total != m.cols {
		panic(fmt.Sprintf("tensor: SplitCols widths sum %d want %d", total, m.cols))
	}
	out := make([]*Dense, len(widths))
	off := 0
	for i, w := range widths {
		out[i] = m.SliceCols(off, off+w)
		off += w
	}
	return out
}

// GatherRows returns a new matrix whose row k is m's row idx[k].
func (m *Dense) GatherRows(idx []int) *Dense {
	out := newPooledNoZero(len(idx), m.cols)
	for k, i := range idx {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("tensor: GatherRows index %d out of range %d", i, m.rows))
		}
		copy(out.data[k*m.cols:(k+1)*m.cols], m.data[i*m.cols:(i+1)*m.cols])
	}
	return out
}

// SliceRows returns a copy of rows [from, to).
func (m *Dense) SliceRows(from, to int) *Dense {
	if from < 0 || to > m.rows || from > to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range %d", from, to, m.rows))
	}
	out := newPooledNoZero(to-from, m.cols)
	copy(out.data, m.data[from*m.cols:to*m.cols])
	return out
}

// ConcatRows vertically concatenates the given matrices, which must all
// have the same number of columns.
func ConcatRows(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].cols
	total := 0
	for _, m := range ms {
		if m.cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", m.cols, cols))
		}
		total += m.rows
	}
	out := newPooledNoZero(total, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:off+len(m.data)], m.data)
		off += len(m.data)
	}
	return out
}

// ShuffleRows returns a copy of m with rows permuted by perm: output row k
// is m's row perm[k]. perm must be a permutation of [0, Rows).
func (m *Dense) ShuffleRows(perm []int) *Dense {
	if len(perm) != m.rows {
		panic(fmt.Sprintf("tensor: ShuffleRows permutation length %d want %d", len(perm), m.rows))
	}
	return m.GatherRows(perm)
}

// Permutation returns a random permutation of [0, n) drawn from rng.
func Permutation(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// RowL2Norms returns an Rx1 vector of the Euclidean norm of each row.
func (m *Dense) RowL2Norms() *Dense {
	out := newPooledNoZero(m.rows, 1)
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += v * v
		}
		out.data[i] = math.Sqrt(s)
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Dense) Norm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func (m *Dense) ArgmaxRows() []int {
	out := make([]int, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// SortedCopy returns the elements of m sorted ascending (used by
// quantile-based statistics).
func (m *Dense) SortedCopy() []float64 {
	out := make([]float64, len(m.data))
	copy(out, m.data)
	sort.Float64s(out)
	return out
}
