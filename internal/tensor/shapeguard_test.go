package tensor

import "testing"

// TestShapeGuardPanics drives every shape-guard panic path in ops.go,
// kernels.go, and pool.go with a minimal mismatched input and pins the
// exact panic message — both operand shapes (or the offending index and
// its bound) must be present, because the shapeflow lint rule and humans
// alike triage these messages without a debugger.
func TestShapeGuardPanics(t *testing.T) {
	cases := []struct {
		name string
		want string
		call func()
	}{
		// ops.go: broadcast and destination guards.
		{"Add broadcast", "tensor: cannot broadcast 2x4 onto 2x3",
			func() { Add(New(2, 3), New(2, 4)) }},
		{"Sub broadcast", "tensor: cannot broadcast 3x2 onto 2x2",
			func() { Sub(New(2, 2), New(3, 2)) }},
		{"Mul broadcast", "tensor: cannot broadcast 2x2 onto 3x3",
			func() { Mul(New(3, 3), New(2, 2)) }},
		{"Div broadcast", "tensor: cannot broadcast 4x1 onto 2x3",
			func() { Div(New(2, 3), New(4, 1)) }},
		{"AddInto dst", "tensor: AddInto dst 3x3, want 2x3",
			func() { AddInto(New(3, 3), New(2, 3), New(2, 3)) }},
		{"SubInto dst", "tensor: SubInto dst 1x1, want 2x2",
			func() { SubInto(New(1, 1), New(2, 2), New(2, 2)) }},
		{"MulInto dst", "tensor: MulInto dst 2x4, want 2x3",
			func() { MulInto(New(2, 4), New(2, 3), New(1, 3)) }},
		{"DivInto dst", "tensor: DivInto dst 3x2, want 2x2",
			func() { DivInto(New(3, 2), New(2, 2), New(2, 1)) }},

		// ops.go: in-place, expand, and indexed accessors.
		{"AddInPlace", "tensor: AddInPlace shape mismatch 2x3 vs 2x4",
			func() { New(2, 3).AddInPlace(New(2, 4)) }},
		{"AxpyInPlace", "tensor: AxpyInPlace shape mismatch 2x3 vs 3x3",
			func() { New(2, 3).AxpyInPlace(0.5, New(3, 3)) }},
		{"Expand", "tensor: cannot expand 2x3 to 2x2",
			func() { New(2, 3).Expand(2, 2) }},
		{"Col", "tensor: column 5 out of range 3",
			func() { New(2, 3).Col(5) }},
		{"SetCol", "tensor: SetCol length 1 want 2",
			func() { New(2, 3).SetCol(0, []float64{1}) }},
		{"ConcatCols", "tensor: ConcatCols row mismatch 3 vs 2",
			func() { ConcatCols(New(2, 1), New(3, 1)) }},
		{"SliceCols", "tensor: SliceCols [1,5) out of range 3",
			func() { New(2, 3).SliceCols(1, 5) }},
		{"SplitCols", "tensor: SplitCols widths sum 2 want 3",
			func() { New(2, 3).SplitCols([]int{1, 1}) }},
		{"GatherRows", "tensor: GatherRows index 5 out of range 2",
			func() { New(2, 3).GatherRows([]int{5}) }},
		{"SliceRows", "tensor: SliceRows [0,4) out of range 2",
			func() { New(2, 3).SliceRows(0, 4) }},
		{"ConcatRows", "tensor: ConcatRows col mismatch 3 vs 2",
			func() { ConcatRows(New(1, 2), New(1, 3)) }},
		{"ShuffleRows", "tensor: ShuffleRows permutation length 1 want 2",
			func() { New(2, 3).ShuffleRows([]int{0}) }},

		// kernels.go: matmul-family inner dims, destinations, aliasing.
		{"MatMul", "tensor: MatMul shape mismatch 2x3 * 4x5",
			func() { MatMul(New(2, 3), New(4, 5)) }},
		{"MatMulInto inner", "tensor: MatMul shape mismatch 2x3 * 4x5",
			func() { MatMulInto(New(2, 5), New(2, 3), New(4, 5)) }},
		{"MatMulInto dst", "tensor: MatMulInto dst 3x3, want 2x5",
			func() { MatMulInto(New(3, 3), New(2, 3), New(3, 5)) }},
		{"MatMulInto alias", "tensor: MatMulInto dst must not alias an operand",
			func() { a := New(2, 2); MatMulInto(a, a, New(2, 2)) }},
		{"MatMulTA", "tensor: MatMulTA shape mismatch 3x2ᵀ * 4x5",
			func() { MatMulTA(New(3, 2), New(4, 5)) }},
		{"MatMulTAInto inner", "tensor: MatMulTA shape mismatch 3x2ᵀ * 4x5",
			func() { MatMulTAInto(New(2, 5), New(3, 2), New(4, 5)) }},
		{"MatMulTB", "tensor: MatMulTB shape mismatch 2x3 * 5x4ᵀ",
			func() { MatMulTB(New(2, 3), New(5, 4)) }},
		{"MatMulTBInto inner", "tensor: MatMulTB shape mismatch 2x3 * 5x4ᵀ",
			func() { MatMulTBInto(New(2, 5), New(2, 3), New(5, 4)) }},
		{"Affine inner", "tensor: Affine shape mismatch 2x3 * 4x5",
			func() { Affine(New(2, 3), New(4, 5), New(1, 5)) }},
		{"Affine bias", "tensor: Affine bias 1x4, want 1x5",
			func() { Affine(New(2, 3), New(3, 5), New(1, 4)) }},

		// pool.go: pooled constructors.
		{"NewPooledOneHot count", "tensor: one-hot index count 1 does not match 2 rows",
			func() { NewPooledOneHot(2, 3, []int{0}) }},
		{"NewPooledOneHot range", "tensor: one-hot index 7 out of range for 3 columns",
			func() { NewPooledOneHot(1, 3, []int{7}) }},
		{"NewPooledBitmap count", "tensor: bitmap byte count 0 does not match 6 elements",
			func() { NewPooledBitmap(2, 3, nil) }},
		{"NewPooledBitmap stray bits", "tensor: bitmap has bits set past the last element",
			func() { NewPooledBitmap(1, 3, []byte{0xFF}) }},
		{"NewPooled negative", "tensor: negative shape -1x2",
			func() { NewPooled(-1, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("no panic, want %q", tc.want)
				}
				if msg, ok := r.(string); !ok || msg != tc.want {
					t.Fatalf("panic %v, want %q", r, tc.want)
				}
			}()
			tc.call()
		})
	}
}
