package tensor

import (
	"fmt"
	"math"
)

// Cache-blocked matrix kernels. All three products share the same design:
// the k (reduction) dimension is tiled so the streamed panel of b stays in
// cache, the inner loops are unrolled four-wide with register accumulation,
// and rows of dst are distributed across the persistent worker pool. The
// per-element summation order is a pure function of the operand shapes —
// ascending k in groups of four, each group summed left to right — so
// identical inputs always produce bitwise identical outputs (though results
// may differ in low-order bits from a naive ikj loop).

const (
	// matmulKC is the k-dimension tile: a 256-row panel of b (256*cols
	// floats) is revisited for every dst row before moving on, keeping it
	// resident in L2 for the sizes this codebase runs.
	matmulKC = 256
	// transposeBlock tiles Transpose into 32x32 sub-blocks (8 KiB working
	// set) so the strided writes stay within a few cache lines.
	transposeBlock = 32
)

// allFinite reports whether every element of data is finite.
func allFinite(data []float64) bool {
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MatMul returns a*b.
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := newPooledNoZero(a.rows, b.cols)
	clear(out.data)
	matmulAcc(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, reusing dst's storage. dst must have shape
// Rows(a) x Cols(b) and must not alias a or b.
func MatMulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	checkDst(dst, a, b, a.rows, b.cols, "MatMulInto")
	clear(dst.data)
	matmulAcc(dst, a, b)
	return dst
}

// MatMulTA returns aᵀ*b without materializing the transpose: a is KxM, b is
// KxN and the result is MxN. It is the fused form of
// MatMul(a.Transpose(), b) used by backward passes.
func MatMulTA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %dx%dᵀ * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := newPooledNoZero(a.cols, b.cols)
	clear(out.data)
	matmulTAAcc(out, a, b)
	return out
}

// MatMulTAInto computes dst = aᵀ*b, reusing dst's storage. dst must have
// shape Cols(a) x Cols(b) and must not alias a or b.
func MatMulTAInto(dst, a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %dx%dᵀ * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	checkDst(dst, a, b, a.cols, b.cols, "MatMulTAInto")
	clear(dst.data)
	matmulTAAcc(dst, a, b)
	return dst
}

// MatMulTB returns a*bᵀ without materializing the transpose: a is MxN, b is
// PxN and the result is MxP. It is the fused form of
// MatMul(a, b.Transpose()) used by backward passes.
func MatMulTB(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %dx%d * %dx%dᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	out := newPooledNoZero(a.rows, b.rows)
	runRows(kernelTask{kind: kernelMatMulTB, dst: out, a: a, b: b}, a.rows, a.cols*b.rows)
	return out
}

// MatMulTBInto computes dst = a*bᵀ, reusing dst's storage. dst must have
// shape Rows(a) x Rows(b) and must not alias a or b.
func MatMulTBInto(dst, a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %dx%d * %dx%dᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	checkDst(dst, a, b, a.rows, b.rows, "MatMulTBInto")
	runRows(kernelTask{kind: kernelMatMulTB, dst: dst, a: a, b: b}, a.rows, a.cols*b.rows)
	return dst
}

// Affine returns a*b + bias with the 1xCols(b) bias row folded into the
// matmul: dst rows are seeded with the bias and the product accumulates on
// top, saving the broadcast-add pass and its intermediate.
func Affine(a, b, bias *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: Affine shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if bias.rows != 1 || bias.cols != b.cols {
		panic(fmt.Sprintf("tensor: Affine bias %dx%d, want 1x%d", bias.rows, bias.cols, b.cols))
	}
	out := newPooledNoZero(a.rows, b.cols)
	p := b.cols
	for i := 0; i < a.rows; i++ {
		copy(out.data[i*p:(i+1)*p], bias.data)
	}
	matmulAcc(out, a, b)
	return out
}

func checkDst(dst, a, b *Dense, rows, cols int, op string) {
	if dst.rows != rows || dst.cols != cols {
		panic(fmt.Sprintf("tensor: %s dst %dx%d, want %dx%d", op, dst.rows, dst.cols, rows, cols))
	}
	if len(dst.data) == 0 {
		return
	}
	if (len(a.data) > 0 && &dst.data[0] == &a.data[0]) ||
		(len(b.data) > 0 && &dst.data[0] == &b.data[0]) {
		panic("tensor: " + op + " dst must not alias an operand")
	}
}

// matmulAcc adds a*b onto dst (which the caller has initialized), fanning
// rows of dst across the worker pool for large products.
func matmulAcc(dst, a, b *Dense) {
	if len(dst.data) == 0 || a.cols == 0 {
		return
	}
	t := kernelTask{kind: kernelMatMulAcc, dst: dst, a: a, b: b, bFinite: allFinite(b.data)}
	runRows(t, a.rows, a.cols*b.cols)
}

// matmulTATransposeThreshold: below it (operand fits L2) the strided-column
// kernel wins by skipping the copy; above it the column walk thrashes and a
// blocked transpose into a pooled scratch followed by the contiguous kernel
// is faster. The path depends only on a's shape, so outputs stay a pure
// function of the inputs.
const matmulTATransposeThreshold = 1 << 15

// matmulTAAcc adds aᵀ*b onto dst.
func matmulTAAcc(dst, a, b *Dense) {
	if len(dst.data) == 0 || a.rows == 0 {
		return
	}
	if len(a.data) >= matmulTATransposeThreshold {
		at := a.Transpose()
		matmulAcc(dst, at, b)
		at.Release()
		return
	}
	t := kernelTask{kind: kernelMatMulTAAcc, dst: dst, a: a, b: b, bFinite: allFinite(b.data)}
	runRows(t, a.cols, a.rows*b.cols)
}

// matmulAccRange accumulates rows [lo,hi) of dst += a*b. The zero-skip is
// gated on bFinite: 0*finite adds exactly zero, so skipping is legal, but
// when b contains NaN or ±Inf every product must be formed so IEEE
// propagation (0*Inf = NaN) is preserved.
func matmulAccRange(dst, a, b *Dense, lo, hi int, bFinite bool) {
	n, p := a.cols, b.cols
	ad, bd, od := a.data, b.data, dst.data
	for kk := 0; kk < n; kk += matmulKC {
		kend := min(kk+matmulKC, n)
		for i := lo; i < hi; i++ {
			arow := ad[i*n : (i+1)*n]
			orow := od[i*p : (i+1)*p]
			k := kk
			for ; k+3 < kend; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				//lint:ignore floateq exact-zero skip is bit-identical to the multiply it avoids (x+0*y==x for finite y, gated on bFinite)
				if bFinite && a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := bd[k*p : (k+1)*p]
				b1 := bd[(k+1)*p : (k+2)*p]
				b2 := bd[(k+2)*p : (k+3)*p]
				b3 := bd[(k+3)*p : (k+4)*p]
				for j, bv := range b0 {
					orow[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; k < kend; k++ {
				av := arow[k]
				//lint:ignore floateq exact-zero skip is bit-identical to the multiply it avoids
				if bFinite && av == 0 {
					continue
				}
				brow := bd[k*p : (k+1)*p]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// matmulTAAccRange accumulates rows [lo,hi) of dst += aᵀ*b. dst row i is
// a's column i, loaded with stride Cols(a); the b panel access pattern is
// identical to matmulAccRange.
func matmulTAAccRange(dst, a, b *Dense, lo, hi int, bFinite bool) {
	kN, m, n := a.rows, a.cols, b.cols
	ad, bd, od := a.data, b.data, dst.data
	for kk := 0; kk < kN; kk += matmulKC {
		kend := min(kk+matmulKC, kN)
		for i := lo; i < hi; i++ {
			orow := od[i*n : (i+1)*n]
			k := kk
			for ; k+3 < kend; k += 4 {
				a0 := ad[k*m+i]
				a1 := ad[(k+1)*m+i]
				a2 := ad[(k+2)*m+i]
				a3 := ad[(k+3)*m+i]
				//lint:ignore floateq exact-zero skip is bit-identical to the multiply it avoids (x+0*y==x for finite y, gated on bFinite)
				if bFinite && a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := bd[k*n : (k+1)*n]
				b1 := bd[(k+1)*n : (k+2)*n]
				b2 := bd[(k+2)*n : (k+3)*n]
				b3 := bd[(k+3)*n : (k+4)*n]
				for j, bv := range b0 {
					orow[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; k < kend; k++ {
				av := ad[k*m+i]
				//lint:ignore floateq exact-zero skip is bit-identical to the multiply it avoids
				if bFinite && av == 0 {
					continue
				}
				brow := bd[k*n : (k+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// matmulTBRange computes rows [lo,hi) of dst = a*bᵀ as dot products,
// streaming one a row against four b rows with four register accumulators.
// Every output element is written (not accumulated), so the destination
// needs no zero fill and NaN/Inf propagate naturally.
func matmulTBRange(dst, a, b *Dense, lo, hi int) {
	n, p := a.cols, b.rows
	ad, bd, od := a.data, b.data, dst.data
	for i := lo; i < hi; i++ {
		arow := ad[i*n : i*n+n]
		orow := od[i*p : i*p+p]
		j := 0
		for ; j+3 < p; j += 4 {
			b0 := bd[j*n : (j+1)*n]
			b1 := bd[(j+1)*n : (j+2)*n]
			b2 := bd[(j+2)*n : (j+3)*n]
			b3 := bd[(j+3)*n : (j+4)*n]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < p; j++ {
			brow := bd[j*n : (j+1)*n]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// transposeRange writes the transpose of m into dst in 32x32 blocks.
func transposeBlocks(dst, m *Dense) {
	r, c := m.rows, m.cols
	md, dd := m.data, dst.data
	for ii := 0; ii < r; ii += transposeBlock {
		iend := min(ii+transposeBlock, r)
		for jj := 0; jj < c; jj += transposeBlock {
			jend := min(jj+transposeBlock, c)
			for i := ii; i < iend; i++ {
				row := md[i*c : (i+1)*c]
				for j := jj; j < jend; j++ {
					dd[j*r+i] = row[j]
				}
			}
		}
	}
}
