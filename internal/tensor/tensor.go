// Package tensor provides dense two-dimensional float64 matrices and the
// numeric primitives used by the rest of the GTV stack: matrix
// multiplication, broadcasting element-wise arithmetic, reductions,
// column-wise concatenation/slicing and row gathering.
//
// A Dense value is a row-major matrix. All operations either allocate a
// fresh result or, for the *Into variants, write into a caller-provided
// destination so hot loops can avoid allocation. Shapes are validated
// eagerly; shape errors are programming errors and therefore panic with a
// descriptive message rather than returning an error (mirroring the Go
// convention for slice index misuse).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix. Use New or the other
// constructors to create matrices with a shape.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zero-filled matrix with the given shape.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice returns a matrix that adopts data as its backing storage.
// len(data) must equal rows*cols. The slice is not copied.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	out := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged row %d: len %d want %d", i, len(r), cols))
		}
		copy(out.data[i*cols:(i+1)*cols], r)
	}
	return out
}

// Scalar returns a 1x1 matrix holding v.
func Scalar(v float64) *Dense {
	return &Dense{rows: 1, cols: 1, data: []float64{v}}
}

// Full returns a rows x cols matrix with every element set to v.
func Full(rows, cols int, v float64) *Dense {
	out := New(rows, cols)
	for i := range out.data {
		out.data[i] = v
	}
	return out
}

// Randn returns a rows x cols matrix of samples from N(mean, std^2) drawn
// from rng.
func Randn(rng *rand.Rand, rows, cols int, mean, std float64) *Dense {
	out := New(rows, cols)
	for i := range out.data {
		out.data[i] = rng.NormFloat64()*std + mean
	}
	return out
}

// RandUniform returns a rows x cols matrix of samples from U[lo, hi).
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Dense {
	out := New(rows, cols)
	for i := range out.data {
		out.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Shape returns (rows, cols).
func (m *Dense) Shape() (int, int) { return m.rows, m.cols }

// Size returns the total number of elements.
func (m *Dense) Size() int { return len(m.data) }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Data returns the backing slice. Mutating it mutates the matrix.
func (m *Dense) Data() []float64 { return m.data }

// RawRow returns the backing sub-slice for row i (no copy).
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := newPooledNoZero(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyInto copies m into dst when dst's backing storage can hold it
// (reshaping dst as needed) and allocates a fresh copy otherwise, so
// callers with a scratch buffer avoid the allocation of Clone. It returns
// the matrix holding the copy.
func (m *Dense) CopyInto(dst *Dense) *Dense {
	dst = Reuse(dst, m.rows, m.cols)
	copy(dst.data, m.data)
	return dst
}

// Reuse returns a rows x cols matrix, reusing scratch's backing storage
// when its capacity suffices and allocating otherwise. The returned
// matrix's contents are unspecified until overwritten; scratch (which may
// be nil) must not be used again if it was absorbed.
func Reuse(scratch *Dense, rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	n := rows * cols
	if scratch != nil && cap(scratch.data) >= n {
		scratch.rows, scratch.cols = rows, cols
		scratch.data = scratch.data[:cap(scratch.data)][:n]
		return scratch
	}
	return newPooledNoZero(rows, cols)
}

// CopyFrom copies src into m. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Reshape returns a view of m with the new shape sharing the same data.
func (m *Dense) Reshape(rows, cols int) *Dense {
	if rows*cols != len(m.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", m.rows, m.cols, rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: m.data}
}

// String renders the matrix for debugging; large matrices are abbreviated.
func (m *Dense) String() string {
	const maxRender = 8
	if m.rows <= maxRender && m.cols <= maxRender {
		s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
		for i := 0; i < m.rows; i++ {
			if i > 0 {
				s += "; "
			}
			for j := 0; j < m.cols; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("%.4g", m.At(i, j))
			}
		}
		return s + "]"
	}
	return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
}

// Apply returns a new matrix with f applied to every element.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	out := newPooledNoZero(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of m in place and returns m.
func (m *Dense) ApplyInPlace(f func(float64) float64) *Dense {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
	return m
}

// Equal reports whether m and n have the same shape and identical elements.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.data {
		//lint:ignore floateq Equal's contract is bitwise identity — it backs the same-seed replay tests
		if m.data[i] != n.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and n have the same shape and all elements
// within tol of each other.
func (m *Dense) AllClose(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (m *Dense) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Transpose returns the transpose of m, computed in cache-friendly 32x32
// blocks (see kernels.go).
func (m *Dense) Transpose() *Dense {
	out := newPooledNoZero(m.cols, m.rows)
	transposeBlocks(out, m)
	return out
}

// TransposeInto writes the transpose of m into dst, which must have shape
// Cols(m) x Rows(m) and must not alias m. Callers with a scratch buffer
// (see Reuse) avoid the allocation of Transpose.
func TransposeInto(dst, m *Dense) *Dense {
	if dst.rows != m.cols || dst.cols != m.rows {
		panic(fmt.Sprintf("tensor: TransposeInto dst %dx%d, want %dx%d", dst.rows, dst.cols, m.cols, m.rows))
	}
	if len(dst.data) > 0 && len(m.data) > 0 && &dst.data[0] == &m.data[0] {
		panic("tensor: TransposeInto dst must not alias m")
	}
	transposeBlocks(dst, m)
	return dst
}
