// Package tensor provides dense two-dimensional float64 matrices and the
// numeric primitives used by the rest of the GTV stack: matrix
// multiplication, broadcasting element-wise arithmetic, reductions,
// column-wise concatenation/slicing and row gathering.
//
// A Dense value is a row-major matrix. All operations either allocate a
// fresh result or, for the *Into variants, write into a caller-provided
// destination so hot loops can avoid allocation. Shapes are validated
// eagerly; shape errors are programming errors and therefore panic with a
// descriptive message rather than returning an error (mirroring the Go
// convention for slice index misuse).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Dense is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix. Use New or the other
// constructors to create matrices with a shape.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zero-filled matrix with the given shape.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice returns a matrix that adopts data as its backing storage.
// len(data) must equal rows*cols. The slice is not copied.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	out := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged row %d: len %d want %d", i, len(r), cols))
		}
		copy(out.data[i*cols:(i+1)*cols], r)
	}
	return out
}

// Scalar returns a 1x1 matrix holding v.
func Scalar(v float64) *Dense {
	return &Dense{rows: 1, cols: 1, data: []float64{v}}
}

// Full returns a rows x cols matrix with every element set to v.
func Full(rows, cols int, v float64) *Dense {
	out := New(rows, cols)
	for i := range out.data {
		out.data[i] = v
	}
	return out
}

// Randn returns a rows x cols matrix of samples from N(mean, std^2) drawn
// from rng.
func Randn(rng *rand.Rand, rows, cols int, mean, std float64) *Dense {
	out := New(rows, cols)
	for i := range out.data {
		out.data[i] = rng.NormFloat64()*std + mean
	}
	return out
}

// RandUniform returns a rows x cols matrix of samples from U[lo, hi).
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Dense {
	out := New(rows, cols)
	for i := range out.data {
		out.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Shape returns (rows, cols).
func (m *Dense) Shape() (int, int) { return m.rows, m.cols }

// Size returns the total number of elements.
func (m *Dense) Size() int { return len(m.data) }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Data returns the backing slice. Mutating it mutates the matrix.
func (m *Dense) Data() []float64 { return m.data }

// RawRow returns the backing sub-slice for row i (no copy).
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Reshape returns a view of m with the new shape sharing the same data.
func (m *Dense) Reshape(rows, cols int) *Dense {
	if rows*cols != len(m.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", m.rows, m.cols, rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: m.data}
}

// String renders the matrix for debugging; large matrices are abbreviated.
func (m *Dense) String() string {
	const maxRender = 8
	if m.rows <= maxRender && m.cols <= maxRender {
		s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
		for i := 0; i < m.rows; i++ {
			if i > 0 {
				s += "; "
			}
			for j := 0; j < m.cols; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("%.4g", m.At(i, j))
			}
		}
		return s + "]"
	}
	return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
}

// Apply returns a new matrix with f applied to every element.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of m in place and returns m.
func (m *Dense) ApplyInPlace(f func(float64) float64) *Dense {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
	return m
}

// Equal reports whether m and n have the same shape and identical elements.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != n.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and n have the same shape and all elements
// within tol of each other.
func (m *Dense) AllClose(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (m *Dense) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// matmulParallelThreshold is the number of multiply-adds above which MatMul
// fans work out across GOMAXPROCS goroutines.
const matmulParallelThreshold = 1 << 17

// MatMul returns a*b.
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	work := a.rows * a.cols * b.cols
	if work < matmulParallelThreshold {
		matmulRange(a, b, out, 0, a.rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.rows {
		workers = a.rows
	}
	var wg sync.WaitGroup
	chunk := (a.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRange(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matmulRange computes rows [lo,hi) of out = a*b using an ikj loop order
// that streams through b row-by-row for cache friendliness.
func matmulRange(a, b, out *Dense, lo, hi int) {
	n, p := a.cols, b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*p : (i+1)*p]
		for k := 0; k < n; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns the transpose of m.
func (m *Dense) Transpose() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}
