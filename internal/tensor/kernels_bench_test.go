package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel microbenchmarks behind BENCH_kernels.json (make bench-kernels).
// Sizes span the shapes the GTV training loop actually runs (batch 128,
// width 256) up to 1024 to expose cache-blocking behavior.

var benchSizes = []int{32, 64, 128, 256, 512, 1024}

func BenchmarkMatMul(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, n, n, 0, 1)
			y := Randn(rng, n, n, 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(x, y).Release()
			}
		})
	}
}

func BenchmarkMatMulTA(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, n, n, 0, 1)
			y := Randn(rng, n, n, 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTA(x, y).Release()
			}
		})
	}
}

func BenchmarkMatMulTB(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, n, n, 0, 1)
			y := Randn(rng, n, n, 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTB(x, y).Release()
			}
		})
	}
}

// BenchmarkTransposeMatMul is the unfused form MatMulTA replaces; kept so
// the fused speedup stays measurable in one run.
func BenchmarkTransposeMatMul(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, n, n, 0, 1)
			y := Randn(rng, n, n, 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xt := x.Transpose()
				MatMul(xt, y).Release()
				xt.Release()
			}
		})
	}
}

func BenchmarkTranspose(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, n, n, 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Transpose().Release()
			}
		})
	}
}

func BenchmarkBroadcastAdd(b *testing.B) {
	for _, n := range []int{32, 128, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, n, n, 0, 1)
			y := Randn(rng, 1, n, 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Add(x, y).Release()
			}
		})
	}
}

func BenchmarkBroadcastAddInto(b *testing.B) {
	for _, n := range []int{128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, n, n, 0, 1)
			y := Randn(rng, 1, n, 0, 1)
			dst := New(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AddInto(dst, x, y)
			}
		})
	}
}
