package tensor

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
)

// This file holds the two allocation-avoidance mechanisms behind the hot
// training path:
//
//   - a size-bucketed free list of Dense matrices (power-of-two capacity
//     classes backed by sync.Pool), so per-step intermediates can be
//     recycled instead of churning the GC, and
//   - a persistent worker pool shared by every parallel kernel, so MatMul
//     and friends stop spawning throwaway goroutines on each call.
//
// See DESIGN.md ("Kernel architecture") for the release rules.

const (
	// minSlabBits/maxSlabBits bound the pooled capacity classes: slabs of
	// 2^6 = 64 floats (512 B) up to 2^22 = 4M floats (32 MiB). Smaller
	// requests are rounded up to the minimum class; larger ones bypass the
	// pool entirely.
	minSlabBits = 6
	maxSlabBits = 22
)

// slabPools holds one free list per capacity class. It stores *Dense (the
// struct and its backing slice travel together), so neither Get nor Put
// boxes a value into an interface allocation.
var slabPools [maxSlabBits + 1]sync.Pool

// bucketFor returns the capacity class for an n-element request.
func bucketFor(n int) int {
	b := bits.Len(uint(n - 1)) // ceil(log2 n) for n >= 2
	if b < minSlabBits {
		b = minSlabBits
	}
	return b
}

// NewPooled returns a zero-filled rows x cols matrix whose backing storage
// may be recycled from the package free list. It is observably identical to
// New; the difference is that a caller which can prove the matrix dead may
// hand it back with Release so the next NewPooled of a similar size reuses
// the allocation. Buffers obtained from the pool are always zeroed before
// they are returned, so no data leaks across a Get.
func NewPooled(rows, cols int) *Dense {
	return getDense(rows, cols, true)
}

// newPooledNoZero is NewPooled without the zero fill, for internal callers
// that overwrite every element before the matrix escapes.
func newPooledNoZero(rows, cols int) *Dense {
	return getDense(rows, cols, false)
}

// NewPooledUninit is NewPooled without the zero fill: the contents are
// unspecified (possibly a previous occupant's data), so the caller must
// overwrite every element before the matrix escapes. The wire decoder uses
// it to land received payloads in recycled buffers without paying a clear
// that the decode loop immediately overwrites.
func NewPooledUninit(rows, cols int) *Dense {
	return getDense(rows, cols, false)
}

// NewPooledOneHot returns a pooled rows x cols matrix with row i holding a
// single 1.0 at column hot[i]; hot[i] < 0 leaves the row all-zero. It is
// the decode path for the wire one-hot matrix layout: one index read per
// row instead of rebuilding the dense buffer element by element.
func NewPooledOneHot(rows, cols int, hot []int) *Dense {
	if len(hot) != rows {
		panic(fmt.Sprintf("tensor: one-hot index count %d does not match %d rows", len(hot), rows))
	}
	m := getDense(rows, cols, true)
	data := m.data
	for i, h := range hot {
		if h < 0 {
			continue
		}
		if h >= cols {
			m.Release()
			panic(fmt.Sprintf("tensor: one-hot index %d out of range for %d columns", h, cols))
		}
		data[i*cols+h] = 1
	}
	return m
}

// NewPooledBitmap returns a pooled rows x cols matrix whose elements are
// 1.0 where the corresponding bit of bits is set, in row-major LSB-first
// order over the flattened element index. bits must hold exactly
// ceil(rows*cols/8) bytes with all trailing pad bits clear. It is the
// decode path for the wire bitmap matrix layout.
func NewPooledBitmap(rows, cols int, bits []byte) *Dense {
	n := rows * cols
	if len(bits) != (n+7)/8 {
		panic(fmt.Sprintf("tensor: bitmap byte count %d does not match %d elements", len(bits), n))
	}
	if n%8 != 0 && len(bits) > 0 && bits[len(bits)-1]>>(uint(n)%8) != 0 {
		panic("tensor: bitmap has bits set past the last element")
	}
	m := getDense(rows, cols, true)
	data := m.data
	for bi, b := range bits {
		if b == 0 {
			continue
		}
		base := bi * 8
		for j := 0; j < 8; j++ {
			if b&(1<<uint(j)) != 0 {
				data[base+j] = 1
			}
		}
	}
	return m
}

func getDense(rows, cols int, zero bool) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	n := rows * cols
	if n == 0 {
		return &Dense{rows: rows, cols: cols}
	}
	b := bucketFor(n)
	if b > maxSlabBits {
		return &Dense{rows: rows, cols: cols, data: make([]float64, n)}
	}
	if v := slabPools[b].Get(); v != nil {
		d := v.(*Dense)
		d.rows, d.cols = rows, cols
		d.data = d.data[:cap(d.data)][:n]
		if zero {
			clear(d.data)
		}
		return d
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, n, 1<<b)}
}

// Release hands m back to the free list for reuse by a future NewPooled.
// The caller must be the sole owner of m AND of its backing storage: no
// other matrix (Reshape view, FromSlice adoption) may alias the data, and m
// must not be used again afterwards. Matrices whose capacity is not a pooled
// power-of-two class are dropped silently, so Release is always safe on
// matrices that came from New or FromSlice — it just does nothing for them.
func (m *Dense) Release() {
	if m == nil {
		return
	}
	c := cap(m.data)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b := bits.Len(uint(c)) - 1
	if b < minSlabBits || b > maxSlabBits {
		return
	}
	slabPools[b].Put(m)
}

// ---- persistent worker pool ----

// matmulParallelThreshold is the amount of per-call work (multiply-adds for
// the matmul kernels, element visits for elementwise ones) above which a
// kernel fans its row range out across the worker pool.
const matmulParallelThreshold = 1 << 17

// kernelKind selects which kernel a queued task runs. Matmul kernels are
// dispatched by kind rather than closure so the single-threaded fast path
// and the per-chunk submissions are allocation-free.
type kernelKind uint8

const (
	kernelMatMulAcc kernelKind = iota
	kernelMatMulTAAcc
	kernelMatMulTB
	kernelFunc
)

// kernelTask is one row-range of work. Tasks travel through the channel by
// value; only the shared WaitGroup is heap-allocated per parallel dispatch.
type kernelTask struct {
	kind    kernelKind
	dst     *Dense
	a, b    *Dense
	bFinite bool
	f       func(lo, hi int) // kernelFunc only
	lo, hi  int
	wg      *sync.WaitGroup
}

var (
	workerOnce sync.Once
	numWorkers int
	taskCh     chan kernelTask
)

// startWorkers lazily brings up GOMAXPROCS-1 persistent workers (the
// submitting goroutine always computes one chunk itself, so total
// parallelism is GOMAXPROCS). On a single-CPU machine no goroutines are
// created and every kernel runs inline.
func startWorkers() {
	numWorkers = runtime.GOMAXPROCS(0)
	if numWorkers < 1 {
		numWorkers = 1
	}
	if numWorkers == 1 {
		return
	}
	taskCh = make(chan kernelTask, 8*numWorkers)
	for i := 0; i < numWorkers-1; i++ {
		//lint:ignore goroleak process-lifetime kernel worker pool: taskCh is deliberately never closed, the workers die with the process
		go func() {
			for t := range taskCh {
				runKernelRange(t)
				t.wg.Done()
			}
		}()
	}
}

func poolWorkers() int {
	workerOnce.Do(startWorkers)
	return numWorkers
}

func runKernelRange(t kernelTask) {
	switch t.kind {
	case kernelMatMulAcc:
		matmulAccRange(t.dst, t.a, t.b, t.lo, t.hi, t.bFinite)
	case kernelMatMulTAAcc:
		matmulTAAccRange(t.dst, t.a, t.b, t.lo, t.hi, t.bFinite)
	case kernelMatMulTB:
		matmulTBRange(t.dst, t.a, t.b, t.lo, t.hi)
	case kernelFunc:
		t.f(t.lo, t.hi)
	}
}

// runRows executes t over rows [0, rows), splitting the range across the
// worker pool when rows*rowWork crosses matmulParallelThreshold. The
// submitting goroutine computes the first chunk itself. Every chunk writes a
// disjoint row range and the per-row summation order is fixed by the kernel,
// so results are bitwise identical whether the task runs inline or split.
//
// Queued tasks must never call runRows themselves (workers do not submit),
// which keeps the fixed-size pool deadlock-free.
func runRows(t kernelTask, rows, rowWork int) {
	if poolWorkers() == 1 || rows <= 1 || rows*rowWork < matmulParallelThreshold {
		if rows > 0 {
			t.lo, t.hi = 0, rows
			runKernelRange(t)
		}
		return
	}
	chunks := numWorkers
	if chunks > rows {
		chunks = rows
	}
	chunk := (rows + chunks - 1) / chunks
	var wg sync.WaitGroup
	t.wg = &wg
	for lo := chunk; lo < rows; lo += chunk {
		hi := min(lo+chunk, rows)
		sub := t
		sub.lo, sub.hi = lo, hi
		wg.Add(1)
		taskCh <- sub
	}
	t.lo, t.hi = 0, chunk
	runKernelRange(t)
	wg.Wait()
}

// parallelRowsFunc fans an arbitrary row-range function out across the
// worker pool (used by the large elementwise paths). Callers should only
// reach for it once they know the work is large; the closure allocates.
func parallelRowsFunc(rows, rowWork int, f func(lo, hi int)) {
	runRows(kernelTask{kind: kernelFunc, f: f}, rows, rowWork)
}
