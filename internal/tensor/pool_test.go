package tensor

import "testing"

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	f()
}

// TestNewPooledOneHot: the decoder-facing constructor must produce exactly
// one 1.0 per row with a hot index (none for -1) on an otherwise zero
// pooled buffer, and reject out-of-range indices.
func TestNewPooledOneHot(t *testing.T) {
	m := NewPooledOneHot(3, 4, []int{2, -1, 0})
	want := [][]float64{{0, 0, 1, 0}, {0, 0, 0, 0}, {1, 0, 0, 0}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("element (%d,%d) = %v want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
	m.Release()

	mustPanic(t, "hot length mismatch", func() { NewPooledOneHot(3, 4, []int{1}) })
	mustPanic(t, "hot index out of range", func() { NewPooledOneHot(1, 4, []int{4}) })
}

// TestNewPooledBitmap: LSB-first row-major bit unpacking into a pooled
// buffer, with strict length and pad-bit validation (pad bits are part of
// the wire contract: a frame with junk there must not decode).
func TestNewPooledBitmap(t *testing.T) {
	// 2x5 = 10 bits -> 2 bytes: rows {1,0,1,1,0}, {0,1,0,1,1}.
	// Flat bits (LSB first): 1,0,1,1,0,0,1,0 -> 0x4D; 1,1 -> 0x03.
	m := NewPooledBitmap(2, 5, []byte{0x4D, 0x03})
	want := [][]float64{{1, 0, 1, 1, 0}, {0, 1, 0, 1, 1}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("element (%d,%d) = %v want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
	m.Release()

	// Zero-bit shape takes an empty bitmap.
	z := NewPooledBitmap(0, 5, nil)
	z.Release()

	mustPanic(t, "bitmap length mismatch", func() { NewPooledBitmap(2, 5, []byte{0x4D}) })
	mustPanic(t, "pad bits set", func() { NewPooledBitmap(2, 5, []byte{0x4D, 0xF3}) })
}
