package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if r, c := m.Shape(); r != 2 || c != 3 {
		t.Fatalf("Shape() = %d,%d want 2,3", r, c)
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v want 0", got)
	}
}

func TestFromSliceAdoptsStorage(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, data)
	data[3] = 9
	if got := m.At(1, 1); got != 9 {
		t.Fatalf("FromSlice should adopt backing slice, At(1,1)=%v want 9", got)
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows built %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v want %v", got, want)
	}
}

// naiveMatMul is an independent reference implementation used to verify the
// cache-blocked and parallel paths.
func naiveMatMul(a, b *Dense) *Dense {
	out := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ m, n, p int }{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 23}, {64, 64, 64},
	} {
		a := Randn(rng, tc.m, tc.n, 0, 1)
		b := Randn(rng, tc.n, tc.p, 0, 1)
		if got, want := MatMul(a, b), naiveMatMul(a, b); !got.AllClose(want, 1e-9) {
			t.Fatalf("MatMul mismatch at %dx%dx%d", tc.m, tc.n, tc.p)
		}
	}
}

func TestMatMulParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Large enough to cross matmulParallelThreshold.
	a := Randn(rng, 128, 96, 0, 1)
	b := Randn(rng, 96, 64, 0, 1)
	if got, want := MatMul(a, b), naiveMatMul(a, b); !got.AllClose(want, 1e-9) {
		t.Fatal("parallel MatMul diverges from naive reference")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.Transpose()
	want := FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !got.Equal(want) {
		t.Fatalf("Transpose = %v want %v", got, want)
	}
}

func TestBroadcastAdd(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	tests := []struct {
		name string
		b    *Dense
		want *Dense
	}{
		{"same shape", FromRows([][]float64{{10, 20}, {30, 40}}), FromRows([][]float64{{11, 22}, {33, 44}})},
		{"row vector", FromRows([][]float64{{10, 20}}), FromRows([][]float64{{11, 22}, {13, 24}})},
		{"col vector", FromRows([][]float64{{10}, {20}}), FromRows([][]float64{{11, 12}, {23, 24}})},
		{"scalar", Scalar(100), FromRows([][]float64{{101, 102}, {103, 104}})},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Add(a, tc.b); !got.Equal(tc.want) {
				t.Fatalf("Add = %v want %v", got, tc.want)
			}
		})
	}
}

func TestSubMulDiv(t *testing.T) {
	a := FromRows([][]float64{{4, 9}, {16, 25}})
	b := FromRows([][]float64{{2, 3}, {4, 5}})
	if got := Sub(a, b); !got.Equal(FromRows([][]float64{{2, 6}, {12, 20}})) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromRows([][]float64{{8, 27}, {64, 125}})) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(a, b); !got.Equal(FromRows([][]float64{{2, 3}, {4, 5}})) {
		t.Fatalf("Div = %v", got)
	}
}

func TestExpand(t *testing.T) {
	tests := []struct {
		name string
		in   *Dense
		want *Dense
	}{
		{"scalar", Scalar(2), Full(2, 3, 2)},
		{"row", FromRows([][]float64{{1, 2, 3}}), FromRows([][]float64{{1, 2, 3}, {1, 2, 3}})},
		{"col", FromRows([][]float64{{1}, {2}}), FromRows([][]float64{{1, 1, 1}, {2, 2, 2}})},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r, c := tc.want.Shape()
			if got := tc.in.Expand(r, c); !got.Equal(tc.want) {
				t.Fatalf("Expand = %v want %v", got, tc.want)
			}
		})
	}
}

func TestReductions(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := m.Sum(); got != 21 {
		t.Fatalf("Sum = %v", got)
	}
	if got := m.Mean(); got != 3.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := m.SumRows(); !got.Equal(FromRows([][]float64{{5, 7, 9}})) {
		t.Fatalf("SumRows = %v", got)
	}
	if got := m.SumCols(); !got.Equal(FromRows([][]float64{{6}, {15}})) {
		t.Fatalf("SumCols = %v", got)
	}
	if got := m.MeanRows(); !got.Equal(FromRows([][]float64{{2.5, 3.5, 4.5}})) {
		t.Fatalf("MeanRows = %v", got)
	}
}

func TestConcatSplitColsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 4, 2, 0, 1)
	b := Randn(rng, 4, 3, 0, 1)
	c := Randn(rng, 4, 1, 0, 1)
	joined := ConcatCols(a, b, c)
	if joined.Cols() != 6 {
		t.Fatalf("joined cols = %d", joined.Cols())
	}
	parts := joined.SplitCols([]int{2, 3, 1})
	for i, want := range []*Dense{a, b, c} {
		if !parts[i].Equal(want) {
			t.Fatalf("part %d mismatch", i)
		}
	}
}

func TestConcatRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	got := ConcatRows(a, b)
	want := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !got.Equal(want) {
		t.Fatalf("ConcatRows = %v", got)
	}
}

func TestGatherRows(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	got := m.GatherRows([]int{2, 0, 2})
	want := FromRows([][]float64{{3, 3}, {1, 1}, {3, 3}})
	if !got.Equal(want) {
		t.Fatalf("GatherRows = %v", got)
	}
}

func TestShuffleRowsIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Randn(rng, 10, 3, 0, 1)
	perm := Permutation(rng, 10)
	shuffled := m.ShuffleRows(perm)
	// Every original row must appear exactly once.
	for i := 0; i < 10; i++ {
		found := 0
		for k := 0; k < 10; k++ {
			if perm[k] == i {
				found++
				for j := 0; j < 3; j++ {
					if shuffled.At(k, j) != m.At(i, j) {
						t.Fatalf("row %d content mismatch after shuffle", i)
					}
				}
			}
		}
		if found != 1 {
			t.Fatalf("row %d appears %d times", i, found)
		}
	}
}

func TestRowL2NormsAndNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 4}, {0, 0}})
	norms := m.RowL2Norms()
	if norms.At(0, 0) != 5 || norms.At(1, 0) != 0 {
		t.Fatalf("RowL2Norms = %v", norms)
	}
	if got := m.Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromRows([][]float64{{1, 5, 2}, {7, 0, 3}})
	got := m.ArgmaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestColSetCol(t *testing.T) {
	m := New(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	got := m.Col(1)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Col = %v", got)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromRows([][]float64{{1}, {2}, {3}, {4}})
	got := m.SliceRows(1, 3)
	if !got.Equal(FromRows([][]float64{{2}, {3}})) {
		t.Fatalf("SliceRows = %v", got)
	}
}

func TestHasNaN(t *testing.T) {
	m := New(1, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix reported NaN")
	}
	m.Set(0, 1, math.NaN())
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
	m.Set(0, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestApplyAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	doubled := m.Apply(func(v float64) float64 { return 2 * v })
	if !doubled.Equal(FromRows([][]float64{{2, 4}})) {
		t.Fatalf("Apply = %v", doubled)
	}
	clone := m.Clone()
	clone.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should not share storage")
	}
}

// Property: transposing twice is the identity.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := Randn(rng, r, c, 0, 1)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestMatMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, p := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, m, n, 0, 1)
		b := Randn(rng, n, p, 0, 1)
		left := MatMul(a, b).Transpose()
		right := MatMul(b.Transpose(), a.Transpose())
		return left.AllClose(right, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ConcatCols then SplitCols recovers the parts.
func TestConcatSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(5)
		n := 1 + rng.Intn(4)
		parts := make([]*Dense, n)
		widths := make([]int, n)
		for i := range parts {
			widths[i] = 1 + rng.Intn(4)
			parts[i] = Randn(rng, rows, widths[i], 0, 1)
		}
		back := ConcatCols(parts...).SplitCols(widths)
		for i := range parts {
			if !back[i].Equal(parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := Randn(rng, 128, 128, 0, 1)
	y := Randn(rng, 128, 128, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul512(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := Randn(rng, 512, 512, 0, 1)
	y := Randn(rng, 512, 512, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
