package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// ---- naive reference kernels ----
//
// The blocked/fused kernels are validated against textbook loops (see also
// naiveMatMul in tensor_test.go): any tiling or unrolling bug shows up as a
// drift beyond the 1e-9 agreement bound on random inputs.

func naiveMatMulTA(a, b *Dense) *Dense {
	out := New(a.Cols(), b.Cols())
	for i := 0; i < a.Cols(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Rows(); k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func naiveMatMulTB(a, b *Dense) *Dense {
	out := New(a.Rows(), b.Rows())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Rows(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// kernelShapes covers the shapes the tiling has to get right: single
// row/column operands, exact multiples of the unroll width and the k tile,
// and off-by-one straddles of both.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{1, 64, 33}, // 1xN against the unroll boundary
	{33, 64, 1}, // Nx1 result column
	{4, 4, 4},
	{3, 5, 7},   // nothing divides the tile or unroll
	{8, 256, 8}, // k exactly one tile
	{8, 257, 8}, // k one past a tile
	{8, 259, 8}, // tile tail of 3 (partial unroll group)
	{17, 31, 13},
	{32, 32, 32},
	{64, 100, 48},
}

func TestKernelsMatchNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range kernelShapes {
		a := Randn(rng, sh.m, sh.k, 0, 1)
		b := Randn(rng, sh.k, sh.n, 0, 1)
		if got, want := MatMul(a, b), naiveMatMul(a, b); !got.AllClose(want, 1e-9) {
			t.Errorf("MatMul %dx%d * %dx%d deviates from naive reference", sh.m, sh.k, sh.k, sh.n)
		}
		at := Randn(rng, sh.k, sh.m, 0, 1)
		if got, want := MatMulTA(at, b), naiveMatMulTA(at, b); !got.AllClose(want, 1e-9) {
			t.Errorf("MatMulTA %dx%d * %dx%d deviates from naive reference", sh.k, sh.m, sh.k, sh.n)
		}
		bt := Randn(rng, sh.n, sh.k, 0, 1)
		if got, want := MatMulTB(a, bt), naiveMatMulTB(a, bt); !got.AllClose(want, 1e-9) {
			t.Errorf("MatMulTB %dx%d * %dx%d deviates from naive reference", sh.m, sh.k, sh.n, sh.k)
		}
	}
}

func TestFusedKernelsMatchTransposeForms(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range kernelShapes {
		a := Randn(rng, sh.k, sh.m, 0, 1)
		b := Randn(rng, sh.k, sh.n, 0, 1)
		if got, want := MatMulTA(a, b), MatMul(a.Transpose(), b); !got.AllClose(want, 1e-9) {
			t.Errorf("MatMulTA differs from Transpose+MatMul at %+v", sh)
		}
		c := Randn(rng, sh.m, sh.k, 0, 1)
		d := Randn(rng, sh.n, sh.k, 0, 1)
		if got, want := MatMulTB(c, d), MatMul(c, d.Transpose()); !got.AllClose(want, 1e-9) {
			t.Errorf("MatMulTB differs from MatMul+Transpose at %+v", sh)
		}
	}
}

func TestAffineMatchesMatMulAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range kernelShapes {
		x := Randn(rng, sh.m, sh.k, 0, 1)
		w := Randn(rng, sh.k, sh.n, 0, 1)
		bias := Randn(rng, 1, sh.n, 0, 1)
		if got, want := Affine(x, w, bias), Add(MatMul(x, w), bias); !got.AllClose(want, 1e-9) {
			t.Errorf("Affine differs from MatMul+Add at %+v", sh)
		}
	}
}

func FuzzMatMulAgainstNaive(f *testing.F) {
	f.Add(int64(1), 3, 5, 7)
	f.Add(int64(2), 1, 300, 1)
	f.Add(int64(3), 33, 257, 31)
	f.Fuzz(func(t *testing.T, seed int64, m, k, n int) {
		m, k, n = 1+abs(m)%48, 1+abs(k)%300, 1+abs(n)%48
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, m, k, 0, 1)
		b := Randn(rng, k, n, 0, 1)
		if !MatMul(a, b).AllClose(naiveMatMul(a, b), 1e-9) {
			t.Fatalf("MatMul %dx%dx%d deviates from naive reference", m, k, n)
		}
		c := Randn(rng, m, n, 0, 1)
		if !MatMulTA(a, c).AllClose(naiveMatMulTA(a, c), 1e-9) {
			t.Fatalf("MatMulTA (%dx%d)ᵀ*(%dx%d) deviates from naive reference", m, k, m, n)
		}
		d := Randn(rng, n, k, 0, 1)
		if !MatMulTB(a, d).AllClose(naiveMatMulTB(a, d), 1e-9) {
			t.Fatalf("MatMulTB (%dx%d)*(%dx%d)ᵀ deviates from naive reference", m, k, n, k)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestMatMulPropagatesNonFinite is the regression test for the zero-skip
// fast path: the seed kernel skipped a==0 unconditionally, silently turning
// 0*Inf and 0*NaN (which are NaN under IEEE 754) into 0.
func TestMatMulPropagatesNonFinite(t *testing.T) {
	cases := []struct {
		name string
		bv   float64
	}{
		{"inf", math.Inf(1)},
		{"neginf", math.Inf(-1)},
		{"nan", math.NaN()},
	}
	for _, tc := range cases {
		// a = [0 1], b = [bv; 1]: the product is 0*bv + 1 = NaN.
		a := FromSlice(1, 2, []float64{0, 1})
		b := FromSlice(2, 1, []float64{tc.bv, 1})
		if got := MatMul(a, b).At(0, 0); !math.IsNaN(got) {
			t.Errorf("MatMul %s: got %v, want NaN", tc.name, got)
		}
		if got := MatMulTA(a.Transpose(), b).At(0, 0); !math.IsNaN(got) {
			t.Errorf("MatMulTA %s: got %v, want NaN", tc.name, got)
		}
		if got := MatMulTB(a, b.Transpose()).At(0, 0); !math.IsNaN(got) {
			t.Errorf("MatMulTB %s: got %v, want NaN", tc.name, got)
		}
	}
	// A whole zero group of four must not skip a non-finite b panel either.
	a := New(1, 8)
	a.Set(0, 7, 1)
	b := New(8, 1)
	b.Set(0, 0, math.Inf(1))
	b.Set(7, 0, 1)
	if got := MatMul(a, b).At(0, 0); !math.IsNaN(got) {
		t.Errorf("MatMul unrolled group: got %v, want NaN", got)
	}
	// NaN on the left side must survive regardless of the skip.
	an := FromSlice(1, 2, []float64{math.NaN(), 0})
	bn := FromSlice(2, 1, []float64{1, 1})
	if got := MatMul(an, bn).At(0, 0); !math.IsNaN(got) {
		t.Errorf("MatMul NaN in a: got %v, want NaN", got)
	}
}

// TestMatMulDeterministic: identical inputs must give bitwise identical
// outputs, run to run — the fixed tiled summation order is part of the
// kernel contract (same-seed training depends on it).
func TestMatMulDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := Randn(rng, 65, 300, 0, 1e3)
	b := Randn(rng, 300, 37, 0, 1e3)
	first := MatMul(a, b)
	ta := MatMulTA(a.Transpose(), b)
	tb := MatMulTB(a, b.Transpose())
	for i := 0; i < 3; i++ {
		if !MatMul(a, b).Equal(first) {
			t.Fatal("MatMul is not bitwise deterministic")
		}
		if !MatMulTA(a.Transpose(), b).Equal(ta) {
			t.Fatal("MatMulTA is not bitwise deterministic")
		}
		if !MatMulTB(a, b.Transpose()).Equal(tb) {
			t.Fatal("MatMulTB is not bitwise deterministic")
		}
	}
}

func TestIntoVariantsAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := Randn(rng, 9, 17, 0, 1)
	b := Randn(rng, 17, 5, 0, 1)

	dst := Full(9, 5, 42) // stale contents must be fully overwritten
	if got := MatMulInto(dst, a, b); !got.AllClose(naiveMatMul(a, b), 1e-9) {
		t.Error("MatMulInto differs from naive reference")
	}
	at := a.Transpose()
	ta := Full(9, 5, 42)
	if got := MatMulTAInto(ta, at, b); !got.AllClose(naiveMatMulTA(at, b), 1e-9) {
		t.Error("MatMulTAInto differs from naive reference")
	}
	ab := naiveMatMul(a, b) // 9x5
	tb := Full(9, 17, 42)
	if got := MatMulTBInto(tb, ab, b); !got.AllClose(naiveMatMulTB(ab, b), 1e-9) {
		t.Error("MatMulTBInto differs from naive reference")
	}

	// TransposeInto + Reuse round trip.
	scratch := Reuse(nil, a.Cols(), a.Rows())
	tr := TransposeInto(scratch, a)
	if !tr.Equal(a.Transpose()) {
		t.Error("TransposeInto differs from Transpose")
	}
	// CopyInto into undersized scratch allocates; into adequate scratch reuses.
	small := New(1, 1)
	cp := a.CopyInto(small)
	if !cp.Equal(a) {
		t.Error("CopyInto (grow) lost data")
	}
	big := New(20, 20)
	cp2 := a.CopyInto(big)
	if !cp2.Equal(a) {
		t.Error("CopyInto (reuse) lost data")
	}
	if &cp2.Data()[0] != &big.Data()[0] {
		t.Error("CopyInto did not reuse adequate scratch storage")
	}

	// Into broadcasting forms against the allocating forms.
	x := Randn(rng, 6, 8, 0, 1)
	row := Randn(rng, 1, 8, 0, 1)
	col := Randn(rng, 6, 1, 0, 1)
	sc := Scalar(3)
	for _, b2 := range []*Dense{x.Clone(), row, col, sc} {
		d := New(6, 8)
		if !AddInto(d, x, b2).Equal(Add(x, b2)) {
			t.Errorf("AddInto mismatch for %dx%d operand", b2.Rows(), b2.Cols())
		}
		if !SubInto(d, x, b2).Equal(Sub(x, b2)) {
			t.Errorf("SubInto mismatch for %dx%d operand", b2.Rows(), b2.Cols())
		}
		if !MulInto(d, x, b2).Equal(Mul(x, b2)) {
			t.Errorf("MulInto mismatch for %dx%d operand", b2.Rows(), b2.Cols())
		}
		if !DivInto(d, x, b2).Equal(Div(x, b2)) {
			t.Errorf("DivInto mismatch for %dx%d operand", b2.Rows(), b2.Cols())
		}
	}
	// In-place aliasing: dst == a.
	y := x.Clone()
	want := Add(x, row)
	if !AddInto(y, y, row).Equal(want) {
		t.Error("AddInto with dst aliasing a is wrong")
	}
}

// TestPooledBuffersAreClean: a recycled slab must come back either zeroed
// (NewPooled) or fully overwritten (kernel outputs) — stale data from a
// released matrix must never be observable.
func TestPooledBuffersAreClean(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		d := NewPooled(13, 9)
		for i := range d.Data() {
			d.Data()[i] = 1e30 // poison
		}
		d.Release()
		got := NewPooled(13, 9)
		for i, v := range got.Data() {
			if v != 0 {
				t.Fatalf("trial %d: NewPooled slab not zeroed at %d: %v", trial, i, v)
			}
		}
		got.Release()

		// Kernel outputs reuse slabs without zeroing; every element must
		// still be overwritten.
		p := NewPooled(16, 16)
		for i := range p.Data() {
			p.Data()[i] = math.NaN() // poison: survives only if not overwritten
		}
		p.Release()
		rng := rand.New(rand.NewSource(int64(trial)))
		a := Randn(rng, 16, 16, 0, 1)
		b := Randn(rng, 16, 16, 0, 1)
		out := MatMul(a, b)
		if out.HasNaN() {
			t.Fatalf("trial %d: MatMul output leaked poisoned pool contents", trial)
		}
		out.Release()
	}
}

func TestReleaseRejectsForeignBuffers(t *testing.T) {
	// Non-power-of-two capacity (plain New) must be dropped, not pooled.
	d := New(3, 5)
	d.Release() // must not panic or corrupt the pool
	var nilDense *Dense
	nilDense.Release() // nil-safe
	empty := New(0, 4)
	empty.Release()
}
