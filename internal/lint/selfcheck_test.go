package lint

import "testing"

// TestModuleIsLintClean runs every analyzer over the whole module — the
// same sweep ci.sh performs via cmd/gtv-lint — so a violation introduced
// anywhere in the tree fails `go test ./internal/lint/...` without
// needing the CI script. Skipped under -short: it type-checks the entire
// module.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint sweep in short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, Analyzers())
	Relativize(findings, loader.ModuleRoot)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(pkgs) < 10 {
		t.Errorf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
}
