package lint

import "testing"

// TestModuleIsLintClean runs every analyzer over the whole module — the
// same sweep ci.sh performs via cmd/gtv-lint — so a violation introduced
// anywhere in the tree fails `go test ./internal/lint/...` without
// needing the CI script. Skipped under -short: it type-checks the entire
// module.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint sweep in short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, Analyzers())
	Relativize(findings, loader.ModuleRoot)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(pkgs) < 10 {
		t.Errorf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
}

// TestShapeFlowProvesModuleOps pins the analyzer's coverage of the real
// tree: a healthy module has well over a hundred tensor-op call sites
// whose shape constraints discharge statically. A drop below the floor
// means annotations were removed or the interpreter regressed to Top
// somewhere load-bearing.
func TestShapeFlowProvesModuleOps(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module shape sweep in short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	findings, stats := RunModuleRule(pkgs, AnalyzerShapeFlow)
	Relativize(findings, loader.ModuleRoot)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	t.Logf("shapeflow stats: %v", stats)
	if got := stats["shapeflow.ops_proved"]; got < 100 {
		t.Errorf("shapeflow proved %d ops, want >= 100", got)
	}
	if got := stats["shapeflow.shape_annotations"]; got < 40 {
		t.Errorf("shapeflow sees %d annotations, want >= 40", got)
	}
}
