package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadDirSkipsExternalTestPackage loads a directory whose _test.go
// file declares an external test package (exttest_test). The loader
// analyzes non-test files only, so the mismatched package name must not
// break loading and the test file must not appear in the package.
func TestLoadDirSkipsExternalTestPackage(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/exttest", "exttest")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "exttest" {
		t.Errorf("package name = %q, want %q", pkg.Name, "exttest")
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (the non-test file)", len(pkg.Files))
	}
	if name := filepath.Base(loader.Fset.Position(pkg.Files[0].Pos()).Filename); name != "ext.go" {
		t.Errorf("loaded file %q, want ext.go", name)
	}
}

// writeTree lays out a file tree under root from rel-path -> contents.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadModuleSkipsTestOnlyDirs builds a throwaway module in which one
// directory holds nothing but _test.go files. LoadModule must load the
// real packages and skip the test-only directory, because a directory
// without non-test Go files is not a package the linters can check.
func TestLoadModuleSkipsTestOnlyDirs(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":              "module example.com/m\n\ngo 1.21\n",
		"a.go":                "package m\n\nimport \"example.com/m/sub\"\n\nvar _ = sub.B\n",
		"sub/b.go":            "package sub\n\n// B is exported for the root package.\nvar B = 1\n",
		"onlytest/x_test.go":  "package onlytest\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
		"onlytest/y_test.go":  "package onlytest_test\n\nimport \"testing\"\n\nfunc TestY(t *testing.T) {}\n",
		"sub/helper_test.go":  "package sub_test\n\nimport \"testing\"\n\nfunc TestB(t *testing.T) {}\n",
		"testdata/ignored.go": "package broken!\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"example.com/m", "example.com/m/sub"}
	if len(paths) != len(want) {
		t.Fatalf("loaded %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("loaded %v, want %v", paths, want)
		}
	}
}
