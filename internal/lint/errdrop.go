package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerErrDrop flags statements that call an error-returning function
// and silently drop the result: bare expression statements, defers, go
// statements, and all-blank assignments (_ = f(), var _ = f()). In this
// codebase a dropped error on a vfl transport or protocol call means a
// failed round looks like a successful one, and a dropped Close on a
// written file means data loss goes unnoticed. A discard that is truly
// deliberate must say why via //lint:ignore errdrop <reason>, which keeps
// every such decision auditable. Calls into fmt and writes to in-memory
// buffers (strings.Builder, bytes.Buffer), which are documented never to
// fail meaningfully, are exempt.
var AnalyzerErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag statements that silently drop an error result",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(st.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			case *ast.AssignStmt:
				call = blankDroppedCall(st.Lhs, st.Rhs)
			case *ast.ValueSpec:
				call = blankDroppedCall(identsToExprs(st.Names), st.Values)
			}
			if call == nil || !returnsError(info, call) || errDropExempt(info, call) {
				return true
			}
			p.Reportf(call.Pos(), "%s returns an error that is silently dropped; handle it or annotate the discard with //lint:ignore errdrop <reason>", calleeName(info, call))
			return true
		})
	}
}

// blankDroppedCall returns the discarded call of an assignment whose every
// target is the blank identifier (_ = f(), _, _ = g()); mixed assignments
// like v, _ := h() keep at least one result and are not discards.
func blankDroppedCall(lhs, rhs []ast.Expr) *ast.CallExpr {
	if len(rhs) != 1 {
		return nil
	}
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil
		}
	}
	call, _ := ast.Unparen(rhs[0]).(*ast.CallExpr)
	return call
}

func identsToExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// returnsError reports whether any result of the call is the error type.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// errDropExempt lists the never-meaningfully-fails targets: the fmt
// package and in-memory buffer writers.
func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch recvTypeString(sig.Recv().Type()) {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// recvTypeString renders a receiver type as "pkg.Name" without pointers.
func recvTypeString(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}
