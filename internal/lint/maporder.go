package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMapOrder flags the classic nondeterminism leak: iterating a map
// while (a) appending to a slice declared outside the loop, or (b)
// accumulating into an order-sensitive value declared outside the loop —
// float sums (addition is not associative), string concatenation, or any
// self-referential update like `total = ag.Add(total, x)` — or (c) drawing
// from a pseudo-random stream, which pairs each key with a different slice
// of the stream depending on the iteration order of the moment. Go
// randomizes map iteration order per run, so such loops make same-seed
// training runs diverge. Integer and boolean accumulations are exact and
// order-independent, so they are exempt; appends followed by an explicit
// sort of the same slice later in the function are recognized as the
// collect-then-sort idiom and exempt too, as are RNG constructors (an
// independently seeded stream is order-safe).
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive accumulation inside range-over-map loops",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		walkStack(file, func(stack []ast.Node) bool {
			rs, ok := stack[len(stack)-1].(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := info.TypeOf(rs.X); t == nil || !isMapType(t) {
				return true
			}
			checkMapRangeBody(p, rs, enclosingFuncBody(append(stack, rs)))
			return true
		})
	}
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := p.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, ok := calleeObject(info, call).(*types.Func); ok && isRNGDraw(fn) {
				p.Reportf(call.Pos(), "%s draws from the RNG inside range over a map: the stream is consumed in nondeterministic order; iterate sorted keys instead", fn.Name())
			}
			return true
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch st.Tok {
		case token.ASSIGN:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !declaredOutside(obj, rs) {
				return true
			}
			if isSelfAppend(info, obj, st.Rhs[0]) {
				if !sortedAfter(info, funcBody, obj, rs.End()) {
					p.Reportf(st.Pos(), "append to %s inside range over a map: iteration order is nondeterministic; iterate sorted keys or sort %s afterwards", id.Name, id.Name)
				}
				return true
			}
			if isOrderInsensitive(obj.Type()) {
				return true
			}
			if exprMentions(info, st.Rhs[0], obj) {
				p.Reportf(st.Pos(), "self-referential update of %s inside range over a map accumulates in nondeterministic order; iterate sorted keys instead", id.Name)
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !declaredOutside(obj, rs) || isOrderInsensitive(obj.Type()) {
				return true
			}
			p.Reportf(st.Pos(), "%s accumulation into %s inside range over a map happens in nondeterministic order; iterate sorted keys instead", st.Tok, id.Name)
		}
		return true
	})
}

// isRNGDraw reports whether fn consumes a pseudo-random stream: any
// function or method from math/rand (or this module's capturable wrapper)
// except constructors, which seed an independent stream and are
// order-safe. Drawing inside a map range hands each key a different slice
// of the stream depending on the iteration order of the moment — the
// split-assignment bug class, where every value drawn is individually
// deterministic but their pairing with keys is not.
func isRNGDraw(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math/rand", "math/rand/v2", "repro/internal/rng":
	default:
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8", "Seed":
		return false
	}
	return true
}

// declaredOutside reports whether obj's declaration precedes the range
// statement (loop-local accumulators reset every iteration and are
// harmless).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos()
}

// isSelfAppend matches `x = append(x, ...)`.
func isSelfAppend(info *types.Info, obj types.Object, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" || info.Uses[fn] != types.Universe.Lookup("append") {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[first] == obj
}

// exprMentions reports whether e references obj.
func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether the function body contains, after pos, a
// call into sort or slices that mentions obj — the collect-then-sort
// idiom that restores determinism.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn, ok := calleeObject(info, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
