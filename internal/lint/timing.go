package lint

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Timings accumulates per-rule wall time across a run. A rule served
// entirely from the findings cache never executes, so its time stays at
// zero — which is exactly what makes a cache regression visible in the
// -timing output: a warm run showing real analysis time means the cache
// stopped hitting.
type Timings struct {
	mu    sync.Mutex
	names []string // instrumentation order, for deterministic iteration
	spent map[string]time.Duration
}

// Instrument wraps each analyzer so every execution accumulates wall time
// into the returned Timings. Names and docs are unchanged, so suppression
// matching, rule filtering, and cache salting behave identically to the
// unwrapped analyzers.
func Instrument(analyzers []*Analyzer) ([]*Analyzer, *Timings) {
	tm := &Timings{spent: make(map[string]time.Duration)}
	out := make([]*Analyzer, len(analyzers))
	for i, a := range analyzers {
		a := a
		tm.names = append(tm.names, a.Name)
		tm.spent[a.Name] = 0
		w := &Analyzer{Name: a.Name, Doc: a.Doc}
		if a.Run != nil {
			w.Run = func(p *Pass) {
				start := time.Now()
				a.Run(p)
				tm.add(a.Name, time.Since(start))
			}
		}
		if a.RunModule != nil {
			w.RunModule = func(p *ModulePass) {
				start := time.Now()
				a.RunModule(p)
				tm.add(a.Name, time.Since(start))
			}
		}
		out[i] = w
	}
	return out, tm
}

func (t *Timings) add(name string, d time.Duration) {
	t.mu.Lock()
	t.spent[name] += d
	t.mu.Unlock()
}

// Milliseconds returns per-rule wall time in milliseconds for every
// instrumented rule, zeros included.
func (t *Timings) Milliseconds() map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, len(t.names))
	for _, name := range t.names {
		out[name] = float64(t.spent[name]) / float64(time.Millisecond)
	}
	return out
}

// Summary renders one aligned line per rule, slowest first, with a total.
func (t *Timings) Summary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := append([]string(nil), t.names...)
	sort.SliceStable(names, func(i, j int) bool {
		return t.spent[names[i]] > t.spent[names[j]]
	})
	var b strings.Builder
	var total time.Duration
	for _, name := range names {
		d := t.spent[name]
		total += d
		fmt.Fprintf(&b, "%-14s %8.2fms\n", name, float64(d)/float64(time.Millisecond))
	}
	fmt.Fprintf(&b, "%-14s %8.2fms\n", "total", float64(total)/float64(time.Millisecond))
	return b.String()
}
