package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The findings cache lets repeat gtv-lint runs skip type-checking
// packages whose inputs did not change. Keys are derived from file
// contents (not mtimes) plus a salt covering everything that can change
// analyzer behavior, so a hit is exactly as trustworthy as a re-run:
//
//   - per-package entries, keyed by the package's own files and the keys
//     of its module-internal dependencies, hold the per-package analyzer
//     findings;
//   - one module entry, keyed over every package, holds the
//     module-analyzer (privflow) findings — any edit anywhere invalidates
//     it, which is the only sound choice for a whole-module analysis.
//
// On an unchanged tree every entry hits and the run does no parsing
// beyond import scanning and no type-checking at all.

// cacheVersion invalidates all entries when the on-disk format or the
// analysis semantics change incompatibly.
const cacheVersion = "1"

// ModuleIndex is a cheap (imports-only) scan of the module: file-content
// hashes and the module-internal import graph, enough to key the cache
// without type-checking anything.
type ModuleIndex struct {
	// Root is the absolute module root.
	Root string
	// ModulePath is the module path from go.mod.
	ModulePath string
	// Dirs lists the package directories relative to Root ("." for the
	// root package), sorted.
	Dirs []string

	ownHash map[string]string   // rel dir -> hash of the dir's own files
	imports map[string][]string // rel dir -> module-internal rel dirs
	depKey  map[string]string   // rel dir -> hash incl. transitive deps
	modKey  string
}

// BuildModuleIndex scans the module containing dir. It reads and hashes
// every non-test Go file and parses import clauses only.
func BuildModuleIndex(dir string) (*ModuleIndex, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := moduleDirs(root)
	if err != nil {
		return nil, err
	}
	ix := &ModuleIndex{
		Root:       root,
		ModulePath: modPath,
		ownHash:    make(map[string]string),
		imports:    make(map[string][]string),
		depKey:     make(map[string]string),
	}
	fset := token.NewFileSet()
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		ix.Dirs = append(ix.Dirs, rel)
		if err := ix.scanDir(fset, d, rel); err != nil {
			return nil, err
		}
	}
	sort.Strings(ix.Dirs)
	for _, rel := range ix.Dirs {
		ix.computeDepKey(rel, make(map[string]bool))
	}
	h := sha256.New()
	mustWrite(h, cacheVersion)
	for _, rel := range ix.Dirs {
		mustWrite(h, rel, ix.depKey[rel])
	}
	ix.modKey = hex.EncodeToString(h.Sum(nil))
	return ix, nil
}

// scanDir hashes one package directory's files and records its
// module-internal imports.
func (ix *ModuleIndex) scanDir(fset *token.FileSet, dir, rel string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	h := sha256.New()
	seen := make(map[string]bool)
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		mustWrite(h, name, strconv.Itoa(len(data)))
		if _, err := h.Write(data); err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("lint: scanning %s: %w", path, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p != ix.ModulePath && !strings.HasPrefix(p, ix.ModulePath+"/") {
				continue
			}
			depRel := strings.TrimPrefix(strings.TrimPrefix(p, ix.ModulePath), "/")
			if depRel == "" {
				depRel = "."
			}
			if !seen[depRel] {
				seen[depRel] = true
				ix.imports[rel] = append(ix.imports[rel], depRel)
			}
		}
	}
	sort.Strings(ix.imports[rel])
	ix.ownHash[rel] = hex.EncodeToString(h.Sum(nil))
	return nil
}

// computeDepKey folds a package's own hash with its transitive
// module-internal dependency keys. visiting guards against import cycles
// (invalid Go, but the cache must not hang on them).
func (ix *ModuleIndex) computeDepKey(rel string, visiting map[string]bool) string {
	if k, ok := ix.depKey[rel]; ok {
		return k
	}
	if visiting[rel] {
		return ix.ownHash[rel]
	}
	visiting[rel] = true
	h := sha256.New()
	mustWrite(h, ix.ownHash[rel])
	for _, dep := range ix.imports[rel] {
		mustWrite(h, dep, ix.computeDepKey(dep, visiting))
	}
	k := hex.EncodeToString(h.Sum(nil))
	ix.depKey[rel] = k
	return k
}

// PackageKey returns the content+dependency hash of a package directory
// (relative to Root), or "" if the directory holds no module package.
func (ix *ModuleIndex) PackageKey(rel string) string { return ix.depKey[rel] }

// ModuleKey returns the whole-module hash.
func (ix *ModuleIndex) ModuleKey() string { return ix.modKey }

// CacheSalt hashes everything that changes analyzer behavior outside the
// analyzed package itself: the cache version and the analyzer
// implementation (the internal/lint and cmd/gtv-lint sources, which this
// module carries as ordinary packages). The rule selection is not part
// of the salt — entries are keyed per rule, so a partial -only run
// shares (and cannot poison) the full run's cache.
func CacheSalt(ix *ModuleIndex) string {
	h := sha256.New()
	mustWrite(h, cacheVersion)
	lintKey, cmdKey := ix.PackageKey("internal/lint"), ix.PackageKey("cmd/gtv-lint")
	if lintKey == "" || cmdKey == "" {
		// The analyzed module does not carry the analyzer sources (-root
		// points at a foreign module), so source keys cannot cover the
		// analysis semantics; key on the running binary instead, so a
		// rebuilt gtv-lint invalidates foreign caches too.
		lintKey = executableHash()
	}
	mustWrite(h, lintKey, cmdKey)
	return hex.EncodeToString(h.Sum(nil))
}

// executableHash hashes the running binary, memoized for the process.
var executableHash = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return "no-executable:" + err.Error()
	}
	f, err := os.Open(exe)
	if err != nil {
		return "no-executable:" + err.Error()
	}
	//lint:ignore errdrop read-only binary, a Close failure cannot lose data
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		// Salt on the path+error: unstable beats silently stale.
		return "unhashable-executable:" + exe + ":" + err.Error()
	}
	return hex.EncodeToString(h.Sum(nil))
})

// mustWrite hashes the given strings with length framing; writes to a
// sha256 hash cannot fail (and fmt is errdrop-exempt).
func mustWrite(w io.Writer, parts ...string) {
	for _, p := range parts {
		fmt.Fprintf(w, "%d:%s;", len(p), p)
	}
}

// Cache reads and writes findings entries under a directory
// (conventionally <module>/.lintcache).
type Cache struct {
	dir  string
	salt string
}

// OpenCache returns a cache rooted at dir with the given salt. The
// directory is created lazily on the first Put.
func OpenCache(dir, salt string) *Cache { return &Cache{dir: dir, salt: salt} }

// Key derives the entry key for the given parts under the cache salt.
func (c *Cache) Key(parts ...string) string {
	h := sha256.New()
	mustWrite(h, c.salt)
	mustWrite(h, parts...)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

type cacheEntry struct {
	Version  string
	Findings []Finding
	Stats    Stats `json:",omitempty"`
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get returns the cached findings and stats for key, with ok reporting a
// hit. A corrupt or version-skewed entry is a miss.
func (c *Cache) Get(key string) ([]Finding, Stats, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != cacheVersion {
		return nil, nil, false
	}
	return e.Findings, e.Stats, true
}

// Put stores findings and stats under key. Findings must already be
// relativized to the module root so entries are stable across invocation
// directories.
func (c *Cache) Put(key string, findings []Finding, stats Stats) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(cacheEntry{Version: cacheVersion, Findings: findings, Stats: stats})
	if err != nil {
		return err
	}
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path(key))
}

// Prune removes entries whose key is not in live, bounding cache growth
// as packages and rule selections come and go.
func (c *Cache) Prune(live map[string]bool) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		key, ok := strings.CutSuffix(name, ".json")
		if !ok || live[key] {
			continue
		}
		//lint:ignore errdrop pruning is best-effort, a leftover entry is harmless
		_ = os.Remove(filepath.Join(c.dir, name))
	}
}
