package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerLockedField checks mutex-guard annotations: a struct field whose
// doc or line comment says "guarded by <mutex>" (where <mutex> names a
// sibling field) may only be read or written inside functions that lock
// that mutex on the same receiver chain — `a.stats` demands an
// `a.mu.Lock()` (or RLock) somewhere in the enclosing function. The check
// is flow-insensitive: it proves the presence of a lock call, not that
// the lock is held at the access, which is exactly the class of mistake
// the concurrent per-client fan-out makes likely (grabbing CommStats
// fields from a goroutine that never touches the mutex).
var AnalyzerLockedField = &Analyzer{
	Name: "lockedfield",
	Doc:  "fields annotated 'guarded by <mutex>' must be accessed under that mutex",
	Run:  runLockedField,
}

// guardInfo records one annotated field.
type guardInfo struct {
	mutex      string // sibling mutex field name
	structName string // for messages
}

func runLockedField(p *Pass) {
	info := p.Pkg.Info
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, file := range p.Pkg.Files {
		walkStack(file, func(stack []ast.Node) bool {
			sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			g, ok := guards[selection.Obj()]
			if !ok {
				return true
			}
			body := outermostFuncBody(stack)
			base := types.ExprString(sel.X)
			if body == nil || !locksMutex(info, body, base, g.mutex) {
				p.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s.%s but this function never locks %s.%s",
					g.structName, selection.Obj().Name(), g.structName, g.mutex, base, g.mutex)
			}
			return true
		})
	}
}

// collectGuards finds every "guarded by <mutex>" field annotation in the
// package's struct declarations.
func collectGuards(p *Pass) map[types.Object]guardInfo {
	info := p.Pkg.Info
	guards := make(map[types.Object]guardInfo)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guards[obj] = guardInfo{mutex: mutex, structName: ts.Name.Name}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// locksMutex reports whether body contains a call of the form
// <base>.<mutex>.Lock() or <base>.<mutex>.RLock(), comparing the base
// expression syntactically (receiver chains like s.comm match s.comm).
func locksMutex(info *types.Info, body *ast.BlockStmt, base, mutex string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || mu.Sel.Name != mutex {
			return true
		}
		if types.ExprString(mu.X) == base {
			found = true
		}
		return !found
	})
	_ = info
	return found
}
