package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Symbolic dimension machinery for the shapeflow analyzer.
//
// A dimension is a reference into an sfTable. Each table node is a
// union-find element that is either unbound (a symbolic variable, possibly
// rigid — see below) or bound to a linear expression over other dims.
// Constants are nodes bound to a constant expression. Top (an unknown
// dimension) is the sentinel dimTop; every operation involving Top yields
// Top, and a constraint touching Top is "unknown", never a finding.
//
// Rigid dims are the skolem constants a //shape: annotation introduces
// while its own function body is checked: two distinct rigid dims must not
// be forced equal (the annotation declared them independent), though a
// rigid dim may be pinned to a concrete constant by the body. Flexible
// (free) dims come from call-site instantiations and from expressions the
// analysis cannot name; they bind freely during unification.

// sfDim references a node in an sfTable; dimTop is the unknown dimension.
type sfDim int

const dimTop sfDim = -1

// linTerm is one coeff*dim term of a linear expression.
type linTerm struct {
	coeff int
	dim   sfDim // canonical (root) at construction time
}

// linExpr is c + sum(coeff_i * dim_i), terms sorted by dim with nonzero
// coefficients. The zero value is the constant 0.
type linExpr struct {
	c     int
	terms []linTerm
}

func constExpr(c int) linExpr { return linExpr{c: c} }

func varExpr(d sfDim) linExpr { return linExpr{terms: []linTerm{{coeff: 1, dim: d}}} }

// isConst reports whether e has no symbolic terms.
func (e linExpr) isConst() bool { return len(e.terms) == 0 }

// singleVar returns the dim when e is exactly one dim with coefficient 1.
func (e linExpr) singleVar() (sfDim, bool) {
	if e.c == 0 && len(e.terms) == 1 && e.terms[0].coeff == 1 {
		return e.terms[0].dim, true
	}
	return dimTop, false
}

// norm sorts and merges terms, dropping zero coefficients.
func (e linExpr) norm() linExpr {
	if len(e.terms) == 0 {
		return e
	}
	sort.Slice(e.terms, func(i, j int) bool { return e.terms[i].dim < e.terms[j].dim })
	out := linExpr{c: e.c}
	for _, t := range e.terms {
		if n := len(out.terms); n > 0 && out.terms[n-1].dim == t.dim {
			out.terms[n-1].coeff += t.coeff
			if out.terms[n-1].coeff == 0 {
				out.terms = out.terms[:n-1]
			}
			continue
		}
		if t.coeff != 0 {
			out.terms = append(out.terms, t)
		}
	}
	return out
}

func addExpr(a, b linExpr) linExpr {
	out := linExpr{c: a.c + b.c}
	out.terms = append(append([]linTerm{}, a.terms...), b.terms...)
	return out.norm()
}

func scaleLin(a linExpr, k int) linExpr {
	out := linExpr{c: a.c * k}
	for _, t := range a.terms {
		out.terms = append(out.terms, linTerm{coeff: t.coeff * k, dim: t.dim})
	}
	return out.norm()
}

func subExpr(a, b linExpr) linExpr { return addExpr(a, scaleLin(b, -1)) }

// sfNode is one union-find element of a dim table.
type sfNode struct {
	parent  sfDim // == own index for roots
	rigid   bool
	name    string  // annotation name, "" for anonymous dims
	origin  PathHop // where the dim was introduced (annotation or op site)
	bound   *linExpr
	boundAt PathHop
}

// sfTable owns the dim nodes of one function analysis.
type sfTable struct {
	nodes []sfNode
}

// newDim allocates a fresh unbound dim.
func (t *sfTable) newDim(name string, rigid bool, origin PathHop) sfDim {
	d := sfDim(len(t.nodes))
	t.nodes = append(t.nodes, sfNode{parent: d, rigid: rigid, name: name, origin: origin})
	return d
}

// constDim allocates a dim pinned to the constant n.
func (t *sfTable) constDim(n int, origin PathHop) sfDim {
	d := t.newDim("", false, origin)
	e := constExpr(n)
	t.nodes[d].bound = &e
	return d
}

// exprDim wraps a linear expression into a dim (reusing a plain variable).
func (t *sfTable) exprDim(e linExpr, origin PathHop) sfDim {
	if d, ok := e.singleVar(); ok {
		return d
	}
	d := t.newDim("", false, origin)
	t.nodes[d].bound = &e
	return d
}

// find returns the canonical root of d with path compression.
func (t *sfTable) find(d sfDim) sfDim {
	if d == dimTop {
		return dimTop
	}
	root := d
	for t.nodes[root].parent != root {
		root = t.nodes[root].parent
	}
	for t.nodes[d].parent != d {
		d, t.nodes[d].parent = t.nodes[d].parent, root
	}
	return root
}

// maxResolveDepth bounds recursive substitution; binding chains in real
// code are short, and the cap turns accidental cycles into "unknown"
// instead of hangs.
const maxResolveDepth = 32

// resolve substitutes bound dims until e mentions only unbound roots.
// ok is false when the expression involves Top or a substitution cycle.
func (t *sfTable) resolve(e linExpr, depth int) (linExpr, bool) {
	if depth > maxResolveDepth {
		return linExpr{}, false
	}
	out := constExpr(e.c)
	for _, term := range e.terms {
		root := t.find(term.dim)
		if root == dimTop {
			return linExpr{}, false
		}
		if b := t.nodes[root].bound; b != nil {
			sub, ok := t.resolve(*b, depth+1)
			if !ok {
				return linExpr{}, false
			}
			out = addExpr(out, scaleLin(sub, term.coeff))
			continue
		}
		out = addExpr(out, linExpr{terms: []linTerm{{coeff: term.coeff, dim: root}}})
	}
	return out, true
}

// resolveDim resolves one dim to a normal-form expression.
func (t *sfTable) resolveDim(d sfDim) (linExpr, bool) {
	if d == dimTop {
		return linExpr{}, false
	}
	return t.resolve(varExpr(d), 0)
}

// constVal returns the concrete value of d when it resolves to a constant.
func (t *sfTable) constVal(d sfDim) (int, bool) {
	e, ok := t.resolveDim(d)
	if !ok || !e.isConst() {
		return 0, false
	}
	return e.c, true
}

// unifyResult classifies one equality constraint.
type unifyResult int

const (
	// uProved: both sides resolved to the same expression — the constraint
	// holds without assuming anything new.
	uProved unifyResult = iota
	// uBound: consistent, by binding a previously-free dim.
	uBound
	// uFail: provably violated (constant clash or two rigid annotation
	// dims forced equal).
	uFail
	// uUnknown: at least one side is untracked; no judgment.
	uUnknown
)

// unifyDims imposes a == b. On uFail the returned strings render the two
// conflicting sides for the finding message.
func (t *sfTable) unifyDims(a, b sfDim, site PathHop) (unifyResult, string, string) {
	ea, oka := t.resolveDim(a)
	eb, okb := t.resolveDim(b)
	if !oka || !okb {
		return uUnknown, "", ""
	}
	diff := subExpr(ea, eb)
	if diff.isConst() {
		if diff.c == 0 {
			return uProved, "", ""
		}
		return uFail, t.render(ea), t.render(eb)
	}
	// Prefer binding a free (non-rigid) dim with unit coefficient. Iterate
	// highest-index first: summary atoms occupy the lowest table indices and
	// must stay as unbound roots so exported equations remain expressible in
	// atom space — fresh call-site dims bind to atoms, never the reverse.
	for i := len(diff.terms) - 1; i >= 0; i-- {
		term := diff.terms[i]
		if !t.nodes[term.dim].rigid && (term.coeff == 1 || term.coeff == -1) {
			t.bind(term.dim, solveFor(diff, term), site)
			return uBound, "", ""
		}
	}
	// Only rigid dims remain. Exactly "r1 - r2 == 0" means the annotation
	// declared two independent dims that the code forces equal.
	if diff.c == 0 && len(diff.terms) == 2 &&
		diff.terms[0].coeff+diff.terms[1].coeff == 0 &&
		(diff.terms[0].coeff == 1 || diff.terms[0].coeff == -1) {
		return uFail, t.render(ea), t.render(eb)
	}
	// A single rigid dim against a constant: pin it (a later conflicting
	// pin resolves to a constant clash above).
	if len(diff.terms) == 1 && (diff.terms[0].coeff == 1 || diff.terms[0].coeff == -1) {
		t.bind(diff.terms[0].dim, solveFor(diff, diff.terms[0]), site)
		return uBound, "", ""
	}
	return uUnknown, "", ""
}

// solveFor isolates term.dim in "diff == 0": dim = -(diff - term)/coeff
// (coeff is ±1 by the callers' checks).
func solveFor(diff linExpr, term linTerm) linExpr {
	rest := subExpr(diff, linExpr{terms: []linTerm{term}})
	return scaleLin(rest, -term.coeff)
}

// bind attaches an expression to an unbound root.
func (t *sfTable) bind(d sfDim, e linExpr, site PathHop) {
	root := t.find(d)
	if root == dimTop || t.nodes[root].bound != nil {
		return
	}
	// Union with a plain variable instead of binding, so names survive.
	if v, ok := e.singleVar(); ok {
		vroot := t.find(v)
		if vroot == root {
			return
		}
		// Keep the named/rigid node as the root for better messages.
		if t.nodes[root].rigid || (t.nodes[root].name != "" && t.nodes[vroot].name == "") {
			if !t.nodes[vroot].rigid && t.nodes[vroot].bound == nil {
				t.nodes[vroot].parent = root
				return
			}
		}
		if t.nodes[vroot].bound == nil {
			t.nodes[root].parent = vroot
			return
		}
	}
	ec := e
	t.nodes[root].bound = &ec
	t.nodes[root].boundAt = site
}

// render prints a resolved expression using dim names; anonymous dims
// print as "?".
func (t *sfTable) render(e linExpr) string {
	if e.isConst() {
		return fmt.Sprintf("%d", e.c)
	}
	var b strings.Builder
	for i, term := range e.terms {
		name := t.nodes[term.dim].name
		if name == "" {
			name = "?"
		}
		switch {
		case i == 0 && term.coeff == 1:
			b.WriteString(name)
		case i == 0 && term.coeff == -1:
			b.WriteString("-" + name)
		case term.coeff == 1:
			b.WriteString("+" + name)
		case term.coeff == -1:
			b.WriteString("-" + name)
		case i == 0:
			fmt.Fprintf(&b, "%d*%s", term.coeff, name)
		default:
			fmt.Fprintf(&b, "%+d*%s", term.coeff, name)
		}
	}
	if e.c != 0 {
		fmt.Fprintf(&b, "%+d", e.c)
	}
	return b.String()
}

// renderDim prints one dim for findings.
func (t *sfTable) renderDim(d sfDim) string {
	if d == dimTop {
		return "?"
	}
	e, ok := t.resolveDim(d)
	if !ok {
		return "?"
	}
	return t.render(e)
}

// originOf returns the introduction hop of the first named or rigid dim in
// d's resolved form, so findings can point back at the annotation that
// pinned the dim. ok is false for anonymous or unknown dims.
func (t *sfTable) originOf(d sfDim) (PathHop, bool) {
	e, okr := t.resolveDim(d)
	if !okr {
		if d != dimTop {
			root := t.find(d)
			if root != dimTop && t.nodes[root].origin.Pos.Line != 0 {
				return t.nodes[root].origin, true
			}
		}
		return PathHop{}, false
	}
	for _, term := range e.terms {
		n := t.nodes[term.dim]
		if (n.rigid || n.name != "") && n.origin.Pos.Line != 0 {
			return n.origin, true
		}
	}
	return PathHop{}, false
}

// sfShape is the abstract shape of a matrix-typed value.
type sfShape struct {
	rows, cols sfDim
}

var topShape = sfShape{rows: dimTop, cols: dimTop}

// joinDim is the lattice join used by weak updates: equal resolved
// expressions keep their value, anything else degrades to Top.
func (t *sfTable) joinDim(a, b sfDim) sfDim {
	if a == b {
		return a
	}
	ea, oka := t.resolveDim(a)
	eb, okb := t.resolveDim(b)
	if !oka || !okb {
		return dimTop
	}
	if d := subExpr(ea, eb); d.isConst() && d.c == 0 {
		return a
	}
	return dimTop
}

func (t *sfTable) joinShape(a, b sfShape) sfShape {
	return sfShape{rows: t.joinDim(a.rows, b.rows), cols: t.joinDim(a.cols, b.cols)}
}

func (s sfShape) isTop() bool { return s.rows == dimTop && s.cols == dimTop }
