package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerTapeLifetime enforces the pool/tape release discipline from
// DESIGN.md ("Kernel architecture"): a tensor.NewPooled buffer or an
// autograd tape acquired inside a function must be handed back with
// Release before the function exits, unless ownership visibly escapes
// (returned, stored, or passed to another function). The check is
// flow-insensitive def/use over the AST — any Release call on the
// variable, including a deferred one, satisfies it — so it cannot prove
// per-path leaks, but it catches the dominant hazard: an acquisition with
// no release anywhere.
var AnalyzerTapeLifetime = &Analyzer{
	Name: "tapelifetime",
	Doc:  "pooled tensors and autograd tapes must be Released (or escape) in the acquiring function",
	Run:  runTapeLifetime,
}

// acquisition is one tracked pooled value or tape inside a function.
type acquisition struct {
	obj  types.Object
	pos  token.Pos
	what string // "tensor.NewPooled buffer" or "autograd tape"
	tape bool   // tapes only count once Track is called on them
}

func runTapeLifetime(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncLifetimes(p, fn)
		}
	}
	_ = info
}

func checkFuncLifetimes(p *Pass, fn *ast.FuncDecl) {
	info := p.Pkg.Info
	var acqs []*acquisition

	// Pass 1: collect acquisitions bound to plain local identifiers.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			if a := classifyAcquisition(info, id, st.Rhs[0]); a != nil {
				acqs = append(acqs, a)
			}
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					var a *acquisition
					switch {
					case len(vs.Values) > i:
						a = classifyAcquisition(info, name, vs.Values[i])
					case vs.Type != nil && isTapeType(info.TypeOf(vs.Type)):
						// var tape autograd.Tape — the zero value is a
						// ready-to-use tape.
						a = &acquisition{obj: info.Defs[name], pos: name.Pos(), what: "autograd tape", tape: true}
					}
					if a != nil {
						acqs = append(acqs, a)
					}
				}
			}
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Pass 2: flow-insensitive def/use classification of every reference.
	type state struct {
		released, tracked, escaped bool
	}
	states := make(map[*acquisition]*state, len(acqs))
	byObj := make(map[types.Object]*acquisition, len(acqs))
	for _, a := range acqs {
		if a.obj == nil {
			continue
		}
		states[a] = &state{}
		byObj[a.obj] = a
	}
	walkStack(fn.Body, func(stack []ast.Node) bool {
		id, ok := stack[len(stack)-1].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		a, ok := byObj[obj]
		if !ok {
			return true
		}
		st := states[a]
		// Method call on the variable itself stays local; anything else
		// (return, call argument, reassignment, address-of, composite
		// literal, ...) may transfer ownership, so the rule stands down.
		if len(stack) >= 3 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == id {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
					switch sel.Sel.Name {
					case "Release":
						st.released = true
					case "Track":
						st.tracked = true
					}
					return true
				}
				return true // bare selector (field or method value): local use
			}
		}
		st.escaped = true
		return true
	})

	for _, a := range acqs {
		st := states[a]
		if st == nil || st.released || st.escaped {
			continue
		}
		if a.tape && !st.tracked {
			continue // an empty tape holds nothing to release
		}
		p.Reportf(a.pos, "%s is acquired here but never Released on any path out of %s (and never escapes); pair it with Release or a defer",
			a.what, fn.Name.Name)
	}
}

// classifyAcquisition recognizes `x := tensor.NewPooled(...)`,
// `x := autograd.NewTape()` and `x := autograd.Tape{}` forms.
func classifyAcquisition(info *types.Info, id *ast.Ident, rhs ast.Expr) *acquisition {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id] // plain = assignment to an existing var
	}
	if obj == nil {
		return nil
	}
	switch v := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if isPkgFunc(info, v, "internal/tensor", "NewPooled") {
			return &acquisition{obj: obj, pos: id.Pos(), what: "tensor.NewPooled buffer"}
		}
		if isPkgFunc(info, v, "internal/tensor", "NewPooledUninit") {
			return &acquisition{obj: obj, pos: id.Pos(), what: "tensor.NewPooledUninit buffer"}
		}
		if isPkgFunc(info, v, "internal/tensor", "NewPooledOneHot") {
			return &acquisition{obj: obj, pos: id.Pos(), what: "tensor.NewPooledOneHot buffer"}
		}
		if isPkgFunc(info, v, "internal/tensor", "NewPooledBitmap") {
			return &acquisition{obj: obj, pos: id.Pos(), what: "tensor.NewPooledBitmap buffer"}
		}
		if isPkgFunc(info, v, "internal/coldata", "AcquireBlockBuf") {
			return &acquisition{obj: obj, pos: id.Pos(), what: "coldata.AcquireBlockBuf buffer"}
		}
		if isPkgFunc(info, v, "internal/autograd", "NewTape") {
			return &acquisition{obj: obj, pos: id.Pos(), what: "autograd tape", tape: true}
		}
	case *ast.CompositeLit:
		if isTapeType(info.TypeOf(v)) {
			return &acquisition{obj: obj, pos: id.Pos(), what: "autograd tape", tape: true}
		}
	}
	return nil
}

// isTapeType reports whether t is autograd.Tape (or a pointer to it).
func isTapeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Tape" && pkgPathSuffix(named.Obj(), "internal/autograd")
}
