package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerPrivFlow is the interprocedural taint analysis that machine-checks
// GTV's privacy boundary: raw client rows, matching-row indices (idx_p) and
// the shared shuffle secret must never reach a server-visible value except
// through the protocol's sanctioned transformations. The vocabulary is three
// comment directives on declarations:
//
//	//privacy:source <description>    — struct field or function whose values
//	                                    are private (raw tables, row indices,
//	                                    shuffle secrets)
//	//privacy:sink <description>      — function whose results (and writes
//	                                    through pointer parameters) are
//	                                    server-visible; on an interface
//	                                    method it marks every module
//	                                    implementation as a sink
//	//privacy:sanitizer <description> — function whose results are safe
//	                                    regardless of argument taint
//	                                    (bottom-model forwards, batch
//	                                    aggregates, shape metadata)
//
// The analysis builds per-function dataflow summaries (which inputs and
// which sources flow to which results) over the whole module, propagates
// them through a monotone fixpoint including interface dispatch to module
// implementations, and reports every unsanitized source-to-sink flow with
// the full function chain (file:line per hop). Taint is reported at its
// first crossing of the boundary: once a flow leaves a sink function's
// result it is not re-reported at downstream sinks that merely relay it.
//
// Deliberate, paper-sanctioned disclosures (the contributor's per-round
// idx_p, made safe by training-with-shuffling) carry reasoned
// //lint:ignore privflow suppressions at the crossing site.
var AnalyzerPrivFlow = &Analyzer{
	Name:      "privflow",
	Doc:       "interprocedural taint analysis of the privacy boundary (//privacy:source -> //privacy:sink)",
	RunModule: runPrivFlow,
}

// Known annotation kinds.
const (
	annSource    = "source"
	annSink      = "sink"
	annSanitizer = "sanitizer"
)

// pfAnnotation is one parsed //privacy: directive bound to a declaration.
type pfAnnotation struct {
	kind string
	desc string
	obj  types.Object
	pos  token.Position
}

// pfFunc is one module function under analysis.
type pfFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
	// name is the display name used in findings and path hops
	// ("LocalClient.SampleCV", "condvec.sampleDiscrete").
	name string
	// inputObjs holds the receiver (if any) followed by the parameters, in
	// summary input-bit order; unnamed inputs are nil placeholders.
	inputObjs []types.Object
	// sink is set when the function's outputs are server-visible, either by
	// direct annotation or because it implements an annotated interface
	// method.
	sink *pfAnnotation
	sum  *summary
}

// pf is the whole-module analysis state.
type pf struct {
	pass *ModulePass
	fset *token.FileSet

	anns     map[types.Object]*pfAnnotation
	funcs    map[*types.Func]*pfFunc
	funcList []*pfFunc

	// fieldTaint maps struct fields to the source taint ever stored into
	// them, giving flow-insensitive taint transfer across methods of one
	// object (c.lastCV = b in one call, c.lastCV read in a later one).
	fieldTaint map[*types.Var]taintVal

	namedTypes []*types.Named
	implCache  map[*types.Func][]*pfFunc

	// changed drives the global fixpoint: set when any summary or field
	// taint grows during a pass.
	changed bool
}

func runPrivFlow(p *ModulePass) {
	a := &pf{
		pass:       p,
		fset:       p.Fset(),
		anns:       make(map[types.Object]*pfAnnotation),
		funcs:      make(map[*types.Func]*pfFunc),
		fieldTaint: make(map[*types.Var]taintVal),
		implCache:  make(map[*types.Func][]*pfFunc),
	}
	a.collectAnnotations()
	a.collectFuncs()
	a.collectNamedTypes()
	a.resolveSinks()

	// Monotone fixpoint over summaries and field taint. The bound is a
	// safety net; real modules settle within a handful of passes.
	for iter := 0; iter < 64; iter++ {
		a.changed = false
		for _, f := range a.funcList {
			a.analyzeFunc(f, false)
		}
		if !a.changed {
			break
		}
	}
	// Reporting pass: only sink functions can produce findings.
	for _, f := range a.funcList {
		if f.sink != nil {
			a.analyzeFunc(f, true)
		}
	}
}

// ---- annotation collection ----

// parsePrivacyDirective splits a "//privacy:kind description" comment.
// ok is false when the comment is not a privacy directive at all.
func parsePrivacyDirective(text string) (kind, desc string, ok bool) {
	rest, ok := strings.CutPrefix(text, "//privacy:")
	if !ok {
		return "", "", false
	}
	kind, desc, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(kind), strings.TrimSpace(desc), true
}

// collectAnnotations walks every declaration that may carry a //privacy:
// directive, binds well-formed ones to their type-checker objects, and
// reports malformed or misplaced ones as findings.
func (a *pf) collectAnnotations() {
	consumed := make(map[token.Pos]bool)
	for _, pkg := range a.pass.Pkgs {
		for _, file := range pkg.Files {
			a.collectFileAnnotations(pkg, file, consumed)
		}
	}
	// Any privacy directive not attached to an annotatable declaration is
	// dead weight pretending to be protection — flag it.
	for _, pkg := range a.pass.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if _, _, ok := parsePrivacyDirective(c.Text); ok && !consumed[c.Pos()] {
						a.pass.Report(c.Pos(), "misplaced privacy annotation: //privacy: directives go in the doc comment of a function, struct field, or interface method", nil)
					}
				}
			}
		}
	}
}

func (a *pf) collectFileAnnotations(pkg *Package, file *ast.File, consumed map[token.Pos]bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
				a.bindDirectives(d.Doc, nil, obj, false, consumed)
			}
		case *ast.StructType:
			for _, field := range d.Fields.List {
				a.bindFieldDirectives(pkg, field, true, consumed)
			}
		case *ast.InterfaceType:
			for _, field := range d.Methods.List {
				a.bindFieldDirectives(pkg, field, false, consumed)
			}
		}
		return true
	})
}

// bindFieldDirectives handles one struct field or interface method line.
func (a *pf) bindFieldDirectives(pkg *Package, field *ast.Field, isStructField bool, consumed map[token.Pos]bool) {
	if len(field.Names) == 0 {
		// Embedded field or embedded interface: directives here have no
		// single object to bind to; the misplaced sweep reports them.
		return
	}
	obj := pkg.Info.Defs[field.Names[0]]
	if obj == nil {
		return
	}
	a.bindDirectives(field.Doc, field.Comment, obj, isStructField, consumed)
}

// bindDirectives parses the directives of one declaration's doc and line
// comments and records the resulting annotation.
func (a *pf) bindDirectives(doc, comment *ast.CommentGroup, obj types.Object, isStructField bool, consumed map[token.Pos]bool) {
	for _, cg := range []*ast.CommentGroup{doc, comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			kind, desc, ok := parsePrivacyDirective(c.Text)
			if !ok {
				continue
			}
			consumed[c.Pos()] = true
			a.bindOne(c.Pos(), kind, desc, obj, isStructField)
		}
	}
}

func (a *pf) bindOne(pos token.Pos, kind, desc string, obj types.Object, isStructField bool) {
	switch kind {
	case annSource, annSink, annSanitizer:
	default:
		a.pass.Report(pos, fmt.Sprintf("unknown privacy annotation kind %q: want source, sink, or sanitizer", kind), nil)
		return
	}
	if desc == "" {
		a.pass.Report(pos, fmt.Sprintf("privacy %s annotation needs a description: //privacy:%s <what and why>", kind, kind), nil)
		return
	}
	if isStructField && kind != annSource {
		a.pass.Report(pos, fmt.Sprintf("privacy %s annotation cannot apply to a struct field; only //privacy:source can", kind), nil)
		return
	}
	if !isStructField {
		if _, ok := obj.(*types.Func); !ok {
			a.pass.Report(pos, fmt.Sprintf("privacy %s annotation must attach to a function or interface method", kind), nil)
			return
		}
	}
	if prev := a.anns[obj]; prev != nil {
		a.pass.Report(pos, fmt.Sprintf("conflicting privacy annotations on %s (already %s at %s)", obj.Name(), prev.kind, prev.pos), nil)
		return
	}
	a.anns[obj] = &pfAnnotation{kind: kind, desc: desc, obj: obj, pos: a.fset.Position(pos)}
}

// ---- function registry, named types, sink resolution ----

func (a *pf) collectFuncs() {
	for _, pkg := range a.pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				f := &pfFunc{
					pkg:  pkg,
					decl: fd,
					obj:  obj,
					name: funcDisplayName(obj),
				}
				f.inputObjs = collectInputs(pkg.Info, fd)
				sig := obj.Type().(*types.Signature)
				f.sum = &summary{results: make([]taintVal, sig.Results().Len())}
				a.funcs[obj] = f
				a.funcList = append(a.funcList, f)
			}
		}
	}
}

// collectInputs returns the receiver (if any) then parameters of a
// declaration, as type-checker objects in input-bit order.
func collectInputs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					out = append(out, nil)
					continue
				}
				out = append(out, info.Defs[name])
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return out
}

// funcDisplayName renders "Recv.Method" or "pkg.Func" for findings.
func funcDisplayName(obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
		return types.TypeString(t, func(*types.Package) string { return "" }) + "." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

func (a *pf) collectNamedTypes() {
	for _, pkg := range a.pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted: deterministic
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				a.namedTypes = append(a.namedTypes, named)
			}
		}
	}
}

// isInterfaceMethod reports whether obj is declared on an interface.
func isInterfaceMethod(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// resolveImpls finds the module implementations of an interface method:
// the concrete methods interface dispatch can reach.
func (a *pf) resolveImpls(m *types.Func) []*pfFunc {
	if impls, ok := a.implCache[m]; ok {
		return impls
	}
	var out []*pfFunc
	sig := m.Type().(*types.Signature)
	ifc, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if ok {
		for _, named := range a.namedTypes {
			if types.IsInterface(named) {
				continue
			}
			if !types.Implements(named, ifc) && !types.Implements(types.NewPointer(named), ifc) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				if impl := a.funcs[fn]; impl != nil {
					out = append(out, impl)
				}
			}
		}
	}
	a.implCache[m] = out
	return out
}

// resolveSinks marks directly annotated functions and every module
// implementation of an annotated interface method as sinks.
func (a *pf) resolveSinks() {
	for _, f := range a.funcList {
		if ann := a.anns[f.obj]; ann != nil && ann.kind == annSink {
			f.sink = ann
		}
	}
	// Deterministic sweep over interface-method sinks: use funcList order
	// independence by iterating annotations through the package walk order
	// captured in funcList? Interface methods have no body, so walk the
	// annotation map via namedTypes is not possible — collect sorted.
	var ifaceSinks []*pfAnnotation
	for _, pkg := range a.pass.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				it, ok := n.(*ast.InterfaceType)
				if !ok {
					return true
				}
				for _, field := range it.Methods.List {
					if len(field.Names) == 0 {
						continue
					}
					obj := pkg.Info.Defs[field.Names[0]]
					if ann := a.anns[obj]; ann != nil && ann.kind == annSink {
						ifaceSinks = append(ifaceSinks, ann)
					}
				}
				return true
			})
		}
	}
	for _, ann := range ifaceSinks {
		m, ok := ann.obj.(*types.Func)
		if !ok {
			continue
		}
		for _, impl := range a.resolveImpls(m) {
			if impl.sink == nil {
				impl.sink = ann
			}
		}
	}
}

// analyzeFunc runs the intraprocedural walk over one function until its
// local state stabilizes, updating the function's summary and the global
// field taint. With report set, it additionally emits findings at sink
// violations.
func (a *pf) analyzeFunc(f *pfFunc, report bool) {
	in := &interp{
		a:     a,
		fn:    f,
		info:  f.pkg.Info,
		state: make(map[types.Object]taintVal),
	}
	for i, obj := range f.inputObjs {
		if obj != nil && i < 64 {
			in.state[obj] = taintVal{inputs: 1 << uint(i)}
		}
	}
	// Local fixpoint: weak updates make the state monotone, so a few
	// passes reach loop-carried taint; the cap bounds pathological bodies.
	for pass := 0; pass < 4; pass++ {
		in.localChanged = false
		in.walkBody()
		if !in.localChanged {
			break
		}
	}
	if report {
		in.report = true
		in.reported = make(map[string]bool)
		in.walkBody()
	}
}
