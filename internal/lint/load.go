package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// The loader turns a Go module on disk into type-checked Packages without
// golang.org/x/tools: packages inside the module are parsed and checked
// from source (so analyzers see their ASTs), while imports from outside
// the module resolve through the stdlib go/importer chain (compiled export
// data first, source as a fallback). This keeps gtv-lint inside the
// repo's stdlib-only rule.

// Package is one loaded, type-checked package: the unit every analyzer
// runs over.
type Package struct {
	// Path is the package's import path ("repro/internal/vfl"), or a
	// synthetic path for test fixtures ("tapelifetime").
	Path string
	// Name is the package name ("vfl", "main").
	Name string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checking results analyzers query.
	Info *types.Info
}

// Loader loads and type-checks module packages on demand.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// Fset positions every file loaded by this Loader.
	Fset *token.FileSet

	gcImp   types.Importer
	srcOnce sync.Once
	srcImp  types.Importer

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader returns a Loader rooted at the module containing dir (dir
// itself or the nearest parent with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		gcImp:      importer.Default(),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// moduleDirs returns every directory under root holding non-test Go
// files, skipping hidden, underscore, testdata, and vendor trees — the
// package set both the loader and the findings cache agree on.
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// LoadModule loads every package of the module (non-test files only),
// sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	dirs, err := moduleDirs(l.ModuleRoot)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the non-test files of one directory under
// the given import path. Results are cached by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Name:  tpkg.Name(),
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// importPkg is the types.Importer callback: module-internal paths load
// from source through the Loader; everything else goes to the stdlib
// importer chain.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	tp, err := l.gcImp.Import(path)
	if err == nil {
		return tp, nil
	}
	// Compiled export data is unavailable (cold build cache, unusual
	// toolchain layout): fall back to type-checking the dependency from
	// source. Slower, but self-contained.
	l.srcOnce.Do(func() { l.srcImp = importer.ForCompiler(l.Fset, "source", nil) })
	return l.srcImp.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
