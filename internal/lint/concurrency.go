package lint

import (
	"go/ast"
	"go/types"
)

// Shared infrastructure for the concurrency analyzers (lockorder,
// goroleak, cancelflow): a whole-module function-declaration index so
// static calls resolve to their bodies across packages, lock-call
// classification over sync.Mutex/sync.RWMutex, and the blocking-operation
// taxonomy the rules agree on. All three are syntactic, flow-insensitive
// approximations — see DESIGN.md ("Concurrency rules") for the documented
// gaps — tuned so a finding is worth reading and a clean tree means the
// discipline holds.

// funcDecl pairs a declared function with the package it lives in.
type funcDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// declIndex maps every declared function or method of the loaded packages
// to its declaration, so analyzers can chase static calls into bodies.
type declIndex map[*types.Func]funcDecl

// buildDeclIndex indexes every FuncDecl of the module pass.
func buildDeclIndex(pkgs []*Package) declIndex {
	ix := make(declIndex)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					ix[fn] = funcDecl{decl: fd, pkg: pkg}
				}
			}
		}
	}
	return ix
}

// staticCallee resolves a call to its declared module function, or nil
// for calls through function values, interfaces without a single
// declaration, builtins, and out-of-module functions.
func (ix declIndex) staticCallee(info *types.Info, call *ast.CallExpr) (*types.Func, funcDecl, bool) {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok {
		return nil, funcDecl{}, false
	}
	fd, ok := ix[fn]
	return fn, fd, ok
}

// ---- lock-call classification ----

// lockOp classifies one mutex method call.
type lockOp int

const (
	lockNone    lockOp = iota
	lockAcquire        // Lock, RLock
	lockRelease        // Unlock, RUnlock
)

// isSyncLocker reports whether t (after pointer-deref) is sync.Mutex or
// sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// classifyLockCall recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock on a
// sync mutex and returns the receiver expression carrying the mutex.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockNone, nil
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return lockNone, nil
	}
	recv := ast.Unparen(sel.X)
	if t := info.TypeOf(recv); t == nil || !isSyncLocker(t) {
		return lockNone, nil
	}
	return op, recv
}

// lockIdent identifies a mutex across functions. For a mutex that is a
// struct field (s.mu, c.sess.mu), the field object identifies it: every
// instance of the struct shares one node, which is what lock-order
// analysis wants (the order discipline is per-class, not per-instance).
// Local and package-level mutex variables identify by their own object.
type lockIdent struct {
	obj  types.Object
	name string // human-readable, e.g. "wireSession.mu"
}

// identifyLock resolves the receiver expression of a lock call to its
// identity, or ok=false when the expression is too dynamic to name
// (map/slice elements, function results).
func identifyLock(info *types.Info, recv ast.Expr) (lockIdent, bool) {
	switch e := recv.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return lockIdent{}, false
		}
		name := obj.Name()
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			name = fieldOwnerName(v) + "." + name
		}
		return lockIdent{obj: obj, name: name}, true
	case *ast.SelectorExpr:
		selection := info.Selections[e]
		if selection == nil || selection.Kind() != types.FieldVal {
			return lockIdent{}, false
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return lockIdent{}, false
		}
		return lockIdent{obj: v, name: fieldOwnerName(v) + "." + v.Name()}, true
	}
	return lockIdent{}, false
}

// fieldOwnerName names the struct type a field belongs to, best-effort.
func fieldOwnerName(v *types.Var) string {
	// The field's scope parent is the struct's type; walk the package
	// scope for a named type whose underlying struct declares v.
	if v.Pkg() == nil {
		return "?"
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return "?"
}

// ---- blocking-operation taxonomy ----

// blockingKind names why an operation can block forever.
type blockingKind string

const (
	blockChanSend blockingKind = "channel send"
	blockChanRecv blockingKind = "channel receive"
	blockSelect   blockingKind = "select without default"
	blockRangeCh  blockingKind = "range over channel"
	blockWGWait   blockingKind = "WaitGroup.Wait"
	blockSleep    blockingKind = "time.Sleep"
	blockNetIO    blockingKind = "network I/O"
	blockRPC      blockingKind = "protocol call"
)

// classifyBlockingCall recognizes calls that can block indefinitely:
// sync.WaitGroup.Wait, time.Sleep, net dials, Read/Write/Flush-shaped I/O
// on net/bufio/io values, and the module's own vfl.Client protocol methods
// (remote round-trips). Returns "" for non-blocking calls.
func classifyBlockingCall(info *types.Info, call *ast.CallExpr) blockingKind {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg() == nil {
			return ""
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Sleep" {
				return blockSleep
			}
		case "net":
			// DialTimeout bounds itself and is exempt from cancelflow, but
			// still blocks while a lock is held, so it stays in the taxonomy.
			if fn.Name() == "Dial" || fn.Name() == "DialTimeout" || fn.Name() == "DialIP" ||
				fn.Name() == "DialTCP" || fn.Name() == "DialUDP" || fn.Name() == "DialUnix" {
				return blockNetIO
			}
		case "io":
			if fn.Name() == "ReadFull" || fn.Name() == "ReadAll" || fn.Name() == "Copy" {
				return blockNetIO
			}
		}
		return ""
	}
	recv := sig.Recv().Type()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	if n, ok := recv.(*types.Named); ok && n.Obj().Pkg() != nil {
		pkg, typ := n.Obj().Pkg().Path(), n.Obj().Name()
		if pkg == "sync" && typ == "WaitGroup" && fn.Name() == "Wait" {
			return blockWGWait
		}
		switch pkg {
		case "net", "bufio":
			switch fn.Name() {
			case "Read", "Write", "Flush", "ReadByte", "ReadFull", "ReadString", "WriteTo", "ReadFrom", "Accept":
				return blockNetIO
			}
		}
		// The module's Client interface: every method is a remote protocol
		// round-trip whose duration only a CallPolicy bounds.
		if typ == "Client" && pkgPathSuffix(n.Obj(), "internal/vfl") {
			return blockRPC
		}
	}
	if n, ok := recv.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "io" {
		// io.Reader / io.Writer shaped interface calls.
		switch fn.Name() {
		case "Read", "Write":
			return blockNetIO
		}
	}
	return ""
}

// selectHasDefault reports whether a select statement contains a default
// clause (and therefore never blocks).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// insideSelect reports whether the node at the top of the stack sits
// inside a select communication clause (its blocking is the select's
// concern, not the operation's own).
func insideSelect(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.CommClause, *ast.SelectStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isRecvExpr recognizes `<-ch` unary receives.
func isRecvExpr(info *types.Info, n ast.Node) (*ast.UnaryExpr, bool) {
	u, ok := n.(*ast.UnaryExpr)
	if !ok || u.Op.String() != "<-" {
		return nil, false
	}
	if t := info.TypeOf(u.X); t == nil || !isChanType(t) {
		return nil, false
	}
	return u, true
}

// isDoneChanExpr reports whether e is a cancellation signal: a
// `ctx.Done()` call or a value of type `chan struct{}` / `<-chan struct{}`
// (the close-signal idiom).
func isDoneChanExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if fn, ok := calleeObject(info, call).(*types.Func); ok && fn.Name() == "Done" {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if n, ok := sig.Recv().Type().(*types.Named); ok && n.Obj().Pkg() != nil &&
					n.Obj().Pkg().Path() == "context" {
					return true
				}
			}
		}
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
