package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerSnapState enforces checkpoint exhaustiveness: every named field
// of a struct marked //snap:state must be serialized in both directions —
// read somewhere in encode context (a function whose signature mentions
// snap.Enc or snap.Builder) and written somewhere in decode context (a
// function whose signature mentions snap.Dec or snap.Snapshot) — or carry
// an explicit //snap:skip <reason> annotation. Adding a field to a
// snapshotted state struct without wiring it through the codec is exactly
// the mistake that silently breaks byte-identical resume: the run still
// trains, just not on the trajectory the checkpoint promised. The check is
// module-wide because the codec helpers for a struct may live in another
// package (nn.AdamState is encoded by nn but embedded in gan and vfl
// snapshots).
var AnalyzerSnapState = &Analyzer{
	Name:      "snapstate",
	Doc:       "every field of a //snap:state struct must be encoded and decoded, or annotated //snap:skip <reason>",
	RunModule: runSnapState,
}

// snapField tracks one field of a //snap:state struct across the scan.
type snapField struct {
	obj        types.Object // the field's *types.Var, shared module-wide
	structName string
	pos        token.Pos
	enc, dec   bool
}

// snapCtx says which serialization contexts an enclosing function chain
// provides.
type snapCtx struct{ enc, dec bool }

func runSnapState(p *ModulePass) {
	fields, byObj := collectSnapStateFields(p)
	if len(fields) == 0 {
		return
	}

	// ftypes caches the context classification per function signature.
	ftypes := make(map[*ast.FuncType]snapCtx)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			walkStack(file, func(stack []ast.Node) bool {
				ctx := stackCtx(pkg.Info, stack, ftypes)
				if !ctx.enc && !ctx.dec {
					return true
				}
				switch n := stack[len(stack)-1].(type) {
				case *ast.SelectorExpr:
					sel := pkg.Info.Selections[n]
					if sel == nil || sel.Kind() != types.FieldVal {
						return true
					}
					markField(byObj, sel.Obj(), ctx)
				case *ast.CompositeLit:
					// Decode paths may rebuild a state struct wholesale:
					// T{field: d.I64()} touches the field through the literal
					// key rather than a selector.
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok {
							markField(byObj, pkg.Info.Uses[key], ctx)
						}
					}
				}
				return true
			})
		}
	}

	for _, f := range fields {
		switch {
		case !f.enc && !f.dec:
			p.Report(f.pos, "field "+f.obj.Name()+" of snap:state struct "+f.structName+
				" is never serialized; encode and decode it, or annotate //snap:skip <reason>", nil)
		case !f.enc:
			p.Report(f.pos, "field "+f.obj.Name()+" of snap:state struct "+f.structName+
				" is decoded but never encoded", nil)
		case !f.dec:
			p.Report(f.pos, "field "+f.obj.Name()+" of snap:state struct "+f.structName+
				" is encoded but never decoded", nil)
		}
	}
}

// markField flips the context bits of a tracked field, if obj is one.
func markField(byObj map[types.Object]*snapField, obj types.Object, ctx snapCtx) {
	f, ok := byObj[obj]
	if !ok {
		return
	}
	f.enc = f.enc || ctx.enc
	f.dec = f.dec || ctx.dec
}

// stackCtx folds the serialization contexts of every enclosing FuncDecl
// and FuncLit: code inside a closure passed to Builder.Section inherits the
// surrounding encode function's context.
func stackCtx(info *types.Info, stack []ast.Node, cache map[*ast.FuncType]snapCtx) snapCtx {
	var ctx snapCtx
	for _, n := range stack {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		c, ok := cache[ft]
		if !ok {
			c = funcTypeCtx(info, ft)
			cache[ft] = c
		}
		ctx.enc = ctx.enc || c.enc
		ctx.dec = ctx.dec || c.dec
	}
	return ctx
}

// funcTypeCtx classifies one function signature by the snap-package types
// it mentions: Enc/Builder mark encode context, Dec/Snapshot decode
// context.
func funcTypeCtx(info *types.Info, ft *ast.FuncType) snapCtx {
	var ctx snapCtx
	ast.Inspect(ft, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		tn, ok := info.Uses[id].(*types.TypeName)
		if !ok || !pkgPathSuffix(tn, "internal/snap") {
			return true
		}
		switch tn.Name() {
		case "Enc", "Builder":
			ctx.enc = true
		case "Dec", "Snapshot":
			ctx.dec = true
		}
		return true
	})
	return ctx
}

// collectSnapStateFields finds every named field of every //snap:state
// struct in the module, honoring //snap:skip annotations. Fields are
// returned in declaration order (reporting must not depend on map
// iteration), with a lookup map keyed by the shared field objects.
func collectSnapStateFields(p *ModulePass) ([]*snapField, map[types.Object]*snapField) {
	var fields []*snapField
	byObj := make(map[types.Object]*snapField)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok || (!hasDirective(gd.Doc, "//snap:state") && !hasDirective(ts.Doc, "//snap:state")) {
						continue
					}
					for _, field := range st.Fields.List {
						skip, bad := snapSkipReason(field)
						if bad != token.NoPos {
							p.Report(bad, "//snap:skip needs a reason: what keeps this field off the snapshot?", nil)
							continue
						}
						if skip {
							continue
						}
						for _, name := range field.Names {
							obj := pkg.Info.Defs[name]
							if obj == nil {
								continue
							}
							f := &snapField{obj: obj, structName: ts.Name.Name, pos: name.Pos()}
							fields = append(fields, f)
							byObj[obj] = f
						}
					}
				}
			}
		}
	}
	return fields, byObj
}

// hasDirective reports whether a comment group contains the exact
// directive comment. Directive-style comments ("//tool:verb") are stripped
// by CommentGroup.Text, so the raw list is scanned.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// snapSkipReason scans a field's doc and trailing comments for a
// //snap:skip annotation. skip reports a well-formed annotation; bad is
// the position of one lacking a reason (token.NoPos otherwise).
func snapSkipReason(field *ast.Field) (skip bool, bad token.Pos) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//snap:skip")
			if !ok {
				continue
			}
			if strings.TrimSpace(rest) == "" {
				return false, c.Pos()
			}
			return true, token.NoPos
		}
	}
	return false, token.NoPos
}
