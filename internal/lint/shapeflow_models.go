package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Built-in shape models for the internal/tensor and internal/autograd op
// vocabulary. Each model mirrors the runtime guard of the corresponding
// op (the panic sites in tensor/ops.go, kernels.go, pool.go): the
// constraint it imposes is exactly the condition whose violation panics,
// so a site whose constraints all resolve to uProved cannot reach the
// guard. Ops outside the vocabulary fall through to function summaries.

// modelCall dispatches one call against the op models. ok is false when
// the callee is not a modeled tensor/autograd operation.
func (in *sfInterp) modelCall(call *ast.CallExpr, fn *types.Func, recv sfVal, hasRecv bool, args []sfVal) ([]sfVal, bool) {
	inTensor := pkgPathSuffix(fn, "internal/tensor")
	inAG := pkgPathSuffix(fn, "internal/autograd")
	if !inTensor && !inAG {
		return nil, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		tn := recvBaseTypeName(fn)
		if tn == nil {
			return nil, false
		}
		switch {
		case inTensor && tn.Name() == "Dense":
			return in.modelDenseMethod(call, fn, recv, args)
		case inAG && tn.Name() == "Value":
			return in.modelValueMethod(call, fn, recv, args)
		}
		return nil, false
	}
	if inTensor {
		return in.modelTensorFunc(call, fn, args)
	}
	return in.modelAGFunc(call, fn, args)
}

// pos is the site stats and findings anchor to.
func (in *sfInterp) callPos(call *ast.CallExpr) token.Pos { return call.Lparen }

// argShape reads call argument i as a matrix shape.
func argShape(args []sfVal, i int) sfShape {
	if i < len(args) {
		return asShape(args[i])
	}
	return topShape
}

// argDim reads call argument i as an int dim.
func argDim(args []sfVal, i int) sfDim {
	if i < len(args) {
		return asDim(args[i])
	}
	return dimTop
}

func one(v sfVal) []sfVal { return []sfVal{v} }

// c1 mints the constant dim 1.
func (in *sfInterp) c1(pos token.Pos) sfDim { return in.tbl.constDim(1, in.selfHop(pos)) }

// matmulLike applies the four GEMM inner-dim rules.
func (in *sfInterp) matmulLike(name string, pos token.Pos, a, b sfShape) (sfVal, bool) {
	switch name {
	case "MatMul":
		in.constrain(a.cols, b.rows, pos, "MatMul inner dims", nil)
		return matVal(a.rows, b.cols), true
	case "MatMulTA":
		in.constrain(a.rows, b.rows, pos, "MatMulTA inner dims", nil)
		return matVal(a.cols, b.cols), true
	case "MatMulTB":
		in.constrain(a.cols, b.cols, pos, "MatMulTB inner dims", nil)
		return matVal(a.rows, b.rows), true
	}
	return topVal, false
}

// affineModel: x(B,K) * w(K,N) + bias(1,N).
func (in *sfInterp) affineModel(pos token.Pos, x, w, bias sfShape) sfVal {
	in.constrain(x.cols, w.rows, pos, "Affine inner dims", nil)
	in.constrain(bias.rows, in.c1(pos), pos, "Affine bias rows", nil)
	in.constrain(bias.cols, w.cols, pos, "Affine bias cols", nil)
	return matVal(x.rows, w.cols)
}

// binModel applies the broadcast rule of Add/Sub/Mul/Div: each of b's
// dims is 1 or matches a's. Result takes a's shape.
func (in *sfInterp) binModel(op string, pos token.Pos, a, b sfShape) sfVal {
	in.broadcastCheck(a.rows, b.rows, pos, op+" rows")
	in.broadcastCheck(a.cols, b.cols, pos, op+" cols")
	return matVal(a.rows, a.cols)
}

// intoDst pins an Into-variant destination to the computed shape.
func (in *sfInterp) intoDst(op string, pos token.Pos, dst sfShape, r, c sfDim) {
	in.constrain(dst.rows, r, pos, op+" dst rows", nil)
	in.constrain(dst.cols, c, pos, op+" dst cols", nil)
}

// concatModel handles ConcatCols/ConcatRows width/height arithmetic over
// an explicit argument list: the shared dim unifies pairwise, the
// concatenated dim is the symbolic sum.
func (in *sfInterp) concatModel(name string, call *ast.CallExpr, args []sfVal) sfVal {
	pos := in.callPos(call)
	byCols := name == "ConcatCols"
	if call.Ellipsis.IsValid() {
		// xs... spread: per-element shapes unknown, only the shared dim of
		// a uniform tracked list survives.
		if len(args) == 1 && args[0].kind == vList && args[0].elemOK {
			if byCols {
				return matVal(args[0].elem.rows, dimTop)
			}
			return matVal(dimTop, args[0].elem.cols)
		}
		return topVal
	}
	if len(args) == 0 {
		return topVal
	}
	shapes := make([]sfShape, len(args))
	for i := range args {
		shapes[i] = asShape(args[i])
	}
	shared := func(s sfShape) sfDim {
		if byCols {
			return s.rows
		}
		return s.cols
	}
	sum := constExpr(0)
	sumOK := true
	for i, s := range shapes {
		if i > 0 {
			in.constrain(shared(shapes[0]), shared(s), pos, name+" shared dim", nil)
		}
		d := s.cols
		if !byCols {
			d = s.rows
		}
		if d == dimTop {
			sumOK = false
			continue
		}
		e, ok := in.tbl.resolveDim(d)
		if !ok {
			sumOK = false
			continue
		}
		sum = addExpr(sum, e)
	}
	total := dimTop
	if sumOK {
		total = in.tbl.exprDim(sum, in.selfHop(pos))
	}
	if byCols {
		return matVal(shared(shapes[0]), total)
	}
	return matVal(total, shared(shapes[0]))
}

// widthDim builds to-from for slice ops.
func (in *sfInterp) widthDim(pos token.Pos, from, to sfDim) sfDim {
	if from == dimTop || to == dimTop {
		return dimTop
	}
	ef, okf := in.tbl.resolveDim(from)
	et, okt := in.tbl.resolveDim(to)
	if !okf || !okt {
		return dimTop
	}
	return in.tbl.exprDim(subExpr(et, ef), in.selfHop(pos))
}

// ---- tensor package functions ----

func (in *sfInterp) modelTensorFunc(call *ast.CallExpr, fn *types.Func, args []sfVal) ([]sfVal, bool) {
	pos := in.callPos(call)
	switch fn.Name() {
	case "New", "NewPooled", "NewPooledUninit":
		return one(matVal(argDim(args, 0), argDim(args, 1))), true
	case "Full", "FromSlice", "NewPooledOneHot", "NewPooledBitmap":
		return one(matVal(argDim(args, 0), argDim(args, 1))), true
	case "Randn", "RandUniform":
		return one(matVal(argDim(args, 1), argDim(args, 2))), true
	case "Reuse":
		return one(matVal(argDim(args, 1), argDim(args, 2))), true
	case "Scalar":
		return one(matVal(in.c1(pos), in.c1(pos))), true
	case "MatMul", "MatMulTA", "MatMulTB":
		v, _ := in.matmulLike(fn.Name(), pos, argShape(args, 0), argShape(args, 1))
		return one(v), true
	case "MatMulInto", "MatMulTAInto", "MatMulTBInto":
		name := fn.Name()[:len(fn.Name())-len("Into")]
		v, _ := in.matmulLike(name, pos, argShape(args, 1), argShape(args, 2))
		in.intoDst(fn.Name(), pos, argShape(args, 0), v.shape.rows, v.shape.cols)
		return one(v), true
	case "Affine":
		return one(in.affineModel(pos, argShape(args, 0), argShape(args, 1), argShape(args, 2))), true
	case "Add", "Sub", "Mul", "Div":
		return one(in.binModel(fn.Name(), pos, argShape(args, 0), argShape(args, 1))), true
	case "AddInto", "SubInto", "MulInto", "DivInto":
		v := in.binModel(fn.Name(), pos, argShape(args, 1), argShape(args, 2))
		in.intoDst(fn.Name(), pos, argShape(args, 0), v.shape.rows, v.shape.cols)
		return one(v), true
	case "ConcatCols", "ConcatRows":
		return one(in.concatModel(fn.Name(), call, args)), true
	case "TransposeInto":
		m := argShape(args, 1)
		in.intoDst("TransposeInto", pos, argShape(args, 0), m.cols, m.rows)
		return one(matVal(m.cols, m.rows)), true
	case "FromRows", "Permutation":
		return in.topResults(call), true
	}
	return nil, false
}

// ---- Dense methods ----

func (in *sfInterp) modelDenseMethod(call *ast.CallExpr, fn *types.Func, recv sfVal, args []sfVal) ([]sfVal, bool) {
	pos := in.callPos(call)
	m := asShape(recv)
	switch fn.Name() {
	case "Rows":
		return one(intVal(m.rows)), true
	case "Cols":
		return one(intVal(m.cols)), true
	case "Shape":
		return []sfVal{intVal(m.rows), intVal(m.cols)}, true
	case "Scale", "AddScalar", "Apply", "ApplyInPlace", "Clone", "ShuffleRows":
		return one(matVal(m.rows, m.cols)), true
	case "AddInPlace", "AxpyInPlace":
		srcIdx := 0
		if fn.Name() == "AxpyInPlace" {
			srcIdx = 1
		}
		src := argShape(args, srcIdx)
		in.constrain(m.rows, src.rows, pos, fn.Name()+" rows", nil)
		in.constrain(m.cols, src.cols, pos, fn.Name()+" cols", nil)
		return one(matVal(m.rows, m.cols)), true
	case "Expand":
		in.broadcastCheck(argDim(args, 0), m.rows, pos, "Expand rows")
		in.broadcastCheck(argDim(args, 1), m.cols, pos, "Expand cols")
		return one(matVal(argDim(args, 0), argDim(args, 1))), true
	case "SumRows", "MeanRows":
		return one(matVal(in.c1(pos), m.cols)), true
	case "SumCols":
		return one(matVal(m.rows, in.c1(pos))), true
	case "RowL2Norms":
		return one(matVal(m.rows, in.c1(pos))), true
	case "SliceCols":
		return one(matVal(m.rows, in.widthDim(pos, argDim(args, 0), argDim(args, 1)))), true
	case "SliceRows":
		return one(matVal(in.widthDim(pos, argDim(args, 0), argDim(args, 1)), m.cols)), true
	case "SplitCols":
		return one(sfVal{kind: vList, elem: sfShape{rows: m.rows, cols: dimTop}, elemOK: true}), true
	case "GatherRows":
		return one(matVal(dimTop, m.cols)), true
	case "Transpose":
		return one(matVal(m.cols, m.rows)), true
	case "Reshape":
		return one(matVal(argDim(args, 0), argDim(args, 1))), true
	case "CopyInto":
		dst := argShape(args, 0)
		in.constrain(dst.rows, m.rows, pos, "CopyInto rows", nil)
		in.constrain(dst.cols, m.cols, pos, "CopyInto cols", nil)
		return one(matVal(m.rows, m.cols)), true
	}
	return nil, false
}

// ---- autograd package functions ----

func (in *sfInterp) modelAGFunc(call *ast.CallExpr, fn *types.Func, args []sfVal) ([]sfVal, bool) {
	pos := in.callPos(call)
	switch fn.Name() {
	case "Var", "Const":
		a := argShape(args, 0)
		return one(matVal(a.rows, a.cols)), true
	case "Scalar":
		return one(matVal(in.c1(pos), in.c1(pos))), true
	case "MatMul", "MatMulTA", "MatMulTB":
		v, _ := in.matmulLike(fn.Name(), pos, argShape(args, 0), argShape(args, 1))
		return one(v), true
	case "Affine":
		return one(in.affineModel(pos, argShape(args, 0), argShape(args, 1), argShape(args, 2))), true
	case "Add", "Sub", "Mul", "Div":
		return one(in.binModel(fn.Name(), pos, argShape(args, 0), argShape(args, 1))), true
	case "Neg", "Sqrt", "Exp", "Log", "ReLU", "Tanh", "Sigmoid", "SoftmaxRows", "Square", "LeakyReLU", "Scale", "AddScalar":
		a := argShape(args, 0)
		return one(matVal(a.rows, a.cols)), true
	case "Transpose":
		a := argShape(args, 0)
		return one(matVal(a.cols, a.rows)), true
	case "Expand":
		a := argShape(args, 0)
		in.broadcastCheck(argDim(args, 1), a.rows, pos, "Expand rows")
		in.broadcastCheck(argDim(args, 2), a.cols, pos, "Expand cols")
		return one(matVal(argDim(args, 1), argDim(args, 2))), true
	case "SumAll", "MeanAll":
		return one(matVal(in.c1(pos), in.c1(pos))), true
	case "SumRows", "MeanRows":
		a := argShape(args, 0)
		return one(matVal(in.c1(pos), a.cols)), true
	case "SumCols":
		a := argShape(args, 0)
		return one(matVal(a.rows, in.c1(pos))), true
	case "ConcatCols":
		return one(in.concatModel("ConcatCols", call, args)), true
	case "SliceCols":
		a := argShape(args, 0)
		return one(matVal(a.rows, in.widthDim(pos, argDim(args, 1), argDim(args, 2)))), true
	case "PadCols":
		a := argShape(args, 0)
		return one(matVal(a.rows, argDim(args, 2))), true
	case "GatherRows":
		a := argShape(args, 0)
		return one(matVal(dimTop, a.cols)), true
	case "ScatterRows":
		a := argShape(args, 0)
		return one(matVal(argDim(args, 2), a.cols)), true
	case "RowL2Norm":
		a := argShape(args, 0)
		return one(matVal(a.rows, in.c1(pos))), true
	case "Reshape":
		return one(matVal(argDim(args, 1), argDim(args, 2))), true
	case "Grad":
		return one(in.gradModel(call, args, 1)), true
	case "GradWithSeed":
		return one(in.gradModel(call, args, 2)), true
	}
	return nil, false
}

// gradModel: Grad(y, xs...) returns one gradient per x, each with x's
// shape.
func (in *sfInterp) gradModel(call *ast.CallExpr, args []sfVal, firstX int) sfVal {
	if call.Ellipsis.IsValid() {
		if len(args) == firstX+1 && args[firstX].kind == vList {
			return args[firstX]
		}
		return topVal
	}
	v := sfVal{kind: vList}
	for i := firstX; i < len(args); i++ {
		v.elems = append(v.elems, asShape(args[i]))
	}
	return v
}

// ---- Value methods ----

func (in *sfInterp) modelValueMethod(call *ast.CallExpr, fn *types.Func, recv sfVal, args []sfVal) ([]sfVal, bool) {
	m := asShape(recv)
	switch fn.Name() {
	case "Data", "Detach":
		return one(matVal(m.rows, m.cols)), true
	case "Shape":
		return []sfVal{intVal(m.rows), intVal(m.cols)}, true
	}
	return nil, false
}
