// Package lint is a from-scratch static-analysis driver for this repo,
// built only on the stdlib go/ast, go/parser and go/types packages. It
// enforces the invariants GTV's reproducibility and concurrency claims
// rest on but the compiler cannot see: pooled-buffer and tape lifetimes,
// seeded-randomness discipline, map-iteration determinism, float
// comparison hygiene, mutex-guarded field access, and unchecked protocol
// errors. See DESIGN.md ("Static analysis") for the rule catalog and how
// to add a rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named rule. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	// Name is the rule ID used in reports and //lint:ignore comments.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run executes the rule over one package.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) execution.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders a finding in file:line:col form. Paths are kept as the
// loader produced them; callers may relativize beforehand.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Rule)
}

// Analyzers returns the full rule registry in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerTapeLifetime,
		AnalyzerGlobalRand,
		AnalyzerMapOrder,
		AnalyzerFloatEq,
		AnalyzerLockedField,
		AnalyzerErrDrop,
	}
}

// AnalyzerByName resolves a rule ID, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over every package, applies //lint:ignore
// suppressions, and returns the surviving findings sorted by position.
// Malformed or unused suppressions are themselves findings (rule "lint"),
// so suppressions can never silently rot into blanket disables.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		var raw []Finding
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, analyzer: a, findings: &raw})
		}
		sup, bad := collectSuppressions(pkg)
		all = append(all, bad...)
		for _, f := range raw {
			if s := sup.match(f); s != nil {
				s.used = true
				continue
			}
			all = append(all, f)
		}
		all = append(all, sup.unused()...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return all
}

// Relativize rewrites finding paths relative to root for stable output.
func Relativize(findings []Finding, root string) {
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}
}

// ---- suppression comments ----

// A suppression is one well-formed "//lint:ignore <rule> <reason>"
// comment. It silences findings of that rule on its own line and on the
// line directly below it (so it works both as a trailing comment and as a
// comment line above the offending statement).
type suppression struct {
	file string
	line int
	rule string
	pos  token.Position
	used bool
}

type suppressionSet []*suppression

func (s suppressionSet) match(f Finding) *suppression {
	for _, sup := range s {
		if sup.rule == f.Rule && sup.file == f.Pos.Filename &&
			(sup.line == f.Pos.Line || sup.line == f.Pos.Line-1) {
			return sup
		}
	}
	return nil
}

func (s suppressionSet) unused() []Finding {
	var out []Finding
	for _, sup := range s {
		if !sup.used {
			out = append(out, Finding{
				Pos:  sup.pos,
				Rule: "lint",
				Msg:  fmt.Sprintf("unused //lint:ignore %s suppression (nothing to suppress here; delete it)", sup.rule),
			})
		}
	}
	return out
}

// collectSuppressions parses every //lint:ignore comment of a package.
// Malformed ones (missing rule, unknown rule, or missing reason) are
// returned as findings so they cannot act as blanket disables.
func collectSuppressions(pkg *Package) (suppressionSet, []Finding) {
	var (
		sups suppressionSet
		bad  []Finding
	)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Rule: "lint",
						Msg: "malformed suppression: want //lint:ignore <rule> <reason>"})
					continue
				}
				rule := fields[0]
				if AnalyzerByName(rule) == nil {
					bad = append(bad, Finding{Pos: pos, Rule: "lint",
						Msg: fmt.Sprintf("suppression names unknown rule %q", rule)})
					continue
				}
				sups = append(sups, &suppression{file: pos.Filename, line: pos.Line, rule: rule, pos: pos})
			}
		}
	}
	return sups, bad
}

// ---- shared analysis helpers ----

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool { return t != nil && types.Identical(t, errorType) }

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isInteger reports whether t's underlying type is an integer or boolean
// basic type (accumulations over these are order-independent).
func isOrderInsensitive(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean|types.IsUnsigned) != 0
}

// calleeObject resolves the object a call expression invokes (function,
// method, or builtin), or nil when it cannot (calls through function
// values, conversions).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName renders a human-readable name for a call's target.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return types.ExprString(fun.X) + "." + fun.Sel.Name
	}
	return "call"
}

// pkgPathSuffix reports whether obj belongs to a package whose import
// path is exactly path or ends with "/"+path. Matching by suffix keeps
// analyzers independent of the module name, so fixture packages that
// import the real module resolve the same way the module itself does.
func pkgPathSuffix(obj types.Object, path string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

// isPkgFunc reports whether call invokes the package-level function
// pkgSuffix.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil && pkgPathSuffix(fn, pkgSuffix)
}

// walkStack traverses root depth-first, calling fn with the node stack
// (outermost first, current node last). Returning false skips the
// subtree.
func walkStack(root ast.Node, fn func(stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosingFuncBody returns the body of the innermost FuncDecl or FuncLit
// on the stack (excluding the last element itself if it is the function),
// or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// outermostFuncBody returns the body of the outermost enclosing FuncDecl.
func outermostFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := 0; i < len(stack); i++ {
		if f, ok := stack[i].(*ast.FuncDecl); ok {
			return f.Body
		}
	}
	return nil
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// unquoteAll extracts the unquoted contents of every double-quoted string
// in s (used by the test harness for // want "..." expectations).
func unquoteAll(s string) []string {
	var out []string
	re := regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
	for _, q := range re.FindAllString(s, -1) {
		u, err := strconv.Unquote(q)
		if err == nil {
			out = append(out, u)
		}
	}
	return out
}
