// Package lint is a from-scratch static-analysis driver for this repo,
// built only on the stdlib go/ast, go/parser and go/types packages. It
// enforces the invariants GTV's reproducibility and concurrency claims
// rest on but the compiler cannot see: pooled-buffer and tape lifetimes,
// seeded-randomness discipline, map-iteration determinism, float
// comparison hygiene, mutex-guarded field access, and unchecked protocol
// errors. See DESIGN.md ("Static analysis") for the rule catalog and how
// to add a rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named rule. Per-package rules implement Run, which
// inspects a single type-checked package; whole-module rules (such as the
// interprocedural privflow taint analysis) implement RunModule instead and
// see every package of one load at once. Exactly one of Run and RunModule
// must be set.
type Analyzer struct {
	// Name is the rule ID used in reports and //lint:ignore comments.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run executes the rule over one package.
	Run func(*Pass)
	// RunModule executes the rule once over all loaded packages.
	RunModule func(*ModulePass)
}

// Pass carries one (analyzer, package) execution.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one (module analyzer, package set) execution.
type ModulePass struct {
	// Pkgs are all packages of the load, sorted by import path.
	Pkgs []*Package

	analyzer *Analyzer
	findings *[]Finding
	stats    Stats
}

// Stats are the coverage counters a module rule may emit alongside its
// findings (shapeflow reports how many tensor ops it proved consistent).
// They ride the cache next to findings and surface in the -json report.
type Stats map[string]int

// AddStat bumps a named counter on the pass. Keys are namespaced by rule
// ("shapeflow.ops_proved") so merged reports stay unambiguous.
func (p *ModulePass) AddStat(key string, n int) {
	if p.stats == nil {
		p.stats = make(Stats)
	}
	p.stats[p.analyzer.Name+"."+key] += n
}

// Merge folds other into s, summing shared keys.
func (s Stats) Merge(other Stats) Stats {
	if len(other) == 0 {
		return s
	}
	if s == nil {
		s = make(Stats, len(other))
	}
	for k, v := range other {
		s[k] += v
	}
	return s
}

// Fset returns the file set shared by the loaded packages.
func (p *ModulePass) Fset() *token.FileSet { return p.Pkgs[0].Fset }

// Report records a finding with an optional dataflow path (source-to-sink
// hops for taint rules).
func (p *ModulePass) Report(pos token.Pos, msg string, path []PathHop) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Fset().Position(pos),
		Rule: p.analyzer.Name,
		Msg:  msg,
		Path: path,
	})
}

// PathHop is one step of a dataflow path: the function the value moved
// through and the position of the move (a read, call, or store site).
type PathHop struct {
	Func string
	Pos  token.Position
}

// Finding is one rule violation at a source position. Path, when present,
// is the source-to-sink dataflow chain behind a taint finding.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	Path []PathHop `json:",omitempty"`
}

// String renders a finding in file:line:col form. Paths are kept as the
// loader produced them; callers may relativize beforehand.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Rule)
}

// PathString renders the dataflow path as an indented multi-line block, or
// "" when the finding has none.
func (f Finding) PathString() string {
	if len(f.Path) == 0 {
		return ""
	}
	var b strings.Builder
	for i, h := range f.Path {
		if i == 0 {
			b.WriteString("    taint path: ")
		} else {
			b.WriteString("\n             ->  ")
		}
		fmt.Fprintf(&b, "%s (%s:%d)", h.Func, h.Pos.Filename, h.Pos.Line)
	}
	return b.String()
}

// Analyzers returns the full rule registry in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerTapeLifetime,
		AnalyzerGlobalRand,
		AnalyzerMapOrder,
		AnalyzerFloatEq,
		AnalyzerLockedField,
		AnalyzerErrDrop,
		AnalyzerPrivFlow,
		AnalyzerSnapState,
		AnalyzerLockOrder,
		AnalyzerGoroLeak,
		AnalyzerCancelFlow,
		AnalyzerShapeFlow,
	}
}

// AnalyzerByName resolves a rule ID, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// SplitAnalyzers partitions a rule set into per-package and whole-module
// analyzers — the two independently cacheable phases of a run.
func SplitAnalyzers(analyzers []*Analyzer) (perPkg, module []*Analyzer) {
	for _, a := range analyzers {
		if a.RunModule != nil {
			module = append(module, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}
	return perPkg, module
}

// Run executes the analyzers over every package, applies //lint:ignore
// suppressions, and returns the surviving findings sorted by position.
// Malformed or unused suppressions are themselves findings (rule "lint"),
// so suppressions can never silently rot into blanket disables. A
// suppression only counts as unused when its rule actually ran.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	perPkg, module := SplitAnalyzers(analyzers)
	var all []Finding
	for _, pkg := range pkgs {
		all = append(all, RunPackage(pkg, perPkg)...)
	}
	if len(module) > 0 {
		all = append(all, RunModuleAnalyzers(pkgs, module)...)
	}
	SortFindings(all)
	return all
}

// RunPackage executes per-package analyzers over one package, applies the
// package's suppressions, and reports malformed suppressions plus unused
// suppressions of the rules that ran. It is the unit the findings cache
// stores per package; Run is the union of RunPackage over all packages
// and RunModuleAnalyzers. Results are unsorted.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		a.Run(&Pass{Pkg: pkg, analyzer: a, findings: &raw})
	}
	sup, all := collectSuppressions(pkg)
	for _, f := range raw {
		if s := sup.match(f); s != nil {
			s.used = true
			continue
		}
		all = append(all, f)
	}
	return append(all, sup.unused(ruleNames(analyzers))...)
}

// RunModuleAnalyzers executes whole-module analyzers once over the full
// package set, applies suppressions from every package, and reports
// unused suppressions of the module rules that ran. Malformed-suppression
// findings are left to RunPackage so they are reported exactly once.
// Results are unsorted.
func RunModuleAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		a.RunModule(&ModulePass{Pkgs: pkgs, analyzer: a, findings: &raw})
	}
	var sups suppressionSet
	for _, pkg := range pkgs {
		s, _ := collectSuppressions(pkg)
		sups = append(sups, s...)
	}
	var all []Finding
	for _, f := range raw {
		if s := sups.match(f); s != nil {
			s.used = true
			continue
		}
		all = append(all, f)
	}
	return append(all, sups.unused(ruleNames(analyzers))...)
}

// RunPackageRule executes exactly one per-package analyzer over one
// package, applies that rule's suppressions, and reports the rule's unused
// suppressions. It is the unit the per-rule findings cache stores;
// malformed-suppression findings are left to PackageSuppressionFindings so
// a multi-rule run reports them exactly once. Results are unsorted.
func RunPackageRule(pkg *Package, a *Analyzer) []Finding {
	var raw []Finding
	a.Run(&Pass{Pkg: pkg, analyzer: a, findings: &raw})
	sup, _ := collectSuppressions(pkg)
	var all []Finding
	for _, f := range raw {
		if s := sup.match(f); s != nil {
			s.used = true
			continue
		}
		all = append(all, f)
	}
	return append(all, sup.unused(ruleNames([]*Analyzer{a}))...)
}

// PackageSuppressionFindings reports a package's malformed //lint:ignore
// comments. They belong to no single rule, so per-rule runs cache them
// under their own key instead of duplicating them into every rule's entry.
func PackageSuppressionFindings(pkg *Package) []Finding {
	_, bad := collectSuppressions(pkg)
	return bad
}

// RunModuleRule executes one whole-module analyzer over the package set,
// applies suppressions from every package, reports the rule's unused
// suppressions, and returns the rule's coverage stats. Results are
// unsorted.
func RunModuleRule(pkgs []*Package, a *Analyzer) ([]Finding, Stats) {
	var raw []Finding
	mp := &ModulePass{Pkgs: pkgs, analyzer: a, findings: &raw}
	a.RunModule(mp)
	var sups suppressionSet
	for _, pkg := range pkgs {
		s, _ := collectSuppressions(pkg)
		sups = append(sups, s...)
	}
	var all []Finding
	for _, f := range raw {
		if s := sups.match(f); s != nil {
			s.used = true
			continue
		}
		all = append(all, f)
	}
	return append(all, sups.unused(ruleNames([]*Analyzer{a}))...), mp.stats
}

// ruleNames collects the rule IDs of an analyzer set.
func ruleNames(analyzers []*Analyzer) map[string]bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// SortFindings orders findings by position then rule, the driver's stable
// reporting order.
func SortFindings(all []Finding) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Relativize rewrites finding paths (including dataflow path hops)
// relative to root for stable output.
func Relativize(findings []Finding, root string) {
	rel := func(p string) string {
		if r, err := filepath.Rel(root, p); err == nil {
			return r
		}
		return p
	}
	for i := range findings {
		findings[i].Pos.Filename = rel(findings[i].Pos.Filename)
		for j := range findings[i].Path {
			findings[i].Path[j].Pos.Filename = rel(findings[i].Path[j].Pos.Filename)
		}
	}
}

// ---- suppression comments ----

// A suppression is one well-formed "//lint:ignore <rule> <reason>"
// comment. It silences findings of that rule on its own line and on the
// line directly below it (so it works both as a trailing comment and as a
// comment line above the offending statement).
type suppression struct {
	file string
	line int
	rule string
	pos  token.Position
	used bool
}

type suppressionSet []*suppression

func (s suppressionSet) match(f Finding) *suppression {
	for _, sup := range s {
		if sup.rule == f.Rule && sup.file == f.Pos.Filename &&
			(sup.line == f.Pos.Line || sup.line == f.Pos.Line-1) {
			return sup
		}
	}
	return nil
}

// unused reports the suppressions that silenced nothing, restricted to
// the rules that actually ran (a suppression for a rule outside this
// run's set cannot prove itself useful and is skipped).
func (s suppressionSet) unused(ran map[string]bool) []Finding {
	var out []Finding
	for _, sup := range s {
		if !sup.used && ran[sup.rule] {
			out = append(out, Finding{
				Pos:  sup.pos,
				Rule: "lint",
				Msg:  fmt.Sprintf("unused //lint:ignore %s suppression (nothing to suppress here; delete it)", sup.rule),
			})
		}
	}
	return out
}

// collectSuppressions parses every //lint:ignore comment of a package.
// Malformed ones (missing rule, unknown rule, or missing reason) are
// returned as findings so they cannot act as blanket disables.
func collectSuppressions(pkg *Package) (suppressionSet, []Finding) {
	var (
		sups suppressionSet
		bad  []Finding
	)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Rule: "lint",
						Msg: "malformed suppression: want //lint:ignore <rule> <reason>"})
					continue
				}
				rule := fields[0]
				if AnalyzerByName(rule) == nil {
					bad = append(bad, Finding{Pos: pos, Rule: "lint",
						Msg: fmt.Sprintf("suppression names unknown rule %q", rule)})
					continue
				}
				sups = append(sups, &suppression{file: pos.Filename, line: pos.Line, rule: rule, pos: pos})
			}
		}
	}
	return sups, bad
}

// ---- shared analysis helpers ----

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool { return t != nil && types.Identical(t, errorType) }

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isInteger reports whether t's underlying type is an integer or boolean
// basic type (accumulations over these are order-independent).
func isOrderInsensitive(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean|types.IsUnsigned) != 0
}

// calleeObject resolves the object a call expression invokes (function,
// method, or builtin), or nil when it cannot (calls through function
// values, conversions).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName renders a human-readable name for a call's target.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return types.ExprString(fun.X) + "." + fun.Sel.Name
	}
	return "call"
}

// pkgPathSuffix reports whether obj belongs to a package whose import
// path is exactly path or ends with "/"+path. Matching by suffix keeps
// analyzers independent of the module name, so fixture packages that
// import the real module resolve the same way the module itself does.
func pkgPathSuffix(obj types.Object, path string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

// isPkgFunc reports whether call invokes the package-level function
// pkgSuffix.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil && pkgPathSuffix(fn, pkgSuffix)
}

// walkStack traverses root depth-first, calling fn with the node stack
// (outermost first, current node last). Returning false skips the
// subtree.
func walkStack(root ast.Node, fn func(stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosingFuncBody returns the body of the innermost FuncDecl or FuncLit
// on the stack (excluding the last element itself if it is the function),
// or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// outermostFuncBody returns the body of the outermost enclosing FuncDecl.
func outermostFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := 0; i < len(stack); i++ {
		if f, ok := stack[i].(*ast.FuncDecl); ok {
			return f.Body
		}
	}
	return nil
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// unquoteAll extracts the unquoted contents of every double-quoted string
// in s (used by the test harness for // want "..." expectations).
func unquoteAll(s string) []string {
	var out []string
	re := regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
	for _, q := range re.FindAllString(s, -1) {
		u, err := strconv.Unquote(q)
		if err == nil {
			out = append(out, u)
		}
	}
	return out
}
