package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerGlobalRand enforces the repo's seeded-randomness discipline:
// same-seed runs must be byte-identical (the shuffling defense and
// DP-noise ablations are only auditable when training replays exactly),
// so all randomness must flow through per-client *rand.Rand instances
// seeded from configuration. Process-global math/rand functions and
// RNG seeds derived from time.Now() both break replays; they are banned
// everywhere except command packages (any path segment "cmd"), where
// wall-clock use for logging/timing is legitimate.
var AnalyzerGlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "ban process-global math/rand functions and time-derived RNG seeds outside cmd/",
	Run:  runGlobalRand,
}

// mathRandAllowed lists the math/rand (and v2) top-level functions that do
// NOT consume the process-global source: constructors for explicit,
// seedable generators.
var mathRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runGlobalRand(p *Pass) {
	if isCommandPath(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[e.Sel].(*types.Func); ok && isMathRandPkg(fn.Pkg()) &&
					fn.Type().(*types.Signature).Recv() == nil && !mathRandAllowed[fn.Name()] {
					p.Reportf(e.Pos(), "math/rand.%s draws from the process-global source; route randomness through a seeded *rand.Rand so same-seed runs replay byte-identically", fn.Name())
				}
			case *ast.CallExpr:
				obj := calleeObject(info, e)
				fn, ok := obj.(*types.Func)
				if !ok || !isMathRandPkg(fn.Pkg()) || !mathRandAllowed[fn.Name()] {
					return true
				}
				for _, arg := range e.Args {
					if tn := findTimeNow(info, arg); tn != nil {
						p.Reportf(tn.Pos(), "seeding rand.%s from time.Now() makes runs unreproducible; derive seeds from configuration", fn.Name())
					}
				}
			}
			return true
		})
	}
}

// isCommandPath reports whether an import path contains a "cmd" segment.
func isCommandPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}

// isMathRandPkg reports whether pkg is math/rand or math/rand/v2.
func isMathRandPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

// findTimeNow returns the first time.Now() call in the expression tree,
// or nil.
func findTimeNow(info *types.Info, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeObject(info, call).(*types.Func); ok &&
			fn.Name() == "Now" && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			found = call
			return false
		}
		return true
	})
	return found
}
