package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerCancelFlow verifies that a deadline, once a function has one,
// reaches every blocking operation the function performs. A function is
// in scope when it receives a context.Context, receives a CallPolicy, or
// is a method on a struct carrying a CallPolicy field — the three ways a
// deadline enters the fan-out path (fanClients -> transport). In scope,
// the rule flags:
//
//   - context.Background()/context.TODO() passed onward: the incoming
//     cancellation signal is severed at that call;
//   - a zero CallPolicy literal passed onward: same severing, for the
//     module's own deadline carrier;
//   - naked blocking operations — time.Sleep, sync.WaitGroup.Wait,
//     channel sends/receives outside a select, net.Dial without a
//     timeout — none of which observe the deadline the caller was
//     promised. net.DialTimeout is exempt (it bounds itself), as are
//     receives from ctx.Done() (awaiting cancellation *is* the point).
//
// Independently of scope, function literals passed to the fan-out
// machinery (fanClients / fanOut) must not block directly: the fan-out
// cancels losers when the first error lands, but only between callback
// invocations — a callback stuck in its own sleep or channel op escapes
// that, and one straggler stalls the round. Callbacks are expected to
// route all waiting through policy-bounded client calls.
var AnalyzerCancelFlow = &Analyzer{
	Name:      "cancelflow",
	Doc:       "functions holding a context or CallPolicy deadline must propagate it into every blocking operation",
	RunModule: runCancelFlow,
}

func runCancelFlow(p *ModulePass) {
	decls := buildDeclIndex(p.Pkgs)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				hasCtx, hasPolicy, carrier := deadlineCarriers(pkg.Info, fd)
				if hasCtx || hasPolicy {
					checkScopedBody(p, pkg.Info, fd, hasCtx, hasPolicy, carrier)
				}
				checkFanOutCallbacks(p, pkg.Info, decls, fd)
			}
		}
	}
}

// deadlineCarriers reports which deadline carriers fd holds: a
// context.Context parameter, a CallPolicy parameter, or a receiver whose
// struct type has a CallPolicy field. carrier names the source for the
// report text.
func deadlineCarriers(info *types.Info, fd *ast.FuncDecl) (hasCtx, hasPolicy bool, carrier string) {
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) {
			hasCtx, carrier = true, "a context parameter"
		}
		if isCallPolicyType(t) {
			hasPolicy = true
			if carrier == "" {
				carrier = "a CallPolicy parameter"
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := info.TypeOf(fd.Recv.List[0].Type)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if isCallPolicyType(st.Field(i).Type()) {
					hasPolicy = true
					if carrier == "" {
						carrier = "a CallPolicy field"
					}
				}
			}
		}
	}
	return hasCtx, hasPolicy, carrier
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isCallPolicyType matches the module's deadline carrier by name so
// fixture packages can declare their own CallPolicy.
func isCallPolicyType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "CallPolicy"
}

// checkScopedBody walks fd's own body (function literals are separate
// goroutines or callbacks, audited at their own sites) and reports
// deadline-severing calls and naked blocking operations.
func checkScopedBody(p *ModulePass, info *types.Info, fd *ast.FuncDecl, hasCtx, hasPolicy bool, carrier string) {
	fname := fd.Name.Name
	walkStack(fd.Body, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if hasCtx && isFreshContextCall(info, arg) {
					p.Report(arg.Pos(), fmt.Sprintf(
						"%s passes %s to %s despite holding %s: the cancellation signal is severed here",
						fname, calleeName(info, ast.Unparen(arg).(*ast.CallExpr)), callTargetName(info, n), carrier), nil)
				}
				if hasPolicy && isZeroPolicyLit(info, arg) {
					p.Report(arg.Pos(), fmt.Sprintf(
						"%s passes a zero CallPolicy to %s despite holding %s: the deadline is severed here",
						fname, callTargetName(info, n), carrier), nil)
				}
			}
			switch kind := classifyBlockingCall(info, n); kind {
			case blockSleep, blockWGWait:
				p.Report(n.Pos(), fmt.Sprintf(
					"%s in %s, which holds %s: it ignores the deadline; select on a timer and the cancellation signal instead",
					kind, fname, carrier), nil)
			case blockNetIO:
				if isBareDial(info, n) {
					p.Report(n.Pos(), fmt.Sprintf(
						"unbounded net.Dial in %s, which holds %s: use net.DialTimeout bounded by the deadline",
						fname, carrier), nil)
				}
			}
		case *ast.SendStmt:
			if !insideSelect(stack) {
				p.Report(n.Pos(), fmt.Sprintf(
					"naked channel send in %s, which holds %s: a missing receiver blocks past the deadline; select on the cancellation signal too",
					fname, carrier), nil)
			}
		case *ast.UnaryExpr:
			if u, ok := isRecvExpr(info, n); ok && !insideSelect(stack) && !isCtxDoneCall(info, u.X) {
				p.Report(n.Pos(), fmt.Sprintf(
					"naked channel receive in %s, which holds %s: a missing sender blocks past the deadline; select on the cancellation signal too",
					fname, carrier), nil)
			}
		}
		return true
	})
}

// isFreshContextCall recognizes context.Background() / context.TODO().
func isFreshContextCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPkgFunc(info, call, "context", "Background") || isPkgFunc(info, call, "context", "TODO")
}

// isZeroPolicyLit recognizes an empty CallPolicy{} composite literal.
func isZeroPolicyLit(info *types.Info, e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok || len(lit.Elts) != 0 {
		return false
	}
	t := info.TypeOf(lit)
	return t != nil && isCallPolicyType(t)
}

// isBareDial recognizes the unbounded net dials (everything but
// DialTimeout, which carries its own bound).
func isBareDial(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net" {
		return false
	}
	switch fn.Name() {
	case "Dial", "DialIP", "DialTCP", "DialUDP", "DialUnix":
		return true
	}
	return false
}

// isCtxDoneCall recognizes `ctx.Done()` receives — waiting on the
// cancellation signal itself is deadline-respecting by definition.
func isCtxDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Name() != "Done" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n, ok := sig.Recv().Type().(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// callTargetName names the callee of a call for report text.
func callTargetName(info *types.Info, call *ast.CallExpr) string {
	if name := calleeName(info, call); name != "" {
		return name
	}
	return "callee"
}

// checkFanOutCallbacks flags function literals handed to the fan-out
// machinery that block directly instead of routing waits through
// policy-bounded client calls.
func checkFanOutCallbacks(p *ModulePass, info *types.Info, decls declIndex, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _, ok := decls.staticCallee(info, call)
		if !ok || (fn.Name() != "fanClients" && fn.Name() != "fanOut") {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			checkCallbackBody(p, info, fn.Name(), lit)
		}
		return true
	})
}

// checkCallbackBody reports direct blocking inside one fan-out callback.
func checkCallbackBody(p *ModulePass, info *types.Info, fanName string, lit *ast.FuncLit) {
	report := func(pos ast.Node, what blockingKind) {
		p.Report(pos.Pos(), fmt.Sprintf(
			"%s callback performs %s directly: first-error cancellation cannot interrupt it, so one straggler stalls the round; route the wait through a policy-bounded client call",
			fanName, what), nil)
	}
	walkStack(lit.Body, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.FuncLit:
			// Nested literals run as their own goroutines or callbacks;
			// walkStack roots at lit.Body, so every FuncLit seen is nested.
			return false
		case *ast.CallExpr:
			switch kind := classifyBlockingCall(info, n); kind {
			case blockSleep, blockWGWait, blockNetIO:
				report(n, kind)
			}
		case *ast.SendStmt:
			if !insideSelect(stack) {
				report(n, blockChanSend)
			}
		case *ast.UnaryExpr:
			if u, ok := isRecvExpr(info, n); ok && !insideSelect(stack) && !isCtxDoneCall(info, u.X) {
				report(n, blockChanRecv)
			}
		}
		return true
	})
}
