package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureCases maps each analyzer to the fixture packages exercising it.
// Fixture files carry `// want "regexp"` comments on the lines where a
// finding is expected; lines without one must stay clean.
var fixtureCases = []struct {
	rule       string
	dir        string
	importPath string
}{
	{"tapelifetime", "testdata/src/tapelifetime", "tapelifetime"},
	{"globalrand", "testdata/src/globalrand", "globalrand"},
	{"globalrand", "testdata/src/cmd/globalrandcmd", "cmd/globalrandcmd"},
	{"maporder", "testdata/src/maporder", "maporder"},
	{"floateq", "testdata/src/floateq", "floateq"},
	{"lockedfield", "testdata/src/lockedfield", "lockedfield"},
	{"errdrop", "testdata/src/errdrop", "errdrop"},
	{"floateq", "testdata/src/suppress", "suppress"},
	{"privflow", "testdata/src/privflow", "privflow"},
	{"snapstate", "testdata/src/snapstate", "snapstate"},
	{"lockorder", "testdata/src/lockorder", "lockorder"},
	{"goroleak", "testdata/src/goroleak", "goroleak"},
	{"cancelflow", "testdata/src/cancelflow", "cancelflow"},
	{"shapeflow", "testdata/src/shapeflow", "shapeflow"},
}

func TestAnalyzersOnFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureCases {
		name := tc.rule + "/" + filepath.Base(tc.dir)
		t.Run(name, func(t *testing.T) {
			a := AnalyzerByName(tc.rule)
			if a == nil {
				t.Fatalf("unknown rule %q", tc.rule)
			}
			pkg, err := loader.LoadDir(tc.dir, tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			findings := Run([]*Package{pkg}, []*Analyzer{a})
			checkWants(t, tc.dir, findings)
		})
	}
}

// expectation is one parsed `// want "re"` comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants scans every fixture file in dir for want comments.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			quoted := unquoteAll(line[idx+len("// want "):])
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted regexp", path, i+1)
			}
			for _, q := range quoted {
				re, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, q, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkWants verifies findings against the dir's want comments: every
// finding must match exactly one pending expectation on its line, and
// every expectation must be consumed.
func checkWants(t *testing.T, dir string, findings []Finding) {
	t.Helper()
	wants := parseWants(t, dir)
	for _, f := range findings {
		full := fmt.Sprintf("%s (%s)", f.Msg, f.Rule)
		var hit *expectation
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(full) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		hit.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestMalformedSuppressions covers the forms a want comment cannot
// annotate inline (the want text would change how the suppression
// parses): a missing reason and an unknown rule name must both surface
// as rule-"lint" findings.
func TestMalformedSuppressions(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/suppressbad", "suppressbad")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{AnalyzerFloatEq})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Rule != "lint" {
			t.Errorf("finding %s: rule = %q, want \"lint\"", f, f.Rule)
		}
	}
	if !strings.Contains(findings[0].Msg, "malformed suppression") {
		t.Errorf("first finding %q, want a malformed-suppression report", findings[0].Msg)
	}
	if !strings.Contains(findings[1].Msg, `unknown rule "nosuchrule"`) {
		t.Errorf("second finding %q, want an unknown-rule report", findings[1].Msg)
	}
}

// TestPrivFlowAnnotationErrors covers annotation misuse. The findings
// land on the directive comments themselves, where an inline want
// comment would change how the directive parses, so the expected
// messages are checked directly (mirroring TestMalformedSuppressions).
func TestPrivFlowAnnotationErrors(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/privflowann", "privflowann")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{AnalyzerPrivFlow})
	wantSubstrings := []string{
		`unknown privacy annotation kind "leak"`,
		"privacy sink annotation needs a description",
		"privacy sink annotation cannot apply to a struct field",
		"conflicting privacy annotations on conflicted",
		"misplaced privacy annotation",
		"misplaced privacy annotation",
	}
	if len(findings) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wantSubstrings), findings)
	}
	matched := make([]bool, len(findings))
	for _, want := range wantSubstrings {
		hit := false
		for i, f := range findings {
			if !matched[i] && strings.Contains(f.Msg, want) {
				matched[i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("no finding contains %q in %v", want, findings)
		}
	}
}

// TestShapeFlowAnnotationErrors covers //shape: misuse. The findings
// land on the directive comments themselves, where an inline want
// comment would change how the directive parses, so the expected
// messages are checked directly (mirroring TestPrivFlowAnnotationErrors).
// Invalid directives are discarded, so each one also re-arms the
// boundary obligation on its declaration.
func TestShapeFlowAnnotationErrors(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/shapeflowann", "shapeflowann")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{AnalyzerShapeFlow})
	wantSubstrings := []string{
		"shape annotation on TooManyIns has 2 in(...) clauses for 1 shape-bearing parameters",
		"exported shape-bearing function shapeflowann.TooManyIns needs a //shape: annotation",
		"malformed shape annotation: in(...) clauses must precede out(...) clauses",
		"exported shape-bearing function shapeflowann.OutBeforeIn needs a //shape: annotation",
		`malformed shape annotation: bad dim "B-1"`,
		"exported shape-bearing function shapeflowann.BadToken needs a //shape: annotation",
		`malformed shape annotation: "_" cannot appear inside a sum`,
		"exported shape-bearing function shapeflowann.BlankInSum needs a //shape: annotation",
		"malformed shape annotation: clause needs 1 or 2 dims, got 3",
		"exported shape-bearing function shapeflowann.TooWide needs a //shape: annotation",
		"shape annotation on NoDims, which has no tensor or int dims to declare",
		"duplicate shape annotation on Duplicate",
		"shape annotation on a struct field must be a single (R,C) clause",
		"exported tensor field FieldForms.Wrong needs a //shape: (R,C) annotation",
		"shape annotation on NotTensor, which is not a tensor-typed field",
		"exported shape-bearing function shapeflowann.Misplaced needs a //shape: annotation",
		"misplaced shape annotation: //shape: goes in the doc comment",
	}
	if len(findings) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wantSubstrings), findings)
	}
	matched := make([]bool, len(findings))
	for _, want := range wantSubstrings {
		hit := false
		for i, f := range findings {
			if !matched[i] && strings.Contains(f.Msg, want) {
				matched[i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("no finding contains %q in %v", want, findings)
		}
	}
}

// TestShapeFlowPaths checks that an interprocedural shape finding
// carries the call chain: the Chain fixture violates a MatMul inner-dim
// equation exported from helperMM's summary, so the finding must hop
// through helperMM before landing in Chain.
func TestShapeFlowPaths(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/shapeflow", "shapeflow")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{AnalyzerShapeFlow})
	var hit *Finding
	for i := range findings {
		if strings.Contains(findings[i].Msg, "MatMul inner dims") && len(findings[i].Path) > 0 && strings.Contains(findings[i].Path[0].Func, "helperMM") {
			hit = &findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no summary-replay finding hopping through helperMM in %v", findings)
	}
	if len(hit.Path) < 2 {
		t.Fatalf("replay finding path has %d hops, want >= 2: %v", len(hit.Path), hit.Path)
	}
	for i, h := range hit.Path {
		if h.Func == "" {
			t.Errorf("path hop %d has no function name", i)
		}
		if h.Pos.Filename == "" || h.Pos.Line == 0 {
			t.Errorf("path hop %d has no position: %+v", i, h)
		}
	}
	rendered := hit.PathString()
	if !strings.Contains(rendered, "helperMM") || !strings.Contains(rendered, "Chain") {
		t.Errorf("PathString() = %q, want helperMM -> Chain chain", rendered)
	}
}

// TestPrivFlowPaths checks that a taint finding carries the full
// source-to-sink call chain: the SampleCV fixture flow passes through
// pickRows and gather, so its path must span several hops with file
// positions, and PathString must render them for the CLI.
func TestPrivFlowPaths(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/privflow", "privflow")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{AnalyzerPrivFlow})
	var hit *Finding
	for i := range findings {
		if strings.Contains(findings[i].Msg, "SampleCV") {
			hit = &findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no SampleCV finding in %v", findings)
	}
	if len(hit.Path) < 2 {
		t.Fatalf("SampleCV finding path has %d hops, want >= 2: %v", len(hit.Path), hit.Path)
	}
	for i, h := range hit.Path {
		if h.Func == "" {
			t.Errorf("path hop %d has no function name", i)
		}
		if h.Pos.Filename == "" || h.Pos.Line == 0 {
			t.Errorf("path hop %d has no position: %+v", i, h)
		}
	}
	rendered := hit.PathString()
	if !strings.Contains(rendered, "taint path:") {
		t.Errorf("PathString() = %q, want a rendered taint path", rendered)
	}
	for _, h := range hit.Path {
		if !strings.Contains(rendered, h.Func) {
			t.Errorf("PathString() %q is missing hop %q", rendered, h.Func)
		}
	}
}

// TestSnapStateSkipNeedsReason covers the empty //snap:skip form, which a
// want comment cannot annotate inline (trailing text after the directive
// would parse as the skip reason), mirroring TestMalformedSuppressions.
func TestSnapStateSkipNeedsReason(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/snapstatebad", "snapstatebad")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{AnalyzerSnapState})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Msg, "//snap:skip needs a reason") {
		t.Errorf("finding %q, want a missing-reason report", findings[0].Msg)
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %+v needs a name, a doc, and exactly one of Run or RunModule", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) does not round-trip", a.Name)
		}
	}
	if AnalyzerByName("lint") != nil {
		t.Error(`"lint" must stay reserved for driver findings`)
	}
}
