package lint

import (
	"strings"
	"testing"
	"time"
)

// TestInstrument pins the -timing contract: wrappers keep names and docs
// (so suppression matching, -rules filtering, and cache salting see the
// same analyzer set), executed rules accumulate nonzero time, and rules
// that never run — the cache-hit case — stay at exactly zero in both the
// summary and the JSON map.
func TestInstrument(t *testing.T) {
	ran := &Analyzer{Name: "ran", Doc: "runs and sleeps", Run: func(p *Pass) {
		time.Sleep(2 * time.Millisecond)
	}}
	cached := &Analyzer{Name: "cached", Doc: "never executes", RunModule: func(p *ModulePass) {}}
	wrapped, tm := Instrument([]*Analyzer{ran, cached})
	if len(wrapped) != 2 {
		t.Fatalf("wrapped %d analyzers, want 2", len(wrapped))
	}
	for i, orig := range []*Analyzer{ran, cached} {
		if wrapped[i].Name != orig.Name || wrapped[i].Doc != orig.Doc {
			t.Errorf("wrapper %d changed identity: %q/%q", i, wrapped[i].Name, wrapped[i].Doc)
		}
	}
	if wrapped[0].Run == nil || wrapped[1].RunModule == nil {
		t.Fatal("wrappers dropped the run functions")
	}

	// Execute only the first analyzer, simulating the second being served
	// from the findings cache.
	wrapped[0].Run(nil)

	ms := tm.Milliseconds()
	if len(ms) != 2 {
		t.Fatalf("Milliseconds has %d entries, want 2 (zeros included): %v", len(ms), ms)
	}
	if ms["ran"] <= 0 {
		t.Errorf("executed rule shows %vms, want > 0", ms["ran"])
	}
	if ms["cached"] != 0 {
		t.Errorf("unexecuted rule shows %vms, want exactly 0", ms["cached"])
	}

	sum := tm.Summary()
	for _, want := range []string{"ran", "cached", "total"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	// Slowest first: the executed rule must be listed before the cached one.
	if strings.Index(sum, "ran") > strings.Index(sum, "cached") {
		t.Errorf("summary not sorted slowest-first:\n%s", sum)
	}
}
