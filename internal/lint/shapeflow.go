package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AnalyzerShapeFlow is the interprocedural tensor shape inference that
// proves the runtime shape guards of internal/tensor unreachable on the
// paths it can see. The vocabulary is one comment directive:
//
//	//shape: in(B,Din) in(Din,Dout) out(B,Dout)  — on a function or
//	    interface method: clauses map positionally over the shape-bearing
//	    parameters and results (a *tensor.Dense or *autograd.Value slot
//	    takes a 2-dim clause, a plain int slot a 1-dim clause; other types
//	    are skipped). Dims are symbolic names, integer constants, "_"
//	    (unconstrained), or sums (D1+D2).
//	//shape: (R,C)  — on a tensor-typed struct field. Field and method
//	    annotations of one type share a namespace, so Linear's W(In,Out)
//	    pins the same In/Out its Forward contract names.
//
// The analysis propagates symbolic row/col dimensions through the tensor
// and autograd op vocabulary (MatMul/MatMulTA/MatMulTB/Affine inner-dim
// unification, broadcast row/column rules, ConcatCols/SplitCols/SliceCols
// width arithmetic, GatherRows/ShuffleRows row preservation), computes
// per-function summaries for unannotated module functions, and replays
// them at call sites; annotated functions are checked against their own
// contract (dims become rigid skolems) and callers use the contract
// directly. Unknown callees and untracked expressions degrade to an
// unconstrained top, never to a false finding. Findings carry the hop
// chain from the annotation that pinned a dim to the op where unification
// fails, and the pass reports ops_proved/ops_checked coverage counters
// through -json.
//
// Annotations are not optional decoration: shape-bearing exported API in
// opted-in packages (internal/{nn,gan,condvec,vfl,encoding}, plus any
// package that uses //shape: at all) and every implementation of an
// annotated interface method must carry one, so deleting a boundary
// annotation is itself a finding.
var AnalyzerShapeFlow = &Analyzer{
	Name:      "shapeflow",
	Doc:       "interprocedural symbolic tensor shape checking (//shape: annotations)",
	RunModule: runShapeFlow,
}

// shapePkgs are the package-path suffixes whose exported shape-bearing
// API must be annotated even before the package adopts //shape: itself:
// the model, sampling, federation, and encoding boundaries the paper's
// column-split protocol runs through.
var shapePkgs = []string{
	"internal/nn",
	"internal/gan",
	"internal/condvec",
	"internal/vfl",
	"internal/encoding",
}

// ---- annotation model ----

// sfDimSpec is one dim token of a clause: c + sum(names), or "_" (fresh).
type sfDimSpec struct {
	c     int
	names []string
	fresh bool
}

// sfClause is one in(...)/out(...) group (or the single field clause).
type sfClause struct {
	dims []sfDimSpec
}

// sfAnn is a parsed function-form annotation.
type sfAnn struct {
	ins, outs []sfClause
	pos       token.Position
}

// sfFieldAnn is a parsed field-form annotation.
type sfFieldAnn struct {
	dims [2]sfDimSpec
	pos  token.Position
}

// names returns every symbolic name an annotation mentions.
func (a *sfAnn) names() map[string]bool {
	out := make(map[string]bool)
	for _, cs := range [][]sfClause{a.ins, a.outs} {
		for _, c := range cs {
			for _, d := range c.dims {
				for _, n := range d.names {
					out[n] = true
				}
			}
		}
	}
	return out
}

// ---- slot classification ----

const (
	slotNone = iota
	slotMat
	slotInt
)

// isMatrixType reports whether t is *tensor.Dense or *autograd.Value —
// the two matrix carriers shapeflow tracks.
func isMatrixType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return (obj.Name() == "Dense" && pkgPathSuffix(obj, "internal/tensor")) ||
		(obj.Name() == "Value" && pkgPathSuffix(obj, "internal/autograd"))
}

// isIntType reports whether t is exactly int (named int kinds such as
// enum-like phases carry no dimension semantics and are skipped).
func isIntType(t types.Type) bool { return types.Identical(t, types.Typ[types.Int]) }

// slotKind classifies one parameter or result type.
func slotKind(t types.Type) int {
	switch {
	case isMatrixType(t):
		return slotMat
	case isIntType(t):
		return slotInt
	}
	return slotNone
}

// shapeSlots lists the shape-bearing parameter and result slots of a
// signature, in declaration order. vars[i] is the slot's *types.Var. The
// variadic parameter (a slice) never forms a slot.
func shapeSlots(tuple *types.Tuple, variadic bool) (kinds []int, vars []*types.Var) {
	for i := 0; i < tuple.Len(); i++ {
		v := tuple.At(i)
		if variadic && i == tuple.Len()-1 {
			continue
		}
		if k := slotKind(v.Type()); k != slotNone {
			kinds = append(kinds, k)
			vars = append(vars, v)
		}
	}
	return kinds, vars
}

// ---- parsing ----

// parseShapeDirective splits a "//shape: ..." comment into its clause
// text. ok is false when the comment is not a shape directive at all.
func parseShapeDirective(text string) (rest string, ok bool) {
	rest, ok = strings.CutPrefix(text, "//shape:")
	return strings.TrimSpace(rest), ok
}

// parseShapeClauses parses the directive body. A body starting with "("
// is the field form (one bare clause); otherwise it is a sequence of
// in(...)/out(...) clauses.
func parseShapeClauses(body string) (ins, outs []sfClause, field *sfClause, err error) {
	s := strings.TrimSpace(body)
	if s == "" {
		return nil, nil, nil, fmt.Errorf("empty directive: want //shape: in(R,C) ... out(R,C) or //shape: (R,C)")
	}
	if strings.HasPrefix(s, "(") {
		c, rest, cerr := parseOneClause(s)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		if strings.TrimSpace(rest) != "" {
			return nil, nil, nil, fmt.Errorf("field annotation takes a single (R,C) clause")
		}
		if len(c.dims) != 2 {
			return nil, nil, nil, fmt.Errorf("field annotation needs exactly 2 dims, got %d", len(c.dims))
		}
		return nil, nil, &c, nil
	}
	for s != "" {
		var kind string
		switch {
		case strings.HasPrefix(s, "in("):
			kind, s = "in", s[len("in"):]
		case strings.HasPrefix(s, "out("):
			kind, s = "out", s[len("out"):]
		default:
			return nil, nil, nil, fmt.Errorf("want in(...) or out(...) clause, got %q", s)
		}
		c, rest, cerr := parseOneClause(s)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		if kind == "in" {
			if len(outs) > 0 {
				return nil, nil, nil, fmt.Errorf("in(...) clauses must precede out(...) clauses")
			}
			ins = append(ins, c)
		} else {
			outs = append(outs, c)
		}
		s = strings.TrimSpace(rest)
	}
	return ins, outs, nil, nil
}

// parseOneClause consumes one "(d1,d2,...)" group from the front of s.
func parseOneClause(s string) (sfClause, string, error) {
	if !strings.HasPrefix(s, "(") {
		return sfClause{}, "", fmt.Errorf("want '(' to open a clause, got %q", s)
	}
	end := strings.IndexByte(s, ')')
	if end < 0 {
		return sfClause{}, "", fmt.Errorf("unclosed clause %q", s)
	}
	inner := s[1:end]
	var c sfClause
	for _, tok := range strings.Split(inner, ",") {
		d, err := parseDimSpec(strings.TrimSpace(tok))
		if err != nil {
			return sfClause{}, "", err
		}
		c.dims = append(c.dims, d)
	}
	if len(c.dims) == 0 || len(c.dims) > 2 {
		return sfClause{}, "", fmt.Errorf("clause needs 1 or 2 dims, got %d", len(c.dims))
	}
	return c, s[end+1:], nil
}

// parseDimSpec parses one dim token: NAME, INT, "_", or a "+"-joined sum
// of names and ints.
func parseDimSpec(tok string) (sfDimSpec, error) {
	if tok == "_" {
		return sfDimSpec{fresh: true}, nil
	}
	var d sfDimSpec
	for _, part := range strings.Split(tok, "+") {
		part = strings.TrimSpace(part)
		if part == "" {
			return d, fmt.Errorf("empty term in dim %q", tok)
		}
		if n, err := strconv.Atoi(part); err == nil {
			d.c += n
			continue
		}
		if part == "_" {
			return d, fmt.Errorf("\"_\" cannot appear inside a sum (%q)", tok)
		}
		if !isDimName(part) {
			return d, fmt.Errorf("bad dim %q: want a name, integer, \"_\", or a sum of names", tok)
		}
		d.names = append(d.names, part)
	}
	return d, nil
}

func isDimName(s string) bool {
	for i, r := range s {
		switch {
		case r == '_', 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z':
		case i > 0 && '0' <= r && r <= '9':
		default:
			return false
		}
	}
	return s != ""
}

// ---- whole-module state ----

// sfFunc is one module function under analysis.
type sfFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
	name string
	ann  *sfAnn
	sum  *sfSummary
	// sumState: 0 fresh, 1 in progress (recursion guard), 2 done.
	sumState int
}

// summary atoms/equations, exported in terms of input atom indices.
type sumEq struct {
	a, b linExpr // dims are atom indices
	op   string
	path []PathHop // chain inside the callee, innermost first
}

type sumResult struct {
	kind           int // slotNone, slotMat, slotInt
	rows, cols     linExpr
	rowsOK, colsOK bool
}

type sfSummary struct {
	// atomOf[i] is the first atom index of input slot i (receiver first,
	// then params); matrix slots own two consecutive atoms (rows, cols),
	// int slots one, other inputs none (-1).
	atomOf []int
	kinds  []int
	// recvSlot marks slot 0 as the method receiver.
	recvSlot bool
	atoms    int
	eqs      []sumEq
	results  []sumResult
}

// topSummaryFor builds the all-unknown summary for a signature (used for
// recursion and as a safe fallback).
func topSummaryFor(sig *types.Signature) *sfSummary {
	s := &sfSummary{recvSlot: sig.Recv() != nil}
	inputs := inputSlots(sig)
	for _, k := range inputs {
		s.atomOf = append(s.atomOf, -1)
		s.kinds = append(s.kinds, k)
	}
	for i := 0; i < sig.Results().Len(); i++ {
		s.results = append(s.results, sumResult{kind: slotKind(sig.Results().At(i).Type())})
	}
	return s
}

// inputSlots classifies receiver-then-params of a signature.
func inputSlots(sig *types.Signature) []int {
	var kinds []int
	if sig.Recv() != nil {
		kinds = append(kinds, slotKind(sig.Recv().Type()))
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Variadic() && i == sig.Params().Len()-1 {
			kinds = append(kinds, slotNone)
			continue
		}
		kinds = append(kinds, slotKind(sig.Params().At(i).Type()))
	}
	return kinds
}

// opStat accumulates unification outcomes at one op site.
type opStat struct {
	constraints int
	proved      int
	bound       int
	failed      int
}

// sf is the whole-module analysis state.
type sf struct {
	pass *ModulePass
	fset *token.FileSet

	anns      map[types.Object]*sfAnn      // functions and interface methods
	fieldAnns map[types.Object]*sfFieldAnn // struct fields
	// fieldNames maps a named type to the symbolic names its field
	// annotations use — the object-scoped part of its methods' contracts.
	fieldNames map[*types.TypeName]map[string]bool
	// fieldsOf lists a named type's annotated fields (for method bodies).
	funcs    map[*types.Func]*sfFunc
	funcList []*sfFunc

	namedTypes []*types.Named
	implCache  map[*types.Func][]*sfFunc

	ops      map[token.Pos]*opStat
	reported map[string]bool
}

func runShapeFlow(p *ModulePass) {
	a := &sf{
		pass:       p,
		fset:       p.Fset(),
		anns:       make(map[types.Object]*sfAnn),
		fieldAnns:  make(map[types.Object]*sfFieldAnn),
		fieldNames: make(map[*types.TypeName]map[string]bool),
		funcs:      make(map[*types.Func]*sfFunc),
		implCache:  make(map[*types.Func][]*sfFunc),
		ops:        make(map[token.Pos]*opStat),
		reported:   make(map[string]bool),
	}
	a.collectAnnotations()
	a.collectFuncs()
	a.collectNamedTypes()
	a.checkObligations()

	for _, f := range a.funcList {
		if f.ann != nil {
			a.checkAnnotatedBody(f)
		} else {
			a.summaryOf(f)
		}
	}

	// An op is "proved" when every shape constraint it imposes is fully
	// tracked and discharged: either both sides resolved to the same
	// expression (uProved) or the constraint is satisfied by binding a
	// still-free symbolic dim (uBound — the assume-guarantee case at an
	// annotated boundary). A site touching an untracked dim (uUnknown)
	// never counts: consistency there is hoped, not proved.
	checked, proved, exact := 0, 0, 0
	for _, st := range a.ops {
		if st.constraints == 0 {
			continue
		}
		checked++
		if st.failed == 0 && st.proved+st.bound == st.constraints {
			proved++
			if st.proved == st.constraints {
				exact++
			}
		}
	}
	p.AddStat("ops_checked", checked)
	p.AddStat("ops_proved", proved)
	p.AddStat("ops_proved_exact", exact)
	p.AddStat("funcs_analyzed", len(a.funcList))
	p.AddStat("shape_annotations", len(a.anns)+len(a.fieldAnns))
}

// reportf emits a finding once per site (a single bad line can trip
// several unifications; one finding per line keeps triage sane).
func (a *sf) reportf(pos token.Pos, msg string, path []PathHop) {
	p := a.fset.Position(pos)
	key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.pass.Report(pos, msg, path)
}

// noteOp records one unification outcome at an op site.
func (a *sf) noteOp(pos token.Pos, res unifyResult) {
	st := a.ops[pos]
	if st == nil {
		st = &opStat{}
		a.ops[pos] = st
	}
	st.constraints++
	switch res {
	case uProved:
		st.proved++
	case uBound:
		st.bound++
	case uFail:
		st.failed++
	}
}

// ---- annotation collection ----

func (a *sf) collectAnnotations() {
	consumed := make(map[token.Pos]bool)
	for _, pkg := range a.pass.Pkgs {
		for _, file := range pkg.Files {
			a.collectFileAnnotations(pkg, file, consumed)
		}
	}
	// A //shape: directive not attached to an annotatable declaration is a
	// contract that binds nothing — flag it.
	for _, pkg := range a.pass.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if _, ok := parseShapeDirective(c.Text); ok && !consumed[c.Pos()] {
						a.pass.Report(c.Pos(), "misplaced shape annotation: //shape: goes in the doc comment of a function, interface method, or tensor struct field", nil)
					}
				}
			}
		}
	}
}

func (a *sf) collectFileAnnotations(pkg *Package, file *ast.File, consumed map[token.Pos]bool) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
				a.bindFuncDirectives(pkg, d.Doc, nil, obj, consumed)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				switch tt := ts.Type.(type) {
				case *ast.StructType:
					for _, field := range tt.Fields.List {
						a.bindFieldDirective(pkg, tn, field, consumed)
					}
				case *ast.InterfaceType:
					for _, m := range tt.Methods.List {
						if len(m.Names) == 0 {
							continue
						}
						if obj, ok := pkg.Info.Defs[m.Names[0]].(*types.Func); ok {
							a.bindFuncDirectives(pkg, m.Doc, m.Comment, obj, consumed)
						}
					}
				}
			}
		}
	}
}

// bindFuncDirectives parses the function-form directive on one function
// or interface method and validates clause arity against the signature.
func (a *sf) bindFuncDirectives(pkg *Package, doc, comment *ast.CommentGroup, obj *types.Func, consumed map[token.Pos]bool) {
	for _, cg := range []*ast.CommentGroup{doc, comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			body, ok := parseShapeDirective(c.Text)
			if !ok {
				continue
			}
			consumed[c.Pos()] = true
			ins, outs, field, err := parseShapeClauses(body)
			if err != nil {
				a.pass.Report(c.Pos(), "malformed shape annotation: "+err.Error(), nil)
				continue
			}
			if field != nil {
				a.pass.Report(c.Pos(), "shape annotation on a function must use in(...)/out(...) clauses, not a bare field clause", nil)
				continue
			}
			if prev := a.anns[obj]; prev != nil {
				a.pass.Report(c.Pos(), fmt.Sprintf("duplicate shape annotation on %s (already declared at %s)", obj.Name(), prev.pos), nil)
				continue
			}
			ann := &sfAnn{ins: ins, outs: outs, pos: a.fset.Position(c.Pos())}
			if !a.checkAnnArity(c.Pos(), obj, ann) {
				continue
			}
			a.anns[obj] = ann
		}
	}
}

// checkAnnArity verifies clause counts and per-clause dim counts against
// the signature's shape-bearing slots.
func (a *sf) checkAnnArity(pos token.Pos, obj *types.Func, ann *sfAnn) bool {
	sig := obj.Type().(*types.Signature)
	pk, _ := shapeSlots(sig.Params(), sig.Variadic())
	rk, _ := shapeSlots(sig.Results(), false)
	if len(pk)+len(rk) == 0 {
		a.pass.Report(pos, fmt.Sprintf("shape annotation on %s, which has no tensor or int dims to declare", obj.Name()), nil)
		return false
	}
	if len(ann.ins) != len(pk) {
		a.pass.Report(pos, fmt.Sprintf("shape annotation on %s has %d in(...) clauses for %d shape-bearing parameters", obj.Name(), len(ann.ins), len(pk)), nil)
		return false
	}
	if len(ann.outs) != len(rk) {
		a.pass.Report(pos, fmt.Sprintf("shape annotation on %s has %d out(...) clauses for %d shape-bearing results", obj.Name(), len(ann.outs), len(rk)), nil)
		return false
	}
	for i, k := range pk {
		if want := slotDims(k); len(ann.ins[i].dims) != want {
			a.pass.Report(pos, fmt.Sprintf("shape annotation on %s: in clause #%d needs %d dim(s)", obj.Name(), i+1, want), nil)
			return false
		}
	}
	for i, k := range rk {
		if want := slotDims(k); len(ann.outs[i].dims) != want {
			a.pass.Report(pos, fmt.Sprintf("shape annotation on %s: out clause #%d needs %d dim(s)", obj.Name(), i+1, want), nil)
			return false
		}
	}
	return true
}

func slotDims(kind int) int {
	if kind == slotMat {
		return 2
	}
	return 1
}

// bindFieldDirective parses the field-form directive on one struct field.
func (a *sf) bindFieldDirective(pkg *Package, owner *types.TypeName, field *ast.Field, consumed map[token.Pos]bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			body, ok := parseShapeDirective(c.Text)
			if !ok {
				continue
			}
			consumed[c.Pos()] = true
			_, _, fc, err := parseShapeClauses(body)
			if err != nil {
				a.pass.Report(c.Pos(), "malformed shape annotation: "+err.Error(), nil)
				continue
			}
			if fc == nil {
				a.pass.Report(c.Pos(), "shape annotation on a struct field must be a single (R,C) clause", nil)
				continue
			}
			if len(field.Names) == 0 {
				a.pass.Report(c.Pos(), "shape annotation cannot attach to an embedded field", nil)
				continue
			}
			fa := &sfFieldAnn{dims: [2]sfDimSpec{fc.dims[0], fc.dims[1]}, pos: a.fset.Position(c.Pos())}
			for _, name := range field.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if !isMatrixType(obj.Type()) {
					a.pass.Report(c.Pos(), fmt.Sprintf("shape annotation on %s, which is not a tensor-typed field", name.Name), nil)
					continue
				}
				a.fieldAnns[obj] = fa
				if owner != nil {
					ns := a.fieldNames[owner]
					if ns == nil {
						ns = make(map[string]bool)
						a.fieldNames[owner] = ns
					}
					for _, d := range fc.dims {
						for _, n := range d.names {
							ns[n] = true
						}
					}
				}
			}
		}
	}
}

// ---- function registry, named types ----

func (a *sf) collectFuncs() {
	for _, pkg := range a.pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				f := &sfFunc{pkg: pkg, decl: fd, obj: obj, name: funcDisplayName(obj), ann: a.anns[obj]}
				a.funcs[obj] = f
				a.funcList = append(a.funcList, f)
			}
		}
	}
}

func (a *sf) collectNamedTypes() {
	for _, pkg := range a.pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // sorted: deterministic
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				a.namedTypes = append(a.namedTypes, named)
			}
		}
	}
}

// resolveImpls finds the module implementations of an interface method.
func (a *sf) resolveImpls(m *types.Func) []*sfFunc {
	if impls, ok := a.implCache[m]; ok {
		return impls
	}
	var out []*sfFunc
	sig := m.Type().(*types.Signature)
	ifc, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if ok {
		for _, named := range a.namedTypes {
			if types.IsInterface(named) {
				continue
			}
			if !types.Implements(named, ifc) && !types.Implements(types.NewPointer(named), ifc) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				if impl := a.funcs[fn]; impl != nil {
					out = append(out, impl)
				}
			}
		}
	}
	a.implCache[m] = out
	return out
}

// recvBaseTypeName returns the *types.TypeName of a method's receiver base
// type, or nil for non-methods and interface receivers.
func recvBaseTypeName(obj *types.Func) *types.TypeName {
	sig := obj.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && !types.IsInterface(named) {
		return named.Obj()
	}
	return nil
}

// ---- obligations ----

// pkgOptedIn reports whether a package is held to the annotation
// obligations: it already uses //shape:, or it is one of the model /
// sampling / federation / encoding boundary packages.
func (a *sf) pkgOptedIn(pkg *Package) bool {
	for _, s := range shapePkgs {
		if pkg.Path == s || strings.HasSuffix(pkg.Path, "/"+s) {
			return true
		}
	}
	for obj := range a.anns {
		if obj.Pkg() == pkg.Types {
			return true
		}
	}
	for obj := range a.fieldAnns {
		if obj.Pkg() == pkg.Types {
			return true
		}
	}
	return false
}

// hasMatrixSlot reports whether a signature carries at least one direct
// tensor parameter or result (slices don't count: no single shape).
func hasMatrixSlot(sig *types.Signature) bool {
	pk, _ := shapeSlots(sig.Params(), sig.Variadic())
	rk, _ := shapeSlots(sig.Results(), false)
	for _, k := range append(pk, rk...) {
		if k == slotMat {
			return true
		}
	}
	return false
}

// checkObligations reports every boundary that must carry a //shape:
// annotation but does not. Obligations are what make annotations
// load-bearing: deleting one turns into a finding, not silence.
func (a *sf) checkObligations() {
	for _, pkg := range a.pass.Pkgs {
		optedIn := a.pkgOptedIn(pkg)
		if optedIn {
			a.checkPkgObligations(pkg)
		}
	}
	// Implementations of annotated interface methods need their own
	// annotation in every package: the contract is per-implementation.
	for _, f := range a.funcList {
		if f.ann != nil {
			continue
		}
		sig := f.obj.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		if m := a.annotatedIfaceMethod(f.obj); m != nil {
			a.reportf(f.decl.Name.Pos(), fmt.Sprintf("%s implements annotated interface method %s and needs its own //shape: annotation", f.name, funcDisplayName(m)), nil)
		}
	}
}

func (a *sf) checkPkgObligations(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
				if !ok || !d.Name.IsExported() || a.anns[obj] != nil {
					continue
				}
				if tn := recvBaseTypeName(obj); d.Recv != nil && (tn == nil || !tn.Exported()) {
					continue
				}
				if hasMatrixSlot(obj.Type().(*types.Signature)) {
					a.reportf(d.Name.Pos(), fmt.Sprintf("exported shape-bearing function %s needs a //shape: annotation", funcDisplayName(obj)), nil)
				}
			case *ast.GenDecl:
				a.checkTypeObligations(pkg, d)
			}
		}
	}
}

func (a *sf) checkTypeObligations(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok || !ts.Name.IsExported() {
			continue
		}
		switch tt := ts.Type.(type) {
		case *ast.StructType:
			for _, field := range tt.Fields.List {
				for _, name := range field.Names {
					obj := pkg.Info.Defs[name]
					if obj == nil || !name.IsExported() || !isMatrixType(obj.Type()) {
						continue
					}
					if a.fieldAnns[obj] == nil {
						a.reportf(name.Pos(), fmt.Sprintf("exported tensor field %s.%s needs a //shape: (R,C) annotation", ts.Name.Name, name.Name), nil)
					}
				}
			}
		case *ast.InterfaceType:
			for _, m := range tt.Methods.List {
				if len(m.Names) == 0 || !m.Names[0].IsExported() {
					continue
				}
				obj, ok := pkg.Info.Defs[m.Names[0]].(*types.Func)
				if !ok || a.anns[obj] != nil {
					continue
				}
				if hasMatrixSlot(obj.Type().(*types.Signature)) {
					a.reportf(m.Names[0].Pos(), fmt.Sprintf("exported shape-bearing interface method %s.%s needs a //shape: annotation", ts.Name.Name, m.Names[0].Name), nil)
				}
			}
		}
	}
}

// annotatedIfaceMethod returns the annotated interface method obj
// implements, or nil.
func (a *sf) annotatedIfaceMethod(obj *types.Func) *types.Func {
	for ao := range a.anns {
		m, ok := ao.(*types.Func)
		if !ok || !isInterfaceMethod(m) || m.Name() != obj.Name() {
			continue
		}
		for _, impl := range a.resolveImpls(m) {
			if impl.obj == obj {
				return m
			}
		}
	}
	return nil
}

// ---- summaries ----

// summaryOf computes (and memoizes) the shape summary of an unannotated
// module function by abstractly interpreting its body; the walk also
// reports any directly provable shape violations inside it. Recursion
// degrades to the all-unknown summary.
func (a *sf) summaryOf(f *sfFunc) *sfSummary {
	sig := f.obj.Type().(*types.Signature)
	switch f.sumState {
	case 1:
		return topSummaryFor(sig)
	case 2:
		return f.sum
	}
	f.sumState = 1
	f.sum = a.analyzeBody(f, true)
	f.sumState = 2
	return f.sum
}

// checkAnnotatedBody verifies an annotated function against its own
// contract: annotation dims become rigid skolems, the body is walked, and
// every return site unifies against the out clauses.
func (a *sf) checkAnnotatedBody(f *sfFunc) {
	a.analyzeBody(f, false)
}
