package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// maxPathHops caps taint-path length: beyond this the chain stops growing
// and the existing prefix (which always starts at the source) is reported.
const maxPathHops = 12

// srcTaint records that a value derives from one annotated source, with the
// function chain that carried it there. Values are immutable once built:
// extending a path always allocates a new srcTaint.
type srcTaint struct {
	ann *pfAnnotation
	// path is the hop chain from the source read to the current position.
	path []PathHop
	// viaSink marks taint that already crossed a sink boundary (was
	// returned from a sink function). Such taint was reported at that first
	// crossing and is not re-reported by downstream relaying sinks.
	viaSink bool
}

// extend returns s with one more hop appended (capped at maxPathHops).
func (s *srcTaint) extend(hop PathHop) *srcTaint {
	if len(s.path) >= maxPathHops {
		return s
	}
	path := make([]PathHop, len(s.path), len(s.path)+1)
	copy(path, s.path)
	return &srcTaint{ann: s.ann, path: append(path, hop), viaSink: s.viaSink}
}

// taintVal is the abstract value of the analysis: which function inputs
// (receiver + parameters, as a bitmask) and which annotated sources flow
// into a value. The zero value means untainted.
type taintVal struct {
	inputs uint64
	srcs   []*srcTaint
}

func (t taintVal) isZero() bool { return t.inputs == 0 && len(t.srcs) == 0 }

// hasSrc reports whether an equivalent source taint (same annotation and
// sink-crossing state) is already present; paths are frozen at first
// discovery, which keeps the fixpoint finite.
func (t taintVal) hasSrc(s *srcTaint) bool {
	for _, have := range t.srcs {
		if have.ann == s.ann && have.viaSink == s.viaSink {
			return true
		}
	}
	return false
}

// union merges two taint values into a fresh one; the srcTaint pointers are
// shared (they are immutable) but the slice never aliases the inputs.
func (t taintVal) union(o taintVal) (taintVal, bool) {
	changed := false
	out := taintVal{inputs: t.inputs, srcs: t.srcs}
	if o.inputs&^t.inputs != 0 {
		out.inputs |= o.inputs
		changed = true
	}
	for _, s := range o.srcs {
		if !out.hasSrc(s) {
			out.srcs = append(out.srcs[:len(out.srcs):len(out.srcs)], s)
			changed = true
		}
	}
	return out, changed
}

// summary is a function's interprocedural contract: for each result, which
// inputs and which sources flow into it.
type summary struct {
	results []taintVal
}

// mergeResult folds one observed return taint into result r. When the
// function is a sink, source taints are recorded as having crossed the
// boundary (viaSink) with the return site as the final hop, so callers
// relaying them do not re-report.
func (s *summary) mergeResult(r int, t taintVal, sink bool, hop PathHop) bool {
	if r >= len(s.results) {
		return false
	}
	if sink {
		marked := taintVal{inputs: t.inputs}
		for _, src := range t.srcs {
			crossed := src.extend(hop)
			marked.srcs = append(marked.srcs, &srcTaint{ann: crossed.ann, path: crossed.path, viaSink: true})
		}
		t = marked
	}
	merged, changed := s.results[r].union(t)
	if changed {
		s.results[r] = merged
	}
	return changed
}

// interp evaluates one function body over the abstract taint domain.
type interp struct {
	a    *pf
	fn   *pfFunc
	info *types.Info

	state        map[types.Object]taintVal
	localChanged bool

	report   bool
	reported map[string]bool
}

func (in *interp) pos(p token.Pos) token.Position { return in.a.fset.Position(p) }

func (in *interp) hop(p token.Pos) PathHop {
	return PathHop{Func: in.fn.name, Pos: in.pos(p)}
}

func (in *interp) walkBody() {
	in.walkStmt(in.fn.decl.Body)
}

// mergeState weakly updates a variable's taint.
func (in *interp) mergeState(obj types.Object, t taintVal) {
	if obj == nil || t.isZero() {
		return
	}
	merged, changed := in.state[obj].union(t)
	if changed {
		in.state[obj] = merged
		in.localChanged = true
	}
}

// mergeFieldTaint records source taint stored into a struct field, making
// it visible to every other function reading that field. Only source
// taints transfer globally; input bits are meaningless across functions.
func (in *interp) mergeFieldTaint(field *types.Var, t taintVal, hop PathHop) {
	if len(t.srcs) == 0 {
		return
	}
	ext := taintVal{}
	for _, s := range t.srcs {
		ext.srcs = append(ext.srcs, s.extend(hop))
	}
	merged, changed := in.a.fieldTaint[field].union(ext)
	if changed {
		in.a.fieldTaint[field] = merged
		in.a.changed = true
		in.localChanged = true
	}
}

// ---- statements ----

func (in *interp) walkStmtList(list []ast.Stmt) {
	for _, s := range list {
		in.walkStmt(s)
	}
}

func (in *interp) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		in.walkStmtList(st.List)
	case *ast.ExprStmt:
		in.evalExpr(st.X)
	case *ast.AssignStmt:
		in.walkAssign(st)
	case *ast.DeclStmt:
		in.walkDecl(st)
	case *ast.ReturnStmt:
		in.walkReturn(st)
	case *ast.IfStmt:
		in.walkStmt(st.Init)
		in.evalExpr(st.Cond)
		in.walkStmt(st.Body)
		in.walkStmt(st.Else)
	case *ast.ForStmt:
		in.walkStmt(st.Init)
		if st.Cond != nil {
			in.evalExpr(st.Cond)
		}
		in.walkStmt(st.Body)
		in.walkStmt(st.Post)
	case *ast.RangeStmt:
		in.walkRange(st)
	case *ast.SwitchStmt:
		in.walkStmt(st.Init)
		if st.Tag != nil {
			in.evalExpr(st.Tag)
		}
		in.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		in.walkTypeSwitch(st)
	case *ast.CaseClause:
		for _, e := range st.List {
			in.evalExpr(e)
		}
		in.walkStmtList(st.Body)
	case *ast.SelectStmt:
		in.walkStmt(st.Body)
	case *ast.CommClause:
		in.walkStmt(st.Comm)
		in.walkStmtList(st.Body)
	case *ast.SendStmt:
		t := in.evalExpr(st.Value)
		in.evalExpr(st.Chan)
		in.mergeRootOf(st.Chan, t)
	case *ast.DeferStmt:
		in.evalExpr(st.Call)
	case *ast.GoStmt:
		in.evalExpr(st.Call)
	case *ast.LabeledStmt:
		in.walkStmt(st.Stmt)
	case *ast.IncDecStmt:
		in.evalExpr(st.X)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (in *interp) walkDecl(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		taints := in.evalRHS(vs.Values, len(vs.Names))
		for i, name := range vs.Names {
			if name.Name != "_" && i < len(taints) {
				in.mergeState(in.info.Defs[name], taints[i])
			}
		}
	}
}

func (in *interp) walkAssign(st *ast.AssignStmt) {
	taints := in.evalRHS(st.Rhs, len(st.Lhs))
	for i, lhs := range st.Lhs {
		if i < len(taints) {
			in.assign(lhs, taints[i])
		}
	}
}

// evalRHS evaluates an assignment's right-hand side into n taints,
// handling multi-result calls and the comma-ok forms.
func (in *interp) evalRHS(rhs []ast.Expr, n int) []taintVal {
	if len(rhs) == 1 && n > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			out := in.evalCall(call)
			for len(out) < n {
				out = append(out, taintVal{})
			}
			return out
		}
		// v, ok := m[k] / x.(T) / <-ch: the value carries the operand's
		// taint, the bool is clean.
		out := make([]taintVal, n)
		out[0] = in.evalExpr(rhs[0])
		return out
	}
	out := make([]taintVal, 0, len(rhs))
	for _, e := range rhs {
		out = append(out, in.evalExpr(e))
	}
	return out
}

// assign performs a weak update of one assignment target.
func (in *interp) assign(lhs ast.Expr, t taintVal) {
	in.sinkCheckPtrWrite(lhs, t)
	in.storeTarget(lhs, t)
}

// storeTarget walks an lvalue down to the variables and fields it can
// mutate, merging taint into each (weak update: container and element
// share one abstract value).
func (in *interp) storeTarget(e ast.Expr, t taintVal) {
	switch l := ast.Unparen(e).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := in.info.Defs[l]
		if obj == nil {
			obj = in.info.Uses[l]
		}
		in.mergeState(obj, t)
	case *ast.SelectorExpr:
		if sel, ok := in.info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			if field, ok := sel.Obj().(*types.Var); ok {
				in.mergeFieldTaint(field, t, in.hop(l.Pos()))
			}
		}
		in.storeTarget(l.X, t)
	case *ast.StarExpr:
		in.storeTarget(l.X, t)
	case *ast.IndexExpr:
		in.storeTarget(l.X, t)
	case *ast.SliceExpr:
		in.storeTarget(l.X, t)
	}
}

// mergeRootOf merges taint into the rooted variable of an expression
// (used for channel sends and reference-argument writes).
func (in *interp) mergeRootOf(e ast.Expr, t taintVal) {
	if t.isZero() {
		return
	}
	in.storeTarget(e, t)
}

func (in *interp) walkRange(st *ast.RangeStmt) {
	t := in.evalExpr(st.X)
	if st.Key != nil {
		in.assign(st.Key, t)
	}
	if st.Value != nil {
		in.assign(st.Value, t)
	}
	in.walkStmt(st.Body)
}

func (in *interp) walkTypeSwitch(st *ast.TypeSwitchStmt) {
	in.walkStmt(st.Init)
	var operand taintVal
	switch as := st.Assign.(type) {
	case *ast.AssignStmt:
		if len(as.Rhs) == 1 {
			if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
				operand = in.evalExpr(ta.X)
			}
		}
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(as.X).(*ast.TypeAssertExpr); ok {
			operand = in.evalExpr(ta.X)
		}
	}
	for _, clause := range st.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		// The per-clause binding of `x := y.(type)` is an implicit object.
		if obj := in.info.Implicits[cc]; obj != nil {
			in.mergeState(obj, operand)
		}
		in.walkStmtList(cc.Body)
	}
}

// ---- returns and sink checks ----

func (in *interp) walkReturn(st *ast.ReturnStmt) {
	sig := in.fn.obj.Type().(*types.Signature)
	nres := sig.Results().Len()
	var taints []taintVal
	switch {
	case len(st.Results) == 0:
		// Naked return: read the named result variables.
		taints = make([]taintVal, 0, nres)
		for _, field := range resultFields(in.fn.decl) {
			for _, name := range field.Names {
				taints = append(taints, in.state[in.info.Defs[name]])
			}
		}
	default:
		taints = in.evalRHS(st.Results, nres)
	}
	hop := in.hop(st.Pos())
	for r, t := range taints {
		if r >= nres {
			break
		}
		if in.report && in.fn.sink != nil && !isErrorType(sig.Results().At(r).Type()) {
			in.reportSinkFlow(st.Pos(), t, "returned from")
		}
		if in.fn.sum.mergeResult(r, t, in.fn.sink != nil, hop) {
			in.a.changed = true
			in.localChanged = true
		}
	}
}

func resultFields(fd *ast.FuncDecl) []*ast.Field {
	if fd.Type.Results == nil {
		return nil
	}
	return fd.Type.Results.List
}

// Error results are exempt from sink checks (isErrorType in lint.go):
// error strings are assumed not to embed private payloads, a documented
// approximation that keeps fmt.Errorf wrapping from drowning the signal.

// sinkCheckPtrWrite flags tainted writes through a sink function's pointer
// parameters (*reply = v, reply.Field = v) — the RPC reply path.
func (in *interp) sinkCheckPtrWrite(lhs ast.Expr, t taintVal) {
	if !in.report || in.fn.sink == nil || len(t.srcs) == 0 {
		return
	}
	root := lhsRootIdent(lhs)
	if root == nil {
		return
	}
	obj := in.info.Uses[root]
	if obj == nil {
		return
	}
	// Writes through the receiver are internal state, not replies: start
	// after it.
	start := 0
	if sig := in.fn.obj.Type().(*types.Signature); sig.Recv() != nil {
		start = 1
	}
	for i := start; i < len(in.fn.inputObjs); i++ {
		if in.fn.inputObjs[i] != nil && in.fn.inputObjs[i] == obj {
			if _, ok := obj.Type().(*types.Pointer); ok {
				in.reportSinkFlow(lhs.Pos(), t, "written to the reply of")
			}
			return
		}
	}
}

// lhsRootIdent returns the base identifier of an lvalue chain, or nil.
func lhsRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch l := ast.Unparen(e).(type) {
		case *ast.Ident:
			return l
		case *ast.SelectorExpr:
			e = l.X
		case *ast.StarExpr:
			e = l.X
		case *ast.IndexExpr:
			e = l.X
		case *ast.SliceExpr:
			e = l.X
		default:
			return nil
		}
	}
}

// reportSinkFlow emits one finding per (position, source) pair for taint
// reaching a sink boundary that has not already crossed one.
func (in *interp) reportSinkFlow(pos token.Pos, t taintVal, how string) {
	for _, s := range t.srcs {
		if s.viaSink {
			continue
		}
		key := fmt.Sprintf("%d|%s|%s", pos, s.ann.pos, how)
		if in.reported[key] {
			continue
		}
		in.reported[key] = true
		msg := fmt.Sprintf("privacy source %q %s privacy sink %s (%s) without a sanitizer",
			s.ann.desc, how, in.fn.name, in.fn.sink.desc)
		// Consecutive hops can land on the same function and line (a
		// summary application and the reported statement both stamp the
		// call site); collapse them so the printed chain stays one line
		// per hop.
		path := make([]PathHop, 0, len(s.path)+1)
		for _, h := range append(append([]PathHop(nil), s.path...), in.hop(pos)) {
			if len(path) == 0 || !sameHopSite(path[len(path)-1], h) {
				path = append(path, h)
			}
		}
		in.a.pass.Report(pos, msg, path)
	}
}

// sameHopSite reports whether two hops name the same function on the
// same source line (columns may differ between a call and its statement).
func sameHopSite(a, b PathHop) bool {
	return a.Func == b.Func && a.Pos.Filename == b.Pos.Filename && a.Pos.Line == b.Pos.Line
}

// ---- expressions ----

func (in *interp) evalExprList(list []ast.Expr) taintVal {
	var u taintVal
	for _, e := range list {
		u, _ = u.union(in.evalExpr(e))
	}
	return u
}

func (in *interp) evalExpr(e ast.Expr) taintVal {
	switch x := e.(type) {
	case nil:
		return taintVal{}
	case *ast.Ident:
		obj := in.info.Uses[x]
		if obj == nil {
			obj = in.info.Defs[x]
		}
		if obj == nil {
			return taintVal{}
		}
		return in.state[obj]
	case *ast.SelectorExpr:
		return in.evalSelector(x)
	case *ast.ParenExpr:
		return in.evalExpr(x.X)
	case *ast.CallExpr:
		res := in.evalCall(x)
		var u taintVal
		for _, t := range res {
			u, _ = u.union(t)
		}
		return u
	case *ast.BinaryExpr:
		u := in.evalExpr(x.X)
		u, _ = u.union(in.evalExpr(x.Y))
		return u
	case *ast.UnaryExpr:
		return in.evalExpr(x.X)
	case *ast.StarExpr:
		return in.evalExpr(x.X)
	case *ast.IndexExpr:
		// Either a container index or a generic instantiation used as a
		// value; both reduce to the operand's taint.
		u := in.evalExpr(x.X)
		u, _ = u.union(in.evalExpr(x.Index))
		return u
	case *ast.IndexListExpr:
		return in.evalExpr(x.X)
	case *ast.SliceExpr:
		// Bounds select which data is exposed, so they taint the view just
		// as an index taints an element (GatherRows-style row selection).
		u := in.evalExpr(x.X)
		u, _ = u.union(in.evalExpr(x.Low))
		u, _ = u.union(in.evalExpr(x.High))
		u, _ = u.union(in.evalExpr(x.Max))
		return u
	case *ast.TypeAssertExpr:
		return in.evalExpr(x.X)
	case *ast.CompositeLit:
		var u taintVal
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				u, _ = u.union(in.evalExpr(kv.Value))
				continue
			}
			u, _ = u.union(in.evalExpr(elt))
		}
		return u
	case *ast.KeyValueExpr:
		return in.evalExpr(x.Value)
	case *ast.FuncLit:
		// Closure bodies run in the enclosing state: walk for effects
		// (captured-variable writes, field stores, nested calls).
		in.walkStmt(x.Body)
		return taintVal{}
	case *ast.BasicLit, *ast.ArrayType, *ast.MapType, *ast.ChanType,
		*ast.StructType, *ast.InterfaceType, *ast.FuncType, *ast.Ellipsis:
		return taintVal{}
	}
	return taintVal{}
}

// evalSelector handles field reads (annotation sources and global field
// taint), method values, and qualified identifiers.
func (in *interp) evalSelector(x *ast.SelectorExpr) taintVal {
	if sel, ok := in.info.Selections[x]; ok {
		switch sel.Kind() {
		case types.FieldVal:
			t := in.evalExpr(x.X)
			field, _ := sel.Obj().(*types.Var)
			if field == nil {
				return t
			}
			if ann := in.a.anns[field]; ann != nil && ann.kind == annSource {
				s := &srcTaint{ann: ann, path: []PathHop{in.hop(x.Pos())}}
				if !t.hasSrc(s) {
					t.srcs = append(t.srcs[:len(t.srcs):len(t.srcs)], s)
				}
			}
			if ft, ok := in.a.fieldTaint[field]; ok {
				ext := taintVal{}
				for _, s := range ft.srcs {
					ext.srcs = append(ext.srcs, s.extend(in.hop(x.Pos())))
				}
				t, _ = t.union(ext)
			}
			return t
		case types.MethodVal:
			// A bound method value captures its receiver.
			return in.evalExpr(x.X)
		case types.MethodExpr:
			return taintVal{}
		}
	}
	// Qualified identifier (pkg.Name) or similar: read the object state.
	if obj := in.info.Uses[x.Sel]; obj != nil {
		return in.state[obj]
	}
	return taintVal{}
}

// ---- calls ----

// evalCall returns the per-result taints of a call expression.
func (in *interp) evalCall(call *ast.CallExpr) []taintVal {
	nres := callResultCount(in.info, call)
	// Type conversion: taint passes through.
	if tv, ok := in.info.Types[call.Fun]; ok && tv.IsType() {
		return []taintVal{in.evalExprList(call.Args)}
	}
	callee := in.calleeObj(call)
	if b, ok := callee.(*types.Builtin); ok {
		return in.evalBuiltin(b, call, nres)
	}
	fnObj, _ := callee.(*types.Func)
	if fnObj != nil {
		if ann := in.a.anns[fnObj]; ann != nil {
			switch ann.kind {
			case annSanitizer:
				in.evalExprList(call.Args)
				in.evalRecv(call)
				return make([]taintVal, nres)
			case annSource:
				in.evalExprList(call.Args)
				in.evalRecv(call)
				t := taintVal{srcs: []*srcTaint{{ann: ann, path: []PathHop{in.hop(call.Pos())}}}}
				return replicate(t, nres)
			}
		}
		if isInterfaceMethod(fnObj) {
			return in.evalIfaceCall(call, fnObj, nres)
		}
		if target := in.a.funcs[fnObj]; target != nil {
			out := make([]taintVal, nres)
			in.applySummary(call, target, out)
			return out
		}
	}
	return in.evalUnknownCall(call, nres)
}

// calleeObj resolves the called object, unwrapping generic instantiations
// (callRPC[R](...)) down to the generic function object.
func (in *interp) calleeObj(call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return in.info.Uses[f]
	case *ast.SelectorExpr:
		return in.info.Uses[f.Sel]
	}
	return nil
}

// evalRecv evaluates a method call's receiver expression for effects.
func (in *interp) evalRecv(call *ast.CallExpr) taintVal {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := in.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return in.evalExpr(sel.X)
		}
	}
	// Method value called through a variable: the variable's taint stands
	// in for the captured receiver.
	return in.evalExpr(call.Fun)
}

// applySummary maps a callee's summary through this call site's operands,
// merging the per-result taints into out.
func (in *interp) applySummary(call *ast.CallExpr, target *pfFunc, out []taintVal) {
	ops := in.operandTaints(call, target)
	hop := PathHop{Func: in.fn.name, Pos: in.pos(call.Pos())}
	for r := range out {
		if r >= len(target.sum.results) {
			break
		}
		st := target.sum.results[r]
		if st.isZero() {
			continue
		}
		var t taintVal
		for i := range target.inputObjs {
			if i < 64 && st.inputs&(1<<uint(i)) != 0 && i < len(ops) {
				t, _ = t.union(ops[i])
			}
		}
		for _, s := range st.srcs {
			ext := s.extend(hop)
			if !t.hasSrc(ext) {
				t.srcs = append(t.srcs[:len(t.srcs):len(t.srcs)], ext)
			}
		}
		out[r], _ = out[r].union(t)
	}
}

// operandTaints evaluates the call's receiver and arguments into the
// callee's input-bit order.
func (in *interp) operandTaints(call *ast.CallExpr, target *pfFunc) []taintVal {
	ops := make([]taintVal, len(target.inputObjs))
	sig := target.obj.Type().(*types.Signature)
	off := 0
	if sig.Recv() != nil {
		if len(ops) > 0 {
			ops[0] = in.evalRecv(call)
		}
		off = 1
	}
	nparams := sig.Params().Len()
	for k, arg := range call.Args {
		t := in.evalExpr(arg)
		idx := off + k
		if k >= nparams { // extra variadic arguments fold into the last slot
			idx = off + nparams - 1
		}
		if idx >= 0 && idx < len(ops) {
			ops[idx], _ = ops[idx].union(t)
		}
	}
	return ops
}

// evalIfaceCall dispatches an interface method call to the union of its
// module implementations; with none known, it degrades to the conservative
// unknown-call rule.
func (in *interp) evalIfaceCall(call *ast.CallExpr, m *types.Func, nres int) []taintVal {
	impls := in.a.resolveImpls(m)
	if len(impls) == 0 {
		return in.evalUnknownCall(call, nres)
	}
	out := make([]taintVal, nres)
	for _, impl := range impls {
		in.applySummary(call, impl, out)
	}
	// The receiver and arguments are still evaluated once for effects.
	in.evalRecv(call)
	in.evalExprList(call.Args)
	return out
}

// evalBuiltin models the language builtins.
func (in *interp) evalBuiltin(b *types.Builtin, call *ast.CallExpr, nres int) []taintVal {
	switch b.Name() {
	case "append", "min", "max":
		return replicate(in.evalExprList(call.Args), nres)
	case "copy":
		if len(call.Args) == 2 {
			t := in.evalExpr(call.Args[1])
			in.evalExpr(call.Args[0])
			in.mergeRootOf(call.Args[0], t)
		}
		return make([]taintVal, nres)
	default:
		// len, cap, make, new, delete, clear, close, panic, complex, ...
		in.evalExprList(call.Args)
		return make([]taintVal, nres)
	}
}

// evalUnknownCall is the conservative fallback for callees outside the
// module (stdlib, function values): every result carries the union of the
// receiver and argument taints, and writable reference arguments (&x,
// pointers, slices — the PutUint64/rand.Read shape) absorb that union.
func (in *interp) evalUnknownCall(call *ast.CallExpr, nres int) []taintVal {
	u := in.evalRecv(call)
	for _, arg := range call.Args {
		u, _ = u.union(in.evalExpr(arg))
	}
	if !u.isZero() {
		for _, arg := range call.Args {
			if root := writableRefRoot(in.info, arg); root != nil {
				in.mergeState(root, u)
			}
		}
	}
	return replicate(u, nres)
}

// writableRefRoot returns the variable behind a reference-shaped argument
// (&x, x of pointer/slice/map type, x[i:j]) that an unknown callee could
// write through, or nil.
func writableRefRoot(info *types.Info, arg ast.Expr) types.Object {
	e := ast.Unparen(arg)
	// &x and x[i:j] are reference views of x whatever x's own type is
	// (slicing an array yields a writable slice of it).
	viaRef := false
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
		viaRef = true
	}
	if se, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(se.X)
		viaRef = true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	if viaRef {
		return obj
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return obj
	}
	return nil
}

// callResultCount returns how many values a call yields.
func callResultCount(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return 1
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		return tup.Len()
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.Invalid {
		return 0
	}
	return 1
}

func replicate(t taintVal, n int) []taintVal {
	out := make([]taintVal, n)
	for i := range out {
		out[i] = t
	}
	return out
}
