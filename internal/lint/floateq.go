package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerFloatEq flags == and != between floating-point (or complex)
// operands in non-test code. Exact float equality is almost always a
// rounding-hazard bug in numeric code; the rare deliberate uses (exact
// sparsity skips in kernels, NaN idioms) must carry a targeted
// //lint:ignore with a reason, which keeps every such decision auditable.
// Comparisons where both operands are compile-time constants are exempt
// (they are evaluated exactly).
var AnalyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floating-point operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := info.TypeOf(be.X), info.TypeOf(be.Y)
			if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
				return true
			}
			if info.Types[be.X].Value != nil && info.Types[be.Y].Value != nil {
				return true // constant-folded: exact by definition
			}
			p.Reportf(be.OpPos, "floating-point %s comparison is rounding-sensitive; compare with an explicit tolerance, an ordered bound, or integer conversion", be.Op)
			return true
		})
	}
}
