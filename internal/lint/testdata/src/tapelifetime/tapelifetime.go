// Fixture for the tapelifetime rule: pooled buffers and tracked tapes
// must be Released in the acquiring function unless they visibly escape.
package tapelifetime

import (
	ag "repro/internal/autograd"
	"repro/internal/coldata"
	"repro/internal/tensor"
)

func leakBuffer() int {
	buf := tensor.NewPooled(4, 4) // want "tensor.NewPooled buffer is acquired here but never Released"
	return buf.Rows()
}

func releasedBuffer() int {
	buf := tensor.NewPooled(4, 4)
	defer buf.Release()
	return buf.Rows()
}

func escapingBuffer() *tensor.Dense {
	buf := tensor.NewPooled(2, 2)
	return buf // ownership transfers to the caller: no finding
}

func leakConstructedTape(v *ag.Value) {
	tape := ag.NewTape() // want "autograd tape is acquired here but never Released"
	tape.Track(v)
}

func leakZeroValueTape(v *ag.Value) {
	var tape ag.Tape // want "autograd tape is acquired here but never Released"
	tape.Track(v)
}

func releasedTape(v *ag.Value) {
	var tape ag.Tape
	tape.Track(v)
	tape.Release()
}

func untrackedTape() ag.Tape {
	var tape ag.Tape // never tracked, and escapes: no finding
	return tape
}

func leakBlockBuf() int {
	bb := coldata.AcquireBlockBuf(512) // want "coldata.AcquireBlockBuf buffer is acquired here but never Released"
	return len(bb.Bytes())
}

func releasedBlockBuf() int {
	bb := coldata.AcquireBlockBuf(512)
	defer bb.Release()
	return len(bb.Bytes())
}

func escapingBlockBuf() *coldata.BlockBuf {
	bb := coldata.AcquireBlockBuf(64)
	return bb // ownership transfers to the caller: no finding
}
