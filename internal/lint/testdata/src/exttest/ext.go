// Package exttest is a loader fixture: its directory also holds an
// external (package exttest_test) test file, which the loader must skip
// rather than trip over the mismatched package name.
package exttest

// Answer exists so the package has a declaration to type-check.
func Answer() int { return 42 }
