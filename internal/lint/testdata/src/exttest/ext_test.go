// This external test package intentionally does not match the package
// name of ext.go. The loader analyzes non-test files only, so it must
// ignore this file entirely instead of failing the package-name check.
package exttest_test

import "testing"

func TestAnswer(t *testing.T) {
	t.Skip("loader fixture; never compiled by gtv-lint")
}
