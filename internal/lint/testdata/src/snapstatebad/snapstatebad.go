// Package snapstatebad holds the //snap:skip form a want comment cannot
// annotate inline: trailing text after the directive would parse as the
// skip reason, so the expectation lives in TestSnapStateSkipNeedsReason.
package snapstatebad

import "repro/internal/snap"

//snap:state
type state struct {
	a int
	//snap:skip
	b int
}

func enc(e *snap.Enc, s *state) { e.I64(int64(s.a)) }
func dec(d *snap.Dec, s *state) { s.a = int(d.I64()) }

var _ = enc
var _ = dec
