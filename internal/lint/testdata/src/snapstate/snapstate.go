// Package snapstate exercises the checkpoint-exhaustiveness rule: every
// field of a //snap:state struct must be wired through both encode and
// decode context, or carry a reasoned //snap:skip.
package snapstate

import "repro/internal/snap"

// good is fully wired: two serialized fields and one reasoned skip.
//
//snap:state
type good struct {
	a int
	b float64
	// cache is rebuilt from a on restore.
	//snap:skip derived from a
	cache []int
}

func (g *good) encode(b *snap.Builder) []byte {
	b.Section(1, func(e *snap.Enc) {
		e.I64(int64(g.a))
		e.F64(g.b)
	})
	return b.Bytes()
}

func (g *good) decode(s *snap.Snapshot) error {
	d, err := s.Need(1, "meta")
	if err != nil {
		return err
	}
	g.a = int(d.I64())
	g.b = d.F64()
	return d.Finish()
}

// bad demonstrates every way a field can fall off the snapshot.
//
//snap:state
type bad struct {
	a         int
	forgotten int     // want "field forgotten of snap:state struct bad is never serialized"
	encOnly   float64 // want "field encOnly of snap:state struct bad is encoded but never decoded"
	decOnly   float64 // want "field decOnly of snap:state struct bad is decoded but never encoded"
}

func encodeBad(e *snap.Enc, v *bad) {
	e.I64(int64(v.a))
	e.F64(v.encOnly)
}

// decodeBad rebuilds the struct through a composite literal: literal keys
// count as decode-context field writes just like selector assignments.
func decodeBad(d *snap.Dec) bad {
	return bad{
		a:       int(d.I64()),
		decOnly: d.F64(),
	}
}

// plain has no //snap:state marker, so nothing here is checked.
type plain struct {
	unserialized int
}

// touch keeps the fixture type-checking without unused-symbol noise.
func touch(g *good, d *snap.Dec) (bad, plain) {
	b := snap.NewBuilder(snap.KindCentralized)
	_ = g.encode(b)
	return decodeBad(d), plain{unserialized: 0}
}

var _ = touch
var _ = encodeBad
