// Fixture for //lint:ignore suppression semantics: a suppression silences
// findings of its rule on its own line and the line below; a suppression
// that silences nothing is itself a finding.
package suppress

func suppressedDocForm(a, b float64) bool {
	//lint:ignore floateq fixture: deliberate exact comparison, doc-comment form
	return a == b
}

func suppressedTrailingForm(a, b float64) bool {
	return a == b //lint:ignore floateq fixture: deliberate exact comparison, trailing form
}

func unsuppressed(a, b float64) bool {
	return a == b // want "floating-point == comparison is rounding-sensitive"
}

func unusedSuppression(a, b int) bool {
	//lint:ignore floateq integer comparison never fires this rule // want "unused //lint:ignore floateq suppression"
	return a == b
}
