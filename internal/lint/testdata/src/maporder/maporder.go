// Fixture for the maporder rule: order-sensitive accumulation inside
// range-over-map loops.
package maporder

import "sort"

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over a map"
	}
	return keys
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badFloatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "\\+= accumulation into total inside range over a map"
	}
	return total
}

func goodIntSum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v // integer addition is exact and order-independent
	}
	return n
}

func badSelfReferential(m map[string]string) string {
	out := ""
	for _, v := range m {
		out = out + v // want "self-referential update of out inside range over a map"
	}
	return out
}

func goodLoopLocal(m map[string][]float64) int {
	rows := 0
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v // accumulator is loop-local: resets every iteration
		}
		if s > 0 {
			rows++
		}
	}
	return rows
}

func goodSliceRange(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v // slice iteration order is deterministic
	}
	return total
}
