// Fixture for the maporder rule: order-sensitive accumulation inside
// range-over-map loops.
package maporder

import (
	"math/rand"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over a map"
	}
	return keys
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badFloatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "\\+= accumulation into total inside range over a map"
	}
	return total
}

func goodIntSum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v // integer addition is exact and order-independent
	}
	return n
}

func badSelfReferential(m map[string]string) string {
	out := ""
	for _, v := range m {
		out = out + v // want "self-referential update of out inside range over a map"
	}
	return out
}

func goodLoopLocal(m map[string][]float64) int {
	rows := 0
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v // accumulator is loop-local: resets every iteration
		}
		if s > 0 {
			rows++
		}
	}
	return rows
}

func badRNGDraw(rng *rand.Rand, m map[int][]int) []int {
	var picks []int
	for _, rows := range m {
		p := rng.Intn(len(rows)) // want "Intn draws from the RNG inside range over a map"
		picks = append(picks, rows[p])
	}
	sort.Ints(picks)
	return picks
}

func badRNGPackageLevel(m map[string]int) float64 {
	var last float64
	for range m {
		last = rand.Float64() // want "Float64 draws from the RNG inside range over a map"
	}
	return last
}

func goodRNGConstruction(m map[string]int64) int {
	n := 0
	for _, seed := range m {
		if rand.New(rand.NewSource(seed)) != nil { // seeding an independent stream is order-safe
			n++
		}
	}
	return n
}

func goodSliceRange(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v // slice iteration order is deterministic
	}
	return total
}
