// Fixture for the errdrop rule: statements that silently drop an error
// result.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

type closer interface{ Close() error }

func badBare() {
	mayFail() // want "mayFail returns an error that is silently dropped"
}

func badDefer(f closer) {
	defer f.Close() // want "f.Close returns an error that is silently dropped"
}

func badGo() {
	go mayFail() // want "mayFail returns an error that is silently dropped"
}

func goodReturned() error {
	return mayFail()
}

func badExplicitDrop() {
	_ = mayFail() // want "mayFail returns an error that is silently dropped"
}

func badVarDrop() {
	var _ = mayFail() // want "mayFail returns an error that is silently dropped"
}

func goodAnnotatedDrop() {
	//lint:ignore errdrop fixture demonstrates an audited deliberate discard
	_ = mayFail()
}

func goodPartialKeep() error {
	// Keeping any result is not a discard; the error is still visible.
	err := mayFail()
	return err
}

func goodFmt() {
	fmt.Println("fmt is exempt")
}

func goodBuilder() string {
	var b strings.Builder
	b.WriteString("in-memory writes are exempt")
	return b.String()
}
