// Package privflow exercises the privflow taint analyzer on a
// self-contained miniature of the GTV client/server boundary: private
// fields marked //privacy:source, a bottom-model //privacy:sanitizer,
// and an RPC surface of //privacy:sink functions the server consumes.
package privflow

// party holds one participant's private state.
type party struct {
	//privacy:source raw column values
	table []float64
	//privacy:source matching-row indices
	idx []int
}

// embed stands in for the bottom-model forward pass: only the learned
// activation leaves it, never the raw input.
//
//privacy:sanitizer bottom-model activation
func embed(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * 0.5
	}
	return out
}

// Service is the RPC surface the server consumes.
type Service interface {
	//privacy:sink raw slice the server stores
	Fetch() []float64
	//privacy:sink activation returned to the server
	Forward() []float64
}

var _ Service = (*party)(nil)

// Fetch is the seeded violation: a sink returning a source directly.
func (p *party) Fetch() []float64 {
	return p.table // want `privacy source "raw column values" returned from privacy sink party\.Fetch \(raw slice the server stores\) without a sanitizer`
}

// Forward is the clean path: the table passes the sanitizer first.
func (p *party) Forward() []float64 {
	return embed(p.table)
}

// message bundles a conditional vector with its matching row indices —
// the shape a client would send the server per training round.
type message struct {
	cv  []float64
	idx []int
}

// pickRows selects the matching rows through a helper chain, so the
// taint reaches the sink only interprocedurally.
func pickRows(p *party) []int {
	return gather(p.idx)
}

// gather copies the indices; copy propagates taint from src to dst.
func gather(idx []int) []int {
	out := make([]int, len(idx))
	copy(out, idx)
	return out
}

// SampleCV is the second seeded violation: the unshuffled row indices
// ride along with the conditional vector in one server-visible message.
//
//privacy:sink conditional vector and row indices sent to the server
func SampleCV(p *party) message {
	return message{cv: embed(p.table), idx: pickRows(p)} // want `privacy source "matching-row indices" returned from privacy sink privflow\.SampleCV .* without a sanitizer`
}

// rawView exposes the table without sanitizing; harmless on its own,
// a leak once a sink forwards it.
func rawView(p *party) []float64 {
	return p.table
}

// FillReply is the third seeded violation: the leak goes out through
// the server's reply pointer rather than a return value.
//
//privacy:sink reply message filled for the server
func FillReply(p *party, reply *[]float64) {
	*reply = rawView(p) // want `privacy source "raw column values" written to the reply of privacy sink privflow\.FillReply \(reply message filled for the server\) without a sanitizer`
}

// Publish models a sanctioned disclosure: the flow is real, so privflow
// reports it, and the fixture audits it with a reasoned suppression.
//
//privacy:sink synthetic columns published to the server
func Publish(p *party) []float64 {
	//lint:ignore privflow fixture demonstrates an audited, sanctioned disclosure
	return p.table
}
