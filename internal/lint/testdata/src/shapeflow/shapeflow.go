// Package shapeflow exercises the shapeflow analyzer: symbolic dim
// contracts, interprocedural summary replay, concat width arithmetic,
// obligations, and suppressions. Lines with a `// want` comment must
// produce a matching finding; all other lines must stay clean.
package shapeflow

import (
	ag "repro/internal/autograd"
	"repro/internal/tensor"
)

// ---- contracts that hold: every op here must prove or bind cleanly ----

// Project computes x*w; the contract ties the inner dims together.
//
//shape: in(B,D1) in(D1,D2) out(B,D2)
func Project(x, w *tensor.Dense) *tensor.Dense {
	return tensor.MatMul(x, w)
}

// Fuse concatenates two batches column-wise; the output width is the
// symbolic sum of the input widths.
//
//shape: in(B,D1) in(B,D2) out(B,D1+D2)
func Fuse(a, b *tensor.Dense) *tensor.Dense {
	return tensor.ConcatCols(a, b)
}

// MeanSquare reduces a batch to a scalar.
//
//shape: in(B,D) out(1,1)
func MeanSquare(x *ag.Value) *ag.Value {
	return ag.MeanAll(ag.Square(x))
}

// ---- inner-dim mismatch ----

// BadProj multiplies two row-aligned matrices: MatMul needs x's width to
// equal w's height, but the contract pins w's height to the batch dim.
//
//shape: in(B,D1) in(B,D2) out(B,D2)
func BadProj(x, w *tensor.Dense) *tensor.Dense {
	return tensor.MatMul(x, w) // want "shape mismatch: MatMul inner dims: D1 vs B"
}

// ---- concat width arithmetic ----

// BadFuse concatenates a with itself, so the result width is 2*D1, not
// the declared D1+D2.
//
//shape: in(B,D1) in(B,D2) out(B,D1+D2)
func BadFuse(a, b *tensor.Dense) *tensor.Dense {
	return tensor.ConcatCols(a, a) // want "shape mismatch: return cols vs //shape: out"
}

// ---- symbolic unification across a call (summary replay) ----

// helperMM has no annotation: the analyzer summarizes it, exporting the
// MatMul inner-dim equation over its parameter atoms.
func helperMM(a, b *tensor.Dense) *tensor.Dense {
	return tensor.MatMul(a, b)
}

// Chain instantiates helperMM's summary with two batch-aligned matrices;
// the replayed equation forces D1 == B, which the contract forbids.
//
//shape: in(B,D1) in(B,D2) out(B,D2)
func Chain(x, w *tensor.Dense) *tensor.Dense {
	return helperMM(x, w) // want "shape mismatch: MatMul inner dims: D1 vs B"
}

// ---- contract violation seen from the caller ----

// Activate preserves its input shape.
//
//shape: in(B,D) out(B,D)
func Activate(x *tensor.Dense) *tensor.Dense {
	return x.Clone()
}

// useActivate adds a 3x5 matrix onto Activate's 3x4 result; the contract
// makes the width clash a compile-time constant conflict.
func useActivate() *tensor.Dense {
	a := tensor.New(3, 4)
	b := tensor.New(3, 5)
	out := Activate(a)
	return tensor.Add(out, b) // want "shape mismatch: Add cols: 4 vs 5"
}

// ---- return-shape violation ----

// BadIdentity claims to transpose but returns its input unchanged, so
// the returned row dim is B where the contract promises D.
//
//shape: in(B,D) out(D,B)
func BadIdentity(x *ag.Value) *ag.Value {
	return x // want "shape mismatch: return rows vs //shape: out: B vs D"
}

// ---- suppression ----

// SuppressedBad repeats BadProj's mismatch under a reasoned suppression:
// no finding may surface, and the suppression must count as used.
//
//shape: in(B,D1) in(B,D2) out(B,D2)
func SuppressedBad(x, w *tensor.Dense) *tensor.Dense {
	//lint:ignore shapeflow fixture keeps a deliberate mismatch to pin suppression behaviour
	return tensor.MatMul(x, w)
}

// ---- obligations: the package has //shape: directives, so exported ----
// ---- boundaries must be annotated                                  ----

// Orphan is exported and shape-bearing but carries no contract.
func Orphan(m *tensor.Dense) *tensor.Dense { // want "exported shape-bearing function shapeflow.Orphan needs a //shape: annotation"
	return m
}

// Holder exposes a tensor field without declaring its dims.
type Holder struct {
	M *tensor.Dense // want "exported tensor field Holder.M needs a //shape:"
}
