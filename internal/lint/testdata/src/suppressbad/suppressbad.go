// Fixture for malformed suppressions: both forms below must surface as
// rule-"lint" findings so they can never act as blanket disables.
package suppressbad

//lint:ignore floateq
var missingReason = 1

//lint:ignore nosuchrule the rule name does not exist
var unknownRule = 2
