// Fixture for the cancelflow rule: a function holding a deadline carrier
// (context.Context or CallPolicy) must propagate it into every blocking
// operation, and fan-out callbacks must not block directly.
package cancelflow

import (
	"context"
	"net"
	"sync"
	"time"
)

// CallPolicy mirrors the module's deadline carrier; cancelflow matches it
// by type name so fixtures stay self-contained.
type CallPolicy struct {
	Timeout time.Duration
}

func doCtx(ctx context.Context) error { _ = ctx; return nil }
func doPolicy(p CallPolicy) error     { _ = p; return nil }

// Severing the incoming context with a fresh one.
func badBackground(ctx context.Context) {
	_ = doCtx(context.Background()) // want "badBackground passes context.Background to doCtx despite holding a context parameter: the cancellation signal is severed here"
}

func badTODO(ctx context.Context) {
	_ = doCtx(context.TODO()) // want "badTODO passes context.TODO to doCtx despite holding a context parameter"
}

// Forwarding the context it holds: clean.
func goodForward(ctx context.Context) {
	_ = doCtx(ctx)
}

// Severing the module's own deadline carrier.
func badZeroPolicy(p CallPolicy) {
	_ = doPolicy(CallPolicy{}) // want "badZeroPolicy passes a zero CallPolicy to doPolicy despite holding a CallPolicy parameter: the deadline is severed here"
}

func goodPolicyForward(p CallPolicy) {
	_ = doPolicy(p)
}

// Unscoped callers owe nothing: a fresh context is fine at the top.
func unscopedRoot() {
	_ = doCtx(context.Background())
}

// Naked blocking operations under a deadline.
func badSleep(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "time.Sleep in badSleep, which holds a context parameter: it ignores the deadline"
}

func badWait(p CallPolicy) {
	var wg sync.WaitGroup
	wg.Wait() // want "WaitGroup.Wait in badWait, which holds a CallPolicy parameter: it ignores the deadline"
}

func badDial(p CallPolicy) (net.Conn, error) {
	return net.Dial("tcp", "nowhere:0") // want "unbounded net.Dial in badDial, which holds a CallPolicy parameter: use net.DialTimeout bounded by the deadline"
}

// DialTimeout carries its own bound: clean.
func goodDialTimeout(p CallPolicy) (net.Conn, error) {
	return net.DialTimeout("tcp", "nowhere:0", p.Timeout)
}

func badRecv(ctx context.Context, ch chan int) int {
	return <-ch // want "naked channel receive in badRecv, which holds a context parameter: a missing sender blocks past the deadline"
}

func badSend(ctx context.Context, ch chan int) {
	ch <- 1 // want "naked channel send in badSend, which holds a context parameter: a missing receiver blocks past the deadline"
}

// Selecting on the cancellation signal alongside the channel op: clean.
func goodRecvSelect(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Awaiting cancellation itself is deadline-respecting by definition.
func goodDoneWait(ctx context.Context) {
	<-ctx.Done()
}

// A method on a struct carrying a CallPolicy field is in scope too.
type client struct {
	policy CallPolicy
}

func (c *client) badFieldSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep in badFieldSleep, which holds a CallPolicy field"
}

// No deadline promised, no obligation.
func unscoped(ch chan int) int {
	return <-ch
}

// Function literals are separate goroutines/callbacks, audited at their
// own sites — the scoped body check does not descend.
func goodLiteral(ctx context.Context) func() {
	return func() {
		time.Sleep(time.Millisecond)
	}
}

// ---- fan-out callbacks ----

type Client interface{ Step() error }

func fanClients(clients []Client, parallelism int, fn func(int, Client) error) error {
	for i, c := range clients {
		if err := fn(i, c); err != nil {
			return err
		}
	}
	return nil
}

// A callback that blocks directly escapes first-error cancellation.
func badCallback(clients []Client) error {
	return fanClients(clients, 4, func(i int, c Client) error {
		time.Sleep(time.Millisecond) // want "fanClients callback performs time.Sleep directly: first-error cancellation cannot interrupt it"
		return c.Step()
	})
}

func badCallbackRecv(clients []Client, ch chan int) error {
	return fanClients(clients, 4, func(i int, c Client) error {
		<-ch // want "fanClients callback performs channel receive directly"
		return c.Step()
	})
}

// Routing all waiting through the client call: clean.
func goodCallback(clients []Client) error {
	return fanClients(clients, 4, func(i int, c Client) error {
		return c.Step()
	})
}
