// Package shapeflowann exercises shapeflow's annotation validation. The
// findings land on the directive comments themselves, where an inline
// want comment would change how the directive parses, so the expected
// messages are asserted directly by TestShapeFlowAnnotationErrors.
package shapeflowann

import "repro/internal/tensor"

// TooManyIns declares two in clauses for its single tensor parameter.
//
//shape: in(A,B) in(C,D) out(A,B)
func TooManyIns(m *tensor.Dense) *tensor.Dense { return m }

// OutBeforeIn orders the clauses backwards.
//
//shape: out(A,B) in(A,B)
func OutBeforeIn(m *tensor.Dense) *tensor.Dense { return m }

// BadToken uses an operator the dim grammar does not know.
//
//shape: in(A,B-1) out(A,B)
func BadToken(m *tensor.Dense) *tensor.Dense { return m }

// BlankInSum puts the wildcard inside a sum.
//
//shape: in(A,_+B) out(A,B)
func BlankInSum(m *tensor.Dense) *tensor.Dense { return m }

// TooWide gives a clause three dims.
//
//shape: in(A,B,C) out(A,B)
func TooWide(m *tensor.Dense) *tensor.Dense { return m }

// NoDims has nothing to annotate.
//
//shape: in(A,B)
func NoDims(s string) string { return s }

// Duplicate carries two directives.
//
//shape: in(A,B) out(A,B)
//shape: in(C,D) out(C,D)
func Duplicate(m *tensor.Dense) *tensor.Dense { return m }

// FieldForms hosts the field-side misuse cases.
type FieldForms struct {
	//shape: in(R,C) out(R,C)
	Wrong *tensor.Dense
	//shape: (R,C)
	NotTensor int
	//shape: (R,C)
	OK *tensor.Dense
}

// Misplaced hangs a directive on a statement inside a body.
func Misplaced(m *tensor.Dense) *tensor.Dense {
	//shape: in(A,B)
	return m
}
