// Negative fixture: packages under a cmd/ path segment are exempt from
// the globalrand rule (wall-clock use in commands is legitimate).
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	fmt.Println(rng.Int(), rand.Int())
}
