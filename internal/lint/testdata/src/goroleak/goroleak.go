// Fixture for the goroleak rule: every spawned goroutine needs a provable
// exit path, and sends on unbuffered channels need a guaranteed receiver.
package goroleak

import (
	"context"
	"sync"
)

func poll() bool { return false }

func compute() int { return 42 }

// An infinite loop with no cancellation arm: nothing ever stops it.
func badSpin() {
	go func() { // want "goroutine \\(func literal\\) has no provable exit path: infinite for loop without a cancellation select arm"
		for {
			poll()
		}
	}()
}

// A close-signal select arm whose body returns is a provable exit.
func goodDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			poll()
		}
	}()
}

// ctx.Done() is the canonical cancellation arm.
func goodCtx(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// WaitGroup pairing: the spawner observes the exit, even if the loop's
// own termination is too dynamic to prove.
func goodWGDaemon() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if poll() {
				return
			}
		}
	}()
	wg.Wait()
}

// A bounded loop terminates on its own: clean.
func goodBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			poll()
		}
	}()
}

// feed is never closed anywhere in the package, so ranging over it can
// never finish.
var feed = make(chan int)

func badRange() {
	go func() { // want "goroutine \\(func literal\\) has no provable exit path: range over channel feed, which nothing ever closes"
		for range feed {
		}
	}()
}

// jobs is closed below, so the range drains and exits.
func goodClosedRange() {
	jobs := make(chan int, 4)
	go func() {
		for range jobs {
		}
	}()
	close(jobs)
}

// A named daemon is caught the same way as a literal.
func spin() {
	for {
		poll()
	}
}

func badNamed() {
	go spin() // want "goroutine \\(spin\\) has no provable exit path: infinite for loop without a cancellation select arm"
}

// ...including transitively through a clean-looking wrapper.
func runForever() {
	spin()
}

func badVia() {
	go runForever() // want "goroutine \\(runForever\\) has no provable exit path: infinite for loop without a cancellation select arm \\(via spin\\)"
}

// The abandoned-result leak: if the caller stops listening, the send
// blocks forever and the goroutine never exits.
func badSend() chan int {
	ch := make(chan int)
	go func() {
		ch <- compute() // want "send on unbuffered channel ch inside a goroutine: if every receiver abandons it \\(timeout, early return\\) the goroutine leaks"
	}()
	return ch
}

// Buffering by one lets the sender complete unconditionally.
func goodBuffered() chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	return ch
}

// A select with an escape arm also bounds the send.
func goodSelectSend(done chan struct{}) chan int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-done:
		}
	}()
	return ch
}
