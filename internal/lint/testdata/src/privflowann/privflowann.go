// Package privflowann seeds every class of privacy-annotation misuse
// privflow must reject. Findings land on the directive comments
// themselves, where an inline want comment would change the directive's
// description, so TestPrivFlowAnnotationErrors checks them directly.
package privflowann

// leaky uses an unknown directive kind.
//
//privacy:leak this kind does not exist
func leaky() {}

// undescribed omits the mandatory description.
//
//privacy:sink
func undescribed() {}

// box puts a sink directive on a struct field, where only source is
// allowed.
type box struct {
	//privacy:sink fields cannot be sinks
	payload []float64
}

// conflicted carries two directives; the second must be rejected.
//
//privacy:source first annotation wins
//privacy:sink second annotation conflicts
func conflicted() []float64 { return nil }

// misplaced has a directive floating in a function body instead of a
// doc comment.
func misplaced() {
	//privacy:source directives do not belong here
	_ = box{}
}

// konst attaches a directive to a declaration that is neither a
// function nor a struct field.
//
//privacy:sanitizer constants cannot sanitize
const konst = 1
