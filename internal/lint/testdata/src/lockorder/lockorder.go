// Fixture for the lockorder rule: lock-acquisition cycles, self-deadlock,
// and blocking operations performed while a mutex is held.
package lockorder

import (
	"net"
	"sync"
	"time"
)

type alpha struct {
	mu sync.Mutex
}

type beta struct {
	mu sync.Mutex
}

// lockAB and lockBA take the two locks in opposite orders: a cycle.
func lockAB(a *alpha, b *beta) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle alpha.mu -> beta.mu -> alpha.mu: goroutines taking these locks in different orders can deadlock"
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *alpha, b *beta) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// Re-acquiring the same mutex on the same receiver is an immediate hang.
func double(a *alpha) {
	a.mu.Lock()
	a.mu.Lock() // want "double acquires a.mu while already holding it: guaranteed self-deadlock"
	a.mu.Unlock()
	a.mu.Unlock()
}

// Same field on two different instances: distinct locks, no finding.
func twoInstances(x, y *alpha) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

type gamma struct {
	mu sync.Mutex
}

type delta struct {
	mu sync.Mutex
}

// The gamma->delta edge is discovered through the callee: transGD holds
// gamma.mu while calling lockDelta, which acquires delta.mu. The cycle
// is canonicalized to start at its smallest lock name (delta.mu), so the
// report lands on the delta->gamma edge in transDG.
func transGD(g *gamma, d *delta) {
	g.mu.Lock()
	lockDelta(d)
	g.mu.Unlock()
}

func lockDelta(d *delta) {
	d.mu.Lock()
	d.mu.Unlock()
}

func transDG(g *gamma, d *delta) {
	d.mu.Lock()
	g.mu.Lock() // want "lock-order cycle delta.mu -> gamma.mu -> delta.mu: goroutines taking these locks in different orders can deadlock"
	g.mu.Unlock()
	d.mu.Unlock()
}

type conn struct {
	mu sync.Mutex
	ch chan int
}

func (c *conn) badSend() {
	c.mu.Lock()
	c.ch <- 1 // want "channel send \\(c.ch\\) while conn.badSend holds conn.mu: a stalled peer blocks every goroutine contending for the lock"
	c.mu.Unlock()
}

func (c *conn) badSleep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep \\(time.Sleep\\) while conn.badSleep holds conn.mu"
}

func (c *conn) badDial() (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return net.Dial("tcp", "nowhere:0") // want "network I/O \\(net.Dial\\) while conn.badDial holds conn.mu"
}

func (c *conn) badSelect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "select without default \\(select\\) while conn.badSelect holds conn.mu"
	case <-c.ch:
	}
}

// A select with a default never blocks: clean.
func (c *conn) goodSelectDefault() {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-c.ch:
		_ = v
	default:
	}
}

// Blocking after the explicit unlock: the lock is released, no finding.
func (c *conn) goodAfterUnlock() {
	c.mu.Lock()
	c.mu.Unlock()
	c.ch <- 1
}

// A function literal runs on its own goroutine's schedule: locks held at
// its definition site are not held when it runs.
func (c *conn) goodLiteral() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		time.Sleep(time.Millisecond)
	}
}

// RLock/RUnlock participate like Lock/Unlock; a consistent order is clean.
type cache struct {
	mu sync.RWMutex
}

func (s *cache) goodRead(a *alpha) {
	s.mu.RLock()
	defer s.mu.RUnlock()
}
