// Fixture for the globalrand rule: no process-global math/rand functions
// and no time-derived seeds outside cmd/.
package globalrand

import (
	"math/rand"
	"time"
)

func badGlobal() int {
	return rand.Int() // want "math/rand.Int draws from the process-global source"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle draws from the process-global source"
}

func badSeed() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want "seeding rand.NewSource from time.Now"
}

func goodSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func goodDraw(rng *rand.Rand) float64 {
	return rng.Float64() // method on an explicit generator: fine
}
