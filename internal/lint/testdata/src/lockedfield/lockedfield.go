// Fixture for the lockedfield rule: fields annotated "guarded by <mutex>"
// may only be touched in functions that lock that mutex.
package lockedfield

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) goodInc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) goodDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) badRead() int {
	return c.n // want "counter.n is guarded by counter.mu but this function never locks c.mu"
}

type rwBox struct {
	mu sync.RWMutex
	// The value cache; guarded by mu.
	val string
}

func (b *rwBox) goodGet() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.val
}

func (b *rwBox) badSet(s string) {
	b.val = s // want "rwBox.val is guarded by rwBox.mu but this function never locks b.mu"
}

type unguarded struct {
	mu sync.Mutex
	n  int
}

func (u *unguarded) anyAccess() int {
	return u.n // no annotation: no finding
}
