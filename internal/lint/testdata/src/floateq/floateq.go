// Fixture for the floateq rule: exact ==/!= on floating-point operands.
package floateq

func badEq(a, b float64) bool {
	return a == b // want "floating-point == comparison is rounding-sensitive"
}

func badNeqZero(a float64) bool {
	return a != 0 // want "floating-point != comparison is rounding-sensitive"
}

func badFloat32(a float32) bool {
	return a == 1.5 // want "floating-point == comparison is rounding-sensitive"
}

func goodInt(a, b int) bool {
	return a == b
}

func goodTolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

const half = 0.5
const ratio = 1.0 / 2.0

// Both operands are compile-time constants: evaluated exactly, no finding.
var constantsAreExact = half == ratio
