package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Abstract values the shapeflow interpreter tracks per variable.
const (
	vTop = iota
	vMat  // a *tensor.Dense / *autograd.Value with symbolic (rows, cols)
	vInt  // an int holding a dimension
	vList // a []*Dense / []*Value with known element shapes
)

type sfVal struct {
	kind  int
	shape sfShape
	dim   sfDim
	// elems are per-index element shapes (composite literals, Grad);
	// elem is the uniform element shape (SplitCols) when elemOK.
	elems  []sfShape
	elem   sfShape
	elemOK bool
}

var topVal = sfVal{kind: vTop}

func matVal(r, c sfDim) sfVal { return sfVal{kind: vMat, shape: sfShape{rows: r, cols: c}} }
func intVal(d sfDim) sfVal    { return sfVal{kind: vInt, dim: d} }

// asShape reads a value as a matrix shape, degrading to Top.
func asShape(v sfVal) sfShape {
	if v.kind == vMat {
		return v.shape
	}
	return topShape
}

// asDim reads a value as an int dimension, degrading to Top.
func asDim(v sfVal) sfDim {
	if v.kind == vInt {
		return v.dim
	}
	return dimTop
}

// sfNS is one dim namespace (rigid for the annotated body under check,
// free for per-object and per-call contract instantiations).
type sfNS struct {
	m     map[string]sfDim
	rigid bool
}

// outSlot is one result the annotated body must satisfy at returns.
type outSlot struct {
	kind   int
	resIdx int
	dims   []sfDim // dimTop entries ("_") are unchecked
}

// sfInterp is the per-function abstract interpreter.
type sfInterp struct {
	a    *sf
	fn   *sfFunc
	info *types.Info
	tbl  *sfTable

	state map[types.Object]sfVal

	summary bool
	atoms   int
	pend    []sumEq // recorded constraints, table-dim space
	retVals []sfVal // join of return values (summary mode)

	rigidNS *sfNS
	objNS   map[types.Object]*sfNS
	recvObj types.Object
	annHop  PathHop
	outs    []outSlot

	branch int // >0: conditional context, assignments join weakly
	inLit  int // >0: inside a FuncLit, returns are not the function's
}

// analyzeBody walks one function body. In summary mode it returns the
// exported summary; in annotated mode it checks the body against the
// function's own contract and returns nil.
func (a *sf) analyzeBody(f *sfFunc, summaryMode bool) *sfSummary {
	sig := f.obj.Type().(*types.Signature)
	in := &sfInterp{
		a:       a,
		fn:      f,
		info:    f.pkg.Info,
		tbl:     &sfTable{},
		state:   make(map[types.Object]sfVal),
		summary: summaryMode,
		objNS:   make(map[types.Object]*sfNS),
	}
	if f.decl.Recv != nil && len(f.decl.Recv.List) > 0 && len(f.decl.Recv.List[0].Names) > 0 {
		in.recvObj = f.pkg.Info.Defs[f.decl.Recv.List[0].Names[0]]
	}

	var sum *sfSummary
	if summaryMode {
		sum = in.setupAtoms(sig)
	} else if f.ann != nil {
		in.setupContractBody(sig, f.ann)
	}

	in.walkStmt(f.decl.Body)

	if summaryMode {
		in.exportSummary(sig, sum)
	}
	return sum
}

// setupAtoms binds receiver-then-params to fresh atom dims (table indices
// 0..atoms-1, which doubles as the summary's atom index space).
func (in *sfInterp) setupAtoms(sig *types.Signature) *sfSummary {
	sum := &sfSummary{kinds: inputSlots(sig), recvSlot: sig.Recv() != nil}
	vars := make([]types.Object, 0, len(sum.kinds))
	if sig.Recv() != nil {
		if in.recvObj != nil {
			vars = append(vars, in.recvObj)
		} else {
			vars = append(vars, sig.Recv())
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		vars = append(vars, sig.Params().At(i))
	}
	for i, k := range sum.kinds {
		base := -1
		obj := vars[i]
		name := "_"
		origin := PathHop{Func: in.fn.name, Pos: in.a.fset.Position(in.fn.decl.Pos())}
		if obj != nil {
			name = obj.Name()
			origin.Pos = in.a.fset.Position(obj.Pos())
		}
		switch k {
		case slotMat:
			base = len(in.tbl.nodes)
			r := in.tbl.newDim("rows("+name+")", false, origin)
			c := in.tbl.newDim("cols("+name+")", false, origin)
			if obj != nil && obj.Name() != "_" {
				in.state[obj] = matVal(r, c)
			}
		case slotInt:
			base = len(in.tbl.nodes)
			d := in.tbl.newDim(name, false, origin)
			if obj != nil && obj.Name() != "_" {
				in.state[obj] = intVal(d)
			}
		}
		sum.atomOf = append(sum.atomOf, base)
	}
	sum.atoms = len(in.tbl.nodes)
	in.atoms = sum.atoms
	return sum
}

// setupContractBody binds the annotated function's parameters to rigid
// skolems from its own contract and prepares the return obligations.
func (in *sfInterp) setupContractBody(sig *types.Signature, ann *sfAnn) {
	in.rigidNS = &sfNS{m: make(map[string]sfDim), rigid: true}
	if in.recvObj != nil {
		in.objNS[in.recvObj] = in.rigidNS
	}
	in.annHop = PathHop{Func: in.fn.name + " //shape:", Pos: ann.pos}
	look := func(name string) sfDim { return in.nsGet(in.rigidNS, name, in.annHop) }

	pk, pv := shapeSlots(sig.Params(), sig.Variadic())
	for i, clause := range ann.ins {
		if i >= len(pk) {
			break
		}
		v := pv[i]
		if v == nil || v.Name() == "" || v.Name() == "_" {
			continue
		}
		switch pk[i] {
		case slotMat:
			in.state[v] = matVal(in.specDim(clause.dims[0], look), in.specDim(clause.dims[1], look))
		case slotInt:
			in.state[v] = intVal(in.specDim(clause.dims[0], look))
		}
	}

	slot := 0
	for i := 0; i < sig.Results().Len(); i++ {
		k := slotKind(sig.Results().At(i).Type())
		if k == slotNone {
			continue
		}
		if slot >= len(ann.outs) {
			break
		}
		clause := ann.outs[slot]
		o := outSlot{kind: k, resIdx: i}
		for _, spec := range clause.dims {
			if spec.fresh {
				o.dims = append(o.dims, dimTop)
			} else {
				o.dims = append(o.dims, in.specDim(spec, look))
			}
		}
		in.outs = append(in.outs, o)
		slot++
	}
}

// nsGet resolves (or mints) a named dim in one namespace.
func (in *sfInterp) nsGet(ns *sfNS, name string, origin PathHop) sfDim {
	if d, ok := ns.m[name]; ok {
		return d
	}
	d := in.tbl.newDim(name, ns.rigid, origin)
	ns.m[name] = d
	return d
}

// specDim lowers one annotation dim spec into a table dim.
func (in *sfInterp) specDim(spec sfDimSpec, look func(string) sfDim) sfDim {
	if spec.fresh {
		return in.tbl.newDim("", false, in.annHop)
	}
	e := constExpr(spec.c)
	for _, n := range spec.names {
		e = addExpr(e, varExpr(look(n)))
	}
	return in.tbl.exprDim(e, in.annHop)
}

// exportSummary lifts the recorded constraints and joined return shapes
// into atom space. Anything that mentions a non-atom dim stays internal:
// the body was checked directly, callers just see less.
func (in *sfInterp) exportSummary(sig *types.Signature, sum *sfSummary) {
	exportable := func(e linExpr) bool {
		for _, t := range e.terms {
			if int(t.dim) >= sum.atoms {
				return false
			}
		}
		return true
	}
	for _, eq := range in.pend {
		if exportable(eq.a) && exportable(eq.b) {
			sum.eqs = append(sum.eqs, eq)
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		k := slotKind(sig.Results().At(i).Type())
		r := sumResult{kind: k}
		if in.retVals != nil && i < len(in.retVals) {
			v := in.retVals[i]
			if k == slotMat && v.kind == vMat {
				if e, ok := in.tbl.resolveDim(v.shape.rows); ok && exportable(e) {
					r.rows, r.rowsOK = e, true
				}
				if e, ok := in.tbl.resolveDim(v.shape.cols); ok && exportable(e) {
					r.cols, r.colsOK = e, true
				}
			}
			if k == slotInt && v.kind == vInt {
				if e, ok := in.tbl.resolveDim(v.dim); ok && exportable(e) {
					r.rows, r.rowsOK = e, true
				}
			}
		}
		sum.results = append(sum.results, r)
	}
}

// ---- constraints ----

// constrain imposes a == b at an op site. inner is the call chain inside
// a summarized callee (empty for direct ops). Failures become findings;
// in summary mode surviving constraints over atoms are recorded for
// replay at call sites.
func (in *sfInterp) constrain(a, b sfDim, pos token.Pos, op string, inner []PathHop) {
	if a == dimTop || b == dimTop {
		return
	}
	var ra, rb linExpr
	rok := false
	if in.summary {
		ea, oka := in.tbl.resolveDim(a)
		eb, okb := in.tbl.resolveDim(b)
		if oka && okb {
			ra, rb, rok = ea, eb, true
		}
	}
	site := PathHop{Func: in.fn.name, Pos: in.a.fset.Position(pos)}
	res, sa, sb := in.tbl.unifyDims(a, b, site)
	in.a.noteOp(pos, res)
	if rok && (res == uBound || res == uUnknown) {
		path := append(append([]PathHop{}, inner...), site)
		in.pend = append(in.pend, sumEq{a: ra, b: rb, op: op, path: path})
	}
	if res == uFail {
		var hops []PathHop
		if len(inner) > 0 {
			hops = append(hops, inner...)
		} else {
			if h, ok := in.tbl.originOf(a); ok {
				hops = append(hops, h)
			}
			if h, ok := in.tbl.originOf(b); ok && (len(hops) == 0 || hops[0] != h) {
				hops = append(hops, h)
			}
		}
		hops = append(hops, site)
		in.a.reportf(pos, fmt.Sprintf("shape mismatch: %s: %s vs %s", op, sa, sb), hops)
	}
}

// broadcastCheck handles the Add/Sub/Mul/Div rule per dim: b's dim may be
// the constant 1 (row/col vector) or must match a's. A symbolic b dim
// that is not provably equal stays unknown — it could be 1 at runtime.
func (in *sfInterp) broadcastCheck(adim, bdim sfDim, pos token.Pos, op string) {
	if adim == dimTop || bdim == dimTop {
		return
	}
	eb, okb := in.tbl.resolveDim(bdim)
	if okb && eb.isConst() {
		if eb.c == 1 {
			in.a.noteOp(pos, uProved)
			return
		}
		in.constrain(adim, bdim, pos, op, nil)
		return
	}
	ea, oka := in.tbl.resolveDim(adim)
	if oka && okb {
		if d := subExpr(ea, eb); d.isConst() && d.c == 0 {
			in.a.noteOp(pos, uProved)
			return
		}
	}
	in.a.noteOp(pos, uUnknown)
}

// ---- statement walk ----

func (in *sfInterp) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		if st == nil {
			return
		}
		for _, sub := range st.List {
			in.walkStmt(sub)
		}
	case *ast.AssignStmt:
		in.walkAssign(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				vals := in.evalResults(vs.Values, len(vs.Names))
				for i, name := range vs.Names {
					in.assignIdent(name, vals[i], true)
				}
			}
		}
	case *ast.ExprStmt:
		in.evalExpr(st.X)
	case *ast.ReturnStmt:
		in.walkReturn(st)
	case *ast.IfStmt:
		in.walkStmt(st.Init)
		in.evalExpr(st.Cond)
		in.branch++
		in.walkStmt(st.Body)
		in.walkStmt(st.Else)
		in.branch--
	case *ast.ForStmt:
		in.walkStmt(st.Init)
		in.havocAssigned(st.Body, st.Post)
		if st.Cond != nil {
			in.evalExpr(st.Cond)
		}
		in.branch++
		in.walkStmt(st.Body)
		in.walkStmt(st.Post)
		in.branch--
	case *ast.RangeStmt:
		x := in.evalExpr(st.X)
		in.havocAssigned(st.Body)
		if id, ok := st.Value.(*ast.Ident); ok && st.Tok == token.DEFINE {
			ev := topVal
			if x.kind == vList && x.elemOK {
				ev = matVal(x.elem.rows, x.elem.cols)
			}
			in.assignIdent(id, ev, true)
		}
		in.branch++
		in.walkStmt(st.Body)
		in.branch--
	case *ast.SwitchStmt:
		in.walkStmt(st.Init)
		if st.Tag != nil {
			in.evalExpr(st.Tag)
		}
		in.branch++
		in.walkStmt(st.Body)
		in.branch--
	case *ast.TypeSwitchStmt:
		in.walkStmt(st.Init)
		in.branch++
		in.walkStmt(st.Body)
		in.branch--
	case *ast.SelectStmt:
		in.branch++
		in.walkStmt(st.Body)
		in.branch--
	case *ast.CaseClause:
		for _, e := range st.List {
			in.evalExpr(e)
		}
		for _, sub := range st.Body {
			in.walkStmt(sub)
		}
	case *ast.CommClause:
		in.walkStmt(st.Comm)
		for _, sub := range st.Body {
			in.walkStmt(sub)
		}
	case *ast.GoStmt:
		in.evalExpr(st.Call)
	case *ast.DeferStmt:
		in.evalExpr(st.Call)
	case *ast.LabeledStmt:
		in.walkStmt(st.Stmt)
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
			in.assignIdent(id, topVal, false)
			// x++ leaves no usable dim regardless of branch depth.
			if obj := in.identObj(id); obj != nil {
				in.state[obj] = topVal
			}
		}
	case *ast.SendStmt:
		in.evalExpr(st.Chan)
		in.evalExpr(st.Value)
	}
}

func (in *sfInterp) walkAssign(st *ast.AssignStmt) {
	vals := in.evalResults(st.Rhs, len(st.Lhs))
	for i, lhs := range st.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			in.assignIdent(id, vals[i], st.Tok == token.DEFINE)
		}
		// Writes through selectors/indexes are untracked (field shapes
		// come from annotations, not assignments).
	}
}

func (in *sfInterp) walkReturn(st *ast.ReturnStmt) {
	sig := in.fn.obj.Type().(*types.Signature)
	n := sig.Results().Len()
	vals := in.evalResults(st.Results, n)
	if in.inLit > 0 {
		return
	}
	if !in.summary && in.fn.ann != nil && len(st.Results) > 0 {
		for _, o := range in.outs {
			v := vals[o.resIdx]
			pos := st.Pos()
			if o.resIdx < len(st.Results) {
				pos = st.Results[o.resIdx].Pos()
			}
			switch o.kind {
			case slotMat:
				sh := asShape(v)
				if o.dims[0] != dimTop {
					in.constrain(sh.rows, o.dims[0], pos, "return rows vs //shape: out", nil)
				}
				if o.dims[1] != dimTop {
					in.constrain(sh.cols, o.dims[1], pos, "return cols vs //shape: out", nil)
				}
			case slotInt:
				if o.dims[0] != dimTop {
					in.constrain(asDim(v), o.dims[0], pos, "return value vs //shape: out", nil)
				}
			}
		}
	}
	if in.summary {
		if len(st.Results) == 0 && n > 0 {
			// Naked return: named results we did not track — degrade.
			vals = make([]sfVal, n)
		}
		if in.retVals == nil {
			in.retVals = vals
		} else {
			for i := range in.retVals {
				in.retVals[i] = in.joinVal(in.retVals[i], vals[i])
			}
		}
	}
}

// havocAssigned degrades every variable assigned anywhere inside the
// given subtrees to Top before a loop body is walked once — the
// loop-carried join without a fixpoint.
func (in *sfInterp) havocAssigned(nodes ...ast.Node) {
	for _, node := range nodes {
		if node == nil {
			continue
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := in.identObj(id); obj != nil {
							in.state[obj] = topVal
						}
					}
				}
			case *ast.IncDecStmt:
				if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
					if obj := in.identObj(id); obj != nil {
						in.state[obj] = topVal
					}
				}
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{st.Key, st.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := in.identObj(id); obj != nil {
							in.state[obj] = topVal
						}
					}
				}
			}
			return true
		})
	}
}

func (in *sfInterp) identObj(id *ast.Ident) types.Object {
	if id == nil || id.Name == "_" {
		return nil
	}
	if obj := in.info.Defs[id]; obj != nil {
		return obj
	}
	return in.info.Uses[id]
}

func (in *sfInterp) assignIdent(id *ast.Ident, v sfVal, define bool) {
	obj := in.identObj(id)
	if obj == nil {
		return
	}
	if !define && in.branch > 0 {
		if old, ok := in.state[obj]; ok {
			in.state[obj] = in.joinVal(old, v)
		}
		// Absent means Top already; a conditional assignment keeps it Top.
		return
	}
	in.state[obj] = v
}

func (in *sfInterp) joinVal(a, b sfVal) sfVal {
	if a.kind != b.kind {
		return topVal
	}
	switch a.kind {
	case vMat:
		return sfVal{kind: vMat, shape: in.tbl.joinShape(a.shape, b.shape)}
	case vInt:
		return intVal(in.tbl.joinDim(a.dim, b.dim))
	case vList:
		if a.elemOK && b.elemOK {
			return sfVal{kind: vList, elem: in.tbl.joinShape(a.elem, b.elem), elemOK: true}
		}
	}
	return topVal
}

// ---- expression evaluation ----

// evalResults evaluates a RHS/return list against n targets, expanding a
// single multi-value call.
func (in *sfInterp) evalResults(exprs []ast.Expr, n int) []sfVal {
	vals := make([]sfVal, n)
	for i := range vals {
		vals[i] = topVal
	}
	if len(exprs) == 1 && n > 1 {
		if call, ok := ast.Unparen(exprs[0]).(*ast.CallExpr); ok {
			vs := in.evalCall(call)
			copy(vals, vs)
			return vals
		}
		in.evalExpr(exprs[0])
		return vals
	}
	for i, e := range exprs {
		v := in.evalExpr(e)
		if i < n {
			vals[i] = v
		}
	}
	return vals
}

func (in *sfInterp) evalExpr(e ast.Expr) sfVal {
	if e == nil {
		return topVal
	}
	e = ast.Unparen(e)

	// Compile-time constants are exact dims (literals, consts, len of
	// constant arrays).
	if tv, ok := in.info.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); exact {
				return intVal(in.tbl.constDim(int(v), in.selfHop(e.Pos())))
			}
		}
		return topVal
	}

	switch ex := e.(type) {
	case *ast.Ident:
		if obj := in.identObj(ex); obj != nil {
			if v, ok := in.state[obj]; ok {
				return v
			}
		}
		return topVal
	case *ast.CallExpr:
		vs := in.evalCall(ex)
		if len(vs) == 1 {
			return vs[0]
		}
		return topVal
	case *ast.SelectorExpr:
		return in.evalSelector(ex)
	case *ast.IndexExpr:
		base := in.evalExpr(ex.X)
		idx := in.evalExpr(ex.Index)
		if base.kind == vList {
			if c, ok := in.tbl.constVal(asDim(idx)); ok && base.elems != nil && c >= 0 && c < len(base.elems) {
				return sfVal{kind: vMat, shape: base.elems[c]}
			}
			if base.elemOK {
				return sfVal{kind: vMat, shape: base.elem}
			}
		}
		return topVal
	case *ast.BinaryExpr:
		return in.evalBinary(ex)
	case *ast.UnaryExpr:
		if ex.Op == token.SUB {
			if d := asDim(in.evalExpr(ex.X)); d != dimTop {
				if ee, ok := in.tbl.resolveDim(d); ok {
					return intVal(in.tbl.exprDim(scaleLin(ee, -1), in.selfHop(ex.Pos())))
				}
			}
			return topVal
		}
		in.evalExpr(ex.X)
		return topVal
	case *ast.CompositeLit:
		return in.evalComposite(ex)
	case *ast.FuncLit:
		in.havocAssigned(ex.Body)
		in.branch++
		in.inLit++
		in.walkStmt(ex.Body)
		in.inLit--
		in.branch--
		return topVal
	case *ast.TypeAssertExpr:
		in.evalExpr(ex.X)
		return topVal
	case *ast.StarExpr:
		in.evalExpr(ex.X)
		return topVal
	case *ast.SliceExpr:
		in.evalExpr(ex.X)
		return topVal
	}
	return topVal
}

func (in *sfInterp) selfHop(pos token.Pos) PathHop {
	return PathHop{Func: in.fn.name, Pos: in.a.fset.Position(pos)}
}

// evalSelector resolves annotated struct-field reads through the owning
// object's dim namespace; everything else is Top.
func (in *sfInterp) evalSelector(ex *ast.SelectorExpr) sfVal {
	sel, ok := in.info.Selections[ex]
	if !ok || sel.Kind() != types.FieldVal {
		// Qualified package identifiers and method values: Top.
		return topVal
	}
	fa := in.a.fieldAnns[sel.Obj()]
	if fa == nil {
		return topVal
	}
	root := in.rootObject(ex.X)
	if root == nil {
		return topVal
	}
	ns := in.objNS[root]
	if ns == nil {
		ns = &sfNS{m: make(map[string]sfDim)}
		in.objNS[root] = ns
	}
	origin := PathHop{Func: funcDisplayName2(sel.Obj()) + " //shape:", Pos: fa.pos}
	look := func(name string) sfDim { return in.nsGet(ns, name, origin) }
	saved := in.annHop
	in.annHop = origin
	v := matVal(in.specDim(fa.dims[0], look), in.specDim(fa.dims[1], look))
	in.annHop = saved
	return v
}

// funcDisplayName2 renders "Type.Field" for a field object.
func funcDisplayName2(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// rootObject unwraps a receiver/base expression to its variable, the key
// for the per-object dim namespace.
func (in *sfInterp) rootObject(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return in.identObj(x)
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

func (in *sfInterp) evalBinary(ex *ast.BinaryExpr) sfVal {
	a := in.evalExpr(ex.X)
	b := in.evalExpr(ex.Y)
	da, db := asDim(a), asDim(b)
	if da == dimTop || db == dimTop {
		return topVal
	}
	ea, oka := in.tbl.resolveDim(da)
	eb, okb := in.tbl.resolveDim(db)
	if !oka || !okb {
		return topVal
	}
	hop := in.selfHop(ex.Pos())
	switch ex.Op {
	case token.ADD:
		return intVal(in.tbl.exprDim(addExpr(ea, eb), hop))
	case token.SUB:
		return intVal(in.tbl.exprDim(subExpr(ea, eb), hop))
	case token.MUL:
		if ea.isConst() {
			return intVal(in.tbl.exprDim(scaleLin(eb, ea.c), hop))
		}
		if eb.isConst() {
			return intVal(in.tbl.exprDim(scaleLin(ea, eb.c), hop))
		}
	}
	return topVal
}

// evalComposite tracks []*Dense{...} / []*Value{...} literals so spread
// arguments and indexing keep element shapes.
func (in *sfInterp) evalComposite(ex *ast.CompositeLit) sfVal {
	tv, ok := in.info.Types[ex]
	if !ok {
		return topVal
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok || !isMatrixType(slice.Elem()) {
		for _, el := range ex.Elts {
			in.evalExpr(el)
		}
		return topVal
	}
	v := sfVal{kind: vList}
	for _, el := range ex.Elts {
		if _, kv := el.(*ast.KeyValueExpr); kv {
			return topVal
		}
		v.elems = append(v.elems, asShape(in.evalExpr(el)))
	}
	return v
}

// ---- calls ----

func (in *sfInterp) evalCall(call *ast.CallExpr) []sfVal {
	fun := ast.Unparen(call.Fun)
	if tv, ok := in.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion.
		for _, arg := range call.Args {
			in.evalExpr(arg)
		}
		return []sfVal{topVal}
	}
	obj := calleeObject(in.info, call)
	fn, _ := obj.(*types.Func)

	var recv sfVal = topVal
	hasRecv := false
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if s, ok := in.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					recv = in.evalExpr(sel.X)
					hasRecv = true
				}
			}
		}
	}
	args := make([]sfVal, len(call.Args))
	for i, arg := range call.Args {
		args[i] = in.evalExpr(arg)
	}

	if fn == nil {
		return in.topResults(call)
	}
	if vs, ok := in.modelCall(call, fn, recv, hasRecv, args); ok {
		return vs
	}
	if mf := in.a.funcs[fn]; mf != nil {
		if mf.ann != nil {
			return in.applyContract(fn, mf.ann, call, args)
		}
		return in.applySummary(in.a.summaryOf(mf), call, recv, hasRecv, args)
	}
	if isInterfaceMethod(fn) {
		if ann := in.a.anns[fn]; ann != nil {
			return in.applyContract(fn, ann, call, args)
		}
	}
	return in.topResults(call)
}

// topResults sizes an all-Top result list from the call's type.
func (in *sfInterp) topResults(call *ast.CallExpr) []sfVal {
	tv, ok := in.info.Types[call]
	if !ok {
		return []sfVal{topVal}
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]sfVal, tuple.Len())
		for i := range out {
			out[i] = topVal
		}
		return out
	}
	return []sfVal{topVal}
}

// applyContract instantiates an annotated callee's contract at one call
// site: in clauses unify against the arguments, out clauses shape the
// results. Names used by the owner type's field annotations resolve in
// the receiver object's persistent namespace; the rest are per-call.
func (in *sfInterp) applyContract(fn *types.Func, ann *sfAnn, call *ast.CallExpr, args []sfVal) []sfVal {
	sig := fn.Type().(*types.Signature)
	var fieldNames map[string]bool
	if tn := recvBaseTypeName(fn); tn != nil {
		fieldNames = in.a.fieldNames[tn]
	}
	var objNS *sfNS
	if len(fieldNames) > 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if root := in.rootObject(sel.X); root != nil {
				objNS = in.objNS[root]
				if objNS == nil {
					objNS = &sfNS{m: make(map[string]sfDim)}
					in.objNS[root] = objNS
				}
			}
		}
	}
	callNS := &sfNS{m: make(map[string]sfDim)}
	origin := PathHop{Func: funcDisplayName(fn) + " //shape:", Pos: ann.pos}
	look := func(name string) sfDim {
		if fieldNames[name] && objNS != nil {
			return in.nsGet(objNS, name, origin)
		}
		return in.nsGet(callNS, name, origin)
	}
	saved := in.annHop
	in.annHop = origin
	defer func() { in.annHop = saved }()

	// Unify arguments against in clauses.
	pk, pv := shapeSlots(sig.Params(), sig.Variadic())
	for i, clause := range ann.ins {
		if i >= len(pk) {
			break
		}
		argIdx := paramIndex(sig, pv[i])
		if argIdx < 0 || argIdx >= len(args) || (call.Ellipsis.IsValid() && argIdx >= len(call.Args)-1) {
			continue
		}
		got := args[argIdx]
		pos := call.Args[argIdx].Pos()
		switch pk[i] {
		case slotMat:
			sh := asShape(got)
			in.constrain(sh.rows, in.specDim(clause.dims[0], look), pos, fmt.Sprintf("%s arg #%d rows vs //shape: in", fn.Name(), argIdx+1), nil)
			in.constrain(sh.cols, in.specDim(clause.dims[1], look), pos, fmt.Sprintf("%s arg #%d cols vs //shape: in", fn.Name(), argIdx+1), nil)
		case slotInt:
			in.constrain(asDim(got), in.specDim(clause.dims[0], look), pos, fmt.Sprintf("%s arg #%d vs //shape: in", fn.Name(), argIdx+1), nil)
		}
	}

	// Build results from out clauses.
	out := make([]sfVal, sig.Results().Len())
	slot := 0
	for i := 0; i < sig.Results().Len(); i++ {
		out[i] = topVal
		k := slotKind(sig.Results().At(i).Type())
		if k == slotNone || slot >= len(ann.outs) {
			continue
		}
		clause := ann.outs[slot]
		slot++
		switch k {
		case slotMat:
			out[i] = matVal(in.specDim(clause.dims[0], look), in.specDim(clause.dims[1], look))
		case slotInt:
			out[i] = intVal(in.specDim(clause.dims[0], look))
		}
	}
	return out
}

// paramIndex locates a parameter var's index in the signature.
func paramIndex(sig *types.Signature, v *types.Var) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}

// applySummary replays an unannotated callee's exported constraints at
// the call site with the argument dims substituted for its atoms, and
// shapes the results from its summary.
func (in *sfInterp) applySummary(sum *sfSummary, call *ast.CallExpr, recv sfVal, hasRecv bool, args []sfVal) []sfVal {
	if sum == nil {
		return in.topResults(call)
	}
	callHop := in.selfHop(call.Pos())

	// Operand values in slot order (receiver first, then params).
	atomDims := make([]sfDim, sum.atoms)
	for i := range atomDims {
		atomDims[i] = dimTop
	}
	argAt := func(slotIdx int) sfVal {
		j := slotIdx
		if hasRecvSlot(sum) {
			if slotIdx == 0 {
				if hasRecv {
					return recv
				}
				return topVal
			}
			j = slotIdx - 1
		}
		if j >= 0 && j < len(args) && !(call.Ellipsis.IsValid() && j >= len(call.Args)-1) {
			return args[j]
		}
		return topVal
	}
	for i, base := range sum.atomOf {
		if base < 0 {
			continue
		}
		v := argAt(i)
		switch sum.kinds[i] {
		case slotMat:
			sh := asShape(v)
			atomDims[base] = in.freshIfTop(sh.rows, callHop)
			atomDims[base+1] = in.freshIfTop(sh.cols, callHop)
		case slotInt:
			atomDims[base] = in.freshIfTop(asDim(v), callHop)
		}
	}
	subst := func(e linExpr) sfDim {
		out := constExpr(e.c)
		for _, t := range e.terms {
			d := atomDims[t.dim]
			if d == dimTop {
				return dimTop
			}
			out = addExpr(out, scaleLin(varExpr(d), t.coeff))
		}
		return in.tbl.exprDim(out, callHop)
	}
	for _, eq := range sum.eqs {
		in.constrain(subst(eq.a), subst(eq.b), call.Pos(), eq.op, eq.path)
	}
	out := make([]sfVal, len(sum.results))
	for i, r := range sum.results {
		out[i] = topVal
		switch r.kind {
		case slotMat:
			rows, cols := dimTop, dimTop
			if r.rowsOK {
				rows = subst(r.rows)
			}
			if r.colsOK {
				cols = subst(r.cols)
			}
			out[i] = matVal(rows, cols)
		case slotInt:
			if r.rowsOK {
				out[i] = intVal(subst(r.rows))
			}
		}
	}
	return out
}

// hasRecvSlot reports whether a summary's first input slot is a receiver.
func hasRecvSlot(sum *sfSummary) bool { return sum.recvSlot }

// freshIfTop turns an unknown operand dim into a fresh free variable so
// the callee's internal equalities can still relate it to other operands.
func (in *sfInterp) freshIfTop(d sfDim, origin PathHop) sfDim {
	if d != dimTop {
		return d
	}
	return in.tbl.newDim("", false, origin)
}
