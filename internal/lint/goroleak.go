package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerGoroLeak requires every `go` statement in the module to have a
// provable exit path, so the goroutine population stays bounded as the
// federation widens. A spawned body (a function literal, or the declared
// body of a statically resolved callee) is accounted for when one of:
//
//   - it contains no daemon loop (a `for` with no condition whose body
//     has no cancellation arm, or a `range` over a channel nothing ever
//     closes) — straight-line goroutines and bounded loops terminate;
//   - every daemon loop carries a cancellation arm: a select case
//     receiving from ctx.Done() or a close-signal channel
//     (chan struct{}) whose body returns or breaks;
//   - it is WaitGroup-paired: the body calls wg.Done() and the spawning
//     function calls wg.Add/wg.Wait, so the spawner observes the exit.
//
// Deliberate process-lifetime daemons (a worker pool, an accept loop, a
// connection demux) carry a reasoned //lint:ignore goroleak at the spawn
// site — making every unbounded goroutine an audited decision.
//
// Separately, a send on a provably unbuffered channel inside a spawned
// body, outside any select, is flagged when no receive can be shown: if
// every reader abandons the channel (a timed-out caller, an early
// return), the sender blocks forever — the classic abandoned-result
// leak. Buffering the channel by one (as attemptOnce does) removes it.
// The check only fires when the channel's make() is visible with a
// constant capacity, so dynamic channels never false-positive.
var AnalyzerGoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "every spawned goroutine needs a provable exit path; unbuffered sends need a guaranteed receiver",
	RunModule: runGoroLeak,
}

// goroLeakState memoizes daemon-loop classification per declared function.
type goroLeakState struct {
	pass  *ModulePass
	decls declIndex
	// daemon memoizes whether a function's body (or a statically resolved
	// callee's, transitively) contains an unguarded daemon loop. The
	// token.Pos names the loop for the report.
	daemon   map[*types.Func]*daemonLoop
	visiting map[*types.Func]bool
}

// daemonLoop describes the unguarded loop that makes a function a daemon.
type daemonLoop struct {
	what string // "infinite for loop" or "range over never-closed channel x"
	via  string // non-empty when inherited from a callee
}

func runGoroLeak(p *ModulePass) {
	st := &goroLeakState{
		pass:     p,
		decls:    buildDeclIndex(p.Pkgs),
		daemon:   make(map[*types.Func]*daemonLoop),
		visiting: make(map[*types.Func]bool),
	}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			walkStack(file, func(stack []ast.Node) bool {
				gs, ok := stack[len(stack)-1].(*ast.GoStmt)
				if !ok {
					return true
				}
				st.checkGoStmt(pkg, stack, gs)
				return true
			})
		}
	}
}

// checkGoStmt applies the exit-path and unbuffered-send disciplines to
// one go statement.
func (st *goroLeakState) checkGoStmt(pkg *Package, stack []ast.Node, gs *ast.GoStmt) {
	info := pkg.Info
	spawner := outermostFuncBody(stack)

	var body *ast.BlockStmt
	var bodyInfo *types.Info
	var calleeName string
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		body, bodyInfo = lit.Body, info
	} else if fn, fd, ok := st.decls.staticCallee(info, gs.Call); ok {
		body, bodyInfo, calleeName = fd.decl.Body, fd.pkg.Info, fn.Name()
		// The callee itself may be a clean wrapper whose callees loop; the
		// memoized classification covers that transitively.
		if loop := st.funcDaemon(fn); loop != nil && !st.wgPaired(info, spawner, gs, body, bodyInfo) {
			st.reportDaemon(gs, calleeName, loop)
			return
		}
	} else {
		// Dynamic spawn (function value, interface method): nothing to
		// prove either way.
		return
	}
	if body == nil {
		return
	}

	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		loop := st.litDaemon(bodyInfo, lit.Body)
		if loop == nil {
			// Wrapping a daemon call in a literal must not evade the rule:
			// chase static callees the same way named spawns do.
			loop = st.calleeDaemon(bodyInfo, lit.Body, nil)
		}
		if loop != nil && !st.wgPaired(info, spawner, gs, body, bodyInfo) {
			st.reportDaemon(gs, "func literal", loop)
			return
		}
	}

	st.checkUnbufferedSends(pkg, bodyInfo, spawner, body, gs)
}

// reportDaemon emits the missing-exit-path finding.
func (st *goroLeakState) reportDaemon(gs *ast.GoStmt, what string, loop *daemonLoop) {
	msg := fmt.Sprintf("goroutine (%s) has no provable exit path: %s", what, loop.what)
	if loop.via != "" {
		msg += " (via " + loop.via + ")"
	}
	msg += "; add a ctx.Done()/close-signal select arm, pair it with a WaitGroup, or suppress as a deliberate daemon"
	st.pass.Report(gs.Pos(), msg, nil)
}

// wgPaired reports the WaitGroup idiom: the spawned body calls
// (*sync.WaitGroup).Done and the spawning function touches a WaitGroup
// (Add or Wait), so the spawner observes the goroutine's exit.
func (st *goroLeakState) wgPaired(spawnInfo *types.Info, spawner *ast.BlockStmt, gs *ast.GoStmt, body *ast.BlockStmt, bodyInfo *types.Info) bool {
	if spawner == nil || !hasWGCall(bodyInfo, body, "Done") {
		return false
	}
	return hasWGCall(spawnInfo, spawner, "Add") || hasWGCall(spawnInfo, spawner, "Wait")
}

// hasWGCall reports whether the block calls the named sync.WaitGroup
// method anywhere.
func hasWGCall(info *types.Info, block *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeObject(info, call).(*types.Func)
		if !ok || fn.Name() != method {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		recv := sig.Recv().Type()
		if p, ok := recv.Underlying().(*types.Pointer); ok {
			recv = p.Elem()
		}
		if n, ok := recv.(*types.Named); ok && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup" {
			found = true
		}
		return !found
	})
	return found
}

// funcDaemon classifies a declared function: non-nil when its body (or a
// statically resolved callee's, transitively) contains an unguarded
// daemon loop. Function literals inside the body are excluded — they run
// on their own goroutines and are checked at their own go statements.
func (st *goroLeakState) funcDaemon(fn *types.Func) *daemonLoop {
	if l, ok := st.daemon[fn]; ok {
		return l
	}
	fd, ok := st.decls[fn]
	if !ok || st.visiting[fn] {
		return nil
	}
	st.visiting[fn] = true
	defer delete(st.visiting, fn)
	loop := st.litDaemon(fd.pkg.Info, fd.decl.Body)
	if loop == nil {
		loop = st.calleeDaemon(fd.pkg.Info, fd.decl.Body, fn)
	}
	st.daemon[fn] = loop
	return loop
}

// calleeDaemon scans a body (excluding nested function literals) for a
// static call to a daemonish function, tagging the result with the call
// chain. self guards direct recursion for declared functions.
func (st *goroLeakState) calleeDaemon(info *types.Info, body *ast.BlockStmt, self *types.Func) *daemonLoop {
	var loop *daemonLoop
	ast.Inspect(body, func(n ast.Node) bool {
		if loop != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee, _, ok := st.decls.staticCallee(info, call); ok && callee != self {
			if l := st.funcDaemon(callee); l != nil {
				via := callee.Name()
				if l.via != "" {
					via = callee.Name() + " -> " + l.via
				}
				loop = &daemonLoop{what: l.what, via: via}
			}
		}
		return loop == nil
	})
	return loop
}

// litDaemon scans one body (excluding nested function literals) for an
// unguarded daemon loop.
func (st *goroLeakState) litDaemon(info *types.Info, body *ast.BlockStmt) *daemonLoop {
	var loop *daemonLoop
	ast.Inspect(body, func(n ast.Node) bool {
		if loop != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !hasCancelArm(info, n.Body) {
				loop = &daemonLoop{what: "infinite for loop without a cancellation select arm"}
				return false
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil && isChanType(t) {
				if obj := chanObject(info, n.X); obj != nil && !st.chanClosedSomewhere(obj) {
					loop = &daemonLoop{what: fmt.Sprintf("range over channel %s, which nothing ever closes", obj.Name())}
					return false
				}
			}
		}
		return true
	})
	return loop
}

// hasCancelArm reports whether the loop body contains a select case
// receiving from a cancellation signal (ctx.Done() or a chan struct{})
// whose body returns or breaks.
func hasCancelArm(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			var ch ast.Expr
			switch comm := cc.Comm.(type) {
			case *ast.ExprStmt:
				if u, ok := isRecvExpr(info, comm.X); ok {
					ch = u.X
				}
			case *ast.AssignStmt:
				if len(comm.Rhs) == 1 {
					if u, ok := isRecvExpr(info, comm.Rhs[0]); ok {
						ch = u.X
					}
				}
			}
			if ch == nil || !isDoneChanExpr(info, ch) {
				continue
			}
			if bodyExits(cc.Body) {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyExits reports whether a clause body contains a return or break.
func bodyExits(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		exits := false
		ast.Inspect(s, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt, *ast.BranchStmt:
				exits = true
				return false
			}
			return !exits
		})
		if exits {
			return true
		}
	}
	return false
}

// chanObject resolves a channel expression to its variable, or nil.
func chanObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// chanClosedSomewhere reports whether any loaded package contains a
// close(x) call resolving to obj. Unresolvable channels (fields,
// parameters) are treated as closable by the caller.
func (st *goroLeakState) chanClosedSomewhere(obj types.Object) bool {
	for _, pkg := range st.pass.Pkgs {
		for _, file := range pkg.Files {
			found := false
			ast.Inspect(file, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "close" || pkg.Info.Uses[id] != types.Universe.Lookup("close") {
					return true
				}
				if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pkg.Info.Uses[arg] == obj {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// checkUnbufferedSends flags sends, outside any select, on channels whose
// make() is visible (in the spawning function or at package level) with
// no capacity or a constant zero capacity.
func (st *goroLeakState) checkUnbufferedSends(pkg *Package, info *types.Info, spawner *ast.BlockStmt, body *ast.BlockStmt, gs *ast.GoStmt) {
	walkStack(body, func(stack []ast.Node) bool {
		send, ok := stack[len(stack)-1].(*ast.SendStmt)
		if !ok {
			return true
		}
		if insideSelect(stack) {
			return true
		}
		obj := chanObject(info, send.Chan)
		if obj == nil {
			return true
		}
		if buffered, known := chanBuffered(pkg, info, spawner, obj); known && !buffered {
			st.pass.Report(send.Pos(), fmt.Sprintf(
				"send on unbuffered channel %s inside a goroutine: if every receiver abandons it (timeout, early return) the goroutine leaks; buffer it by one or select on a done signal", obj.Name()), nil)
		}
		return true
	})
}

// chanBuffered locates obj's make() call in the spawning function or the
// package scope and reports its buffering; known=false when no make is
// visible or the capacity is non-constant.
func chanBuffered(pkg *Package, info *types.Info, spawner *ast.BlockStmt, obj types.Object) (buffered, known bool) {
	var mk *ast.CallExpr
	consider := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if info.Defs[id] != obj && info.Uses[id] != obj {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "make" && info.Uses[fn] == types.Universe.Lookup("make") {
			mk = call
		}
	}
	scan := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if mk != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i := range n.Lhs {
					if i < len(n.Rhs) {
						consider(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i := range n.Names {
					if i < len(n.Values) {
						consider(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	if spawner != nil {
		scan(spawner)
	}
	if mk == nil {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok {
					scan(gd)
				}
			}
		}
	}
	if mk == nil {
		return false, false
	}
	if len(mk.Args) < 2 {
		return false, true // make(chan T): unbuffered
	}
	tv, ok := info.Types[mk.Args[1]]
	if !ok || tv.Value == nil {
		return false, false
	}
	return tv.Value.String() != "0", true
}
