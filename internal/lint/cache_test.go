package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// cacheTestModule lays out a small module with a dependency chain
// (root imports sub) and an independent leaf package.
func cacheTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":    "module example.com/m\n\ngo 1.21\n",
		"a.go":      "package m\n\nimport \"example.com/m/sub\"\n\nvar _ = sub.B\n",
		"sub/b.go":  "package sub\n\nvar B = 1\n",
		"leaf/c.go": "package leaf\n\nvar C = 2\n",
	})
	return root
}

// TestModuleIndexKeyStability pins the cache-key contract: unchanged
// trees rebuild to identical keys; editing a package changes its own
// key, its importers' keys, and the module key, and leaves unrelated
// packages untouched.
func TestModuleIndexKeyStability(t *testing.T) {
	root := cacheTestModule(t)
	ix1, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{".", "sub", "leaf"} {
		if k1, k2 := ix1.PackageKey(rel), ix2.PackageKey(rel); k1 == "" || k1 != k2 {
			t.Errorf("package %q: keys %q vs %q, want equal and non-empty", rel, k1, k2)
		}
	}
	if ix1.ModuleKey() != ix2.ModuleKey() {
		t.Errorf("module keys differ on an unchanged tree")
	}

	// Edit sub: even a comment-only change is a content change.
	path := filepath.Join(root, "sub", "b.go")
	if err := os.WriteFile(path, []byte("package sub\n\n// edited\nvar B = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ix3, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	if ix3.PackageKey("sub") == ix1.PackageKey("sub") {
		t.Error("sub key unchanged after editing sub")
	}
	if ix3.PackageKey(".") == ix1.PackageKey(".") {
		t.Error("root key unchanged although root imports the edited sub")
	}
	if ix3.PackageKey("leaf") != ix1.PackageKey("leaf") {
		t.Error("leaf key changed although leaf does not depend on sub")
	}
	if ix3.ModuleKey() == ix1.ModuleKey() {
		t.Error("module key unchanged after editing a package")
	}
}

// TestCacheSaltIgnoresRuleSelection pins the per-rule keying contract:
// the salt must NOT vary with the selected rule set (entries are keyed
// per rule instead), so a -only subset run shares the full run's cache.
// Rule identity still separates entries, via Key parts.
func TestCacheSaltIgnoresRuleSelection(t *testing.T) {
	root := cacheTestModule(t)
	ix, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	if CacheSalt(ix) != CacheSalt(ix) {
		t.Error("salt is not deterministic")
	}
	c := OpenCache(filepath.Join(root, ".lintcache"), CacheSalt(ix))
	pk := ix.PackageKey("sub")
	if c.Key("pkg", "sub", pk, "errdrop") == c.Key("pkg", "sub", pk, "privflow") {
		t.Error("per-rule keys collide across rules")
	}
}

// TestCacheSaltCoversAnalyzerSources pins the salt's self-invalidation
// contract for the concurrency suite: editing an analyzer source file
// under internal/lint (say lockorder.go) must change the salt — so every
// cached entry, per-package and module, goes stale the moment a rule's
// implementation changes — while editing only a testdata fixture must
// NOT (fixtures feed the analyzer's own tests, not the analysis of the
// target module, and testdata trees sit outside the hashed package set).
func TestCacheSaltCoversAnalyzerSources(t *testing.T) {
	// The three concurrency-rule sources must actually live in
	// internal/lint: that placement is what puts them inside the salted
	// package, and this test's temp-module contract depends on it.
	for _, src := range []string{"lockorder.go", "goroleak.go", "cancelflow.go", "concurrency.go"} {
		if _, err := os.Stat(src); err != nil {
			t.Fatalf("analyzer source %s not in internal/lint: %v", src, err)
		}
	}

	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":                               "module example.com/m\n\ngo 1.21\n",
		"internal/lint/lockorder.go":           "package lint\n\nvar ruleLockOrder = 1\n",
		"internal/lint/testdata/src/lo/fix.go": "package lo\n\nvar Fixture = 1\n",
		"cmd/gtv-lint/main.go":                 "package main\n\nfunc main() {}\n",
		"internal/vfl/client.go":               "package vfl\n\nvar Client = 1\n",
	})
	ix1, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	salt1 := CacheSalt(ix1)

	// An analyzer-source edit (even comment-only) must move the salt.
	path := filepath.Join(root, "internal", "lint", "lockorder.go")
	if err := os.WriteFile(path, []byte("package lint\n\n// tightened cycle check\nvar ruleLockOrder = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ix2, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	if CacheSalt(ix2) == salt1 {
		t.Error("salt unchanged after editing an analyzer source file")
	}

	// A fixture-only edit must leave the salt (and the analyzer package
	// key) alone: fixtures are test inputs, not analysis semantics.
	salt2 := CacheSalt(ix2)
	fixture := filepath.Join(root, "internal", "lint", "testdata", "src", "lo", "fix.go")
	if err := os.WriteFile(fixture, []byte("package lo\n\nvar Fixture = 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ix3, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	if ix3.PackageKey("internal/lint") != ix2.PackageKey("internal/lint") {
		t.Error("internal/lint package key moved on a fixture-only edit")
	}
	if CacheSalt(ix3) != salt2 {
		t.Error("salt moved on a fixture-only edit")
	}
	// The target module's own packages stay cacheable across both edits:
	// analyzer changes invalidate via the salt, not via package keys.
	if ix3.PackageKey("internal/vfl") != ix1.PackageKey("internal/vfl") {
		t.Error("analyzed-package key moved although only analyzer/fixture files changed")
	}
}

// TestCacheRoundTrip covers Get/Put/Prune: a put entry hits with its
// findings (paths included) intact, unknown keys miss, and pruning with
// an empty live set empties the cache.
func TestCacheRoundTrip(t *testing.T) {
	c := OpenCache(filepath.Join(t.TempDir(), ".lintcache"), "salt")
	key := c.Key("pkg", "internal/vfl", "abc123")
	if _, _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty cache")
	}
	findings := []Finding{{
		Pos:  token.Position{Filename: "internal/vfl/client.go", Line: 7, Column: 2},
		Rule: "privflow",
		Msg:  "test finding",
		Path: []PathHop{
			{Func: "vfl.leak", Pos: token.Position{Filename: "internal/vfl/client.go", Line: 5}},
			{Func: "vfl.Handler", Pos: token.Position{Filename: "internal/vfl/rpc.go", Line: 9}},
		},
	}}
	if err := c.Put(key, findings, Stats{"shapeflow.ops_proved": 7}); err != nil {
		t.Fatal(err)
	}
	got, stats, ok := c.Get(key)
	if !ok {
		t.Fatal("miss right after Put")
	}
	// PathHop slices make Finding non-comparable; compare rendered forms.
	if len(got) != 1 || got[0].String() != findings[0].String() || got[0].PathString() != findings[0].PathString() {
		t.Fatalf("round-trip mismatch: got %+v, want %+v", got, findings)
	}
	if stats["shapeflow.ops_proved"] != 7 {
		t.Errorf("stats did not round-trip: %v", stats)
	}
	if c.Key("pkg", "internal/vfl", "abc123") != key {
		t.Error("Key is not deterministic")
	}
	other := OpenCache(c.dir, "othersalt")
	if other.Key("pkg", "internal/vfl", "abc123") == key {
		t.Error("different salts produced the same key")
	}
	c.Prune(map[string]bool{})
	if _, _, ok := c.Get(key); ok {
		t.Error("entry survived a prune that kept nothing")
	}
}
