package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// cacheTestModule lays out a small module with a dependency chain
// (root imports sub) and an independent leaf package.
func cacheTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":    "module example.com/m\n\ngo 1.21\n",
		"a.go":      "package m\n\nimport \"example.com/m/sub\"\n\nvar _ = sub.B\n",
		"sub/b.go":  "package sub\n\nvar B = 1\n",
		"leaf/c.go": "package leaf\n\nvar C = 2\n",
	})
	return root
}

// TestModuleIndexKeyStability pins the cache-key contract: unchanged
// trees rebuild to identical keys; editing a package changes its own
// key, its importers' keys, and the module key, and leaves unrelated
// packages untouched.
func TestModuleIndexKeyStability(t *testing.T) {
	root := cacheTestModule(t)
	ix1, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{".", "sub", "leaf"} {
		if k1, k2 := ix1.PackageKey(rel), ix2.PackageKey(rel); k1 == "" || k1 != k2 {
			t.Errorf("package %q: keys %q vs %q, want equal and non-empty", rel, k1, k2)
		}
	}
	if ix1.ModuleKey() != ix2.ModuleKey() {
		t.Errorf("module keys differ on an unchanged tree")
	}

	// Edit sub: even a comment-only change is a content change.
	path := filepath.Join(root, "sub", "b.go")
	if err := os.WriteFile(path, []byte("package sub\n\n// edited\nvar B = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ix3, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	if ix3.PackageKey("sub") == ix1.PackageKey("sub") {
		t.Error("sub key unchanged after editing sub")
	}
	if ix3.PackageKey(".") == ix1.PackageKey(".") {
		t.Error("root key unchanged although root imports the edited sub")
	}
	if ix3.PackageKey("leaf") != ix1.PackageKey("leaf") {
		t.Error("leaf key changed although leaf does not depend on sub")
	}
	if ix3.ModuleKey() == ix1.ModuleKey() {
		t.Error("module key unchanged after editing a package")
	}
}

// TestCacheSaltCoversRuleSet ensures runs with different rule selections
// cannot share entries.
func TestCacheSaltCoversRuleSet(t *testing.T) {
	root := cacheTestModule(t)
	ix, err := BuildModuleIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	all := CacheSalt(ix, []string{"privflow", "errdrop"})
	if all != CacheSalt(ix, []string{"errdrop", "privflow"}) {
		t.Error("salt depends on rule-name order")
	}
	if all == CacheSalt(ix, []string{"errdrop"}) {
		t.Error("salt ignores the selected rule set")
	}
}

// TestCacheRoundTrip covers Get/Put/Prune: a put entry hits with its
// findings (paths included) intact, unknown keys miss, and pruning with
// an empty live set empties the cache.
func TestCacheRoundTrip(t *testing.T) {
	c := OpenCache(filepath.Join(t.TempDir(), ".lintcache"), "salt")
	key := c.Key("pkg", "internal/vfl", "abc123")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty cache")
	}
	findings := []Finding{{
		Pos:  token.Position{Filename: "internal/vfl/client.go", Line: 7, Column: 2},
		Rule: "privflow",
		Msg:  "test finding",
		Path: []PathHop{
			{Func: "vfl.leak", Pos: token.Position{Filename: "internal/vfl/client.go", Line: 5}},
			{Func: "vfl.Handler", Pos: token.Position{Filename: "internal/vfl/rpc.go", Line: 9}},
		},
	}}
	if err := c.Put(key, findings); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss right after Put")
	}
	// PathHop slices make Finding non-comparable; compare rendered forms.
	if len(got) != 1 || got[0].String() != findings[0].String() || got[0].PathString() != findings[0].PathString() {
		t.Fatalf("round-trip mismatch: got %+v, want %+v", got, findings)
	}
	if c.Key("pkg", "internal/vfl", "abc123") != key {
		t.Error("Key is not deterministic")
	}
	other := OpenCache(c.dir, "othersalt")
	if other.Key("pkg", "internal/vfl", "abc123") == key {
		t.Error("different salts produced the same key")
	}
	c.Prune(map[string]bool{})
	if _, ok := c.Get(key); ok {
		t.Error("entry survived a prune that kept nothing")
	}
}
