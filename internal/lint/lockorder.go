package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerLockOrder builds an interprocedural lock-acquisition graph over
// the module's sync.Mutex/RWMutex usage and enforces the two disciplines
// that keep a wide federation out of deadlock:
//
//  1. Lock order. Acquiring lock B while holding lock A adds the edge
//     A -> B — directly, or transitively through any statically resolved
//     callee that acquires B somewhere in its body. A cycle in that graph
//     is a potential deadlock (two goroutines taking the locks in
//     opposite orders) and is reported once per cycle, with the
//     acquisition sites as the finding's path. Locks identify by their
//     declaring field or variable, so `s.mu` in one function and
//     `c.sess.mu` in another meet at the same graph node; acquiring the
//     *same* field's mutex twice on the same receiver chain is reported
//     as an immediate self-deadlock, while same-field acquisitions on
//     different chains are skipped (two instances, not provably one).
//
//  2. No blocking while locked. A channel send/receive, a select without
//     default, network or bufio I/O, a dial, WaitGroup.Wait, time.Sleep,
//     or a vfl.Client protocol call performed while a mutex is held
//     stalls every other goroutine contending for it — under fan-out,
//     one stuck peer serializes the round. Deliberate cases (a mutex
//     whose entire point is serializing writes to one conn) carry a
//     reasoned //lint:ignore lockorder. One finding is reported per
//     (function, lock) pair, at the first blocking site.
//
// The analysis is flow-insensitive within straight-line regions: a
// lock is considered held from its Lock() call until the matching
// Unlock() in source order, or function end when the unlock is deferred.
// Branch-local unlocks release for everything after the branch too — a
// deliberate under-approximation that avoids false positives at the
// price of missing some held regions.
var AnalyzerLockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "consistent lock-acquisition order; no blocking operations while a mutex is held",
	RunModule: runLockOrder,
}

// lockEdge is one observed "acquired B while holding A" event.
type lockEdge struct {
	from, to lockIdent
	pos      token.Pos
	fn       string // function the acquisition happened in
	pkg      *Package
}

// lockOrderState accumulates the module-wide graph.
type lockOrderState struct {
	pass  *ModulePass
	decls declIndex
	// acquires memoizes, per declared function, the set of locks its body
	// (or any statically resolved callee's body) may acquire.
	acquires map[*types.Func]map[types.Object]lockIdent
	visiting map[*types.Func]bool
	edges    []lockEdge
}

func runLockOrder(p *ModulePass) {
	st := &lockOrderState{
		pass:     p,
		decls:    buildDeclIndex(p.Pkgs),
		acquires: make(map[*types.Func]map[types.Object]lockIdent),
		visiting: make(map[*types.Func]bool),
	}
	// Walk every function body (including function literals, each as its
	// own root: a literal runs on its own goroutine's schedule, so locks
	// held at its definition site are not held when it runs).
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := fd.Name.Name
				if fd.Recv != nil {
					name = recvTypeName(fd) + "." + name
				}
				st.walkFunc(pkg, name, fd.Body)
			}
		}
	}
	st.reportCycles()
}

// recvTypeName renders a method's receiver type name.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return types.ExprString(t)
}

// heldLock is one lock in the current held set.
type heldLock struct {
	id   lockIdent
	base string // receiver-chain expression, e.g. "s" in s.mu
}

// walkFunc traverses one function body in source order, tracking the held
// set and recording order edges and blocking-under-lock findings. Nested
// function literals are queued and walked with an empty held set.
func (st *lockOrderState) walkFunc(pkg *Package, fname string, body *ast.BlockStmt) {
	info := pkg.Info
	var held []heldLock
	var lits []*ast.FuncLit
	// blocked dedupes blocking findings to one per (lock, kindless) pair.
	blocked := make(map[types.Object]bool)

	walkStack(body, func(stack []ast.Node) bool {
		n := stack[len(stack)-1]
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to function end; a
			// deferred anything-else cannot affect the held set either.
			return false
		case *ast.CallExpr:
			if op, recv := classifyLockCall(info, n); op != lockNone {
				id, ok := identifyLock(info, recv)
				if !ok {
					return true
				}
				base := lockBaseExpr(recv)
				switch op {
				case lockAcquire:
					st.recordAcquire(pkg, fname, held, id, base, n.Pos())
					held = append(held, heldLock{id: id, base: base})
				case lockRelease:
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].id.obj == id.obj && held[i].base == base {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return false
			}
			if len(held) == 0 {
				return true
			}
			if kind := classifyBlockingCall(info, n); kind != "" && !insideSelect(stack) {
				st.reportBlocking(pkg, fname, held, blocked, kind, calleeName(info, n), n.Pos())
				return true
			}
			// A call under lock may acquire more locks transitively.
			if fn, _, ok := st.decls.staticCallee(info, n); ok {
				for _, id := range st.funcAcquires(fn) {
					st.recordAcquire(pkg, fname, held, id, "", n.Pos())
				}
			}
			return true
		case *ast.SendStmt:
			if len(held) > 0 && !insideSelect(stack) {
				st.reportBlocking(pkg, fname, held, blocked, blockChanSend, types.ExprString(n.Chan), n.Pos())
			}
		case *ast.UnaryExpr:
			if u, ok := isRecvExpr(info, n); ok && len(held) > 0 && !insideSelect(stack) {
				st.reportBlocking(pkg, fname, held, blocked, blockChanRecv, types.ExprString(u.X), n.Pos())
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(n) {
				st.reportBlocking(pkg, fname, held, blocked, blockSelect, "select", n.Pos())
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil && isChanType(t) && len(held) > 0 {
				st.reportBlocking(pkg, fname, held, blocked, blockRangeCh, types.ExprString(n.X), n.Pos())
			}
		}
		return true
	})

	for _, lit := range lits {
		st.walkFunc(pkg, fname+" (func literal)", lit.Body)
	}
}

// lockBaseExpr renders the receiver chain below the mutex field ("s" for
// s.mu), used to distinguish instances of the same field.
func lockBaseExpr(recv ast.Expr) string {
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return ""
}

// recordAcquire notes that id was acquired while held was in effect,
// creating order edges. A same-object acquisition on the same base is an
// immediate self-deadlock and reported directly; on a different (or
// unknown, for transitive) base it is skipped — two instances of one
// struct type are distinct locks.
func (st *lockOrderState) recordAcquire(pkg *Package, fname string, held []heldLock, id lockIdent, base string, pos token.Pos) {
	for _, h := range held {
		if h.id.obj == id.obj {
			if base != "" && h.base == base {
				st.pass.Report(pos, fmt.Sprintf(
					"%s acquires %s.%s while already holding it: guaranteed self-deadlock",
					fname, base, id.obj.Name()), nil)
			}
			continue
		}
		st.edges = append(st.edges, lockEdge{from: h.id, to: id, pos: pos, fn: fname, pkg: pkg})
	}
}

// reportBlocking reports one blocking-under-lock finding per held lock,
// deduped per function.
func (st *lockOrderState) reportBlocking(pkg *Package, fname string, held []heldLock, blocked map[types.Object]bool, kind blockingKind, what string, pos token.Pos) {
	for _, h := range held {
		if blocked[h.id.obj] {
			continue
		}
		blocked[h.id.obj] = true
		st.pass.Report(pos, fmt.Sprintf(
			"%s (%s) while %s holds %s: a stalled peer blocks every goroutine contending for the lock",
			kind, what, fname, h.id.name), nil)
	}
}

// funcAcquires computes, memoized, the set of locks fn's body or its
// statically resolved callees may acquire. Cycles in the call graph
// resolve to the direct set.
func (st *lockOrderState) funcAcquires(fn *types.Func) map[types.Object]lockIdent {
	if s, ok := st.acquires[fn]; ok {
		return s
	}
	fd, ok := st.decls[fn]
	if !ok || st.visiting[fn] {
		return nil
	}
	st.visiting[fn] = true
	defer delete(st.visiting, fn)
	out := make(map[types.Object]lockIdent)
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, recv := classifyLockCall(fd.pkg.Info, call); op == lockAcquire {
			if id, ok := identifyLock(fd.pkg.Info, recv); ok {
				out[id.obj] = id
			}
			return true
		}
		if callee, _, ok := st.decls.staticCallee(fd.pkg.Info, call); ok && callee != fn {
			for obj, id := range st.funcAcquires(callee) {
				out[obj] = id
			}
		}
		return true
	})
	st.acquires[fn] = out
	return out
}

// lockAdj is one outgoing edge in the lock graph's adjacency lists.
type lockAdj struct {
	to   lockIdent
	edge lockEdge
}

// reportCycles finds cycles in the accumulated edge graph and reports
// each once, canonicalized to start at its smallest lock name.
func (st *lockOrderState) reportCycles() {
	graph := make(map[types.Object][]lockAdj)
	names := make(map[types.Object]string)
	for _, e := range st.edges {
		graph[e.from.obj] = append(graph[e.from.obj], lockAdj{to: e.to, edge: e})
		names[e.from.obj] = e.from.name
		names[e.to.obj] = e.to.name
	}
	// Deterministic order: sort nodes by name, then object position;
	// sort adjacency likewise.
	var nodes []types.Object
	for obj := range graph {
		nodes = append(nodes, obj)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if names[nodes[i]] != names[nodes[j]] {
			return names[nodes[i]] < names[nodes[j]]
		}
		return nodes[i].Pos() < nodes[j].Pos()
	})
	for _, adjs := range graph {
		sort.Slice(adjs, func(i, j int) bool {
			if adjs[i].to.name != adjs[j].to.name {
				return adjs[i].to.name < adjs[j].to.name
			}
			return adjs[i].edge.pos < adjs[j].edge.pos
		})
	}

	seen := make(map[string]bool)
	var dfs func(start types.Object, path []lockAdj, onPath map[types.Object]bool)
	dfs = func(start types.Object, path []lockAdj, onPath map[types.Object]bool) {
		cur := start
		if len(path) > 0 {
			cur = path[len(path)-1].to.obj
		}
		for _, a := range graph[cur] {
			if a.to.obj == start && len(path) > 0 {
				st.reportCycle(append(append([]lockAdj(nil), path...), a), seen)
				continue
			}
			if onPath[a.to.obj] {
				continue
			}
			onPath[a.to.obj] = true
			dfs(start, append(path, a), onPath)
			delete(onPath, a.to.obj)
		}
	}
	for _, start := range nodes {
		dfs(start, nil, map[types.Object]bool{start: true})
	}
}

// reportCycle emits one canonical finding per distinct cycle: the edge
// list starting from the lexicographically smallest lock, with every
// acquisition site as a path hop.
func (st *lockOrderState) reportCycle(cycle []lockAdj, seen map[string]bool) {
	// Canonical key: the cycle's lock names, rotated to start at the
	// smallest. The DFS enumerates each cycle from every node on it, so
	// dedupe by the rotation-invariant key.
	locks := make([]string, len(cycle))
	for i, a := range cycle {
		locks[i] = a.edge.from.name
	}
	minAt := 0
	for i := range locks {
		if locks[i] < locks[minAt] {
			minAt = i
		}
	}
	key := ""
	for i := range locks {
		key += locks[(minAt+i)%len(locks)] + ";"
	}
	if seen[key] {
		return
	}
	seen[key] = true

	rotated := make([]lockAdj, len(cycle))
	for i := range cycle {
		rotated[i] = cycle[(minAt+i)%len(cycle)]
	}
	desc := rotated[0].edge.from.name
	var hops []PathHop
	for _, a := range rotated {
		desc += " -> " + a.to.name
		hops = append(hops, PathHop{
			Func: a.edge.fn,
			Pos:  st.pass.Fset().Position(a.edge.pos),
		})
	}
	st.pass.Report(rotated[0].edge.pos, fmt.Sprintf(
		"lock-order cycle %s: goroutines taking these locks in different orders can deadlock", desc), hops)
}
