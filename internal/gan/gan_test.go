package gan

import (
	"math"
	"math/rand"
	"testing"

	ag "repro/internal/autograd"
	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestActivateOutputSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Layout: scalar(1) + one-hot(3) + scalar(1).
	spans := []encoding.Span{
		{Start: 0, Width: 1, Type: encoding.SpanScalar},
		{Start: 1, Width: 3, Type: encoding.SpanOneHot},
		{Start: 4, Width: 1, Type: encoding.SpanScalar},
	}
	raw := ag.Const(tensor.Randn(rng, 8, 5, 0, 3))
	out := ActivateOutput(raw, spans, rng, false)
	if r, c := out.Shape(); r != 8 || c != 5 {
		t.Fatalf("shape %dx%d", r, c)
	}
	for i := 0; i < 8; i++ {
		// Scalars in [-1, 1] (tanh).
		for _, j := range []int{0, 4} {
			if v := out.Data().At(i, j); v < -1 || v > 1 {
				t.Fatalf("tanh output %v out of range", v)
			}
		}
		// One-hot block: positive, sums to 1 (softmax).
		var sum float64
		for j := 1; j < 4; j++ {
			v := out.Data().At(i, j)
			if v < 0 {
				t.Fatalf("softmax output %v negative", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("one-hot block sums to %v", sum)
		}
	}
}

func TestActivateOutputHardIsOneHot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spans := []encoding.Span{{Start: 0, Width: 4, Type: encoding.SpanOneHot}}
	raw := ag.Const(tensor.Randn(rng, 10, 4, 0, 1))
	out := ActivateOutput(raw, spans, rng, true)
	for i := 0; i < 10; i++ {
		ones, zeros := 0, 0
		for j := 0; j < 4; j++ {
			switch out.Data().At(i, j) {
			case 1:
				ones++
			case 0:
				zeros++
			}
		}
		if ones != 1 || zeros != 3 {
			t.Fatalf("hard sample row %d not one-hot: %v", i, out.Data().RawRow(i))
		}
	}
}

func TestActivateOutputCoverageMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rng := rand.New(rand.NewSource(3))
	ActivateOutput(ag.Const(tensor.New(2, 5)), []encoding.Span{{Start: 0, Width: 2, Type: encoding.SpanScalar}}, rng, false)
}

func TestActivateOutputIsDifferentiable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spans := []encoding.Span{
		{Start: 0, Width: 1, Type: encoding.SpanScalar},
		{Start: 1, Width: 3, Type: encoding.SpanOneHot},
	}
	x := ag.Var(tensor.Randn(rng, 4, 4, 0, 1))
	out := ActivateOutput(x, spans, rng, false)
	g := ag.Grad(ag.SumAll(ag.Square(out)), x)[0]
	if g.Data().Norm() == 0 {
		t.Fatal("no gradient through activations")
	}
}

func TestCriticAndGeneratorLossSigns(t *testing.T) {
	fake := ag.Const(tensor.FromRows([][]float64{{2}, {4}}))  // mean 3
	real := ag.Const(tensor.FromRows([][]float64{{10}, {0}})) // mean 5
	if got := CriticLoss(fake, real).Item(); math.Abs(got-(-2)) > 1e-12 {
		t.Fatalf("critic loss = %v want -2", got)
	}
	if got := GeneratorLoss(fake).Item(); math.Abs(got-(-3)) > 1e-12 {
		t.Fatalf("generator loss = %v want -3", got)
	}
}

func TestGradientPenaltyAtUnitNormIsZero(t *testing.T) {
	// critic(x) = sum of first column => grad = (1, 0, ...) with norm 1
	// everywhere => penalty 0.
	rng := rand.New(rand.NewSource(5))
	critic := func(x *ag.Value) *ag.Value {
		return ag.SliceCols(x, 0, 1)
	}
	real := tensor.Randn(rng, 16, 3, 0, 1)
	fake := tensor.Randn(rng, 16, 3, 0, 1)
	gp := GradientPenalty(rng, real, fake, critic)
	if gp.Item() > 1e-9 {
		t.Fatalf("GP = %v want 0 for unit-gradient critic", gp.Item())
	}
}

func TestGradientPenaltyScalesWithSlope(t *testing.T) {
	// critic(x) = 3 * x_0 => |grad| = 3 => penalty = lambda * (3-1)^2 = 40.
	rng := rand.New(rand.NewSource(6))
	critic := func(x *ag.Value) *ag.Value {
		return ag.Scale(ag.SliceCols(x, 0, 1), 3)
	}
	real := tensor.Randn(rng, 8, 2, 0, 1)
	fake := tensor.Randn(rng, 8, 2, 0, 1)
	gp := GradientPenalty(rng, real, fake, critic)
	if math.Abs(gp.Item()-40) > 1e-6 {
		t.Fatalf("GP = %v want 40", gp.Item())
	}
}

func TestGradientPenaltyTrainsLipschitz(t *testing.T) {
	// Minimizing only the GP should drive a linear critic's weight norm
	// towards 1 — proof that the double-backprop path reaches the weights.
	rng := rand.New(rand.NewSource(7))
	w := ag.Var(tensor.Randn(rng, 3, 1, 0, 5))
	opt := nn.NewAdam(0.05)
	opt.WeightDecay = 0
	real := tensor.Randn(rng, 32, 3, 0, 1)
	fake := tensor.Randn(rng, 32, 3, 0, 1)
	for i := 0; i < 300; i++ {
		gp := GradientPenalty(rng, real, fake, func(x *ag.Value) *ag.Value {
			return ag.MatMul(x, w)
		})
		opt.Step([]*ag.Value{w}, ag.Grad(gp, w))
	}
	if norm := w.Data().Norm(); math.Abs(norm-1) > 0.05 {
		t.Fatalf("weight norm after GP-only training = %v want ~1", norm)
	}
}

func TestConditionLossPrefersCorrectCategory(t *testing.T) {
	catSpans := []encoding.Span{{Start: 0, Width: 3, Type: encoding.SpanOneHot, Categorical: true}}
	// Logits strongly favoring category 2 in both rows.
	good := ag.Const(tensor.FromRows([][]float64{{-5, -5, 5}, {-5, -5, 5}}))
	bad := ag.Const(tensor.FromRows([][]float64{{5, -5, -5}, {5, -5, -5}}))
	choices := []condvec.Choice{{Span: 0, Category: 2}, {Span: 0, Category: 2}}
	lGood := ConditionLoss(good, catSpans, choices).Item()
	lBad := ConditionLoss(bad, catSpans, choices).Item()
	if lGood >= lBad {
		t.Fatalf("loss for matching logits %v should be below mismatch %v", lGood, lBad)
	}
	if lGood > 0.01 {
		t.Fatalf("near-perfect match loss = %v", lGood)
	}
}

func TestConditionLossUnconditionedRowsIgnored(t *testing.T) {
	catSpans := []encoding.Span{{Start: 0, Width: 2, Type: encoding.SpanOneHot, Categorical: true}}
	out := ag.Const(tensor.FromRows([][]float64{{1, 2}}))
	choices := []condvec.Choice{{Span: -1, Category: -1}}
	if got := ConditionLoss(out, catSpans, choices).Item(); got != 0 {
		t.Fatalf("unconditioned loss = %v want 0", got)
	}
}

func TestNewGeneratorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := NewGenerator(rng, 10, 32, 2, 7)
	x := ag.Const(tensor.Randn(rng, 4, 10, 0, 1))
	out := g.Forward(x, true)
	if r, c := out.Shape(); r != 4 || c != 7 {
		t.Fatalf("generator output %dx%d want 4x7", r, c)
	}
	// Zero blocks: a plain linear projection.
	g0 := NewGenerator(rng, 10, 32, 0, 7)
	if r, c := g0.Forward(x, true).Shape(); r != 4 || c != 7 {
		t.Fatalf("blockless generator output %dx%d", r, c)
	}
}

func TestNewDiscriminatorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDiscriminator(rng, 12, 32, 2)
	x := ag.Const(tensor.Randn(rng, 6, 12, 0, 1))
	out := d.Forward(x, false)
	if r, c := out.Shape(); r != 6 || c != 1 {
		t.Fatalf("discriminator output %dx%d want 6x1", r, c)
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := Config{}
	if err := cfg.validate(); err == nil {
		t.Fatal("zero config must fail validation")
	}
	cfg = DefaultConfig()
	if err := cfg.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestSampleNoiseShape(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := SampleNoise(rng, 5, 8)
	if n.Rows() != 5 || n.Cols() != 8 {
		t.Fatalf("noise shape %dx%d", n.Rows(), n.Cols())
	}
}
