// Package gan provides the CTGAN-style building blocks shared by the
// centralized baseline and the GTV vertical-federated trainer: generator
// output activations (tanh for mode offsets, Gumbel-softmax for one-hot
// groups), the WGAN-GP loss terms, the conditioning cross-entropy, and
// constructors for the ResNet-style generator and FN-block discriminator
// described in the paper's §4.1.
package gan

import (
	"math"
	"math/rand"
	"sort"

	ag "repro/internal/autograd"
	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GumbelTau is the Gumbel-softmax temperature CTGAN uses for categorical
// outputs.
const GumbelTau = 0.2

// GradientPenaltyWeight is the WGAN-GP lambda.
const GradientPenaltyWeight = 10.0

// ActivateOutput applies the per-span output activations to a generator's
// raw output: tanh on scalar (mode offset) spans and Gumbel-softmax on
// one-hot spans. rng draws the Gumbel noise; pass hard=false during
// training (soft, differentiable samples) and hard=true at synthesis time
// (the decoded table argmaxes anyway, so hard sampling just sharpens).
//
//shape: in(B,W) out(B,W)
func ActivateOutput(raw *ag.Value, spans []encoding.Span, rng *rand.Rand, hard bool) *ag.Value {
	_, cols := raw.Shape()
	parts := make([]*ag.Value, 0, len(spans))
	covered := 0
	for _, sp := range spans {
		covered += sp.Width
		slice := ag.SliceCols(raw, sp.Start, sp.End())
		switch sp.Type {
		case encoding.SpanScalar:
			parts = append(parts, ag.Tanh(slice))
		case encoding.SpanOneHot:
			parts = append(parts, gumbelSoftmax(slice, rng, hard))
		}
	}
	if covered != cols {
		// Spans must tile the full output; a mismatch is a wiring bug.
		panic("gan: spans do not cover generator output")
	}
	return ag.ConcatCols(parts...)
}

// gumbelSoftmax draws a (soft or hard) Gumbel-softmax sample per row.
func gumbelSoftmax(logits *ag.Value, rng *rand.Rand, hard bool) *ag.Value {
	rows, cols := logits.Shape()
	noise := tensor.New(rows, cols)
	data := noise.Data()
	for i := range data {
		u := rng.Float64()
		for u <= 0 {
			u = rng.Float64()
		}
		data[i] = -math.Log(-math.Log(u))
	}
	soft := ag.SoftmaxRows(ag.Scale(ag.Add(logits, ag.Const(noise)), 1/GumbelTau))
	if !hard {
		return soft
	}
	// Straight-through: output the argmax one-hot, but keep the soft sample
	// in the graph so gradients still flow (hard = soft + (onehot - soft).detach()).
	rowsMax := soft.Data().ArgmaxRows()
	onehot := tensor.New(rows, cols)
	for i, c := range rowsMax {
		onehot.Set(i, c, 1)
	}
	return ag.Add(soft, ag.Const(tensor.Sub(onehot, soft.Data())))
}

// ConditionLoss is the CTGAN conditioning term: the softmax cross-entropy
// between the generated logits of the conditioned categorical span and the
// category demanded by the conditional vector, averaged over the batch.
// Rows whose choice span is negative (unconditioned) contribute zero.
//
// rawOut is the generator's raw output (before activation), catSpans the
// party's categorical spans in encoded coordinates, and choices[i] names
// the (span, category) that row i's CV selected, where Span indexes
// catSpans.
//
//privacy:sanitizer batch-aggregated conditioning cross-entropy
//shape: in(B,W) out(1,1)
func ConditionLoss(rawOut *ag.Value, catSpans []encoding.Span, choices []condvec.Choice) *ag.Value {
	// Group rows by conditioned span so each span costs one graph slice.
	rowsBySpan := make(map[int][]int)
	for row, ch := range choices {
		if ch.Span >= 0 {
			rowsBySpan[ch.Span] = append(rowsBySpan[ch.Span], row)
		}
	}
	if len(rowsBySpan) == 0 {
		return ag.Scalar(0)
	}
	// Iterate spans in sorted order: map iteration order is randomized per
	// run, and float addition is not associative, so accumulating the span
	// terms in map order would make same-seed runs diverge bit-for-bit.
	spanIdxs := make([]int, 0, len(rowsBySpan))
	for spanIdx := range rowsBySpan {
		spanIdxs = append(spanIdxs, spanIdx)
	}
	sort.Ints(spanIdxs)
	total := ag.Scalar(0)
	var counted float64
	for _, spanIdx := range spanIdxs {
		rows := rowsBySpan[spanIdx]
		sp := catSpans[spanIdx]
		logits := ag.SliceCols(ag.GatherRows(rawOut, rows), sp.Start, sp.End())
		probs := ag.SoftmaxRows(logits)
		lp := ag.Log(ag.AddScalar(probs, 1e-12))
		onehot := tensor.New(len(rows), sp.Width)
		for i, row := range rows {
			onehot.Set(i, choices[row].Category, 1)
		}
		total = ag.Add(total, ag.Neg(ag.SumAll(ag.Mul(lp, ag.Const(onehot)))))
		counted += float64(len(rows))
	}
	return ag.Scale(total, 1/counted)
}

// CriticLoss is the Wasserstein critic loss to *minimize*:
// mean(D(fake)) - mean(D(real)). The two score batches may have
// different row counts (PacGAN packing divides them independently).
//
//shape: in(Bf,K) in(Br,K2) out(1,1)
func CriticLoss(fakeScores, realScores *ag.Value) *ag.Value {
	return ag.Sub(ag.MeanAll(fakeScores), ag.MeanAll(realScores))
}

// GeneratorLoss is the Wasserstein generator loss to minimize:
// -mean(D(fake)).
//
//shape: in(B,K) out(1,1)
func GeneratorLoss(fakeScores *ag.Value) *ag.Value {
	return ag.Neg(ag.MeanAll(fakeScores))
}

// GradientPenalty computes the WGAN-GP term for a critic function applied
// to interpolations between real and fake inputs:
//
//	lambda * E[(||grad_x critic(x_hat)||_2 - 1)^2]
//
// critic must build a differentiable graph from its input. The returned
// value is differentiable with respect to the critic's parameters thanks to
// the autograd engine's higher-order gradients.
//
//shape: in(B,C) in(B,C) out(1,1)
func GradientPenalty(rng *rand.Rand, realIn, fakeIn *tensor.Dense, critic func(*ag.Value) *ag.Value) *ag.Value {
	rows, cols := realIn.Shape()
	eps := tensor.New(rows, 1)
	for i := 0; i < rows; i++ {
		eps.Set(i, 0, rng.Float64())
	}
	epsFull := eps.Expand(rows, cols)
	interp := tensor.Add(tensor.Mul(realIn, epsFull), tensor.Mul(fakeIn, tensor.Sub(tensor.Full(rows, cols, 1), epsFull)))

	x := ag.Var(interp)
	scores := critic(x)
	gradIn := ag.Grad(scores, x)[0]
	norms := ag.RowL2Norm(gradIn, 1e-12)
	return ag.Scale(ag.MeanAll(ag.Square(ag.AddScalar(norms, -1))), GradientPenaltyWeight)
}

// NewGenerator builds the CTGAN generator trunk: nBlocks residual blocks
// starting from inDim, followed by a final FC to outDim. blockDim is the
// width each residual block adds (256 in the paper).
func NewGenerator(rng *rand.Rand, inDim, blockDim, nBlocks, outDim int) *nn.Sequential {
	layers := make([]nn.Layer, 0, nBlocks+1)
	width := inDim
	for i := 0; i < nBlocks; i++ {
		rb := nn.NewResidualBlock(rng, width, blockDim)
		layers = append(layers, rb)
		width = rb.OutWidth()
	}
	layers = append(layers, nn.NewLinear(rng, width, outDim))
	return nn.NewSequential(layers...)
}

// NewDiscriminator builds the CTGAN discriminator trunk: nBlocks FN blocks
// (Linear + LeakyReLU(0.2) + Dropout(0.5)) from inDim to blockDim, followed
// by a final FC to a single critic score.
func NewDiscriminator(rng *rand.Rand, inDim, blockDim, nBlocks int) *nn.Sequential {
	layers := make([]nn.Layer, 0, nBlocks+1)
	width := inDim
	for i := 0; i < nBlocks; i++ {
		layers = append(layers, nn.NewDiscBlock(rng, width, blockDim))
		width = blockDim
	}
	layers = append(layers, nn.NewLinear(rng, width, 1))
	return nn.NewSequential(layers...)
}

// SampleNoise draws a batch of standard-normal noise rows.
//
//shape: in(B) in(D) out(B,D)
func SampleNoise(rng *rand.Rand, batch, dim int) *tensor.Dense {
	return tensor.Randn(rng, batch, dim, 0, 1)
}

// packRows implements PacGAN packing: it reshapes a batch of rows into
// batch/pac rows of pac concatenated samples, so the critic judges groups
// rather than individuals. pac=1 is the identity.
func packRows(v *ag.Value, pac int) *ag.Value {
	if pac <= 1 {
		return v
	}
	rows, cols := v.Shape()
	if rows%pac != 0 {
		panic("gan: batch not divisible by pac")
	}
	return ag.Reshape(v, rows/pac, cols*pac)
}
