package gan

import (
	"fmt"

	ag "repro/internal/autograd"
	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/gmm"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Config holds the training hyper-parameters shared by the centralized
// baseline and GTV.
type Config struct {
	// Rounds is the number of training rounds (each = DiscSteps critic
	// updates + one generator update).
	Rounds int
	// DiscSteps is the number of critic updates per round (the paper's
	// local discriminator epochs e, default 5 for WGAN-GP).
	DiscSteps int
	// BatchSize is the minibatch size.
	BatchSize int
	// NoiseDim is the generator noise width (CTGAN uses 128).
	NoiseDim int
	// BlockDim is the residual/FN block width (256 in the paper).
	BlockDim int
	// GenBlocks and DiscBlocks set the trunk depths (2 each in the paper).
	GenBlocks, DiscBlocks int
	// LR is the Adam learning rate for both networks (2e-4 in CTGAN).
	LR float64
	// Pac is the PacGAN packing degree: the critic judges Pac samples at a
	// time, which combats mode collapse (CTGAN uses 10). BatchSize must be
	// divisible by Pac. 0 means 1 (no packing).
	Pac int
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration with the paper's
// architecture (2 residual blocks, 2 FN blocks, width 256).
func DefaultConfig() Config {
	return Config{
		Rounds:     150,
		DiscSteps:  2,
		BatchSize:  128,
		NoiseDim:   64,
		BlockDim:   256,
		GenBlocks:  2,
		DiscBlocks: 2,
		LR:         2e-4,
		Seed:       1,
	}
}

// validate fills defaults and checks ranges.
func (c *Config) validate() error {
	if c.Rounds <= 0 || c.BatchSize <= 0 {
		return fmt.Errorf("gan: rounds %d and batch size %d must be positive", c.Rounds, c.BatchSize)
	}
	if c.DiscSteps <= 0 {
		c.DiscSteps = 1
	}
	if c.NoiseDim <= 0 {
		c.NoiseDim = 64
	}
	if c.BlockDim <= 0 {
		c.BlockDim = 256
	}
	if c.GenBlocks < 0 || c.DiscBlocks < 0 {
		return fmt.Errorf("gan: negative block counts %d/%d", c.GenBlocks, c.DiscBlocks)
	}
	if c.LR <= 0 {
		c.LR = 2e-4
	}
	if c.Pac <= 0 {
		c.Pac = 1
	}
	if c.BatchSize%c.Pac != 0 {
		return fmt.Errorf("gan: batch size %d not divisible by pac %d", c.BatchSize, c.Pac)
	}
	return nil
}

// Centralized is the paper's baseline: a single-party conditional tabular
// GAN with CTGAN/CTAB-GAN feature engineering and WGAN-GP training.
type Centralized struct {
	cfg         Config
	rng         *rng.Rand
	transformer *encoding.Transformer
	sampler     *condvec.Sampler
	// data serves the encoded real rows: an in-memory matrix for
	// NewCentralized, a block-cached gtvcol reader for NewCentralizedStored.
	data  encoding.Backing
	specs []encoding.ColumnSpec

	gen     *nn.Sequential
	disc    *nn.Sequential
	genOpt  *nn.Adam
	discOpt *nn.Adam

	// round counts completed training rounds; checkpoints persist it so a
	// resumed Train picks up exactly where the interrupted run stopped.
	round int
}

// NewCentralized fits the feature encoders on the table and builds the
// GAN, holding the encoded matrix in memory.
func NewCentralized(table *encoding.Table, cfg Config) (*Centralized, error) {
	return NewCentralizedStored(table, cfg, encoding.Storage{})
}

// NewCentralizedStored is NewCentralized with an optional gtvcol data
// plane: when st names a data directory, the encoded matrix lives in
// <dir>/<name>.enc.gtvcol and training batches are gathered through a
// bounded block cache; a matching cached file skips fitting and encoding
// entirely. Encoding draws from the dedicated EncodeSeed stream in every
// path, so in-memory, freshly encoded and cache-hit runs are
// bit-identical. Close releases the backing when training is done.
func NewCentralizedStored(table *encoding.Table, cfg Config, st encoding.Storage) (*Centralized, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tr, data, err := encoding.OpenOrEncode(st, table, cfg.Seed, gmm.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("gan: encoding table: %w", err)
	}
	sampler, err := condvec.NewSampler(table, tr)
	if err != nil {
		//lint:ignore errdrop the sampler error is the one worth reporting
		_ = data.Close()
		return nil, fmt.Errorf("gan: building CV sampler: %w", err)
	}
	// The capturable generator (internal/rng) is what makes checkpoints
	// possible: its state words are serialized and reinstated on resume.
	prng := rng.New(cfg.Seed)
	dataW := tr.Width()
	cvW := sampler.Width()
	c := &Centralized{
		cfg:         cfg,
		rng:         prng,
		transformer: tr,
		sampler:     sampler,
		data:        data,
		specs:       table.Specs,
		gen:         NewGenerator(prng.Rand, cfg.NoiseDim+cvW, cfg.BlockDim, cfg.GenBlocks, dataW),
		disc:        NewDiscriminator(prng.Rand, (dataW+cvW)*cfg.Pac, cfg.BlockDim, cfg.DiscBlocks),
		genOpt:      nn.NewAdam(cfg.LR),
		discOpt:     nn.NewAdam(cfg.LR),
	}
	return c, nil
}

// Close releases the encoded-data backing (file handles and block cache
// for stored trainers; a no-op in memory).
func (c *Centralized) Close() error { return c.data.Close() }

// Transformer exposes the fitted feature encoder (for inspection/tests).
func (c *Centralized) Transformer() *encoding.Transformer { return c.transformer }

// Round returns the number of completed training rounds.
func (c *Centralized) Round() int { return c.round }

// Train runs the full WGAN-GP loop, continuing from the current round
// counter (0 on a fresh trainer, k after restoring a round-k checkpoint).
// The optional progress callback receives (round, criticLoss, genLoss)
// once per round.
func (c *Centralized) Train(progress func(round int, dLoss, gLoss float64)) error {
	for c.round < c.cfg.Rounds {
		round := c.round
		var dLoss float64
		for step := 0; step < c.cfg.DiscSteps; step++ {
			l, err := c.trainDiscStep()
			if err != nil {
				return fmt.Errorf("gan: round %d critic step: %w", round, err)
			}
			dLoss = l
		}
		gLoss, err := c.trainGenStep()
		if err != nil {
			return fmt.Errorf("gan: round %d generator step: %w", round, err)
		}
		c.round++
		if progress != nil {
			progress(round, dLoss, gLoss)
		}
	}
	return nil
}

// generate runs the generator on a fresh batch, returning the activated
// output, the raw output and the CV batch used.
func (c *Centralized) generate(batch int, hard bool) (*ag.Value, *ag.Value, *condvec.Batch, error) {
	cvb, err := c.sampler.Sample(c.rng.Rand, batch)
	if err != nil {
		return nil, nil, nil, err
	}
	noise := SampleNoise(c.rng.Rand, batch, c.cfg.NoiseDim)
	in := ag.Const(tensor.ConcatCols(noise, cvb.CV))
	raw := c.gen.Forward(in, true)
	activated := ActivateOutput(raw, c.transformer.Spans(), c.rng.Rand, hard)
	return activated, raw, cvb, nil
}

// trainDiscStep performs one WGAN-GP critic update.
func (c *Centralized) trainDiscStep() (float64, error) {
	batch := c.cfg.BatchSize
	fake, _, cvb, err := c.generate(batch, false)
	if err != nil {
		return 0, err
	}
	realRows, err := c.data.GatherRows(cvb.Rows)
	if err != nil {
		return 0, err
	}
	cv := cvb.CV

	fakeIn := packRows(ag.ConcatCols(fake.Detach(), ag.Const(cv)), c.cfg.Pac)
	realIn := packRows(ag.ConcatCols(ag.Const(realRows), ag.Const(cv)), c.cfg.Pac)
	fakeScores := c.disc.Forward(fakeIn, true)
	realScores := c.disc.Forward(realIn, true)

	loss := CriticLoss(fakeScores, realScores)
	gp := GradientPenalty(c.rng.Rand, realIn.Data(), fakeIn.Data(), func(x *ag.Value) *ag.Value {
		return c.disc.Forward(x, true)
	})
	total := ag.Add(loss, gp)
	grads := nn.Grads(total, c.disc)
	c.discOpt.Step(c.disc.Params(), grads)
	lossVal := total.Item()

	// The step's graph is dead now: recycle it. fake is a root of its own
	// (the generator forward was cut by Detach); the Detach leaf inside
	// total's graph keeps the shared activation buffer itself alive.
	var tape ag.Tape
	tape.Track(total, fake)
	tape.Track(grads...)
	tape.Release()
	// The gathered real batch is a pooled buffer the backing handed us;
	// the tape shields Const leaves, so it is returned explicitly now that
	// the step's graph is gone.
	realRows.Release()
	return lossVal, nil
}

// trainGenStep performs one generator update (Wasserstein + conditioning).
func (c *Centralized) trainGenStep() (float64, error) {
	batch := c.cfg.BatchSize
	fake, raw, cvb, err := c.generate(batch, false)
	if err != nil {
		return 0, err
	}
	scores := c.disc.Forward(packRows(ag.ConcatCols(fake, ag.Const(cvb.CV)), c.cfg.Pac), true)
	loss := GeneratorLoss(scores)
	cond := ConditionLoss(raw, c.transformer.CategoricalSpans(), cvb.Choices)
	total := ag.Add(loss, cond)
	grads := nn.Grads(total, c.gen)
	c.genOpt.Step(c.gen.Params(), grads)
	lossVal := total.Item()

	var tape ag.Tape
	tape.Track(total)
	tape.Track(grads...)
	tape.Release()
	return lossVal, nil
}

// Synthesize generates n synthetic rows and decodes them to a raw table.
func (c *Centralized) Synthesize(n int) (*encoding.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gan: cannot synthesize %d rows", n)
	}
	out := tensor.New(n, c.transformer.Width())
	done := 0
	for done < n {
		batch := c.cfg.BatchSize
		if n-done < batch {
			batch = n - done
		}
		cvb, err := c.sampler.SampleSynthesis(c.rng.Rand, batch)
		if err != nil {
			return nil, err
		}
		noise := SampleNoise(c.rng.Rand, batch, c.cfg.NoiseDim)
		in := ag.Const(tensor.ConcatCols(noise, cvb.CV))
		raw := c.gen.Forward(in, false)
		act := ActivateOutput(raw, c.transformer.Spans(), c.rng.Rand, true)
		for i := 0; i < batch; i++ {
			copy(out.RawRow(done+i), act.Data().RawRow(i))
		}
		done += batch
	}
	return c.transformer.Inverse(out)
}

// SynthesizeCondition generates n rows all conditioned on column holding
// categoryLabel (CTGAN's "control the class of generation"). The column
// must be categorical.
func (c *Centralized) SynthesizeCondition(n int, column, categoryLabel string) (*encoding.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gan: cannot synthesize %d rows", n)
	}
	spanIdx, category, err := ResolveCondition(c.specs, c.sampler, column, categoryLabel)
	if err != nil {
		return nil, err
	}
	out := tensor.New(n, c.transformer.Width())
	done := 0
	for done < n {
		batch := c.cfg.BatchSize
		if n-done < batch {
			batch = n - done
		}
		cvb, err := c.sampler.SampleFixed(c.rng.Rand, batch, spanIdx, category)
		if err != nil {
			return nil, err
		}
		noise := SampleNoise(c.rng.Rand, batch, c.cfg.NoiseDim)
		in := ag.Const(tensor.ConcatCols(noise, cvb.CV))
		raw := c.gen.Forward(in, false)
		act := ActivateOutput(raw, c.transformer.Spans(), c.rng.Rand, true)
		for i := 0; i < batch; i++ {
			copy(out.RawRow(done+i), act.Data().RawRow(i))
		}
		done += batch
	}
	return c.transformer.Inverse(out)
}

// ResolveCondition maps a (column name, category label) pair to the
// sampler's (span index, category index). It is shared with the VFL client,
// which resolves conditions for its own columns.
func ResolveCondition(specs []encoding.ColumnSpec, sampler *condvec.Sampler, column, categoryLabel string) (int, int, error) {
	colIdx := -1
	for j := range specs {
		if specs[j].Name == column {
			colIdx = j
			break
		}
	}
	if colIdx < 0 {
		return 0, 0, fmt.Errorf("gan: unknown column %q", column)
	}
	if specs[colIdx].Kind != encoding.KindCategorical {
		return 0, 0, fmt.Errorf("gan: column %q is not categorical", column)
	}
	category := -1
	for k, label := range specs[colIdx].Categories {
		if label == categoryLabel {
			category = k
			break
		}
	}
	if category < 0 {
		return 0, 0, fmt.Errorf("gan: column %q has no category %q", column, categoryLabel)
	}
	for i, sp := range sampler.Spans() {
		if sp.Column == colIdx {
			return i, category, nil
		}
	}
	return 0, 0, fmt.Errorf("gan: column %q is not conditionable", column)
}
