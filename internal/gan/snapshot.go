package gan

// Checkpoint/restore for the centralized trainer. A snapshot captures the
// complete training trajectory state — round counter, RNG stream, both
// networks' weights and both Adam optimizers — so that restoring it into a
// freshly built same-config trainer continues training byte-identically
// (TestResumeReplayByteIdentical holds it to that). The feature encoders,
// CV sampler and encoded table are deliberately NOT captured: they are
// deterministic functions of (table, seed) replayed by NewCentralized, so
// the snapshot stays model-sized instead of dataset-sized.

import (
	"fmt"
	"os"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/snap"
)

// Section ids within a KindCentralized snapshot. The numbering is part of
// the format; append only, and bump snap.Version on any payload change.
const (
	secCMeta    = 1
	secCRNG     = 2
	secCGen     = 3
	secCDisc    = 4
	secCGenOpt  = 5
	secCDiscOpt = 6
)

// centralizedState names everything a centralized checkpoint captures.
// Fields reference the live trainer; encode/decode below serialize every
// one of them, and the snapstate lint rule fails the build if a field is
// added here without being wired through both.
//
//snap:state
type centralizedState struct {
	// cfg is fingerprinted (Rounds excepted, so a resumed run may extend
	// training) and verified on restore: resuming under different
	// hyper-parameters would silently diverge from the original run.
	cfg Config
	// dataWidth and cvWidth pin the fitted encoder layout the weights
	// assume.
	dataWidth int
	cvWidth   int
	round     int
	rng       *rng.Rand
	gen       *nn.Sequential
	disc      *nn.Sequential
	genOpt    nn.AdamState
	discOpt   nn.AdamState
}

// encodeConfigFingerprint writes the trajectory-relevant hyper-parameters.
// Rounds is excluded: extending training on resume is legitimate and does
// not change the trajectory up to the checkpoint.
func encodeConfigFingerprint(e *snap.Enc, cfg Config) {
	e.I64(int64(cfg.DiscSteps))
	e.I64(int64(cfg.BatchSize))
	e.I64(int64(cfg.NoiseDim))
	e.I64(int64(cfg.BlockDim))
	e.I64(int64(cfg.GenBlocks))
	e.I64(int64(cfg.DiscBlocks))
	e.F64(cfg.LR)
	e.I64(int64(cfg.Pac))
	e.I64(cfg.Seed)
}

// checkConfigFingerprint verifies a fingerprint written by
// encodeConfigFingerprint against the live configuration.
func checkConfigFingerprint(d *snap.Dec, cfg Config) error {
	type field struct {
		name      string
		have, got float64
	}
	fields := []field{
		{"disc-steps", float64(cfg.DiscSteps), float64(d.I64())},
		{"batch", float64(cfg.BatchSize), float64(d.I64())},
		{"noise-dim", float64(cfg.NoiseDim), float64(d.I64())},
		{"block-dim", float64(cfg.BlockDim), float64(d.I64())},
		{"gen-blocks", float64(cfg.GenBlocks), float64(d.I64())},
		{"disc-blocks", float64(cfg.DiscBlocks), float64(d.I64())},
		{"lr", cfg.LR, d.F64()},
		{"pac", float64(cfg.Pac), float64(d.I64())},
		{"seed", float64(cfg.Seed), float64(d.I64())},
	}
	if err := d.Err(); err != nil {
		return err
	}
	for _, f := range fields {
		// Exact comparison is the point: any drift in a trajectory-relevant
		// hyper-parameter invalidates the checkpoint.
		//lint:ignore floateq fingerprint fields must match bit-exactly; approximate equality would mask a config mismatch
		if f.have != f.got {
			return fmt.Errorf("gtvsnap: checkpoint %s %v does not match configured %v", f.name, f.got, f.have)
		}
	}
	return nil
}

// encode serializes the state into a finished snapshot image.
func (st *centralizedState) encode(b *snap.Builder) []byte {
	b.Section(secCMeta, func(e *snap.Enc) {
		e.I64(int64(st.round))
		e.I64(int64(st.dataWidth))
		e.I64(int64(st.cvWidth))
		encodeConfigFingerprint(e, st.cfg)
	})
	b.Section(secCRNG, func(e *snap.Enc) {
		s := st.rng.State()
		e.U64s(s[:])
	})
	b.Section(secCGen, func(e *snap.Enc) { nn.EncodeParams(e, st.gen) })
	b.Section(secCDisc, func(e *snap.Enc) { nn.EncodeParams(e, st.disc) })
	b.Section(secCGenOpt, func(e *snap.Enc) { nn.EncodeAdamState(e, st.genOpt) })
	b.Section(secCDiscOpt, func(e *snap.Enc) { nn.EncodeAdamState(e, st.discOpt) })
	return b.Bytes()
}

// decode restores the state from a parsed snapshot, writing weights and
// RNG state into the live objects the fields reference. On error the
// trainer state is unspecified; rebuild before retrying.
func (st *centralizedState) decode(s *snap.Snapshot) error {
	if s.Kind != snap.KindCentralized {
		return fmt.Errorf("gtvsnap: snapshot kind %d is not a centralized checkpoint", s.Kind)
	}
	d, err := s.Need(secCMeta, "meta")
	if err != nil {
		return err
	}
	st.round = int(d.I64())
	dataW := int(d.I64())
	cvW := int(d.I64())
	if err := checkConfigFingerprint(d, st.cfg); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if dataW != st.dataWidth || cvW != st.cvWidth {
		return fmt.Errorf("gtvsnap: checkpoint encoder widths %d/%d do not match fitted %d/%d", dataW, cvW, st.dataWidth, st.cvWidth)
	}

	if d, err = s.Need(secCRNG, "rng"); err != nil {
		return err
	}
	words := d.U64s()
	if err := d.Finish(); err != nil {
		return err
	}
	var rs rng.State
	if len(words) != len(rs) {
		return fmt.Errorf("gtvsnap: rng section holds %d state words, want %d", len(words), len(rs))
	}
	copy(rs[:], words)
	st.rng.SetState(rs)

	if d, err = s.Need(secCGen, "generator"); err != nil {
		return err
	}
	if err := nn.RestoreParams(d, st.gen); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if d, err = s.Need(secCDisc, "discriminator"); err != nil {
		return err
	}
	if err := nn.RestoreParams(d, st.disc); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = s.Need(secCGenOpt, "generator optimizer"); err != nil {
		return err
	}
	st.genOpt = nn.DecodeAdamState(d)
	if err := d.Finish(); err != nil {
		return err
	}
	if d, err = s.Need(secCDiscOpt, "discriminator optimizer"); err != nil {
		return err
	}
	st.discOpt = nn.DecodeAdamState(d)
	return d.Finish()
}

// snapState gathers the live trainer into a state view.
func (c *Centralized) snapState() *centralizedState {
	return &centralizedState{
		cfg:       c.cfg,
		dataWidth: c.transformer.Width(),
		cvWidth:   c.sampler.Width(),
		round:     c.round,
		rng:       c.rng,
		gen:       c.gen,
		disc:      c.disc,
	}
}

// Snapshot serializes the trainer's complete trajectory state.
func (c *Centralized) Snapshot() []byte {
	st := c.snapState()
	st.genOpt = c.genOpt.StateFor(c.gen.Params())
	st.discOpt = c.discOpt.StateFor(c.disc.Params())
	return st.encode(snap.NewBuilder(snap.KindCentralized))
}

// Restore reinstates a snapshot taken by Snapshot into a trainer built by
// NewCentralized on the same table with the same configuration. On error
// the trainer state is unspecified; rebuild before retrying.
func (c *Centralized) Restore(data []byte) error {
	s, err := snap.Decode(data)
	if err != nil {
		return err
	}
	st := c.snapState()
	if err := st.decode(s); err != nil {
		return err
	}
	if err := c.genOpt.Restore(c.gen.Params(), st.genOpt); err != nil {
		return err
	}
	if err := c.discOpt.Restore(c.disc.Params(), st.discOpt); err != nil {
		return err
	}
	c.round = st.round
	return nil
}

// SaveCheckpoint atomically writes the current state into dir, named by
// the completed round count, and returns the file path.
func (c *Centralized) SaveCheckpoint(dir string) (string, error) {
	path := snap.CheckpointPath(dir, c.round)
	if err := snap.WriteFileAtomic(path, c.Snapshot()); err != nil {
		return "", err
	}
	return path, nil
}

// RestoreLatestCheckpoint finds the newest checkpoint in dir and restores
// it. ok is false when dir holds no checkpoint (the caller trains from
// scratch).
func (c *Centralized) RestoreLatestCheckpoint(dir string) (rounds int, ok bool, err error) {
	path, _, ok, err := snap.LatestCheckpoint(dir)
	if err != nil || !ok {
		return 0, ok, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, true, err
	}
	if err := c.Restore(data); err != nil {
		return 0, true, fmt.Errorf("gan: restoring %s: %w", path, err)
	}
	return c.round, true, nil
}
