package gan

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/encoding"
	"repro/internal/nn"
)

// resumeTestConfig is small enough that the resume tests stay fast under
// -short and -race: byte-identical replay is about state capture, not
// model capacity.
func resumeTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Rounds = 6
	cfg.DiscSteps = 2
	cfg.BatchSize = 16
	cfg.NoiseDim = 8
	cfg.BlockDim = 16
	cfg.Seed = 7
	return cfg
}

// weightBytes serializes both networks for exact comparison.
func weightBytes(t *testing.T, c *Centralized) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, c.gen); err != nil {
		t.Fatalf("SaveParams(gen): %v", err)
	}
	if err := nn.SaveParams(&buf, c.disc); err != nil {
		t.Fatalf("SaveParams(disc): %v", err)
	}
	return buf.Bytes()
}

// synthCSV renders a synthesis run to CSV bytes for exact comparison.
// Synthesis consumes the RNG stream and reads the BatchNorm running
// statistics, neither of which Params() covers — comparing its output
// catches trajectory state that a pure weight comparison would miss.
func synthCSV(t *testing.T, c *Centralized, n int) []byte {
	t.Helper()
	tbl, err := c.Synthesize(n)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	var buf bytes.Buffer
	if err := encoding.WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.Bytes()
}

// TestResumeReplayByteIdentical kills centralized training at round k,
// restores the checkpoint from disk into a freshly built trainer, trains
// to completion, and requires the final weights to be byte-equal to an
// uninterrupted same-seed run. Everything the trajectory depends on —
// weights, Adam moments and step counts, the RNG stream, the round
// counter — must therefore round-trip exactly through the snapshot.
func TestResumeReplayByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := tinyTable(t, rng, 80)
	cfg := resumeTestConfig()

	full, err := NewCentralized(tbl, cfg)
	if err != nil {
		t.Fatalf("NewCentralized(full): %v", err)
	}
	if err := full.Train(nil); err != nil {
		t.Fatalf("Train(full): %v", err)
	}
	want := weightBytes(t, full)
	wantSynth := synthCSV(t, full, 48)

	// Interrupted run: stop after 3 of the 6 rounds and checkpoint. Rounds
	// is excluded from the config fingerprint, so extending it on resume
	// is legitimate.
	dir := t.TempDir()
	interruptedCfg := cfg
	interruptedCfg.Rounds = 3
	first, err := NewCentralized(tbl, interruptedCfg)
	if err != nil {
		t.Fatalf("NewCentralized(first): %v", err)
	}
	if err := first.Train(nil); err != nil {
		t.Fatalf("Train(first): %v", err)
	}
	if _, err := first.SaveCheckpoint(dir); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	resumed, err := NewCentralized(tbl, cfg)
	if err != nil {
		t.Fatalf("NewCentralized(resumed): %v", err)
	}
	rounds, ok, err := resumed.RestoreLatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("RestoreLatestCheckpoint: %v", err)
	}
	if !ok || rounds != 3 {
		t.Fatalf("RestoreLatestCheckpoint = (%d, %v), want (3, true)", rounds, ok)
	}
	if err := resumed.Train(nil); err != nil {
		t.Fatalf("Train(resumed): %v", err)
	}
	if got := weightBytes(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("resumed run weights differ from uninterrupted same-seed run")
	}
	if resumed.Round() != cfg.Rounds {
		t.Fatalf("resumed round counter %d, want %d", resumed.Round(), cfg.Rounds)
	}
	if got := synthCSV(t, resumed, 48); !bytes.Equal(got, wantSynth) {
		t.Fatal("resumed run synthesizes different data than uninterrupted same-seed run")
	}
}

// TestRestoreRejectsConfigDrift holds the fingerprint check to its word: a
// checkpoint taken under different trajectory-relevant hyper-parameters
// must be refused, not silently diverge.
func TestRestoreRejectsConfigDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tbl := tinyTable(t, rng, 60)
	cfg := resumeTestConfig()
	cfg.Rounds = 1
	c, err := NewCentralized(tbl, cfg)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	if err := c.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	blob := c.Snapshot()

	drifted := cfg
	drifted.LR = cfg.LR * 2
	other, err := NewCentralized(tbl, drifted)
	if err != nil {
		t.Fatalf("NewCentralized(drifted): %v", err)
	}
	if err := other.Restore(blob); err == nil {
		t.Fatal("Restore accepted a checkpoint taken under a different learning rate")
	}

	// Extending Rounds alone is sanctioned.
	extended := cfg
	extended.Rounds = 9
	ext, err := NewCentralized(tbl, extended)
	if err != nil {
		t.Fatalf("NewCentralized(extended): %v", err)
	}
	if err := ext.Restore(blob); err != nil {
		t.Fatalf("Restore with extended Rounds: %v", err)
	}
}
