package gan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/encoding"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// tinyTable builds a 2-column table: a 70/30 categorical and a continuous
// column whose mean depends on the category (so there is structure to learn).
func tinyTable(t *testing.T, rng *rand.Rand, rows int) *encoding.Table {
	t.Helper()
	data := tensor.New(rows, 2)
	for i := 0; i < rows; i++ {
		c := 0.0
		if rng.Float64() < 0.3 {
			c = 1
		}
		data.Set(i, 0, c)
		data.Set(i, 1, rng.NormFloat64()+c*6)
	}
	tbl, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "cat", Kind: encoding.KindCategorical, Categories: []string{"a", "b"}},
		{Name: "cont", Kind: encoding.KindContinuous},
	}, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tbl
}

func TestCentralizedTrainsAndSynthesizes(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	rng := rand.New(rand.NewSource(1))
	tbl := tinyTable(t, rng, 600)
	cfg := DefaultConfig()
	cfg.Rounds = 60
	cfg.BatchSize = 64
	cfg.NoiseDim = 32
	cfg.BlockDim = 64
	g, err := NewCentralized(tbl, cfg)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	var rounds int
	if err := g.Train(func(round int, dLoss, gLoss float64) {
		rounds++
		if math.IsNaN(dLoss) || math.IsNaN(gLoss) {
			t.Fatalf("round %d produced NaN losses", round)
		}
	}); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if rounds != cfg.Rounds {
		t.Fatalf("progress callback fired %d times want %d", rounds, cfg.Rounds)
	}

	synth, err := g.Synthesize(600)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if synth.Rows() != 600 || synth.Cols() != 2 {
		t.Fatalf("synthetic shape %dx%d", synth.Rows(), synth.Cols())
	}
	if synth.Data.HasNaN() {
		t.Fatal("synthetic data contains NaN")
	}
	// The categorical marginal must be roughly recovered (70/30).
	freq, err := encoding.CategoryFrequencies(synth, 0)
	if err != nil {
		t.Fatalf("CategoryFrequencies: %v", err)
	}
	if freq[1] < 0.1 || freq[1] > 0.6 {
		t.Fatalf("minority frequency = %v want ~0.3 (mode collapse?)", freq[1])
	}
	// Continuous marginal: JSD/WD against real should be small-ish.
	rep, err := stats.Similarity(tbl, synth)
	if err != nil {
		t.Fatalf("Similarity: %v", err)
	}
	if rep.AvgWD > 0.5 {
		t.Fatalf("synthetic continuous column far from real: WD=%v", rep.AvgWD)
	}
}

func TestCentralizedOnDatasetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	d, err := datasets.Generate("loan", datasets.Config{Rows: 300, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 10
	cfg.BatchSize = 64
	cfg.NoiseDim = 32
	cfg.BlockDim = 64
	g, err := NewCentralized(d.Table, cfg)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	if err := g.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	synth, err := g.Synthesize(100)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if synth.Rows() != 100 || synth.Cols() != d.Table.Cols() {
		t.Fatalf("synthetic shape %dx%d", synth.Rows(), synth.Cols())
	}
	if synth.Data.HasNaN() {
		t.Fatal("synthetic data contains NaN")
	}
	// Schema validity: synthetic data must decode into the same specs.
	if _, err := encoding.NewTable(synth.Specs, synth.Data); err != nil {
		t.Fatalf("synthetic table invalid: %v", err)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := tinyTable(t, rng, 100)
	cfg := DefaultConfig()
	cfg.Rounds = 1
	cfg.BatchSize = 16
	cfg.NoiseDim = 8
	cfg.BlockDim = 16
	g, err := NewCentralized(tbl, cfg)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	if _, err := g.Synthesize(0); err == nil {
		t.Fatal("expected error for zero rows")
	}
}

func TestCentralizedAllContinuousTable(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	// Tables without categorical columns have no conditional vectors at
	// all; the GAN must still train and synthesize.
	rng := rand.New(rand.NewSource(9))
	data := tensor.New(200, 2)
	for i := 0; i < 200; i++ {
		data.Set(i, 0, rng.NormFloat64())
		data.Set(i, 1, rng.NormFloat64()*2+5)
	}
	tbl, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "a", Kind: encoding.KindContinuous},
		{Name: "b", Kind: encoding.KindContinuous},
	}, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 8
	cfg.BatchSize = 32
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	g, err := NewCentralized(tbl, cfg)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	if err := g.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	synth, err := g.Synthesize(64)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if synth.Rows() != 64 || synth.Data.HasNaN() {
		t.Fatalf("bad synthesis: %dx%d", synth.Rows(), synth.Cols())
	}
}

func TestCentralizedDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	rng := rand.New(rand.NewSource(30))
	tbl := tinyTable(t, rng, 150)
	train := func() *encoding.Table {
		cfg := DefaultConfig()
		cfg.Rounds = 5
		cfg.BatchSize = 32
		cfg.NoiseDim = 16
		cfg.BlockDim = 32
		cfg.Seed = 77
		g, err := NewCentralized(tbl, cfg)
		if err != nil {
			t.Fatalf("NewCentralized: %v", err)
		}
		if err := g.Train(nil); err != nil {
			t.Fatalf("Train: %v", err)
		}
		synth, err := g.Synthesize(40)
		if err != nil {
			t.Fatalf("Synthesize: %v", err)
		}
		return synth
	}
	a := train()
	b := train()
	if !a.Data.Equal(b.Data) {
		t.Fatal("same seed must reproduce identical synthetic data")
	}
}

func TestCentralizedPacTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	rng := rand.New(rand.NewSource(41))
	tbl := tinyTable(t, rng, 150)
	cfg := DefaultConfig()
	cfg.Rounds = 4
	cfg.BatchSize = 40
	cfg.Pac = 10
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	g, err := NewCentralized(tbl, cfg)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	if err := g.Train(nil); err != nil {
		t.Fatalf("Train with pac: %v", err)
	}
	synth, err := g.Synthesize(30)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if synth.Data.HasNaN() {
		t.Fatal("NaN in pac-trained synthesis")
	}
}

func TestCentralizedPacValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tbl := tinyTable(t, rng, 50)
	cfg := DefaultConfig()
	cfg.BatchSize = 33
	cfg.Pac = 10
	if _, err := NewCentralized(tbl, cfg); err == nil {
		t.Fatal("expected pac divisibility error")
	}
}

func TestCentralizedSynthesizeCondition(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	rng := rand.New(rand.NewSource(50))
	tbl := tinyTable(t, rng, 400)
	cfg := DefaultConfig()
	cfg.Rounds = 120
	cfg.DiscSteps = 3
	cfg.BatchSize = 64
	cfg.NoiseDim = 24
	cfg.BlockDim = 64
	cfg.LR = 5e-4
	g, err := NewCentralized(tbl, cfg)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	if err := g.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Condition on the 30% minority category "b".
	synth, err := g.SynthesizeCondition(128, "cat", "b")
	if err != nil {
		t.Fatalf("SynthesizeCondition: %v", err)
	}
	var count int
	for i := 0; i < synth.Rows(); i++ {
		if int(synth.Data.At(i, 0)) == 1 {
			count++
		}
	}
	if frac := float64(count) / float64(synth.Rows()); frac < 0.6 {
		t.Fatalf("conditioned share = %v, want strong majority of category b", frac)
	}
	if _, err := g.SynthesizeCondition(10, "cont", "b"); err == nil {
		t.Fatal("expected non-categorical error")
	}
	if _, err := g.SynthesizeCondition(0, "cat", "b"); err == nil {
		t.Fatal("expected row-count error")
	}
}
