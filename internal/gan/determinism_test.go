package gan

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// TestCentralizedWeightsByteIdentical trains the same configuration twice
// and compares the serialized network weights byte for byte. The fused
// kernels fix their summation order and the buffer pool recycles memory
// without touching values, so two same-seed runs must agree exactly — not
// just to within tolerance.
func TestCentralizedWeightsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	rng := rand.New(rand.NewSource(40))
	tbl := tinyTable(t, rng, 150)
	weights := func() []byte {
		cfg := DefaultConfig()
		cfg.Rounds = 4
		cfg.BatchSize = 32
		cfg.NoiseDim = 16
		cfg.BlockDim = 32
		cfg.Seed = 99
		g, err := NewCentralized(tbl, cfg)
		if err != nil {
			t.Fatalf("NewCentralized: %v", err)
		}
		if err := g.Train(nil); err != nil {
			t.Fatalf("Train: %v", err)
		}
		var buf bytes.Buffer
		if err := nn.SaveParams(&buf, g.gen); err != nil {
			t.Fatalf("SaveParams(gen): %v", err)
		}
		if err := nn.SaveParams(&buf, g.disc); err != nil {
			t.Fatalf("SaveParams(disc): %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(weights(), weights()) {
		t.Fatal("same-seed training runs produced different weight bytes")
	}
}
