// Package rng provides the module's capturable random number generator.
//
// The checkpoint/restore path (internal/snap) needs every RNG stream that
// influences the training trajectory to be serializable: resume-at-round-k
// is only byte-identical to an uninterrupted run when the restored
// generator continues the exact sequence the interrupted one would have
// produced. math/rand's default source keeps its state private, so this
// package wraps math/rand.Rand around an explicit xoshiro256**-style
// source whose four state words can be read out and reinstated exactly.
//
// The wrapper is a drop-in replacement for the seeded *rand.Rand instances
// gtv-lint's globalrand rule already mandates: Rand embeds *rand.Rand, so
// call sites keep using Float64/Intn/Perm/NormFloat64 unchanged, and the
// embedded Rand field is passed where a plain *rand.Rand parameter is
// expected. None of those methods buffer hidden state inside rand.Rand
// itself (only Read does, which this module never uses), so the four
// source words fully determine the stream.
package rng

import "math/rand"

// State is the complete state of one Rand: the four 64-bit words of the
// underlying xoshiro256** source. It is a value type so snapshots can
// copy it without aliasing the live generator.
type State [4]uint64

// source implements rand.Source64 with capturable state. The update rule
// is xoshiro256** (Blackman & Vigna): full 2^256-1 period, passes the
// usual statistical batteries, and needs nothing beyond shifts, rotates
// and one multiply — so restoring the four words restores the stream.
type source struct{ s State }

// newSource seeds the four state words through a splitmix64 expansion of
// the configured seed, the standard way to fill xoshiro state: splitmix64
// is a bijection on 64-bit integers, so no seed can produce the all-zero
// state xoshiro cannot leave.
func newSource(seed int64) *source {
	src := &source{}
	x := uint64(seed)
	for i := range src.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

func (s *source) Uint64() uint64 {
	r := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return r
}

func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *source) Seed(seed int64) { s.s = newSource(seed).s }

// Rand is a seeded generator with capturable state. The embedded
// *rand.Rand provides the full derived-distribution surface
// (Float64, Intn, Perm, NormFloat64, ...); State/SetState expose the
// source words for checkpointing.
type Rand struct {
	*rand.Rand
	src *source
}

// New returns a generator seeded deterministically from seed.
func New(seed int64) *Rand {
	src := newSource(seed)
	return &Rand{Rand: rand.New(src), src: src}
}

// State returns a copy of the generator's complete state.
func (r *Rand) State() State { return r.src.s }

// SetState reinstates a previously captured state; the generator then
// reproduces exactly the stream that followed the capture.
func (r *Rand) SetState(s State) { r.src.s = s }
