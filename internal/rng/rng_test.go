package rng

import (
	"math/rand"
	"testing"
)

// TestStreamDeterministic pins the seeding: same seed, same stream.
func TestStreamDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d for the same seed", i, av, bv)
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 8; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced the same stream")
	}
}

// TestCaptureResume is the property the checkpoint format depends on:
// capturing State mid-stream and reinstating it on a fresh generator
// continues the exact sequence, across every derived distribution the
// module draws from.
func TestCaptureResume(t *testing.T) {
	r := New(7)
	// Burn an arbitrary prefix through mixed draws, as training would.
	for i := 0; i < 137; i++ {
		r.Float64()
		r.Intn(50 + i)
		r.NormFloat64()
	}
	st := r.State()

	fresh := New(999) // deliberately different seed; SetState must win
	fresh.SetState(st)

	for i := 0; i < 500; i++ {
		if a, b := r.Float64(), fresh.Float64(); a != b {
			t.Fatalf("Float64 draw %d diverged after restore: %v != %v", i, a, b)
		}
		if a, b := r.Intn(1000), fresh.Intn(1000); a != b {
			t.Fatalf("Intn draw %d diverged after restore: %d != %d", i, a, b)
		}
		if a, b := r.NormFloat64(), fresh.NormFloat64(); a != b {
			t.Fatalf("NormFloat64 draw %d diverged after restore: %v != %v", i, a, b)
		}
	}
	pa, pb := r.Perm(64), fresh.Perm(64)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("Perm diverged after restore at %d: %d != %d", i, pa[i], pb[i])
		}
	}
}

// TestStateIsolated checks State returns a copy: mutating the captured
// value must not disturb the live generator.
func TestStateIsolated(t *testing.T) {
	r := New(3)
	ref := New(3)
	st := r.State()
	st[0] = 0xdeadbeef
	st[2] ^= 1
	for i := 0; i < 64; i++ {
		if r.Uint64() != ref.Uint64() {
			t.Fatalf("mutating a captured State changed the live stream at draw %d", i)
		}
	}
}

// TestSourceInterface keeps the source a valid rand.Source64 (Seed
// included), so rand.New accepts it and Int63 stays in range.
func TestSourceInterface(t *testing.T) {
	var s rand.Source64 = newSource(11)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
	s.Seed(11)
	ref := newSource(11)
	if s.Uint64() != ref.Uint64() {
		t.Fatal("Seed did not reset the stream")
	}
}

// TestZeroSeedNonDegenerate guards the splitmix seeding path: seed 0 must
// not yield the all-zero xoshiro state (which would emit zeros forever).
func TestZeroSeedNonDegenerate(t *testing.T) {
	r := New(0)
	allZero := true
	for i := 0; i < 16; i++ {
		if r.Uint64() != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("seed 0 produced a degenerate all-zero stream")
	}
}
