package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/encoding"
)

// DCRReport summarizes distances-to-closest-record between a synthetic and
// a real table — the standard membership-leakage smoke test for tabular
// GANs (cf. the membership-collision attacks the paper discusses in §3.3).
// A synthetic table that merely memorizes training rows has DCR
// concentrated at (or near) zero; healthy synthesis keeps the 5th
// percentile clearly positive.
type DCRReport struct {
	// Min, Median and Percentile5 summarize the per-synthetic-row distance
	// to its nearest real row (Gower-style normalized distance in [0,1]).
	Min, Median, Percentile5 float64
	// ExactMatches counts synthetic rows identical to some real row.
	ExactMatches int
}

// DistanceToClosestRecord computes, for every synthetic row, the normalized
// distance to its nearest real row. Continuous and mixed columns use range-
// normalized absolute difference; categorical columns contribute 0/1
// mismatch. The result averages per-column distances (Gower distance).
func DistanceToClosestRecord(real, synth *encoding.Table) (*DCRReport, error) {
	if err := checkSchemas(real, synth); err != nil {
		return nil, err
	}
	if real.Rows() == 0 || synth.Rows() == 0 {
		return nil, errors.New("stats: DCR needs non-empty tables")
	}
	cols := real.Cols()
	// Per-column range for normalization, from the real table.
	scale := make([]float64, cols)
	for j := 0; j < cols; j++ {
		if real.Specs[j].Kind == encoding.KindCategorical {
			continue
		}
		lo, hi := minMax(real.Column(j))
		scale[j] = hi - lo
		if scale[j] < 1e-12 {
			scale[j] = 1
		}
	}

	dists := make([]float64, synth.Rows())
	exact := 0
	for i := 0; i < synth.Rows(); i++ {
		srow := synth.Data.RawRow(i)
		best := math.Inf(1)
		for k := 0; k < real.Rows(); k++ {
			rrow := real.Data.RawRow(k)
			var d float64
			for j := 0; j < cols; j++ {
				if real.Specs[j].Kind == encoding.KindCategorical {
					if int(srow[j]) != int(rrow[j]) { // label-encoded categories are exact integers
						d++
					}
				} else {
					d += math.Min(math.Abs(srow[j]-rrow[j])/scale[j], 1)
				}
				if d >= best*float64(cols) {
					break // cannot beat the current best
				}
			}
			d /= float64(cols)
			if d < best {
				best = d
			}
			if best <= 0 {
				break
			}
		}
		dists[i] = best
		if best <= 0 {
			exact++
		}
	}
	sort.Float64s(dists)
	return &DCRReport{
		Min:          dists[0],
		Median:       dists[len(dists)/2],
		Percentile5:  dists[int(0.05*float64(len(dists)-1))],
		ExactMatches: exact,
	}, nil
}

// String renders the report compactly.
func (r *DCRReport) String() string {
	return fmt.Sprintf("DCR{min=%.4f p5=%.4f median=%.4f exact=%d}", r.Min, r.Percentile5, r.Median, r.ExactMatches)
}
