package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datasets"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

func TestJSDIdenticalIsZero(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	d, err := JSD(p, p)
	if err != nil {
		t.Fatalf("JSD: %v", err)
	}
	if d > 1e-12 {
		t.Fatalf("JSD(p,p) = %v", d)
	}
}

func TestJSDDisjointIsOne(t *testing.T) {
	d, err := JSD([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatalf("JSD: %v", err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("JSD of disjoint = %v want 1", d)
	}
}

func TestJSDErrors(t *testing.T) {
	if _, err := JSD([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := JSD([]float64{-1, 2}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected negative-mass error")
	}
	if _, err := JSD([]float64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected zero-mass error")
	}
}

// Property: JSD is symmetric and within [0, 1].
func TestQuickJSDBoundsAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		p := make([]float64, n)
		q := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64() + 1e-9
			q[i] = rng.Float64() + 1e-9
		}
		d1, err1 := JSD(p, q)
		d2, err2 := JSD(q, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return d1 >= 0 && d1 <= 1+1e-9 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWasserstein1Shift(t *testing.T) {
	// W1 between X and X+c is exactly |c|.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{3, 4, 5, 6, 7}
	d, err := Wasserstein1(a, b)
	if err != nil {
		t.Fatalf("Wasserstein1: %v", err)
	}
	if math.Abs(d-2) > 1e-12 {
		t.Fatalf("W1 = %v want 2", d)
	}
}

func TestWasserstein1Identical(t *testing.T) {
	a := []float64{5, 1, 3}
	d, err := Wasserstein1(a, []float64{3, 5, 1})
	if err != nil {
		t.Fatalf("Wasserstein1: %v", err)
	}
	if d > 1e-12 {
		t.Fatalf("W1 identical = %v", d)
	}
}

func TestWasserstein1DifferentSizes(t *testing.T) {
	// CDF-based computation must handle unequal sample sizes.
	a := []float64{0, 0, 0, 0}
	b := []float64{1}
	d, err := Wasserstein1(a, b)
	if err != nil {
		t.Fatalf("Wasserstein1: %v", err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("W1 = %v want 1", d)
	}
}

func TestWasserstein1Empty(t *testing.T) {
	if _, err := Wasserstein1(nil, []float64{1}); err == nil {
		t.Fatal("expected error")
	}
}

// Property: W1 is symmetric, non-negative, and satisfies the shift identity.
func TestQuickWassersteinProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		m := 1 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + 1
		}
		d1, err1 := Wasserstein1(a, b)
		d2, err2 := Wasserstein1(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(a, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v want -1", got)
	}
	if got := Pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("Pearson with constant = %v want 0", got)
	}
}

func TestCramersV(t *testing.T) {
	// Perfect association.
	a := []float64{0, 0, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	v := CramersV(a, a, 2, 2)
	if v < 0.8 {
		t.Fatalf("CramersV of identical columns = %v, want high", v)
	}
	// Independence: association near 0.
	rng := rand.New(rand.NewSource(1))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(rng.Intn(3))
		y[i] = float64(rng.Intn(4))
	}
	if v := CramersV(x, y, 3, 4); v > 0.1 {
		t.Fatalf("CramersV of independent columns = %v", v)
	}
}

func TestCorrelationRatio(t *testing.T) {
	// Continuous fully determined by category -> eta near 1.
	cat := []float64{0, 0, 0, 1, 1, 1}
	cont := []float64{10, 10, 10, 20, 20, 20}
	if got := CorrelationRatio(cat, cont, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("eta = %v want 1", got)
	}
	// Continuous independent of category -> eta near 0.
	rng := rand.New(rand.NewSource(2))
	n := 2000
	c := make([]float64, n)
	x := make([]float64, n)
	for i := range c {
		c[i] = float64(rng.Intn(3))
		x[i] = rng.NormFloat64()
	}
	if got := CorrelationRatio(c, x, 3); got > 0.1 {
		t.Fatalf("eta of independent = %v", got)
	}
}

func TestAssociationMatrixProperties(t *testing.T) {
	d, err := datasets.Generate("adult", datasets.Config{Rows: 400, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	m := AssociationMatrix(d.Table)
	n := d.Table.Cols()
	if m.Rows() != n || m.Cols() != n {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < n; i++ {
		if m.At(i, i) != 1 {
			t.Fatalf("diagonal[%d] = %v", i, m.At(i, i))
		}
		for j := 0; j < n; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
			if v := m.At(i, j); math.Abs(v) > 1+1e-9 || math.IsNaN(v) {
				t.Fatalf("association (%d,%d) = %v out of range", i, j, v)
			}
		}
	}
}

func TestDiffCorrZeroForIdentical(t *testing.T) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 300, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dc, err := DiffCorr(d.Table, d.Table)
	if err != nil {
		t.Fatalf("DiffCorr: %v", err)
	}
	if dc > 1e-12 {
		t.Fatalf("DiffCorr identical = %v", dc)
	}
}

func TestDiffCorrDetectsShuffledColumns(t *testing.T) {
	// Independently shuffling each column destroys correlations; DiffCorr
	// must notice.
	d, err := datasets.Generate("adult", datasets.Config{Rows: 600, Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	broken := d.Table.GatherRows(rng.Perm(d.Table.Rows()))
	for j := 0; j < broken.Cols(); j++ {
		col := broken.Data.Col(j)
		perm := rng.Perm(len(col))
		for i, p := range perm {
			broken.Data.Set(i, j, col[p])
		}
	}
	dc, err := DiffCorr(d.Table, broken)
	if err != nil {
		t.Fatalf("DiffCorr: %v", err)
	}
	if dc < 0.5 {
		t.Fatalf("DiffCorr of decorrelated data = %v, want clearly > 0", dc)
	}
}

func TestAvgJSDAndAvgWD(t *testing.T) {
	d, err := datasets.Generate("intrusion", datasets.Config{Rows: 400, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Identical tables: both metrics zero.
	jsd, err := AvgJSD(d.Table, d.Table)
	if err != nil {
		t.Fatalf("AvgJSD: %v", err)
	}
	wd, err := AvgWD(d.Table, d.Table)
	if err != nil {
		t.Fatalf("AvgWD: %v", err)
	}
	if jsd > 1e-9 || wd > 1e-9 {
		t.Fatalf("identical tables: jsd=%v wd=%v", jsd, wd)
	}
	// A second independent draw: small but nonzero distances.
	d2, err := datasets.Generate("intrusion", datasets.Config{Rows: 400, Seed: 99})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	jsd2, err := AvgJSD(d.Table, d2.Table)
	if err != nil {
		t.Fatalf("AvgJSD: %v", err)
	}
	if jsd2 <= 0 || jsd2 > 0.6 {
		t.Fatalf("cross-draw JSD = %v", jsd2)
	}
}

func TestSimilarityReport(t *testing.T) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 300, Seed: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rep, err := Similarity(d.Table, d.Table)
	if err != nil {
		t.Fatalf("Similarity: %v", err)
	}
	if rep.AvgJSD != 0 || rep.AvgWD != 0 || rep.DiffCorr != 0 {
		t.Fatalf("self similarity = %+v", rep)
	}
}

func TestSchemaMismatch(t *testing.T) {
	a, err := datasets.Generate("loan", datasets.Config{Rows: 100, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := datasets.Generate("adult", datasets.Config{Rows: 100, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if _, err := DiffCorr(a.Table, b.Table); err == nil {
		t.Fatal("expected schema mismatch error")
	}
	if _, err := AvgJSD(a.Table, b.Table); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestCrossAssociationAndAcrossClient(t *testing.T) {
	d, err := datasets.Generate("adult", datasets.Config{Rows: 500, Seed: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	n := d.Table.Cols()
	assignment := make([]int, n)
	for j := n / 2; j < n; j++ {
		assignment[j] = 1
	}
	parts, err := d.Table.VerticalSplit(assignment, 2)
	if err != nil {
		t.Fatalf("VerticalSplit: %v", err)
	}
	cross, err := CrossAssociation(parts[0], parts[1])
	if err != nil {
		t.Fatalf("CrossAssociation: %v", err)
	}
	if cross.Rows() != parts[0].Cols() || cross.Cols() != parts[1].Cols() {
		t.Fatalf("cross shape %dx%d", cross.Rows(), cross.Cols())
	}
	// Across-client difference of identical synthetic copies is zero.
	diff, err := AcrossClientDiff(parts[0], parts[1], parts[0], parts[1])
	if err != nil {
		t.Fatalf("AcrossClientDiff: %v", err)
	}
	if diff > 1e-12 {
		t.Fatalf("self across-client diff = %v", diff)
	}
	// Avg-client likewise.
	avg, err := AvgClientDiff(parts, parts)
	if err != nil {
		t.Fatalf("AvgClientDiff: %v", err)
	}
	if avg > 1e-12 {
		t.Fatalf("self avg-client diff = %v", avg)
	}
}

func TestCrossAssociationRowMismatch(t *testing.T) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 100, Seed: 9})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a := d.Table.SliceRows(0, 50)
	b := d.Table.SliceRows(0, 60)
	if _, err := CrossAssociation(a, b); err == nil {
		t.Fatal("expected row mismatch error")
	}
}

func TestAvgClientDiffErrors(t *testing.T) {
	if _, err := AvgClientDiff(nil, nil); err == nil {
		t.Fatal("expected empty-parts error")
	}
	tbl := &encoding.Table{Specs: []encoding.ColumnSpec{{Name: "x", Kind: encoding.KindContinuous}}, Data: tensor.New(2, 1)}
	if _, err := AvgClientDiff([]*encoding.Table{tbl}, nil); err == nil {
		t.Fatal("expected mismatch error")
	}
}
