package stats

import (
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

func TestDCRMemorizedDataIsZero(t *testing.T) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 100, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rep, err := DistanceToClosestRecord(d.Table, d.Table)
	if err != nil {
		t.Fatalf("DCR: %v", err)
	}
	if rep.Min != 0 || rep.Median != 0 {
		t.Fatalf("self-DCR = %+v, want all zero", rep)
	}
	if rep.ExactMatches != 100 {
		t.Fatalf("ExactMatches = %d want 100", rep.ExactMatches)
	}
}

func TestDCRDistinctDataIsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	specs := []encoding.ColumnSpec{
		{Name: "x", Kind: encoding.KindContinuous},
		{Name: "c", Kind: encoding.KindCategorical, Categories: []string{"a", "b"}},
	}
	realData := tensor.New(50, 2)
	synthData := tensor.New(50, 2)
	for i := 0; i < 50; i++ {
		realData.Set(i, 0, rng.Float64())
		realData.Set(i, 1, float64(i%2))
		synthData.Set(i, 0, rng.Float64()+10) // far away
		synthData.Set(i, 1, float64(i%2))
	}
	real, err := encoding.NewTable(specs, realData)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	synth, err := encoding.NewTable(specs, synthData)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	rep, err := DistanceToClosestRecord(real, synth)
	if err != nil {
		t.Fatalf("DCR: %v", err)
	}
	if rep.Min <= 0 || rep.ExactMatches != 0 {
		t.Fatalf("distinct-data DCR = %+v, want positive distances", rep)
	}
	if rep.Percentile5 > rep.Median {
		t.Fatalf("p5 %v > median %v", rep.Percentile5, rep.Median)
	}
}

func TestDCRErrors(t *testing.T) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 10, Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	other, err := datasets.Generate("adult", datasets.Config{Rows: 10, Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if _, err := DistanceToClosestRecord(d.Table, other.Table); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}
