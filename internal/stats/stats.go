// Package stats implements the statistical-similarity metrics of the GTV
// evaluation (§4.2.2): the average Jensen-Shannon divergence over
// categorical columns, the average (range-normalized) Wasserstein-1
// distance over continuous/mixed columns, and the dython-style association
// matrix (Pearson correlation, correlation ratio, Cramér's V) from which
// the paper's Diff. Corr., Avg-client and Across-client measures derive.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/encoding"
	"repro/internal/tensor"
)

// JSD returns the Jensen-Shannon divergence between two discrete
// distributions (log base 2, hence bounded in [0, 1]). The slices must have
// equal length; they are normalized internally.
func JSD(p, q []float64) (float64, error) {
	if len(p) != len(q) || len(p) == 0 {
		return 0, fmt.Errorf("stats: JSD over distributions of size %d and %d", len(p), len(q))
	}
	pn, err := normalize(p)
	if err != nil {
		return 0, err
	}
	qn, err := normalize(q)
	if err != nil {
		return 0, err
	}
	var d float64
	for i := range pn {
		m := (pn[i] + qn[i]) / 2
		d += 0.5*klTerm(pn[i], m) + 0.5*klTerm(qn[i], m)
	}
	// Clamp tiny negative rounding noise.
	if d < 0 {
		d = 0
	}
	return d, nil
}

func klTerm(p, m float64) float64 {
	if p <= 0 {
		return 0
	}
	return p * math.Log2(p/m)
}

func normalize(p []float64) ([]float64, error) {
	var sum float64
	for _, v := range p {
		if v < 0 {
			return nil, errors.New("stats: negative probability mass")
		}
		sum += v
	}
	if sum <= 0 {
		return nil, errors.New("stats: zero probability mass")
	}
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = v / sum
	}
	return out, nil
}

// Wasserstein1 returns the 1-Wasserstein (earth mover's) distance between
// two empirical samples, computed exactly as the integral of the absolute
// CDF difference.
func Wasserstein1(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("stats: Wasserstein1 with empty sample")
	}
	as := sortedCopy(a)
	bs := sortedCopy(b)
	// Merge the support points; between consecutive points the CDFs are
	// constant, so the integral is a sum of rectangle areas.
	all := make([]float64, 0, len(as)+len(bs))
	all = append(all, as...)
	all = append(all, bs...)
	sort.Float64s(all)

	var dist float64
	ia, ib := 0, 0
	for k := 0; k < len(all)-1; k++ {
		x, next := all[k], all[k+1]
		for ia < len(as) && as[ia] <= x {
			ia++
		}
		for ib < len(bs) && bs[ib] <= x {
			ib++
		}
		fa := float64(ia) / float64(len(as))
		fb := float64(ib) / float64(len(bs))
		dist += math.Abs(fa-fb) * (next - x)
	}
	return dist, nil
}

// AvgJSD averages the JSD of every categorical column between a real and a
// synthetic table with identical schemas. Tables without categorical
// columns yield 0.
func AvgJSD(real, synth *encoding.Table) (float64, error) {
	if err := checkSchemas(real, synth); err != nil {
		return 0, err
	}
	var total float64
	var count int
	for j, spec := range real.Specs {
		if spec.Kind != encoding.KindCategorical {
			continue
		}
		fr, err := encoding.CategoryFrequencies(real, j)
		if err != nil {
			return 0, err
		}
		fs, err := encoding.CategoryFrequencies(synth, j)
		if err != nil {
			return 0, err
		}
		// Smooth so categories absent on one side stay finite.
		d, err := JSD(smooth(fr), smooth(fs))
		if err != nil {
			return 0, fmt.Errorf("stats: column %q: %w", spec.Name, err)
		}
		total += d
		count++
	}
	if count == 0 {
		return 0, nil
	}
	return total / float64(count), nil
}

func smooth(p []float64) []float64 {
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = v + 1e-9
	}
	return out
}

// AvgWD averages the Wasserstein-1 distance of every continuous and mixed
// column, normalizing each column by the real data's range so columns on
// different scales contribute comparably (as in the CTAB-GAN evaluation).
func AvgWD(real, synth *encoding.Table) (float64, error) {
	if err := checkSchemas(real, synth); err != nil {
		return 0, err
	}
	var total float64
	var count int
	for j, spec := range real.Specs {
		if spec.Kind == encoding.KindCategorical {
			continue
		}
		rc := real.Column(j)
		sc := synth.Column(j)
		lo, hi := minMax(rc)
		scale := hi - lo
		if scale < 1e-12 {
			scale = 1
		}
		d, err := Wasserstein1(rc, sc)
		if err != nil {
			return 0, fmt.Errorf("stats: column %q: %w", spec.Name, err)
		}
		total += d / scale
		count++
	}
	if count == 0 {
		return 0, nil
	}
	return total / float64(count), nil
}

// SimilarityReport bundles the paper's statistical-similarity metrics.
type SimilarityReport struct {
	AvgJSD   float64
	AvgWD    float64
	DiffCorr float64
}

// Similarity computes all three statistical-similarity metrics between a
// real and a synthetic table.
func Similarity(real, synth *encoding.Table) (SimilarityReport, error) {
	jsd, err := AvgJSD(real, synth)
	if err != nil {
		return SimilarityReport{}, err
	}
	wd, err := AvgWD(real, synth)
	if err != nil {
		return SimilarityReport{}, err
	}
	dc, err := DiffCorr(real, synth)
	if err != nil {
		return SimilarityReport{}, err
	}
	return SimilarityReport{AvgJSD: jsd, AvgWD: wd, DiffCorr: dc}, nil
}

func checkSchemas(a, b *encoding.Table) error {
	if len(a.Specs) != len(b.Specs) {
		return fmt.Errorf("stats: schema mismatch: %d vs %d columns", len(a.Specs), len(b.Specs))
	}
	for j := range a.Specs {
		if a.Specs[j].Kind != b.Specs[j].Kind {
			return fmt.Errorf("stats: column %d kind mismatch", j)
		}
	}
	return nil
}

func sortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// --- association matrix (dython compute_associations equivalent) ---

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples (0 when either is constant).
func Pearson(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	ma, sa := meanStd(a)
	mb, sb := meanStd(b)
	if sa < 1e-12 || sb < 1e-12 {
		return 0
	}
	var cov float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
	}
	cov /= n
	return cov / (sa * sb)
}

// CramersV returns the bias-corrected Cramér's V association between two
// categorical samples given their category counts.
func CramersV(a, b []float64, ka, kb int) float64 {
	n := len(a)
	if n == 0 || ka < 2 || kb < 2 {
		return 0
	}
	obs := make([][]float64, ka)
	for i := range obs {
		obs[i] = make([]float64, kb)
	}
	rowSum := make([]float64, ka)
	colSum := make([]float64, kb)
	for i := range a {
		x, y := int(a[i]), int(b[i])
		obs[x][y]++
		rowSum[x]++
		colSum[y]++
	}
	var chi2 float64
	for i := 0; i < ka; i++ {
		for j := 0; j < kb; j++ {
			expect := rowSum[i] * colSum[j] / float64(n)
			if expect > 0 {
				d := obs[i][j] - expect
				chi2 += d * d / expect
			}
		}
	}
	phi2 := chi2 / float64(n)
	// Bergsma-Wicher bias correction, as in dython's default.
	r, c := float64(ka), float64(kb)
	nn := float64(n)
	phi2corr := math.Max(0, phi2-(r-1)*(c-1)/(nn-1))
	rcorr := r - (r-1)*(r-1)/(nn-1)
	ccorr := c - (c-1)*(c-1)/(nn-1)
	den := math.Min(rcorr-1, ccorr-1)
	if den <= 0 {
		return 0
	}
	return math.Sqrt(phi2corr / den)
}

// CorrelationRatio returns eta: the association between a categorical
// sample (with k categories) and a continuous sample.
func CorrelationRatio(cat, cont []float64, k int) float64 {
	n := len(cat)
	if n == 0 || k < 1 {
		return 0
	}
	sums := make([]float64, k)
	counts := make([]float64, k)
	var total float64
	for i := range cat {
		c := int(cat[i])
		sums[c] += cont[i]
		counts[c]++
		total += cont[i]
	}
	grand := total / float64(n)
	var ssBetween, ssTotal float64
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			d := sums[c]/counts[c] - grand
			ssBetween += counts[c] * d * d
		}
	}
	for i := range cont {
		d := cont[i] - grand
		ssTotal += d * d
	}
	if ssTotal < 1e-12 {
		return 0
	}
	return math.Sqrt(ssBetween / ssTotal)
}

// pairAssociation dispatches to the right association measure for the kinds
// of columns i and j of the table.
func pairAssociation(t *encoding.Table, i, j int) float64 {
	si, sj := t.Specs[i], t.Specs[j]
	ci, cj := t.Column(i), t.Column(j)
	iCat := si.Kind == encoding.KindCategorical
	jCat := sj.Kind == encoding.KindCategorical
	switch {
	case iCat && jCat:
		return CramersV(ci, cj, si.NumCategories(), sj.NumCategories())
	case iCat && !jCat:
		return CorrelationRatio(ci, cj, si.NumCategories())
	case !iCat && jCat:
		return CorrelationRatio(cj, ci, sj.NumCategories())
	default:
		return Pearson(ci, cj)
	}
}

// AssociationMatrix returns the full pairwise association matrix of the
// table, mirroring dython's compute_associations: Pearson for
// numeric-numeric pairs, correlation ratio for categorical-numeric and
// Cramér's V for categorical-categorical. Mixed columns are treated as
// numeric. The diagonal is 1.
func AssociationMatrix(t *encoding.Table) *tensor.Dense {
	n := t.Cols()
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		out.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			v := pairAssociation(t, i, j)
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out
}

// CrossAssociation returns the |A| x |B| association block between the
// columns of two row-aligned tables (the Across-client correlations).
func CrossAssociation(a, b *encoding.Table) (*tensor.Dense, error) {
	if a.Rows() != b.Rows() {
		return nil, fmt.Errorf("stats: cross association over %d vs %d rows", a.Rows(), b.Rows())
	}
	joined, err := encoding.ConcatColumns(a, b)
	if err != nil {
		return nil, err
	}
	out := tensor.New(a.Cols(), b.Cols())
	for i := 0; i < a.Cols(); i++ {
		for j := 0; j < b.Cols(); j++ {
			out.Set(i, j, pairAssociation(joined, i, a.Cols()+j))
		}
	}
	return out, nil
}

// DiffCorr returns the L2 (Frobenius) norm of the difference between the
// association matrices of the real and synthetic tables — the paper's
// Diff. Corr. metric.
func DiffCorr(real, synth *encoding.Table) (float64, error) {
	if err := checkSchemas(real, synth); err != nil {
		return 0, err
	}
	return tensor.Sub(AssociationMatrix(real), AssociationMatrix(synth)).Norm(), nil
}

// AvgClientDiff averages DiffCorr over per-client (real, synthetic) table
// pairs: the paper's Avg-client metric.
func AvgClientDiff(realParts, synthParts []*encoding.Table) (float64, error) {
	if len(realParts) != len(synthParts) || len(realParts) == 0 {
		return 0, fmt.Errorf("stats: %d real vs %d synthetic parts", len(realParts), len(synthParts))
	}
	var total float64
	for i := range realParts {
		d, err := DiffCorr(realParts[i], synthParts[i])
		if err != nil {
			return 0, fmt.Errorf("stats: client %d: %w", i, err)
		}
		total += d
	}
	return total / float64(len(realParts)), nil
}

// AcrossClientDiff returns the L2 norm of the difference between the real
// and synthetic cross-client association blocks: the paper's Across-client
// metric for two clients.
func AcrossClientDiff(realA, realB, synthA, synthB *encoding.Table) (float64, error) {
	rc, err := CrossAssociation(realA, realB)
	if err != nil {
		return 0, fmt.Errorf("stats: real cross association: %w", err)
	}
	sc, err := CrossAssociation(synthA, synthB)
	if err != nil {
		return 0, fmt.Errorf("stats: synthetic cross association: %w", err)
	}
	if rc.Rows() != sc.Rows() || rc.Cols() != sc.Cols() {
		return 0, errors.New("stats: cross association shape mismatch")
	}
	return tensor.Sub(rc, sc).Norm(), nil
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var mu float64
	for _, v := range xs {
		mu += v
	}
	mu /= float64(len(xs))
	var va float64
	for _, v := range xs {
		d := v - mu
		va += d * d
	}
	return mu, math.Sqrt(va / float64(len(xs)))
}
