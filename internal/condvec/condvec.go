// Package condvec implements CTGAN's conditional-vector machinery
// ("training-by-sampling") for one party's categorical columns.
//
// A conditional vector (CV) is the concatenation of one one-hot block per
// categorical column; exactly one bit is set across the whole vector,
// naming one category of one column. CVs are sampled by first choosing a
// column uniformly and then a category from the column's log-frequency
// distribution, which over-samples minority categories so the GAN does not
// collapse onto majority classes. Alongside each CV, a matching training-row
// index is sampled from the rows whose column value equals the chosen
// category — the idx_p of the GTV paper.
package condvec

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/encoding"
	"repro/internal/tensor"
)

// Choice records which column and category a sampled CV selects, as needed
// for the generator's conditioning cross-entropy loss.
type Choice struct {
	// Span is the index into the sampler's categorical span list.
	Span int
	// Category is the selected category within that span.
	Category int
}

// Batch is one sampled batch of conditional vectors.
type Batch struct {
	// CV is batch x Width, one one-hot condition per row.
	//
	//shape: (N,W)
	CV *tensor.Dense
	// Rows holds, per CV, the index of a real training row matching the
	// condition (the idx_p the selected client shares with the server).
	Rows []int
	// Choices records the selected span/category per CV.
	Choices []Choice
	// Hot holds, per CV row, the position of its single 1 bit (-1 for an
	// all-zero row, which only zero-width samplers produce). It is the
	// sparse representation of CV: transports and embedding code can read
	// one index per row instead of scanning Width columns. Always populated
	// by the samplers; len(Hot) == CV.Rows() marks it trustworthy.
	Hot []int
}

// Sampler draws conditional vectors and matching row indices for one
// party's local table.
type Sampler struct {
	spans    []encoding.Span
	width    int
	numRows  int
	probs    [][]float64 // per span: log-frequency category distribution
	rawProbs [][]float64 // per span: raw category frequencies
	// catRows indexes real training rows by category value as one flat
	// int32 array per span (rows grouped by category, ascending row order
	// within each group); catOff[i][c] is the group start of category c,
	// with a trailing end sentinel. The flat layout costs 4 bytes per row
	// per categorical column — the only per-row state the out-of-core data
	// plane keeps resident — instead of a ragged slice-of-slices. The
	// idx_p drawn from it reveal which rows match a condition.
	//privacy:source matching-row indices (idx_p)
	catRows [][]int32
	catOff  [][]int32
	// offsets[i] is the first CV position of span i (spans are re-based to
	// the CV coordinate space, which contains only categorical one-hots).
	offsets []int
}

// candidates returns the (possibly empty) row group matching category cat
// of span i.
func (s *Sampler) candidates(i, cat int) []int32 {
	return s.catRows[i][s.catOff[i][cat]:s.catOff[i][cat+1]]
}

// NewSampler builds a sampler from a party's raw table and its fitted
// transformer. Tables without categorical columns yield a zero-width
// sampler whose Sample returns empty CVs and uniform row indices.
func NewSampler(t *encoding.Table, tr *encoding.Transformer) (*Sampler, error) {
	if t.Rows() == 0 {
		return nil, errors.New("condvec: empty table")
	}
	if t.Rows() > math.MaxInt32 {
		return nil, fmt.Errorf("condvec: %d rows exceed the int32 row-index space", t.Rows())
	}
	spans := tr.CategoricalSpans()
	s := &Sampler{
		spans:    spans,
		numRows:  t.Rows(),
		probs:    make([][]float64, len(spans)),
		rawProbs: make([][]float64, len(spans)),
		catRows:  make([][]int32, len(spans)),
		catOff:   make([][]int32, len(spans)),
		offsets:  make([]int, len(spans)),
	}
	for i, sp := range spans {
		s.offsets[i] = s.width
		s.width += sp.Width

		freq, err := encoding.CategoryFrequencies(t, sp.Column)
		if err != nil {
			return nil, fmt.Errorf("condvec: span %d: %w", i, err)
		}
		// Log-frequency sampling: p_k proportional to log(1 + count_k).
		probs := make([]float64, len(freq))
		var total float64
		for k, f := range freq {
			probs[k] = math.Log1p(f * float64(t.Rows()))
			total += probs[k]
		}
		if total <= 0 {
			return nil, fmt.Errorf("condvec: column %d has no observed categories", sp.Column)
		}
		for k := range probs {
			probs[k] /= total
		}
		s.probs[i] = probs
		s.rawProbs[i] = freq

		// Counting sort into the flat per-span index: one pass to count,
		// one to place. Ascending row order within each category matches
		// the append order the ragged layout used to produce, so sampling
		// draws identical rows from identical RNG streams.
		col := t.Column(sp.Column)
		off := make([]int32, len(freq)+1)
		for _, v := range col {
			off[int(v)+1]++
		}
		for c := 1; c < len(off); c++ {
			off[c] += off[c-1]
		}
		rows := make([]int32, len(col))
		next := append([]int32(nil), off[:len(freq)]...)
		for row, v := range col {
			c := int(v)
			rows[next[c]] = int32(row)
			next[c]++
		}
		s.catRows[i] = rows
		s.catOff[i] = off
	}
	return s, nil
}

// Width returns the conditional-vector width (total categories across the
// party's categorical columns).
func (s *Sampler) Width() int { return s.width }

// NumSpans returns the number of conditionable columns.
func (s *Sampler) NumSpans() int { return len(s.spans) }

// SpanOffset returns the CV offset of categorical span i.
func (s *Sampler) SpanOffset(i int) int { return s.offsets[i] }

// Spans returns the categorical spans (in encoded-data coordinates) the
// sampler conditions on.
func (s *Sampler) Spans() []encoding.Span { return s.spans }

// Sample draws a training batch of conditional vectors with matching row
// indices, using log-frequency category sampling (which over-represents
// minority categories, CTGAN's anti-mode-collapse device).
func (s *Sampler) Sample(rng *rand.Rand, batch int) (*Batch, error) {
	return s.sample(rng, batch, s.probs)
}

// SampleSynthesis draws conditional vectors from the *raw* category
// frequencies, which is what CTGAN uses at generation time so the synthetic
// marginals match the training data rather than the rebalanced training
// distribution.
func (s *Sampler) SampleSynthesis(rng *rand.Rand, batch int) (*Batch, error) {
	return s.sample(rng, batch, s.rawProbs)
}

func (s *Sampler) sample(rng *rand.Rand, batch int, probs [][]float64) (*Batch, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("condvec: batch size %d must be positive", batch)
	}
	cv := tensor.New(batch, s.width)
	rows := make([]int, batch)
	choices := make([]Choice, batch)
	hot := make([]int, batch)
	for b := 0; b < batch; b++ {
		if len(s.spans) == 0 {
			// No categorical columns: unconditioned row sampling.
			rows[b] = rng.Intn(s.numRows)
			choices[b] = Choice{Span: -1, Category: -1}
			hot[b] = -1
			continue
		}
		span := rng.Intn(len(s.spans))
		cat := sampleDiscrete(rng, probs[span])
		candidates := s.candidates(span, cat)
		if len(candidates) == 0 {
			// Category absent from current data (cannot happen with
			// frequencies derived from the same table, but guard anyway).
			rows[b] = rng.Intn(s.numRows)
		} else {
			rows[b] = int(candidates[rng.Intn(len(candidates))])
		}
		cv.Set(b, s.offsets[span]+cat, 1)
		choices[b] = Choice{Span: span, Category: cat}
		hot[b] = s.offsets[span] + cat
	}
	return &Batch{CV: cv, Rows: rows, Choices: choices, Hot: hot}, nil
}

// Reindex updates the sampler's row-index lists after the party shuffles its
// local data with permutation perm (new row k holds old row perm[k]).
func (s *Sampler) Reindex(perm []int) error {
	if len(perm) != s.numRows {
		return fmt.Errorf("condvec: permutation length %d, table has %d rows", len(perm), s.numRows)
	}
	// invert: old row i is now at position inv[i].
	inv := make([]int, len(perm))
	for k, old := range perm {
		if old < 0 || old >= len(perm) {
			return fmt.Errorf("condvec: invalid permutation entry %d", old)
		}
		inv[old] = k
	}
	for i := range s.catRows {
		lst := s.catRows[i]
		for k, old := range lst {
			lst[k] = int32(inv[old])
		}
	}
	return nil
}

// sampleDiscrete draws an index from the given probability vector.
func sampleDiscrete(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(probs) - 1
}

// SampleFixed builds a batch whose every conditional vector selects the
// given category of categorical span spanIdx — the "control the class of
// generation" use of CVs. Row indices are drawn from the matching rows.
func (s *Sampler) SampleFixed(rng *rand.Rand, batch, spanIdx, category int) (*Batch, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("condvec: batch size %d must be positive", batch)
	}
	if spanIdx < 0 || spanIdx >= len(s.spans) {
		return nil, fmt.Errorf("condvec: span %d out of range %d", spanIdx, len(s.spans))
	}
	if category < 0 || category >= s.spans[spanIdx].Width {
		return nil, fmt.Errorf("condvec: category %d out of range %d", category, s.spans[spanIdx].Width)
	}
	cv := tensor.New(batch, s.width)
	rows := make([]int, batch)
	choices := make([]Choice, batch)
	hot := make([]int, batch)
	candidates := s.candidates(spanIdx, category)
	for b := 0; b < batch; b++ {
		cv.Set(b, s.offsets[spanIdx]+category, 1)
		if len(candidates) > 0 {
			rows[b] = int(candidates[rng.Intn(len(candidates))])
		} else {
			rows[b] = rng.Intn(s.numRows)
		}
		choices[b] = Choice{Span: spanIdx, Category: category}
		hot[b] = s.offsets[spanIdx] + category
	}
	return &Batch{CV: cv, Rows: rows, Choices: choices, Hot: hot}, nil
}
