package condvec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/encoding"
	"repro/internal/gmm"
	"repro/internal/tensor"
)

// buildTable makes a table with two categorical columns (2 and 3 categories,
// imbalanced) and one continuous column.
func buildTable(t *testing.T, rng *rand.Rand, rows int) (*encoding.Table, *encoding.Transformer) {
	t.Helper()
	data := tensor.New(rows, 3)
	for i := 0; i < rows; i++ {
		row := data.RawRow(i)
		if rng.Float64() < 0.9 {
			row[0] = 0 // 90/10 imbalance
		} else {
			row[0] = 1
		}
		row[1] = float64(rng.Intn(3))
		row[2] = rng.NormFloat64()
	}
	tbl, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "binary", Kind: encoding.KindCategorical, Categories: []string{"a", "b"}},
		{Name: "ternary", Kind: encoding.KindCategorical, Categories: []string{"x", "y", "z"}},
		{Name: "cont", Kind: encoding.KindContinuous},
	}, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	tr, err := encoding.FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	return tbl, tr
}

func TestSamplerWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl, tr := buildTable(t, rng, 200)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	if s.Width() != 5 { // 2 + 3 categories
		t.Fatalf("Width = %d want 5", s.Width())
	}
	if s.NumSpans() != 2 {
		t.Fatalf("NumSpans = %d want 2", s.NumSpans())
	}
	if s.SpanOffset(0) != 0 || s.SpanOffset(1) != 2 {
		t.Fatalf("offsets = %d,%d", s.SpanOffset(0), s.SpanOffset(1))
	}
}

func TestSampleOneBitSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl, tr := buildTable(t, rng, 200)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	batch, err := s.Sample(rng, 64)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	for b := 0; b < 64; b++ {
		ones := 0
		for j := 0; j < s.Width(); j++ {
			switch batch.CV.At(b, j) {
			case 1:
				ones++
			case 0:
			default:
				t.Fatalf("CV has non-binary value %v", batch.CV.At(b, j))
			}
		}
		if ones != 1 {
			t.Fatalf("CV row %d has %d ones, want exactly 1", b, ones)
		}
	}
}

func TestSampledRowMatchesCondition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl, tr := buildTable(t, rng, 200)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	batch, err := s.Sample(rng, 128)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	for b, choice := range batch.Choices {
		col := s.Spans()[choice.Span].Column
		if got := int(tbl.Data.At(batch.Rows[b], col)); got != choice.Category {
			t.Fatalf("CV %d selects category %d of column %d, but sampled row has %d",
				b, choice.Category, col, got)
		}
	}
}

func TestLogFrequencyOversamplesMinority(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tbl, tr := buildTable(t, rng, 1000)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	var minority, total int
	for trial := 0; trial < 50; trial++ {
		batch, err := s.Sample(rng, 100)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		for _, c := range batch.Choices {
			if c.Span == 0 {
				total++
				if c.Category == 1 {
					minority++
				}
			}
		}
	}
	frac := float64(minority) / float64(total)
	// Raw frequency of the minority class is 10%; log-frequency sampling
	// must lift it well above that (to roughly log-ratio balance).
	if frac < 0.2 {
		t.Fatalf("minority sampled at %v, want > 0.2 under log-frequency sampling", frac)
	}
}

func TestReindexAfterShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl, tr := buildTable(t, rng, 100)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	perm := tensor.Permutation(rng, 100)
	shuffled := tbl.ShuffleRows(perm)
	if err := s.Reindex(perm); err != nil {
		t.Fatalf("Reindex: %v", err)
	}
	batch, err := s.Sample(rng, 64)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	for b, choice := range batch.Choices {
		col := s.Spans()[choice.Span].Column
		if got := int(shuffled.Data.At(batch.Rows[b], col)); got != choice.Category {
			t.Fatalf("after reindex: CV %d category %d, shuffled row value %d", b, choice.Category, got)
		}
	}
}

func TestReindexErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl, tr := buildTable(t, rng, 10)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	if err := s.Reindex([]int{0, 1}); err == nil {
		t.Fatal("expected length error")
	}
	bad := make([]int, 10)
	bad[0] = 99
	if err := s.Reindex(bad); err == nil {
		t.Fatal("expected invalid-entry error")
	}
}

func TestNoCategoricalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := tensor.Randn(rng, 50, 2, 0, 1)
	tbl, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "c1", Kind: encoding.KindContinuous},
		{Name: "c2", Kind: encoding.KindContinuous},
	}, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	tr, err := encoding.FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	if s.Width() != 0 {
		t.Fatalf("Width = %d want 0", s.Width())
	}
	batch, err := s.Sample(rng, 8)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if batch.CV.Cols() != 0 || len(batch.Rows) != 8 {
		t.Fatalf("batch = %dx%d rows %d", batch.CV.Rows(), batch.CV.Cols(), len(batch.Rows))
	}
	for _, r := range batch.Rows {
		if r < 0 || r >= 50 {
			t.Fatalf("row index %d out of range", r)
		}
	}
}

func TestSampleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tbl, tr := buildTable(t, rng, 10)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	if _, err := s.Sample(rng, 0); err == nil {
		t.Fatal("expected error for batch 0")
	}
}

// Property: for any table and batch, every sampled row index is valid and
// every CV row has exactly one bit set matching its recorded choice.
func TestQuickCVValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 20 + rng.Intn(100)
		data := tensor.New(rows, 2)
		k := 2 + rng.Intn(4)
		for i := 0; i < rows; i++ {
			data.Set(i, 0, float64(rng.Intn(k)))
			data.Set(i, 1, rng.NormFloat64())
		}
		cats := make([]string, k)
		for i := range cats {
			cats[i] = string(rune('a' + i))
		}
		tbl, err := encoding.NewTable([]encoding.ColumnSpec{
			{Name: "cat", Kind: encoding.KindCategorical, Categories: cats},
			{Name: "cont", Kind: encoding.KindContinuous},
		}, data)
		if err != nil {
			return false
		}
		tr, err := encoding.FitTransformer(rng, tbl, gmm.DefaultConfig())
		if err != nil {
			return false
		}
		s, err := NewSampler(tbl, tr)
		if err != nil {
			return false
		}
		batch, err := s.Sample(rng, 16)
		if err != nil {
			return false
		}
		for b := 0; b < 16; b++ {
			if batch.Rows[b] < 0 || batch.Rows[b] >= rows {
				return false
			}
			choice := batch.Choices[b]
			var sum float64
			for j := 0; j < s.Width(); j++ {
				sum += batch.CV.At(b, j)
			}
			if math.Abs(sum-1) > 0 {
				return false
			}
			if batch.CV.At(b, s.SpanOffset(choice.Span)+choice.Category) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl, tr := buildTable(t, rng, 200)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	batch, err := s.SampleFixed(rng, 32, 1, 2) // ternary column, category z
	if err != nil {
		t.Fatalf("SampleFixed: %v", err)
	}
	for b := 0; b < 32; b++ {
		if batch.CV.At(b, s.SpanOffset(1)+2) != 1 {
			t.Fatalf("CV %d does not select the fixed category", b)
		}
		if batch.Choices[b].Span != 1 || batch.Choices[b].Category != 2 {
			t.Fatalf("choice %d = %+v", b, batch.Choices[b])
		}
		col := s.Spans()[1].Column
		if got := int(tbl.Data.At(batch.Rows[b], col)); got != 2 {
			t.Fatalf("sampled row %d has category %d want 2", b, got)
		}
	}
}

func TestSampleFixedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tbl, tr := buildTable(t, rng, 50)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	if _, err := s.SampleFixed(rng, 0, 0, 0); err == nil {
		t.Fatal("expected batch error")
	}
	if _, err := s.SampleFixed(rng, 4, 9, 0); err == nil {
		t.Fatal("expected span range error")
	}
	if _, err := s.SampleFixed(rng, 4, 0, 9); err == nil {
		t.Fatal("expected category range error")
	}
}

// TestSampleHotMatchesCV: the Hot slice the samplers attach (consumed by
// the wire encoder's one-hot fast path) must agree exactly with the CV
// matrix — Hot[b] is the single set column, or -1 for an all-zero row.
func TestSampleHotMatchesCV(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tbl, tr := buildTable(t, rng, 200)
	s, err := NewSampler(tbl, tr)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	check := func(label string, batch *Batch) {
		t.Helper()
		if len(batch.Hot) != batch.CV.Rows() {
			t.Fatalf("%s: Hot length %d for %d rows", label, len(batch.Hot), batch.CV.Rows())
		}
		for b, h := range batch.Hot {
			for j := 0; j < batch.CV.Cols(); j++ {
				want := 0.0
				if j == h {
					want = 1
				}
				if batch.CV.At(b, j) != want {
					t.Fatalf("%s: row %d col %d = %v with Hot=%d", label, b, j, batch.CV.At(b, j), h)
				}
			}
		}
	}
	batch, err := s.Sample(rng, 64)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	check("Sample", batch)
	batch, err = s.SampleSynthesis(rng, 64)
	if err != nil {
		t.Fatalf("SampleSynthesis: %v", err)
	}
	check("SampleSynthesis", batch)
	batch, err = s.SampleFixed(rng, 16, 1, 2)
	if err != nil {
		t.Fatalf("SampleFixed: %v", err)
	}
	check("SampleFixed", batch)
}
