package vfl

import (
	"sync"
	"sync/atomic"
)

// fanClients runs fn(i, clients[i]) for every client, driving at most
// `parallelism` clients concurrently (<=0 or >len means all at once, 1
// reproduces the plain sequential loop). Callers collect per-client results
// in index-addressed slices they own, so result ordering is deterministic
// regardless of scheduling; fn must only write slots for its own index.
//
// Error handling follows the first-error-cancellation contract: once any
// fn returns an error, no further client work is started (already-running
// calls finish on their own — bounding their duration is the transport
// policy's job, see CallPolicy), and the error for the lowest client index
// that failed is returned.
func fanClients(clients []Client, parallelism int, fn func(i int, c Client) error) error {
	n := len(clients)
	if n == 0 {
		return nil
	}
	p := parallelism
	if p <= 0 || p > n {
		p = n
	}
	if p == 1 {
		for i, c := range clients {
			if err := fn(i, c); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg   sync.WaitGroup
		next int64 = -1
		once sync.Once
	)
	errs := make([]error, n)
	quit := make(chan struct{})
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				select {
				case <-quit:
					return
				default:
				}
				if err := fn(i, clients[i]); err != nil {
					errs[i] = err
					once.Do(func() { close(quit) })
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
