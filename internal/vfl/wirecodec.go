package vfl

// Payload primitives for the gtvwire frame protocol (see wire.go for the
// frame layout). Encoders append to a pooled byte buffer; decoders walk a
// received payload with a sticky error, so call sites read as straight-line
// field lists and malformed frames surface as one descriptive error instead
// of a panic (FuzzWireFrameDecode holds the codec to that).

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// Matrix element encodings. The elemSize byte stored per matrix is
// authoritative on decode, so a float32 sender and a float64 reader always
// agree on the byte layout.
const (
	wireElemF64 = 8
	wireElemF32 = 4
)

// wireEnc accumulates one frame payload.
type wireEnc struct{ buf []byte }

func newWireEnc() *wireEnc { return &wireEnc{buf: getWireBuf(0)} }

// release hands the payload buffer back to the frame-buffer free list.
func (e *wireEnc) release() {
	putWireBuf(e.buf)
	e.buf = nil
}

func (e *wireEnc) u8(v byte) { e.buf = append(e.buf, v) }

func (e *wireEnc) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *wireEnc) i64(v int64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
}

func (e *wireEnc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *wireEnc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *wireEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// bytes appends a length-prefixed opaque byte string (checkpoint blobs).
func (e *wireEnc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *wireEnc) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}

// matrix appends m's shape and elements, reading directly from the
// tensor's backing storage — the float64 data is transformed to
// little-endian bytes in a single pass with no intermediate copy of the
// matrix. f32 selects the lossy float32 element encoding.
func (e *wireEnc) matrix(m *tensor.Dense, f32 bool) {
	if m == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(m.Rows()))
	e.u32(uint32(m.Cols()))
	data := m.Data()
	if f32 {
		e.u8(wireElemF32)
		e.buf = growWireBuf(e.buf, 4*len(data))
		for _, v := range data {
			e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(float32(v)))
		}
		return
	}
	e.u8(wireElemF64)
	e.buf = growWireBuf(e.buf, 8*len(data))
	for _, v := range data {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
}

func (e *wireEnc) choices(cs []condvec.Choice) {
	e.u32(uint32(len(cs)))
	for _, c := range cs {
		e.i64(int64(c.Span))
		e.i64(int64(c.Category))
	}
}

func (e *wireEnc) specs(ss []encoding.ColumnSpec) {
	e.u32(uint32(len(ss)))
	for i := range ss {
		s := &ss[i]
		e.str(s.Name)
		e.u8(byte(s.Kind))
		e.u32(uint32(len(s.Categories)))
		for _, c := range s.Categories {
			e.str(c)
		}
		e.u32(uint32(len(s.SpecialValues)))
		for _, v := range s.SpecialValues {
			e.f64(v)
		}
	}
}

func (e *wireEnc) cvBatch(b *condvec.Batch, f32 bool) {
	e.matrix(b.CV, f32)
	e.ints(b.Rows)
	e.choices(b.Choices)
}

func (e *wireEnc) table(t *encoding.Table, f32 bool) {
	e.specs(t.Specs)
	e.matrix(t.Data, f32)
}

func (e *wireEnc) setup(s Setup) {
	e.i64(int64(s.Plan.DiscServer))
	e.i64(int64(s.Plan.DiscClient))
	e.i64(int64(s.Plan.GenServer))
	e.i64(int64(s.Plan.GenClient))
	e.i64(int64(s.SliceWidth))
	e.i64(int64(s.GenBlockWidth))
	e.i64(int64(s.DiscWidth))
	e.f64(s.LR)
	e.i64(s.Seed)
}

func (e *wireEnc) clientInfo(i ClientInfo) {
	e.i64(int64(i.Features))
	e.i64(int64(i.EncodedWidth))
	e.i64(int64(i.CVWidth))
	e.i64(int64(i.Rows))
}

// growWireBuf ensures room for n more bytes so the element-append loops
// never re-grow mid-matrix.
func growWireBuf(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	nb := make([]byte, len(b), len(b)+n)
	copy(nb, b)
	return nb
}

// wireDec walks one received frame payload. The first decode error sticks;
// every subsequent read returns zero values, so callers check err once at
// the end.
type wireDec struct {
	buf []byte
	off int
	err error
}

func newWireDec(payload []byte) *wireDec { return &wireDec{buf: payload} }

func (d *wireDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("gtvwire: "+format, args...)
	}
}

// take returns the next n payload bytes, or nil after marking the decoder
// failed when fewer remain.
func (d *wireDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("truncated payload: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// finish reports the sticky error, also flagging unconsumed trailing bytes
// (a symptom of a codec mismatch between peers).
func (d *wireDec) finish() error {
	if d.err == nil && d.off != len(d.buf) {
		d.fail("%d trailing payload bytes", len(d.buf)-d.off)
	}
	return d.err
}

func (d *wireDec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireDec) i64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (d *wireDec) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *wireDec) bool() bool { return d.u8() != 0 }

func (d *wireDec) str() string {
	n := d.u32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// bytes decodes a length-prefixed opaque byte string into a fresh copy:
// the frame buffer it would otherwise alias is pooled and reused as soon
// as the call dispatches.
func (d *wireDec) bytes() []byte {
	n := d.u32()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *wireDec) ints() []int {
	n := int(d.u32())
	if d.take(0) == nil || n > (len(d.buf)-d.off)/8 {
		d.fail("int slice length %d exceeds payload", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.i64())
	}
	return out
}

// matrix decodes a matrix into a buffer drawn from the tensor free list
// (tensor.NewPooledUninit — every element is overwritten below), so the
// receive path allocates nothing when a same-shape buffer was Released by
// an earlier step. Ownership passes to the caller; see the release rules
// in wireclient.go / wireserver.go for who hands it back.
func (d *wireDec) matrix() *tensor.Dense {
	tag := d.u8()
	if d.err != nil || tag == 0 {
		return nil
	}
	rows := int(d.u32())
	cols := int(d.u32())
	elem := int(d.u8())
	if d.err != nil {
		return nil
	}
	if elem != wireElemF64 && elem != wireElemF32 {
		d.fail("invalid matrix element size %d", elem)
		return nil
	}
	// Bounding rows by remaining/(cols*elem) both rejects shapes larger
	// than the payload and keeps rows*cols*elem from overflowing below.
	if cols != 0 && rows > (len(d.buf)-d.off)/(cols*elem) {
		d.fail("matrix shape %dx%d exceeds payload", rows, cols)
		return nil
	}
	n := rows * cols
	raw := d.take(n * elem)
	if raw == nil {
		return nil
	}
	out := tensor.NewPooledUninit(rows, cols)
	data := out.Data()
	if elem == wireElemF32 {
		for i := range data {
			data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:])))
		}
		return out
	}
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func (d *wireDec) choices() []condvec.Choice {
	n := int(d.u32())
	if d.take(0) == nil || n > (len(d.buf)-d.off)/16 {
		d.fail("choice slice length %d exceeds payload", n)
		return nil
	}
	out := make([]condvec.Choice, n)
	for i := range out {
		out[i].Span = int(d.i64())
		out[i].Category = int(d.i64())
	}
	return out
}

func (d *wireDec) specs() []encoding.ColumnSpec {
	n := int(d.u32())
	if d.take(0) == nil || n > len(d.buf)-d.off {
		d.fail("spec slice length %d exceeds payload", n)
		return nil
	}
	out := make([]encoding.ColumnSpec, n)
	for i := range out {
		s := &out[i]
		s.Name = d.str()
		s.Kind = encoding.ColumnKind(d.u8())
		ncat := int(d.u32())
		if d.take(0) == nil || ncat > len(d.buf)-d.off {
			d.fail("category count %d exceeds payload", ncat)
			return nil
		}
		if ncat > 0 {
			s.Categories = make([]string, ncat)
			for j := range s.Categories {
				s.Categories[j] = d.str()
			}
		}
		nsp := int(d.u32())
		if d.take(0) == nil || nsp > (len(d.buf)-d.off)/8 {
			d.fail("special value count %d exceeds payload", nsp)
			return nil
		}
		if nsp > 0 {
			s.SpecialValues = make([]float64, nsp)
			for j := range s.SpecialValues {
				s.SpecialValues[j] = d.f64()
			}
		}
	}
	return out
}

func (d *wireDec) cvBatch() *condvec.Batch {
	return &condvec.Batch{CV: d.matrix(), Rows: d.ints(), Choices: d.choices()}
}

func (d *wireDec) setup() Setup {
	return Setup{
		Plan: Plan{
			DiscServer: int(d.i64()),
			DiscClient: int(d.i64()),
			GenServer:  int(d.i64()),
			GenClient:  int(d.i64()),
		},
		SliceWidth:    int(d.i64()),
		GenBlockWidth: int(d.i64()),
		DiscWidth:     int(d.i64()),
		LR:            d.f64(),
		Seed:          d.i64(),
	}
}

func (d *wireDec) clientInfo() ClientInfo {
	return ClientInfo{
		Features:     int(d.i64()),
		EncodedWidth: int(d.i64()),
		CVWidth:      int(d.i64()),
		Rows:         int(d.i64()),
	}
}
