package vfl

// Payload primitives for the gtvwire frame protocol (see wire.go for the
// frame layout). Encoders append to a pooled byte buffer; decoders walk a
// received payload with a sticky error, so call sites read as straight-line
// field lists and malformed frames surface as one descriptive error instead
// of a panic (FuzzWireFrameDecode holds the codec to that).

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// Matrix element encodings. The elemSize byte stored per matrix is
// authoritative on decode, so a float32 sender and a float64 reader always
// agree on the byte layout.
const (
	wireElemF64 = 8
	wireElemF32 = 4
)

// Matrix payload layouts: the first byte of every matrix field. The
// encoder scans each matrix once and picks the cheapest faithful layout,
// so layout choice is invisible to decoded values — every layout is
// lossless for the matrices it admits (f32 element rounding excepted,
// exactly as in the dense layout) and the sparse ones only apply when the
// scan proves they reproduce the matrix bit-for-bit.
const (
	wireLayoutNil    = 0 // absent matrix (the old presence byte 0)
	wireLayoutDense  = 1 // raw little-endian elements
	wireLayoutOneHot = 2 // 0/1 matrix, at most one 1 per row: per-row index
	wireLayoutBitmap = 3 // 0/1 matrix: row-major LSB-first bitmap
	wireLayoutSparse = 4 // low density: delta-coded index list plus values
)

// Bit patterns the density scan classifies against. Comparing bits rather
// than values keeps the scan lint-clean (no float ==) and strict: -0.0 and
// denormals near 1 are NOT 0/1, so the bit-set layouts can materialize
// exact +0.0/+1.0 on decode.
const (
	wireBitsZero = 0
	wireBitsOne  = 0x3FF0000000000000
)

// wireEnc accumulates one frame payload.
type wireEnc struct{ buf []byte }

func newWireEnc() *wireEnc { return &wireEnc{buf: getWireBuf(0)} }

// release hands the payload buffer back to the frame-buffer free list.
func (e *wireEnc) release() {
	putWireBuf(e.buf)
	e.buf = nil
}

func (e *wireEnc) u8(v byte) { e.buf = append(e.buf, v) }

func (e *wireEnc) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *wireEnc) i64(v int64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
}

func (e *wireEnc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *wireEnc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// uvarint appends an unsigned LEB128 varint — the field-width-aware
// packing applied to every shape, length and index field of the format,
// where the common values (batch sizes, widths, row indices) fit one or
// two bytes instead of a fixed four or eight.
func (e *wireEnc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// svarint appends a zigzag-coded signed varint (small magnitudes of either
// sign stay short; condvec uses -1 as a sentinel).
func (e *wireEnc) svarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *wireEnc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// bytes appends a length-prefixed opaque byte string (checkpoint blobs).
func (e *wireEnc) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *wireEnc) ints(v []int) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.svarint(int64(x))
	}
}

// matrix appends m's shape and elements under the cheapest faithful
// layout: conditional vectors and hard Gumbel outputs (exactly one +1.0
// per row) travel as per-row indices, 0/1 masks as bitmaps, top-k
// sparsified gradients as delta-coded index lists, and everything else as
// raw little-endian elements read directly from the tensor's backing
// storage. f32 selects the lossy float32 element encoding for the layouts
// that carry element bytes (dense, index-list); the bit-set layouts are
// exact in either mode.
func (e *wireEnc) matrix(m *tensor.Dense, f32 bool) {
	if m == nil {
		e.u8(wireLayoutNil)
		return
	}
	switch scanWireMatrix(m) {
	case wireLayoutOneHot:
		e.matrixOneHot(m)
	case wireLayoutBitmap:
		e.matrixBitmap(m)
	case wireLayoutSparse:
		e.matrixSparse(m, f32)
	default:
		e.matrixDense(m, f32)
	}
}

// scanWireMatrix classifies m's density in one pass over the raw bits:
// all elements exactly +0.0/+1.0 with at most one 1 per row selects the
// one-hot layout, any 0/1 mix the bitmap, at most a quarter nonzero the
// index list, everything else (including matrices above the sparse
// decode-allocation cap) the dense layout. The scan bails out to dense as
// soon as a non-0/1 value and a quarter-density nonzero count have both
// been seen, so dense activation payloads pay ~n/4 element reads, not a
// full classification.
func scanWireMatrix(m *tensor.Dense) byte {
	data := m.Data()
	n := len(data)
	cols := m.Cols()
	if n == 0 || n > wireMaxSparseElems {
		return wireLayoutDense
	}
	cutoff := n / 4
	nnz := 0
	all01 := true
	oneHot := cols > 0
	rowNnz, rowEnd := 0, cols
	for i, v := range data {
		if i == rowEnd {
			rowNnz, rowEnd = 0, rowEnd+cols
		}
		bits := math.Float64bits(v)
		if bits == wireBitsZero {
			continue
		}
		nnz++
		if bits != wireBitsOne {
			all01 = false
			if nnz > cutoff {
				return wireLayoutDense
			}
		}
		rowNnz++
		if rowNnz > 1 {
			oneHot = false
		}
	}
	switch {
	case all01 && oneHot:
		return wireLayoutOneHot
	case all01:
		return wireLayoutBitmap
	case nnz <= cutoff:
		return wireLayoutSparse
	}
	return wireLayoutDense
}

func (e *wireEnc) matrixDense(m *tensor.Dense, f32 bool) {
	e.u8(wireLayoutDense)
	e.uvarint(uint64(m.Rows()))
	e.uvarint(uint64(m.Cols()))
	data := m.Data()
	if f32 {
		e.u8(wireElemF32)
		e.buf = growWireBuf(e.buf, 4*len(data))
		for _, v := range data {
			e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(float32(v)))
		}
		return
	}
	e.u8(wireElemF64)
	e.buf = growWireBuf(e.buf, 8*len(data))
	for _, v := range data {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
}

// matrixOneHot writes one varint per row: the hot column plus one, zero
// meaning an all-zero row. ~1 byte/row instead of 8 bytes/element.
func (e *wireEnc) matrixOneHot(m *tensor.Dense) {
	e.u8(wireLayoutOneHot)
	rows, cols := m.Rows(), m.Cols()
	e.uvarint(uint64(rows))
	e.uvarint(uint64(cols))
	for i := 0; i < rows; i++ {
		hot := uint64(0)
		for j, v := range m.RawRow(i) {
			if math.Float64bits(v) == wireBitsOne {
				hot = uint64(j) + 1
				break
			}
		}
		e.uvarint(hot)
	}
}

// matrixHot is matrixOneHot fed from a precomputed hot-index slice
// (condvec.Batch.Hot, hot[i] < 0 for an all-zero row), skipping the
// density scan and the per-row search entirely. A hot slice that does not
// cover every row falls back to the scanning encoder.
func (e *wireEnc) matrixHot(m *tensor.Dense, hot []int) {
	if m == nil || len(hot) != m.Rows() {
		e.matrix(m, false)
		return
	}
	e.u8(wireLayoutOneHot)
	e.uvarint(uint64(m.Rows()))
	e.uvarint(uint64(m.Cols()))
	for _, h := range hot {
		if h < 0 {
			e.uvarint(0)
		} else {
			e.uvarint(uint64(h) + 1)
		}
	}
}

// matrixBitmap packs a 0/1 matrix into a row-major LSB-first bitmap over
// the flattened element index: n/8 bytes instead of 8n.
func (e *wireEnc) matrixBitmap(m *tensor.Dense) {
	e.u8(wireLayoutBitmap)
	rows, cols := m.Rows(), m.Cols()
	e.uvarint(uint64(rows))
	e.uvarint(uint64(cols))
	data := m.Data()
	nbytes := (len(data) + 7) / 8
	e.buf = growWireBuf(e.buf, nbytes)
	start := len(e.buf)
	e.buf = e.buf[:start+nbytes]
	clear(e.buf[start:])
	for i, v := range data {
		if math.Float64bits(v) == wireBitsOne {
			e.buf[start+i/8] |= 1 << (uint(i) % 8)
		}
	}
}

// matrixSparse writes the nonzero elements as a delta-coded ascending
// index list with their values — the layout top-k sparsified gradients
// take, ~(1+elemSize) bytes per nonzero.
func (e *wireEnc) matrixSparse(m *tensor.Dense, f32 bool) {
	e.u8(wireLayoutSparse)
	e.uvarint(uint64(m.Rows()))
	e.uvarint(uint64(m.Cols()))
	data := m.Data()
	elem := byte(wireElemF64)
	if f32 {
		elem = wireElemF32
	}
	e.u8(elem)
	nnz := 0
	for _, v := range data {
		if math.Float64bits(v) != wireBitsZero {
			nnz++
		}
	}
	e.uvarint(uint64(nnz))
	prev := -1
	for i, v := range data {
		if math.Float64bits(v) == wireBitsZero {
			continue
		}
		if prev < 0 {
			e.uvarint(uint64(i))
		} else {
			e.uvarint(uint64(i - prev))
		}
		prev = i
		if f32 {
			e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(float32(v)))
		} else {
			e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
		}
	}
}

func (e *wireEnc) choices(cs []condvec.Choice) {
	e.uvarint(uint64(len(cs)))
	for _, c := range cs {
		e.svarint(int64(c.Span))
		e.svarint(int64(c.Category))
	}
}

func (e *wireEnc) specs(ss []encoding.ColumnSpec) {
	e.uvarint(uint64(len(ss)))
	for i := range ss {
		s := &ss[i]
		e.str(s.Name)
		e.u8(byte(s.Kind))
		e.uvarint(uint64(len(s.Categories)))
		for _, c := range s.Categories {
			e.str(c)
		}
		e.uvarint(uint64(len(s.SpecialValues)))
		for _, v := range s.SpecialValues {
			e.f64(v)
		}
	}
}

// cvBatch rides the Batch.Hot sparse representation straight onto the wire
// when the sampler provided it, skipping the density scan.
func (e *wireEnc) cvBatch(b *condvec.Batch, f32 bool) {
	if b.CV != nil && len(b.Hot) == b.CV.Rows() {
		e.matrixHot(b.CV, b.Hot)
	} else {
		e.matrix(b.CV, f32)
	}
	e.ints(b.Rows)
	e.choices(b.Choices)
}

func (e *wireEnc) table(t *encoding.Table, f32 bool) {
	e.specs(t.Specs)
	e.matrix(t.Data, f32)
}

func (e *wireEnc) setup(s Setup) {
	e.i64(int64(s.Plan.DiscServer))
	e.i64(int64(s.Plan.DiscClient))
	e.i64(int64(s.Plan.GenServer))
	e.i64(int64(s.Plan.GenClient))
	e.i64(int64(s.SliceWidth))
	e.i64(int64(s.GenBlockWidth))
	e.i64(int64(s.DiscWidth))
	e.f64(s.LR)
	e.i64(s.Seed)
}

func (e *wireEnc) clientInfo(i ClientInfo) {
	e.i64(int64(i.Features))
	e.i64(int64(i.EncodedWidth))
	e.i64(int64(i.CVWidth))
	e.i64(int64(i.Rows))
}

// growWireBuf ensures room for n more bytes so the element-append loops
// never re-grow mid-matrix.
func growWireBuf(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	nb := make([]byte, len(b), len(b)+n)
	copy(nb, b)
	return nb
}

// wireDec walks one received frame payload. The first decode error sticks;
// every subsequent read returns zero values, so callers check err once at
// the end.
type wireDec struct {
	buf []byte
	off int
	err error
}

func newWireDec(payload []byte) *wireDec { return &wireDec{buf: payload} }

func (d *wireDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("gtvwire: "+format, args...)
	}
}

// take returns the next n payload bytes, or nil after marking the decoder
// failed when fewer remain.
func (d *wireDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("truncated payload: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// finish reports the sticky error, also flagging unconsumed trailing bytes
// (a symptom of a codec mismatch between peers).
func (d *wireDec) finish() error {
	if d.err == nil && d.off != len(d.buf) {
		d.fail("%d trailing payload bytes", len(d.buf)-d.off)
	}
	return d.err
}

func (d *wireDec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireDec) i64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (d *wireDec) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *wireDec) bool() bool { return d.u8() != 0 }

// uvarint decodes an unsigned LEB128 varint. Both truncation (n == 0) and
// a value overflowing 64 bits (n < 0) fail the decoder; encoders emit
// minimal varints, so there is no partial-prefix ambiguity to tolerate.
func (d *wireDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("invalid varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// svarint decodes a zigzag-coded signed varint.
func (d *wireDec) svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("invalid varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wireDec) str() string {
	n := d.uvarint()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// bytes decodes a length-prefixed opaque byte string into a fresh copy:
// the frame buffer it would otherwise alias is pooled and reused as soon
// as the call dispatches.
func (d *wireDec) bytes() []byte {
	n := d.uvarint()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *wireDec) ints() []int {
	n := int(d.uvarint())
	// Each encoded int is at least one byte, so the remaining payload
	// bounds the count before the output slice is allocated.
	if d.take(0) == nil || n > len(d.buf)-d.off {
		d.fail("int slice length %d exceeds payload", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.svarint())
	}
	return out
}

// matrix decodes a matrix in any wire layout into a buffer drawn from the
// tensor free list, so the receive path allocates nothing when a
// same-shape buffer was Released by an earlier step. Ownership passes to
// the caller; see the release rules in wireclient.go / wireserver.go for
// who hands it back.
func (d *wireDec) matrix() *tensor.Dense {
	m, _ := d.matrixHot()
	return m
}

// matrixHot decodes a matrix and, for the one-hot layout, also returns the
// per-row hot indices (-1 for an all-zero row) so conditional-vector
// receivers can keep the sparse representation alongside the dense tensor.
// Other layouts return a nil hot slice.
func (d *wireDec) matrixHot() (*tensor.Dense, []int) {
	layout := d.u8()
	if d.err != nil || layout == wireLayoutNil {
		return nil, nil
	}
	rows := int(d.uvarint())
	cols := int(d.uvarint())
	if d.err != nil {
		return nil, nil
	}
	switch layout {
	case wireLayoutDense:
		return d.matrixDense(rows, cols), nil
	case wireLayoutOneHot:
		return d.matrixOneHot(rows, cols)
	case wireLayoutBitmap:
		return d.matrixBitmap(rows, cols), nil
	case wireLayoutSparse:
		return d.matrixSparse(rows, cols), nil
	}
	d.fail("invalid matrix layout %d", layout)
	return nil, nil
}

// checkSparseShape bounds the dense expansion of the sparse layouts, whose
// wire size is far below 8 B/element: without the cap a tiny frame could
// claim a huge shape and make the decoder allocate gigabytes.
func (d *wireDec) checkSparseShape(rows, cols int) bool {
	if rows < 0 || cols < 0 || (cols != 0 && rows > wireMaxSparseElems/cols) || (cols == 0 && rows > wireMaxSparseElems) {
		d.fail("sparse matrix shape %dx%d exceeds element limit %d", rows, cols, wireMaxSparseElems)
		return false
	}
	return true
}

func (d *wireDec) matrixDense(rows, cols int) *tensor.Dense {
	elem := int(d.u8())
	if d.err != nil {
		return nil
	}
	if elem != wireElemF64 && elem != wireElemF32 {
		d.fail("invalid matrix element size %d", elem)
		return nil
	}
	// Bounding rows by remaining/(cols*elem) both rejects shapes larger
	// than the payload and keeps rows*cols*elem from overflowing below.
	if rows < 0 || cols < 0 || (cols != 0 && rows > (len(d.buf)-d.off)/(cols*elem)) {
		d.fail("matrix shape %dx%d exceeds payload", rows, cols)
		return nil
	}
	n := rows * cols
	raw := d.take(n * elem)
	if raw == nil {
		return nil
	}
	out := tensor.NewPooledUninit(rows, cols)
	data := out.Data()
	if elem == wireElemF32 {
		for i := range data {
			data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:])))
		}
		return out
	}
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func (d *wireDec) matrixOneHot(rows, cols int) (*tensor.Dense, []int) {
	if !d.checkSparseShape(rows, cols) {
		return nil, nil
	}
	// Each row costs at least one varint byte.
	if rows > len(d.buf)-d.off {
		d.fail("one-hot matrix rows %d exceed payload", rows)
		return nil, nil
	}
	hot := make([]int, rows)
	for i := range hot {
		h := d.uvarint()
		if d.err != nil {
			return nil, nil
		}
		if h == 0 {
			hot[i] = -1
			continue
		}
		if h > uint64(cols) {
			d.fail("one-hot index %d out of range for %d columns", h-1, cols)
			return nil, nil
		}
		hot[i] = int(h) - 1
	}
	return tensor.NewPooledOneHot(rows, cols, hot), hot
}

func (d *wireDec) matrixBitmap(rows, cols int) *tensor.Dense {
	if !d.checkSparseShape(rows, cols) {
		return nil
	}
	n := rows * cols
	raw := d.take((n + 7) / 8)
	if raw == nil {
		return nil
	}
	// Trailing pad bits must be zero so each matrix has exactly one
	// encoding (golden fixtures and the byte-accounting tests rely on it).
	if n%8 != 0 && raw[len(raw)-1]>>(uint(n)%8) != 0 {
		d.fail("bitmap matrix has nonzero padding bits")
		return nil
	}
	return tensor.NewPooledBitmap(rows, cols, raw)
}

func (d *wireDec) matrixSparse(rows, cols int) *tensor.Dense {
	if !d.checkSparseShape(rows, cols) {
		return nil
	}
	elem := int(d.u8())
	if d.err != nil {
		return nil
	}
	if elem != wireElemF64 && elem != wireElemF32 {
		d.fail("invalid matrix element size %d", elem)
		return nil
	}
	nnz := int(d.uvarint())
	// Each entry costs at least one index byte plus elem value bytes.
	if d.err != nil || nnz < 0 || nnz > (len(d.buf)-d.off)/(1+elem) {
		d.fail("sparse matrix nnz %d exceeds payload", nnz)
		return nil
	}
	n := rows * cols
	out := tensor.NewPooled(rows, cols)
	data := out.Data()
	pos := -1
	for range nnz {
		delta := d.uvarint()
		if d.err != nil {
			out.Release()
			return nil
		}
		if pos < 0 {
			pos = int(delta)
		} else if delta == 0 || delta > uint64(n) {
			d.fail("sparse matrix index delta %d not strictly ascending", delta)
			out.Release()
			return nil
		} else {
			pos += int(delta)
		}
		if pos < 0 || pos >= n {
			d.fail("sparse matrix index %d out of range for %d elements", pos, n)
			out.Release()
			return nil
		}
		if elem == wireElemF32 {
			b := d.take(4)
			if b == nil {
				out.Release()
				return nil
			}
			data[pos] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
		} else {
			b := d.take(8)
			if b == nil {
				out.Release()
				return nil
			}
			data[pos] = math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
	}
	return out
}

func (d *wireDec) choices() []condvec.Choice {
	n := int(d.uvarint())
	// Each choice costs at least two varint bytes.
	if d.take(0) == nil || n > (len(d.buf)-d.off)/2 {
		d.fail("choice slice length %d exceeds payload", n)
		return nil
	}
	out := make([]condvec.Choice, n)
	for i := range out {
		out[i].Span = int(d.svarint())
		out[i].Category = int(d.svarint())
	}
	return out
}

func (d *wireDec) specs() []encoding.ColumnSpec {
	n := int(d.uvarint())
	if d.take(0) == nil || n > len(d.buf)-d.off {
		d.fail("spec slice length %d exceeds payload", n)
		return nil
	}
	out := make([]encoding.ColumnSpec, n)
	for i := range out {
		s := &out[i]
		s.Name = d.str()
		s.Kind = encoding.ColumnKind(d.u8())
		ncat := int(d.uvarint())
		if d.take(0) == nil || ncat > len(d.buf)-d.off {
			d.fail("category count %d exceeds payload", ncat)
			return nil
		}
		if ncat > 0 {
			s.Categories = make([]string, ncat)
			for j := range s.Categories {
				s.Categories[j] = d.str()
			}
		}
		nsp := int(d.uvarint())
		if d.take(0) == nil || nsp > (len(d.buf)-d.off)/8 {
			d.fail("special value count %d exceeds payload", nsp)
			return nil
		}
		if nsp > 0 {
			s.SpecialValues = make([]float64, nsp)
			for j := range s.SpecialValues {
				s.SpecialValues[j] = d.f64()
			}
		}
	}
	return out
}

func (d *wireDec) cvBatch() *condvec.Batch {
	cv, hot := d.matrixHot()
	return &condvec.Batch{CV: cv, Hot: hot, Rows: d.ints(), Choices: d.choices()}
}

func (d *wireDec) setup() Setup {
	return Setup{
		Plan: Plan{
			DiscServer: int(d.i64()),
			DiscClient: int(d.i64()),
			GenServer:  int(d.i64()),
			GenClient:  int(d.i64()),
		},
		SliceWidth:    int(d.i64()),
		GenBlockWidth: int(d.i64()),
		DiscWidth:     int(d.i64()),
		LR:            d.f64(),
		Seed:          d.i64(),
	}
}

func (d *wireDec) clientInfo() ClientInfo {
	return ClientInfo{
		Features:     int(d.i64()),
		EncodedWidth: int(d.i64()),
		CVWidth:      int(d.i64()),
		Rows:         int(d.i64()),
	}
}
