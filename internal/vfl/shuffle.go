package vfl

import (
	"crypto/sha256"
	"encoding/binary"
)

// ShuffleCoordinator derives the shared per-round shuffle seeds of
// training-with-shuffling (§3.1.5). All clients construct a coordinator
// from the same secret — negotiated among clients before training — and the
// server never holds one, so it cannot reproduce the permutations and
// cannot join conditional vectors with row indices across rounds.
type ShuffleCoordinator struct {
	// secret seeds every shuffle permutation; a server holding it could
	// invert training-with-shuffling and re-join idx_p across rounds.
	//privacy:source shared shuffle secret
	secret int64
}

// NewShuffleCoordinator returns a coordinator for the given shared secret.
func NewShuffleCoordinator(secret int64) *ShuffleCoordinator {
	return &ShuffleCoordinator{secret: secret}
}

// SeedForRound returns the deterministic shuffle seed for a training round.
// Seeds are derived by hashing (secret, round) so no inter-client
// communication is needed once the secret is shared.
func (c *ShuffleCoordinator) SeedForRound(round int) int64 {
	return c.derive(0, round)
}

// PublicationSeed returns the seed used to shuffle synthetic data before
// publication (§3.1.7), namespaced away from training-round seeds.
func (c *ShuffleCoordinator) PublicationSeed(batch int) int64 {
	return c.derive(1, batch)
}

func (c *ShuffleCoordinator) derive(namespace byte, round int) int64 {
	var buf [17]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(c.secret))
	buf[8] = namespace
	binary.BigEndian.PutUint64(buf[9:17], uint64(round))
	sum := sha256.Sum256(buf[:])
	return int64(binary.BigEndian.Uint64(sum[:8]))
}
