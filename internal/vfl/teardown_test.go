package vfl

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"
)

// waitGoroutineBaseline polls until the process goroutine count drops back
// to at most base, failing after a generous grace period. Teardown is
// asynchronous (read loops observe closed connections on their next read),
// so an immediate count would race.
func waitGoroutineBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine count %d never returned to baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWireClientNoRedialAfterClose: a closed WireClient must stay closed.
// Before the closed flag, any call after Close would transparently redial
// and resurrect the session — leaking a fresh demux goroutine and keeping
// a client alive that the caller had torn down.
func TestWireClientNoRedialAfterClose(t *testing.T) {
	ta, _ := twoClientTables(t, 40, 11)
	coord := NewShuffleCoordinator(5)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	addr := serveWireListener(t, la)
	// Retries enabled on purpose: even a retrying policy must not redial a
	// closed client.
	proxy, err := DialWireClientPolicy("tcp", addr, CallPolicy{
		Timeout: 2 * time.Second, MaxAttempts: 3, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := proxy.Info(); err != nil {
		t.Fatalf("Info before close: %v", err)
	}
	if err := proxy.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := proxy.Info(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Info after Close should fail with net.ErrClosed, got: %v", err)
	}
	proxy.mu.Lock()
	resurrected := proxy.sess != nil
	proxy.mu.Unlock()
	if resurrected {
		t.Fatal("call after Close redialed a fresh session")
	}
}

// TestListenerCloseEndsConnGoroutines: closing the listener alone — the
// proxy stays open — must end every serve-side goroutine, and, because the
// server closes the accepted connections, the client-side demux loops too.
// This pins the connSet teardown in ServeClientWire/ServeClient; without
// it the per-connection read loops park on their sockets until the peer
// hangs up.
func TestListenerCloseEndsConnGoroutines(t *testing.T) {
	ta, _ := twoClientTables(t, 40, 13)
	coord := NewShuffleCoordinator(9)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	for _, transport := range []string{"wire", "gob"} {
		t.Run(transport, func(t *testing.T) {
			base := runtime.NumGoroutine()
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			done := make(chan error, 1)
			var c Client
			if transport == "wire" {
				go func() { done <- ServeClientWire(lis, la) }()
				proxy, err := DialWireClient("tcp", lis.Addr().String())
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				t.Cleanup(func() { proxy.Close() })
				c = proxy
			} else {
				go func() { done <- ServeClient(lis, la) }()
				proxy, err := DialClient("tcp", lis.Addr().String())
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				t.Cleanup(func() { proxy.Close() })
				c = proxy
			}
			if _, err := c.Info(); err != nil {
				t.Fatalf("Info: %v", err)
			}
			if err := lis.Close(); err != nil {
				t.Fatalf("close listener: %v", err)
			}
			if err := <-done; err != nil {
				t.Fatalf("serve loop: %v", err)
			}
			waitGoroutineBaseline(t, base)
		})
	}
}

// TestReleaseUnblocksDelayedCalls: Release must cut injected delays short,
// not just dropped calls — otherwise a test tearing down sits out the full
// configured latency of every in-flight call (and a canceled round's
// abandoned attempt goroutines live on for the whole delay).
func TestReleaseUnblocksDelayedCalls(t *testing.T) {
	ta, _ := twoClientTables(t, 40, 17)
	coord := NewShuffleCoordinator(3)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	f := NewFaultyTransport(la)
	f.SetDelay(time.Hour)
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		f.Release()
	}()
	if _, err := f.Info(); err != nil {
		t.Fatalf("Info through released delay: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Release did not cut the delay short: took %v", elapsed)
	}
}
