package vfl

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/encoding"
)

// trainRounds drives a system for its configured number of rounds.
func trainRounds(t *testing.T, s *Server, label string) {
	t.Helper()
	if err := s.Train(nil); err != nil {
		t.Fatalf("Train(%s): %v", label, err)
	}
}

// synthCSVBytes renders a synthesis run to CSV bytes for exact comparison.
// Synthesis consumes the server and client RNG streams and reads the
// BatchNorm running statistics, none of which a weight comparison covers.
func synthCSVBytes(t *testing.T, s *Server, label string, n int) []byte {
	t.Helper()
	tbl, err := s.Synthesize(n)
	if err != nil {
		t.Fatalf("Synthesize(%s): %v", label, err)
	}
	var buf bytes.Buffer
	if err := encoding.WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV(%s): %v", label, err)
	}
	return buf.Bytes()
}

// assertSystemsEqual compares every model of two federations exactly:
// the server's top models and each client's bottom models.
func assertSystemsEqual(t *testing.T, a, b *Server, ca, cb []*LocalClient) {
	t.Helper()
	assertParamsEqual(t, "gTop", a.gTop, b.gTop)
	assertParamsEqual(t, "dTop", a.dTop, b.dTop)
	assertParamsEqual(t, "dS", a.dS, b.dS)
	for i := range ca {
		assertParamsEqual(t, "client gen", ca[i].gen, cb[i].gen)
		assertParamsEqual(t, "client disc", ca[i].disc, cb[i].disc)
	}
}

// TestResumeReplayByteIdentical kills federated training at round k,
// checkpoints the whole federation (server state plus per-client blobs
// fetched over the Client interface), restores it into a freshly built
// same-seed federation, trains to completion, and requires the final
// weights of every party and the CommStats accounting to equal an
// uninterrupted same-seed run exactly. This is the strongest statement the
// snapshot format can make: nothing the trajectory depends on — RNG
// streams, Adam moments, shuffle progress, round counters — escaped it.
func TestResumeReplayByteIdentical(t *testing.T) {
	const fullRounds, cutAt = 4, 2

	srvFull, clientsFull := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = fullRounds })
	trainRounds(t, srvFull, "full")
	wantStats := srvFull.CommStats()

	// Interrupted run: train to the cut point and checkpoint to disk.
	dir := t.TempDir()
	srvA, _ := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = cutAt })
	trainRounds(t, srvA, "interrupted")
	if _, err := srvA.SaveCheckpoint(dir); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	// Fresh same-seed federation, restored from disk, trained to the end.
	srvB, clientsB := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = fullRounds })
	rounds, ok, err := srvB.RestoreLatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("RestoreLatestCheckpoint: %v", err)
	}
	if !ok || rounds != cutAt {
		t.Fatalf("RestoreLatestCheckpoint = (%d, %v), want (%d, true)", rounds, ok, cutAt)
	}
	trainRounds(t, srvB, "resumed")

	assertSystemsEqual(t, srvFull, srvB, clientsFull, clientsB)
	if gotStats := srvB.CommStats(); gotStats != wantStats {
		t.Fatalf("resumed CommStats %v differ from uninterrupted %v", gotStats, wantStats)
	}
	if srvB.Rounds() != fullRounds {
		t.Fatalf("resumed round counter %d, want %d", srvB.Rounds(), fullRounds)
	}
	wantSynth := synthCSVBytes(t, srvFull, "full", 40)
	if gotSynth := synthCSVBytes(t, srvB, "resumed", 40); !bytes.Equal(gotSynth, wantSynth) {
		t.Fatal("resumed federation synthesizes different data than uninterrupted same-seed run")
	}
}

// TestResumeReplayParallelismIndependent checkpoints under sequential
// fan-out and resumes under full concurrency: Parallelism is excluded
// from the fingerprint because training is bit-identical across fan-out
// bounds, and resume must preserve that.
func TestResumeReplayParallelismIndependent(t *testing.T) {
	const fullRounds, cutAt = 3, 1

	srvFull, clientsFull := newThreeClientSystem(t, 1, func(c *Config) { c.Rounds = fullRounds })
	trainRounds(t, srvFull, "full")

	dir := t.TempDir()
	srvA, _ := newThreeClientSystem(t, 1, func(c *Config) { c.Rounds = cutAt })
	trainRounds(t, srvA, "interrupted")
	if _, err := srvA.SaveCheckpoint(dir); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	srvB, clientsB := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = fullRounds })
	if _, ok, err := srvB.RestoreLatestCheckpoint(dir); err != nil || !ok {
		t.Fatalf("RestoreLatestCheckpoint = (ok %v, err %v)", ok, err)
	}
	trainRounds(t, srvB, "resumed")
	assertSystemsEqual(t, srvFull, srvB, clientsFull, clientsB)
}

// TestSnapshotOverWire round-trips the new Snapshot/Restore methods
// through the gtvwire binary transport: the blob fetched over the wire is
// byte-equal to the one taken in-process, and restoring through the proxy
// reinstates the remote client's state (weights and replayed row order).
func TestSnapshotOverWire(t *testing.T) {
	srv, locals := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = 1 })
	trainRounds(t, srv, "origin")

	serve := func(c Client) *WireClient {
		t.Helper()
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go func() {
			//lint:ignore errdrop the serve loop ends when the test closes the listener
			_ = ServeClientWire(lis, c)
		}()
		proxy, err := DialWireClient("tcp", lis.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		t.Cleanup(func() {
			//lint:ignore errdrop test teardown, nothing left to lose
			_ = proxy.Close()
			//lint:ignore errdrop test teardown, nothing left to lose
			_ = lis.Close()
		})
		return proxy
	}

	direct, err := locals[0].Snapshot()
	if err != nil {
		t.Fatalf("Snapshot(direct): %v", err)
	}
	viaWire, err := serve(locals[0]).Snapshot()
	if err != nil {
		t.Fatalf("Snapshot(wire): %v", err)
	}
	if !bytes.Equal(direct, viaWire) {
		t.Fatal("wire-fetched snapshot blob differs from the in-process one")
	}

	// A fresh same-seed federation; restore client 0's blob through the
	// wire and compare the reinstated state against the original.
	_, fresh := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = 1 })
	if err := serve(fresh[0]).Restore(viaWire); err != nil {
		t.Fatalf("Restore(wire): %v", err)
	}
	assertParamsEqual(t, "restored gen", locals[0].gen, fresh[0].gen)
	assertParamsEqual(t, "restored disc", locals[0].disc, fresh[0].disc)
	a, b := locals[0].Table().Data, fresh[0].Table().Data
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("restored table shape %dx%d, want %dx%d", b.Rows(), b.Cols(), a.Rows(), a.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != b.At(i, j) { //lint:ignore floateq replayed row order must match bit-exactly
				t.Fatalf("restored table differs at (%d,%d)", i, j)
			}
		}
	}
}

// TestRestoreRejectsMismatch pins the guard rails: a client blob cannot
// restore into a server slot, and a client that has already trained
// refuses restoration (the shuffle replay would double-apply).
func TestRestoreRejectsMismatch(t *testing.T) {
	srv, locals := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = 1 })
	trainRounds(t, srv, "origin")

	blob, err := locals[0].Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	srvData, err := srv.Snapshot()
	if err != nil {
		t.Fatalf("server Snapshot: %v", err)
	}

	if err := srv.Restore(blob); err == nil {
		t.Fatal("server Restore accepted a client blob")
	}
	_, fresh := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = 1 })
	if err := fresh[0].Restore(srvData); err == nil {
		t.Fatal("client Restore accepted a server snapshot")
	}
	if err := locals[0].Restore(blob); err == nil {
		t.Fatal("Restore accepted a client that has already trained")
	}
}
