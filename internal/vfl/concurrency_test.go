package vfl

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/encoding"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// threeClientTables builds a three-way vertical split with cross-client
// structure: A holds a categorical and a continuous column, B a continuous
// column driven by A's category, C a 3-way categorical plus a continuous
// column.
func threeClientTables(t *testing.T, rows int, seed int64) []*encoding.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	da := tensor.New(rows, 2)
	db := tensor.New(rows, 1)
	dc := tensor.New(rows, 2)
	for i := 0; i < rows; i++ {
		cat := 0.0
		if rng.Float64() < 0.3 {
			cat = 1
		}
		da.Set(i, 0, cat)
		da.Set(i, 1, rng.NormFloat64()+2*cat)
		db.Set(i, 0, rng.NormFloat64()+6*cat)
		dc.Set(i, 0, float64(rng.Intn(3)))
		dc.Set(i, 1, rng.NormFloat64()-3*cat)
	}
	ta, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "segment", Kind: encoding.KindCategorical, Categories: []string{"a", "b"}},
		{Name: "spend", Kind: encoding.KindContinuous},
	}, da)
	if err != nil {
		t.Fatalf("NewTable A: %v", err)
	}
	tb, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "income", Kind: encoding.KindContinuous},
	}, db)
	if err != nil {
		t.Fatalf("NewTable B: %v", err)
	}
	tc, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "region", Kind: encoding.KindCategorical, Categories: []string{"x", "y", "z"}},
		{Name: "debt", Kind: encoding.KindContinuous},
	}, dc)
	if err != nil {
		t.Fatalf("NewTable C: %v", err)
	}
	return []*encoding.Table{ta, tb, tc}
}

// newThreeClientSystem builds a 3-client GTV system with identical seeds
// every time it is called, so two instances differing only in Parallelism
// must train identically.
func newThreeClientSystem(t *testing.T, parallelism int, mutate func(*Config)) (*Server, []*LocalClient) {
	t.Helper()
	tables := threeClientTables(t, 120, 17)
	coord := NewShuffleCoordinator(99)
	locals := make([]*LocalClient, len(tables))
	ifaces := make([]Client, len(tables))
	for i, tab := range tables {
		c, err := NewLocalClient(tab, coord, int64(i+1))
		if err != nil {
			t.Fatalf("NewLocalClient %d: %v", i, err)
		}
		locals[i] = c
		ifaces[i] = c
	}
	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 1, DiscClient: 1, GenServer: 1, GenClient: 1}
	cfg.Rounds = 3
	cfg.DiscSteps = 2
	cfg.BatchSize = 32
	cfg.NoiseDim = 16
	cfg.BlockDim = 48
	cfg.LR = 5e-4
	cfg.Parallelism = parallelism
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(ifaces, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv, locals
}

func assertParamsEqual(t *testing.T, label string, a, b *nn.Sequential) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one model is nil", label)
	}
	if a == nil {
		return
	}
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: param count %d vs %d", label, len(pa), len(pb))
	}
	for k := range pa {
		if !pa[k].Data().Equal(pb[k].Data()) {
			t.Fatalf("%s: param %d diverges between sequential and concurrent runs", label, k)
		}
	}
}

// TestSequentialConcurrentEquivalence is the core determinism guarantee of
// the concurrent server: training with all clients fanned out must be
// bit-identical — every model weight on every party, and the CommStats
// totals — to the sequential path from the same seed, in every protocol
// mode (broadcast, faithful real pass, DP logit noise).
func TestSequentialConcurrentEquivalence(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"broadcast", nil},
		{"faithful", func(c *Config) { c.FaithfulRealPass = true }},
		{"dp-noise", func(c *Config) { c.DPLogitNoise = 0.3 }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			seq, seqClients := newThreeClientSystem(t, 1, v.mutate)
			con, conClients := newThreeClientSystem(t, 0, v.mutate)
			if err := seq.Train(nil); err != nil {
				t.Fatalf("sequential Train: %v", err)
			}
			if err := con.Train(nil); err != nil {
				t.Fatalf("concurrent Train: %v", err)
			}
			assertParamsEqual(t, "G^t", seq.gTop, con.gTop)
			assertParamsEqual(t, "D^t", seq.dTop, con.dTop)
			assertParamsEqual(t, "D^s", seq.dS, con.dS)
			for i := range seqClients {
				assertParamsEqual(t, "client gen", seqClients[i].gen, conClients[i].gen)
				assertParamsEqual(t, "client disc", seqClients[i].disc, conClients[i].disc)
			}
			if seq.CommStats() != con.CommStats() {
				t.Fatalf("CommStats diverge:\n sequential %s\n concurrent %s",
					seq.CommStats(), con.CommStats())
			}
		})
	}
}

// TestCommStatsReadsDuringConcurrentRound hammers the CommStats accessor
// while a fully-parallel round mutates the accounting; under -race this
// proves reads return consistent snapshots instead of torn values.
func TestCommStatsReadsDuringConcurrentRound(t *testing.T) {
	srv, _ := newThreeClientSystem(t, 0, nil)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := srv.CommStats()
			if st.Total() < 0 || st.Rounds < 0 {
				t.Error("torn CommStats snapshot")
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		if _, _, err := srv.TrainRound(); err != nil {
			close(done)
			wg.Wait()
			t.Fatalf("TrainRound: %v", err)
		}
	}
	close(done)
	wg.Wait()
	if got := srv.CommStats().Rounds; got != 2 {
		t.Fatalf("Rounds = %d want 2", got)
	}
}

func TestFanClientsOrderingAndBound(t *testing.T) {
	const n, limit = 16, 4
	clients := make([]Client, n)
	results := make([]int, n)
	var cur, high int64
	err := fanClients(clients, limit, func(i int, _ Client) error {
		c := atomic.AddInt64(&cur, 1)
		for {
			h := atomic.LoadInt64(&high)
			if c <= h || atomic.CompareAndSwapInt64(&high, h, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		results[i] = i + 1
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatalf("fanClients: %v", err)
	}
	for i, r := range results {
		if r != i+1 {
			t.Fatalf("slot %d holds %d: results must be index-addressed", i, r)
		}
	}
	if high > limit {
		t.Fatalf("observed %d concurrent calls, limit %d", high, limit)
	}
}

func TestFanClientsSequentialStopsAtFirstError(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := fanClients(make([]Client, 5), 1, func(i int, _ Client) error {
		calls++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("sequential path made %d calls after error at index 2", calls)
	}
}

func TestFanClientsFirstErrorCancelsQueuedWork(t *testing.T) {
	var started [4]int32
	dead := errors.New("dead client")
	start := time.Now()
	err := fanClients(make([]Client, 4), 2, func(i int, _ Client) error {
		atomic.StoreInt32(&started[i], 1)
		if i == 0 {
			return dead
		}
		time.Sleep(100 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, dead) {
		t.Fatalf("err = %v", err)
	}
	// The two queued clients must never start: the failing client cancels
	// them before any worker can pick them up.
	if atomic.LoadInt32(&started[2]) != 0 || atomic.LoadInt32(&started[3]) != 0 {
		t.Fatal("queued client work started after the first error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fan-out took %v after first error", elapsed)
	}
}

func TestFanClientsEmptyAndOversizedLimit(t *testing.T) {
	if err := fanClients(nil, 4, func(int, Client) error { return errors.New("never") }); err != nil {
		t.Fatalf("empty fan-out: %v", err)
	}
	var calls int64
	if err := fanClients(make([]Client, 2), 99, func(int, Client) error {
		atomic.AddInt64(&calls, 1)
		return nil
	}); err != nil {
		t.Fatalf("oversized limit: %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}
