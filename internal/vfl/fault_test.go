package vfl

import (
	"errors"
	"io"
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"
)

// newFaultySystem builds a 2-client system where client B sits behind a
// FaultyTransport wrapped in a retry/deadline policy, mirroring the stack a
// real deployment gets from RPCClient. Faults are injected after setup so
// NewServer's Info/Configure round-trips stay clean.
func newFaultySystem(t *testing.T, policy CallPolicy) (*Server, *FaultyTransport) {
	t.Helper()
	ta, tb := twoClientTables(t, 80, 7)
	coord := NewShuffleCoordinator(99)
	ca, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient A: %v", err)
	}
	cb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient B: %v", err)
	}
	faulty := NewFaultyTransport(cb)
	t.Cleanup(faulty.Release)
	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 1
	cfg.DiscSteps = 1
	cfg.BatchSize = 16
	cfg.NoiseDim = 8
	cfg.BlockDim = 24
	srv, err := NewServer([]Client{ca, WithPolicy(faulty, "B", policy)}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv, faulty
}

// TestRetryRecoversFromTransientFaults proves the round survives a flaky
// link: two consecutive transient failures on client B are retried and the
// round completes — with exactly the same weights as a fault-free run,
// because failed calls never reach the client.
func TestRetryRecoversFromTransientFaults(t *testing.T) {
	policy := CallPolicy{MaxAttempts: 3, Backoff: time.Millisecond}
	srv, faulty := newFaultySystem(t, policy)
	clean, _ := newFaultySystem(t, policy)

	faulty.FailNext(2, nil)
	if _, _, err := srv.TrainRound(); err != nil {
		t.Fatalf("TrainRound with 2 transient faults and 3 attempts: %v", err)
	}
	if _, _, err := clean.TrainRound(); err != nil {
		t.Fatalf("fault-free TrainRound: %v", err)
	}
	assertParamsEqual(t, "D^t after retried round", srv.dTop, clean.dTop)
	assertParamsEqual(t, "G^t after retried round", srv.gTop, clean.gTop)
	if faulty.Calls() == 0 {
		t.Fatal("fault injector never saw a call")
	}
}

// TestDeadClientFailsRoundInBoundedTime proves a permanently-failing client
// cannot hang training: retries exhaust, and the round fails quickly with
// an error naming the method and client.
func TestDeadClientFailsRoundInBoundedTime(t *testing.T) {
	srv, faulty := newFaultySystem(t, CallPolicy{
		Timeout:     2 * time.Second,
		MaxAttempts: 2,
		Backoff:     time.Millisecond,
	})
	faulty.FailNext(-1, errors.New("connection reset by peer"))
	start := time.Now()
	_, _, err := srv.TrainRound()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected round failure with a dead client")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("error should carry the transport cause: %v", err)
	}
	if !strings.Contains(err.Error(), "client B") {
		t.Fatalf("error should name the failing client: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dead client stalled the round for %v", elapsed)
	}
}

// TestDroppedCallTripsDeadline proves the per-call deadline: a call that
// hangs (dead peer, connection still open) fails with ErrCallTimeout within
// the budget, and timeouts are deliberately not retried — the hanging
// client may still be processing, so the round must fail rather than
// replay.
func TestDroppedCallTripsDeadline(t *testing.T) {
	srv, faulty := newFaultySystem(t, CallPolicy{
		Timeout:     100 * time.Millisecond,
		MaxAttempts: 3, // would succeed if timeouts were (wrongly) retried
		Backoff:     time.Millisecond,
	})
	faulty.DropNext(1)
	start := time.Now()
	_, _, err := srv.TrainRound()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout, got: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline expiry took %v for a 100ms budget", elapsed)
	}
}

// TestPolicyDoesNotRetryApplicationErrors: protocol-level errors come from
// a healthy transport, so retrying them would just repeat the failure (or
// worse, repeat a side effect). Exactly one attempt must reach the client.
func TestPolicyDoesNotRetryApplicationErrors(t *testing.T) {
	ta, _ := twoClientTables(t, 50, 3)
	lc, err := NewLocalClient(ta, NewShuffleCoordinator(1), 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	faulty := NewFaultyTransport(lc)
	c := WithPolicy(faulty, "A", CallPolicy{MaxAttempts: 5, Backoff: time.Millisecond})
	if _, err := c.Publish(); err == nil {
		t.Fatal("Publish before training must fail")
	}
	if got := faulty.Calls(); got != 1 {
		t.Fatalf("application error was attempted %d times, want 1", got)
	}
}

func TestIsTransientTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"timeout", ErrCallTimeout, false},
		{"wrapped timeout", errors.Join(errors.New("ctx"), ErrCallTimeout), false},
		{"sentinel", ErrTransient, true},
		{"eof", io.EOF, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true},
		{"rpc shutdown", rpc.ErrShutdown, true},
		{"net closed", net.ErrClosed, true},
		{"op error", &net.OpError{Op: "dial", Err: errors.New("refused")}, true},
		{"application", errors.New("vfl: backward before forward"), false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%s) = %v want %v", tc.name, got, tc.want)
		}
	}
}
