package vfl

// gtvwire: a stdlib-only, length-prefixed binary frame protocol that
// replaces net/rpc+gob on the GTV network path. The paper's own cost
// analysis (§4.3.1) makes boundary-payload traffic — generator slices,
// critic logits and gradients every round — the dominant federated cost,
// and the gob path paid for it three times over: ToWire copied every
// matrix before encoding, gob re-described the types per stream, and
// decoding allocated fresh slices outside the tensor free lists.
//
// The wire format is deliberately dumb and byte-exact (golden fixtures in
// testdata/wire pin it):
//
//	frame  := header payload
//	header := payloadLen u32 | version u8 | kind u8 | method u8 | flags u8 | seq u64
//	         (16 bytes, all integers little-endian)
//
//	kind   := 1 request | 2 response | 3 error response
//	flags  := bit0: matrix payloads of this call use float32 elements
//
// Payloads are method-specific sequences of the primitives in
// wirecodec.go. Matrix payloads are written directly from
// tensor.Dense.Data() (no intermediate WireMatrix copy) and decoded into
// tensor.NewPooled buffers, so a round-trip touches each float exactly
// once per direction.
//
// A single persistent connection carries many concurrent calls: requests
// are sequence-numbered, responses may arrive in any order, and a demux
// goroutine on the client routes each response frame to the caller
// waiting on its sequence number (see wireclient.go). The server side
// mirrors net/rpc's concurrency contract: every request is served in its
// own goroutine and responses are written as they complete
// (wireserver.go).

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

const (
	// wireVersion is bumped on any incompatible frame-format change.
	// Version 2: varint-coded shapes/lengths/indices, density-selected
	// matrix layouts (one-hot, bitmap, index-list) and the delta-encoded
	// snapshot transfer.
	wireVersion = 2
	// wireHeaderLen is the fixed frame header size in bytes.
	wireHeaderLen = 16
	// wireMaxPayload bounds a single frame's payload so a corrupt or
	// malicious length prefix cannot make the receiver allocate
	// unboundedly. 1 GiB comfortably fits the paper-scale payloads
	// (batch 500 x width 768 x 8 B = ~3 MB).
	wireMaxPayload = 1 << 30
	// wireMaxSparseElems bounds the dense expansion of the sparse matrix
	// layouts (one-hot, bitmap, index-list), whose byte cost on the wire
	// is far below 8 B/element: without a cap a tiny malicious frame could
	// make the decoder allocate gigabytes. 2^22 elements (32 MiB of
	// float64) is an order of magnitude above the paper-scale payloads;
	// larger matrices simply travel dense, where the payload length itself
	// is the bound.
	wireMaxSparseElems = 1 << 22
)

// Frame kinds.
const (
	wireKindRequest  = 1
	wireKindResponse = 2
	wireKindError    = 3
)

// Frame flags.
const (
	// wireFlagF32 marks every matrix payload of the call as float32.
	wireFlagF32 = 1 << 0
)

// Method ids. The numbering is part of the wire format; append only.
const (
	wireMethodInfo = 1 + iota
	wireMethodConfigure
	wireMethodSampleCV
	wireMethodSampleCVFixed
	wireMethodForwardSynthetic
	wireMethodForwardReal
	wireMethodBackwardDisc
	wireMethodBackwardGen
	wireMethodEndRound
	wireMethodGenerateRows
	wireMethodPublish
	wireMethodSnapshot
	wireMethodRestore
)

// wireNumMethods sizes per-method accounting arrays: method ids are dense
// from 1, so the highest id plus one indexes them all (index 0 unused).
const wireNumMethods = wireMethodRestore + 1

// wireMethodName names a method id in error messages.
func wireMethodName(m byte) string {
	switch m {
	case wireMethodInfo:
		return "Info"
	case wireMethodConfigure:
		return "Configure"
	case wireMethodSampleCV:
		return "SampleCV"
	case wireMethodSampleCVFixed:
		return "SampleCVFixed"
	case wireMethodForwardSynthetic:
		return "ForwardSynthetic"
	case wireMethodForwardReal:
		return "ForwardReal"
	case wireMethodBackwardDisc:
		return "BackwardDisc"
	case wireMethodBackwardGen:
		return "BackwardGen"
	case wireMethodEndRound:
		return "EndRound"
	case wireMethodGenerateRows:
		return "GenerateRows"
	case wireMethodPublish:
		return "Publish"
	case wireMethodSnapshot:
		return "Snapshot"
	case wireMethodRestore:
		return "Restore"
	}
	return fmt.Sprintf("method#%d", m)
}

// wireHeader is the decoded fixed-size frame prefix.
type wireHeader struct {
	payloadLen uint32
	version    byte
	kind       byte
	method     byte
	flags      byte
	seq        uint64
}

// put serializes the header into dst[:wireHeaderLen].
func (h wireHeader) put(dst []byte) {
	binary.LittleEndian.PutUint32(dst[0:4], h.payloadLen)
	dst[4] = h.version
	dst[5] = h.kind
	dst[6] = h.method
	dst[7] = h.flags
	binary.LittleEndian.PutUint64(dst[8:16], h.seq)
}

// parseWireHeader decodes and validates a frame header.
func parseWireHeader(src []byte) (wireHeader, error) {
	h := wireHeader{
		payloadLen: binary.LittleEndian.Uint32(src[0:4]),
		version:    src[4],
		kind:       src[5],
		method:     src[6],
		flags:      src[7],
		seq:        binary.LittleEndian.Uint64(src[8:16]),
	}
	if h.version != wireVersion {
		return h, fmt.Errorf("gtvwire: unsupported frame version %d", h.version)
	}
	if h.kind != wireKindRequest && h.kind != wireKindResponse && h.kind != wireKindError {
		return h, fmt.Errorf("gtvwire: invalid frame kind %d", h.kind)
	}
	if h.payloadLen > wireMaxPayload {
		return h, fmt.Errorf("gtvwire: frame payload %d exceeds limit %d", h.payloadLen, wireMaxPayload)
	}
	return h, nil
}

// readWireFrame reads one full frame, returning the header and payload.
// The payload buffer comes from the shared frame-buffer free list; the
// caller must hand it back with putWireBuf once decoded.
func readWireFrame(r io.Reader) (wireHeader, []byte, error) {
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wireHeader{}, nil, err
	}
	h, err := parseWireHeader(hdr[:])
	if err != nil {
		return h, nil, err
	}
	buf := getWireBuf(int(h.payloadLen))
	if _, err := io.ReadFull(r, buf); err != nil {
		putWireBuf(buf)
		return h, nil, fmt.Errorf("gtvwire: short payload for %s frame: %w", wireMethodName(h.method), err)
	}
	return h, buf, nil
}

// wireBufPool recycles payload buffers between frames. Buffers are stored
// at full capacity and re-sliced per request; oversize requests fall
// through to a plain allocation.
var wireBufPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// getWireBuf returns a length-n buffer, recycled when possible.
func getWireBuf(n int) []byte {
	b := wireBufPool.Get().([]byte)
	if cap(b) < n {
		// Hand the too-small buffer back so the pool stays warm for
		// smaller frames.
		wireBufPool.Put(b)
		return make([]byte, n)
	}
	return b[:n]
}

// putWireBuf hands a buffer back to the free list.
func putWireBuf(b []byte) {
	if cap(b) > wireMaxPayload {
		return
	}
	wireBufPool.Put(b[:0])
}
