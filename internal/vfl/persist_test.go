package vfl

import (
	"bytes"
	"testing"
)

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	// Train a system briefly, persist every party, restore into a twin
	// system, and check the restored weights are identical.
	srvA, clientsA := newTestSystem(t, Plan{DiscServer: 1, DiscClient: 1, GenServer: 1, GenClient: 1}, 150, false)
	if _, _, err := srvA.TrainRound(); err != nil {
		t.Fatalf("TrainRound: %v", err)
	}

	var top bytes.Buffer
	if err := srvA.SaveTopModels(&top); err != nil {
		t.Fatalf("SaveTopModels: %v", err)
	}
	bottoms := make([]*bytes.Buffer, len(clientsA))
	for i, c := range clientsA {
		bottoms[i] = &bytes.Buffer{}
		if err := c.SaveModels(bottoms[i]); err != nil {
			t.Fatalf("SaveModels client %d: %v", i, err)
		}
	}

	srvB, clientsB := newTestSystem(t, Plan{DiscServer: 1, DiscClient: 1, GenServer: 1, GenClient: 1}, 150, false)
	if err := srvB.LoadTopModels(&top); err != nil {
		t.Fatalf("LoadTopModels: %v", err)
	}
	for i, c := range clientsB {
		if err := c.LoadModels(bottoms[i]); err != nil {
			t.Fatalf("LoadModels client %d: %v", i, err)
		}
	}
	// Restored parameters must match the originals exactly.
	for i := range clientsA {
		pa := clientsA[i].gen.Params()
		pb := clientsB[i].gen.Params()
		for k := range pa {
			if !pa[k].Data().Equal(pb[k].Data()) {
				t.Fatalf("client %d generator param %d differs after restore", i, k)
			}
		}
	}
	pa := srvA.gTop.Params()
	pb := srvB.gTop.Params()
	for k := range pa {
		if !pa[k].Data().Equal(pb[k].Data()) {
			t.Fatalf("top generator param %d differs after restore", k)
		}
	}
}

func TestLoadModelsWrongArchitecture(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	srvA, clientsA := newTestSystem(t, Plan{DiscServer: 2, GenClient: 2}, 150, false)
	_ = srvA
	var buf bytes.Buffer
	if err := clientsA[0].SaveModels(&buf); err != nil {
		t.Fatalf("SaveModels: %v", err)
	}
	// A client with a different plan cannot load the snapshot.
	_, clientsB := newTestSystem(t, Plan{DiscServer: 1, DiscClient: 1, GenServer: 1, GenClient: 1}, 150, false)
	if err := clientsB[0].LoadModels(&buf); err == nil {
		t.Fatal("expected architecture mismatch error")
	}
}

func TestSaveModelsUnconfigured(t *testing.T) {
	ta, _ := twoClientTables(t, 30, 1)
	c, err := NewLocalClient(ta, NewShuffleCoordinator(1), 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	var buf bytes.Buffer
	if err := c.SaveModels(&buf); err == nil {
		t.Fatal("expected not-configured error")
	}
	if err := c.LoadModels(&buf); err == nil {
		t.Fatal("expected not-configured error")
	}
}
