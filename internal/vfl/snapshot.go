package vfl

// Checkpoint/restore for the federated trainer. A server checkpoint is one
// gtvsnap file holding the server's own trajectory state — round counter,
// RNG stream, top-model weights, both Adam optimizers, communication
// accounting — plus one opaque blob per client, fetched over the Client
// interface's Snapshot method (a gtvwire round trip for remote clients).
// Each client blob is itself a complete KindClient snapshot of that
// client's bottom models, optimizer moments, RNG stream and shuffle
// progress, and crucially NOT its table, encoded matrix or CV sampler:
// those are deterministic functions of (table, seed) rebuilt by
// NewLocalClient, so the privacy boundary is preserved — the blob the
// server stores carries nothing the protocol has not already sanctioned —
// and checkpoints stay model-sized. Row order, the one piece of data-side
// state training mutates, is reconstructed on restore by replaying the
// seed-derived end-of-round permutations locally (see LocalClient.Restore).

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	ag "repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/snap"
	"repro/internal/tensor"
)

// Section ids within a KindClient snapshot. Append only; bump snap.Version
// on any payload change.
const (
	secLMeta     = 1
	secLRNG      = 2
	secLGen      = 3
	secLDisc     = 4
	secLGenOpt   = 5
	secLDiscOpt  = 6
	secLModelRNG = 7
)

// Section ids within a KindServer snapshot. Append only; bump snap.Version
// on any payload change.
const (
	secSMeta     = 1
	secSRNG      = 2
	secSGTop     = 3
	secSDTop     = 4
	secSDS       = 5
	secSGOpt     = 6
	secSDOpt     = 7
	secSComm     = 8
	secSClient   = 9 // repeated: one per client, in client order
	secSModelRNG = 10
	secSTopKEF   = 11 // GradTopK error-feedback accumulators
)

// clientState names everything a client checkpoint blob captures. The
// snapstate lint rule fails the build if a field is added here without
// being wired through both encodeClient and decodeClient.
//
//snap:state
type clientState struct {
	// shuffles and pubCount are replay counters: together with the
	// coordinator's seed derivations they determine the current row order
	// and the publication stream position without serializing either.
	shuffles int
	pubCount int
	// dataWidth and sliceWidth pin the encoder layout and the configured
	// generator split the weights assume.
	dataWidth  int
	sliceWidth int
	rng        *rng.Rand
	// modelRng feeds the bottom discriminator's dropout masks; its stream
	// position is trajectory state like rng's.
	modelRng *rng.Rand
	gen      *nn.Sequential
	disc     *nn.Sequential
	genOpt   nn.AdamState
	discOpt  nn.AdamState
}

// encode serializes the client state into a finished KindClient image.
func (st *clientState) encode(b *snap.Builder) []byte {
	b.Section(secLMeta, func(e *snap.Enc) {
		e.I64(int64(st.shuffles))
		e.I64(int64(st.pubCount))
		e.I64(int64(st.dataWidth))
		e.I64(int64(st.sliceWidth))
	})
	b.Section(secLRNG, func(e *snap.Enc) {
		s := st.rng.State()
		e.U64s(s[:])
	})
	b.Section(secLModelRNG, func(e *snap.Enc) {
		s := st.modelRng.State()
		e.U64s(s[:])
	})
	b.Section(secLGen, func(e *snap.Enc) { nn.EncodeParams(e, st.gen) })
	b.Section(secLDisc, func(e *snap.Enc) { nn.EncodeParams(e, st.disc) })
	b.Section(secLGenOpt, func(e *snap.Enc) { nn.EncodeAdamState(e, st.genOpt) })
	b.Section(secLDiscOpt, func(e *snap.Enc) { nn.EncodeAdamState(e, st.discOpt) })
	return b.Bytes()
}

// decode restores the client state from a parsed KindClient snapshot,
// writing weights and RNG state into the live objects the fields
// reference.
func (st *clientState) decode(s *snap.Snapshot) error {
	if s.Kind != snap.KindClient {
		return fmt.Errorf("gtvsnap: snapshot kind %d is not a client checkpoint", s.Kind)
	}
	d, err := s.Need(secLMeta, "meta")
	if err != nil {
		return err
	}
	shuffles := int(d.I64())
	pubCount := int(d.I64())
	dataW := int(d.I64())
	sliceW := int(d.I64())
	if err := d.Finish(); err != nil {
		return err
	}
	if shuffles < 0 || pubCount < 0 {
		return fmt.Errorf("gtvsnap: negative replay counters %d/%d", shuffles, pubCount)
	}
	if dataW != st.dataWidth || sliceW != st.sliceWidth {
		return fmt.Errorf("gtvsnap: checkpoint widths %d/%d do not match configured %d/%d", dataW, sliceW, st.dataWidth, st.sliceWidth)
	}
	st.shuffles = shuffles
	st.pubCount = pubCount

	if d, err = s.Need(secLRNG, "rng"); err != nil {
		return err
	}
	if err := decodeRNG(d, st.rng); err != nil {
		return err
	}
	if d, err = s.Need(secLModelRNG, "model rng"); err != nil {
		return err
	}
	if err := decodeRNG(d, st.modelRng); err != nil {
		return err
	}

	if d, err = s.Need(secLGen, "generator"); err != nil {
		return err
	}
	if err := restoreLayer(d, st.gen); err != nil {
		return err
	}
	if d, err = s.Need(secLDisc, "discriminator"); err != nil {
		return err
	}
	if err := restoreLayer(d, st.disc); err != nil {
		return err
	}

	if d, err = s.Need(secLGenOpt, "generator optimizer"); err != nil {
		return err
	}
	st.genOpt = nn.DecodeAdamState(d)
	if err := d.Finish(); err != nil {
		return err
	}
	if d, err = s.Need(secLDiscOpt, "discriminator optimizer"); err != nil {
		return err
	}
	st.discOpt = nn.DecodeAdamState(d)
	return d.Finish()
}

// decodeRNG reads a four-word xoshiro state section into r.
func decodeRNG(d *snap.Dec, r *rng.Rand) error {
	words := d.U64s()
	if err := d.Finish(); err != nil {
		return err
	}
	var rs rng.State
	if len(words) != len(rs) {
		return fmt.Errorf("gtvsnap: rng section holds %d state words, want %d", len(words), len(rs))
	}
	copy(rs[:], words)
	r.SetState(rs)
	return nil
}

// restoreLayer decodes one parameter section into a live layer.
func restoreLayer(d *snap.Dec, l nn.Layer) error {
	if err := nn.RestoreParams(d, l); err != nil {
		return err
	}
	return d.Finish()
}

// snapState gathers the live client into a state view.
func (c *LocalClient) snapState() *clientState {
	return &clientState{
		shuffles:   c.shuffles,
		pubCount:   c.pubCount,
		dataWidth:  c.transformer.Width(),
		sliceWidth: c.setup.SliceWidth,
		rng:        c.rng,
		modelRng:   c.modelRng,
		gen:        c.gen,
		disc:       c.disc,
	}
}

// Snapshot implements Client: it serializes the bottom-model trajectory
// state as a KindClient snapshot image. The table, encoded matrix and CV
// sampler are deliberately absent — the blob crosses to the server.
func (c *LocalClient) Snapshot() ([]byte, error) {
	if err := c.configured(); err != nil {
		return nil, err
	}
	st := c.snapState()
	st.genOpt = c.genOpt.StateFor(c.gen.Params())
	st.discOpt = c.discOpt.StateFor(c.disc.Params())
	return st.encode(snap.NewBuilder(snap.KindClient)), nil
}

// Restore implements Client: it reinstates a Snapshot blob into a freshly
// constructed, already-configured client over the same data and seed. Row
// order is rebuilt by replaying the checkpointed number of end-of-round
// shuffles — the per-round permutations derive from the coordinator's
// shared secret, so composing them locally reproduces exactly the order
// the original run had at checkpoint time, one ShuffleRows instead of one
// per round. On error the client state is unspecified; rebuild before
// retrying.
func (c *LocalClient) Restore(state []byte) error {
	if err := c.configured(); err != nil {
		return err
	}
	if c.shuffles != 0 || c.pubCount != 0 {
		return errors.New("vfl: Restore into a client that has already trained")
	}
	s, err := snap.Decode(state)
	if err != nil {
		return err
	}
	st := c.snapState()
	if err := st.decode(s); err != nil {
		return err
	}
	if err := c.genOpt.Restore(c.gen.Params(), st.genOpt); err != nil {
		return err
	}
	if err := c.discOpt.Restore(c.disc.Params(), st.discOpt); err != nil {
		return err
	}
	if st.shuffles > 0 {
		rows := c.table.Rows()
		comp := make([]int, rows)
		for k := range comp {
			comp[k] = k
		}
		next := make([]int, rows)
		for r := 0; r < st.shuffles; r++ {
			perm := rand.New(rand.NewSource(c.coord.SeedForRound(r))).Perm(rows)
			// Composing left-to-right: after this round, position k holds
			// what the previous composite put at perm[k] — the same motion
			// EndRound's ShuffleRows applies one round at a time.
			for k := range next {
				next[k] = comp[perm[k]]
			}
			comp, next = next, comp
		}
		c.table = c.table.ShuffleRows(comp)
		if err := c.data.Shuffle(comp); err != nil {
			return fmt.Errorf("vfl: shuffling encoded data on restore: %w", err)
		}
		if err := c.sampler.Reindex(comp); err != nil {
			return fmt.Errorf("vfl: reindexing CV sampler on restore: %w", err)
		}
	}
	c.shuffles = st.shuffles
	c.pubCount = st.pubCount
	return nil
}

// serverState names everything a server checkpoint captures beyond the
// per-client blobs. The snapstate lint rule fails the build if a field is
// added here without being wired through both encode and decode.
//
//snap:state
type serverState struct {
	// cfg is fingerprinted (Rounds and Parallelism excepted: extending
	// training and changing the fan-out bound are both trajectory-neutral)
	// and verified on restore.
	cfg Config
	// rows, cvWidth and nclients pin the federation layout the weights and
	// blobs assume.
	rows     int
	cvWidth  int
	nclients int
	round    int
	rng      *rng.Rand
	// modelRng feeds the top discriminator's dropout masks; its stream
	// position is trajectory state like rng's.
	modelRng *rng.Rand
	gTop     *nn.Sequential
	dTop     *nn.Sequential
	// dS is the conditional-vector filter; nil when the federation has no
	// categorical spans (cvWidth 0), and that nilness round-trips.
	dS   *nn.Sequential
	gOpt nn.AdamState
	dOpt nn.AdamState
	comm CommStats
	// topkEF holds the GradTopK error-feedback accumulators (nil when the
	// mode is off); undrained residuals are trajectory state, so resumed
	// topk runs replay byte-identically.
	topkEF [][3]*tensor.Dense
	// clients holds one opaque KindClient blob per client, in client
	// order.
	clients [][]byte
}

// encodeServerFingerprint writes the trajectory-relevant hyper-parameters.
// Rounds is excluded (resume may extend training) and so is Parallelism
// (training is bit-identical across fan-out bounds by construction).
func encodeServerFingerprint(e *snap.Enc, cfg Config) {
	e.I64(int64(cfg.Plan.DiscServer))
	e.I64(int64(cfg.Plan.DiscClient))
	e.I64(int64(cfg.Plan.GenServer))
	e.I64(int64(cfg.Plan.GenClient))
	e.I64(int64(cfg.DiscSteps))
	e.I64(int64(cfg.BatchSize))
	e.I64(int64(cfg.NoiseDim))
	e.I64(int64(cfg.BlockDim))
	e.I64(int64(cfg.GenBlockDim))
	e.F64(cfg.LR)
	e.I64(cfg.Seed)
	e.I64(int64(cfg.Pac))
	e.F64(cfg.DPLogitNoise)
	e.Bool(cfg.FaithfulRealPass)
	e.F64(cfg.GradTopK)
}

// checkServerFingerprint verifies a fingerprint written by
// encodeServerFingerprint against the live configuration.
func checkServerFingerprint(d *snap.Dec, cfg Config) error {
	type field struct {
		name      string
		have, got float64
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	fields := []field{
		{"plan-disc-server", float64(cfg.Plan.DiscServer), float64(d.I64())},
		{"plan-disc-client", float64(cfg.Plan.DiscClient), float64(d.I64())},
		{"plan-gen-server", float64(cfg.Plan.GenServer), float64(d.I64())},
		{"plan-gen-client", float64(cfg.Plan.GenClient), float64(d.I64())},
		{"disc-steps", float64(cfg.DiscSteps), float64(d.I64())},
		{"batch", float64(cfg.BatchSize), float64(d.I64())},
		{"noise-dim", float64(cfg.NoiseDim), float64(d.I64())},
		{"block-dim", float64(cfg.BlockDim), float64(d.I64())},
		{"gen-block-dim", float64(cfg.GenBlockDim), float64(d.I64())},
		{"lr", cfg.LR, d.F64()},
		{"seed", float64(cfg.Seed), float64(d.I64())},
		{"pac", float64(cfg.Pac), float64(d.I64())},
		{"dp-noise", cfg.DPLogitNoise, d.F64()},
		{"faithful-real-pass", b2f(cfg.FaithfulRealPass), b2f(d.Bool())},
		{"grad-topk", cfg.GradTopK, d.F64()},
	}
	if err := d.Err(); err != nil {
		return err
	}
	for _, f := range fields {
		// Exact comparison is the point: any drift in a trajectory-relevant
		// hyper-parameter invalidates the checkpoint.
		//lint:ignore floateq fingerprint fields must match bit-exactly; approximate equality would mask a config mismatch
		if f.have != f.got {
			return fmt.Errorf("gtvsnap: checkpoint %s %v does not match configured %v", f.name, f.got, f.have)
		}
	}
	return nil
}

// encode serializes the server state into a finished KindServer image.
func (st *serverState) encode(b *snap.Builder) []byte {
	b.Section(secSMeta, func(e *snap.Enc) {
		e.I64(int64(st.round))
		e.I64(int64(st.rows))
		e.I64(int64(st.cvWidth))
		e.I64(int64(st.nclients))
		encodeServerFingerprint(e, st.cfg)
	})
	b.Section(secSRNG, func(e *snap.Enc) {
		s := st.rng.State()
		e.U64s(s[:])
	})
	b.Section(secSModelRNG, func(e *snap.Enc) {
		s := st.modelRng.State()
		e.U64s(s[:])
	})
	b.Section(secSGTop, func(e *snap.Enc) { nn.EncodeParams(e, st.gTop) })
	b.Section(secSDTop, func(e *snap.Enc) { nn.EncodeParams(e, st.dTop) })
	b.Section(secSDS, func(e *snap.Enc) {
		if st.dS == nil {
			e.Bool(false)
			return
		}
		e.Bool(true)
		nn.EncodeParams(e, st.dS)
	})
	b.Section(secSGOpt, func(e *snap.Enc) { nn.EncodeAdamState(e, st.gOpt) })
	b.Section(secSDOpt, func(e *snap.Enc) { nn.EncodeAdamState(e, st.dOpt) })
	b.Section(secSComm, func(e *snap.Enc) {
		e.I64(st.comm.GenSlicesSent)
		e.I64(st.comm.DiscLogitsReceived)
		e.I64(st.comm.GradsSent)
		e.I64(st.comm.SliceGradsReceived)
		e.I64(st.comm.CVBytes)
		e.I64(int64(st.comm.Rounds))
		e.I64(st.comm.WireBytes)
		e.U32(uint32(len(st.comm.WireBytesByMethod)))
		for _, v := range st.comm.WireBytesByMethod {
			e.I64(v)
		}
	})
	b.Section(secSTopKEF, func(e *snap.Enc) {
		e.U32(uint32(len(st.topkEF)))
		for i := range st.topkEF {
			for _, m := range st.topkEF[i] {
				e.Matrix(m)
			}
		}
	})
	for i, blob := range st.clients {
		b.Section(secSClient, func(e *snap.Enc) {
			e.U32(uint32(i))
			e.Bytes(blob)
		})
	}
	return b.Bytes()
}

// decode restores the server state from a parsed KindServer snapshot,
// writing weights and RNG state into the live objects the fields
// reference. Client blobs land in st.clients for the caller to fan out.
func (st *serverState) decode(s *snap.Snapshot) error {
	if s.Kind != snap.KindServer {
		return fmt.Errorf("gtvsnap: snapshot kind %d is not a server checkpoint", s.Kind)
	}
	d, err := s.Need(secSMeta, "meta")
	if err != nil {
		return err
	}
	round := int(d.I64())
	rows := int(d.I64())
	cvW := int(d.I64())
	ncl := int(d.I64())
	if err := checkServerFingerprint(d, st.cfg); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if rows != st.rows || cvW != st.cvWidth || ncl != st.nclients {
		return fmt.Errorf("gtvsnap: checkpoint federation %d rows/%d cv/%d clients does not match live %d/%d/%d",
			rows, cvW, ncl, st.rows, st.cvWidth, st.nclients)
	}
	if round < 0 {
		return fmt.Errorf("gtvsnap: negative round counter %d", round)
	}
	st.round = round

	if d, err = s.Need(secSRNG, "rng"); err != nil {
		return err
	}
	if err := decodeRNG(d, st.rng); err != nil {
		return err
	}
	if d, err = s.Need(secSModelRNG, "model rng"); err != nil {
		return err
	}
	if err := decodeRNG(d, st.modelRng); err != nil {
		return err
	}

	if d, err = s.Need(secSGTop, "top generator"); err != nil {
		return err
	}
	if err := restoreLayer(d, st.gTop); err != nil {
		return err
	}
	if d, err = s.Need(secSDTop, "top discriminator"); err != nil {
		return err
	}
	if err := restoreLayer(d, st.dTop); err != nil {
		return err
	}
	if d, err = s.Need(secSDS, "cv filter"); err != nil {
		return err
	}
	hasDS := d.Bool()
	if hasDS != (st.dS != nil) {
		return fmt.Errorf("gtvsnap: checkpoint cv-filter presence %v does not match live %v", hasDS, st.dS != nil)
	}
	if hasDS {
		if err := restoreLayer(d, st.dS); err != nil {
			return err
		}
	} else if err := d.Finish(); err != nil {
		return err
	}

	if d, err = s.Need(secSGOpt, "generator optimizer"); err != nil {
		return err
	}
	st.gOpt = nn.DecodeAdamState(d)
	if err := d.Finish(); err != nil {
		return err
	}
	if d, err = s.Need(secSDOpt, "discriminator optimizer"); err != nil {
		return err
	}
	st.dOpt = nn.DecodeAdamState(d)
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = s.Need(secSComm, "comm stats"); err != nil {
		return err
	}
	st.comm = CommStats{
		GenSlicesSent:      d.I64(),
		DiscLogitsReceived: d.I64(),
		GradsSent:          d.I64(),
		SliceGradsReceived: d.I64(),
		CVBytes:            d.I64(),
		Rounds:             int(d.I64()),
		WireBytes:          d.I64(),
	}
	nmethods := int(d.U32())
	if nmethods != wireNumMethods {
		return fmt.Errorf("gtvsnap: checkpoint tallies %d wire methods, this build has %d", nmethods, wireNumMethods)
	}
	for i := range st.comm.WireBytesByMethod {
		st.comm.WireBytesByMethod[i] = d.I64()
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = s.Need(secSTopKEF, "top-k error feedback"); err != nil {
		return err
	}
	nef := int(d.U32())
	if nef != len(st.topkEF) {
		return fmt.Errorf("gtvsnap: checkpoint holds %d top-k accumulators, live server has %d (grad-topk fingerprint should have caught this)", nef, len(st.topkEF))
	}
	for i := range st.topkEF {
		for j := range st.topkEF[i] {
			st.topkEF[i][j] = d.Matrix()
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}

	blobs := s.All(secSClient)
	if len(blobs) != st.nclients {
		return fmt.Errorf("gtvsnap: checkpoint holds %d client blobs for %d clients", len(blobs), st.nclients)
	}
	st.clients = make([][]byte, st.nclients)
	for i, payload := range blobs {
		cd := snap.NewDec(payload)
		idx := int(cd.U32())
		blob := cd.Bytes()
		if err := cd.Finish(); err != nil {
			return err
		}
		// Blob sections are written in client order; the embedded index
		// catches files assembled from mismatched checkpoints.
		if idx != i {
			return fmt.Errorf("gtvsnap: client blob %d carries index %d", i, idx)
		}
		st.clients[i] = blob
	}
	return nil
}

// snapState gathers the live server into a state view.
func (s *Server) snapState() *serverState {
	return &serverState{
		cfg:      s.cfg,
		rows:     s.rows,
		cvWidth:  s.cvWidth,
		nclients: len(s.clients),
		round:    s.round,
		rng:      s.rng,
		modelRng: s.modelRng,
		gTop:     s.gTop,
		dTop:     s.dTop,
		dS:       s.dS,
		topkEF:   s.topkEF,
	}
}

// serverDiscParams returns the parameter list the critic optimizer steps
// over: D^t plus, when present, the conditional-vector filter D^s — the
// same concatenation discStep builds, which is what makes the optimizer
// state restorable against it.
func (s *Server) serverDiscParams() []*ag.Value {
	params := s.dTop.Params()
	if s.dS != nil {
		params = append(params, s.dS.Params()...)
	}
	return params
}

// Snapshot serializes the server's complete trajectory state, fetching
// one state blob from every client over the Client interface. Snapshot
// traffic is bookkeeping, not protocol, so it does not enter the
// communication accounting it captures.
func (s *Server) Snapshot() ([]byte, error) {
	st := s.snapState()
	st.gOpt = s.gOpt.StateFor(s.gTop.Params())
	st.dOpt = s.dOpt.StateFor(s.serverDiscParams())
	st.comm = s.comm.snapshot()
	st.clients = make([][]byte, len(s.clients))
	err := s.fanOut(func(i int, c Client) error {
		blob, err := c.Snapshot()
		if err != nil {
			return fmt.Errorf("client %d snapshot: %w", i, err)
		}
		st.clients[i] = blob
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st.encode(snap.NewBuilder(snap.KindServer)), nil
}

// Restore reinstates a snapshot taken by Snapshot into a server built by
// NewServer over equivalently constructed clients (same tables, same
// seeds, same configuration). Every client receives its blob back over
// the Client interface. On error the federation state is unspecified;
// rebuild before retrying.
func (s *Server) Restore(data []byte) error {
	img, err := snap.Decode(data)
	if err != nil {
		return err
	}
	st := s.snapState()
	if err := st.decode(img); err != nil {
		return err
	}
	if err := s.gOpt.Restore(s.gTop.Params(), st.gOpt); err != nil {
		return err
	}
	if err := s.dOpt.Restore(s.serverDiscParams(), st.dOpt); err != nil {
		return err
	}
	s.comm.restore(st.comm)
	s.topkEF = st.topkEF
	err = s.fanOut(func(i int, c Client) error {
		if err := c.Restore(st.clients[i]); err != nil {
			return fmt.Errorf("client %d restore: %w", i, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.round = st.round
	return nil
}

// Rounds returns the number of completed training rounds.
func (s *Server) Rounds() int { return s.round }

// SaveCheckpoint atomically writes the current federation state into dir,
// named by the completed round count, and returns the file path.
func (s *Server) SaveCheckpoint(dir string) (string, error) {
	data, err := s.Snapshot()
	if err != nil {
		return "", err
	}
	path := snap.CheckpointPath(dir, s.round)
	if err := snap.WriteFileAtomic(path, data); err != nil {
		return "", err
	}
	return path, nil
}

// RestoreLatestCheckpoint finds the newest checkpoint in dir and restores
// it across the federation. ok is false when dir holds no checkpoint (the
// caller trains from scratch).
func (s *Server) RestoreLatestCheckpoint(dir string) (rounds int, ok bool, err error) {
	path, _, ok, err := snap.LatestCheckpoint(dir)
	if err != nil || !ok {
		return 0, ok, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, true, err
	}
	if err := s.Restore(data); err != nil {
		return 0, true, fmt.Errorf("vfl: restoring %s: %w", path, err)
	}
	return s.round, true, nil
}
