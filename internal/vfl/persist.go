package vfl

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/nn"
)

// SaveModels writes the client's trained bottom models (generator then
// discriminator) to w. The client must be configured.
func (c *LocalClient) SaveModels(w io.Writer) error {
	if err := c.configured(); err != nil {
		return err
	}
	if err := nn.SaveParams(w, c.gen); err != nil {
		return fmt.Errorf("vfl: saving bottom generator: %w", err)
	}
	if err := nn.SaveParams(w, c.disc); err != nil {
		return fmt.Errorf("vfl: saving bottom discriminator: %w", err)
	}
	return nil
}

// LoadModels restores bottom models saved by SaveModels into a client
// configured with the same Setup.
func (c *LocalClient) LoadModels(r io.Reader) error {
	if err := c.configured(); err != nil {
		return err
	}
	if err := nn.LoadParams(r, c.gen); err != nil {
		return fmt.Errorf("vfl: loading bottom generator: %w", err)
	}
	if err := nn.LoadParams(r, c.disc); err != nil {
		return fmt.Errorf("vfl: loading bottom discriminator: %w", err)
	}
	return nil
}

// SaveTopModels writes the server's top models (G^t, D^t and, when
// conditional vectors exist, D^s) to w.
func (s *Server) SaveTopModels(w io.Writer) error {
	if s.gTop == nil || s.dTop == nil {
		return errors.New("vfl: server not initialized")
	}
	if err := nn.SaveParams(w, s.gTop); err != nil {
		return fmt.Errorf("vfl: saving top generator: %w", err)
	}
	if err := nn.SaveParams(w, s.dTop); err != nil {
		return fmt.Errorf("vfl: saving top discriminator: %w", err)
	}
	if s.dS != nil {
		if err := nn.SaveParams(w, s.dS); err != nil {
			return fmt.Errorf("vfl: saving CV filter: %w", err)
		}
	}
	return nil
}

// LoadTopModels restores top models saved by SaveTopModels into a server
// built over the same client federation and config.
func (s *Server) LoadTopModels(r io.Reader) error {
	if s.gTop == nil || s.dTop == nil {
		return errors.New("vfl: server not initialized")
	}
	if err := nn.LoadParams(r, s.gTop); err != nil {
		return fmt.Errorf("vfl: loading top generator: %w", err)
	}
	if err := nn.LoadParams(r, s.dTop); err != nil {
		return fmt.Errorf("vfl: loading top discriminator: %w", err)
	}
	if s.dS != nil {
		if err := nn.LoadParams(r, s.dS); err != nil {
			return fmt.Errorf("vfl: loading CV filter: %w", err)
		}
	}
	return nil
}
