package vfl

import (
	"errors"
	"fmt"
	"math/rand"

	ag "repro/internal/autograd"
	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/gan"
	"repro/internal/gmm"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Phase distinguishes the two halves of a training round.
type Phase int

// Training phases.
const (
	// PhaseDiscriminator trains the critic; the generator path is detached.
	PhaseDiscriminator Phase = iota + 1
	// PhaseGenerator trains the generator through the frozen critic.
	PhaseGenerator
)

// ClientInfo is the metadata a client discloses during setup. None of it is
// row-level data: only schema-shape quantities the protocol needs.
type ClientInfo struct {
	// Features is the number of raw columns the client owns (drives P_r).
	Features int
	// EncodedWidth is the width of the client's encoded representation.
	EncodedWidth int
	// CVWidth is the width of the client's local conditional vector.
	CVWidth int
	// Rows is the number of aligned rows.
	Rows int
}

// Setup carries the architecture parameters the server assigns a client
// once the ratio vector is known.
type Setup struct {
	Plan Plan
	// SliceWidth is the width of the generator slice routed to this client.
	SliceWidth int
	// GenBlockWidth is this client's share of the generator block width.
	GenBlockWidth int
	// DiscWidth is the width of this client's discriminator logits (its
	// share of the discriminator block width).
	DiscWidth int
	// LR is the Adam learning rate.
	LR float64
	// Seed initializes the client's local weights and Gumbel noise.
	Seed int64
}

// Client is the protocol surface the GTV server drives. LocalClient
// implements it in-process; RPCClient proxies it over the network.
//
// Concurrency contract: the server fans protocol steps out across
// clients, so distinct Client instances are driven from distinct
// goroutines — but the server serializes the calls it makes to any single
// client (a client never sees two of its own methods in flight at once).
// An implementation must therefore tolerate its methods being invoked
// from changing goroutines over time; the server's fan-out join provides
// the happens-before edge between consecutive calls. Any state shared
// BETWEEN client instances (e.g. the ShuffleCoordinator) must be
// immutable or internally synchronized. LocalClient meets the contract
// because all its mutable state is per-instance and the coordinator is
// immutable; RPCClient meets it because net/rpc clients are safe for
// concurrent use and its reconnect path is mutex-guarded.
// Every data-returning Client method is a privacy sink: its results cross
// to the server, so privflow verifies nothing source-tainted reaches them
// unsanitized.
type Client interface {
	// Info returns schema-shape metadata.
	//privacy:sink schema metadata visible to the server
	Info() (ClientInfo, error)
	// Configure builds the client's bottom models for the assigned widths.
	Configure(Setup) error
	// SampleCV draws a conditional-vector batch with matching row indices
	// from the client's local data (the client acts as contributor p).
	// synthesis selects raw-frequency category sampling (generation time)
	// instead of log-frequency sampling (training time).
	//privacy:sink conditional vectors and idx_p sent to the server
	SampleCV(batch int, synthesis bool) (*condvec.Batch, error)
	// SampleCVFixed draws a batch whose every CV selects the given category
	// of the client's categorical span spanIdx (conditional synthesis).
	//privacy:sink conditioned CV batch and idx_p sent to the server
	SampleCVFixed(batch, spanIdx, category int) (*condvec.Batch, error)
	// ForwardSynthetic routes a generator slice through G_i^b (+output
	// activations) and D_i^b, returning the intermediate critic logits.
	//privacy:sink critic logits returned to the server
	//shape: in(B,W) out(B,K)
	ForwardSynthetic(slice *tensor.Dense, phase Phase) (*tensor.Dense, error)
	// ForwardReal passes real rows through D_i^b. A nil idx means the full
	// local table (the paper's privacy-preserving path for clients that did
	// not contribute the CV; the server row-selects the logits).
	//privacy:sink real-branch critic logits returned to the server
	//shape: out(R,K)
	ForwardReal(idx []int) (*tensor.Dense, error)
	// BackwardDisc applies critic gradients (w.r.t. the logits returned by
	// the last ForwardSynthetic/ForwardReal) and updates D_i^b.
	//
	//shape: in(Bs,K) in(Br,K2)
	BackwardDisc(gradSynth, gradReal *tensor.Dense) error
	// BackwardGen applies generator gradients, updates G_i^b, and returns
	// the gradient with respect to the input slice so the server can update
	// G^t. conditioned marks this client as the round's CV contributor,
	// which adds the local conditioning cross-entropy.
	//privacy:sink boundary-slice gradient returned to the server
	//shape: in(B,K) out(B,W)
	BackwardGen(gradSynth *tensor.Dense, conditioned bool) (*tensor.Dense, error)
	// EndRound shuffles the local data with the round's shared seed.
	EndRound(round int) error
	// GenerateRows runs a synthesis-time generator pass and buffers the
	// activated rows locally.
	//
	//shape: in(B,W)
	GenerateRows(slice *tensor.Dense) error
	// Publish decodes and shuffles all buffered synthetic rows (with the
	// shared publication seed) and returns the client's synthetic columns.
	//privacy:sink synthetic columns published to the server
	Publish() (*encoding.Table, error)
	// Snapshot serializes the client's bottom-model trajectory state (a
	// KindClient gtvsnap image) for the server's checkpoint. The blob
	// carries weights, optimizer moments and RNG state only — never the
	// table, encoded matrix or CV sampler, which stay client-side and are
	// rebuilt deterministically on restore.
	//privacy:sink bottom-model checkpoint blob stored by the server
	Snapshot() ([]byte, error)
	// Restore reinstates a Snapshot blob into a freshly constructed,
	// already Configure'd client over the same data and seed.
	Restore(state []byte) error
}

// LocalClient is the in-process GTV client: it owns a vertical slice of the
// training table, its feature encoders, the bottom generator and
// discriminator, and their optimizer state.
type LocalClient struct {
	// table is the client's vertical slice of the real training data; the
	// server must never observe its values.
	//privacy:source client raw table
	table       *encoding.Table
	transformer *encoding.Transformer
	sampler     *condvec.Sampler
	// data serves the transformed real table (same rows, encoded columns)
	// from memory or from a block-cached gtvcol file; leaking what it
	// returns is equivalent to leaking the table.
	//privacy:source client encoded matrix
	data encoding.Backing
	// lastRealBuf is the pooled batch the last ForwardReal gathered; it
	// must stay alive until BackwardDisc recycles the critic graph built
	// on top of it, then goes back to the pool.
	lastRealBuf *tensor.Dense
	coord       *ShuffleCoordinator
	rng         *rng.Rand
	// modelRng seeds Configure's weight initialization and keeps feeding
	// the bottom discriminator's dropout masks during training; snapshots
	// capture its stream position alongside rng's.
	modelRng *rng.Rand

	setup   Setup
	gen     *nn.Sequential
	disc    *nn.Sequential
	genOpt  *nn.Adam
	discOpt *nn.Adam

	// Per-step state retained between forward and backward calls.
	lastSynthOut *ag.Value
	lastRealOut  *ag.Value
	lastRawGen   *ag.Value
	lastSliceVar *ag.Value
	lastDiscGen  *ag.Value // detached generator forward of the critic phase
	lastCV       *condvec.Batch

	synthBuf []*tensor.Dense
	pubCount int
	// shuffles counts applied end-of-round shuffles. Together with the
	// round-derived seeds it fully determines the current row order, which
	// is how a checkpoint can capture "shuffle state" without ever
	// serializing rows: restore replays the permutations locally.
	shuffles int
}

var _ Client = (*LocalClient)(nil)

// NewLocalClient fits the client's feature encoders on its local table,
// holding the encoded matrix in memory. coord must be shared by all
// clients (and hidden from the server); seed drives encoder fitting and
// local randomness.
func NewLocalClient(table *encoding.Table, coord *ShuffleCoordinator, seed int64) (*LocalClient, error) {
	return NewLocalClientStored(table, coord, seed, encoding.Storage{})
}

// NewLocalClientStored is NewLocalClient with an optional gtvcol data
// plane: when st names a data directory, the client's encoded matrix
// lives in <dir>/<name>.enc.gtvcol and real batches are gathered through
// a bounded block cache (a matching cached file skips fitting and
// encoding). Encoding always draws from the dedicated EncodeSeed stream,
// so stored and in-memory clients train bit-identically from the same
// seed. The raw table stays wherever the caller put it; only the encoded
// matrix — the rows × encoded-width blow-up — moves out of core.
func NewLocalClientStored(table *encoding.Table, coord *ShuffleCoordinator, seed int64, st encoding.Storage) (*LocalClient, error) {
	if table.Rows() == 0 || table.Cols() == 0 {
		return nil, errors.New("vfl: client table is empty")
	}
	if coord == nil {
		return nil, errors.New("vfl: client requires a shuffle coordinator")
	}
	tr, data, err := encoding.OpenOrEncode(st, table, seed, gmm.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("vfl: encoding client table: %w", err)
	}
	sampler, err := condvec.NewSampler(table, tr)
	if err != nil {
		//lint:ignore errdrop the sampler error is the one worth reporting
		_ = data.Close()
		return nil, fmt.Errorf("vfl: building client CV sampler: %w", err)
	}
	return &LocalClient{
		table:       table,
		transformer: tr,
		sampler:     sampler,
		data:        data,
		coord:       coord,
		rng:         rng.New(seed),
	}, nil
}

// Close releases the encoded-data backing (file handles and block cache
// for stored clients; a no-op in memory).
func (c *LocalClient) Close() error {
	if c.lastRealBuf != nil {
		c.lastRealBuf.Release()
		c.lastRealBuf = nil
	}
	return c.data.Close()
}

// Info implements Client.
func (c *LocalClient) Info() (ClientInfo, error) {
	return ClientInfo{
		Features:     c.table.Cols(),
		EncodedWidth: c.transformer.Width(),
		CVWidth:      c.sampler.Width(),
		Rows:         c.table.Rows(),
	}, nil
}

// Configure implements Client.
func (c *LocalClient) Configure(s Setup) error {
	if err := s.Plan.Validate(); err != nil {
		return err
	}
	if s.SliceWidth <= 0 || s.DiscWidth <= 0 || s.GenBlockWidth <= 0 {
		return fmt.Errorf("vfl: invalid widths in setup %+v", s)
	}
	if s.LR <= 0 {
		return fmt.Errorf("vfl: invalid learning rate %v", s.LR)
	}
	c.setup = s
	// The layers retain this generator: dropout masks inside the bottom
	// discriminator keep drawing from it every round, so it lives on the
	// client (capturable) instead of being a constructor-local throwaway.
	c.modelRng = rng.New(s.Seed)
	initRng := c.modelRng.Rand

	// Bottom generator: n2 residual blocks then the mandatory output FC.
	c.gen = gan.NewGenerator(initRng, s.SliceWidth, s.GenBlockWidth, s.Plan.GenClient, c.transformer.Width())

	// Bottom discriminator: the mandatory input projection (Linear +
	// LeakyReLU) then n4 FN blocks, all at the client's width share.
	discLayers := []nn.Layer{
		nn.NewLinear(initRng, c.transformer.Width(), s.DiscWidth),
		nn.LeakyReLU{Slope: 0.2},
	}
	for i := 0; i < s.Plan.DiscClient; i++ {
		discLayers = append(discLayers, nn.NewDiscBlock(initRng, s.DiscWidth, s.DiscWidth))
	}
	c.disc = nn.NewSequential(discLayers...)

	c.genOpt = nn.NewAdam(s.LR)
	c.discOpt = nn.NewAdam(s.LR)
	return nil
}

func (c *LocalClient) configured() error {
	if c.gen == nil || c.disc == nil {
		return errors.New("vfl: client not configured")
	}
	return nil
}

// SampleCV implements Client.
func (c *LocalClient) SampleCV(batch int, synthesis bool) (*condvec.Batch, error) {
	var (
		b   *condvec.Batch
		err error
	)
	if synthesis {
		b, err = c.sampler.SampleSynthesis(c.rng.Rand, batch)
	} else {
		b, err = c.sampler.Sample(c.rng.Rand, batch)
	}
	if err != nil {
		return nil, err
	}
	c.lastCV = b
	// The contributor deliberately shares idx_p with the server; §3.1.5's
	// training-with-shuffling re-permutes rows every round so indices
	// cannot be joined across rounds to reconstruct data.
	//lint:ignore privflow idx_p disclosure is sanctioned by training-with-shuffling (§3.1.5)
	return b, nil
}

// SampleCVFixed implements Client.
func (c *LocalClient) SampleCVFixed(batch, spanIdx, category int) (*condvec.Batch, error) {
	b, err := c.sampler.SampleFixed(c.rng.Rand, batch, spanIdx, category)
	if err != nil {
		return nil, err
	}
	c.lastCV = b
	//lint:ignore privflow idx_p disclosure is sanctioned by training-with-shuffling (§3.1.5)
	return b, nil
}

// ResolveCondition maps a column name and category label of this client's
// table to the (span index, category index) SampleCVFixed expects.
func (c *LocalClient) ResolveCondition(column, categoryLabel string) (spanIdx, category int, err error) {
	return gan.ResolveCondition(c.table.Specs, c.sampler, column, categoryLabel)
}

// ForwardSynthetic implements Client.
//
//shape: in(B,W) out(B,K)
func (c *LocalClient) ForwardSynthetic(slice *tensor.Dense, phase Phase) (*tensor.Dense, error) {
	if err := c.configured(); err != nil {
		return nil, err
	}
	if slice.Cols() != c.setup.SliceWidth {
		return nil, fmt.Errorf("vfl: slice width %d, expected %d", slice.Cols(), c.setup.SliceWidth)
	}
	switch phase {
	case PhaseDiscriminator:
		// Critic training: the generator path is outside the graph. The
		// activated output is retained so BackwardDisc can recycle the
		// generator forward graph along with the critic's.
		raw := c.gen.Forward(ag.Const(slice), true)
		activated := gan.ActivateOutput(raw, c.transformer.Spans(), c.rng.Rand, false)
		c.lastSliceVar = nil
		c.lastRawGen = nil
		c.lastDiscGen = activated
		c.lastSynthOut = c.disc.Forward(activated.Detach(), true)
	case PhaseGenerator:
		// Generator training: keep the full graph, including the input
		// slice so the gradient can flow back to the server's G^t.
		c.lastSliceVar = ag.Var(slice)
		c.lastRawGen = c.gen.Forward(c.lastSliceVar, true)
		activated := gan.ActivateOutput(c.lastRawGen, c.transformer.Spans(), c.rng.Rand, false)
		c.lastSynthOut = c.disc.Forward(activated, true)
	default:
		return nil, fmt.Errorf("vfl: invalid phase %d", phase)
	}
	return c.lastSynthOut.Data(), nil
}

// ForwardReal implements Client.
//
//shape: out(R,K)
func (c *LocalClient) ForwardReal(idx []int) (*tensor.Dense, error) {
	if err := c.configured(); err != nil {
		return nil, err
	}
	if c.lastRealBuf != nil {
		// A prior forward's batch was never consumed by a backward pass
		// (the server re-drove the phase); recycle it before gathering.
		c.lastRealBuf.Release()
		c.lastRealBuf = nil
	}
	var rows *tensor.Dense
	if idx == nil {
		m, owned, err := c.data.Dense()
		if err != nil {
			return nil, err
		}
		if owned {
			c.lastRealBuf = m
		}
		rows = m
	} else {
		m, err := c.data.GatherRows(idx)
		if err != nil {
			return nil, err
		}
		c.lastRealBuf = m
		rows = m
	}
	// The bottom discriminator's forward is the sanitizing boundary; only
	// its activations leave the client. Returning the local (rather than
	// re-reading the field) keeps the sanitized flow visible to privflow.
	out := c.disc.Forward(ag.Const(rows), true)
	c.lastRealOut = out
	return out.Data(), nil
}

// BackwardDisc implements Client.
//
//shape: in(Bs,K) in(Br,K2)
func (c *LocalClient) BackwardDisc(gradSynth, gradReal *tensor.Dense) error {
	if err := c.configured(); err != nil {
		return err
	}
	if c.lastSynthOut == nil || c.lastRealOut == nil {
		return errors.New("vfl: BackwardDisc before forward passes")
	}
	// <output, grad> has exactly the requested gradients, so a single
	// backward pass updates D_i^b from both branches.
	proxy := ag.Add(
		ag.SumAll(ag.Mul(c.lastSynthOut, ag.Const(gradSynth))),
		ag.SumAll(ag.Mul(c.lastRealOut, ag.Const(gradReal))),
	)
	params := c.disc.Params()
	grads := ag.Grad(proxy, params...)
	c.discOpt.Step(params, grads)

	// Recycle the whole critic-phase graph, including the generator forward
	// retained by ForwardSynthetic. The Detach leaf inside proxy's graph
	// shields the activation buffer the two graphs share.
	var tape ag.Tape
	tape.Track(proxy, c.lastDiscGen)
	tape.Track(grads...)
	tape.Release()
	// The gathered real batch is a pooled buffer the backing handed us;
	// the tape shields Const leaves, so it is returned explicitly now that
	// the critic graph is gone.
	if c.lastRealBuf != nil {
		c.lastRealBuf.Release()
		c.lastRealBuf = nil
	}
	c.lastSynthOut, c.lastRealOut, c.lastDiscGen = nil, nil, nil
	return nil
}

// BackwardGen implements Client.
//
//shape: in(B,K) out(B,W)
func (c *LocalClient) BackwardGen(gradSynth *tensor.Dense, conditioned bool) (*tensor.Dense, error) {
	if err := c.configured(); err != nil {
		return nil, err
	}
	if c.lastSynthOut == nil || c.lastSliceVar == nil || c.lastRawGen == nil {
		return nil, errors.New("vfl: BackwardGen before a generator-phase forward")
	}
	proxy := ag.SumAll(ag.Mul(c.lastSynthOut, ag.Const(gradSynth)))
	if conditioned && c.lastCV != nil && c.sampler.Width() > 0 {
		cond := gan.ConditionLoss(c.lastRawGen, c.transformer.CategoricalSpans(), c.lastCV.Choices)
		proxy = ag.Add(proxy, cond)
	}
	params := c.gen.Params()
	targets := make([]*ag.Value, 0, len(params)+1)
	targets = append(targets, params...)
	targets = append(targets, c.lastSliceVar)
	grads := ag.Grad(proxy, targets...)
	c.genOpt.Step(params, grads[:len(params)])
	// The slice gradient outlives the release below (the server concatenates
	// it into the boundary gradient), so it is copied out of the graph.
	sliceGrad := grads[len(params)].Data().Clone()

	var tape ag.Tape
	tape.Track(proxy)
	tape.Track(grads...)
	tape.Release()
	c.lastSynthOut, c.lastSliceVar, c.lastRawGen = nil, nil, nil
	return sliceGrad, nil
}

// EndRound implements Client: training-with-shuffling with the shared seed.
func (c *LocalClient) EndRound(round int) error {
	seed := c.coord.SeedForRound(round)
	perm := rand.New(rand.NewSource(seed)).Perm(c.table.Rows())
	c.table = c.table.ShuffleRows(perm)
	if err := c.data.Shuffle(perm); err != nil {
		return fmt.Errorf("vfl: shuffling encoded data: %w", err)
	}
	if err := c.sampler.Reindex(perm); err != nil {
		return fmt.Errorf("vfl: reindexing CV sampler: %w", err)
	}
	c.shuffles++
	return nil
}

// GenerateRows implements Client.
//
//shape: in(B,W)
func (c *LocalClient) GenerateRows(slice *tensor.Dense) error {
	if err := c.configured(); err != nil {
		return err
	}
	raw := c.gen.Forward(ag.Const(slice), false)
	activated := gan.ActivateOutput(raw, c.transformer.Spans(), c.rng.Rand, true)
	c.synthBuf = append(c.synthBuf, activated.Data())
	return nil
}

// Publish implements Client.
func (c *LocalClient) Publish() (*encoding.Table, error) {
	if len(c.synthBuf) == 0 {
		return nil, errors.New("vfl: nothing to publish")
	}
	enc := tensor.ConcatRows(c.synthBuf...)
	c.synthBuf = nil
	decoded, err := c.transformer.Inverse(enc)
	if err != nil {
		return nil, fmt.Errorf("vfl: decoding synthetic rows: %w", err)
	}
	// Shuffle before publication with the shared seed so the server cannot
	// align published rows with the generator inputs it observed (§3.1.7).
	seed := c.coord.PublicationSeed(c.pubCount)
	c.pubCount++
	perm := rand.New(rand.NewSource(seed)).Perm(decoded.Rows())
	// The secret only orders the published rows (an order-only flow): the
	// rows themselves are synthetic, and publishing a permutation of them
	// reveals neither the secret nor any real row (§3.1.7).
	//lint:ignore privflow the shuffle secret determines row order only, never row values (§3.1.7)
	return decoded.ShuffleRows(perm), nil
}

// Table exposes the client's (current, possibly shuffled) local table for
// evaluation code. Production deployments would not export this; the
// experiment harness uses it to compute real-vs-synthetic metrics.
func (c *LocalClient) Table() *encoding.Table { return c.table }
