package vfl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// ServeClientWire serves a client over the gtvwire binary protocol until
// the listener is closed. It is the binary-wire counterpart of ServeClient
// and shares its concurrency contract with net/rpc: every request frame is
// served in its own goroutine, so a pipelining peer overlaps calls, while
// a server that serializes its calls (as vfl.Server does per client) sees
// strictly ordered execution.
func ServeClientWire(lis net.Listener, c Client) error {
	var conns connSet
	defer conns.closeAll()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("vfl: accepting wire connection: %w", err)
		}
		conns.add(conn)
		//lint:ignore goroleak per-connection read loop whose exit path is the connection: it returns on any read error, and closeAll closes every tracked conn when the listener dies
		go func() {
			serveWireConn(conn, c)
			conns.remove(conn)
		}()
	}
}

// connSet tracks the connections a serve loop accepted, so closing the
// listener also closes every served connection — and with it every
// per-connection goroutine — instead of leaving them parked on reads
// until the peer hangs up.
type connSet struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{} // guarded by mu
}

func (s *connSet) add(c net.Conn) {
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *connSet) remove(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// closeAll closes every still-tracked connection.
func (s *connSet) closeAll() {
	s.mu.Lock()
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for c := range conns {
		// The listener is gone; these connections are being abandoned and
		// their close errors carry nothing.
		//lint:ignore errdrop teardown of connections outliving a closed listener
		_ = c.Close()
	}
}

// wireConnWriter serializes response-frame writes from the per-request
// goroutines onto one connection.
type wireConnWriter struct {
	mu sync.Mutex
	w  *bufio.Writer // guarded by mu
}

// writeFrame writes one whole response frame and flushes it toward the
// server. This is the single point where protocol payloads leave the
// client process, which makes it the transport's privacy boundary: every
// value reaching it has already crossed a Client interface sink.
//
//privacy:sink encoded response frames leaving the client process
func (cw *wireConnWriter) writeFrame(h wireHeader, payload []byte) error {
	var hdr [wireHeaderLen]byte
	h.put(hdr[:])
	cw.mu.Lock()
	defer cw.mu.Unlock()
	//lint:ignore lockorder mu exists to serialize whole response frames onto the shared conn; a write stuck on a dead peer ends when the read loop (or closeAll) closes the conn
	if _, err := cw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := cw.w.Write(payload); err != nil {
		return err
	}
	return cw.w.Flush()
}

// wireSliceTracker retains the ForwardSynthetic input slices the client's
// autograd graph holds onto between a forward and its backward. Graph
// leaves are shielded from the client's tape release, so once the backward
// for a phase completes nothing references the decoded slice buffers and
// the tracker hands them back to the tensor free list.
type wireSliceTracker struct {
	mu     sync.Mutex
	slices []*tensor.Dense // guarded by mu
}

func (t *wireSliceTracker) retain(m *tensor.Dense) {
	t.mu.Lock()
	t.slices = append(t.slices, m)
	t.mu.Unlock()
}

// releaseAll recycles every retained slice. Called after a successful
// BackwardDisc/BackwardGen, when the graphs retaining the slices are gone.
func (t *wireSliceTracker) releaseAll() {
	t.mu.Lock()
	slices := t.slices
	t.slices = nil
	t.mu.Unlock()
	for _, m := range slices {
		m.Release()
	}
}

// wireSnapEpoch assigns a fresh process-unique epoch to every snapshot
// blob served with delta capability, so a peer holding a base from before
// a responder restart can never have its epoch matched — it gets a full
// transfer instead of a delta against the wrong base.
var wireSnapEpoch atomic.Uint64

// wireSnapCache remembers, per connection, the last snapshot blob served
// to a delta-capable peer and its epoch, the base the next fetch's delta
// is computed against. Dying with the connection is correct: after a
// redial the responder has no base and serves full, which is exactly the
// resync the peer needs.
type wireSnapCache struct {
	mu    sync.Mutex
	epoch uint64 // guarded by mu
	blob  []byte // guarded by mu
}

// serveWireConn reads request frames off one connection and dispatches
// each in its own goroutine.
func serveWireConn(conn net.Conn, c Client) {
	r := bufio.NewReaderSize(conn, 1<<16)
	cw := &wireConnWriter{w: bufio.NewWriterSize(conn, 1<<16)}
	slices := &wireSliceTracker{}
	snaps := &wireSnapCache{}
	for {
		h, payload, err := readWireFrame(r)
		if err != nil {
			// EOF is the peer hanging up; anything else is a dead or
			// malformed connection. Either way the conn is finished and the
			// close error adds nothing.
			//lint:ignore errdrop closing a finished connection, the error adds nothing
			_ = conn.Close()
			return
		}
		if h.kind != wireKindRequest {
			//lint:ignore errdrop protocol violation already ends the connection
			_ = conn.Close()
			return
		}
		go serveWireRequest(c, cw, slices, snaps, h, payload)
	}
}

// serveWireRequest decodes one request, runs the protocol step, and writes
// the response (or error) frame.
func serveWireRequest(c Client, cw *wireConnWriter, slices *wireSliceTracker, snaps *wireSnapCache, h wireHeader, payload []byte) {
	dec := newWireDec(payload)
	enc := newWireEnc()
	err := dispatchWireMethod(c, slices, snaps, h.method, h.flags&wireFlagF32 != 0, dec, enc)
	putWireBuf(payload)
	kind := byte(wireKindResponse)
	if err != nil {
		enc.buf = enc.buf[:0]
		enc.str(err.Error())
		kind = wireKindError
	}
	rh := wireHeader{
		payloadLen: uint32(len(enc.buf)),
		version:    wireVersion,
		kind:       kind,
		method:     h.method,
		flags:      h.flags,
		seq:        h.seq,
	}
	// A failed response write means the connection is dead; the read loop
	// observes that on its next read and tears the connection down.
	//lint:ignore errdrop the read loop handles the dead connection
	_ = cw.writeFrame(rh, enc.buf)
	enc.release()
}

// dispatchWireMethod decodes the method's arguments, invokes the protocol
// step, and encodes the reply. Argument decoding is fully validated
// (dec.finish) before the client runs, so a malformed frame never
// half-executes a stateful step.
//
// Decoded argument matrices land in pooled buffers; ownership is resolved
// per method: gradients and synthesis slices are consumed within the call
// (graph leaves are shielded from the client's tape) and released here,
// while ForwardSynthetic slices stay live inside the client's retained
// graph until the phase's backward and are parked in the tracker instead.
func dispatchWireMethod(c Client, slices *wireSliceTracker, snaps *wireSnapCache, method byte, f32 bool, dec *wireDec, enc *wireEnc) error {
	switch method {
	case wireMethodInfo:
		if err := dec.finish(); err != nil {
			return err
		}
		info, err := c.Info()
		if err != nil {
			return err
		}
		enc.clientInfo(info)
		return nil

	case wireMethodConfigure:
		s := dec.setup()
		if err := dec.finish(); err != nil {
			return err
		}
		return c.Configure(s)

	case wireMethodSampleCV:
		batch := int(dec.i64())
		synthesis := dec.bool()
		if err := dec.finish(); err != nil {
			return err
		}
		b, err := c.SampleCV(batch, synthesis)
		if err != nil {
			return err
		}
		enc.cvBatch(b, false)
		return nil

	case wireMethodSampleCVFixed:
		batch := int(dec.i64())
		span := int(dec.i64())
		category := int(dec.i64())
		if err := dec.finish(); err != nil {
			return err
		}
		b, err := c.SampleCVFixed(batch, span, category)
		if err != nil {
			return err
		}
		enc.cvBatch(b, false)
		return nil

	case wireMethodForwardSynthetic:
		slice := dec.matrix()
		phase := Phase(dec.i64())
		if err := requireWireMatrix(dec, "slice", slice); err != nil {
			slice.Release()
			return err
		}
		out, err := c.ForwardSynthetic(slice, phase)
		if err != nil {
			slice.Release()
			return err
		}
		// The client's graph holds the slice until the phase's backward.
		slices.retain(slice)
		enc.matrix(out, f32)
		return nil

	case wireMethodForwardReal:
		all := dec.bool()
		idx := dec.ints()
		if err := dec.finish(); err != nil {
			return err
		}
		if all {
			idx = nil
		} else if idx == nil {
			idx = []int{}
		}
		out, err := c.ForwardReal(idx)
		if err != nil {
			return err
		}
		enc.matrix(out, f32)
		return nil

	case wireMethodBackwardDisc:
		gradSynth := dec.matrix()
		gradReal := dec.matrix()
		if err := requireWireMatrix(dec, "gradients", gradSynth, gradReal); err != nil {
			gradSynth.Release()
			gradReal.Release()
			return err
		}
		err := c.BackwardDisc(gradSynth, gradReal)
		// The gradients entered the client's graph as leaves (shielded from
		// its tape release) and nothing references them after the call.
		gradSynth.Release()
		gradReal.Release()
		if err != nil {
			return err
		}
		slices.releaseAll()
		return nil

	case wireMethodBackwardGen:
		gradSynth := dec.matrix()
		conditioned := dec.bool()
		if err := requireWireMatrix(dec, "gradient", gradSynth); err != nil {
			gradSynth.Release()
			return err
		}
		out, err := c.BackwardGen(gradSynth, conditioned)
		gradSynth.Release()
		if err != nil {
			return err
		}
		slices.releaseAll()
		enc.matrix(out, f32)
		// The slice gradient is a fresh copy owned by the caller; it is
		// fully encoded now.
		out.Release()
		return nil

	case wireMethodEndRound:
		round := int(dec.i64())
		if err := dec.finish(); err != nil {
			return err
		}
		return c.EndRound(round)

	case wireMethodGenerateRows:
		slice := dec.matrix()
		if err := requireWireMatrix(dec, "slice", slice); err != nil {
			slice.Release()
			return err
		}
		err := c.GenerateRows(slice)
		// Synthesis forwards run outside any retained graph; the slice is
		// dead as soon as the call returns.
		slice.Release()
		return err

	case wireMethodPublish:
		if err := dec.finish(); err != nil {
			return err
		}
		t, err := c.Publish()
		if err != nil {
			return err
		}
		enc.table(t, false)
		return nil

	case wireMethodSnapshot:
		capable := dec.bool()
		var haveEpoch uint64
		if capable {
			haveEpoch = dec.uvarint()
		}
		if err := dec.finish(); err != nil {
			return err
		}
		blob, err := c.Snapshot()
		if err != nil {
			return err
		}
		if !capable {
			// Plain body for peers without delta mode: just the blob.
			enc.bytes(blob)
			return nil
		}
		encodeWireSnapshot(enc, snaps, blob, haveEpoch)
		return nil

	case wireMethodRestore:
		state := dec.bytes()
		if err := dec.finish(); err != nil {
			return err
		}
		return c.Restore(state)
	}
	return fmt.Errorf("gtvwire: unknown method id %d", method)
}

// requireWireMatrix finishes argument decoding and rejects absent (nil)
// matrices for methods whose arguments are mandatory, so a malformed frame
// fails with a protocol error instead of a panic inside the client.
func requireWireMatrix(dec *wireDec, what string, ms ...*tensor.Dense) error {
	if err := dec.finish(); err != nil {
		return err
	}
	for _, m := range ms {
		if m == nil {
			return fmt.Errorf("gtvwire: missing required %s matrix", what)
		}
	}
	return nil
}
