package vfl

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// The wire types below are the gob-encodable forms of the protocol
// payloads. They deliberately mirror the in-memory types field by field so
// the in-process and networked deployments exchange exactly the same
// information — and nothing more.

// WireMatrix is the gob form of a tensor.Dense.
type WireMatrix struct {
	Rows, Cols int
	Data       []float64
}

// ToWire converts a matrix for transmission.
//
//shape: in(R,C)
func ToWire(m *tensor.Dense) WireMatrix {
	if m == nil {
		return WireMatrix{}
	}
	data := make([]float64, len(m.Data()))
	copy(data, m.Data())
	return WireMatrix{Rows: m.Rows(), Cols: m.Cols(), Data: data}
}

// FromWire converts a received matrix back to a tensor. The shape is
// whatever the wire says, so both result dims are fresh.
//
//shape: out(R,C)
func FromWire(w WireMatrix) *tensor.Dense {
	return tensor.FromSlice(w.Rows, w.Cols, w.Data)
}

// WireCVBatch is the gob form of a condvec.Batch.
type WireCVBatch struct {
	CV      WireMatrix
	Rows    []int
	Choices []condvec.Choice
}

// WireTable is the gob form of an encoding.Table.
type WireTable struct {
	Specs []encoding.ColumnSpec
	Data  WireMatrix
}

// ForwardSyntheticArgs carries a generator slice and the phase.
type ForwardSyntheticArgs struct {
	Slice WireMatrix
	Phase Phase
}

// ForwardRealArgs selects real rows; All means the full local table.
type ForwardRealArgs struct {
	All bool
	Idx []int
}

// BackwardDiscArgs carries the critic gradients for both branches.
type BackwardDiscArgs struct {
	GradSynth WireMatrix
	GradReal  WireMatrix
}

// BackwardGenArgs carries the generator gradient and the contributor flag.
type BackwardGenArgs struct {
	GradSynth   WireMatrix
	Conditioned bool
}

// SampleCVArgs requests a conditional-vector batch.
type SampleCVArgs struct {
	Batch     int
	Synthesis bool
}

// SampleCVFixedArgs requests a fixed-condition batch.
type SampleCVFixedArgs struct {
	Batch    int
	Span     int
	Category int
}

// Empty is a placeholder for argument-less or reply-less calls.
type Empty struct{}

// ClientService exposes a Client over net/rpc. Serving the interface (not
// just *LocalClient) lets tests interpose fault-injecting transports
// between the wire and the real client.
type ClientService struct {
	client Client
}

// NewClientService wraps a client for serving.
func NewClientService(c Client) *ClientService { return &ClientService{client: c} }

// Info handles the metadata RPC.
func (s *ClientService) Info(_ Empty, reply *ClientInfo) error {
	info, err := s.client.Info()
	if err != nil {
		return err
	}
	*reply = info
	return nil
}

// Configure handles the setup RPC.
func (s *ClientService) Configure(args Setup, _ *Empty) error {
	return s.client.Configure(args)
}

// SampleCV handles the conditional-vector RPC.
func (s *ClientService) SampleCV(args SampleCVArgs, reply *WireCVBatch) error {
	b, err := s.client.SampleCV(args.Batch, args.Synthesis)
	if err != nil {
		return err
	}
	*reply = WireCVBatch{CV: ToWire(b.CV), Rows: b.Rows, Choices: b.Choices}
	return nil
}

// SampleCVFixed handles the fixed-condition RPC.
func (s *ClientService) SampleCVFixed(args SampleCVFixedArgs, reply *WireCVBatch) error {
	b, err := s.client.SampleCVFixed(args.Batch, args.Span, args.Category)
	if err != nil {
		return err
	}
	*reply = WireCVBatch{CV: ToWire(b.CV), Rows: b.Rows, Choices: b.Choices}
	return nil
}

// ForwardSynthetic handles the synthetic forward RPC.
func (s *ClientService) ForwardSynthetic(args ForwardSyntheticArgs, reply *WireMatrix) error {
	out, err := s.client.ForwardSynthetic(FromWire(args.Slice), args.Phase)
	if err != nil {
		return err
	}
	*reply = ToWire(out)
	return nil
}

// ForwardReal handles the real forward RPC.
func (s *ClientService) ForwardReal(args ForwardRealArgs, reply *WireMatrix) error {
	var idx []int
	if !args.All {
		idx = args.Idx
		if idx == nil {
			idx = []int{}
		}
	}
	out, err := s.client.ForwardReal(idx)
	if err != nil {
		return err
	}
	*reply = ToWire(out)
	return nil
}

// BackwardDisc handles the critic backward RPC.
func (s *ClientService) BackwardDisc(args BackwardDiscArgs, _ *Empty) error {
	return s.client.BackwardDisc(FromWire(args.GradSynth), FromWire(args.GradReal))
}

// BackwardGen handles the generator backward RPC.
func (s *ClientService) BackwardGen(args BackwardGenArgs, reply *WireMatrix) error {
	out, err := s.client.BackwardGen(FromWire(args.GradSynth), args.Conditioned)
	if err != nil {
		return err
	}
	*reply = ToWire(out)
	return nil
}

// EndRound handles the shuffle RPC.
func (s *ClientService) EndRound(round int, _ *Empty) error {
	return s.client.EndRound(round)
}

// GenerateRows handles the synthesis forward RPC.
func (s *ClientService) GenerateRows(slice WireMatrix, _ *Empty) error {
	return s.client.GenerateRows(FromWire(slice))
}

// Snapshot handles the checkpoint-capture RPC.
func (s *ClientService) Snapshot(_ Empty, reply *[]byte) error {
	blob, err := s.client.Snapshot()
	if err != nil {
		return err
	}
	*reply = blob
	return nil
}

// Restore handles the checkpoint-restore RPC.
func (s *ClientService) Restore(state []byte, _ *Empty) error {
	return s.client.Restore(state)
}

// Publish handles the publication RPC.
func (s *ClientService) Publish(_ Empty, reply *WireTable) error {
	t, err := s.client.Publish()
	if err != nil {
		return err
	}
	*reply = WireTable{Specs: t.Specs, Data: ToWire(t.Data)}
	return nil
}

// ServeClient serves a client on the listener until the listener is
// closed. It is the entry point of the gtv-client process.
func ServeClient(lis net.Listener, c Client) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("GTVClient", NewClientService(c)); err != nil {
		return fmt.Errorf("vfl: registering RPC service: %w", err)
	}
	var conns connSet
	defer conns.closeAll()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("vfl: accepting connection: %w", err)
		}
		conns.add(conn)
		go func() {
			srv.ServeConn(conn)
			conns.remove(conn)
		}()
	}
}

// RPCClient is the server-side proxy for a remote client process. Every
// call observes the client's CallPolicy: a per-call deadline bounds how
// long a dead or wedged peer can stall a round, and transient transport
// errors (dropped connections, resets) are retried with exponential
// backoff after re-dialing. It is safe for concurrent use, though the
// Server serializes the calls it makes to any one client.
type RPCClient struct {
	network, addr string
	policy        CallPolicy

	// sent/recv count exact connection bytes (the full gob stream,
	// framing included) across redials; see WireBytes.
	sent atomic.Int64
	recv atomic.Int64

	mu sync.Mutex
	rc *rpc.Client // guarded by mu
}

// countingConn counts the bytes crossing a connection in each direction.
// It wraps the gob transport so RPCClient can report measured traffic
// comparable to WireClient's framed-byte counters.
type countingConn struct {
	net.Conn
	sent, recv *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

var _ Client = (*RPCClient)(nil)

// DialClient connects to a remote GTV client with the zero CallPolicy (no
// deadline, no retry — the legacy behavior). Production servers should
// prefer DialClientPolicy.
func DialClient(network, addr string) (*RPCClient, error) {
	return DialClientPolicy(network, addr, CallPolicy{})
}

// DialClientPolicy connects to a remote GTV client and applies the policy
// to every subsequent call.
func DialClientPolicy(network, addr string, p CallPolicy) (*RPCClient, error) {
	c := &RPCClient{network: network, addr: addr, policy: p}
	if _, err := c.conn(); err != nil {
		return nil, fmt.Errorf("vfl: dialing client %s: %w", addr, err)
	}
	return c, nil
}

// conn returns the live connection, dialing if necessary. Like
// WireClient.session, the dial is single-flight under mu and bounded by
// the policy timeout so the lock hold cannot outlive a call's deadline.
func (c *RPCClient) conn() (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rc == nil {
		//lint:ignore lockorder single-flight dial: mu serializes redials on purpose, and DialTimeout bounds the hold to the per-call policy deadline
		conn, err := net.DialTimeout(c.network, c.addr, c.policy.Timeout)
		if err != nil {
			return nil, err
		}
		c.rc = rpc.NewClient(countingConn{Conn: conn, sent: &c.sent, recv: &c.recv})
	}
	return c.rc, nil
}

// WireBytes returns the exact connection bytes exchanged with this client
// in both directions (the whole gob stream, framing included).
func (c *RPCClient) WireBytes() int64 { return c.sent.Load() + c.recv.Load() }

// redial drops the (presumed broken) connection so the next attempt dials
// fresh — a restarted client process can rejoin mid-training.
func (c *RPCClient) redial() {
	c.mu.Lock()
	if c.rc != nil {
		// The connection is presumed broken — the close error carries no
		// information beyond the call failure that triggered the redial.
		//lint:ignore errdrop closing a presumed-broken connection, the error adds nothing
		_ = c.rc.Close()
		c.rc = nil
	}
	c.mu.Unlock()
}

// Close releases the connection.
func (c *RPCClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rc == nil {
		return nil
	}
	err := c.rc.Close()
	c.rc = nil
	return err
}

// callRPC runs one RPC under the client's policy. Each attempt allocates
// its own reply so an abandoned timed-out attempt can never race with a
// retry's reply.
func callRPC[R any](c *RPCClient, method string, args any) (R, error) {
	what := fmt.Sprintf("%s to client %s", method, c.addr)
	return callWithPolicy(c.policy, what, c.redial, func() (R, error) {
		var reply R
		rc, err := c.conn()
		if err != nil {
			return reply, err
		}
		err = rc.Call(method, args, &reply)
		return reply, err
	})
}

// Info implements Client.
func (c *RPCClient) Info() (ClientInfo, error) {
	return callRPC[ClientInfo](c, "GTVClient.Info", Empty{})
}

// Configure implements Client.
func (c *RPCClient) Configure(s Setup) error {
	_, err := callRPC[Empty](c, "GTVClient.Configure", s)
	return err
}

// SampleCV implements Client.
func (c *RPCClient) SampleCV(batch int, synthesis bool) (*condvec.Batch, error) {
	reply, err := callRPC[WireCVBatch](c, "GTVClient.SampleCV", SampleCVArgs{Batch: batch, Synthesis: synthesis})
	if err != nil {
		return nil, err
	}
	return &condvec.Batch{CV: FromWire(reply.CV), Rows: reply.Rows, Choices: reply.Choices}, nil
}

// SampleCVFixed implements Client.
func (c *RPCClient) SampleCVFixed(batch, spanIdx, category int) (*condvec.Batch, error) {
	args := SampleCVFixedArgs{Batch: batch, Span: spanIdx, Category: category}
	reply, err := callRPC[WireCVBatch](c, "GTVClient.SampleCVFixed", args)
	if err != nil {
		return nil, err
	}
	return &condvec.Batch{CV: FromWire(reply.CV), Rows: reply.Rows, Choices: reply.Choices}, nil
}

// ForwardSynthetic implements Client.
//
//shape: in(B,W) out(B,K)
func (c *RPCClient) ForwardSynthetic(slice *tensor.Dense, phase Phase) (*tensor.Dense, error) {
	args := ForwardSyntheticArgs{Slice: ToWire(slice), Phase: phase}
	reply, err := callRPC[WireMatrix](c, "GTVClient.ForwardSynthetic", args)
	if err != nil {
		return nil, err
	}
	return FromWire(reply), nil
}

// ForwardReal implements Client.
//
//shape: out(R,K)
func (c *RPCClient) ForwardReal(idx []int) (*tensor.Dense, error) {
	args := ForwardRealArgs{All: idx == nil, Idx: idx}
	reply, err := callRPC[WireMatrix](c, "GTVClient.ForwardReal", args)
	if err != nil {
		return nil, err
	}
	return FromWire(reply), nil
}

// BackwardDisc implements Client.
//
//shape: in(Bs,K) in(Br,K2)
func (c *RPCClient) BackwardDisc(gradSynth, gradReal *tensor.Dense) error {
	args := BackwardDiscArgs{GradSynth: ToWire(gradSynth), GradReal: ToWire(gradReal)}
	_, err := callRPC[Empty](c, "GTVClient.BackwardDisc", args)
	return err
}

// BackwardGen implements Client.
//
//shape: in(B,K) out(B,W)
func (c *RPCClient) BackwardGen(gradSynth *tensor.Dense, conditioned bool) (*tensor.Dense, error) {
	args := BackwardGenArgs{GradSynth: ToWire(gradSynth), Conditioned: conditioned}
	reply, err := callRPC[WireMatrix](c, "GTVClient.BackwardGen", args)
	if err != nil {
		return nil, err
	}
	return FromWire(reply), nil
}

// EndRound implements Client.
func (c *RPCClient) EndRound(round int) error {
	_, err := callRPC[Empty](c, "GTVClient.EndRound", round)
	return err
}

// GenerateRows implements Client.
//
//shape: in(B,W)
func (c *RPCClient) GenerateRows(slice *tensor.Dense) error {
	_, err := callRPC[Empty](c, "GTVClient.GenerateRows", ToWire(slice))
	return err
}

// Snapshot implements Client.
func (c *RPCClient) Snapshot() ([]byte, error) {
	return callRPC[[]byte](c, "GTVClient.Snapshot", Empty{})
}

// Restore implements Client.
func (c *RPCClient) Restore(state []byte) error {
	_, err := callRPC[Empty](c, "GTVClient.Restore", state)
	return err
}

// Publish implements Client.
func (c *RPCClient) Publish() (*encoding.Table, error) {
	reply, err := callRPC[WireTable](c, "GTVClient.Publish", Empty{})
	if err != nil {
		return nil, err
	}
	return encoding.NewTable(reply.Specs, FromWire(reply.Data))
}
