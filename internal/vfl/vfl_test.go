package vfl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/encoding"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestPlanNameRoundTrip(t *testing.T) {
	for _, p := range StandardPlans() {
		parsed, err := ParsePlan(p.Name())
		if err != nil {
			t.Fatalf("ParsePlan(%s): %v", p.Name(), err)
		}
		if parsed != p {
			t.Fatalf("round trip %s -> %+v", p.Name(), parsed)
		}
	}
}

func TestStandardPlansCount(t *testing.T) {
	plans := StandardPlans()
	if len(plans) != 9 {
		t.Fatalf("plan count = %d want 9", len(plans))
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if seen[p.Name()] {
			t.Fatalf("duplicate plan %s", p.Name())
		}
		seen[p.Name()] = true
		if p.DiscServer+p.DiscClient != 2 || p.GenServer+p.GenClient != 2 {
			t.Fatalf("plan %s does not total 2 blocks per network", p.Name())
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	if _, err := ParsePlan("bogus"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ParsePlan("D-1_0G0_2"); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRatios(t *testing.T) {
	r, err := Ratios([]int{3, 1})
	if err != nil {
		t.Fatalf("Ratios: %v", err)
	}
	if math.Abs(r[0]-0.75) > 1e-12 || math.Abs(r[1]-0.25) > 1e-12 {
		t.Fatalf("ratios = %v", r)
	}
	if _, err := Ratios(nil); err == nil {
		t.Fatal("expected error for no clients")
	}
	if _, err := Ratios([]int{1, 0}); err == nil {
		t.Fatal("expected error for zero features")
	}
}

func TestSplitWidths(t *testing.T) {
	tests := []struct {
		total  int
		ratios []float64
		want   []int
	}{
		{256, []float64{0.5, 0.5}, []int{128, 128}},
		{256, []float64{0.75, 0.25}, []int{192, 64}},
		{10, []float64{0.34, 0.33, 0.33}, []int{4, 3, 3}},
		{5, []float64{0.99, 0.01}, []int{4, 1}}, // floor of 1 enforced
	}
	for _, tc := range tests {
		got, err := SplitWidths(tc.total, tc.ratios)
		if err != nil {
			t.Fatalf("SplitWidths(%d, %v): %v", tc.total, tc.ratios, err)
		}
		sum := 0
		for _, w := range got {
			sum += w
		}
		if sum != tc.total {
			t.Fatalf("SplitWidths(%d, %v) sums to %d", tc.total, tc.ratios, sum)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("SplitWidths(%d, %v) = %v want %v", tc.total, tc.ratios, got, tc.want)
			}
		}
	}
}

func TestSplitWidthsErrors(t *testing.T) {
	if _, err := SplitWidths(1, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected error: fewer units than clients")
	}
	if _, err := SplitWidths(10, nil); err == nil {
		t.Fatal("expected error: no ratios")
	}
}

func TestShuffleCoordinatorDeterminism(t *testing.T) {
	a := NewShuffleCoordinator(42)
	b := NewShuffleCoordinator(42)
	for round := 0; round < 5; round++ {
		if a.SeedForRound(round) != b.SeedForRound(round) {
			t.Fatalf("round %d: same secret must give same seed", round)
		}
	}
	if a.SeedForRound(1) == a.SeedForRound(2) {
		t.Fatal("different rounds should give different seeds")
	}
	c := NewShuffleCoordinator(43)
	if a.SeedForRound(0) == c.SeedForRound(0) {
		t.Fatal("different secrets should give different seeds")
	}
	if a.SeedForRound(7) == a.PublicationSeed(7) {
		t.Fatal("publication seeds must be namespaced away from round seeds")
	}
}

// twoClientTables builds a pair of vertically-split tables with
// cross-client structure: client A holds a 70/30 categorical column plus a
// local continuous column; client B holds a continuous column whose mean
// depends on A's category (the correlation GTV must learn across clients).
func twoClientTables(t *testing.T, rows int, seed int64) (*encoding.Table, *encoding.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	da := tensor.New(rows, 2)
	db := tensor.New(rows, 1)
	for i := 0; i < rows; i++ {
		c := 0.0
		if rng.Float64() < 0.3 {
			c = 1
		}
		da.Set(i, 0, c)
		da.Set(i, 1, rng.NormFloat64()+2*c)
		db.Set(i, 0, rng.NormFloat64()+6*c)
	}
	ta, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "segment", Kind: encoding.KindCategorical, Categories: []string{"a", "b"}},
		{Name: "spend", Kind: encoding.KindContinuous},
	}, da)
	if err != nil {
		t.Fatalf("NewTable A: %v", err)
	}
	tb, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "income", Kind: encoding.KindContinuous},
	}, db)
	if err != nil {
		t.Fatalf("NewTable B: %v", err)
	}
	return ta, tb
}

// newTestSystem builds a 2-client GTV system with a small fast config.
func newTestSystem(t *testing.T, plan Plan, rows int, faithful bool) (*Server, []*LocalClient) {
	t.Helper()
	ta, tb := twoClientTables(t, rows, 7)
	coord := NewShuffleCoordinator(99)
	ca, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient A: %v", err)
	}
	cb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient B: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Plan = plan
	cfg.Rounds = 40
	cfg.DiscSteps = 3
	cfg.BatchSize = 64
	cfg.NoiseDim = 24
	cfg.BlockDim = 64
	cfg.LR = 5e-4
	cfg.FaithfulRealPass = faithful
	srv, err := NewServer([]Client{ca, cb}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv, []*LocalClient{ca, cb}
}

func TestServerSetupWidths(t *testing.T) {
	srv, _ := newTestSystem(t, Plan{DiscServer: 2, GenClient: 2}, 200, false)
	// Client A has 2 features, B has 1: P_r = (2/3, 1/3).
	r := srv.Ratios()
	if math.Abs(r[0]-2.0/3) > 1e-12 || math.Abs(r[1]-1.0/3) > 1e-12 {
		t.Fatalf("ratios = %v", r)
	}
	w := srv.SliceWidths()
	if w[0]+w[1] != 64 {
		t.Fatalf("slice widths %v do not sum to GenBlockDim", w)
	}
	if w[0] <= w[1] {
		t.Fatalf("slice widths %v should follow P_r", w)
	}
}

func TestTrainRoundRunsAllPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	for _, plan := range StandardPlans() {
		plan := plan
		t.Run(plan.Name(), func(t *testing.T) {
			srv, _ := newTestSystem(t, plan, 150, false)
			srv.cfg.Rounds = 2
			dLoss, gLoss, err := srv.TrainRound()
			if err != nil {
				t.Fatalf("TrainRound: %v", err)
			}
			if math.IsNaN(dLoss) || math.IsNaN(gLoss) {
				t.Fatalf("NaN losses %v %v", dLoss, gLoss)
			}
		})
	}
}

func TestFaithfulRealPassMode(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	srv, _ := newTestSystem(t, Plan{DiscServer: 2, GenClient: 2}, 150, true)
	if _, _, err := srv.TrainRound(); err != nil {
		t.Fatalf("TrainRound (faithful): %v", err)
	}
}

func TestEndToEndLearnsCrossClientCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	srv, clients := newTestSystem(t, Plan{DiscServer: 2, GenClient: 2}, 600, false)
	srv.cfg.Rounds = 450
	if err := srv.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	joined, parts, err := srv.SynthesizeParts(600)
	if err != nil {
		t.Fatalf("SynthesizeParts: %v", err)
	}
	if joined.Rows() != 600 || joined.Cols() != 3 {
		t.Fatalf("synthetic shape %dx%d", joined.Rows(), joined.Cols())
	}
	if joined.Data.HasNaN() {
		t.Fatal("synthetic data has NaN")
	}
	// Marginal check: the 70/30 categorical split must roughly survive.
	freq, err := encoding.CategoryFrequencies(parts[0], 0)
	if err != nil {
		t.Fatalf("CategoryFrequencies: %v", err)
	}
	if freq[1] < 0.08 || freq[1] > 0.6 {
		t.Fatalf("synthetic minority share = %v want ~0.3", freq[1])
	}
	// Cross-client structure: income (client B) must still depend on
	// segment (client A). The real effect is a 6-sigma mean shift; accept
	// any clearly positive association.
	eta := stats.CorrelationRatio(joined.Data.Col(0), joined.Data.Col(2), 2)
	if eta < 0.25 {
		t.Fatalf("synthetic across-client correlation ratio = %v, cross-client structure lost", eta)
	}
	// All clients remained row-aligned through shuffles.
	for _, c := range clients {
		if c.Table().Rows() != 600 {
			t.Fatalf("client table rows changed to %d", c.Table().Rows())
		}
	}
}

func TestShuffleKeepsClientsAligned(t *testing.T) {
	ta, tb := twoClientTables(t, 100, 11)
	coord := NewShuffleCoordinator(5)
	ca, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	// Record the row pairing before shuffles via the deterministic
	// cross-client relationship is not exact; instead track a synthetic ID:
	// row i of A pairs with row i of B. After identical-seed shuffles the
	// permutation must be identical on both sides.
	origA := ca.Table().Data.Clone()
	origB := cb.Table().Data.Clone()
	for round := 0; round < 3; round++ {
		if err := ca.EndRound(round); err != nil {
			t.Fatalf("EndRound A: %v", err)
		}
		if err := cb.EndRound(round); err != nil {
			t.Fatalf("EndRound B: %v", err)
		}
	}
	// Every shuffled A row must sit at the same position as its paired B row.
	for i := 0; i < 100; i++ {
		// find original index of A's row i by matching the (unique)
		// continuous value.
		spend := ca.Table().Data.At(i, 1)
		orig := -1
		for k := 0; k < 100; k++ {
			if origA.At(k, 1) == spend {
				orig = k
				break
			}
		}
		if orig < 0 {
			t.Fatalf("row %d lost after shuffling", i)
		}
		if cb.Table().Data.At(i, 0) != origB.At(orig, 0) {
			t.Fatalf("row %d misaligned after shuffling", i)
		}
	}
}

func TestServerRejectsMisalignedClients(t *testing.T) {
	ta, _ := twoClientTables(t, 100, 3)
	_, tb := twoClientTables(t, 90, 3)
	coord := NewShuffleCoordinator(1)
	ca, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	if _, err := NewServer([]Client{ca, cb}, DefaultConfig()); err == nil {
		t.Fatal("expected row-misalignment error")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, DefaultConfig()); err == nil {
		t.Fatal("expected error for no clients")
	}
	cfg := DefaultConfig()
	cfg.Rounds = 0
	ta, _ := twoClientTables(t, 50, 3)
	ca, err := NewLocalClient(ta, NewShuffleCoordinator(1), 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	if _, err := NewServer([]Client{ca}, cfg); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestClientErrorsBeforeConfigure(t *testing.T) {
	ta, _ := twoClientTables(t, 50, 3)
	c, err := NewLocalClient(ta, NewShuffleCoordinator(1), 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	if _, err := c.ForwardSynthetic(tensor.New(4, 8), PhaseDiscriminator); err == nil {
		t.Fatal("expected not-configured error")
	}
	if _, err := c.ForwardReal(nil); err == nil {
		t.Fatal("expected not-configured error")
	}
	if err := c.BackwardDisc(nil, nil); err == nil {
		t.Fatal("expected not-configured error")
	}
	if _, err := c.Publish(); err == nil {
		t.Fatal("expected nothing-to-publish error")
	}
}

func TestBackwardBeforeForwardErrors(t *testing.T) {
	ta, _ := twoClientTables(t, 50, 3)
	c, err := NewLocalClient(ta, NewShuffleCoordinator(1), 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	setup := Setup{
		Plan:          Plan{DiscServer: 2, GenClient: 2},
		SliceWidth:    8,
		GenBlockWidth: 8,
		DiscWidth:     8,
		LR:            1e-3,
		Seed:          1,
	}
	if err := c.Configure(setup); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	if err := c.BackwardDisc(tensor.New(1, 8), tensor.New(1, 8)); err == nil {
		t.Fatal("expected backward-before-forward error")
	}
	if _, err := c.BackwardGen(tensor.New(1, 8), false); err == nil {
		t.Fatal("expected backward-before-forward error")
	}
}

// TestPrivacyServerNeverSeesRawData is a structural check of the privacy
// invariant: the logits a client emits have strictly lower dimension than
// its encoded data, and the client's raw table is never part of any message
// type exchanged with the server (enforced here by verifying the forward
// outputs cannot be the identity of the encoded rows).
func TestPrivacyLogitsAreNotRawData(t *testing.T) {
	ta, _ := twoClientTables(t, 80, 13)
	c, err := NewLocalClient(ta, NewShuffleCoordinator(1), 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	setup := Setup{
		Plan:          Plan{DiscServer: 2, GenClient: 2},
		SliceWidth:    8,
		GenBlockWidth: 8,
		DiscWidth:     4, // narrower than the encoded width
		LR:            1e-3,
		Seed:          1,
	}
	if setup.DiscWidth >= info.EncodedWidth {
		t.Fatalf("test setup broken: disc width %d must compress encoded width %d", setup.DiscWidth, info.EncodedWidth)
	}
	if err := c.Configure(setup); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	out, err := c.ForwardReal(nil)
	if err != nil {
		t.Fatalf("ForwardReal: %v", err)
	}
	if out.Cols() != setup.DiscWidth {
		t.Fatalf("real logits width %d want %d", out.Cols(), setup.DiscWidth)
	}
	if out.Rows() != info.Rows {
		t.Fatalf("full pass rows %d want %d", out.Rows(), info.Rows)
	}
}

func TestGTVWithoutCategoricalColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	// A federation where no client has categorical columns: the global CV
	// width is zero, D^s is absent, and training must still run.
	rng := rand.New(rand.NewSource(55))
	da := tensor.Randn(rng, 120, 2, 0, 1)
	db := tensor.Randn(rng, 120, 1, 5, 2)
	ta, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "a1", Kind: encoding.KindContinuous},
		{Name: "a2", Kind: encoding.KindContinuous},
	}, da)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	tb, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "b1", Kind: encoding.KindContinuous},
	}, db)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	coord := NewShuffleCoordinator(3)
	ca, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 3
	cfg.DiscSteps = 1
	cfg.BatchSize = 32
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	srv, err := NewServer([]Client{ca, cb}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	synth, err := srv.Synthesize(40)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if synth.Rows() != 40 || synth.Cols() != 3 || synth.Data.HasNaN() {
		t.Fatalf("bad synthesis %dx%d", synth.Rows(), synth.Cols())
	}
}

func TestSingleClientFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	// Degenerate but legal: one client owning every column. Equivalent to
	// a split centralized GAN.
	ta, tb := twoClientTables(t, 100, 77)
	joined, err := encoding.ConcatColumns(ta, tb)
	if err != nil {
		t.Fatalf("ConcatColumns: %v", err)
	}
	coord := NewShuffleCoordinator(9)
	c, err := NewLocalClient(joined, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 2
	cfg.DiscSteps = 1
	cfg.BatchSize = 32
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	srv, err := NewServer([]Client{c}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if _, _, err := srv.TrainRound(); err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	synth, err := srv.Synthesize(20)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if synth.Cols() != 3 {
		t.Fatalf("cols = %d", synth.Cols())
	}
}

// Property: SplitWidths always sums exactly to the total and gives every
// client at least one unit, for any normalized ratio vector.
func TestQuickSplitWidthsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		total := n + rng.Intn(512)
		raw := make([]float64, n)
		var sum float64
		for i := range raw {
			raw[i] = rng.Float64() + 1e-3
			sum += raw[i]
		}
		for i := range raw {
			raw[i] /= sum
		}
		widths, err := SplitWidths(total, raw)
		if err != nil {
			return false
		}
		got := 0
		for _, w := range widths {
			if w < 1 {
				return false
			}
			got += w
		}
		return got == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every valid plan's name parses back to itself.
func TestQuickPlanRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := Plan{
			DiscServer: int(a % 5), DiscClient: int(b % 5),
			GenServer: int(c % 5), GenClient: int(d % 5),
		}
		parsed, err := ParsePlan(p.Name())
		return err == nil && parsed == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffle seeds are deterministic in (secret, round) and the
// round/publication namespaces never collide for the same argument.
func TestQuickShuffleSeeds(t *testing.T) {
	f := func(secret int64, round uint16) bool {
		a := NewShuffleCoordinator(secret)
		b := NewShuffleCoordinator(secret)
		r := int(round)
		return a.SeedForRound(r) == b.SeedForRound(r) &&
			a.SeedForRound(r) != a.PublicationSeed(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	ta, tb := twoClientTables(t, 150, 61)
	coord := NewShuffleCoordinator(4)
	ca, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 2
	cfg.DiscSteps = 1
	cfg.BatchSize = 40
	cfg.Pac = 8
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	srv, err := NewServer([]Client{ca, cb}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Train(nil); err != nil {
		t.Fatalf("Train with pac: %v", err)
	}
	synth, err := srv.Synthesize(20)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if synth.Data.HasNaN() {
		t.Fatal("NaN in pac-trained synthesis")
	}
}

func TestPacValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 30
	cfg.Pac = 7 // 30 not divisible by 7
	if err := cfg.validate(); err == nil {
		t.Fatal("expected pac divisibility error")
	}
	cfg = DefaultConfig()
	cfg.DPLogitNoise = -1
	if err := cfg.validate(); err == nil {
		t.Fatal("expected negative DP noise error")
	}
}

func TestDPNoiseTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	ta, tb := twoClientTables(t, 120, 62)
	coord := NewShuffleCoordinator(4)
	ca, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 2
	cfg.DiscSteps = 1
	cfg.BatchSize = 32
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	cfg.DPLogitNoise = 0.5
	srv, err := NewServer([]Client{ca, cb}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Train(nil); err != nil {
		t.Fatalf("Train with DP noise: %v", err)
	}
}

func TestSynthesizeConditionServerValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	srv, _ := newTestSystem(t, Plan{DiscServer: 2, GenClient: 2}, 120, false)
	if _, err := srv.SynthesizeCondition(0, 0, 0, 0); err == nil {
		t.Fatal("expected row-count error")
	}
	if _, err := srv.SynthesizeCondition(10, 9, 0, 0); err == nil {
		t.Fatal("expected client range error")
	}
	// Client 1 (income only) has no categorical spans.
	if _, err := srv.SynthesizeCondition(10, 1, 0, 0); err == nil {
		t.Fatal("expected span range error from client without categorical columns")
	}
	// Valid condition on client 0's segment column.
	synth, err := srv.SynthesizeCondition(20, 0, 0, 1)
	if err != nil {
		t.Fatalf("SynthesizeCondition: %v", err)
	}
	if synth.Rows() != 20 || synth.Cols() != 3 {
		t.Fatalf("conditional synthesis shape %dx%d", synth.Rows(), synth.Cols())
	}
}
