package vfl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// WireClient is the server-side proxy for a remote client process speaking
// the gtvwire binary protocol (see wire.go). Unlike RPCClient, whose
// net/rpc connection serializes calls, a WireClient pipelines: concurrent
// calls each get a sequence number, all frames share one persistent
// connection, and a demux goroutine routes each response to the caller
// waiting on its sequence number — so the fan-out in Server overlaps
// network round-trips to a single client as well as across clients.
//
// Every call observes the client's CallPolicy exactly like RPCClient:
// per-call deadlines, transient-error retry with backoff, and a redial
// before each retry so a restarted client process can rejoin mid-training.
type WireClient struct {
	network, addr string
	policy        CallPolicy

	// f32 selects the float32 element encoding for activation and
	// gradient matrices (see SetFloat32). It must be set before the first
	// call and never changed mid-training.
	f32 bool

	// delta enables the delta-encoded snapshot transfer (see SetDelta).
	delta bool

	// counters tallies exact framed bytes (headers included) across the
	// connection's whole lifetime, surviving redials.
	counters wireByteCounters

	mu     sync.Mutex
	sess   *wireSession // guarded by mu
	closed bool         // guarded by mu; set by Close, fails every later call

	// snapMu guards the delta-transfer base: the last full snapshot blob
	// this proxy received, and the responder epoch that produced it. The
	// cache survives redials (the responder detects staleness by epoch and
	// falls back to a full transfer).
	snapMu    sync.Mutex
	snapBase  []byte
	snapEpoch uint64
}

// wireByteCounters tallies framed traffic in both directions, total and
// attributed per wire method.
type wireByteCounters struct {
	sent, recv     atomic.Int64
	sentBy, recvBy [wireNumMethods]atomic.Int64
}

func (w *wireByteCounters) addSent(method byte, n int64) {
	w.sent.Add(n)
	if int(method) < wireNumMethods {
		w.sentBy[method].Add(n)
	}
}

func (w *wireByteCounters) addRecv(method byte, n int64) {
	w.recv.Add(n)
	if int(method) < wireNumMethods {
		w.recvBy[method].Add(n)
	}
}

var _ Client = (*WireClient)(nil)

// DialWireClient connects to a remote GTV client over the binary wire with
// the zero CallPolicy (no deadline, no retry).
func DialWireClient(network, addr string) (*WireClient, error) {
	return DialWireClientPolicy(network, addr, CallPolicy{})
}

// DialWireClientPolicy connects to a remote GTV client over the binary
// wire and applies the policy to every subsequent call.
func DialWireClientPolicy(network, addr string, p CallPolicy) (*WireClient, error) {
	c := &WireClient{network: network, addr: addr, policy: p}
	if _, err := c.session(); err != nil {
		return nil, fmt.Errorf("vfl: dialing wire client %s: %w", addr, err)
	}
	return c, nil
}

// SetFloat32 switches activation and gradient matrices (ForwardSynthetic,
// ForwardReal, BackwardDisc, BackwardGen, GenerateRows) to the lossy
// float32 element encoding, halving boundary traffic. Setup, conditional
// vectors and published tables always travel as float64. Must be called
// before training starts; the mode is per-call-site, not negotiated, so
// both transports of a round must agree (the server sets it from one
// flag).
func (c *WireClient) SetFloat32(on bool) { c.f32 = on }

// SetDelta enables the delta-encoded snapshot transfer: after the first
// full Snapshot fetch, subsequent fetches ship only the byte ranges that
// changed since the last one, with an epoch tag and checksum forcing a
// full re-transfer whenever the proxy's base is stale (responder restart,
// missed fetch). Lossless — the reassembled blob is byte-identical to a
// full fetch — so it composes with checkpoint golden tests. Off by
// default.
func (c *WireClient) SetDelta(on bool) { c.delta = on }

// WireBytes returns the exact framed bytes exchanged with this client in
// both directions, headers included.
func (c *WireClient) WireBytes() int64 {
	return c.counters.sent.Load() + c.counters.recv.Load()
}

// WireBytesByMethod returns the same traffic attributed per wire method.
func (c *WireClient) WireBytesByMethod() WireMethodBytes {
	var out WireMethodBytes
	for i := range out {
		out[i] = c.counters.sentBy[i].Load() + c.counters.recvBy[i].Load()
	}
	return out
}

// session returns the live session, dialing if necessary. The dial
// happens under mu deliberately — single-flight, so a burst of pipelined
// calls after a redial shares one connection instead of racing to dial —
// and is bounded by the policy timeout, so holding the lock cannot
// outlive the deadline the caller was promised.
func (c *WireClient) session() (*wireSession, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("vfl: wire client %s: %w", c.addr, net.ErrClosed)
	}
	if c.sess == nil {
		//lint:ignore lockorder single-flight dial: mu serializes redials on purpose, and DialTimeout bounds the hold to the per-call policy deadline
		conn, err := net.DialTimeout(c.network, c.addr, c.policy.Timeout)
		if err != nil {
			return nil, err
		}
		c.sess = newWireSession(conn, &c.counters)
	}
	return c.sess, nil
}

// redial drops the (presumed broken) session so the next attempt dials
// fresh. Calls in flight on the old session fail transiently and retry
// onto the new one.
func (c *WireClient) redial() {
	c.mu.Lock()
	if c.sess != nil {
		c.sess.fail(fmt.Errorf("vfl: wire session reset: %w", net.ErrClosed))
		c.sess = nil
	}
	c.mu.Unlock()
}

// Close shuts the connection down; in-flight calls fail, and every later
// call fails fast instead of redialing a client that was told to go away.
func (c *WireClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.sess == nil {
		return nil
	}
	err := c.sess.conn.Close()
	c.sess.fail(fmt.Errorf("vfl: wire client closed: %w", net.ErrClosed))
	c.sess = nil
	return err
}

// wireResult is one demuxed response frame.
type wireResult struct {
	hdr     wireHeader
	payload []byte // pooled; the receiver must putWireBuf after decoding
	err     error
}

// wireSession is one live connection: a write half serializing frame
// writes, and a read-loop goroutine demultiplexing response frames to the
// callers registered in pending.
type wireSession struct {
	conn     net.Conn
	r        *bufio.Reader // owned by the readLoop goroutine
	counters *wireByteCounters

	wmu sync.Mutex
	w   *bufio.Writer // guarded by wmu

	mu      sync.Mutex
	nextSeq uint64                     // guarded by mu
	pending map[uint64]chan wireResult // guarded by mu
	closed  error                      // guarded by mu; non-nil once the session is dead
}

func newWireSession(conn net.Conn, counters *wireByteCounters) *wireSession {
	s := &wireSession{
		conn:     conn,
		r:        bufio.NewReaderSize(conn, 1<<16),
		w:        bufio.NewWriterSize(conn, 1<<16),
		counters: counters,
		pending:  make(map[uint64]chan wireResult),
	}
	//lint:ignore goroleak demux daemon whose exit path is the connection itself: readWireFrame fails the moment the conn closes or resets, and fail() then returns the loop
	go s.readLoop()
	return s
}

// fail marks the session dead exactly once: the connection closes, and
// every pending caller receives err. Later roundTrip attempts fail fast
// with the same error.
func (s *wireSession) fail(err error) {
	s.mu.Lock()
	if s.closed != nil {
		s.mu.Unlock()
		return
	}
	s.closed = err
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()
	// The session is already being torn down for err; the close error
	// carries no further information.
	//lint:ignore errdrop closing a dead session's connection, the error adds nothing
	_ = s.conn.Close()
	for _, ch := range pending {
		ch <- wireResult{err: err}
	}
}

// readLoop demultiplexes response frames to waiting callers until the
// connection dies. Frames whose caller abandoned the wait (per-call
// deadline fired) are dropped.
func (s *wireSession) readLoop() {
	for {
		h, payload, err := readWireFrame(s.r)
		if err != nil {
			s.fail(fmt.Errorf("vfl: wire connection lost: %w", err))
			return
		}
		s.counters.addRecv(h.method, wireHeaderLen+int64(h.payloadLen))
		s.mu.Lock()
		ch, ok := s.pending[h.seq]
		delete(s.pending, h.seq)
		s.mu.Unlock()
		if !ok {
			putWireBuf(payload)
			continue
		}
		ch <- wireResult{hdr: h, payload: payload}
	}
}

// writeFrame writes one frame and flushes. Concurrent pipelined calls
// interleave whole frames, never partial ones.
func (s *wireSession) writeFrame(h wireHeader, payload []byte) error {
	var hdr [wireHeaderLen]byte
	h.put(hdr[:])
	s.wmu.Lock()
	defer s.wmu.Unlock()
	//lint:ignore lockorder wmu exists to serialize whole frames onto the shared conn; a peer stuck mid-write dies with the conn, which fails the session and releases every caller
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.w.Write(payload); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.counters.addSent(h.method, int64(wireHeaderLen+len(payload)))
	return nil
}

// roundTrip sends one request frame and blocks until its response frame
// (matched by sequence number) arrives or the session dies. The returned
// payload is pooled; the caller must putWireBuf it after decoding.
func (s *wireSession) roundTrip(method, flags byte, payload []byte) (wireHeader, []byte, error) {
	if len(payload) > wireMaxPayload {
		return wireHeader{}, nil, fmt.Errorf("gtvwire: request payload %d exceeds limit %d", len(payload), wireMaxPayload)
	}
	ch := make(chan wireResult, 1)
	s.mu.Lock()
	if s.closed != nil {
		err := s.closed
		s.mu.Unlock()
		return wireHeader{}, nil, err
	}
	seq := s.nextSeq
	s.nextSeq++
	s.pending[seq] = ch
	s.mu.Unlock()

	h := wireHeader{
		payloadLen: uint32(len(payload)),
		version:    wireVersion,
		kind:       wireKindRequest,
		method:     method,
		flags:      flags,
		seq:        seq,
	}
	if err := s.writeFrame(h, payload); err != nil {
		// fail drains pending (including this call's channel) unless the
		// readLoop delivered the response first — either way ch is filled.
		s.fail(fmt.Errorf("vfl: wire write failed: %w", err))
	}
	r := <-ch
	return r.hdr, r.payload, r.err
}

// wireCall runs one protocol call over the wire under the client's policy.
// encode appends the request payload; decode reads the response payload.
// Each attempt builds its own request and owns its own response, so an
// abandoned timed-out attempt can never race with a retry.
func wireCall[R any](c *WireClient, method byte, f32 bool, encode func(*wireEnc), decode func(*wireDec) R) (R, error) {
	what := fmt.Sprintf("%s to client %s", wireMethodName(method), c.addr)
	return callWithPolicy(c.policy, what, c.redial, func() (R, error) {
		var zero R
		s, err := c.session()
		if err != nil {
			return zero, err
		}
		enc := newWireEnc()
		if encode != nil {
			encode(enc)
		}
		var flags byte
		if f32 {
			flags |= wireFlagF32
		}
		hdr, payload, err := s.roundTrip(method, flags, enc.buf)
		enc.release()
		if err != nil {
			return zero, err
		}
		defer putWireBuf(payload)
		dec := newWireDec(payload)
		if hdr.kind == wireKindError {
			// Application-level error from the remote client: the call
			// reached it, so this is deliberately not transient.
			msg := dec.str()
			if derr := dec.finish(); derr != nil {
				return zero, derr
			}
			return zero, errors.New(msg)
		}
		var out R
		if decode != nil {
			out = decode(dec)
		}
		if derr := dec.finish(); derr != nil {
			return zero, derr
		}
		return out, nil
	})
}

// Info implements Client.
func (c *WireClient) Info() (ClientInfo, error) {
	return wireCall(c, wireMethodInfo, false, nil, func(d *wireDec) ClientInfo { return d.clientInfo() })
}

// Configure implements Client.
func (c *WireClient) Configure(s Setup) error {
	_, err := wireCall[struct{}](c, wireMethodConfigure, false, func(e *wireEnc) { e.setup(s) }, nil)
	return err
}

// SampleCV implements Client.
func (c *WireClient) SampleCV(batch int, synthesis bool) (*condvec.Batch, error) {
	return wireCall(c, wireMethodSampleCV, false, func(e *wireEnc) {
		e.i64(int64(batch))
		e.bool(synthesis)
	}, func(d *wireDec) *condvec.Batch { return d.cvBatch() })
}

// SampleCVFixed implements Client.
func (c *WireClient) SampleCVFixed(batch, spanIdx, category int) (*condvec.Batch, error) {
	return wireCall(c, wireMethodSampleCVFixed, false, func(e *wireEnc) {
		e.i64(int64(batch))
		e.i64(int64(spanIdx))
		e.i64(int64(category))
	}, func(d *wireDec) *condvec.Batch { return d.cvBatch() })
}

// ForwardSynthetic implements Client.
//
//shape: in(B,W) out(B,K)
func (c *WireClient) ForwardSynthetic(slice *tensor.Dense, phase Phase) (*tensor.Dense, error) {
	return wireCall(c, wireMethodForwardSynthetic, c.f32, func(e *wireEnc) {
		e.matrix(slice, c.f32)
		e.i64(int64(phase))
	}, func(d *wireDec) *tensor.Dense { return d.matrix() })
}

// ForwardReal implements Client.
//
//shape: out(R,K)
func (c *WireClient) ForwardReal(idx []int) (*tensor.Dense, error) {
	return wireCall(c, wireMethodForwardReal, c.f32, func(e *wireEnc) {
		e.bool(idx == nil)
		e.ints(idx)
	}, func(d *wireDec) *tensor.Dense { return d.matrix() })
}

// BackwardDisc implements Client.
//
//shape: in(Bs,K) in(Br,K2)
func (c *WireClient) BackwardDisc(gradSynth, gradReal *tensor.Dense) error {
	_, err := wireCall[struct{}](c, wireMethodBackwardDisc, c.f32, func(e *wireEnc) {
		e.matrix(gradSynth, c.f32)
		e.matrix(gradReal, c.f32)
	}, nil)
	return err
}

// BackwardGen implements Client.
//
//shape: in(B,K) out(B,W)
func (c *WireClient) BackwardGen(gradSynth *tensor.Dense, conditioned bool) (*tensor.Dense, error) {
	return wireCall(c, wireMethodBackwardGen, c.f32, func(e *wireEnc) {
		e.matrix(gradSynth, c.f32)
		e.bool(conditioned)
	}, func(d *wireDec) *tensor.Dense { return d.matrix() })
}

// EndRound implements Client.
func (c *WireClient) EndRound(round int) error {
	_, err := wireCall[struct{}](c, wireMethodEndRound, false, func(e *wireEnc) { e.i64(int64(round)) }, nil)
	return err
}

// GenerateRows implements Client.
//
//shape: in(B,W)
func (c *WireClient) GenerateRows(slice *tensor.Dense) error {
	_, err := wireCall[struct{}](c, wireMethodGenerateRows, c.f32, func(e *wireEnc) { e.matrix(slice, c.f32) }, nil)
	return err
}

// Snapshot implements Client: it fetches the remote client's checkpoint
// blob, an opaque KindClient gtvsnap image. With SetDelta enabled the
// fetch ships only the byte ranges changed since the previous one (see
// wiredelta.go); a stale base — responder restarted, checksum mismatch —
// triggers one transparent full re-fetch.
func (c *WireClient) Snapshot() ([]byte, error) {
	if !c.delta {
		return wireCall(c, wireMethodSnapshot, false, func(e *wireEnc) {
			e.bool(false)
		}, func(d *wireDec) []byte { return d.bytes() })
	}
	blob, err := c.snapshotDelta()
	if err != nil && errors.Is(err, errWireSnapStale) {
		c.snapMu.Lock()
		c.snapBase, c.snapEpoch = nil, 0
		c.snapMu.Unlock()
		blob, err = c.snapshotDelta()
	}
	return blob, err
}

// snapshotDelta runs one delta-capable snapshot fetch against the cached
// base and updates the cache on success.
func (c *WireClient) snapshotDelta() ([]byte, error) {
	c.snapMu.Lock()
	base, baseEpoch := c.snapBase, c.snapEpoch
	c.snapMu.Unlock()
	type snapReply struct {
		blob  []byte
		epoch uint64
	}
	reply, err := wireCall(c, wireMethodSnapshot, false, func(e *wireEnc) {
		e.bool(true)
		if base == nil {
			e.uvarint(0)
		} else {
			e.uvarint(baseEpoch)
		}
	}, func(d *wireDec) snapReply {
		form := d.u8()
		epoch := d.uvarint()
		switch form {
		case wireSnapFull:
			return snapReply{blob: d.bytes(), epoch: epoch}
		case wireSnapDelta:
			crc := d.u32()
			newLen := int(d.uvarint())
			if d.err != nil {
				return snapReply{}
			}
			if newLen != len(base) {
				d.fail("snapshot delta against %d-byte base, have %d: %w", newLen, len(base), errWireSnapStale)
				return snapReply{}
			}
			blob := decodeSnapDelta(d, base, newLen)
			if blob == nil {
				return snapReply{}
			}
			if snapDeltaCRC(blob) != crc {
				d.fail("snapshot delta checksum mismatch: %w", errWireSnapStale)
				return snapReply{}
			}
			return snapReply{blob: blob, epoch: epoch}
		}
		d.fail("invalid snapshot transfer form %d", form)
		return snapReply{}
	})
	if err != nil {
		return nil, err
	}
	c.snapMu.Lock()
	// Keep a private copy as the next base: the returned blob escapes to
	// the caller, which may retain or mutate it.
	c.snapBase = append([]byte(nil), reply.blob...)
	c.snapEpoch = reply.epoch
	c.snapMu.Unlock()
	return reply.blob, nil
}

// Restore implements Client: it ships a checkpoint blob back to the
// remote client for reinstatement.
func (c *WireClient) Restore(state []byte) error {
	_, err := wireCall[struct{}](c, wireMethodRestore, false, func(e *wireEnc) { e.bytes(state) }, nil)
	return err
}

// Publish implements Client.
func (c *WireClient) Publish() (*encoding.Table, error) {
	reply, err := wireCall(c, wireMethodPublish, false, nil, func(d *wireDec) *encoding.Table {
		specs := d.specs()
		data := d.matrix()
		return &encoding.Table{Specs: specs, Data: data}
	})
	if err != nil {
		return nil, err
	}
	if reply.Data == nil {
		return nil, errors.New("gtvwire: Publish response carries no table data")
	}
	return encoding.NewTable(reply.Specs, reply.Data)
}
