package vfl

import (
	"errors"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestWireMatrixRoundTrip(t *testing.T) {
	m := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	w := ToWire(m)
	back := FromWire(w)
	if !back.Equal(m) {
		t.Fatalf("wire round trip %v -> %v", m, back)
	}
	// ToWire must copy: mutating the wire data must not touch the source.
	w.Data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("ToWire must deep-copy the matrix")
	}
}

func TestWireMatrixNil(t *testing.T) {
	w := ToWire(nil)
	if w.Rows != 0 || w.Cols != 0 {
		t.Fatalf("nil wire matrix = %+v", w)
	}
}

// serveLocal starts an RPC server for a fresh LocalClient and returns a
// connected proxy.
func serveLocal(t *testing.T, c Client) *RPCClient {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		// Listener close ends the serve loop; other errors surface in the
		// client-side RPC calls, so they are safe to drop here.
		_ = ServeClient(lis, c)
	}()
	proxy, err := DialClient("tcp", lis.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })
	return proxy
}

func TestRPCEndToEndTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("networked GAN training in -short mode")
	}
	ta, tb := twoClientTables(t, 200, 21)
	coord := NewShuffleCoordinator(77)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	lb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	pa := serveLocal(t, la)
	pb := serveLocal(t, lb)

	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 3
	cfg.DiscSteps = 2
	cfg.BatchSize = 32
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	srv, err := NewServer([]Client{pa, pb}, cfg)
	if err != nil {
		t.Fatalf("NewServer over RPC: %v", err)
	}
	if err := srv.Train(nil); err != nil {
		t.Fatalf("Train over RPC: %v", err)
	}
	synth, err := srv.Synthesize(50)
	if err != nil {
		t.Fatalf("Synthesize over RPC: %v", err)
	}
	if synth.Rows() != 50 || synth.Cols() != 3 {
		t.Fatalf("synthetic shape %dx%d", synth.Rows(), synth.Cols())
	}
	if synth.Data.HasNaN() {
		t.Fatal("synthetic data has NaN")
	}
}

func TestRPCFaithfulMode(t *testing.T) {
	if testing.Short() {
		t.Skip("networked GAN training in -short mode")
	}
	ta, tb := twoClientTables(t, 120, 31)
	coord := NewShuffleCoordinator(88)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	lb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	pa := serveLocal(t, la)
	pb := serveLocal(t, lb)

	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 1, DiscClient: 1, GenServer: 1, GenClient: 1}
	cfg.Rounds = 2
	cfg.DiscSteps = 1
	cfg.BatchSize = 16
	cfg.NoiseDim = 8
	cfg.BlockDim = 16
	cfg.FaithfulRealPass = true
	srv, err := NewServer([]Client{pa, pb}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if _, _, err := srv.TrainRound(); err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
}

func TestRPCErrorPropagation(t *testing.T) {
	ta, _ := twoClientTables(t, 60, 41)
	coord := NewShuffleCoordinator(55)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	proxy := serveLocal(t, la)
	// Forward before configure must fail across the wire.
	if _, err := proxy.ForwardSynthetic(tensor.New(2, 4), PhaseDiscriminator); err == nil {
		t.Fatal("expected remote error")
	}
	// Publish with nothing buffered must fail across the wire.
	if _, err := proxy.Publish(); err == nil {
		t.Fatal("expected remote error")
	}
}

// TestRPCMatchesLocalTrajectory trains two identically-seeded systems — one
// with in-process clients, one with RPC proxies — and verifies the server's
// top-model parameters end up byte-identical. The transport must be fully
// transparent to the learning process.
func TestRPCMatchesLocalTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("networked GAN training in -short mode")
	}
	build := func(overRPC bool) *Server {
		ta, tb := twoClientTables(t, 120, 51)
		coord := NewShuffleCoordinator(66)
		la, err := NewLocalClient(ta, coord, 1)
		if err != nil {
			t.Fatalf("NewLocalClient: %v", err)
		}
		lb, err := NewLocalClient(tb, coord, 2)
		if err != nil {
			t.Fatalf("NewLocalClient: %v", err)
		}
		clients := []Client{la, lb}
		if overRPC {
			clients = []Client{serveLocal(t, la), serveLocal(t, lb)}
		}
		cfg := DefaultConfig()
		cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
		cfg.Rounds = 2
		cfg.DiscSteps = 2
		cfg.BatchSize = 32
		cfg.NoiseDim = 16
		cfg.BlockDim = 32
		srv, err := NewServer(clients, cfg)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		if err := srv.Train(nil); err != nil {
			t.Fatalf("Train: %v", err)
		}
		return srv
	}
	local := build(false)
	remote := build(true)
	lp := local.gTop.Params()
	rp := remote.gTop.Params()
	for k := range lp {
		if !lp[k].Data().Equal(rp[k].Data()) {
			t.Fatalf("top generator param %d diverges between local and RPC runs", k)
		}
	}
	dp := local.dTop.Params()
	rdp := remote.dTop.Params()
	for k := range dp {
		if !dp[k].Data().Equal(rdp[k].Data()) {
			t.Fatalf("top discriminator param %d diverges between local and RPC runs", k)
		}
	}
}

// serveKillable serves a client over TCP like serveLocal, but also tracks
// accepted connections so the returned kill function can sever both the
// listener and every live connection — simulating a client process dying
// mid-round.
func serveKillable(t *testing.T, c Client) (addr string, kill func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("GTVClient", NewClientService(c)); err != nil {
		t.Fatalf("register: %v", err)
	}
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go srv.ServeConn(conn)
		}
	}()
	kill = func() {
		lis.Close()
		mu.Lock()
		for _, cn := range conns {
			cn.Close()
		}
		conns = nil
		mu.Unlock()
	}
	t.Cleanup(kill)
	return lis.Addr().String(), kill
}

// TestRPCClientDisconnectMidRound kills one client process between rounds
// and verifies the next round fails within the retry budget with an error
// naming the dead client — instead of hanging the server.
func TestRPCClientDisconnectMidRound(t *testing.T) {
	ta, tb := twoClientTables(t, 100, 91)
	coord := NewShuffleCoordinator(12)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	lb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	pa := serveLocal(t, la)
	addrB, killB := serveKillable(t, lb)
	policy := CallPolicy{Timeout: 5 * time.Second, MaxAttempts: 2, Backoff: 10 * time.Millisecond}
	pb, err := DialClientPolicy("tcp", addrB, policy)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { pb.Close() })

	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 2
	cfg.DiscSteps = 1
	cfg.BatchSize = 16
	cfg.NoiseDim = 8
	cfg.BlockDim = 16
	srv, err := NewServer([]Client{pa, pb}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if _, _, err := srv.TrainRound(); err != nil {
		t.Fatalf("round 1 with both clients alive: %v", err)
	}

	killB()
	start := time.Now()
	_, _, err = srv.TrainRound()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("round 2 must fail after client B died")
	}
	if !strings.Contains(err.Error(), addrB) {
		t.Fatalf("error should name the dead client %s: %v", addrB, err)
	}
	// Budget: 2 fast-failing attempts plus backoff, far under the 5s
	// per-call deadline; 10s leaves slack for a loaded CI machine.
	if elapsed > 10*time.Second {
		t.Fatalf("dead client stalled the round for %v", elapsed)
	}
}

// TestRPCSlowClientTripsDeadline serves a delay-injected client over real
// TCP and verifies a short per-call deadline converts the slow reply into a
// descriptive ErrCallTimeout well within the test's budget.
func TestRPCSlowClientTripsDeadline(t *testing.T) {
	ta, _ := twoClientTables(t, 60, 43)
	coord := NewShuffleCoordinator(31)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	slow := NewFaultyTransport(la)
	slow.SetDelay(2 * time.Second)
	addr, _ := serveKillable(t, slow)
	proxy, err := DialClientPolicy("tcp", addr, CallPolicy{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })

	start := time.Now()
	_, err = proxy.Info()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout from slow client, got: %v", err)
	}
	if !strings.Contains(err.Error(), addr) {
		t.Fatalf("timeout should name the slow client %s: %v", addr, err)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("deadline did not cut the 2s slow call short: took %v", elapsed)
	}
}
