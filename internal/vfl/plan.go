// Package vfl implements the GTV vertical-federated-learning runtime: the
// neural-network partition plans (D^{n3}_{n4} G^{n1}_{n2} in the paper's
// notation), the feature-ratio vector P_r with its width-splitting rules,
// the shared-seed shuffle coordination that implements
// training-with-shuffling, the client and server roles of Algorithm 1, and
// a net/rpc transport for running clients in separate processes.
//
// Invariants enforced by every plan (see DESIGN.md §2):
//   - the generator's output FC always lives on the client, so synthetic
//     columns materialize only at their owner;
//   - the discriminator's input FC always lives on the client, so raw rows
//     never leave their owner;
//   - the discriminator's score FC always lives on the server, so
//     cross-client correlations are judged jointly.
package vfl

import (
	"fmt"
)

// Plan is a neural-network partition between server and clients. Counts are
// trunk blocks only: the boundary FC layers required by the privacy
// invariants exist regardless of the plan.
type Plan struct {
	// DiscServer (n3) and DiscClient (n4) are FN-block counts of the
	// discriminator on the server and on each client.
	DiscServer, DiscClient int
	// GenServer (n1) and GenClient (n2) are residual-block counts of the
	// generator on the server and on each client.
	GenServer, GenClient int
}

// Validate checks the plan's block counts.
func (p Plan) Validate() error {
	if p.DiscServer < 0 || p.DiscClient < 0 || p.GenServer < 0 || p.GenClient < 0 {
		return fmt.Errorf("vfl: negative block count in plan %s", p.Name())
	}
	return nil
}

// Name renders the paper's notation, e.g. D2_0G0_2 for
// "2 FN blocks on the server, 0 per client; 0 RN blocks on the server,
// 2 per client".
func (p Plan) Name() string {
	return fmt.Sprintf("D%d_%dG%d_%d", p.DiscServer, p.DiscClient, p.GenServer, p.GenClient)
}

// ParsePlan parses the Name form back into a Plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if _, err := fmt.Sscanf(s, "D%d_%dG%d_%d", &p.DiscServer, &p.DiscClient, &p.GenServer, &p.GenClient); err != nil {
		return Plan{}, fmt.Errorf("vfl: cannot parse plan %q: %w", s, err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// StandardPlans returns the paper's nine partition combinations: the three
// discriminator divisions {2_0, 1_1, 0_2} crossed with the three generator
// divisions, all with two trunk blocks in total.
func StandardPlans() []Plan {
	divs := [][2]int{{2, 0}, {1, 1}, {0, 2}}
	out := make([]Plan, 0, 9)
	for _, d := range divs {
		for _, g := range divs {
			out = append(out, Plan{DiscServer: d[0], DiscClient: d[1], GenServer: g[0], GenClient: g[1]})
		}
	}
	return out
}

// Ratios returns the paper's P_r vector: each client's feature count over
// the total.
func Ratios(featureCounts []int) ([]float64, error) {
	if len(featureCounts) == 0 {
		return nil, fmt.Errorf("vfl: no clients")
	}
	total := 0
	for i, c := range featureCounts {
		if c <= 0 {
			return nil, fmt.Errorf("vfl: client %d has %d features", i, c)
		}
		total += c
	}
	out := make([]float64, len(featureCounts))
	for i, c := range featureCounts {
		out[i] = float64(c) / float64(total)
	}
	return out, nil
}

// SplitWidths divides total units across clients proportionally to the
// ratio vector, guaranteeing every client at least one unit and an exact
// sum, using the largest-remainder method.
func SplitWidths(total int, ratios []float64) ([]int, error) {
	n := len(ratios)
	if n == 0 {
		return nil, fmt.Errorf("vfl: no ratios")
	}
	if total < n {
		return nil, fmt.Errorf("vfl: cannot split %d units across %d clients", total, n)
	}
	widths := make([]int, n)
	remainders := make([]float64, n)
	assigned := 0
	for i, r := range ratios {
		exact := r * float64(total)
		widths[i] = int(exact)
		remainders[i] = exact - float64(widths[i])
		assigned += widths[i]
	}
	// Distribute leftovers by largest remainder.
	for assigned < total {
		best := 0
		for i := 1; i < n; i++ {
			if remainders[i] > remainders[best] {
				best = i
			}
		}
		widths[best]++
		remainders[best] = -1
		assigned++
	}
	// Enforce the >=1 floor by stealing from the widest client.
	for i := range widths {
		for widths[i] < 1 {
			widest := 0
			for j := range widths {
				if widths[j] > widths[widest] {
					widest = j
				}
			}
			if widths[widest] <= 1 {
				return nil, fmt.Errorf("vfl: cannot give every client a positive width from %d units", total)
			}
			widths[widest]--
			widths[i]++
		}
	}
	return widths, nil
}
