package vfl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// FaultyTransport wraps a Client and injects configurable transport faults
// before each call reaches the inner client: fixed per-call delays (slow
// links), transient errors (flaky links — the call never reaches the
// client, so retrying is safe), and dropped calls that hang until released
// (dead links that trip per-call deadlines). It exists for the fault
// tolerance tests and benchmarks; production code never constructs one.
//
// All knobs are safe to adjust while calls are in flight.
type FaultyTransport struct {
	Inner Client

	mu       sync.Mutex
	delay    time.Duration // guarded by mu
	failures int           // guarded by mu; remaining injected errors; <0 means fail forever
	failErr  error         // guarded by mu
	drops    int           // guarded by mu; remaining calls that hang until Release
	release  chan struct{} // guarded by mu
	released bool          // guarded by mu
	calls    int           // guarded by mu
}

var _ Client = (*FaultyTransport)(nil)

// NewFaultyTransport wraps a client with a fault-free transport; use the
// Set/Fail/Drop knobs to inject faults.
func NewFaultyTransport(inner Client) *FaultyTransport {
	return &FaultyTransport{Inner: inner, release: make(chan struct{})}
}

// SetDelay makes every subsequent call sleep d before proceeding.
func (f *FaultyTransport) SetDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// FailNext injects a transient error into the next n calls (n < 0 means
// every call from now on). A nil err defaults to ErrTransient; the
// injected error always wraps ErrTransient so retry policies classify it
// correctly.
func (f *FaultyTransport) FailNext(n int, err error) {
	f.mu.Lock()
	f.failures = n
	f.failErr = err
	f.mu.Unlock()
}

// DropNext makes the next n calls hang until Release is called, then fail
// with a transient error — the shape of a dead peer whose TCP connection
// is still open.
func (f *FaultyTransport) DropNext(n int) {
	f.mu.Lock()
	f.drops = n
	f.mu.Unlock()
}

// Release unblocks all dropped and delayed calls, present and future:
// dropped calls fail with a transient error, delayed calls proceed to the
// inner client immediately. Tests call it in cleanup so leaked attempt
// goroutines exit promptly instead of sitting out their injected latency.
func (f *FaultyTransport) Release() {
	f.mu.Lock()
	if !f.released {
		f.released = true
		close(f.release)
	}
	f.mu.Unlock()
}

// Calls returns how many calls reached the transport (including faulted
// ones).
func (f *FaultyTransport) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// before applies the configured faults for one call; a non-nil return
// means the call must not reach the inner client.
func (f *FaultyTransport) before(method string) error {
	f.mu.Lock()
	f.calls++
	delay := f.delay
	var failErr error
	if f.failures != 0 {
		if f.failures > 0 {
			f.failures--
		}
		failErr = f.failErr
		if failErr == nil {
			failErr = ErrTransient
		}
	}
	drop := false
	if failErr == nil && f.drops > 0 {
		f.drops--
		drop = true
	}
	release := f.release
	f.mu.Unlock()

	if delay > 0 {
		// The delay races the release signal, so a test tearing down does
		// not sit out the full configured latency of every in-flight call.
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-release:
			t.Stop()
		}
	}
	if failErr != nil {
		if errors.Is(failErr, ErrTransient) {
			return fmt.Errorf("injected fault in %s: %w", method, failErr)
		}
		return fmt.Errorf("injected fault in %s: %w (%w)", method, failErr, ErrTransient)
	}
	if drop {
		<-release
		return fmt.Errorf("dropped call %s: %w", method, ErrTransient)
	}
	return nil
}

// Info implements Client.
func (f *FaultyTransport) Info() (ClientInfo, error) {
	if err := f.before("Info"); err != nil {
		return ClientInfo{}, err
	}
	return f.Inner.Info()
}

// Configure implements Client.
func (f *FaultyTransport) Configure(s Setup) error {
	if err := f.before("Configure"); err != nil {
		return err
	}
	return f.Inner.Configure(s)
}

// SampleCV implements Client.
func (f *FaultyTransport) SampleCV(batch int, synthesis bool) (*condvec.Batch, error) {
	if err := f.before("SampleCV"); err != nil {
		return nil, err
	}
	return f.Inner.SampleCV(batch, synthesis)
}

// SampleCVFixed implements Client.
func (f *FaultyTransport) SampleCVFixed(batch, spanIdx, category int) (*condvec.Batch, error) {
	if err := f.before("SampleCVFixed"); err != nil {
		return nil, err
	}
	return f.Inner.SampleCVFixed(batch, spanIdx, category)
}

// ForwardSynthetic implements Client.
//
//shape: in(B,W) out(B,K)
func (f *FaultyTransport) ForwardSynthetic(slice *tensor.Dense, phase Phase) (*tensor.Dense, error) {
	if err := f.before("ForwardSynthetic"); err != nil {
		return nil, err
	}
	return f.Inner.ForwardSynthetic(slice, phase)
}

// ForwardReal implements Client.
//
//shape: out(R,K)
func (f *FaultyTransport) ForwardReal(idx []int) (*tensor.Dense, error) {
	if err := f.before("ForwardReal"); err != nil {
		return nil, err
	}
	return f.Inner.ForwardReal(idx)
}

// BackwardDisc implements Client.
//
//shape: in(Bs,K) in(Br,K2)
func (f *FaultyTransport) BackwardDisc(gradSynth, gradReal *tensor.Dense) error {
	if err := f.before("BackwardDisc"); err != nil {
		return err
	}
	return f.Inner.BackwardDisc(gradSynth, gradReal)
}

// BackwardGen implements Client.
//
//shape: in(B,K) out(B,W)
func (f *FaultyTransport) BackwardGen(gradSynth *tensor.Dense, conditioned bool) (*tensor.Dense, error) {
	if err := f.before("BackwardGen"); err != nil {
		return nil, err
	}
	return f.Inner.BackwardGen(gradSynth, conditioned)
}

// EndRound implements Client.
func (f *FaultyTransport) EndRound(round int) error {
	if err := f.before("EndRound"); err != nil {
		return err
	}
	return f.Inner.EndRound(round)
}

// GenerateRows implements Client.
//
//shape: in(B,W)
func (f *FaultyTransport) GenerateRows(slice *tensor.Dense) error {
	if err := f.before("GenerateRows"); err != nil {
		return err
	}
	return f.Inner.GenerateRows(slice)
}

// Publish implements Client.
func (f *FaultyTransport) Publish() (*encoding.Table, error) {
	if err := f.before("Publish"); err != nil {
		return nil, err
	}
	return f.Inner.Publish()
}

// Snapshot implements Client.
func (f *FaultyTransport) Snapshot() ([]byte, error) {
	if err := f.before("Snapshot"); err != nil {
		return nil, err
	}
	return f.Inner.Snapshot()
}

// Restore implements Client.
func (f *FaultyTransport) Restore(state []byte) error {
	if err := f.before("Restore"); err != nil {
		return err
	}
	return f.Inner.Restore(state)
}

// WireBytes forwards the inner transport's connection-byte counter (zero
// when the inner client does not measure one), so fault-injection stacks
// keep exact CommStats.WireBytes accounting.
func (f *FaultyTransport) WireBytes() int64 {
	if wc, ok := f.Inner.(WireByteCounter); ok {
		return wc.WireBytes()
	}
	return 0
}

// WireBytesByMethod forwards the inner transport's per-method byte tally
// (zero when the inner client does not measure one).
func (f *FaultyTransport) WireBytesByMethod() WireMethodBytes {
	if wc, ok := f.Inner.(WireMethodByteCounter); ok {
		return wc.WireBytesByMethod()
	}
	return WireMethodBytes{}
}
