package vfl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"time"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// ErrCallTimeout marks a protocol call that exceeded its per-call deadline.
// Timeouts are not retried: the remote side may still be processing the
// call, and replaying a stateful protocol step against a live client could
// desynchronize the round.
var ErrCallTimeout = errors.New("vfl: call timed out")

// ErrTransient marks an error as a transient transport fault that is safe
// to retry because the call never reached (or never returned from) the
// client. FaultyTransport injects it; real transports surface the stdlib
// equivalents that IsTransient also recognizes.
var ErrTransient = errors.New("vfl: transient transport error")

// IsTransient reports whether an error looks like a transport-level fault
// worth retrying: the connection dropped, reset, or was never established.
// Application-level errors (rpc.ServerError, protocol violations) and
// deadline expiries are not transient.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, ErrCallTimeout) {
		return false
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, rpc.ErrShutdown) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr)
}

// CallPolicy bounds and hardens individual protocol calls. The zero value
// imposes nothing: no deadline, a single attempt — the legacy behavior.
type CallPolicy struct {
	// Timeout bounds each call attempt; 0 means wait forever.
	Timeout time.Duration
	// MaxAttempts is the total number of attempts per call, counting the
	// first; values <= 1 mean no retry. Only transient transport errors
	// (see IsTransient) are retried.
	MaxAttempts int
	// Backoff is the delay before the first retry; it doubles per retry.
	Backoff time.Duration
	// MaxBackoff caps the doubling; 0 means 2s.
	MaxBackoff time.Duration
}

// DefaultCallPolicy is a production-sane starting point: calls fail after
// 30s, transient transport errors are retried twice with 50ms/100ms
// backoff.
func DefaultCallPolicy() CallPolicy {
	return CallPolicy{Timeout: 30 * time.Second, MaxAttempts: 3, Backoff: 50 * time.Millisecond}
}

func (p CallPolicy) withDefaults() CallPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// callWithPolicy runs one logical call under the policy: each attempt gets
// its own deadline and its own result storage (an abandoned timed-out
// attempt can never race with a retry), transient failures back off and
// retry, and the final error is wrapped with the call's description so
// round-level failures name the method and client that caused them.
// onRetry, when non-nil, runs before every retry (transports use it to
// re-establish connections).
func callWithPolicy[R any](p CallPolicy, what string, onRetry func(), do func() (R, error)) (R, error) {
	p = p.withDefaults()
	var (
		out R
		err error
	)
	backoff := p.Backoff
	for attempt := 1; ; attempt++ {
		out, err = attemptOnce(p.Timeout, do)
		if err == nil || attempt >= p.MaxAttempts || !IsTransient(err) {
			break
		}
		if onRetry != nil {
			onRetry()
		}
		if backoff > 0 {
			//lint:ignore cancelflow backoff sleeps between attempts, when no attempt deadline is pending, and is bounded by MaxBackoff; CallPolicy carries no cancellation signal to select on
			time.Sleep(backoff)
			backoff *= 2
			if backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
		}
	}
	if err != nil {
		var zero R
		return zero, fmt.Errorf("%s: %w", what, err)
	}
	return out, nil
}

// attemptOnce runs do with a deadline. The attempt owns its result values,
// so when the deadline fires the abandoned goroutine's late write lands in
// storage nobody reads.
func attemptOnce[R any](timeout time.Duration, do func() (R, error)) (R, error) {
	if timeout <= 0 {
		return do()
	}
	type result struct {
		v   R
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := do()
		ch <- result{v, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		var zero R
		return zero, fmt.Errorf("no reply within %v: %w", timeout, ErrCallTimeout)
	}
}

// policyClient applies a CallPolicy to every method of an arbitrary Client.
// It is the in-process counterpart of RPCClient's built-in policy: tests
// stack it on a FaultyTransport to exercise retry, deadline and
// cancellation paths without a network, and deployments can use it to
// harden any custom transport.
type policyClient struct {
	inner  Client
	policy CallPolicy
	name   string
}

// WithPolicy wraps a client so every call observes the policy's deadline
// and transient-error retry. name labels the client in error messages.
func WithPolicy(inner Client, name string, p CallPolicy) Client {
	return &policyClient{inner: inner, policy: p, name: name}
}

var _ Client = (*policyClient)(nil)

func (c *policyClient) what(method string) string {
	return fmt.Sprintf("%s on client %s", method, c.name)
}

func (c *policyClient) Info() (ClientInfo, error) {
	return callWithPolicy(c.policy, c.what("Info"), nil, c.inner.Info)
}

func (c *policyClient) Configure(s Setup) error {
	_, err := callWithPolicy(c.policy, c.what("Configure"), nil, func() (struct{}, error) {
		return struct{}{}, c.inner.Configure(s)
	})
	return err
}

func (c *policyClient) SampleCV(batch int, synthesis bool) (*condvec.Batch, error) {
	return callWithPolicy(c.policy, c.what("SampleCV"), nil, func() (*condvec.Batch, error) {
		return c.inner.SampleCV(batch, synthesis)
	})
}

func (c *policyClient) SampleCVFixed(batch, spanIdx, category int) (*condvec.Batch, error) {
	return callWithPolicy(c.policy, c.what("SampleCVFixed"), nil, func() (*condvec.Batch, error) {
		return c.inner.SampleCVFixed(batch, spanIdx, category)
	})
}

//shape: in(B,W) out(B,K)
func (c *policyClient) ForwardSynthetic(slice *tensor.Dense, phase Phase) (*tensor.Dense, error) {
	return callWithPolicy(c.policy, c.what("ForwardSynthetic"), nil, func() (*tensor.Dense, error) {
		return c.inner.ForwardSynthetic(slice, phase)
	})
}

//shape: out(R,K)
func (c *policyClient) ForwardReal(idx []int) (*tensor.Dense, error) {
	return callWithPolicy(c.policy, c.what("ForwardReal"), nil, func() (*tensor.Dense, error) {
		return c.inner.ForwardReal(idx)
	})
}

//shape: in(Bs,K) in(Br,K2)
func (c *policyClient) BackwardDisc(gradSynth, gradReal *tensor.Dense) error {
	_, err := callWithPolicy(c.policy, c.what("BackwardDisc"), nil, func() (struct{}, error) {
		return struct{}{}, c.inner.BackwardDisc(gradSynth, gradReal)
	})
	return err
}

//shape: in(B,K) out(B,W)
func (c *policyClient) BackwardGen(gradSynth *tensor.Dense, conditioned bool) (*tensor.Dense, error) {
	return callWithPolicy(c.policy, c.what("BackwardGen"), nil, func() (*tensor.Dense, error) {
		return c.inner.BackwardGen(gradSynth, conditioned)
	})
}

func (c *policyClient) EndRound(round int) error {
	_, err := callWithPolicy(c.policy, c.what("EndRound"), nil, func() (struct{}, error) {
		return struct{}{}, c.inner.EndRound(round)
	})
	return err
}

//shape: in(B,W)
func (c *policyClient) GenerateRows(slice *tensor.Dense) error {
	_, err := callWithPolicy(c.policy, c.what("GenerateRows"), nil, func() (struct{}, error) {
		return struct{}{}, c.inner.GenerateRows(slice)
	})
	return err
}

func (c *policyClient) Publish() (*encoding.Table, error) {
	return callWithPolicy(c.policy, c.what("Publish"), nil, c.inner.Publish)
}

func (c *policyClient) Snapshot() ([]byte, error) {
	return callWithPolicy(c.policy, c.what("Snapshot"), nil, c.inner.Snapshot)
}

func (c *policyClient) Restore(state []byte) error {
	_, err := callWithPolicy(c.policy, c.what("Restore"), nil, func() (struct{}, error) {
		return struct{}{}, c.inner.Restore(state)
	})
	return err
}

// WireBytes forwards the inner transport's connection-byte counter (zero
// when the inner client does not measure one), so policy wrappers keep
// exact CommStats.WireBytes accounting.
func (c *policyClient) WireBytes() int64 {
	if wc, ok := c.inner.(WireByteCounter); ok {
		return wc.WireBytes()
	}
	return 0
}
