package vfl

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// deltaRoundTrip encodes cur against base and reassembles it.
func deltaRoundTrip(t *testing.T, base, cur []byte) (opsLen int) {
	t.Helper()
	enc := newWireEnc()
	appendSnapDeltaOps(enc, base, cur)
	opsLen = len(enc.buf)
	dec := newWireDec(enc.buf)
	got := decodeSnapDelta(dec, base, len(cur))
	if err := dec.finish(); err != nil {
		t.Fatalf("decode ops: %v", err)
	}
	enc.release()
	if !bytes.Equal(got, cur) {
		t.Fatalf("delta round trip changed the blob (%d bytes -> %d)", len(cur), len(got))
	}
	return opsLen
}

func TestSnapDeltaOpsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := make([]byte, 4096)
	for i := range base {
		base[i] = byte(rng.Intn(256))
	}

	t.Run("identical", func(t *testing.T) {
		ops := deltaRoundTrip(t, base, append([]byte(nil), base...))
		// One equal run covering everything: a handful of varint bytes.
		if ops > 8 {
			t.Fatalf("identical blobs need %d op bytes", ops)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if ops := deltaRoundTrip(t, nil, nil); ops != 0 {
			t.Fatalf("empty blobs need %d op bytes", ops)
		}
	})
	t.Run("sparse-changes", func(t *testing.T) {
		cur := append([]byte(nil), base...)
		for _, i := range []int{0, 100, 101, 102, 2000, 4095} {
			cur[i] ^= 0x55
		}
		ops := deltaRoundTrip(t, base, cur)
		if ops >= len(cur)/4 {
			t.Fatalf("6 changed bytes cost %d op bytes (blob %d)", ops, len(cur))
		}
	})
	t.Run("all-different", func(t *testing.T) {
		cur := make([]byte, len(base))
		for i := range cur {
			cur[i] = base[i] ^ 0xFF
		}
		deltaRoundTrip(t, base, cur)
	})
	t.Run("alternating-short-runs", func(t *testing.T) {
		// Equal runs shorter than wireDeltaMinRun must fold into literals,
		// not explode into op pairs.
		cur := append([]byte(nil), base...)
		for i := 0; i < len(cur); i += 3 {
			cur[i] ^= 1
		}
		deltaRoundTrip(t, base, cur)
	})
	t.Run("random-flips", func(t *testing.T) {
		cur := append([]byte(nil), base...)
		for i := 0; i < 200; i++ {
			cur[rng.Intn(len(cur))] ^= byte(1 + rng.Intn(255))
		}
		deltaRoundTrip(t, base, cur)
	})
}

// decodeSnapResponse pulls apart an encodeWireSnapshot body.
func decodeSnapResponse(t *testing.T, payload, base []byte) (form byte, epoch uint64, blob []byte) {
	t.Helper()
	dec := newWireDec(payload)
	form = dec.u8()
	epoch = dec.uvarint()
	switch form {
	case wireSnapFull:
		blob = dec.bytes()
	case wireSnapDelta:
		crc := dec.u32()
		newLen := int(dec.uvarint())
		if newLen != len(base) {
			t.Fatalf("delta newLen %d against %d-byte base", newLen, len(base))
		}
		blob = decodeSnapDelta(dec, base, newLen)
		if dec.err == nil && snapDeltaCRC(blob) != crc {
			t.Fatalf("delta crc mismatch")
		}
	default:
		t.Fatalf("unknown snapshot form %d", form)
	}
	if err := dec.finish(); err != nil {
		t.Fatalf("decode snapshot response: %v", err)
	}
	return form, epoch, blob
}

// TestEncodeWireSnapshotForms pins the responder's full-vs-delta choice:
// no base or a mismatched epoch serves full, a matching epoch with equal
// lengths serves a (smaller) delta, and a length change forces full again.
func TestEncodeWireSnapshotForms(t *testing.T) {
	snaps := &wireSnapCache{}
	blob1 := bytes.Repeat([]byte{7}, 2048)

	enc := newWireEnc()
	encodeWireSnapshot(enc, snaps, blob1, 0)
	form, epoch1, got := decodeSnapResponse(t, enc.buf, nil)
	enc.release()
	if form != wireSnapFull || !bytes.Equal(got, blob1) {
		t.Fatalf("first fetch: form %d, blob match %v", form, bytes.Equal(got, blob1))
	}

	// Same length, few changed bytes, correct epoch: delta, and smaller.
	blob2 := append([]byte(nil), blob1...)
	blob2[100], blob2[1500] = 1, 2
	enc = newWireEnc()
	encodeWireSnapshot(enc, snaps, blob2, epoch1)
	if len(enc.buf) >= len(blob2) {
		t.Fatalf("delta response %d bytes not smaller than the %d-byte blob", len(enc.buf), len(blob2))
	}
	form, epoch2, got := decodeSnapResponse(t, enc.buf, blob1)
	enc.release()
	if form != wireSnapDelta || !bytes.Equal(got, blob2) {
		t.Fatalf("second fetch: form %d, blob match %v", form, bytes.Equal(got, blob2))
	}
	if epoch2 == epoch1 {
		t.Fatal("epoch did not advance")
	}

	// Stale epoch (peer never saw blob2): must fall back to full.
	enc = newWireEnc()
	encodeWireSnapshot(enc, snaps, blob2, epoch1)
	form, epoch3, got := decodeSnapResponse(t, enc.buf, nil)
	enc.release()
	if form != wireSnapFull || !bytes.Equal(got, blob2) {
		t.Fatalf("stale-epoch fetch: form %d", form)
	}

	// Length change (structural change in the image): full.
	blob3 := append(append([]byte(nil), blob2...), 9, 9, 9)
	enc = newWireEnc()
	encodeWireSnapshot(enc, snaps, blob3, epoch3)
	form, _, got = decodeSnapResponse(t, enc.buf, nil)
	enc.release()
	if form != wireSnapFull || !bytes.Equal(got, blob3) {
		t.Fatalf("length-change fetch: form %d", form)
	}
}

// TestWireSnapshotDeltaEndToEnd drives the delta path over real TCP: the
// first fetch ships the full blob, a repeat fetch ships a tiny delta, and a
// severed connection (client process restart) falls back to a full
// transfer — every fetch reassembling exactly the in-process blob.
func TestWireSnapshotDeltaEndToEnd(t *testing.T) {
	srv, locals := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = 1 })
	trainRounds(t, srv, "origin")

	addr, killConns := serveWireKillable(t, locals[0])
	proxy, err := DialWireClientPolicy("tcp", addr, CallPolicy{
		Timeout: 5 * time.Second, MaxAttempts: 3, Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		//lint:ignore errdrop test teardown, nothing left to lose
		_ = proxy.Close()
	})
	proxy.SetDelta(true)

	direct, err := locals[0].Snapshot()
	if err != nil {
		t.Fatalf("Snapshot(direct): %v", err)
	}
	snapCost := func() int64 { return proxy.WireBytesByMethod()[wireMethodSnapshot] }

	blob1, err := proxy.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot(first): %v", err)
	}
	cost1 := snapCost()
	if !bytes.Equal(blob1, direct) {
		t.Fatal("first wire fetch differs from the in-process blob")
	}
	if cost1 < int64(len(direct)) {
		t.Fatalf("first fetch cost %d bytes for a %d-byte blob — it cannot have been full", cost1, len(direct))
	}

	// Client state unchanged, base cached: the refetch must ride a delta.
	blob2, err := proxy.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot(second): %v", err)
	}
	cost2 := snapCost() - cost1
	if !bytes.Equal(blob2, direct) {
		t.Fatal("delta fetch reassembled a different blob")
	}
	if 10*cost2 >= cost1 {
		t.Fatalf("unchanged-blob refetch cost %d bytes vs %d full — delta not engaged", cost2, cost1)
	}

	// Sever every connection: the responder's per-connection base cache
	// dies with it, so the redialed fetch must resync with a full transfer
	// and still agree byte for byte.
	killConns()
	blob3, err := proxy.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot(after redial): %v", err)
	}
	cost3 := snapCost() - cost1 - cost2
	if !bytes.Equal(blob3, direct) {
		t.Fatal("post-redial fetch differs from the in-process blob")
	}
	if cost3 < int64(len(direct)) {
		t.Fatalf("post-redial fetch cost %d bytes — expected a full-transfer resync", cost3)
	}
}
