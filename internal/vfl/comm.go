package vfl

import (
	"fmt"
	"sync"
)

// CommStats accumulates the bytes exchanged between server and clients,
// assuming 8-byte float64 elements and counting only payload matrices (the
// protocol's dominant cost). The paper's §4.3.1 argues partition choice by
// this overhead; Server tracks it so the trade-off is measurable.
type CommStats struct {
	// GenSlicesSent counts generator boundary slices (server -> clients).
	GenSlicesSent int64
	// DiscLogitsReceived counts critic logits (clients -> server), both
	// synthetic and real branches.
	DiscLogitsReceived int64
	// GradsSent counts gradient payloads (server -> clients).
	GradsSent int64
	// SliceGradsReceived counts generator boundary gradients
	// (clients -> server).
	SliceGradsReceived int64
	// CVBytes counts conditional-vector batches (contributor -> server).
	CVBytes int64
	// Rounds is the number of completed training rounds.
	Rounds int
	// WireBytes is the measured transport traffic: exact framed bytes in
	// both directions, headers and metadata included, summed over every
	// client whose transport counts its connection (see WireByteCounter).
	// Zero for in-process clients. Unlike the estimate fields above it is
	// a measurement, so it is excluded from Total; the two agree within
	// framing overhead (a test on a loopback run pins this).
	WireBytes int64
	// WireBytesByMethod attributes WireBytes to individual wire methods
	// (request and response frames both count toward the method they
	// carry), so byte reductions can be traced to specific frame kinds —
	// e.g. the sparse conditional-vector layout shows up as a SampleCV
	// drop. A fixed-size array rather than a map keeps CommStats
	// comparable with ==.
	WireBytesByMethod WireMethodBytes
}

// WireMethodBytes holds measured wire bytes indexed by wire method id
// (index 0 unused; see WireMethodLabel for names).
type WireMethodBytes [wireNumMethods]int64

// add accumulates another per-method tally into w.
func (w *WireMethodBytes) add(other WireMethodBytes) {
	for i, v := range other {
		w[i] += v
	}
}

// WireMethodLabel names method id i of a WireMethodBytes array for
// display.
func WireMethodLabel(i int) string { return wireMethodName(byte(i)) }

// Total returns all estimated payload bytes (the 8-byte-per-element
// model; WireBytes, the measurement, is deliberately not part of it).
func (c CommStats) Total() int64 {
	return c.GenSlicesSent + c.DiscLogitsReceived + c.GradsSent + c.SliceGradsReceived + c.CVBytes
}

// PerRound returns the average payload bytes per completed round.
func (c CommStats) PerRound() float64 {
	if c.Rounds == 0 {
		return 0
	}
	return float64(c.Total()) / float64(c.Rounds)
}

// String renders the stats compactly: the estimated payload totals first,
// then the measured wire traffic when a counting transport supplied one,
// broken down by method when the per-method tally is populated.
func (c CommStats) String() string {
	s := fmt.Sprintf("comm{total=%dB wire=%dB rounds=%d gen_slices=%dB disc_logits=%dB grads=%dB slice_grads=%dB cv=%dB}",
		c.Total(), c.WireBytes, c.Rounds, c.GenSlicesSent, c.DiscLogitsReceived, c.GradsSent, c.SliceGradsReceived, c.CVBytes)
	breakdown := ""
	for i, v := range c.WireBytesByMethod {
		if v != 0 {
			if breakdown != "" {
				breakdown += " "
			}
			breakdown += fmt.Sprintf("%s=%dB", WireMethodLabel(i), v)
		}
	}
	if breakdown != "" {
		s += " wire_by_method{" + breakdown + "}"
	}
	return s
}

// WireByteCounter is implemented by transports that measure their actual
// connection traffic (framed bytes in both directions, headers included).
// Server.CommStats sums it across clients into CommStats.WireBytes, next
// to the element-count estimate, so the model can be cross-checked against
// the wire.
type WireByteCounter interface {
	WireBytes() int64
}

// WireMethodByteCounter is optionally implemented alongside
// WireByteCounter by transports that also attribute their traffic to
// individual wire methods; Server.CommStats merges it into
// CommStats.WireBytesByMethod.
type WireMethodByteCounter interface {
	WireBytesByMethod() WireMethodBytes
}

const bytesPerElement = 8

func matrixBytes(rows, cols int) int64 { return int64(rows) * int64(cols) * bytesPerElement }

// commAccount is the mutable, concurrency-safe accumulator behind a
// Server's CommStats. Training mutates it from the per-client fan-out
// goroutines while monitoring code may read it at any time, so every
// access goes through the mutex and readers get a consistent copy.
type commAccount struct {
	mu    sync.Mutex
	stats CommStats // guarded by mu
}

// add applies a mutation under the lock.
func (a *commAccount) add(f func(*CommStats)) {
	a.mu.Lock()
	f(&a.stats)
	a.mu.Unlock()
}

// restore overwrites the accumulated stats with a checkpointed copy, so a
// resumed run's communication accounting continues where the original
// left off instead of restarting from zero.
func (a *commAccount) restore(st CommStats) {
	a.mu.Lock()
	a.stats = st
	a.mu.Unlock()
}

// snapshot returns a consistent copy of the accumulated stats. Byte
// counters aggregate over whole matrices and rounds; they carry shapes,
// never values.
//
//privacy:sanitizer aggregate communication byte counters
func (a *commAccount) snapshot() CommStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}
