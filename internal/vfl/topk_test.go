package vfl

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// topkServer builds a bare Server wired only for sparsifyGrad: the
// compressor reads nothing but cfg.GradTopK and the topkEF accumulators.
func topkServer(frac float64, clients int) *Server {
	return &Server{
		cfg:    Config{GradTopK: frac},
		topkEF: make([][3]*tensor.Dense, clients),
	}
}

func TestSparsifyGradKeepsTopK(t *testing.T) {
	s := topkServer(0.5, 1)
	grad := tensor.FromRows([][]float64{{1, -5, 2, 0.5, -3, 0.25}})
	out := s.sparsifyGrad(0, 0, grad)
	want := [][]float64{{0, -5, 2, 0, -3, 0}}
	if !out.Equal(tensor.FromRows(want)) {
		t.Fatalf("sparsified gradient %v, want %v", out.Data(), want)
	}
	// Everything dropped must live on in the accumulator: out + acc == grad.
	acc := s.topkEF[0][0]
	for i, g := range grad.Data() {
		if out.Data()[i]+acc.Data()[i] != g { //lint:ignore floateq exact pass-through, no arithmetic reordering
			t.Fatalf("element %d: out %v + acc %v != grad %v", i, out.Data()[i], acc.Data()[i], g)
		}
	}
}

func TestSparsifyGradErrorFeedback(t *testing.T) {
	s := topkServer(0.25, 1) // n=4 -> k=1
	out1 := s.sparsifyGrad(0, 0, tensor.FromRows([][]float64{{4, 3, 0, 0}}))
	if !out1.Equal(tensor.FromRows([][]float64{{4, 0, 0, 0}})) {
		t.Fatalf("first call sent %v", out1.Data())
	}
	// The dropped 3 rides the accumulator; the next same-direction gradient
	// pushes the sum to 6, which must beat the fresh 4 and drain the
	// residual.
	out2 := s.sparsifyGrad(0, 0, tensor.FromRows([][]float64{{4, 3, 0, 0}}))
	if !out2.Equal(tensor.FromRows([][]float64{{0, 6, 0, 0}})) {
		t.Fatalf("second call sent %v, want the accumulated 6", out2.Data())
	}
	if got := s.topkEF[0][0].Data(); got[1] != 0 || got[0] != 4 { //lint:ignore floateq exact pass-through
		t.Fatalf("accumulator after second call %v", got)
	}
}

// TestSparsifyGradTieBreakIndexOrder pins determinism at the threshold:
// equal-magnitude candidates are kept in index order, never by map or sort
// instability.
func TestSparsifyGradTieBreakIndexOrder(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		s := topkServer(0.5, 1) // n=4 -> k=2
		out := s.sparsifyGrad(0, 0, tensor.FromRows([][]float64{{1, -1, 1, 1}}))
		if !out.Equal(tensor.FromRows([][]float64{{1, -1, 0, 0}})) {
			t.Fatalf("trial %d: tie-broken output %v, want first two kept", trial, out.Data())
		}
		if acc := s.topkEF[0][0].Data(); acc[2] != 1 || acc[3] != 1 { //lint:ignore floateq exact pass-through
			t.Fatalf("trial %d: accumulator %v", trial, acc)
		}
	}
}

// TestSparsifyGradNonFinite: a NaN/Inf gradient must pass through undamped
// (the client's training loop owns that failure) and clear the residual.
func TestSparsifyGradNonFinite(t *testing.T) {
	s := topkServer(0.25, 1)
	// Seed a residual first.
	s.sparsifyGrad(0, 0, tensor.FromRows([][]float64{{4, 3, 0, 0}})).Release()
	out := s.sparsifyGrad(0, 0, tensor.FromRows([][]float64{{math.NaN(), 1, 0, 0}}))
	if !math.IsNaN(out.At(0, 0)) {
		t.Fatalf("NaN element was damped to %v", out.At(0, 0))
	}
	// The passed-through tensor includes the residual (1 + 3 = 4)...
	if out.At(0, 1) != 4 { //lint:ignore floateq exact pass-through
		t.Fatalf("residual not drained into the pass-through: %v", out.Data())
	}
	// ...and the accumulator is fully cleared.
	for i, v := range s.topkEF[0][0].Data() {
		if v != 0 { //lint:ignore floateq exact clear
			t.Fatalf("accumulator element %d survived a non-finite pass: %v", i, v)
		}
	}
}

func TestSparsifyGradOffIsIdentity(t *testing.T) {
	s := &Server{} // GradTopK off: topkEF never allocated
	grad := tensor.FromRows([][]float64{{1, 2}})
	if out := s.sparsifyGrad(0, 0, grad); out != grad {
		t.Fatal("sparsifyGrad with top-k off must return the input untouched")
	}
	if out := s.sparsifyGrad(0, 0, nil); out != nil {
		t.Fatal("nil gradient must pass through")
	}
}

func TestGradTopKConfigValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.01, math.Inf(1)} {
		cfg := DefaultConfig()
		cfg.GradTopK = bad
		if err := cfg.validate(); err == nil {
			t.Fatalf("GradTopK=%v validated", bad)
		}
	}
	cfg := DefaultConfig()
	cfg.GradTopK = 0.1
	if err := cfg.validate(); err != nil {
		t.Fatalf("GradTopK=0.1 rejected: %v", err)
	}
}

// TestTopKCrossTransportEquivalence trains two identically-seeded systems
// with gradient sparsification on — one on in-process clients, one over
// gtvwire TCP loopback — and requires byte-identical final weights. The
// compressor lives in the Server, before any transport encoding, so the
// (lossy) trajectory must not depend on how gradients travel.
func TestTopKCrossTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("networked GAN training in -short mode")
	}
	build := func(binary bool) *Server {
		ta, tb := twoClientTables(t, 120, 51)
		coord := NewShuffleCoordinator(66)
		la, err := NewLocalClient(ta, coord, 1)
		if err != nil {
			t.Fatalf("NewLocalClient: %v", err)
		}
		lb, err := NewLocalClient(tb, coord, 2)
		if err != nil {
			t.Fatalf("NewLocalClient: %v", err)
		}
		clients := []Client{la, lb}
		if binary {
			clients = []Client{serveWire(t, la), serveWire(t, lb)}
		}
		cfg := DefaultConfig()
		cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
		cfg.Rounds = 2
		cfg.DiscSteps = 2
		cfg.BatchSize = 32
		cfg.NoiseDim = 16
		cfg.BlockDim = 32
		cfg.GradTopK = 0.25
		srv, err := NewServer(clients, cfg)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		if err := srv.Train(nil); err != nil {
			t.Fatalf("Train: %v", err)
		}
		return srv
	}
	local := build(false)
	wire := build(true)
	assertParamsEqual(t, "gTop under top-k", local.gTop, wire.gTop)
	assertParamsEqual(t, "dTop under top-k", local.dTop, wire.dTop)
}

// TestTopKResumeByteIdentical reruns the checkpoint/resume byte-identity
// property with gradient sparsification on: the error-feedback accumulators
// are trajectory state (secSTopKEF), so a mid-run restore must continue to
// exactly the uninterrupted run's weights.
func TestTopKResumeByteIdentical(t *testing.T) {
	const fullRounds, cutAt = 4, 2
	withTopK := func(rounds int) func(*Config) {
		return func(c *Config) {
			c.Rounds = rounds
			c.GradTopK = 0.25
		}
	}

	srvFull, clientsFull := newThreeClientSystem(t, 0, withTopK(fullRounds))
	trainRounds(t, srvFull, "full")

	dir := t.TempDir()
	srvA, _ := newThreeClientSystem(t, 0, withTopK(cutAt))
	trainRounds(t, srvA, "interrupted")
	if _, err := srvA.SaveCheckpoint(dir); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	srvB, clientsB := newThreeClientSystem(t, 0, withTopK(fullRounds))
	rounds, ok, err := srvB.RestoreLatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("RestoreLatestCheckpoint: %v", err)
	}
	if !ok || rounds != cutAt {
		t.Fatalf("RestoreLatestCheckpoint = (%d, %v), want (%d, true)", rounds, ok, cutAt)
	}
	trainRounds(t, srvB, "resumed")
	assertSystemsEqual(t, srvFull, srvB, clientsFull, clientsB)

	// The sparsification fraction is part of the config fingerprint: the
	// same checkpoint must not restore into a dense (top-k off) server.
	srvC, _ := newThreeClientSystem(t, 0, func(c *Config) { c.Rounds = fullRounds })
	if _, ok, err := srvC.RestoreLatestCheckpoint(dir); err == nil && ok {
		t.Fatal("top-k checkpoint restored into a server with top-k off")
	}
}
