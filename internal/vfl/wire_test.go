package vfl

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// --- frame layer ---

func TestWireHeaderRoundTrip(t *testing.T) {
	h := wireHeader{
		payloadLen: 12345,
		version:    wireVersion,
		kind:       wireKindResponse,
		method:     wireMethodBackwardGen,
		flags:      wireFlagF32,
		seq:        1<<40 + 7,
	}
	var buf [wireHeaderLen]byte
	h.put(buf[:])
	got, err := parseWireHeader(buf[:])
	if err != nil {
		t.Fatalf("parseWireHeader: %v", err)
	}
	if got != h {
		t.Fatalf("header round trip %+v -> %+v", h, got)
	}
}

func TestWireHeaderRejectsGarbage(t *testing.T) {
	mk := func(mutate func(*wireHeader)) []byte {
		h := wireHeader{payloadLen: 8, version: wireVersion, kind: wireKindRequest, method: wireMethodInfo}
		mutate(&h)
		var buf [wireHeaderLen]byte
		h.put(buf[:])
		return buf[:]
	}
	cases := map[string][]byte{
		"bad version":      mk(func(h *wireHeader) { h.version = 99 }),
		"bad kind":         mk(func(h *wireHeader) { h.kind = 0 }),
		"oversize payload": mk(func(h *wireHeader) { h.payloadLen = wireMaxPayload + 1 }),
	}
	for name, buf := range cases {
		if _, err := parseWireHeader(buf); err == nil {
			t.Errorf("%s: parseWireHeader accepted a bad header", name)
		}
	}
}

// --- golden fixtures ---

// goldenWireFrames builds the pinned fixture frames: a byte-level contract
// between independently-built server and client binaries. Regenerate with
//
//	GTV_UPDATE_WIRE_FIXTURES=1 go test ./internal/vfl -run TestWireGoldenFrames
//
// and treat any diff in testdata/wire as an incompatible format change that
// must bump wireVersion.
func goldenWireFrames() map[string][]byte {
	frame := func(kind, method, flags byte, seq uint64, payload []byte) []byte {
		h := wireHeader{
			payloadLen: uint32(len(payload)),
			version:    wireVersion,
			kind:       kind,
			method:     method,
			flags:      flags,
			seq:        seq,
		}
		out := make([]byte, wireHeaderLen+len(payload))
		h.put(out)
		copy(out[wireHeaderLen:], payload)
		return out
	}
	fixtures := make(map[string][]byte)

	// ForwardSynthetic request: a 2x3 float64 slice plus the phase.
	enc := newWireEnc()
	enc.matrix(tensor.FromRows([][]float64{{1, -2.5, 3.25}, {4, 5.5, -6.75}}), false)
	enc.i64(int64(PhaseDiscriminator))
	fixtures["forward_synthetic_req.bin"] = frame(wireKindRequest, wireMethodForwardSynthetic, 0, 7, enc.buf)
	enc.release()

	// The same call in float32 payload mode (flags bit 0, elemSize 4).
	enc = newWireEnc()
	enc.matrix(tensor.FromRows([][]float64{{1, -2.5, 3.25}, {4, 5.5, -6.75}}), true)
	enc.i64(int64(PhaseDiscriminator))
	fixtures["forward_synthetic_req_f32.bin"] = frame(wireKindRequest, wireMethodForwardSynthetic, wireFlagF32, 7, enc.buf)
	enc.release()

	// Info response.
	enc = newWireEnc()
	enc.clientInfo(ClientInfo{Features: 3, EncodedWidth: 17, CVWidth: 5, Rows: 800})
	fixtures["info_resp.bin"] = frame(wireKindResponse, wireMethodInfo, 0, 9, enc.buf)
	enc.release()

	// SampleCV response: CV matrix (one-hot layout via the sampler's Hot
	// slice — byte-identical to the scanning encoder), row indices, choices.
	enc = newWireEnc()
	enc.cvBatch(&condvec.Batch{
		CV:      tensor.FromRows([][]float64{{0, 1}, {1, 0}}),
		Hot:     []int{1, 0},
		Rows:    []int{4, 9},
		Choices: []condvec.Choice{{Span: 1, Category: 2}, {Span: 0, Category: 3}},
	}, false)
	fixtures["sample_cv_resp.bin"] = frame(wireKindResponse, wireMethodSampleCV, 0, 11, enc.buf)
	enc.release()

	// A 0/1 mask with several hot bits per row: the bitmap layout.
	enc = newWireEnc()
	enc.matrix(tensor.FromRows([][]float64{{1, 0, 1, 1, 0}, {0, 1, 0, 1, 1}}), false)
	fixtures["mask_bitmap.bin"] = frame(wireKindResponse, wireMethodForwardReal, 0, 13, enc.buf)
	enc.release()

	// A mostly-zero gradient: the delta-coded index-list (sparse) layout.
	enc = newWireEnc()
	sp := tensor.New(4, 8)
	sp.Set(0, 2, 0.5)
	sp.Set(2, 1, -1.25)
	sp.Set(3, 7, 3)
	enc.matrix(sp, false)
	fixtures["grad_sparse.bin"] = frame(wireKindRequest, wireMethodBackwardGen, 0, 15, enc.buf)
	enc.release()

	// A delta-encoded snapshot response: three changed bytes against a
	// 64-byte base (form, epoch, crc of the new blob, length, ops).
	base := bytes.Repeat([]byte{0xAA}, 64)
	cur := append([]byte(nil), base...)
	cur[10], cur[11], cur[40] = 1, 2, 3
	enc = newWireEnc()
	enc.u8(wireSnapDelta)
	enc.uvarint(5)
	enc.u32(snapDeltaCRC(cur))
	enc.uvarint(uint64(len(cur)))
	appendSnapDeltaOps(enc, base, cur)
	fixtures["snapshot_delta_resp.bin"] = frame(wireKindResponse, wireMethodSnapshot, 0, 17, enc.buf)
	enc.release()

	// An application error response.
	enc = newWireEnc()
	enc.str("vfl: client not configured")
	fixtures["error_resp.bin"] = frame(wireKindError, wireMethodPublish, 0, 3, enc.buf)
	enc.release()

	return fixtures
}

func TestWireGoldenFrames(t *testing.T) {
	dir := filepath.Join("testdata", "wire")
	fixtures := goldenWireFrames()
	if os.Getenv("GTV_UPDATE_WIRE_FIXTURES") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", dir, err)
		}
		for name, frame := range fixtures {
			if err := os.WriteFile(filepath.Join(dir, name), frame, 0o644); err != nil {
				t.Fatalf("writing fixture %s: %v", name, err)
			}
		}
	}
	for name, want := range fixtures {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading fixture %s (regenerate with GTV_UPDATE_WIRE_FIXTURES=1): %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("fixture %s: encoder output diverged from the pinned bytes — this is a wire format break; bump wireVersion", name)
		}
	}
}

// TestWireGoldenFramesDecode decodes the pinned fixture bytes back into
// structures, holding the decoder to the same contract as the encoder.
func TestWireGoldenFramesDecode(t *testing.T) {
	read := func(name string) (wireHeader, *wireDec) {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join("testdata", "wire", name))
		if err != nil {
			t.Fatalf("reading fixture %s: %v", name, err)
		}
		h, payload, err := readWireFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("readWireFrame(%s): %v", name, err)
		}
		return h, newWireDec(payload)
	}

	h, dec := read("forward_synthetic_req.bin")
	if h.method != wireMethodForwardSynthetic || h.seq != 7 || h.flags != 0 {
		t.Fatalf("forward_synthetic_req header = %+v", h)
	}
	m := dec.matrix()
	phase := Phase(dec.i64())
	if err := dec.finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := tensor.FromRows([][]float64{{1, -2.5, 3.25}, {4, 5.5, -6.75}})
	if !m.Equal(want) || phase != PhaseDiscriminator {
		t.Fatalf("decoded %v phase %d", m, phase)
	}
	m.Release()

	h, dec = read("forward_synthetic_req_f32.bin")
	if h.flags&wireFlagF32 == 0 {
		t.Fatalf("f32 fixture lost its flag: %+v", h)
	}
	m = dec.matrix()
	_ = dec.i64()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode f32: %v", err)
	}
	// The fixture values are exactly representable in float32.
	if !m.Equal(want) {
		t.Fatalf("f32 decoded %v", m)
	}
	m.Release()

	_, dec = read("info_resp.bin")
	info := dec.clientInfo()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode info: %v", err)
	}
	if info != (ClientInfo{Features: 3, EncodedWidth: 17, CVWidth: 5, Rows: 800}) {
		t.Fatalf("decoded info %+v", info)
	}

	_, dec = read("sample_cv_resp.bin")
	b := dec.cvBatch()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode cv batch: %v", err)
	}
	if len(b.Rows) != 2 || b.Rows[0] != 4 || b.Rows[1] != 9 ||
		len(b.Choices) != 2 || b.Choices[0] != (condvec.Choice{Span: 1, Category: 2}) {
		t.Fatalf("decoded batch %+v", b)
	}
	if !b.CV.Equal(tensor.FromRows([][]float64{{0, 1}, {1, 0}})) {
		t.Fatalf("decoded CV %v", b.CV)
	}
	if len(b.Hot) != 2 || b.Hot[0] != 1 || b.Hot[1] != 0 {
		t.Fatalf("decoded hot positions %v", b.Hot)
	}
	b.CV.Release()

	h, dec = read("mask_bitmap.bin")
	if h.method != wireMethodForwardReal {
		t.Fatalf("mask fixture header %+v", h)
	}
	m = dec.matrix()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode mask: %v", err)
	}
	if !m.Equal(tensor.FromRows([][]float64{{1, 0, 1, 1, 0}, {0, 1, 0, 1, 1}})) {
		t.Fatalf("decoded mask %v", m)
	}
	m.Release()

	h, dec = read("grad_sparse.bin")
	if h.method != wireMethodBackwardGen {
		t.Fatalf("sparse fixture header %+v", h)
	}
	m = dec.matrix()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode sparse: %v", err)
	}
	wantSparse := tensor.New(4, 8)
	wantSparse.Set(0, 2, 0.5)
	wantSparse.Set(2, 1, -1.25)
	wantSparse.Set(3, 7, 3)
	if !m.Equal(wantSparse) {
		t.Fatalf("decoded sparse gradient %v", m)
	}
	m.Release()

	h, dec = read("snapshot_delta_resp.bin")
	if h.method != wireMethodSnapshot {
		t.Fatalf("delta fixture header %+v", h)
	}
	if form := dec.u8(); form != wireSnapDelta {
		t.Fatalf("delta fixture form %d", form)
	}
	if epoch := dec.uvarint(); epoch != 5 {
		t.Fatalf("delta fixture epoch %d", epoch)
	}
	crc := dec.u32()
	newLen := int(dec.uvarint())
	base := bytes.Repeat([]byte{0xAA}, 64)
	blob := decodeSnapDelta(dec, base, newLen)
	if err := dec.finish(); err != nil {
		t.Fatalf("decode snapshot delta: %v", err)
	}
	if snapDeltaCRC(blob) != crc {
		t.Fatalf("reassembled blob crc %08x, frame says %08x", snapDeltaCRC(blob), crc)
	}
	wantBlob := append([]byte(nil), base...)
	wantBlob[10], wantBlob[11], wantBlob[40] = 1, 2, 3
	if !bytes.Equal(blob, wantBlob) {
		t.Fatalf("reassembled blob diverged at %d bytes", len(blob))
	}

	h, dec = read("error_resp.bin")
	if h.kind != wireKindError {
		t.Fatalf("error fixture kind %d", h.kind)
	}
	if msg := dec.str(); msg != "vfl: client not configured" {
		t.Fatalf("decoded error message %q", msg)
	}
	if err := dec.finish(); err != nil {
		t.Fatalf("decode error frame: %v", err)
	}
}

// --- codec round trips ---

// encodeDecode pushes one payload through a real frame write/read cycle.
func encodeDecode(t *testing.T, encode func(*wireEnc)) *wireDec {
	t.Helper()
	enc := newWireEnc()
	encode(enc)
	h := wireHeader{payloadLen: uint32(len(enc.buf)), version: wireVersion, kind: wireKindResponse, method: wireMethodInfo}
	var buf bytes.Buffer
	var hdr [wireHeaderLen]byte
	h.put(hdr[:])
	buf.Write(hdr[:])
	buf.Write(enc.buf)
	enc.release()
	_, payload, err := readWireFrame(&buf)
	if err != nil {
		t.Fatalf("readWireFrame: %v", err)
	}
	return newWireDec(payload)
}

func TestWireMatrixCodecRoundTrip(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{0, 0}, {0, 5}, {5, 0}, {1, 1}, {3, 4}, {17, 31},
	}
	for _, sh := range shapes {
		name := fmt.Sprintf("%dx%d", sh.rows, sh.cols)
		m := tensor.New(sh.rows, sh.cols)
		data := m.Data()
		for i := range data {
			data[i] = float64(i)*1.25 - 7
		}
		dec := encodeDecode(t, func(e *wireEnc) { e.matrix(m, false) })
		got := dec.matrix()
		if err := dec.finish(); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.Rows() != sh.rows || got.Cols() != sh.cols {
			t.Fatalf("%s: decoded shape %dx%d", name, got.Rows(), got.Cols())
		}
		if !got.Equal(m) {
			t.Fatalf("%s: round trip changed values", name)
		}
		got.Release()
	}
}

func TestWireMatrixCodecNil(t *testing.T) {
	dec := encodeDecode(t, func(e *wireEnc) { e.matrix(nil, false) })
	if got := dec.matrix(); got != nil {
		t.Fatalf("nil matrix decoded as %v", got)
	}
	if err := dec.finish(); err != nil {
		t.Fatalf("decode nil matrix: %v", err)
	}
}

// TestWireMatrixCodecBitExact round-trips every float64 bit pattern worth
// worrying about — negative zero, infinities, NaN, denormals — comparing
// raw bits because NaN != NaN.
func TestWireMatrixCodecBitExact(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1, -1, math.Inf(1), math.Inf(-1),
		math.NaN(), math.SmallestNonzeroFloat64, math.MaxFloat64, 1e-310}
	m := tensor.New(2, 5)
	copy(m.Data(), vals)
	dec := encodeDecode(t, func(e *wireEnc) { e.matrix(m, false) })
	got := dec.matrix()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, v := range got.Data() {
		if math.Float64bits(v) != math.Float64bits(vals[i]) {
			t.Fatalf("element %d: bits %x -> %x", i, math.Float64bits(vals[i]), math.Float64bits(v))
		}
	}
	got.Release()
}

func TestWireMatrixCodecFloat32(t *testing.T) {
	m := tensor.New(4, 3)
	data := m.Data()
	for i := range data {
		data[i] = math.Sin(float64(i) * 1.7)
	}
	dec := encodeDecode(t, func(e *wireEnc) { e.matrix(m, true) })
	got := dec.matrix()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, v := range got.Data() {
		// f32 mode must round each element through float32 exactly once.
		if v != float64(float32(data[i])) {
			t.Fatalf("element %d: %v -> %v, want float32 rounding", i, data[i], v)
		}
	}
	got.Release()
}

func TestWireCVBatchCodecRoundTrip(t *testing.T) {
	in := &condvec.Batch{
		CV:      tensor.FromRows([][]float64{{1, 0, 0}, {0, 0, 1}}),
		Rows:    []int{12, 99},
		Choices: []condvec.Choice{{Span: 0, Category: 1}, {Span: 2, Category: 0}},
	}
	dec := encodeDecode(t, func(e *wireEnc) { e.cvBatch(in, false) })
	got := dec.cvBatch()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.CV.Equal(in.CV) {
		t.Fatal("CV matrix changed")
	}
	if len(got.Rows) != 2 || got.Rows[0] != 12 || got.Rows[1] != 99 {
		t.Fatalf("rows %v", got.Rows)
	}
	if len(got.Choices) != 2 || got.Choices[1] != in.Choices[1] {
		t.Fatalf("choices %v", got.Choices)
	}
	got.CV.Release()
}

func TestWireTableCodecRoundTrip(t *testing.T) {
	specs := []encoding.ColumnSpec{
		{Name: "segment", Kind: encoding.KindCategorical, Categories: []string{"a", "b", "c"}},
		{Name: "spend", Kind: encoding.KindContinuous, SpecialValues: []float64{-1, 0}},
	}
	data := tensor.FromRows([][]float64{{0, 1.5}, {2, -1}})
	tbl, err := encoding.NewTable(specs, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	dec := encodeDecode(t, func(e *wireEnc) { e.table(tbl, false) })
	gotSpecs := dec.specs()
	gotData := dec.matrix()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(gotSpecs) != 2 || gotSpecs[0].Name != "segment" ||
		len(gotSpecs[0].Categories) != 3 || gotSpecs[0].Categories[2] != "c" ||
		gotSpecs[1].Kind != encoding.KindContinuous || len(gotSpecs[1].SpecialValues) != 2 {
		t.Fatalf("specs round trip %+v", gotSpecs)
	}
	if !gotData.Equal(data) {
		t.Fatal("table data changed")
	}
	gotData.Release()
}

func TestWireSetupCodecRoundTrip(t *testing.T) {
	in := Setup{
		Plan:          Plan{DiscServer: 2, DiscClient: 1, GenServer: 0, GenClient: 2},
		SliceWidth:    64,
		GenBlockWidth: 128,
		DiscWidth:     256,
		LR:            5e-4,
		Seed:          42,
	}
	dec := encodeDecode(t, func(e *wireEnc) { e.setup(in) })
	got := dec.setup()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Fatalf("setup round trip %+v -> %+v", in, got)
	}
}

// TestWireDecRejectsTruncation verifies the decoder's sticky error turns
// every truncation into a descriptive failure instead of a panic, at every
// possible cut point of a realistic payload.
func TestWireDecRejectsTruncation(t *testing.T) {
	// One matrix per layout so every decode path sees every cut point:
	// dense, one-hot, bitmap (multi-hot 0/1), and sparse (index list).
	sparse := tensor.New(3, 16)
	sparse.Set(0, 4, 2.5)
	sparse.Set(2, 11, -7)
	enc := newWireEnc()
	enc.matrix(tensor.FromRows([][]float64{{1, 2}, {3, 4}}), false)
	enc.matrix(tensor.FromRows([][]float64{{0, 1, 0}, {0, 0, 1}}), false)
	enc.matrix(tensor.FromRows([][]float64{{1, 1, 0, 1}, {0, 1, 1, 1}}), false)
	enc.matrix(sparse, false)
	enc.ints([]int{3, 1, 4})
	enc.str("hello")
	full := append([]byte(nil), enc.buf...)
	enc.release()

	decodeAll := func(dec *wireDec) {
		for i := 0; i < 4; i++ {
			if m := dec.matrix(); m != nil {
				m.Release()
			}
		}
		dec.ints()
		dec.str()
	}
	for cut := 0; cut < len(full); cut++ {
		dec := newWireDec(full[:cut])
		decodeAll(dec)
		if err := dec.finish(); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
	// The full payload must still decode cleanly.
	dec := newWireDec(full)
	decodeAll(dec)
	if err := dec.finish(); err != nil {
		t.Fatalf("full payload: %v", err)
	}
}

// TestWireSnapDeltaRejectsTruncation cuts a delta snapshot response body at
// every byte; the decoder must fail (or the crc must catch it) every time.
func TestWireSnapDeltaRejectsTruncation(t *testing.T) {
	base := bytes.Repeat([]byte{0x5C}, 96)
	cur := append([]byte(nil), base...)
	for _, i := range []int{0, 17, 18, 19, 60, 95} {
		cur[i] ^= 0xFF
	}
	enc := newWireEnc()
	enc.uvarint(uint64(len(cur)))
	appendSnapDeltaOps(enc, base, cur)
	full := append([]byte(nil), enc.buf...)
	enc.release()

	for cut := 0; cut < len(full); cut++ {
		dec := newWireDec(full[:cut])
		newLen := int(dec.uvarint())
		blob := decodeSnapDelta(dec, base, newLen)
		if err := dec.finish(); err == nil && bytes.Equal(blob, cur) {
			t.Fatalf("truncation at %d/%d bytes reassembled the full blob", cut, len(full))
		}
	}
	dec := newWireDec(full)
	newLen := int(dec.uvarint())
	blob := decodeSnapDelta(dec, base, newLen)
	if err := dec.finish(); err != nil {
		t.Fatalf("full delta body: %v", err)
	}
	if !bytes.Equal(blob, cur) {
		t.Fatal("full delta body reassembled the wrong blob")
	}
}

func TestWireDecRejectsTrailingBytes(t *testing.T) {
	enc := newWireEnc()
	enc.i64(5)
	enc.u8(0xFF) // junk the decoder never consumes
	dec := newWireDec(enc.buf)
	_ = dec.i64()
	if err := dec.finish(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
	enc.release()
}

// FuzzWireFrameDecode feeds arbitrary bytes through the frame reader and
// every payload decoder. The contract: malformed input may fail, but must
// never panic or over-allocate past the payload bound.
func FuzzWireFrameDecode(f *testing.F) {
	for _, frame := range goldenWireFrames() {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		h, payload, err := readWireFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		defer putWireBuf(payload)
		_ = wireMethodName(h.method)
		// Walk the payload with every decoder shape the protocol uses; each
		// gets a fresh decoder since they consume different field layouts.
		for _, decode := range []func(*wireDec){
			func(d *wireDec) {
				if m := d.matrix(); m != nil {
					m.Release()
				}
			},
			func(d *wireDec) {
				b := d.cvBatch()
				if b.CV != nil {
					b.CV.Release()
				}
			},
			func(d *wireDec) { _ = d.specs() },
			func(d *wireDec) { _ = d.setup() },
			func(d *wireDec) { _ = d.clientInfo() },
			func(d *wireDec) { _ = d.str() },
			func(d *wireDec) { _ = d.ints() },
			func(d *wireDec) {
				// The delta snapshot response body: form, epoch, then
				// either a plain blob or crc + length + ops.
				switch d.u8() {
				case wireSnapFull:
					_ = d.uvarint()
					_ = d.bytes()
				case wireSnapDelta:
					_ = d.uvarint()
					_ = d.u32()
					newLen := int(d.uvarint())
					if d.err == nil && newLen >= 0 && newLen <= len(payload) {
						base := make([]byte, newLen)
						_ = decodeSnapDelta(d, base, newLen)
					}
				}
			},
		} {
			d := newWireDec(payload)
			decode(d)
			_ = d.finish()
		}
	})
}

// --- transport behavior over real TCP ---

// serveWire starts a gtvwire server for c and returns a connected proxy.
func serveWire(t *testing.T, c Client) *WireClient {
	t.Helper()
	addr := serveWireListener(t, c)
	proxy, err := DialWireClient("tcp", addr)
	if err != nil {
		t.Fatalf("dial wire: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })
	return proxy
}

func serveWireListener(t *testing.T, c Client) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		// Listener close ends the serve loop; connection errors surface on
		// the client side, so they are safe to drop here.
		_ = ServeClientWire(lis, c)
	}()
	return lis.Addr().String()
}

func TestWireEndToEndTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("networked GAN training in -short mode")
	}
	ta, tb := twoClientTables(t, 200, 21)
	coord := NewShuffleCoordinator(77)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	lb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	pa := serveWire(t, la)
	pb := serveWire(t, lb)

	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 3
	cfg.DiscSteps = 2
	cfg.BatchSize = 32
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	srv, err := NewServer([]Client{pa, pb}, cfg)
	if err != nil {
		t.Fatalf("NewServer over wire: %v", err)
	}
	if err := srv.Train(nil); err != nil {
		t.Fatalf("Train over wire: %v", err)
	}
	synth, err := srv.Synthesize(50)
	if err != nil {
		t.Fatalf("Synthesize over wire: %v", err)
	}
	if synth.Rows() != 50 || synth.Cols() != 3 {
		t.Fatalf("synthetic shape %dx%d", synth.Rows(), synth.Cols())
	}
	if synth.Data.HasNaN() {
		t.Fatal("synthetic data has NaN")
	}
}

// TestGobBinaryEquivalence trains two identically-seeded systems over TCP
// loopback — one on the net/rpc+gob transport, one on gtvwire — and
// verifies the server's top-model parameters end up byte-identical. The
// binary wire (f32 mode excluded by default) must be invisible to the
// learning process.
func TestGobBinaryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("networked GAN training in -short mode")
	}
	build := func(binary bool) *Server {
		ta, tb := twoClientTables(t, 120, 51)
		coord := NewShuffleCoordinator(66)
		la, err := NewLocalClient(ta, coord, 1)
		if err != nil {
			t.Fatalf("NewLocalClient: %v", err)
		}
		lb, err := NewLocalClient(tb, coord, 2)
		if err != nil {
			t.Fatalf("NewLocalClient: %v", err)
		}
		var clients []Client
		if binary {
			clients = []Client{serveWire(t, la), serveWire(t, lb)}
		} else {
			clients = []Client{serveLocal(t, la), serveLocal(t, lb)}
		}
		cfg := DefaultConfig()
		cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
		cfg.Rounds = 2
		cfg.DiscSteps = 2
		cfg.BatchSize = 32
		cfg.NoiseDim = 16
		cfg.BlockDim = 32
		srv, err := NewServer(clients, cfg)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		if err := srv.Train(nil); err != nil {
			t.Fatalf("Train: %v", err)
		}
		return srv
	}
	gob := build(false)
	bin := build(true)
	gp := gob.gTop.Params()
	bp := bin.gTop.Params()
	for k := range gp {
		if !gp[k].Data().Equal(bp[k].Data()) {
			t.Fatalf("top generator param %d diverges between gob and binary transports", k)
		}
	}
	gd := gob.dTop.Params()
	bd := bin.dTop.Params()
	for k := range gd {
		if !gd[k].Data().Equal(bd[k].Data()) {
			t.Fatalf("top discriminator param %d diverges between gob and binary transports", k)
		}
	}
}

// TestWireFloat32Training opts a full loopback run into the f32 payload
// encoding and verifies training still converges to finite parameters —
// the lossy mode changes precision, never protocol correctness.
func TestWireFloat32Training(t *testing.T) {
	if testing.Short() {
		t.Skip("networked GAN training in -short mode")
	}
	ta, tb := twoClientTables(t, 120, 61)
	coord := NewShuffleCoordinator(99)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	lb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	pa := serveWire(t, la)
	pb := serveWire(t, lb)
	pa.SetFloat32(true)
	pb.SetFloat32(true)

	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 2
	cfg.DiscSteps = 1
	cfg.BatchSize = 16
	cfg.NoiseDim = 8
	cfg.BlockDim = 16
	srv, err := NewServer([]Client{pa, pb}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Train(nil); err != nil {
		t.Fatalf("Train with f32 payloads: %v", err)
	}
	synth, err := srv.Synthesize(20)
	if err != nil {
		t.Fatalf("Synthesize with f32 payloads: %v", err)
	}
	if synth.Data.HasNaN() {
		t.Fatal("f32 payload mode produced NaN")
	}
}

func TestWireErrorPropagation(t *testing.T) {
	ta, _ := twoClientTables(t, 60, 41)
	coord := NewShuffleCoordinator(55)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	proxy := serveWire(t, la)
	// Forward before configure must fail across the wire with the remote
	// error message, and the connection must survive for later calls.
	if _, err := proxy.ForwardSynthetic(tensor.New(2, 4), PhaseDiscriminator); err == nil {
		t.Fatal("expected remote error")
	}
	if _, err := proxy.Publish(); err == nil {
		t.Fatal("expected remote error")
	}
	if _, err := proxy.Info(); err != nil {
		t.Fatalf("connection should survive application errors: %v", err)
	}
}

// TestWirePipelining issues many concurrent calls on ONE WireClient against
// a delay-injected client and verifies they overlap on the single
// connection: total wall-clock stays near one delay, not the sum. This is
// the property net/rpc's per-call serialization could not provide, and the
// race detector runs this test in CI (see ci.sh).
func TestWirePipelining(t *testing.T) {
	ta, _ := twoClientTables(t, 60, 43)
	coord := NewShuffleCoordinator(31)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	const delay = 150 * time.Millisecond
	slow := NewFaultyTransport(la)
	slow.SetDelay(delay)
	proxy := serveWire(t, slow)

	const calls = 8
	var wg sync.WaitGroup
	errs := make([]error, calls)
	start := time.Now()
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = proxy.Info()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pipelined call %d: %v", i, err)
		}
	}
	// Serialized calls would take >= calls*delay = 1.2s. Pipelined calls
	// share the delay window; half the serial time is a loose bound that
	// still proves overlap on a loaded CI machine.
	if elapsed >= calls*delay/2 {
		t.Fatalf("%d concurrent calls took %v — the wire is serializing, not pipelining", calls, elapsed)
	}
}

// serveWireKillable serves a client over gtvwire and returns a function
// severing every live connection while keeping the listener up — the
// "client process restarted" scenario redial must recover from.
func serveWireKillable(t *testing.T, c Client) (addr string, killConns func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { lis.Close() })
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go serveWireConn(conn, c)
		}
	}()
	killConns = func() {
		mu.Lock()
		for _, cn := range conns {
			cn.Close()
		}
		conns = nil
		mu.Unlock()
	}
	return lis.Addr().String(), killConns
}

// TestWireRedialAfterDisconnect severs the connection mid-session and
// verifies the retry policy transparently redials: the next call succeeds
// on a fresh connection without the caller seeing the fault.
func TestWireRedialAfterDisconnect(t *testing.T) {
	ta, _ := twoClientTables(t, 60, 47)
	coord := NewShuffleCoordinator(21)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	addr, killConns := serveWireKillable(t, la)
	policy := CallPolicy{Timeout: 5 * time.Second, MaxAttempts: 3, Backoff: 10 * time.Millisecond}
	proxy, err := DialWireClientPolicy("tcp", addr, policy)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })

	if _, err := proxy.Info(); err != nil {
		t.Fatalf("Info before disconnect: %v", err)
	}
	killConns()
	if _, err := proxy.Info(); err != nil {
		t.Fatalf("Info after disconnect should succeed via redial: %v", err)
	}
}

// TestWireSlowClientTripsDeadline mirrors the RPC transport's deadline
// test on the binary wire: a short per-call deadline converts a slow reply
// into ErrCallTimeout naming the client.
func TestWireSlowClientTripsDeadline(t *testing.T) {
	ta, _ := twoClientTables(t, 60, 43)
	coord := NewShuffleCoordinator(31)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	slow := NewFaultyTransport(la)
	slow.SetDelay(2 * time.Second)
	addr := serveWireListener(t, slow)
	proxy, err := DialWireClientPolicy("tcp", addr, CallPolicy{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })

	start := time.Now()
	_, err = proxy.Info()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout from slow client, got: %v", err)
	}
	if !strings.Contains(err.Error(), addr) {
		t.Fatalf("timeout should name the slow client %s: %v", addr, err)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("deadline did not cut the 2s slow call short: took %v", elapsed)
	}
}

// TestWireBytesMatchesEstimate trains over loopback gtvwire and checks the
// measured framed bytes against the 8 B/element payload model: the
// measurement must exceed the estimate (headers, matrix metadata, CV row
// indices) but stay within the same order — the model is supposed to be an
// accurate first-order predictor of real traffic.
func TestWireBytesMatchesEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("networked GAN training in -short mode")
	}
	// A wide categorical column (32 categories) makes the CV batch the
	// realistic kind of sparse payload the one-hot layout exists for; the
	// tiny two-category tables would let per-row varint overhead (row
	// indices, choices) mask the matrix compression.
	const rows = 120
	rng := rand.New(rand.NewSource(71))
	cats := make([]string, 32)
	for i := range cats {
		cats[i] = fmt.Sprintf("c%02d", i)
	}
	da := tensor.New(rows, 2)
	db := tensor.New(rows, 1)
	for i := 0; i < rows; i++ {
		c := float64(rng.Intn(len(cats)))
		da.Set(i, 0, c)
		da.Set(i, 1, rng.NormFloat64()+c/8)
		db.Set(i, 0, rng.NormFloat64()-c/8)
	}
	ta, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "segment", Kind: encoding.KindCategorical, Categories: cats},
		{Name: "spend", Kind: encoding.KindContinuous},
	}, da)
	if err != nil {
		t.Fatalf("NewTable A: %v", err)
	}
	tb, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "income", Kind: encoding.KindContinuous},
	}, db)
	if err != nil {
		t.Fatalf("NewTable B: %v", err)
	}
	coord := NewShuffleCoordinator(17)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	lb, err := NewLocalClient(tb, coord, 2)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	pa := serveWire(t, la)
	pb := serveWire(t, lb)

	cfg := DefaultConfig()
	cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
	cfg.Rounds = 3
	cfg.DiscSteps = 2
	cfg.BatchSize = 32
	cfg.NoiseDim = 16
	cfg.BlockDim = 32
	srv, err := NewServer([]Client{pa, pb}, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	stats := srv.CommStats()
	est := stats.Total()
	got := stats.WireBytes
	if est <= 0 || got <= 0 {
		t.Fatalf("stats did not accumulate: estimate %d, wire %d", est, got)
	}
	// Density-aware bounds. The estimate is a deliberately dense model
	// (8 B/element for every payload matrix), while the wire picks layouts
	// per frame: activations and gradients stay dense (so framing overhead
	// pushes their measurement above the estimate), but one-hot CV batches
	// compress to about a byte per row. The total therefore sits inside a
	// sandwich: above half the dense estimate (dense traffic dominates this
	// run), below 2x (framing overhead bounded).
	if 2*got <= est {
		t.Fatalf("measured wire bytes %d under half the estimate %d — dense frames went missing", got, est)
	}
	if got > 2*est {
		t.Fatalf("measured wire bytes %d more than doubles the estimate %d — framing overhead out of control", got, est)
	}
	// The per-method attribution must account for every measured byte.
	var byMethod int64
	for _, v := range stats.WireBytesByMethod {
		byMethod += v
	}
	if byMethod != got {
		t.Fatalf("per-method tally %d != total wire bytes %d", byMethod, got)
	}
	// The one-hot CV layout is where density pays: the measured SampleCV
	// traffic (headers, row indices and choices included) must undercut the
	// dense 8 B/element CV estimate by at least 5x.
	cvWire := stats.WireBytesByMethod[wireMethodSampleCV]
	if cvWire <= 0 || stats.CVBytes <= 0 {
		t.Fatalf("CV traffic did not accumulate: wire %d, estimate %d", cvWire, stats.CVBytes)
	}
	if 5*cvWire >= stats.CVBytes {
		t.Fatalf("SampleCV wire bytes %d not 5x under the dense estimate %d — one-hot layout not engaged", cvWire, stats.CVBytes)
	}
	if err := pa.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// WireBytes must survive Close: it reports lifetime traffic.
	if pa.WireBytes() == 0 {
		t.Fatal("WireBytes lost after Close")
	}
	// And a CommStats snapshot String must carry both figures.
	s := stats.String()
	if !strings.Contains(s, "wire=") || !strings.Contains(s, "total=") {
		t.Fatalf("CommStats.String missing estimate or measurement: %s", s)
	}
}

// TestWireFaultyTransportComposition stacks a WireClient under the fault
// injector's wrapper the way tests stack RPCClient, confirming the
// WireBytes passthrough and transient-fault retry compose.
func TestWireFaultyTransportComposition(t *testing.T) {
	ta, _ := twoClientTables(t, 60, 83)
	coord := NewShuffleCoordinator(13)
	la, err := NewLocalClient(ta, coord, 1)
	if err != nil {
		t.Fatalf("NewLocalClient: %v", err)
	}
	inner := serveWire(t, la)
	faulty := NewFaultyTransport(inner)
	if _, err := faulty.Info(); err != nil {
		t.Fatalf("Info through fault injector: %v", err)
	}
	var counter WireByteCounter = faulty
	if counter.WireBytes() == 0 {
		t.Fatal("FaultyTransport should forward the inner transport's WireBytes")
	}
	if counter.WireBytes() != inner.WireBytes() {
		t.Fatalf("WireBytes passthrough mismatch: %d vs %d", counter.WireBytes(), inner.WireBytes())
	}
}
