package vfl

import (
	"testing"
)

func TestCommStatsZero(t *testing.T) {
	var c CommStats
	if c.Total() != 0 || c.PerRound() != 0 {
		t.Fatalf("zero stats: %+v", c)
	}
}

func TestCommStatsArithmetic(t *testing.T) {
	c := CommStats{
		GenSlicesSent:      100,
		DiscLogitsReceived: 200,
		GradsSent:          300,
		SliceGradsReceived: 50,
		CVBytes:            25,
		Rounds:             5,
	}
	if c.Total() != 675 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.PerRound() != 135 {
		t.Fatalf("PerRound = %v", c.PerRound())
	}
	if c.String() == "" {
		t.Fatal("String must render")
	}
}

func TestServerTracksCommunication(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	srv, _ := newTestSystem(t, Plan{DiscServer: 2, GenClient: 2}, 150, false)
	if _, _, err := srv.TrainRound(); err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	stats := srv.CommStats()
	if stats.Rounds != 1 {
		t.Fatalf("Rounds = %d", stats.Rounds)
	}
	// Every category must be populated after a full round.
	if stats.GenSlicesSent == 0 || stats.DiscLogitsReceived == 0 ||
		stats.GradsSent == 0 || stats.SliceGradsReceived == 0 || stats.CVBytes == 0 {
		t.Fatalf("missing traffic categories: %s", stats)
	}
	// Generator boundary traffic per step: batch x GenBlockDim elements
	// down plus the same back as gradients. DiscSteps+1 downstream passes
	// happen per round (critic steps + generator step).
	batchBytes := int64(64 * 64 * 8) // batch x GenBlockDim x 8
	wantSlices := batchBytes * int64(srv.cfg.DiscSteps+1)
	if stats.GenSlicesSent != wantSlices {
		t.Fatalf("GenSlicesSent = %d want %d", stats.GenSlicesSent, wantSlices)
	}
	if stats.SliceGradsReceived != batchBytes {
		t.Fatalf("SliceGradsReceived = %d want %d", stats.SliceGradsReceived, batchBytes)
	}
}

func TestEnlargedGeneratorCostsMoreTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	run := func(genBlockDim int) CommStats {
		ta, tb := twoClientTables(t, 150, 7)
		coord := NewShuffleCoordinator(99)
		ca, err := NewLocalClient(ta, coord, 1)
		if err != nil {
			t.Fatalf("NewLocalClient: %v", err)
		}
		cb, err := NewLocalClient(tb, coord, 2)
		if err != nil {
			t.Fatalf("NewLocalClient: %v", err)
		}
		cfg := DefaultConfig()
		cfg.Plan = Plan{DiscServer: 2, GenClient: 2}
		cfg.Rounds = 1
		cfg.DiscSteps = 1
		cfg.BatchSize = 32
		cfg.NoiseDim = 16
		cfg.BlockDim = 32
		cfg.GenBlockDim = genBlockDim
		srv, err := NewServer([]Client{ca, cb}, cfg)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		if _, _, err := srv.TrainRound(); err != nil {
			t.Fatalf("TrainRound: %v", err)
		}
		return srv.CommStats()
	}
	defaultStats := run(32)
	enlargedStats := run(96)
	if enlargedStats.GenSlicesSent != 3*defaultStats.GenSlicesSent {
		t.Fatalf("enlarged generator boundary traffic %d, want 3x default %d",
			enlargedStats.GenSlicesSent, defaultStats.GenSlicesSent)
	}
}

func TestFaithfulModeCostsMoreTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	// The paper's index-privacy design pushes ALL client rows through
	// D_i^b; the broadcast alternative only the batch. Traffic must
	// reflect that.
	srvBroadcast, _ := newTestSystem(t, Plan{DiscServer: 2, GenClient: 2}, 150, false)
	srvFaithful, _ := newTestSystem(t, Plan{DiscServer: 2, GenClient: 2}, 150, true)
	if _, _, err := srvBroadcast.TrainRound(); err != nil {
		t.Fatalf("TrainRound broadcast: %v", err)
	}
	if _, _, err := srvFaithful.TrainRound(); err != nil {
		t.Fatalf("TrainRound faithful: %v", err)
	}
	b := srvBroadcast.CommStats()
	f := srvFaithful.CommStats()
	if f.DiscLogitsReceived <= b.DiscLogitsReceived {
		t.Fatalf("faithful logits %d should exceed broadcast %d",
			f.DiscLogitsReceived, b.DiscLogitsReceived)
	}
	if f.GradsSent <= b.GradsSent {
		t.Fatalf("faithful grads %d should exceed broadcast %d", f.GradsSent, b.GradsSent)
	}
}
