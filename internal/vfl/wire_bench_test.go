package vfl

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// echoClient is a protocol stub whose BackwardGen returns a matrix the
// size of its input's boundary gradient, isolating transport cost (encode,
// frame, TCP round-trip, decode) from GAN math. BackwardGen is the
// representative call: one matrix each way per round trip, no state
// retained between calls on either transport.
type echoClient struct{ out *tensor.Dense }

func (c *echoClient) Info() (ClientInfo, error) { return ClientInfo{}, nil }
func (c *echoClient) Configure(Setup) error     { return nil }
func (c *echoClient) SampleCV(int, bool) (*condvec.Batch, error) {
	return &condvec.Batch{}, nil
}
func (c *echoClient) SampleCVFixed(int, int, int) (*condvec.Batch, error) {
	return &condvec.Batch{}, nil
}
func (c *echoClient) ForwardSynthetic(*tensor.Dense, Phase) (*tensor.Dense, error) {
	return c.out.Clone(), nil
}
func (c *echoClient) ForwardReal([]int) (*tensor.Dense, error)        { return c.out.Clone(), nil }
func (c *echoClient) BackwardDisc(*tensor.Dense, *tensor.Dense) error { return nil }
func (c *echoClient) BackwardGen(*tensor.Dense, bool) (*tensor.Dense, error) {
	// Clone is pooled; the wire server releases it after encoding, so the
	// reply buffer recycles across iterations like a real client's would.
	return c.out.Clone(), nil
}
func (c *echoClient) EndRound(int) error               { return nil }
func (c *echoClient) GenerateRows(*tensor.Dense) error { return nil }
func (c *echoClient) Snapshot() ([]byte, error)        { return nil, nil }
func (c *echoClient) Restore([]byte) error             { return nil }
func (c *echoClient) Publish() (*encoding.Table, error) {
	return nil, fmt.Errorf("echo client has no table")
}

// wireBenchPayloads builds the payload shapes the codec picks distinct
// layouts for, at the paper's batch-500 scale. Every pattern is
// deterministic so runs are comparable.
func wireBenchPayloads(batch int) []struct {
	name    string
	payload *tensor.Dense
} {
	dense := func(width int) *tensor.Dense {
		m := tensor.New(batch, width)
		for i, data := 0, m.Data(); i < len(data); i++ {
			data[i] = float64(i%97) * 0.125
		}
		return m
	}
	// A conditional-vector batch: one-hot rows (plus a few all-zero ones).
	cv := tensor.New(batch, 64)
	for i := 0; i < batch; i++ {
		if i%17 != 0 {
			cv.Set(i, (i*7)%64, 1)
		}
	}
	// A hard-selection mask: 0/1 at ~10% density, several hits per row.
	mask := tensor.New(batch, 768)
	for i := 0; i < batch; i++ {
		for j := 0; j < 768; j++ {
			if (i*7+j)%10 == 0 {
				mask.Set(i, j, 1)
			}
		}
	}
	// A top-k sparsified gradient: ~5% arbitrary nonzero values.
	topk := tensor.New(batch, 768)
	for i := 0; i < batch; i++ {
		for j := 0; j < 768; j++ {
			if (i*13+j)%20 == 0 {
				topk.Set(i, j, float64(i+j)*0.37-50)
			}
		}
	}
	return []struct {
		name    string
		payload *tensor.Dense
	}{
		{fmt.Sprintf("batch=%d/width=%d", batch, 64), dense(64)},
		{fmt.Sprintf("batch=%d/width=%d", batch, 256), dense(256)},
		{fmt.Sprintf("batch=%d/width=%d", batch, 768), dense(768)},
		{fmt.Sprintf("batch=%d/cv-sparse", batch), cv},
		{fmt.Sprintf("batch=%d/mask", batch), mask},
		{fmt.Sprintf("batch=%d/topk", batch), topk},
	}
}

// BenchmarkWireRoundTrip measures one full protocol call (matrix out,
// matrix back) over TCP loopback, comparing net/rpc+gob against the
// gtvwire binary codec (f64 and the opt-in f32 payload mode) across the
// payload classes the encoder picks different layouts for: dense
// activations at three boundary widths, one-hot CV batches, 0/1 masks
// (bitmap layout) and top-k sparsified gradients (index-list layout). The
// wire_bytes/op metric is the measured framed traffic per call, so
// BENCH_comm.json records the bytes-on-wire reduction next to latency; gob
// always ships dense and is the baseline.
func BenchmarkWireRoundTrip(b *testing.B) {
	const batch = 500
	for _, tc := range wireBenchPayloads(batch) {
		payload := tc.payload
		echo := &echoClient{out: payload.Clone()}

		serve := func(b *testing.B, binary bool) Client {
			b.Helper()
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { lis.Close() })
			if binary {
				go func() { _ = ServeClientWire(lis, echo) }()
				proxy, err := DialWireClient("tcp", lis.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { proxy.Close() })
				return proxy
			}
			go func() { _ = ServeClient(lis, echo) }()
			proxy, err := DialClient("tcp", lis.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { proxy.Close() })
			return proxy
		}

		run := func(proxy Client) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(2 * 8 * int64(payload.Rows()) * int64(payload.Cols()))
				counter, _ := proxy.(WireByteCounter)
				var startBytes int64
				if counter != nil {
					startBytes = counter.WireBytes()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := proxy.BackwardGen(payload, false)
					if err != nil {
						b.Fatal(err)
					}
					out.Release()
				}
				if counter != nil {
					b.ReportMetric(float64(counter.WireBytes()-startBytes)/float64(b.N), "wire_bytes/op")
				}
			}
		}

		b.Run(tc.name+"/gob", run(serve(b, false)))
		b.Run(tc.name+"/binary", run(serve(b, true)))
		b.Run(tc.name+"/binary-f32", func(b *testing.B) {
			proxy := serve(b, true).(*WireClient)
			proxy.SetFloat32(true)
			run(proxy)(b)
		})
	}
}
