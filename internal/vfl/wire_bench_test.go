package vfl

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// echoClient is a protocol stub whose BackwardGen returns a matrix the
// size of its input's boundary gradient, isolating transport cost (encode,
// frame, TCP round-trip, decode) from GAN math. BackwardGen is the
// representative call: one matrix each way per round trip, no state
// retained between calls on either transport.
type echoClient struct{ out *tensor.Dense }

func (c *echoClient) Info() (ClientInfo, error) { return ClientInfo{}, nil }
func (c *echoClient) Configure(Setup) error     { return nil }
func (c *echoClient) SampleCV(int, bool) (*condvec.Batch, error) {
	return &condvec.Batch{}, nil
}
func (c *echoClient) SampleCVFixed(int, int, int) (*condvec.Batch, error) {
	return &condvec.Batch{}, nil
}
func (c *echoClient) ForwardSynthetic(*tensor.Dense, Phase) (*tensor.Dense, error) {
	return c.out.Clone(), nil
}
func (c *echoClient) ForwardReal([]int) (*tensor.Dense, error)        { return c.out.Clone(), nil }
func (c *echoClient) BackwardDisc(*tensor.Dense, *tensor.Dense) error { return nil }
func (c *echoClient) BackwardGen(*tensor.Dense, bool) (*tensor.Dense, error) {
	// Clone is pooled; the wire server releases it after encoding, so the
	// reply buffer recycles across iterations like a real client's would.
	return c.out.Clone(), nil
}
func (c *echoClient) EndRound(int) error               { return nil }
func (c *echoClient) GenerateRows(*tensor.Dense) error { return nil }
func (c *echoClient) Snapshot() ([]byte, error)        { return nil, nil }
func (c *echoClient) Restore([]byte) error             { return nil }
func (c *echoClient) Publish() (*encoding.Table, error) {
	return nil, fmt.Errorf("echo client has no table")
}

// BenchmarkWireRoundTrip measures one full protocol call (matrix out,
// matrix back) over TCP loopback at the paper's batch-500 scale across
// boundary widths, comparing net/rpc+gob against the gtvwire binary codec
// (f64 and the opt-in f32 payload mode). Latency and allocs/op are the
// wire subsystem's acceptance numbers; see BENCH_comm.json.
func BenchmarkWireRoundTrip(b *testing.B) {
	const batch = 500
	for _, width := range []int{64, 256, 768} {
		payload := tensor.New(batch, width)
		for i, data := 0, payload.Data(); i < len(data); i++ {
			data[i] = float64(i%97) * 0.125
		}
		echo := &echoClient{out: tensor.New(batch, width)}

		serve := func(b *testing.B, binary bool) Client {
			b.Helper()
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { lis.Close() })
			if binary {
				go func() { _ = ServeClientWire(lis, echo) }()
				proxy, err := DialWireClient("tcp", lis.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { proxy.Close() })
				return proxy
			}
			go func() { _ = ServeClient(lis, echo) }()
			proxy, err := DialClient("tcp", lis.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { proxy.Close() })
			return proxy
		}

		run := func(proxy Client) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(2 * 8 * int64(batch) * int64(width))
				for i := 0; i < b.N; i++ {
					out, err := proxy.BackwardGen(payload, false)
					if err != nil {
						b.Fatal(err)
					}
					out.Release()
				}
			}
		}

		b.Run(fmt.Sprintf("batch=%d/width=%d/gob", batch, width), run(serve(b, false)))
		b.Run(fmt.Sprintf("batch=%d/width=%d/binary", batch, width), run(serve(b, true)))
		b.Run(fmt.Sprintf("batch=%d/width=%d/binary-f32", batch, width), func(b *testing.B) {
			proxy := serve(b, true).(*WireClient)
			proxy.SetFloat32(true)
			run(proxy)(b)
		})
	}
}
