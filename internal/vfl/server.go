package vfl

import (
	"errors"
	"fmt"
	"math"
	"sort"

	ag "repro/internal/autograd"
	"repro/internal/encoding"
	"repro/internal/gan"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Config holds the server-side training configuration for GTV.
type Config struct {
	// Plan is the neural-network partition.
	Plan Plan
	// Rounds is the number of training rounds.
	Rounds int
	// DiscSteps is the number of critic updates per round (the paper's e).
	DiscSteps int
	// BatchSize is the minibatch size.
	BatchSize int
	// NoiseDim is the generator noise width.
	NoiseDim int
	// BlockDim is the discriminator block width (256 in the paper).
	BlockDim int
	// GenBlockDim is the generator block width and the width of the split
	// boundary; 0 means BlockDim. The paper's "enlarged" generator setting
	// raises this to 768 while BlockDim stays 256.
	GenBlockDim int
	// LR is the Adam learning rate for all parties.
	LR float64
	// Seed drives server randomness and per-client weight initialization.
	Seed int64
	// Pac is the PacGAN packing degree applied at the top critic: D^t
	// judges Pac concatenated samples at a time (CTGAN uses 10). BatchSize
	// must be divisible by Pac; 0 means 1.
	Pac int
	// DPLogitNoise, when positive, adds zero-mean Gaussian noise with this
	// standard deviation to every intermediate logit matrix the server
	// receives — the local-DP style protection discussed (and rejected for
	// its accuracy cost) in the paper's §3.3. Off by default.
	DPLogitNoise float64
	// FaithfulRealPass selects the paper's index-privacy mode: when true,
	// clients that did not contribute the conditional vector pass their
	// entire table through D_i^b and the server row-selects the logits, so
	// idx_p never leaves the server/contributor pair (§3.1.6). When false,
	// the server broadcasts idx_p to every client — cheaper, with the
	// privacy trade-off of the paper's P2P alternative.
	FaithfulRealPass bool
	// GradTopK, when in (0, 1), keeps only the largest-magnitude fraction
	// of each boundary gradient the server sends a client (BackwardDisc,
	// BackwardGen), zeroing the rest. Dropped mass is not lost: a
	// per-client, per-stream error-feedback accumulator carries it into
	// the next round's gradient (the standard top-k + memory compressor;
	// Fed-TGAN motivates tolerating this kind of lossy compression in
	// federated tabular GAN training). Sparsified gradients travel as
	// index lists on the binary wire, cutting gradient traffic roughly by
	// the sparsity factor. Lossy and therefore off by default (0): dense
	// same-seed runs stay byte-identical. The accumulator state is
	// checkpointed, so resumed runs replay identically. Transport
	// independent — the sparsification happens in the server before the
	// Client call, so local and remote runs with the same setting match.
	GradTopK float64
	// Parallelism bounds how many clients the server drives concurrently
	// within each protocol step (forwards, gradient scatter, shuffle
	// trigger, synthesis). 0 means all clients at once; 1 reproduces the
	// sequential path. Training results are bit-identical across settings:
	// all server-side randomness is drawn before each fan-out, in client
	// order, and each client's own call sequence is preserved.
	Parallelism int
}

// DefaultConfig returns a laptop-scale GTV configuration with the paper's
// default partition D2_0 G0_2 (all FN blocks on the server, generator on
// the server).
func DefaultConfig() Config {
	return Config{
		Plan:      Plan{DiscServer: 2, DiscClient: 0, GenServer: 0, GenClient: 2},
		Rounds:    150,
		DiscSteps: 2,
		BatchSize: 128,
		NoiseDim:  64,
		BlockDim:  256,
		LR:        2e-4,
		Seed:      1,
	}
}

func (c *Config) validate() error {
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if c.Rounds <= 0 || c.BatchSize <= 0 {
		return fmt.Errorf("vfl: rounds %d and batch size %d must be positive", c.Rounds, c.BatchSize)
	}
	if c.DiscSteps <= 0 {
		c.DiscSteps = 1
	}
	if c.NoiseDim <= 0 {
		c.NoiseDim = 64
	}
	if c.BlockDim <= 0 {
		c.BlockDim = 256
	}
	if c.GenBlockDim <= 0 {
		c.GenBlockDim = c.BlockDim
	}
	if c.LR <= 0 {
		c.LR = 2e-4
	}
	if c.Pac <= 0 {
		c.Pac = 1
	}
	if c.BatchSize%c.Pac != 0 {
		return fmt.Errorf("vfl: batch size %d not divisible by pac %d", c.BatchSize, c.Pac)
	}
	if c.DPLogitNoise < 0 {
		return fmt.Errorf("vfl: negative DP noise %v", c.DPLogitNoise)
	}
	if c.GradTopK < 0 || c.GradTopK > 1 {
		return fmt.Errorf("vfl: gradient top-k fraction %v outside [0, 1]", c.GradTopK)
	}
	return nil
}

// Server is the trusted-third-party coordinator of Algorithm 1. It owns the
// top generator G^t, the top discriminator D^t and the conditional-vector
// filter D^s; it never sees raw rows, the clients' shuffle secret, or (in
// faithful mode) which rows matched a conditional vector on clients other
// than the contributor.
type Server struct {
	cfg Config
	rng *rng.Rand
	// modelRng seeds weight initialization and keeps feeding the top
	// discriminator's dropout masks during training, so checkpoints must
	// capture its stream position alongside rng's.
	modelRng *rng.Rand
	clients  []Client
	infos    []ClientInfo
	ratios   []float64

	sliceWidths []int // generator boundary split (sums to GenBlockDim)
	discWidths  []int // client logit widths (sums to BlockDim)
	cvOffsets   []int
	cvWidth     int
	rows        int

	gTop *nn.Sequential
	dTop *nn.Sequential
	dS   *nn.Sequential
	gOpt *nn.Adam
	dOpt *nn.Adam

	round int
	comm  commAccount

	// topkEF holds the per-client error-feedback accumulators for GradTopK
	// (nil when disabled). The three streams per client are the server's
	// outbound gradient tensors: 0 = disc synthetic, 1 = disc real (after
	// any faithful-pass scatter), 2 = generator. Entries are shape-lazily
	// allocated; fan-out goroutines touch disjoint client indices only.
	//
	//snap:state error-feedback accumulators (secSTopKEF)
	topkEF [][3]*tensor.Dense
}

// fanOut drives fn across all clients under the configured parallelism
// bound (see fanClients). fn must wrap its errors with client context.
func (s *Server) fanOut(fn func(i int, c Client) error) error {
	return fanClients(s.clients, s.cfg.Parallelism, fn)
}

// NewServer performs the setup handshake: it collects client metadata,
// computes the ratio vector and width splits, builds the top models and
// configures every client's bottom models.
func NewServer(clients []Client, cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(clients) == 0 {
		return nil, errors.New("vfl: no clients")
	}
	s := &Server{
		cfg:     cfg,
		rng:     rng.New(cfg.Seed),
		clients: clients,
		infos:   make([]ClientInfo, len(clients)),
	}
	if cfg.GradTopK > 0 {
		s.topkEF = make([][3]*tensor.Dense, len(clients))
	}
	featureCounts := make([]int, len(clients))
	err := s.fanOut(func(i int, c Client) error {
		info, err := c.Info()
		if err != nil {
			return fmt.Errorf("vfl: client %d info: %w", i, err)
		}
		s.infos[i] = info
		featureCounts[i] = info.Features
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.rows = s.infos[0].Rows
	for i, info := range s.infos {
		if info.Rows != s.rows {
			return nil, fmt.Errorf("vfl: client %d has %d rows, client 0 has %d (tables must be aligned)",
				i, info.Rows, s.rows)
		}
	}
	ratios, err := Ratios(featureCounts)
	if err != nil {
		return nil, err
	}
	s.ratios = ratios
	if s.sliceWidths, err = SplitWidths(cfg.GenBlockDim, ratios); err != nil {
		return nil, fmt.Errorf("vfl: splitting generator boundary: %w", err)
	}
	if s.discWidths, err = SplitWidths(cfg.BlockDim, ratios); err != nil {
		return nil, fmt.Errorf("vfl: splitting discriminator widths: %w", err)
	}
	s.cvOffsets = make([]int, len(clients))
	for i, info := range s.infos {
		s.cvOffsets[i] = s.cvWidth
		s.cvWidth += info.CVWidth
	}

	// Top models. G^t: n1 residual blocks then the boundary FC producing
	// the GenBlockDim-wide vector that Split partitions by P_r. D^t: n3 FN
	// blocks then the mandatory score FC. D^s: a small trainable filter on
	// the conditional vector.
	// The layers retain this generator: dropout masks inside D^t keep
	// drawing from it every round, which is why it lives on the Server (a
	// capturable rng.Rand) instead of being a constructor-local throwaway.
	s.modelRng = rng.New(cfg.Seed + 1)
	initRng := s.modelRng.Rand
	s.gTop = gan.NewGenerator(initRng, cfg.NoiseDim+s.cvWidth, cfg.GenBlockDim, cfg.Plan.GenServer, cfg.GenBlockDim)
	dsOut := 0
	if s.cvWidth > 0 {
		dsOut = s.cvWidth
		s.dS = nn.NewSequential(
			nn.NewLinear(initRng, s.cvWidth, dsOut),
			nn.LeakyReLU{Slope: 0.2},
		)
	}
	s.dTop = gan.NewDiscriminator(initRng, (cfg.BlockDim+dsOut)*cfg.Pac, cfg.BlockDim, cfg.Plan.DiscServer)
	s.gOpt = nn.NewAdam(cfg.LR)
	s.dOpt = nn.NewAdam(cfg.LR)

	err = s.fanOut(func(i int, c Client) error {
		setup := Setup{
			Plan:          cfg.Plan,
			SliceWidth:    s.sliceWidths[i],
			GenBlockWidth: s.sliceWidths[i],
			DiscWidth:     s.discWidths[i],
			LR:            cfg.LR,
			Seed:          cfg.Seed + int64(100+i),
		}
		if err := c.Configure(setup); err != nil {
			return fmt.Errorf("vfl: configuring client %d: %w", i, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Ratios exposes the computed P_r vector.
func (s *Server) Ratios() []float64 { return s.ratios }

// CommStats returns a consistent snapshot of the accumulated
// server<->client payload accounting. It is safe to call from any
// goroutine, including while a round is in flight. Clients whose
// transport measures its connection (WireByteCounter: WireClient,
// RPCClient, and wrappers that forward it) additionally contribute exact
// framed bytes to the WireBytes field.
func (s *Server) CommStats() CommStats {
	stats := s.comm.snapshot()
	for _, c := range s.clients {
		if wc, ok := c.(WireByteCounter); ok {
			stats.WireBytes += wc.WireBytes()
		}
		if wc, ok := c.(WireMethodByteCounter); ok {
			stats.WireBytesByMethod.add(wc.WireBytesByMethod())
		}
	}
	return stats
}

// SliceWidths exposes the generator boundary split (for tests/inspection).
func (s *Server) SliceWidths() []int { return s.sliceWidths }

// Train runs the full Algorithm 1 loop. The optional progress callback
// receives (round, criticLoss, generatorLoss) once per round.
func (s *Server) Train(progress func(round int, dLoss, gLoss float64)) error {
	// Starting from s.round rather than zero makes the loop resume-aware:
	// a restored checkpoint sets s.round to the rounds already completed.
	for s.round < s.cfg.Rounds {
		r := s.round
		dLoss, gLoss, err := s.TrainRound()
		if err != nil {
			return fmt.Errorf("vfl: round %d: %w", r, err)
		}
		if progress != nil {
			progress(r, dLoss, gLoss)
		}
	}
	return nil
}

// TrainRound runs one round: DiscSteps critic updates, one generator
// update, then the shared shuffle (steps 3-23 of Algorithm 1).
func (s *Server) TrainRound() (dLoss, gLoss float64, err error) {
	for step := 0; step < s.cfg.DiscSteps; step++ {
		if dLoss, err = s.discStep(); err != nil {
			return 0, 0, fmt.Errorf("critic step: %w", err)
		}
	}
	if gLoss, err = s.genStep(); err != nil {
		return 0, 0, fmt.Errorf("generator step: %w", err)
	}
	round := s.round
	err = s.fanOut(func(i int, c Client) error {
		if err := c.EndRound(round); err != nil {
			return fmt.Errorf("client %d shuffle: %w", i, err)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	s.round++
	s.comm.add(func(c *CommStats) { c.Rounds++ })
	return dLoss, gLoss, nil
}

// pickContributor draws the CV-contributing client p with probability P_r.
func (s *Server) pickContributor() int {
	u := s.rng.Float64()
	var cum float64
	for i, r := range s.ratios {
		cum += r
		if u < cum {
			return i
		}
	}
	return len(s.ratios) - 1
}

// embedCV places contributor p's local conditional vector into the global
// CV coordinate space.
func (s *Server) embedCV(local *tensor.Dense, p int) *tensor.Dense {
	out := tensor.New(local.Rows(), s.cvWidth)
	off := s.cvOffsets[p]
	for i := 0; i < local.Rows(); i++ {
		copy(out.RawRow(i)[off:off+local.Cols()], local.RawRow(i))
	}
	return out
}

// generatorForward runs steps 1-5 of Algorithm 1: sample the contributor's
// CV, run the top generator and split the boundary output by P_r.
func (s *Server) generatorForward(batch int, train bool) (p int, cvRows []int, globalCV *tensor.Dense, gtOut *ag.Value, slices []*tensor.Dense, err error) {
	p = s.pickContributor()
	cvb, err := s.clients[p].SampleCV(batch, !train)
	if err != nil {
		return 0, nil, nil, nil, nil, fmt.Errorf("client %d SampleCV: %w", p, err)
	}
	globalCV = s.embedCV(cvb.CV, p)
	s.comm.add(func(c *CommStats) { c.CVBytes += matrixBytes(cvb.CV.Rows(), cvb.CV.Cols()) })
	noise := gan.SampleNoise(s.rng.Rand, batch, s.cfg.NoiseDim)
	gin := tensor.ConcatCols(noise, globalCV)
	gtOut = s.gTop.Forward(ag.Const(gin), train)
	slices = gtOut.Data().SplitCols(s.sliceWidths)
	for _, sl := range slices {
		rows, cols := sl.Rows(), sl.Cols()
		s.comm.add(func(c *CommStats) { c.GenSlicesSent += matrixBytes(rows, cols) })
	}
	return p, cvb.Rows, globalCV, gtOut, slices, nil
}

// drawDPNoise pre-draws one DP perturbation matrix from the server RNG, or
// returns nil when the DP mode is off. All draws happen on the main
// goroutine before a fan-out, in client order, so the server's RNG stream
// is consumed identically whether clients run sequentially or
// concurrently.
func (s *Server) drawDPNoise(rows, cols int) *tensor.Dense {
	if s.cfg.DPLogitNoise <= 0 {
		return nil
	}
	return tensor.Randn(s.rng.Rand, rows, cols, 0, s.cfg.DPLogitNoise)
}

// perturb applies a pre-drawn DP noise matrix to an incoming intermediate
// logit matrix (the local-DP protection of §3.3; see Config.DPLogitNoise).
func perturb(m, noise *tensor.Dense) *tensor.Dense {
	if noise == nil {
		return m
	}
	return tensor.Add(m, noise)
}

// sparsifyGrad applies GradTopK compression with error feedback to one
// outbound gradient: the client-bound tensor keeps only the k = ceil(frac
// * n) largest-magnitude elements of grad plus the accumulated residual,
// and everything dropped lands back in the accumulator for the next round
// (top-k + memory). Deterministic: the threshold comes from a full sort
// and ties at the threshold are kept in index order, so a given
// (grad, accumulator) pair always produces the same output regardless of
// transport or parallelism. Returns grad untouched when GradTopK is off;
// otherwise returns a fresh tensor the caller owns.
func (s *Server) sparsifyGrad(client, stream int, grad *tensor.Dense) *tensor.Dense {
	if s.topkEF == nil || grad == nil {
		return grad
	}
	acc := s.topkEF[client][stream]
	if acc == nil || acc.Rows() != grad.Rows() || acc.Cols() != grad.Cols() {
		// First use, or the stream changed shape (e.g. FaithfulRealPass
		// toggled between runs): residuals for the old shape are
		// meaningless, start clean.
		acc = tensor.New(grad.Rows(), grad.Cols())
		s.topkEF[client][stream] = acc
	}
	ad := acc.Data()
	out := tensor.New(grad.Rows(), grad.Cols())
	td := out.Data()
	finite := true
	for i, v := range grad.Data() {
		t := v + ad[i]
		if math.IsNaN(t) || math.IsInf(t, 0) {
			finite = false
		}
		td[i] = t
	}
	n := len(td)
	k := int(math.Ceil(s.cfg.GradTopK * float64(n)))
	if !finite || k >= n {
		// A non-finite gradient must reach the client undamped (its
		// training loop decides what to do with it), and k >= n keeps
		// everything anyway; either way the residual is fully drained.
		clear(ad)
		return out
	}
	if k < 1 {
		k = 1
	}
	abs := make([]float64, n)
	for i, v := range td {
		abs[i] = math.Abs(v)
	}
	sort.Float64s(abs)
	thr := abs[n-k]
	kept := 0
	for _, v := range td {
		if math.Abs(v) > thr {
			kept++
		}
	}
	need := k - kept
	thrBits := math.Float64bits(thr)
	for i, v := range td {
		a := math.Abs(v)
		keep := a > thr
		if !keep && need > 0 && math.Float64bits(a) == thrBits {
			keep = true
			need--
		}
		if keep {
			ad[i] = 0
		} else {
			ad[i] = v
			td[i] = 0
		}
	}
	return out
}

// discStep performs one distributed WGAN-GP critic update (steps 4-16).
func (s *Server) discStep() (float64, error) {
	batch := s.cfg.BatchSize
	p, cvRows, globalCV, gtOut, slices, err := s.generatorForward(batch, true)
	if err != nil {
		return 0, err
	}
	n := len(s.clients)
	fakeVars := make([]*ag.Value, n)
	realVars := make([]*ag.Value, n)
	fullRealRows := make([]int, n) // >0 when the client did a full pass
	// Pre-draw the DP perturbations in the sequential order (synthetic then
	// real, per client) so concurrent rounds stay bit-identical.
	synthNoise := make([]*tensor.Dense, n)
	realNoise := make([]*tensor.Dense, n)
	for i := range s.clients {
		synthNoise[i] = s.drawDPNoise(batch, s.discWidths[i])
		realNoise[i] = s.drawDPNoise(batch, s.discWidths[i])
	}
	err = s.fanOut(func(i int, c Client) error {
		logits, err := c.ForwardSynthetic(slices[i], PhaseDiscriminator)
		if err != nil {
			return fmt.Errorf("client %d synthetic forward: %w", i, err)
		}
		s.comm.add(func(cs *CommStats) { cs.DiscLogitsReceived += matrixBytes(logits.Rows(), logits.Cols()) })
		fakeVars[i] = ag.Var(perturb(logits, synthNoise[i]))

		var realLogits *tensor.Dense
		switch {
		case i == p:
			// The contributor selects its own matching rows (step 10).
			if realLogits, err = c.ForwardReal(cvRows); err != nil {
				return fmt.Errorf("client %d real forward: %w", i, err)
			}
		case s.cfg.FaithfulRealPass:
			// Full local pass; the server selects logits (steps 12, 14).
			full, err := c.ForwardReal(nil)
			if err != nil {
				return fmt.Errorf("client %d real forward: %w", i, err)
			}
			fullRealRows[i] = full.Rows()
			s.comm.add(func(cs *CommStats) { cs.DiscLogitsReceived += matrixBytes(full.Rows(), full.Cols()) })
			realLogits = full.GatherRows(cvRows)
		default:
			if realLogits, err = c.ForwardReal(cvRows); err != nil {
				return fmt.Errorf("client %d real forward: %w", i, err)
			}
		}
		if fullRealRows[i] == 0 {
			s.comm.add(func(cs *CommStats) { cs.DiscLogitsReceived += matrixBytes(realLogits.Rows(), realLogits.Cols()) })
		}
		realVars[i] = ag.Var(perturb(realLogits, realNoise[i]))
		return nil
	})
	if err != nil {
		return 0, err
	}

	fakeIn, realIn := s.topInputs(fakeVars, realVars, globalCV)
	fakePacked := s.pack(fakeIn)
	realPacked := s.pack(realIn)
	fakeScores := s.dTop.Forward(fakePacked, true)
	realScores := s.dTop.Forward(realPacked, true)
	loss := gan.CriticLoss(fakeScores, realScores)
	gp := gan.GradientPenalty(s.rng.Rand, realPacked.Data(), fakePacked.Data(), func(x *ag.Value) *ag.Value {
		return s.dTop.Forward(x, true)
	})
	total := ag.Add(loss, gp)

	serverParams := s.dTop.Params()
	if s.dS != nil {
		serverParams = append(serverParams, s.dS.Params()...)
	}
	targets := make([]*ag.Value, 0, len(serverParams)+2*n)
	targets = append(targets, serverParams...)
	targets = append(targets, fakeVars...)
	targets = append(targets, realVars...)
	grads := ag.Grad(total, targets...)
	s.dOpt.Step(serverParams, grads[:len(serverParams)])

	err = s.fanOut(func(i int, c Client) error {
		gradSynth := grads[len(serverParams)+i].Data()
		gradReal := grads[len(serverParams)+n+i].Data()
		if fullRealRows[i] > 0 {
			// Scatter back to the client's full-pass output rows,
			// accumulating duplicates.
			gradReal = scatterRowsAccumulate(gradReal, cvRows, fullRealRows[i])
		}
		gradSynth = s.sparsifyGrad(i, 0, gradSynth)
		gradReal = s.sparsifyGrad(i, 1, gradReal)
		bytes := matrixBytes(gradSynth.Rows(), gradSynth.Cols()) +
			matrixBytes(gradReal.Rows(), gradReal.Cols())
		s.comm.add(func(cs *CommStats) { cs.GradsSent += bytes })
		if err := c.BackwardDisc(gradSynth, gradReal); err != nil {
			return fmt.Errorf("client %d disc backward: %w", i, err)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	lossVal := total.Item()

	// All clients have consumed their gradient matrices; recycle the server
	// side of the step's graph. gtOut is a root of its own because the
	// discriminator phase never connects the generator forward to the loss
	// (clients receive plain slices). The fakeVars/realVars leaves are
	// skipped, so client-owned logit buffers are never touched here.
	var tape ag.Tape
	tape.Track(total, gtOut)
	tape.Track(grads...)
	tape.Release()
	return lossVal, nil
}

// genStep performs one distributed generator update (steps 18-22).
func (s *Server) genStep() (float64, error) {
	batch := s.cfg.BatchSize
	p, _, globalCV, gtOut, slices, err := s.generatorForward(batch, true)
	if err != nil {
		return 0, err
	}
	n := len(s.clients)
	fakeVars := make([]*ag.Value, n)
	synthNoise := make([]*tensor.Dense, n)
	for i := range s.clients {
		synthNoise[i] = s.drawDPNoise(batch, s.discWidths[i])
	}
	err = s.fanOut(func(i int, c Client) error {
		logits, err := c.ForwardSynthetic(slices[i], PhaseGenerator)
		if err != nil {
			return fmt.Errorf("client %d generator forward: %w", i, err)
		}
		s.comm.add(func(cs *CommStats) { cs.DiscLogitsReceived += matrixBytes(logits.Rows(), logits.Cols()) })
		fakeVars[i] = ag.Var(perturb(logits, synthNoise[i]))
		return nil
	})
	if err != nil {
		return 0, err
	}
	fakeIn, _ := s.topInputs(fakeVars, nil, globalCV)
	scores := s.dTop.Forward(s.pack(fakeIn), true)
	loss := gan.GeneratorLoss(scores)
	grads := ag.Grad(loss, fakeVars...)

	sliceGrads := make([]*tensor.Dense, n)
	err = s.fanOut(func(i int, c Client) error {
		g := s.sparsifyGrad(i, 2, grads[i].Data())
		s.comm.add(func(cs *CommStats) { cs.GradsSent += matrixBytes(g.Rows(), g.Cols()) })
		sg, err := c.BackwardGen(g, i == p)
		if err != nil {
			return fmt.Errorf("client %d generator backward: %w", i, err)
		}
		s.comm.add(func(cs *CommStats) { cs.SliceGradsReceived += matrixBytes(sg.Rows(), sg.Cols()) })
		sliceGrads[i] = sg
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Continue backpropagation into G^t with the clients' input gradients.
	boundaryGrad := tensor.ConcatCols(sliceGrads...)
	// BackwardGen hands the server sole ownership of each slice gradient
	// (LocalClient returns a pooled clone; the wire transports decode into
	// pooled buffers); ConcatCols copied them, so recycle them here.
	for _, sg := range sliceGrads {
		sg.Release()
	}
	proxy := ag.SumAll(ag.Mul(gtOut, ag.Const(boundaryGrad)))
	params := s.gTop.Params()
	pgrads := ag.Grad(proxy, params...)
	s.gOpt.Step(params, pgrads)
	lossVal := loss.Item()

	var tape ag.Tape
	tape.Track(proxy, loss)
	tape.Track(grads...)
	tape.Track(pgrads...)
	tape.Release()
	return lossVal, nil
}

// pack applies PacGAN packing at the critic boundary.
func (s *Server) pack(v *ag.Value) *ag.Value {
	if s.cfg.Pac <= 1 {
		return v
	}
	rows, cols := v.Shape()
	return ag.Reshape(v, rows/s.cfg.Pac, cols*s.cfg.Pac)
}

// topInputs assembles D^t inputs: the concatenation of per-client logits
// and, when conditional vectors exist, the D^s filter output (step 7).
// realVars may be nil during the generator phase.
func (s *Server) topInputs(fakeVars, realVars []*ag.Value, globalCV *tensor.Dense) (fakeIn, realIn *ag.Value) {
	var dsOut *ag.Value
	if s.dS != nil {
		dsOut = s.dS.Forward(ag.Const(globalCV), true)
	}
	join := func(vars []*ag.Value) *ag.Value {
		parts := make([]*ag.Value, 0, len(vars)+1)
		parts = append(parts, vars...)
		if dsOut != nil {
			parts = append(parts, dsOut)
		}
		return ag.ConcatCols(parts...)
	}
	fakeIn = join(fakeVars)
	if realVars != nil {
		realIn = join(realVars)
	}
	return fakeIn, realIn
}

// scatterRowsAccumulate maps gradients of selected rows back onto the full
// row space, summing duplicates.
func scatterRowsAccumulate(grad *tensor.Dense, idx []int, rows int) *tensor.Dense {
	out := tensor.New(rows, grad.Cols())
	for k, r := range idx {
		dst := out.RawRow(r)
		src := grad.RawRow(k)
		for j, v := range src {
			dst[j] += v
		}
	}
	return out
}

// Synthesize generates n rows of joint synthetic data: the server drives
// generator-only forward passes (steps 1-3 of Fig. 4), each client buffers
// and decodes its own columns, shuffles them with the shared publication
// seed, and the horizontal concatenation of the published slices is the
// final dataset (§3.1.7).
func (s *Server) Synthesize(n int) (*encoding.Table, error) {
	joined, _, err := s.SynthesizeParts(n)
	return joined, err
}

// SynthesizeParts is Synthesize but returns the per-client synthetic slices
// alongside the joined table, which the Avg-client and Across-client
// metrics need.
func (s *Server) SynthesizeParts(n int) (*encoding.Table, []*encoding.Table, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("vfl: cannot synthesize %d rows", n)
	}
	done := 0
	for done < n {
		batch := s.cfg.BatchSize
		if n-done < batch {
			batch = n - done
		}
		_, _, _, _, slices, err := s.generatorForward(batch, false)
		if err != nil {
			return nil, nil, err
		}
		err = s.fanOut(func(i int, c Client) error {
			if err := c.GenerateRows(slices[i]); err != nil {
				return fmt.Errorf("vfl: client %d generating: %w", i, err)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		done += batch
	}
	parts := make([]*encoding.Table, len(s.clients))
	err := s.fanOut(func(i int, c Client) error {
		t, err := c.Publish()
		if err != nil {
			return fmt.Errorf("vfl: client %d publishing: %w", i, err)
		}
		parts[i] = t
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	joined, err := encoding.ConcatColumns(parts...)
	if err != nil {
		return nil, nil, fmt.Errorf("vfl: assembling synthetic table: %w", err)
	}
	return joined, parts, nil
}

// SynthesizeCondition generates n rows all conditioned on one category of
// client p's categorical span spanIdx (conditional synthesis). The
// contributor is fixed to p for every batch.
func (s *Server) SynthesizeCondition(n, p, spanIdx, category int) (*encoding.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vfl: cannot synthesize %d rows", n)
	}
	if p < 0 || p >= len(s.clients) {
		return nil, fmt.Errorf("vfl: client %d out of range %d", p, len(s.clients))
	}
	done := 0
	for done < n {
		batch := s.cfg.BatchSize
		if n-done < batch {
			batch = n - done
		}
		cvb, err := s.clients[p].SampleCVFixed(batch, spanIdx, category)
		if err != nil {
			return nil, fmt.Errorf("vfl: client %d fixed CV: %w", p, err)
		}
		globalCV := s.embedCV(cvb.CV, p)
		s.comm.add(func(c *CommStats) { c.CVBytes += matrixBytes(cvb.CV.Rows(), cvb.CV.Cols()) })
		noise := gan.SampleNoise(s.rng.Rand, batch, s.cfg.NoiseDim)
		gin := tensor.ConcatCols(noise, globalCV)
		gtOut := s.gTop.Forward(ag.Const(gin), false)
		slices := gtOut.Data().SplitCols(s.sliceWidths)
		err = s.fanOut(func(i int, c Client) error {
			sl := slices[i]
			s.comm.add(func(cs *CommStats) { cs.GenSlicesSent += matrixBytes(sl.Rows(), sl.Cols()) })
			if err := c.GenerateRows(sl); err != nil {
				return fmt.Errorf("vfl: client %d generating: %w", i, err)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		done += batch
	}
	parts := make([]*encoding.Table, len(s.clients))
	err := s.fanOut(func(i int, c Client) error {
		t, err := c.Publish()
		if err != nil {
			return fmt.Errorf("vfl: client %d publishing: %w", i, err)
		}
		parts[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	joined, err := encoding.ConcatColumns(parts...)
	if err != nil {
		return nil, fmt.Errorf("vfl: assembling conditional synthesis: %w", err)
	}
	return joined, nil
}
