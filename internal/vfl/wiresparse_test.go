package vfl

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/condvec"
	"repro/internal/tensor"
)

// encodeMatrix returns the encoded payload of one matrix field.
func encodeMatrix(m *tensor.Dense, f32 bool) []byte {
	enc := newWireEnc()
	enc.matrix(m, f32)
	out := append([]byte(nil), enc.buf...)
	enc.release()
	return out
}

// TestWireMatrixLayoutSelection pins the encoder's per-frame layout
// choice, including the bit-exactness guards: only the exact bit patterns
// of 0.0 and 1.0 may classify as sparse material — negative zero and
// denormals must force the dense layout.
func TestWireMatrixLayoutSelection(t *testing.T) {
	oneHot := tensor.FromRows([][]float64{{0, 1, 0, 0}, {0, 0, 0, 0}, {1, 0, 0, 0}})
	multiHot := tensor.FromRows([][]float64{{1, 1, 0, 1}, {0, 1, 1, 0}})
	sparse := tensor.New(2, 16)
	sparse.Set(0, 3, 2.5)
	dense := tensor.FromRows([][]float64{{1.5, -2}, {3, 4}})
	negZero := tensor.FromRows([][]float64{{0, 1}, {math.Copysign(0, -1), 0}})
	denormal := tensor.FromRows([][]float64{{0, 1}, {5e-324, 0}})

	cases := []struct {
		name string
		m    *tensor.Dense
		want byte
	}{
		{"one-hot", oneHot, wireLayoutOneHot},
		{"multi-hot bitmap", multiHot, wireLayoutBitmap},
		{"sparse index list", sparse, wireLayoutSparse},
		{"dense floats", dense, wireLayoutDense},
		{"all-zero", tensor.New(3, 4), wireLayoutOneHot},
		{"negative zero stays dense", negZero, wireLayoutDense},
		{"denormal stays dense", denormal, wireLayoutDense},
		{"empty shape", tensor.New(0, 5), wireLayoutDense},
	}
	for _, tc := range cases {
		if got := encodeMatrix(tc.m, false)[0]; got != tc.want {
			t.Errorf("%s: layout %d, want %d", tc.name, got, tc.want)
		}
	}
	if got := encodeMatrix(nil, false)[0]; got != wireLayoutNil {
		t.Errorf("nil matrix: layout %d", got)
	}
}

// TestWireSparseLayoutRoundTrips round-trips every non-dense layout
// bit-exactly through a real frame cycle.
func TestWireSparseLayoutRoundTrips(t *testing.T) {
	sparse := tensor.New(5, 12)
	sparse.Set(0, 0, math.Copysign(0, -1)) // nonzero bits: carried as a value
	sparse.Set(1, 7, -3.75)
	sparse.Set(4, 11, 1e-300)
	for _, tc := range []struct {
		name string
		m    *tensor.Dense
	}{
		{"one-hot", tensor.FromRows([][]float64{{0, 0, 1}, {0, 0, 0}, {1, 0, 0}})},
		{"bitmap", tensor.FromRows([][]float64{{1, 0, 1, 1, 1, 0, 1}, {0, 1, 1, 0, 0, 1, 0}})},
		{"sparse", sparse},
	} {
		dec := encodeDecode(t, func(e *wireEnc) { e.matrix(tc.m, false) })
		got := dec.matrix()
		if err := dec.finish(); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		for i, v := range got.Data() {
			if math.Float64bits(v) != math.Float64bits(tc.m.Data()[i]) {
				t.Fatalf("%s: element %d bits %x -> %x", tc.name,
					i, math.Float64bits(tc.m.Data()[i]), math.Float64bits(v))
			}
		}
		got.Release()
	}
}

// TestWireMatrixHotFastPath: the sampler-fed one-hot encoder must emit
// byte-identical output to the scanning encoder, and fall back to the scan
// when the hot slice does not cover the matrix.
func TestWireMatrixHotFastPath(t *testing.T) {
	m := tensor.FromRows([][]float64{{0, 1, 0}, {0, 0, 0}, {0, 0, 1}})
	hot := []int{1, -1, 2}

	scanned := encodeMatrix(m, false)
	enc := newWireEnc()
	enc.matrixHot(m, hot)
	fast := append([]byte(nil), enc.buf...)
	enc.release()
	if !bytes.Equal(fast, scanned) {
		t.Fatalf("fast path %x, scan path %x", fast, scanned)
	}

	enc = newWireEnc()
	enc.matrixHot(m, hot[:2]) // wrong length: must fall back, not misencode
	fallback := append([]byte(nil), enc.buf...)
	enc.release()
	if !bytes.Equal(fallback, scanned) {
		t.Fatalf("short-hot fallback %x, scan path %x", fallback, scanned)
	}
}

// TestWireSparseDecodeRejectsMalformed hand-crafts hostile payloads for the
// new layouts: oversized sparse shapes must fail before allocating, bitmap
// pad bits must be zero, and one-hot indices must stay inside the row.
func TestWireSparseDecodeRejectsMalformed(t *testing.T) {
	expectFail := func(name string, build func(e *wireEnc)) {
		t.Helper()
		enc := newWireEnc()
		build(enc)
		dec := newWireDec(enc.buf)
		if m := dec.matrix(); m != nil {
			m.Release()
		}
		if err := dec.finish(); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
		enc.release()
	}

	expectFail("sparse shape over cap", func(e *wireEnc) {
		e.u8(wireLayoutSparse)
		e.uvarint(1 << 30) // rows
		e.uvarint(1 << 30) // cols: would be an exabyte dense
		e.u8(8)
		e.uvarint(0)
	})
	expectFail("sparse index out of range", func(e *wireEnc) {
		e.u8(wireLayoutSparse)
		e.uvarint(2)
		e.uvarint(2)
		e.u8(8)
		e.uvarint(1)
		e.uvarint(9) // first absolute index past n=4
		e.f64(1)
	})
	expectFail("sparse duplicate index", func(e *wireEnc) {
		e.u8(wireLayoutSparse)
		e.uvarint(2)
		e.uvarint(2)
		e.u8(8)
		e.uvarint(2)
		e.uvarint(1) // index 1
		e.f64(1)
		e.uvarint(0) // delta 0: not strictly ascending
		e.f64(2)
	})
	expectFail("bitmap pad bits set", func(e *wireEnc) {
		e.u8(wireLayoutBitmap)
		e.uvarint(1)
		e.uvarint(3)
		e.u8(0xFF) // bits 3..7 are past the last element
	})
	expectFail("one-hot index out of range", func(e *wireEnc) {
		e.u8(wireLayoutOneHot)
		e.uvarint(1)
		e.uvarint(2)
		e.uvarint(5) // hot+1 = 5 -> column 4 of a 2-wide row
	})
	expectFail("unknown layout", func(e *wireEnc) {
		e.u8(9)
		e.uvarint(1)
		e.uvarint(1)
	})
}

// TestCVBatchHotRoundTrip: the sampler's hot positions survive the wire, so
// the receiving side can re-encode without rescanning.
func TestCVBatchHotRoundTrip(t *testing.T) {
	in := &condvec.Batch{
		CV:      tensor.FromRows([][]float64{{0, 1, 0}, {0, 0, 0}, {1, 0, 0}}),
		Hot:     []int{1, -1, 0},
		Rows:    []int{3, 1, 4},
		Choices: []condvec.Choice{{Span: 0, Category: 1}, {Span: 0, Category: 0}, {Span: 1, Category: 0}},
	}
	dec := encodeDecode(t, func(e *wireEnc) { e.cvBatch(in, false) })
	got := dec.cvBatch()
	if err := dec.finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.CV.Equal(in.CV) {
		t.Fatal("CV changed across the wire")
	}
	if len(got.Hot) != 3 || got.Hot[0] != 1 || got.Hot[1] != -1 || got.Hot[2] != 0 {
		t.Fatalf("hot positions %v", got.Hot)
	}
	got.CV.Release()
}
