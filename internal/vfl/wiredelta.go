package vfl

// Delta-encoded snapshot transfer for the gtvwire protocol.
//
// The recurring whole-model transfer in this system is the checkpoint
// fetch: at every checkpoint cadence the coordinator pulls each remote
// client's full gtvsnap blob (Client.Snapshot), the split-learning
// counterpart of a FedAvg weight broadcast with the direction flipped.
// Between consecutive fetches only the parameter bytes that training
// actually moved differ — the blob framing, shapes and section headers are
// identical — so shipping a byte-aligned diff against the previous blob
// cuts the transfer to the changed ranges.
//
// Protocol (request/response bodies of wireMethodSnapshot when the proxy
// enables delta mode):
//
//	request  := deltaCapable bool | baseEpoch uvarint   (0 = no base held)
//	response := form u8 | epoch uvarint | body
//	form 0 (full):  body := blob bytes (length-prefixed)
//	form 1 (delta): body := crc u32 | newLen uvarint | ops
//	ops           := (equalLen uvarint | litLen uvarint | literal bytes)*
//	                 until equalLen+litLen bytes consumed sum to newLen
//
// Every served blob gets a fresh epoch from a process-global counter, so
// epochs never repeat within a responder process and a proxy holding a
// base from before a responder restart can never have its baseEpoch
// matched — the responder falls back to a full transfer, which is also the
// redial/resume resync path. The crc over the reassembled blob is a
// belt-and-suspenders integrity check: on mismatch the proxy reports
// errWireSnapStale, drops its base and re-fetches full. The transfer is
// therefore lossless end to end; delta mode changes bytes on the wire,
// never the blob the caller sees.

import (
	"errors"
	"hash/crc32"
)

// Snapshot response forms.
const (
	wireSnapFull  = 0
	wireSnapDelta = 1
)

// wireDeltaMinRun is the shortest equal run worth switching out of a
// literal for: each op pair costs at least two varint bytes, so equal runs
// shorter than this are folded into the surrounding literal.
const wireDeltaMinRun = 8

// errWireSnapStale marks a delta response that does not apply to the
// proxy's cached base (length or checksum mismatch). The proxy reacts by
// dropping the base and re-fetching a full snapshot.
var errWireSnapStale = errors.New("stale snapshot delta base")

// appendSnapDeltaOps encodes cur as ops against base (which must have the
// same length) into e, as alternating equal-run/literal-run pairs covering
// every byte of cur.
func appendSnapDeltaOps(e *wireEnc, base, cur []byte) {
	i := 0
	for i < len(cur) {
		eq := i
		for eq < len(cur) && cur[eq] == base[eq] {
			eq++
		}
		equalLen := eq - i
		if equalLen < wireDeltaMinRun && eq < len(cur) {
			// Too short to pay for an op pair: scan forward through the
			// literal until the next long-enough equal run (or the end).
			lit := eq
			run := 0
			for lit < len(cur) {
				if cur[lit] == base[lit] {
					run++
					if run >= wireDeltaMinRun {
						lit -= run - 1
						break
					}
				} else {
					run = 0
				}
				lit++
			}
			if lit > len(cur) {
				lit = len(cur)
			}
			e.uvarint(uint64(equalLen))
			e.uvarint(uint64(lit - eq))
			e.buf = append(e.buf, cur[eq:lit]...)
			i = lit
			continue
		}
		// Long equal run (or trailing one): emit it with an empty literal
		// unless a literal follows, in which case the next iteration pairs
		// them naturally — here we just emit the pair with whatever literal
		// starts at eq.
		lit := eq
		for lit < len(cur) && cur[lit] != base[lit] {
			lit++
		}
		e.uvarint(uint64(equalLen))
		e.uvarint(uint64(lit - eq))
		e.buf = append(e.buf, cur[eq:lit]...)
		i = lit
	}
}

// decodeSnapDelta reassembles a delta body against base, which the caller
// has verified to have length newLen. Returns nil with the decoder failed
// on malformed ops.
func decodeSnapDelta(d *wireDec, base []byte, newLen int) []byte {
	out := make([]byte, 0, newLen)
	for len(out) < newLen {
		equalLen := int(d.uvarint())
		litLen := int(d.uvarint())
		if d.err != nil {
			return nil
		}
		if equalLen < 0 || litLen < 0 || equalLen > newLen-len(out) || litLen > newLen-len(out)-equalLen {
			d.fail("snapshot delta ops overrun blob length %d", newLen)
			return nil
		}
		out = append(out, base[len(out):len(out)+equalLen]...)
		lit := d.take(litLen)
		if lit == nil {
			return nil
		}
		out = append(out, lit...)
	}
	return out
}

// snapDeltaCRC is the integrity checksum over a full snapshot blob,
// verified by the proxy after reassembly.
func snapDeltaCRC(blob []byte) uint32 { return crc32.ChecksumIEEE(blob) }

// encodeWireSnapshot writes the delta-capable snapshot response body for
// blob, serving a delta only when the peer's base epoch matches this
// connection's cache, the blob lengths line up (gtvsnap images of an
// unchanged model are fixed-width, so a length change means a structural
// change no aligned delta covers), and the encoded ops actually come out
// smaller than the full blob. The cache is updated to the served blob
// either way.
func encodeWireSnapshot(enc *wireEnc, snaps *wireSnapCache, blob []byte, haveEpoch uint64) {
	epoch := wireSnapEpoch.Add(1)
	snaps.mu.Lock()
	base, baseEpoch := snaps.blob, snaps.epoch
	snaps.blob = append([]byte(nil), blob...)
	snaps.epoch = epoch
	snaps.mu.Unlock()

	if base != nil && haveEpoch != 0 && haveEpoch == baseEpoch && len(base) == len(blob) {
		ops := newWireEnc()
		appendSnapDeltaOps(ops, base, blob)
		if len(ops.buf) < len(blob) {
			enc.u8(wireSnapDelta)
			enc.uvarint(epoch)
			enc.u32(snapDeltaCRC(blob))
			enc.uvarint(uint64(len(blob)))
			enc.buf = append(enc.buf, ops.buf...)
			ops.release()
			return
		}
		ops.release()
	}
	enc.u8(wireSnapFull)
	enc.uvarint(epoch)
	enc.bytes(blob)
}
