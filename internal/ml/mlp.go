package ml

import (
	"errors"
	"math/rand"

	ag "repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MLP is a one-hidden-layer perceptron classifier (the paper's evaluation
// and Shapley models use one hidden layer of 100 neurons) trained with Adam
// on the softmax cross-entropy loss.
type MLP struct {
	// Hidden is the hidden width (default 100).
	Hidden int
	// Epochs is the number of full-batch updates (default 120).
	Epochs int
	// LR is the Adam learning rate (default 1e-2).
	LR float64
	// Seed drives weight initialization.
	Seed int64

	net        *nn.Sequential
	numClasses int
}

var _ Classifier = (*MLP)(nil)

// Fit implements Classifier. The contract Fit needs — x has exactly
// len(y) rows — relates a matrix dim to a slice length, which the
// //shape: dim language cannot express; a dims-only contract would
// overpromise, so the obligation is waived instead.
//lint:ignore shapeflow x-rows/len(y) coupling is not expressible in the dim language
func (m *MLP) Fit(x *tensor.Dense, y []int, numClasses int) error {
	if x.Rows() == 0 || x.Rows() != len(y) {
		return errors.New("ml: mlp fit with empty or misaligned data")
	}
	if m.Hidden == 0 {
		m.Hidden = 100
	}
	if m.Epochs == 0 {
		m.Epochs = 120
	}
	if m.LR <= 0 {
		m.LR = 1e-2
	}
	m.numClasses = numClasses
	rng := rand.New(rand.NewSource(m.Seed))
	m.net = nn.NewSequential(
		nn.NewLinear(rng, x.Cols(), m.Hidden),
		nn.ReLU{},
		nn.NewLinear(rng, m.Hidden, numClasses),
	)
	opt := nn.NewAdam(m.LR)
	opt.WeightDecay = 1e-5

	onehot := tensor.New(x.Rows(), numClasses)
	for i, c := range y {
		onehot.Set(i, c, 1)
	}
	xs := ag.Const(x)
	ys := ag.Const(onehot)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		logits := m.net.Forward(xs, true)
		loss := CrossEntropy(logits, ys)
		opt.Step(m.net.Params(), nn.Grads(loss, m.net))
	}
	return nil
}

// PredictProba implements Classifier.
//
//shape: in(B,D) out(B,K)
func (m *MLP) PredictProba(x *tensor.Dense) *tensor.Dense {
	logits := m.net.Forward(ag.Const(x), false)
	return ag.SoftmaxRows(logits).Data()
}

// CrossEntropy returns the mean softmax cross-entropy between logits and
// one-hot targets, as an autograd value.
//
//shape: in(B,K) in(B,K) out(1,1)
func CrossEntropy(logits, onehot *ag.Value) *ag.Value {
	probs := ag.SoftmaxRows(logits)
	logp := ag.Log(ag.AddScalar(probs, 1e-12))
	perRow := ag.SumCols(ag.Mul(logp, onehot))
	return ag.Neg(ag.MeanAll(perRow))
}
