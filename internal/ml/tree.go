package ml

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// DecisionTree is a CART classifier with Gini-impurity splits.
type DecisionTree struct {
	// MaxDepth bounds tree depth (0 means the default of 12).
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting.
	MinSamplesSplit int
	// MaxFeatures, when positive, restricts each split to a random subset
	// of that many features (used by random forests). Rng must be set when
	// MaxFeatures is positive.
	MaxFeatures int
	Rng         *rand.Rand

	root       *treeNode
	numClasses int
}

var _ Classifier = (*DecisionTree)(nil)

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// proba is set on leaves: class distribution of training rows.
	proba []float64
}

// Fit implements Classifier.
//
//shape: in(B,D) in(K)
func (t *DecisionTree) Fit(x *tensor.Dense, y []int, numClasses int) error {
	if x.Rows() == 0 || x.Rows() != len(y) {
		return errors.New("ml: tree fit with empty or misaligned data")
	}
	if t.MaxDepth == 0 {
		t.MaxDepth = 12
	}
	if t.MinSamplesSplit < 2 {
		t.MinSamplesSplit = 2
	}
	t.numClasses = numClasses
	idx := make([]int, x.Rows())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(x, y, idx, 0)
	return nil
}

// build grows the tree recursively on the rows in idx.
func (t *DecisionTree) build(x *tensor.Dense, y []int, idx []int, depth int) *treeNode {
	counts := make([]float64, t.numClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	node := &treeNode{}
	pure := false
	for _, c := range counts {
		if int(c) == len(idx) { // counts are exact integers
			pure = true
		}
	}
	if pure || depth >= t.MaxDepth || len(idx) < t.MinSamplesSplit {
		node.proba = normalizeCounts(counts, len(idx))
		return node
	}

	feature, threshold, gain := t.bestSplit(x, y, idx, counts)
	if gain <= 1e-12 {
		node.proba = normalizeCounts(counts, len(idx))
		return node
	}
	var left, right []int
	for _, i := range idx {
		if x.At(i, feature) <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		node.proba = normalizeCounts(counts, len(idx))
		return node
	}
	node.feature = feature
	node.threshold = threshold
	node.left = t.build(x, y, left, depth+1)
	node.right = t.build(x, y, right, depth+1)
	return node
}

// bestSplit scans candidate features for the split with maximal Gini gain.
func (t *DecisionTree) bestSplit(x *tensor.Dense, y []int, idx []int, parentCounts []float64) (int, float64, float64) {
	n := float64(len(idx))
	parentGini := gini(parentCounts, n)

	features := t.candidateFeatures(x.Cols())
	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0

	type sv struct {
		v float64
		y int
	}
	vals := make([]sv, len(idx))
	for _, f := range features {
		for k, i := range idx {
			vals[k] = sv{x.At(i, f), y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })

		leftCounts := make([]float64, t.numClasses)
		rightCounts := append([]float64(nil), parentCounts...)
		for k := 0; k < len(vals)-1; k++ {
			leftCounts[vals[k].y]++
			rightCounts[vals[k].y]--
			if !(vals[k].v < vals[k+1].v) { // sorted: not-less means equal value
				continue
			}
			nl, nr := float64(k+1), n-float64(k+1)
			gain := parentGini - (nl*gini(leftCounts, nl)+nr*gini(rightCounts, nr))/n
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestGain
}

// candidateFeatures returns all features, or a random subset when
// MaxFeatures is set.
func (t *DecisionTree) candidateFeatures(total int) []int {
	if t.MaxFeatures <= 0 || t.MaxFeatures >= total || t.Rng == nil {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := t.Rng.Perm(total)
	return perm[:t.MaxFeatures]
}

// PredictProba implements Classifier.
//
//shape: in(B,D) out(B,K)
func (t *DecisionTree) PredictProba(x *tensor.Dense) *tensor.Dense {
	out := tensor.New(x.Rows(), t.numClasses)
	for i := 0; i < x.Rows(); i++ {
		node := t.root
		for node.proba == nil {
			if x.At(i, node.feature) <= node.threshold {
				node = node.left
			} else {
				node = node.right
			}
		}
		copy(out.RawRow(i), node.proba)
	}
	return out
}

func gini(counts []float64, n float64) float64 {
	if n < 1 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := c / n
		s -= p * p
	}
	return s
}

func normalizeCounts(counts []float64, n int) []float64 {
	out := make([]float64, len(counts))
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = c / float64(n)
	}
	return out
}

// RandomForest is a bagged ensemble of Gini decision trees with random
// feature subsets at each split.
type RandomForest struct {
	// NumTrees is the ensemble size (default 20).
	NumTrees int
	// MaxDepth bounds each tree (default 10).
	MaxDepth int
	// Seed drives bootstrap and feature sampling.
	Seed int64

	trees      []*DecisionTree
	numClasses int
}

var _ Classifier = (*RandomForest)(nil)

// Fit implements Classifier.
//
//shape: in(B,D) in(K)
func (f *RandomForest) Fit(x *tensor.Dense, y []int, numClasses int) error {
	if x.Rows() == 0 || x.Rows() != len(y) {
		return errors.New("ml: forest fit with empty or misaligned data")
	}
	if f.NumTrees == 0 {
		f.NumTrees = 20
	}
	if f.MaxDepth == 0 {
		f.MaxDepth = 10
	}
	f.numClasses = numClasses
	rng := rand.New(rand.NewSource(f.Seed))
	maxFeatures := int(math.Ceil(math.Sqrt(float64(x.Cols()))))

	f.trees = make([]*DecisionTree, f.NumTrees)
	n := x.Rows()
	for ti := range f.trees {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		bx := x.GatherRows(idx)
		by := make([]int, n)
		for i, j := range idx {
			by[i] = y[j]
		}
		tree := &DecisionTree{
			MaxDepth:    f.MaxDepth,
			MaxFeatures: maxFeatures,
			Rng:         rand.New(rand.NewSource(rng.Int63())),
		}
		if err := tree.Fit(bx, by, numClasses); err != nil {
			return err
		}
		f.trees[ti] = tree
	}
	return nil
}

// PredictProba implements Classifier.
//
//shape: in(B,D) out(B,K)
func (f *RandomForest) PredictProba(x *tensor.Dense) *tensor.Dense {
	out := tensor.New(x.Rows(), f.numClasses)
	for _, tree := range f.trees {
		out.AddInPlace(tree.PredictProba(x))
	}
	return out.Scale(1 / float64(len(f.trees)))
}
