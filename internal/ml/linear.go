package ml

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LogisticRegression is a multinomial (softmax) logistic regression trained
// with full-batch gradient descent and L2 regularization.
type LogisticRegression struct {
	// LR is the learning rate (default 0.5).
	LR float64
	// Epochs is the number of full-batch iterations (default 200).
	Epochs int
	// L2 is the regularization strength (default 1e-4).
	L2 float64

	w *tensor.Dense // features x classes
	b []float64
}

var _ Classifier = (*LogisticRegression)(nil)

// Fit implements Classifier.
//
//shape: in(B,D) in(K)
func (m *LogisticRegression) Fit(x *tensor.Dense, y []int, numClasses int) error {
	if x.Rows() == 0 || x.Rows() != len(y) {
		return errors.New("ml: logistic regression fit with empty or misaligned data")
	}
	if m.LR <= 0 {
		m.LR = 0.5
	}
	if m.Epochs == 0 {
		m.Epochs = 200
	}
	if m.L2 <= 0 {
		m.L2 = 1e-4
	}
	n, d := x.Shape()
	m.w = tensor.New(d, numClasses)
	m.b = make([]float64, numClasses)

	for epoch := 0; epoch < m.Epochs; epoch++ {
		probs := m.scores(x)
		softmaxInPlace(probs)
		// Gradient: X^T (P - Y) / n + l2*W.
		for i := 0; i < n; i++ {
			probs.Set(i, y[i], probs.At(i, y[i])-1)
		}
		gw := tensor.MatMulTA(x, probs).Scale(1 / float64(n))
		gw.AxpyInPlace(m.L2, m.w)
		gb := probs.MeanRows()
		m.w.AxpyInPlace(-m.LR, gw)
		for c := 0; c < numClasses; c++ {
			m.b[c] -= m.LR * gb.At(0, c)
		}
	}
	return nil
}

// scores returns the raw linear scores x*w + b.
func (m *LogisticRegression) scores(x *tensor.Dense) *tensor.Dense {
	out := tensor.MatMul(x, m.w)
	for i := 0; i < out.Rows(); i++ {
		row := out.RawRow(i)
		for c := range row {
			row[c] += m.b[c]
		}
	}
	return out
}

// PredictProba implements Classifier.
//
//shape: in(B,D) out(B,K)
func (m *LogisticRegression) PredictProba(x *tensor.Dense) *tensor.Dense {
	out := m.scores(x)
	softmaxInPlace(out)
	return out
}

// LinearSVM is a one-vs-rest linear support vector machine trained with
// subgradient descent on the L2-regularized hinge loss. Probabilities are
// produced by a logistic squashing of the margins (Platt-style with fixed
// slope), sufficient for ranking-based AUC.
type LinearSVM struct {
	// LR is the learning rate (default 0.1).
	LR float64
	// Epochs is the number of full-batch iterations (default 150).
	Epochs int
	// C is the inverse regularization strength (default 1).
	C float64
	// Seed drives the (deterministic) initialization.
	Seed int64

	w *tensor.Dense
	b []float64
}

var _ Classifier = (*LinearSVM)(nil)

// Fit implements Classifier.
//
//shape: in(B,D) in(K)
func (m *LinearSVM) Fit(x *tensor.Dense, y []int, numClasses int) error {
	if x.Rows() == 0 || x.Rows() != len(y) {
		return errors.New("ml: svm fit with empty or misaligned data")
	}
	if m.LR <= 0 {
		m.LR = 0.1
	}
	if m.Epochs == 0 {
		m.Epochs = 150
	}
	if m.C <= 0 {
		m.C = 1
	}
	n, d := x.Shape()
	rng := rand.New(rand.NewSource(m.Seed))
	m.w = tensor.Randn(rng, d, numClasses, 0, 0.01)
	m.b = make([]float64, numClasses)
	lambda := 1 / (m.C * float64(n))

	for epoch := 0; epoch < m.Epochs; epoch++ {
		margins := m.margins(x)
		gw := tensor.New(d, numClasses)
		gb := make([]float64, numClasses)
		for i := 0; i < n; i++ {
			row := x.RawRow(i)
			for c := 0; c < numClasses; c++ {
				sign := -1.0
				if y[i] == c {
					sign = 1.0
				}
				if sign*margins.At(i, c) < 1 {
					// Subgradient of hinge: -sign * x.
					gRow := gw.Data()
					for j, v := range row {
						gRow[j*numClasses+c] -= sign * v
					}
					gb[c] -= sign
				}
			}
		}
		inv := 1 / float64(n)
		gw = gw.Scale(inv)
		gw.AxpyInPlace(lambda, m.w)
		m.w.AxpyInPlace(-m.LR, gw)
		for c := 0; c < numClasses; c++ {
			m.b[c] -= m.LR * gb[c] * inv
		}
	}
	return nil
}

// margins returns the raw decision values x*w + b.
func (m *LinearSVM) margins(x *tensor.Dense) *tensor.Dense {
	out := tensor.MatMul(x, m.w)
	for i := 0; i < out.Rows(); i++ {
		row := out.RawRow(i)
		for c := range row {
			row[c] += m.b[c]
		}
	}
	return out
}

// PredictProba implements Classifier.
//
//shape: in(B,D) out(B,K)
func (m *LinearSVM) PredictProba(x *tensor.Dense) *tensor.Dense {
	out := m.margins(x)
	// Squash margins through a sigmoid then renormalize per row.
	for i := 0; i < out.Rows(); i++ {
		row := out.RawRow(i)
		var sum float64
		for c := range row {
			row[c] = 1 / (1 + math.Exp(-row[c]))
			sum += row[c]
		}
		if sum > 0 {
			for c := range row {
				row[c] /= sum
			}
		}
	}
	return out
}

// softmaxInPlace applies a numerically stable row-wise softmax.
func softmaxInPlace(m *tensor.Dense) {
	for i := 0; i < m.Rows(); i++ {
		row := m.RawRow(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for c, v := range row {
			row[c] = math.Exp(v - maxv)
			sum += row[c]
		}
		for c := range row {
			row[c] /= sum
		}
	}
}
