package ml

import (
	"fmt"
	"sort"

	"repro/internal/encoding"
)

// ClassifierSet returns fresh instances of the five classifiers the paper's
// ML-utility pipeline trains (decision tree, linear SVM, random forest,
// multinomial logistic regression, MLP), seeded deterministically.
func ClassifierSet(seed int64) map[string]Classifier {
	return map[string]Classifier{
		"decision_tree": &DecisionTree{MaxDepth: 10},
		"svm":           &LinearSVM{Seed: seed},
		"random_forest": &RandomForest{NumTrees: 15, MaxDepth: 8, Seed: seed},
		"logistic":      &LogisticRegression{},
		"mlp":           &MLP{Seed: seed, Epochs: 80},
	}
}

// UtilityScores trains every classifier in the set on train and evaluates
// on test, returning the per-classifier scores and their average.
func UtilityScores(train, test *encoding.Table, target int, seed int64) (map[string]Scores, Scores, error) {
	feat, err := NewFeaturizer(train, target)
	if err != nil {
		return nil, Scores{}, fmt.Errorf("ml: utility featurizer: %w", err)
	}
	xTrain, yTrain, err := feat.Transform(train)
	if err != nil {
		return nil, Scores{}, fmt.Errorf("ml: featurizing train: %w", err)
	}
	xTest, yTest, err := feat.Transform(test)
	if err != nil {
		return nil, Scores{}, fmt.Errorf("ml: featurizing test: %w", err)
	}
	k := feat.NumClasses()

	per := make(map[string]Scores)
	var avg Scores
	set := ClassifierSet(seed)
	// Train and accumulate in sorted-name order: averaging float scores in
	// randomized map order would make the reported utility run-dependent.
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		clf := set[name]
		if err := clf.Fit(xTrain, yTrain, k); err != nil {
			return nil, Scores{}, fmt.Errorf("ml: fitting %s: %w", name, err)
		}
		s := Evaluate(clf, xTest, yTest, k)
		per[name] = s
		avg = avg.Add(s)
	}
	avg = avg.Scale(1 / float64(len(set)))
	return per, avg, nil
}

// UtilityDifference runs the paper's §4.2.1 pipeline: train the classifier
// set once on real training data and once on synthetic data, evaluate both
// on the real test set, and return the absolute difference of the average
// scores (lower = better synthetic data).
func UtilityDifference(realTrain, synth, test *encoding.Table, target int, seed int64) (Scores, error) {
	_, realAvg, err := UtilityScores(realTrain, test, target, seed)
	if err != nil {
		return Scores{}, fmt.Errorf("ml: real-data utility: %w", err)
	}
	_, synthAvg, err := UtilityScores(synth, test, target, seed)
	if err != nil {
		return Scores{}, fmt.Errorf("ml: synthetic-data utility: %w", err)
	}
	return realAvg.Sub(synthAvg).Abs(), nil
}
