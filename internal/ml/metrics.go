package ml

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Accuracy returns the fraction of predictions equal to the labels.
func Accuracy(pred, y []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	var ok int
	for i := range pred {
		if pred[i] == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(pred))
}

// MacroF1 returns the unweighted mean of per-class F1 scores over
// numClasses classes. Classes absent from both predictions and labels
// contribute an F1 of zero, matching sklearn's zero_division=0 behaviour.
func MacroF1(pred, y []int, numClasses int) float64 {
	if numClasses <= 0 {
		return 0
	}
	var total float64
	for c := 0; c < numClasses; c++ {
		var tp, fp, fn float64
		for i := range pred {
			switch {
			case pred[i] == c && y[i] == c:
				tp++
			case pred[i] == c && y[i] != c:
				fp++
			case pred[i] != c && y[i] == c:
				fn++
			}
		}
		if tp > 0 {
			precision := tp / (tp + fp)
			recall := tp / (tp + fn)
			total += 2 * precision * recall / (precision + recall)
		}
	}
	return total / float64(numClasses)
}

// BinaryAUC returns the area under the ROC curve given scores for the
// positive class and binary labels. Tied scores are handled by the
// rank-based (Mann-Whitney) formulation.
func BinaryAUC(scores []float64, y []int) float64 {
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, len(scores))
	var pos, neg float64
	for i := range scores {
		ps[i] = pair{scores[i], y[i]}
		if y[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos < 1 || neg < 1 {
		return 0.5
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].s < ps[b].s })

	// Assign average ranks to ties.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && !(ps[i].s < ps[j].s) { // sorted: not-less means tied
			j++
		}
		avg := float64(i+j+1) / 2 // 1-based average rank
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var rankSum float64
	for i := range ps {
		if ps[i].y == 1 {
			rankSum += ranks[i]
		}
	}
	return (rankSum - pos*(pos+1)/2) / (pos * neg)
}

// MacroAUC returns the macro-averaged one-vs-rest AUC for a probability
// matrix (rows x classes). For binary problems it equals the standard AUC.
//
//shape: in(B,K) in(K)
func MacroAUC(proba *tensor.Dense, y []int, numClasses int) float64 {
	if numClasses == 2 {
		return BinaryAUC(proba.Col(1), binarize(y, 1))
	}
	var total float64
	var counted int
	for c := 0; c < numClasses; c++ {
		lbl := binarize(y, c)
		var pos int
		for _, v := range lbl {
			pos += v
		}
		if pos == 0 || pos == len(lbl) {
			continue
		}
		total += BinaryAUC(proba.Col(c), lbl)
		counted++
	}
	if counted == 0 {
		return 0.5
	}
	return total / float64(counted)
}

func binarize(y []int, c int) []int {
	out := make([]int, len(y))
	for i, v := range y {
		if v == c {
			out[i] = 1
		}
	}
	return out
}

// Scores bundles the three ML-utility metrics the paper reports.
type Scores struct {
	Accuracy float64
	F1       float64
	AUC      float64
}

// Sub returns the element-wise difference s - o (real minus synthetic).
func (s Scores) Sub(o Scores) Scores {
	return Scores{Accuracy: s.Accuracy - o.Accuracy, F1: s.F1 - o.F1, AUC: s.AUC - o.AUC}
}

// Abs returns the element-wise absolute value.
func (s Scores) Abs() Scores {
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	return Scores{Accuracy: abs(s.Accuracy), F1: abs(s.F1), AUC: abs(s.AUC)}
}

// Add returns the element-wise sum.
func (s Scores) Add(o Scores) Scores {
	return Scores{Accuracy: s.Accuracy + o.Accuracy, F1: s.F1 + o.F1, AUC: s.AUC + o.AUC}
}

// Scale returns the scores multiplied by k.
func (s Scores) Scale(k float64) Scores {
	return Scores{Accuracy: s.Accuracy * k, F1: s.F1 * k, AUC: s.AUC * k}
}

// String renders the scores compactly.
func (s Scores) String() string {
	return fmt.Sprintf("acc=%.4f f1=%.4f auc=%.4f", s.Accuracy, s.F1, s.AUC)
}

// Evaluate computes all three metrics for a classifier on a test set.
//shape: in(B,D) in(K)
func Evaluate(c Classifier, x *tensor.Dense, y []int, numClasses int) Scores {
	proba := c.PredictProba(x)
	pred := proba.ArgmaxRows()
	return Scores{
		Accuracy: Accuracy(pred, y),
		F1:       MacroF1(pred, y, numClasses),
		AUC:      MacroAUC(proba, y, numClasses),
	}
}
