package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/tensor"
)

// blobs generates a linearly separable 2-class problem with margin.
func blobs(rng *rand.Rand, n int) (*tensor.Dense, []int) {
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		shift := -2.0
		if c == 1 {
			shift = 2.0
		}
		x.Set(i, 0, rng.NormFloat64()*0.5+shift)
		x.Set(i, 1, rng.NormFloat64()*0.5-shift)
	}
	return x, y
}

// rings generates a non-linearly separable problem (inner disk vs ring).
func rings(rng *rand.Rand, n int) (*tensor.Dense, []int) {
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		var r float64
		c := i % 2
		y[i] = c
		if c == 0 {
			r = rng.Float64() * 1.0
		} else {
			r = 2.0 + rng.Float64()
		}
		theta := rng.Float64() * 2 * math.Pi
		x.Set(i, 0, r*math.Cos(theta))
		x.Set(i, 1, r*math.Sin(theta))
	}
	return x, y
}

func checkAccuracy(t *testing.T, c Classifier, x *tensor.Dense, y []int, k int, min float64) {
	t.Helper()
	if err := c.Fit(x, y, k); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	acc := Accuracy(Predict(c, x), y)
	if acc < min {
		t.Fatalf("train accuracy = %v want >= %v", acc, min)
	}
	proba := c.PredictProba(x)
	for i := 0; i < proba.Rows(); i++ {
		var sum float64
		for j := 0; j < proba.Cols(); j++ {
			p := proba.At(i, j)
			if p < -1e-9 || p > 1+1e-9 {
				t.Fatalf("probability %v out of range", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestClassifiersOnSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs(rng, 300)
	tests := []struct {
		name string
		c    Classifier
		min  float64
	}{
		{"decision_tree", &DecisionTree{}, 0.95},
		{"random_forest", &RandomForest{Seed: 1}, 0.95},
		{"logistic", &LogisticRegression{}, 0.95},
		{"svm", &LinearSVM{Seed: 1}, 0.95},
		{"mlp", &MLP{Seed: 1}, 0.95},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkAccuracy(t, tc.c, x, y, 2, tc.min)
		})
	}
}

func TestNonLinearModelsOnRings(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := rings(rng, 400)
	// Trees and MLP handle the ring; linear models cannot (~50%).
	for _, tc := range []struct {
		name string
		c    Classifier
	}{
		{"decision_tree", &DecisionTree{}},
		{"random_forest", &RandomForest{Seed: 2}},
		{"mlp", &MLP{Seed: 2, Epochs: 250}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkAccuracy(t, tc.c, x, y, 2, 0.9)
		})
	}
	lin := &LogisticRegression{}
	if err := lin.Fit(x, y, 2); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := Accuracy(Predict(lin, x), y); acc > 0.7 {
		t.Fatalf("linear model should fail on rings, got accuracy %v", acc)
	}
}

func TestMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	x := tensor.New(n, 2)
	y := make([]int, n)
	centers := [][2]float64{{-3, 0}, {3, 0}, {0, 4}}
	for i := 0; i < n; i++ {
		c := i % 3
		y[i] = c
		x.Set(i, 0, rng.NormFloat64()*0.5+centers[c][0])
		x.Set(i, 1, rng.NormFloat64()*0.5+centers[c][1])
	}
	for _, tc := range []struct {
		name string
		c    Classifier
	}{
		{"decision_tree", &DecisionTree{}},
		{"random_forest", &RandomForest{Seed: 3}},
		{"logistic", &LogisticRegression{}},
		{"svm", &LinearSVM{Seed: 3}},
		{"mlp", &MLP{Seed: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkAccuracy(t, tc.c, x, y, 3, 0.93)
		})
	}
}

func TestFitErrors(t *testing.T) {
	for _, c := range []Classifier{
		&DecisionTree{}, &RandomForest{}, &LogisticRegression{}, &LinearSVM{}, &MLP{},
	} {
		if err := c.Fit(tensor.New(0, 2), nil, 2); err == nil {
			t.Fatalf("%T: expected error on empty data", c)
		}
	}
}

func TestAccuracyMetric(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1}, []int{1, 1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Fatalf("Accuracy(empty) = %v", got)
	}
}

func TestMacroF1(t *testing.T) {
	// Perfect predictions: F1 = 1.
	if got := MacroF1([]int{0, 1, 0, 1}, []int{0, 1, 0, 1}, 2); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
	// All predicted class 0 on a balanced set: F1_0 = 2/3, F1_1 = 0.
	got := MacroF1([]int{0, 0, 0, 0}, []int{0, 0, 1, 1}, 2)
	if math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("degenerate F1 = %v want 1/3", got)
	}
}

func TestBinaryAUC(t *testing.T) {
	// Perfectly ranked scores: AUC = 1.
	if got := BinaryAUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Reversed ranking: AUC = 0.
	if got := BinaryAUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}); got != 0 {
		t.Fatalf("reversed AUC = %v", got)
	}
	// Constant scores (all tied): AUC = 0.5.
	if got := BinaryAUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{0, 1, 0, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Single class: degenerate 0.5.
	if got := BinaryAUC([]float64{0.1, 0.2}, []int{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestMacroAUCMulticlass(t *testing.T) {
	proba := tensor.FromRows([][]float64{
		{0.8, 0.1, 0.1},
		{0.1, 0.8, 0.1},
		{0.1, 0.1, 0.8},
	})
	if got := MacroAUC(proba, []int{0, 1, 2}, 3); got != 1 {
		t.Fatalf("MacroAUC = %v", got)
	}
}

func TestScoresArithmetic(t *testing.T) {
	a := Scores{Accuracy: 0.9, F1: 0.8, AUC: 0.95}
	b := Scores{Accuracy: 0.85, F1: 0.9, AUC: 0.90}
	d := a.Sub(b).Abs()
	if math.Abs(d.Accuracy-0.05) > 1e-12 || math.Abs(d.F1-0.1) > 1e-12 || math.Abs(d.AUC-0.05) > 1e-12 {
		t.Fatalf("diff = %+v", d)
	}
	s := a.Add(b).Scale(0.5)
	if math.Abs(s.Accuracy-0.875) > 1e-12 {
		t.Fatalf("avg = %+v", s)
	}
}

func TestFeaturizer(t *testing.T) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 300, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	f, err := NewFeaturizer(d.Table, d.Target)
	if err != nil {
		t.Fatalf("NewFeaturizer: %v", err)
	}
	x, y, err := f.Transform(d.Table)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if x.Rows() != 300 || len(y) != 300 {
		t.Fatalf("transformed shape %dx%d labels %d", x.Rows(), x.Cols(), len(y))
	}
	if x.Cols() != f.Width() {
		t.Fatalf("width mismatch %d vs %d", x.Cols(), f.Width())
	}
	if f.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", f.NumClasses())
	}
	// Numeric columns must be standardized: overall column means ~0.
	means := x.MeanRows()
	// Locate the first numeric output column (age is column 0, numeric).
	if math.Abs(means.At(0, 0)) > 1e-9 {
		t.Fatalf("standardized mean = %v", means.At(0, 0))
	}
}

func TestFeaturizerErrors(t *testing.T) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 50, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if _, err := NewFeaturizer(d.Table, -1); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := NewFeaturizer(d.Table, 0); err == nil {
		t.Fatal("expected non-categorical-target error (age)")
	}
}

func TestUtilityPipelineRealVsReal(t *testing.T) {
	// Real vs real difference must be ~0: same data trains both sides.
	d, err := datasets.Generate("adult", datasets.Config{Rows: 600, Seed: 4})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := d.TrainTestSplit(rng, 0.25)
	if err != nil {
		t.Fatalf("TrainTestSplit: %v", err)
	}
	diff, err := UtilityDifference(train, train, test, d.Target, 1)
	if err != nil {
		t.Fatalf("UtilityDifference: %v", err)
	}
	if diff.Accuracy > 1e-9 || diff.F1 > 1e-9 || diff.AUC > 1e-9 {
		t.Fatalf("real-vs-real difference = %+v want 0", diff)
	}
}

func TestUtilityDetectsGarbageData(t *testing.T) {
	// A shuffled-label clone of the training data must measurably reduce
	// utility, otherwise the metric could not separate good from bad
	// synthetic data.
	d, err := datasets.Generate("adult", datasets.Config{Rows: 600, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	train, test, err := d.TrainTestSplit(rng, 0.25)
	if err != nil {
		t.Fatalf("TrainTestSplit: %v", err)
	}
	// Garbage: permute the target column, destroying feature-label links.
	garbage := train.GatherRows(seq(train.Rows()))
	perm := rng.Perm(train.Rows())
	col := garbage.Data.Col(d.Target)
	for i, p := range perm {
		garbage.Data.Set(i, d.Target, col[p])
	}
	diff, err := UtilityDifference(train, garbage, test, d.Target, 1)
	if err != nil {
		t.Fatalf("UtilityDifference: %v", err)
	}
	if diff.F1 < 0.02 && diff.AUC < 0.02 {
		t.Fatalf("garbage data difference = %+v, should be clearly nonzero", diff)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestEvaluateOnDataset(t *testing.T) {
	// End-to-end: classifiers trained on a real synthetic-stand-in dataset
	// should beat the majority-class baseline on F1.
	d, err := datasets.Generate("loan", datasets.Config{Rows: 800, Seed: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	train, test, err := d.TrainTestSplit(rng, 0.25)
	if err != nil {
		t.Fatalf("TrainTestSplit: %v", err)
	}
	per, avg, err := UtilityScores(train, test, d.Target, 1)
	if err != nil {
		t.Fatalf("UtilityScores: %v", err)
	}
	if len(per) != 5 {
		t.Fatalf("classifier count = %d want 5", len(per))
	}
	if avg.AUC < 0.6 {
		t.Fatalf("average AUC = %v, features should predict the target", avg.AUC)
	}
}
