// Package ml implements the machine-learning utility pipeline of the GTV
// evaluation (§4.2.1): five from-scratch classifiers (decision tree, random
// forest, linear SVM, multinomial logistic regression, MLP), the
// accuracy/F1/AUC metrics, and a featurizer that converts raw tables into
// classifier inputs the way the paper's sklearn pipeline does (one-hot
// categorical features, standardized numeric features).
package ml

import (
	"fmt"
	"math"

	"repro/internal/encoding"
	"repro/internal/tensor"
)

// Classifier is a multi-class probabilistic classifier.
type Classifier interface {
	// Fit trains on feature matrix x (rows = samples) with labels y in
	// [0, numClasses).
	//
	//shape: in(B,D) in(K)
	Fit(x *tensor.Dense, y []int, numClasses int) error
	// PredictProba returns a rows x numClasses matrix of class probabilities.
	//
	//shape: in(B,D) out(B,K)
	PredictProba(x *tensor.Dense) *tensor.Dense
}

// Predict returns argmax-class predictions from a classifier.
//
//shape: in(B,D)
func Predict(c Classifier, x *tensor.Dense) []int {
	return c.PredictProba(x).ArgmaxRows()
}

// Featurizer converts raw tables into numeric classifier features:
// categorical columns are one-hot encoded and numeric (continuous or mixed)
// columns are standardized with statistics learned from the fitted table.
type Featurizer struct {
	specs  []encoding.ColumnSpec
	target int
	means  []float64
	stds   []float64
	width  int
}

// NewFeaturizer learns featurization statistics from the table, excluding
// the target column.
func NewFeaturizer(t *encoding.Table, target int) (*Featurizer, error) {
	if target < 0 || target >= t.Cols() {
		return nil, fmt.Errorf("ml: target column %d out of range %d", target, t.Cols())
	}
	if t.Specs[target].Kind != encoding.KindCategorical {
		return nil, fmt.Errorf("ml: target column %q is not categorical", t.Specs[target].Name)
	}
	f := &Featurizer{
		specs:  t.Specs,
		target: target,
		means:  make([]float64, t.Cols()),
		stds:   make([]float64, t.Cols()),
	}
	for j := range t.Specs {
		if j == target {
			continue
		}
		switch t.Specs[j].Kind {
		case encoding.KindCategorical:
			f.width += t.Specs[j].NumCategories()
		default:
			col := t.Column(j)
			mu, sd := meanStd(col)
			if sd < 1e-9 {
				sd = 1
			}
			f.means[j], f.stds[j] = mu, sd
			f.width++
		}
	}
	return f, nil
}

// Width returns the feature-vector width.
func (f *Featurizer) Width() int { return f.width }

// Range is a contiguous block of feature columns produced by one raw column.
type Range struct {
	// Column is the raw column index (never the target).
	Column int
	// Start and Width locate the block in the feature matrix.
	Start, Width int
}

// ColumnRanges returns the feature-matrix block produced by each raw
// column, in raw column order (excluding the target). Shapley-value
// estimation uses this to knock out a raw column by perturbing its block.
func (f *Featurizer) ColumnRanges() []Range {
	out := make([]Range, 0, len(f.specs)-1)
	off := 0
	for j := range f.specs {
		if j == f.target {
			continue
		}
		w := 1
		if f.specs[j].Kind == encoding.KindCategorical {
			w = f.specs[j].NumCategories()
		}
		out = append(out, Range{Column: j, Start: off, Width: w})
		off += w
	}
	return out
}

// NumClasses returns the number of target classes.
func (f *Featurizer) NumClasses() int { return f.specs[f.target].NumCategories() }

// Transform converts a table (with the same schema as the fitted one) into
// a feature matrix and label vector.
//
//shape: out(B,D)
func (f *Featurizer) Transform(t *encoding.Table) (*tensor.Dense, []int, error) {
	if len(t.Specs) != len(f.specs) {
		return nil, nil, fmt.Errorf("ml: table has %d columns, featurizer fitted on %d", len(t.Specs), len(f.specs))
	}
	x := tensor.New(t.Rows(), f.width)
	y := make([]int, t.Rows())
	for i := 0; i < t.Rows(); i++ {
		src := t.Data.RawRow(i)
		dst := x.RawRow(i)
		off := 0
		for j := range f.specs {
			if j == f.target {
				cls := int(src[j])
				if cls < 0 || cls >= f.NumClasses() {
					return nil, nil, fmt.Errorf("ml: row %d target class %v out of range", i, src[j])
				}
				y[i] = cls
				continue
			}
			switch f.specs[j].Kind {
			case encoding.KindCategorical:
				k := int(src[j])
				n := f.specs[j].NumCategories()
				if k >= 0 && k < n {
					dst[off+k] = 1
				}
				off += n
			default:
				dst[off] = (src[j] - f.means[j]) / f.stds[j]
				off++
			}
		}
	}
	return x, y, nil
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	var mu float64
	for _, v := range xs {
		mu += v
	}
	mu /= float64(len(xs))
	var va float64
	for _, v := range xs {
		d := v - mu
		va += d * d
	}
	return mu, math.Sqrt(va / float64(len(xs)))
}
