// Package attack implements the honest-but-curious server adversary of the
// GTV paper (§3.1.5, Figs. 5-6): during training the server legitimately
// observes pairs of (conditional vector, matching row indices) from the
// contributing client. By accumulating these coordinates it can attempt to
// reconstruct the one-hot encoding of every client's categorical columns.
//
// The package reproduces both sides of the paper's argument:
//
//   - WITHOUT training-with-shuffling, the mapping from row index to row
//     content is fixed, so the server's accumulated table converges to the
//     clients' true categorical data (Fig. 5);
//   - WITH training-with-shuffling, the clients re-permute their rows with
//     a shared secret seed after every round, so the (CV, index) pairs the
//     server collects refer to different rows each round and the
//     reconstruction collapses to chance (Fig. 6).
package attack

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/condvec"
	"repro/internal/encoding"
	"repro/internal/gmm"
	"repro/internal/tensor"
	"repro/internal/vfl"
)

// CuriousServer is the semi-honest adversary: it records every
// (conditional vector, row indices) pair it sees during training and
// infers one categorical bit per observation.
type CuriousServer struct {
	cvWidth int
	// latest[row][bit] = round at which the server last saw `bit` set for
	// `row`. Reconstruction keeps, per span, the most recent observation.
	observations map[int]map[int]int
	round        int
}

// NewCuriousServer returns an adversary for a global CV of the given width.
func NewCuriousServer(cvWidth int) *CuriousServer {
	return &CuriousServer{
		cvWidth:      cvWidth,
		observations: make(map[int]map[int]int),
	}
}

// Observe records one training step's disclosure: the conditional vectors
// and the row indices the contributor matched to them. Exactly the
// information steps 4/18 of Algorithm 1 hand the server.
func (a *CuriousServer) Observe(cv *tensor.Dense, rows []int) error {
	if cv.Rows() != len(rows) {
		return fmt.Errorf("attack: %d CVs for %d row indices", cv.Rows(), len(rows))
	}
	if cv.Cols() != a.cvWidth {
		return fmt.Errorf("attack: CV width %d, adversary built for %d", cv.Cols(), a.cvWidth)
	}
	a.round++
	for i, row := range rows {
		for j := 0; j < a.cvWidth; j++ {
			// CV bits are exact 0/1 indicators, so compare as integers.
			if int(cv.At(i, j)) != 1 {
				continue
			}
			cell, ok := a.observations[row]
			if !ok {
				cell = make(map[int]int)
				a.observations[row] = cell
			}
			cell[j] = a.round
		}
	}
	return nil
}

// ObservedRows returns how many distinct row indices the server has seen.
func (a *CuriousServer) ObservedRows() int { return len(a.observations) }

// Reconstruction is the server's inferred table: for every observed row, a
// set of inferred CV bit positions (one per categorical span, keeping the
// most recent observation when a span was seen multiple times).
type Reconstruction struct {
	// Bits maps row index -> inferred CV bit positions.
	Bits map[int][]int
}

// Reconstruct builds the inference table from accumulated observations.
// spans describes the global CV layout (offset+width per categorical
// column) so that conflicting observations within one span resolve to the
// most recent.
func (a *CuriousServer) Reconstruct(spans []CVSpan) *Reconstruction {
	out := &Reconstruction{Bits: make(map[int][]int, len(a.observations))}
	for row, cell := range a.observations {
		var bits []int
		for _, sp := range spans {
			bestBit, bestRound := -1, -1
			for j := sp.Offset; j < sp.Offset+sp.Width; j++ {
				if r, ok := cell[j]; ok && r > bestRound {
					bestBit, bestRound = j, r
				}
			}
			if bestBit >= 0 {
				bits = append(bits, bestBit)
			}
		}
		out.Bits[row] = bits
	}
	return out
}

// CVSpan locates one categorical column inside the global CV.
type CVSpan struct {
	// Client and Column identify the owning party and its raw column.
	Client, Column int
	// Offset and Width locate the one-hot block in the global CV.
	Offset, Width int
}

// Accuracy scores a reconstruction against the clients' true tables at a
// given moment: the fraction of inferred bits that match the true category
// of the row they claim to describe. Random guessing scores roughly
// 1/avg(categories); a successful attack approaches 1.
func (r *Reconstruction) Accuracy(tables []*encoding.Table, spans []CVSpan) (float64, error) {
	var correct, total float64
	for row, bits := range r.Bits {
		for _, bit := range bits {
			sp, err := spanForBit(spans, bit)
			if err != nil {
				return 0, err
			}
			t := tables[sp.Client]
			if row >= t.Rows() {
				return 0, fmt.Errorf("attack: row %d beyond table with %d rows", row, t.Rows())
			}
			total++
			trueCat := int(t.Data.At(row, sp.Column))
			if bit-sp.Offset == trueCat {
				correct++
			}
		}
	}
	if total < 1 {
		return 0, errors.New("attack: no observations to score")
	}
	return correct / total, nil
}

func spanForBit(spans []CVSpan, bit int) (CVSpan, error) {
	for _, sp := range spans {
		if bit >= sp.Offset && bit < sp.Offset+sp.Width {
			return sp, nil
		}
	}
	return CVSpan{}, fmt.Errorf("attack: bit %d outside every span", bit)
}

// AblationResult compares the attack with and without
// training-with-shuffling.
type AblationResult struct {
	// WithoutShuffle is the reconstruction accuracy when clients never
	// re-permute rows (the paper's Fig. 5 scenario).
	WithoutShuffle float64
	// WithShuffle is the accuracy when clients shuffle with a shared seed
	// after every round (Fig. 6); the server scores against the final
	// arrangement, the best snapshot available to it.
	WithShuffle float64
	// ChanceLevel is the expected accuracy of random guessing given the
	// category cardinalities, for calibration.
	ChanceLevel float64
	// MajorityLevel is the accuracy of always guessing each column's
	// majority category — the strongest no-information baseline, which
	// matters for heavily imbalanced columns.
	MajorityLevel float64
	// RoundsObserved is how many training rounds the adversary watched.
	RoundsObserved int
}

// Config controls the shuffling ablation.
type Config struct {
	// Rounds is the number of observed training rounds.
	Rounds int
	// Batch is the CV batch per round.
	Batch int
	// Seed drives sampling; ShuffleSecret drives the clients' shared
	// shuffle (hidden from the adversary).
	Seed, ShuffleSecret int64
}

// RunShufflingAblation simulates the conditional-vector traffic of
// Algorithm 1 against the given client tables twice — with shuffling
// disabled and enabled — and reports the curious server's reconstruction
// accuracy in each case. Only the information the real protocol discloses
// (CV_p and idx_p of the contributing client) reaches the adversary.
func RunShufflingAblation(tables []*encoding.Table, cfg Config) (*AblationResult, error) {
	if len(tables) == 0 {
		return nil, errors.New("attack: no client tables")
	}
	if cfg.Rounds <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("attack: rounds %d and batch %d must be positive", cfg.Rounds, cfg.Batch)
	}

	buildSamplers := func() ([]*condvec.Sampler, error) {
		out := make([]*condvec.Sampler, len(tables))
		for i, t := range tables {
			tr, err := encoding.FitTransformer(rand.New(rand.NewSource(cfg.Seed)), t, gmm.DefaultConfig())
			if err != nil {
				return nil, err
			}
			s, err := condvec.NewSampler(t, tr)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	}
	baseSamplers, err := buildSamplers()
	if err != nil {
		return nil, err
	}
	spans, cvWidth := globalSpans(baseSamplers)
	if cvWidth == 0 {
		return nil, errors.New("attack: no categorical columns to attack")
	}

	run := func(shuffle bool) (float64, error) {
		// Fresh working copies so the two arms are independent.
		work := make([]*encoding.Table, len(tables))
		copy(work, tables)
		workSamplers, err := buildSamplers()
		if err != nil {
			return 0, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		coord := vfl.NewShuffleCoordinator(cfg.ShuffleSecret)
		adversary := NewCuriousServer(cvWidth)

		offsets := make([]int, len(work))
		off := 0
		for i, s := range workSamplers {
			offsets[i] = off
			off += s.Width()
		}
		for round := 0; round < cfg.Rounds; round++ {
			p := rng.Intn(len(work))
			if workSamplers[p].Width() == 0 {
				continue
			}
			batch, err := workSamplers[p].Sample(rng, cfg.Batch)
			if err != nil {
				return 0, err
			}
			global := tensor.New(cfg.Batch, cvWidth)
			for i := 0; i < cfg.Batch; i++ {
				copy(global.RawRow(i)[offsets[p]:offsets[p]+workSamplers[p].Width()], batch.CV.RawRow(i))
			}
			if err := adversary.Observe(global, batch.Rows); err != nil {
				return 0, err
			}
			if shuffle {
				seed := coord.SeedForRound(round)
				for i := range work {
					perm := rand.New(rand.NewSource(seed)).Perm(work[i].Rows())
					work[i] = work[i].ShuffleRows(perm)
					if err := workSamplers[i].Reindex(perm); err != nil {
						return 0, err
					}
				}
			}
		}
		return adversary.Reconstruct(spans).Accuracy(work, spans)
	}

	without, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("attack: no-shuffle arm: %w", err)
	}
	with, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("attack: shuffle arm: %w", err)
	}
	return &AblationResult{
		WithoutShuffle: without,
		WithShuffle:    with,
		ChanceLevel:    chanceLevel(spans),
		MajorityLevel:  majorityLevel(tables, spans),
		RoundsObserved: cfg.Rounds,
	}, nil
}

// majorityLevel is the mean, over attacked columns, of the majority
// category's frequency — the accuracy of the best constant guess.
func majorityLevel(tables []*encoding.Table, spans []CVSpan) float64 {
	if len(spans) == 0 {
		return 0
	}
	var total float64
	for _, sp := range spans {
		freq, err := encoding.CategoryFrequencies(tables[sp.Client], sp.Column)
		if err != nil {
			continue
		}
		best := 0.0
		for _, f := range freq {
			if f > best {
				best = f
			}
		}
		total += best
	}
	return total / float64(len(spans))
}

// globalSpans lays the clients' categorical spans into the global CV space.
func globalSpans(samplers []*condvec.Sampler) ([]CVSpan, int) {
	var spans []CVSpan
	off := 0
	for i, s := range samplers {
		for _, sp := range s.Spans() {
			spans = append(spans, CVSpan{
				Client: i,
				Column: sp.Column,
				Offset: off + s.SpanOffset(indexOfSpan(s, sp.Column)),
				Width:  sp.Width,
			})
		}
		off += s.Width()
	}
	return spans, off
}

func indexOfSpan(s *condvec.Sampler, column int) int {
	for i, sp := range s.Spans() {
		if sp.Column == column {
			return i
		}
	}
	return -1
}

// chanceLevel is the accuracy of guessing each span's category uniformly.
func chanceLevel(spans []CVSpan) float64 {
	if len(spans) == 0 {
		return 0
	}
	var total float64
	for _, sp := range spans {
		total += 1 / float64(sp.Width)
	}
	return total / float64(len(spans))
}
