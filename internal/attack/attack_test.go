package attack

import (
	"math/rand"
	"testing"

	"repro/internal/encoding"
	"repro/internal/tensor"
)

// attackTables builds two single-categorical-column clients, as in the
// paper's Fig. 5 example (Gender on client 1, Loan on client 2).
func attackTables(t *testing.T, rows int, seed int64) []*encoding.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	da := tensor.New(rows, 1)
	db := tensor.New(rows, 1)
	for i := 0; i < rows; i++ {
		da.Set(i, 0, float64(rng.Intn(2)))
		db.Set(i, 0, float64(rng.Intn(2)))
	}
	ta, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "gender", Kind: encoding.KindCategorical, Categories: []string{"M", "F"}},
	}, da)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	tb, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "loan", Kind: encoding.KindCategorical, Categories: []string{"Y", "N"}},
	}, db)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return []*encoding.Table{ta, tb}
}

func TestObserveValidation(t *testing.T) {
	a := NewCuriousServer(4)
	if err := a.Observe(tensor.New(2, 4), []int{1}); err == nil {
		t.Fatal("expected row-count mismatch error")
	}
	if err := a.Observe(tensor.New(1, 3), []int{1}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestReconstructKeepsLatestObservation(t *testing.T) {
	a := NewCuriousServer(2)
	spans := []CVSpan{{Client: 0, Column: 0, Offset: 0, Width: 2}}
	// Round 1: row 3 observed with bit 0; round 2: same row with bit 1.
	cv1 := tensor.New(1, 2)
	cv1.Set(0, 0, 1)
	if err := a.Observe(cv1, []int{3}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	cv2 := tensor.New(1, 2)
	cv2.Set(0, 1, 1)
	if err := a.Observe(cv2, []int{3}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	rec := a.Reconstruct(spans)
	bits := rec.Bits[3]
	if len(bits) != 1 || bits[0] != 1 {
		t.Fatalf("reconstructed bits = %v want [1]", bits)
	}
	if a.ObservedRows() != 1 {
		t.Fatalf("ObservedRows = %d", a.ObservedRows())
	}
}

func TestAccuracyPerfectAndWrong(t *testing.T) {
	// Fixed, non-palindromic column so reversing the rows demonstrably
	// breaks the reconstruction.
	da := tensor.FromRows([][]float64{{0}, {0}, {0}, {1}})
	ta, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "gender", Kind: encoding.KindCategorical, Categories: []string{"M", "F"}},
	}, da)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	tables := []*encoding.Table{ta, attackTables(t, 4, 1)[1]}
	spans := []CVSpan{{Client: 0, Column: 0, Offset: 0, Width: 2}}
	a := NewCuriousServer(2)
	// Observe the true category of every row of client 0.
	for i := 0; i < 4; i++ {
		cv := tensor.New(1, 2)
		cv.Set(0, int(tables[0].Data.At(i, 0)), 1)
		if err := a.Observe(cv, []int{i}); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	acc, err := a.Reconstruct(spans).Accuracy(tables, spans)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc != 1 {
		t.Fatalf("perfect-information accuracy = %v want 1", acc)
	}
	// Against a permuted table the same reconstruction degrades.
	shuffled := tables[0].ShuffleRows([]int{3, 2, 1, 0})
	acc2, err := a.Reconstruct(spans).Accuracy([]*encoding.Table{shuffled, tables[1]}, spans)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc2 >= 1 {
		t.Fatalf("reversed-table accuracy = %v, reconstruction should degrade", acc2)
	}
}

func TestAccuracyNoObservations(t *testing.T) {
	a := NewCuriousServer(2)
	spans := []CVSpan{{Client: 0, Column: 0, Offset: 0, Width: 2}}
	if _, err := a.Reconstruct(spans).Accuracy(attackTables(t, 2, 2), spans); err == nil {
		t.Fatal("expected no-observations error")
	}
}

func TestShufflingAblationDefeatsReconstruction(t *testing.T) {
	tables := attackTables(t, 120, 3)
	res, err := RunShufflingAblation(tables, Config{
		Rounds:        200,
		Batch:         16,
		Seed:          1,
		ShuffleSecret: 99,
	})
	if err != nil {
		t.Fatalf("RunShufflingAblation: %v", err)
	}
	// Without shuffling the server reconstructs nearly perfectly.
	if res.WithoutShuffle < 0.95 {
		t.Fatalf("no-shuffle reconstruction accuracy = %v, attack should succeed", res.WithoutShuffle)
	}
	// With shuffling it collapses towards the chance level (0.5 here).
	if res.WithShuffle > res.ChanceLevel+0.15 {
		t.Fatalf("shuffle reconstruction accuracy = %v vs chance %v: shuffling failed to protect",
			res.WithShuffle, res.ChanceLevel)
	}
	if res.RoundsObserved != 200 {
		t.Fatalf("RoundsObserved = %d", res.RoundsObserved)
	}
}

func TestShufflingAblationValidation(t *testing.T) {
	if _, err := RunShufflingAblation(nil, Config{Rounds: 1, Batch: 1}); err == nil {
		t.Fatal("expected no-tables error")
	}
	tables := attackTables(t, 10, 4)
	if _, err := RunShufflingAblation(tables, Config{}); err == nil {
		t.Fatal("expected config error")
	}
	// Tables without categorical columns cannot be attacked.
	rng := rand.New(rand.NewSource(5))
	cont, err := encoding.NewTable([]encoding.ColumnSpec{
		{Name: "x", Kind: encoding.KindContinuous},
	}, tensor.Randn(rng, 10, 1, 0, 1))
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if _, err := RunShufflingAblation([]*encoding.Table{cont}, Config{Rounds: 1, Batch: 1}); err == nil {
		t.Fatal("expected no-categorical error")
	}
}
