package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	ag "repro/internal/autograd"
	"repro/internal/tensor"
)

func TestLinearShapesAndForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	if l.In() != 4 || l.Out() != 3 {
		t.Fatalf("In/Out = %d/%d", l.In(), l.Out())
	}
	x := ag.Const(tensor.Randn(rng, 5, 4, 0, 1))
	y := l.Forward(x, true)
	if r, c := y.Shape(); r != 5 || c != 3 {
		t.Fatalf("forward shape = %dx%d", r, c)
	}
	// y = xW + b exactly.
	want := tensor.Add(tensor.MatMul(x.Data(), l.W.Data()), l.B.Data())
	if !y.Data().AllClose(want, 1e-12) {
		t.Fatal("linear forward mismatch")
	}
}

func TestLinearGradientDescentFitsLine(t *testing.T) {
	// A single linear layer should fit y = 2x + 1 almost exactly.
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 1, 1)
	opt := NewSGD(0.1, 0.9)
	x := tensor.RandUniform(rng, 64, 1, -1, 1)
	y := tensor.Add(x.Scale(2), tensor.Full(64, 1, 1))
	var loss float64
	for i := 0; i < 200; i++ {
		pred := l.Forward(ag.Const(x), true)
		lv := ag.MeanAll(ag.Square(ag.Sub(pred, ag.Const(y))))
		loss = lv.Item()
		opt.Step(l.Params(), Grads(lv, l))
	}
	if loss > 1e-4 {
		t.Fatalf("final loss %v, want < 1e-4", loss)
	}
	if math.Abs(l.W.Data().At(0, 0)-2) > 0.05 || math.Abs(l.B.Data().At(0, 0)-1) > 0.05 {
		t.Fatalf("fitted W=%v B=%v want 2, 1", l.W.Data().At(0, 0), l.B.Data().At(0, 0))
	}
}

func TestBatchNormTrainStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bn := NewBatchNorm(3)
	x := ag.Const(tensor.Randn(rng, 128, 3, 5, 2)) // mean 5, std 2
	y := bn.Forward(x, true)
	mean := y.Data().MeanRows()
	for j := 0; j < 3; j++ {
		if math.Abs(mean.At(0, j)) > 1e-9 {
			t.Fatalf("normalized column %d mean = %v", j, mean.At(0, j))
		}
	}
	// Column variance should be ~1.
	centered := tensor.Sub(y.Data(), mean)
	variance := tensor.Mul(centered, centered).MeanRows()
	for j := 0; j < 3; j++ {
		if math.Abs(variance.At(0, j)-1) > 1e-4 {
			t.Fatalf("normalized column %d variance = %v", j, variance.At(0, j))
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm(2)
	// Feed many training batches so running stats converge to (5, 4).
	for i := 0; i < 200; i++ {
		bn.Forward(ag.Const(tensor.Randn(rng, 256, 2, 5, 2)), true)
	}
	// In eval mode a batch at the training mean should map near zero.
	y := bn.Forward(ag.Const(tensor.Full(4, 2, 5)), false)
	for j := 0; j < 2; j++ {
		if math.Abs(y.Data().At(0, j)) > 0.2 {
			t.Fatalf("eval output at running mean = %v, want ~0", y.Data().At(0, j))
		}
	}
}

func TestBatchNormGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bn := NewBatchNorm(3)
	xd := tensor.Randn(rng, 6, 3, 0, 1)
	f := func() *ag.Value {
		// Re-create running-stat side effects deterministically per call.
		return ag.SumAll(ag.Square(bn.Forward(ag.Const(xd), true)))
	}
	y := f()
	grads := ag.Grad(y, bn.Gamma, bn.Beta)
	const h = 1e-5
	for vi, p := range []*ag.Value{bn.Gamma, bn.Beta} {
		for j := 0; j < 3; j++ {
			orig := p.Data().At(0, j)
			p.Data().Set(0, j, orig+h)
			fp := f().Item()
			p.Data().Set(0, j, orig-h)
			fm := f().Item()
			p.Data().Set(0, j, orig)
			num := (fp - fm) / (2 * h)
			if math.Abs(grads[vi].Data().At(0, j)-num) > 1e-3 {
				t.Fatalf("batchnorm param %d[%d] grad %v numeric %v", vi, j, grads[vi].Data().At(0, j), num)
			}
		}
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(rng, 0.5)
	x := ag.Const(tensor.Full(100, 100, 1))
	yTrain := d.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Data().Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			// kept and rescaled by 1/(1-0.5)
		default:
			t.Fatalf("dropout produced value %v, want 0 or 2", v)
		}
	}
	frac := float64(zeros) / 10000
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("dropout zero fraction = %v, want ~0.5", frac)
	}
	if yEval := d.Forward(x, false); !yEval.Data().Equal(x.Data()) {
		t.Fatal("dropout must be identity in eval mode")
	}
}

func TestResidualBlockConcatenates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rb := NewResidualBlock(rng, 4, 6)
	x := ag.Const(tensor.Randn(rng, 3, 4, 0, 1))
	y := rb.Forward(x, true)
	if _, c := y.Shape(); c != 10 {
		t.Fatalf("residual output width = %d want 10", c)
	}
	if rb.OutWidth() != 10 {
		t.Fatalf("OutWidth = %d want 10", rb.OutWidth())
	}
	// The trailing columns must be the unchanged input (skip connection).
	tail := y.Data().SliceCols(6, 10)
	if !tail.Equal(x.Data()) {
		t.Fatal("residual block must pass input through unchanged")
	}
}

func TestDiscBlockShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := NewDiscBlock(rng, 5, 7)
	x := ag.Const(tensor.Randn(rng, 4, 5, 0, 1))
	y := db.Forward(x, false)
	if r, c := y.Shape(); r != 4 || c != 7 {
		t.Fatalf("disc block output %dx%d want 4x7", r, c)
	}
}

func TestSequentialComposesAndCollectsParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := NewSequential(
		NewLinear(rng, 3, 8),
		ReLU{},
		NewLinear(rng, 8, 2),
	)
	if got := len(seq.Params()); got != 4 {
		t.Fatalf("params = %d want 4", got)
	}
	x := ag.Const(tensor.Randn(rng, 5, 3, 0, 1))
	if r, c := seq.Forward(x, true).Shape(); r != 5 || c != 2 {
		t.Fatalf("sequential output %dx%d", r, c)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||^2 with Adam.
	target := tensor.FromRows([][]float64{{1, -2, 3}})
	w := ag.Var(tensor.New(1, 3))
	opt := NewAdam(0.05)
	opt.WeightDecay = 0
	for i := 0; i < 500; i++ {
		loss := ag.SumAll(ag.Square(ag.Sub(w, ag.Const(target))))
		g := ag.Grad(loss, w)
		opt.Step([]*ag.Value{w}, g)
	}
	if !w.Data().AllClose(target, 1e-2) {
		t.Fatalf("Adam converged to %v want %v", w.Data(), target)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	target := tensor.FromRows([][]float64{{-4, 0.5}})
	w := ag.Var(tensor.New(1, 2))
	opt := NewSGD(0.05, 0.9)
	for i := 0; i < 300; i++ {
		loss := ag.SumAll(ag.Square(ag.Sub(w, ag.Const(target))))
		opt.Step([]*ag.Value{w}, ag.Grad(loss, w))
	}
	if !w.Data().AllClose(target, 1e-3) {
		t.Fatalf("SGD converged to %v want %v", w.Data(), target)
	}
}

func TestClipGradNorm(t *testing.T) {
	g1 := ag.Const(tensor.FromRows([][]float64{{3, 0}}))
	g2 := ag.Const(tensor.FromRows([][]float64{{0, 4}}))
	pre := ClipGradNorm([]*ag.Value{g1, g2}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v want 5", pre)
	}
	var total float64
	for _, g := range []*ag.Value{g1, g2} {
		n := g.Data().Norm()
		total += n * n
	}
	if math.Abs(math.Sqrt(total)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v want 1", math.Sqrt(total))
	}
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewSequential(NewLinear(rng, 3, 4), ReLU{}, NewLinear(rng, 4, 2))
	dst := NewSequential(NewLinear(rng, 3, 4), ReLU{}, NewLinear(rng, 4, 2))

	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatalf("SaveParams: %v", err)
	}
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatalf("LoadParams: %v", err)
	}
	x := ag.Const(tensor.Randn(rng, 5, 3, 0, 1))
	if !src.Forward(x, false).Data().AllClose(dst.Forward(x, false).Data(), 1e-12) {
		t.Fatal("loaded model differs from saved model")
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := NewLinear(rng, 3, 4)
	dst := NewLinear(rng, 3, 5)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatalf("SaveParams: %v", err)
	}
	if err := LoadParams(&buf, dst); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestCloneInto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := NewLinear(rng, 2, 2)
	dst := NewLinear(rng, 2, 2)
	if err := CloneInto(dst, src); err != nil {
		t.Fatalf("CloneInto: %v", err)
	}
	if !dst.W.Data().Equal(src.W.Data()) || !dst.B.Data().Equal(src.B.Data()) {
		t.Fatal("CloneInto did not copy parameters")
	}
}

func TestCountParams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewLinear(rng, 3, 4) // 3*4 weights + 4 bias
	if got := CountParams(l); got != 16 {
		t.Fatalf("CountParams = %d want 16", got)
	}
}

// TestXORWithMLP is an end-to-end sanity check that the full layer stack can
// learn a non-linear function.
func TestXORWithMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewSequential(
		NewLinear(rng, 2, 16),
		Tanh{},
		NewLinear(rng, 16, 1),
	)
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := tensor.FromRows([][]float64{{0}, {1}, {1}, {0}})
	opt := NewAdam(0.02)
	opt.WeightDecay = 0
	for i := 0; i < 2000; i++ {
		pred := ag.Sigmoid(net.Forward(ag.Const(x), true))
		loss := ag.MeanAll(ag.Square(ag.Sub(pred, ag.Const(y))))
		opt.Step(net.Params(), Grads(loss, net))
	}
	pred := ag.Sigmoid(net.Forward(ag.Const(x), false)).Data()
	for i := 0; i < 4; i++ {
		want := y.At(i, 0)
		got := pred.At(i, 0)
		if math.Abs(got-want) > 0.2 {
			t.Fatalf("XOR row %d: predicted %v want %v", i, got, want)
		}
	}
}
