package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	ag "repro/internal/autograd"
)

// paramState is the gob wire form of one parameter matrix.
type paramState struct {
	Rows, Cols int
	Data       []float64
}

// SaveParams writes the parameters of a layer to w in a stable order so they
// can be restored with LoadParams into an identically-constructed layer.
func SaveParams(w io.Writer, l Layer) error {
	params := l.Params()
	states := make([]paramState, len(params))
	for i, p := range params {
		r, c := p.Shape()
		data := make([]float64, len(p.Data().Data()))
		copy(data, p.Data().Data())
		states[i] = paramState{Rows: r, Cols: c, Data: data}
	}
	if err := gob.NewEncoder(w).Encode(states); err != nil {
		return fmt.Errorf("nn: encoding %d params: %w", len(states), err)
	}
	return nil
}

// LoadParams restores parameters saved by SaveParams into l, which must have
// been constructed with the same architecture.
func LoadParams(r io.Reader, l Layer) error {
	var states []paramState
	if err := gob.NewDecoder(r).Decode(&states); err != nil {
		return fmt.Errorf("nn: decoding params: %w", err)
	}
	params := l.Params()
	if len(states) != len(params) {
		return fmt.Errorf("nn: saved model has %d params, layer has %d", len(states), len(params))
	}
	for i, p := range params {
		r0, c0 := p.Shape()
		if states[i].Rows != r0 || states[i].Cols != c0 {
			return fmt.Errorf("nn: param %d shape %dx%d does not match saved %dx%d",
				i, r0, c0, states[i].Rows, states[i].Cols)
		}
		copy(p.Data().Data(), states[i].Data)
	}
	return nil
}

// CountParams returns the total number of scalar parameters in a layer.
func CountParams(l Layer) int {
	var n int
	for _, p := range l.Params() {
		n += p.Data().Size()
	}
	return n
}

// CloneInto copies the parameter values of src into dst, which must have the
// same architecture. It is used to synchronize model replicas in tests.
func CloneInto(dst, src Layer) error {
	sp, dp := src.Params(), dst.Params()
	if len(sp) != len(dp) {
		return fmt.Errorf("nn: cannot clone %d params into %d", len(sp), len(dp))
	}
	for i := range sp {
		sr, sc := sp[i].Shape()
		dr, dc := dp[i].Shape()
		if sr != dr || sc != dc {
			return fmt.Errorf("nn: param %d shape mismatch %dx%d vs %dx%d", i, sr, sc, dr, dc)
		}
		dp[i].Data().CopyFrom(sp[i].Data())
	}
	return nil
}

// Grads computes the gradients of loss with respect to every parameter of l.
//
//shape: in(1,1)
func Grads(loss *ag.Value, l Layer) []*ag.Value {
	return ag.Grad(loss, l.Params()...)
}
