// Package nn provides neural-network building blocks over the autograd
// engine: linear layers, batch normalization, activations, dropout, the
// CTGAN-style residual and discriminator blocks used by GTV, sequential
// composition, and the Adam and SGD optimizers.
//
// All layers implement the Layer interface. Randomness (weight
// initialization, dropout masks) is drawn from an explicit *rand.Rand so
// training runs are reproducible and there are no mutable globals.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	ag "repro/internal/autograd"
	"repro/internal/tensor"
)

// Layer is a differentiable module. Forward must be safe to call repeatedly;
// train toggles training-time behaviour (batch statistics, dropout masks).
type Layer interface {
	// Forward applies the layer to a batch (rows = samples).
	//
	//shape: in(B,Din) out(B,Dout)
	Forward(x *ag.Value, train bool) *ag.Value
	// Params returns the trainable parameters in a stable order.
	Params() []*ag.Value
}

// Linear is a fully-connected layer: y = x*W + b.
type Linear struct {
	//shape: (In,Out)
	W *ag.Value
	//shape: (1,Out)
	B *ag.Value
}

var _ Layer = (*Linear)(nil)

// NewLinear returns a Linear layer with Kaiming-uniform initialized weights,
// matching the PyTorch default used by CTGAN.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Linear shape %dx%d", in, out))
	}
	bound := 1 / math.Sqrt(float64(in))
	return &Linear{
		W: ag.Var(tensor.RandUniform(rng, in, out, -bound, bound)),
		B: ag.Var(tensor.RandUniform(rng, 1, out, -bound, bound)),
	}
}

// Forward implements Layer.
//
//shape: in(B,In) out(B,Out)
func (l *Linear) Forward(x *ag.Value, _ bool) *ag.Value {
	return ag.Affine(x, l.W, l.B)
}

// Params implements Layer.
func (l *Linear) Params() []*ag.Value { return []*ag.Value{l.W, l.B} }

// In returns the input width of the layer.
func (l *Linear) In() int { r, _ := l.W.Shape(); return r }

// Out returns the output width of the layer.
func (l *Linear) Out() int { _, c := l.W.Shape(); return c }

// BatchNorm normalizes each feature column to zero mean and unit variance
// over the batch, then applies a learned affine transform. At evaluation
// time it uses exponential running statistics gathered during training.
type BatchNorm struct {
	//shape: (1,Dim)
	Gamma *ag.Value
	//shape: (1,Dim)
	Beta *ag.Value

	runningMean *tensor.Dense
	runningVar  *tensor.Dense
	momentum    float64
	eps         float64
}

var _ Layer = (*BatchNorm)(nil)

// NewBatchNorm returns a BatchNorm over dim features with PyTorch-default
// momentum 0.1 and eps 1e-5.
func NewBatchNorm(dim int) *BatchNorm {
	return &BatchNorm{
		Gamma:       ag.Var(tensor.Full(1, dim, 1)),
		Beta:        ag.Var(tensor.New(1, dim)),
		runningMean: tensor.New(1, dim),
		runningVar:  tensor.Full(1, dim, 1),
		momentum:    0.1,
		eps:         1e-5,
	}
}

// Forward implements Layer.
//
//shape: in(B,Dim) out(B,Dim)
func (b *BatchNorm) Forward(x *ag.Value, train bool) *ag.Value {
	rows, _ := x.Shape()
	var mean, variance *ag.Value
	if train && rows > 1 {
		mean = ag.MeanRows(x)
		centered := ag.Sub(x, mean)
		variance = ag.MeanRows(ag.Square(centered))
		// Update running statistics outside the graph. PyTorch tracks the
		// unbiased variance in its running estimate.
		unbiased := variance.Data().Scale(float64(rows) / float64(rows-1))
		b.runningMean = tensor.Add(b.runningMean.Scale(1-b.momentum), mean.Data().Scale(b.momentum))
		b.runningVar = tensor.Add(b.runningVar.Scale(1-b.momentum), unbiased.Scale(b.momentum))
		norm := ag.Div(centered, ag.Sqrt(ag.AddScalar(variance, b.eps)))
		return ag.Add(ag.Mul(norm, b.Gamma), b.Beta)
	}
	mean = ag.Const(b.runningMean)
	variance = ag.Const(b.runningVar)
	norm := ag.Div(ag.Sub(x, mean), ag.Sqrt(ag.AddScalar(variance, b.eps)))
	return ag.Add(ag.Mul(norm, b.Gamma), b.Beta)
}

// Params implements Layer.
func (b *BatchNorm) Params() []*ag.Value { return []*ag.Value{b.Gamma, b.Beta} }

// ReLU is the rectified linear activation.
type ReLU struct{}

var _ Layer = ReLU{}

// Forward implements Layer.
//
//shape: in(B,D) out(B,D)
func (ReLU) Forward(x *ag.Value, _ bool) *ag.Value { return ag.ReLU(x) }

// Params implements Layer.
func (ReLU) Params() []*ag.Value { return nil }

// LeakyReLU is the leaky rectified linear activation.
type LeakyReLU struct {
	Slope float64
}

var _ Layer = LeakyReLU{}

// Forward implements Layer.
//
//shape: in(B,D) out(B,D)
func (l LeakyReLU) Forward(x *ag.Value, _ bool) *ag.Value { return ag.LeakyReLU(x, l.Slope) }

// Params implements Layer.
func (LeakyReLU) Params() []*ag.Value { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{}

var _ Layer = Tanh{}

// Forward implements Layer.
//
//shape: in(B,D) out(B,D)
func (Tanh) Forward(x *ag.Value, _ bool) *ag.Value { return ag.Tanh(x) }

// Params implements Layer.
func (Tanh) Params() []*ag.Value { return nil }

// Dropout zeroes each element with probability P during training and
// rescales the survivors by 1/(1-P) (inverted dropout). It is the identity
// at evaluation time.
type Dropout struct {
	P   float64
	rng *rand.Rand
}

var _ Layer = (*Dropout)(nil)

// NewDropout returns a Dropout layer drawing masks from rng.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
//
//shape: in(B,D) out(B,D)
func (d *Dropout) Forward(x *ag.Value, train bool) *ag.Value {
	if !train || d.P <= 0 {
		return x
	}
	rows, cols := x.Shape()
	keep := 1 - d.P
	mask := tensor.New(rows, cols)
	data := mask.Data()
	for i := range data {
		if d.rng.Float64() < keep {
			data[i] = 1 / keep
		}
	}
	return ag.Mul(x, ag.Const(mask))
}

// Params implements Layer.
func (d *Dropout) Params() []*ag.Value { return nil }

// Sequential chains layers in order.
type Sequential struct {
	Layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential returns a Sequential over the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer. Passing private data through a bottom model
// is the paper's sanctioned disclosure: only the learned activation, not
// the raw input, becomes visible downstream.
//
//privacy:sanitizer bottom-model forward activation
//shape: in(B,Din) out(B,Dout)
func (s *Sequential) Forward(x *ag.Value, train bool) *ag.Value {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Params implements Layer.
func (s *Sequential) Params() []*ag.Value {
	var out []*ag.Value
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ResidualBlock is the CTGAN generator block: the input is passed through
// Linear -> BatchNorm -> ReLU and the result is concatenated with the input,
// so the block output width is in+out.
type ResidualBlock struct {
	FC *Linear
	BN *BatchNorm
}

var _ Layer = (*ResidualBlock)(nil)

// NewResidualBlock returns a residual block mapping in features to in+out.
func NewResidualBlock(rng *rand.Rand, in, out int) *ResidualBlock {
	return &ResidualBlock{FC: NewLinear(rng, in, out), BN: NewBatchNorm(out)}
}

// Forward implements Layer. The output width is the FC width plus the
// input width (the skip concatenation), which only the caller's dims can
// name — hence the free Dout.
//
//shape: in(B,Din) out(B,Dout)
func (r *ResidualBlock) Forward(x *ag.Value, train bool) *ag.Value {
	h := ag.ReLU(r.BN.Forward(r.FC.Forward(x, train), train))
	return ag.ConcatCols(h, x)
}

// Params implements Layer.
func (r *ResidualBlock) Params() []*ag.Value {
	return append(r.FC.Params(), r.BN.Params()...)
}

// OutWidth returns the block's output width for the given input width.
func (r *ResidualBlock) OutWidth() int { return r.FC.Out() + r.FC.In() }

// DiscBlock is the CTGAN discriminator block: Linear -> LeakyReLU(0.2) ->
// Dropout(0.5).
type DiscBlock struct {
	FC   *Linear
	Act  LeakyReLU
	Drop *Dropout
}

var _ Layer = (*DiscBlock)(nil)

// NewDiscBlock returns a discriminator block mapping in features to out.
func NewDiscBlock(rng *rand.Rand, in, out int) *DiscBlock {
	return &DiscBlock{
		FC:   NewLinear(rng, in, out),
		Act:  LeakyReLU{Slope: 0.2},
		Drop: NewDropout(rng, 0.5),
	}
}

// Forward implements Layer.
//
//shape: in(B,Din) out(B,Dout)
func (d *DiscBlock) Forward(x *ag.Value, train bool) *ag.Value {
	return d.Drop.Forward(d.Act.Forward(d.FC.Forward(x, train), train), train)
}

// Params implements Layer.
func (d *DiscBlock) Params() []*ag.Value { return d.FC.Params() }
