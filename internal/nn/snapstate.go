package nn

// Checkpoint support: the optimizer trajectory state and the gtvsnap
// codec helpers for layers and Adam. Resume-at-round-k is only
// byte-identical when the Adam step count and both moment estimates come
// back exactly — the bias corrections 1-beta^t and the per-element
// moments feed every subsequent update — so the optimizer state is a
// first-class part of the snapshot format, serialized in Params() order
// (the same stable order SaveParams/LoadParams rely on).

import (
	"fmt"

	ag "repro/internal/autograd"
	"repro/internal/snap"
	"repro/internal/tensor"
)

// AdamState is the serializable trajectory state of one Adam optimizer,
// aligned index-for-index with a parameter list in Params() order.
// Entries of M and V are nil for parameters Step has not touched yet
// (lazily-created moments), and that nilness round-trips.
//
//snap:state
type AdamState struct {
	// T is the step count; the bias corrections depend on it.
	T int
	// M holds the first-moment estimates.
	M []*tensor.Dense
	// V holds the second-moment estimates.
	V []*tensor.Dense
}

// StateFor captures the optimizer's state for the given parameter list.
// The returned matrices alias the optimizer's own moment buffers: encode
// (or copy) them before the next Step.
func (a *Adam) StateFor(params []*ag.Value) AdamState {
	var st AdamState
	st.T = a.t
	st.M = make([]*tensor.Dense, len(params))
	st.V = make([]*tensor.Dense, len(params))
	for i, p := range params {
		st.M[i] = a.m[p]
		st.V[i] = a.v[p]
	}
	return st
}

// Restore reinstates a captured state for the given parameter list. The
// moment matrices in st pass into the optimizer's ownership.
func (a *Adam) Restore(params []*ag.Value, st AdamState) error {
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("nn: Adam state holds %d/%d moments for %d params", len(st.M), len(st.V), len(params))
	}
	m := make(map[*ag.Value]*tensor.Dense, len(params))
	v := make(map[*ag.Value]*tensor.Dense, len(params))
	for i, p := range params {
		if (st.M[i] == nil) != (st.V[i] == nil) {
			return fmt.Errorf("nn: Adam state param %d has mismatched moment presence", i)
		}
		if st.M[i] == nil {
			continue
		}
		pr, pc := p.Shape()
		if st.M[i].Rows() != pr || st.M[i].Cols() != pc || st.V[i].Rows() != pr || st.V[i].Cols() != pc {
			return fmt.Errorf("nn: Adam state param %d moments %dx%d do not match param %dx%d",
				i, st.M[i].Rows(), st.M[i].Cols(), pr, pc)
		}
		m[p] = st.M[i]
		v[p] = st.V[i]
	}
	a.t = st.T
	a.m = m
	a.v = v
	return nil
}

// EncodeAdamState appends an Adam state to a snapshot section: the step
// count, then per parameter the first and second moment (nil-tagged).
func EncodeAdamState(e *snap.Enc, st AdamState) {
	e.I64(int64(st.T))
	e.U32(uint32(len(st.M)))
	for i := range st.M {
		e.Matrix(st.M[i])
		e.Matrix(st.V[i])
	}
}

// DecodeAdamState decodes a state written by EncodeAdamState. Decoded
// moment matrices come from the tensor free list and pass to the caller
// (normally straight into Adam.Restore).
func DecodeAdamState(d *snap.Dec) AdamState {
	var st AdamState
	st.T = int(d.I64())
	n := int(d.U32())
	// Each entry is at least two nil tags; bounding keeps a corrupt count
	// from driving allocation.
	if n > d.Remaining()/2 {
		d.Failf("Adam moment count %d exceeds section", n)
		return st
	}
	st.M = make([]*tensor.Dense, n)
	st.V = make([]*tensor.Dense, n)
	for i := 0; i < n; i++ {
		st.M[i] = d.Matrix()
		st.V[i] = d.Matrix()
	}
	return st
}

// BatchNorms returns the BatchNorm layers reachable from l in the same
// stable depth-first order Params uses. Running statistics live here
// rather than in Params() — they are trajectory state, not trainable
// parameters — so the snapshot codec needs its own traversal.
func BatchNorms(l Layer) []*BatchNorm {
	switch v := l.(type) {
	case *BatchNorm:
		return []*BatchNorm{v}
	case *Sequential:
		var out []*BatchNorm
		for _, c := range v.Layers {
			out = append(out, BatchNorms(c)...)
		}
		return out
	case *ResidualBlock:
		return []*BatchNorm{v.BN}
	default:
		return nil
	}
}

// EncodeParams appends a layer's parameter matrices in Params() order,
// followed by the running statistics of every BatchNorm in BatchNorms()
// order. The running estimates feed evaluation-mode forward passes, so a
// resumed run synthesizes byte-identically only if they come back exactly.
func EncodeParams(e *snap.Enc, l Layer) {
	params := l.Params()
	e.U32(uint32(len(params)))
	for _, p := range params {
		e.Matrix(p.Data())
	}
	bns := BatchNorms(l)
	e.U32(uint32(len(bns)))
	for _, bn := range bns {
		e.Matrix(bn.runningMean)
		e.Matrix(bn.runningVar)
	}
}

// RestoreParams decodes matrices written by EncodeParams into the live
// parameter tensors and BatchNorm running estimates of l (which must have
// the same architecture), copying element values and handing the decode
// buffers back to the free list.
func RestoreParams(d *snap.Dec, l Layer) error {
	params := l.Params()
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(params) {
		return fmt.Errorf("nn: snapshot holds %d params, layer has %d", n, len(params))
	}
	for i, p := range params {
		m := d.Matrix()
		if m == nil {
			if err := d.Err(); err != nil {
				return err
			}
			return fmt.Errorf("nn: snapshot param %d is nil", i)
		}
		pr, pc := p.Shape()
		if m.Rows() != pr || m.Cols() != pc {
			err := fmt.Errorf("nn: snapshot param %d shape %dx%d does not match layer %dx%d",
				i, m.Rows(), m.Cols(), pr, pc)
			m.Release()
			return err
		}
		p.Data().CopyFrom(m)
		m.Release()
	}
	bns := BatchNorms(l)
	bn := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if bn != len(bns) {
		return fmt.Errorf("nn: snapshot holds %d batch-norm stats, layer has %d", bn, len(bns))
	}
	for i, b := range bns {
		if err := restoreNormStat(d, i, b.runningMean); err != nil {
			return err
		}
		if err := restoreNormStat(d, i, b.runningVar); err != nil {
			return err
		}
	}
	return nil
}

// restoreNormStat copies one decoded running-statistic row into dst.
func restoreNormStat(d *snap.Dec, i int, dst *tensor.Dense) error {
	m := d.Matrix()
	if m == nil {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("nn: snapshot batch-norm stat %d is nil", i)
	}
	if m.Rows() != dst.Rows() || m.Cols() != dst.Cols() {
		err := fmt.Errorf("nn: snapshot batch-norm stat %d shape %dx%d does not match layer %dx%d",
			i, m.Rows(), m.Cols(), dst.Rows(), dst.Cols())
		m.Release()
		return err
	}
	dst.CopyFrom(m)
	m.Release()
	return nil
}
