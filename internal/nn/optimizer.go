package nn

import (
	"math"

	ag "repro/internal/autograd"
	"repro/internal/tensor"
)

// Optimizer updates parameters in place given their gradients.
type Optimizer interface {
	// Step applies one update. params[i] is updated using grads[i]; the two
	// slices must be the same length and shape-aligned.
	Step(params, grads []*ag.Value)
}

// Adam implements the Adam optimizer with optional decoupled weight decay.
// CTGAN trains both networks with lr=2e-4, betas=(0.5, 0.9) and weight
// decay 1e-6, which NewAdam uses as defaults.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*ag.Value]*tensor.Dense
	v map[*ag.Value]*tensor.Dense
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with the CTGAN defaults at the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:          lr,
		Beta1:       0.5,
		Beta2:       0.9,
		Eps:         1e-8,
		WeightDecay: 1e-6,
		m:           make(map[*ag.Value]*tensor.Dense),
		v:           make(map[*ag.Value]*tensor.Dense),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*ag.Value) {
	if len(params) != len(grads) {
		panic("nn: Adam.Step params/grads length mismatch")
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i].Data()
		w := p.Data()
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(w.Rows(), w.Cols())
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.New(w.Rows(), w.Cols())
			a.v[p] = v
		}
		// Weight decay is folded into the element loop (gk = g + wd*w)
		// instead of materializing a decayed-gradient matrix per parameter.
		md, vd, gd, wd := m.Data(), v.Data(), g.Data(), w.Data()
		decay := a.WeightDecay
		for k := range wd {
			gk := gd[k] + decay*wd[k]
			md[k] = a.Beta1*md[k] + (1-a.Beta1)*gk
			vd[k] = a.Beta2*vd[k] + (1-a.Beta2)*gk*gk
			mhat := md[k] / bc1
			vhat := vd[k] / bc2
			wd[k] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// SGD implements stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*ag.Value]*tensor.Dense
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*ag.Value]*tensor.Dense)}
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*ag.Value) {
	if len(params) != len(grads) {
		panic("nn: SGD.Step params/grads length mismatch")
	}
	for i, p := range params {
		g := grads[i].Data()
		w := p.Data()
		if s.Momentum <= 0 {
			w.AxpyInPlace(-s.LR, g)
			continue
		}
		v, ok := s.vel[p]
		if !ok {
			v = tensor.New(w.Rows(), w.Cols())
			s.vel[p] = v
		}
		vd, gd, wd := v.Data(), g.Data(), w.Data()
		for k := range wd {
			vd[k] = s.Momentum*vd[k] + gd[k]
			wd[k] -= s.LR * vd[k]
		}
	}
}

// ClipGradNorm scales grads in place so their global L2 norm does not exceed
// maxNorm, and returns the pre-clip norm.
func ClipGradNorm(grads []*ag.Value, maxNorm float64) float64 {
	var total float64
	for _, g := range grads {
		n := g.Data().Norm()
		total += n * n
	}
	total = math.Sqrt(total)
	if total > maxNorm && total > 0 {
		scale := maxNorm / total
		for _, g := range grads {
			g.Data().ApplyInPlace(func(v float64) float64 { return v * scale })
		}
	}
	return total
}
