package encoding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gmm"
	"repro/internal/tensor"
)

// sampleTable builds a small mixed-schema table:
//
//	col 0 "gender": categorical {M, F}
//	col 1 "income": continuous, bimodal
//	col 2 "mortgage": mixed with special value 0
func sampleTable(t *testing.T, rng *rand.Rand, rows int) *Table {
	t.Helper()
	data := tensor.New(rows, 3)
	for i := 0; i < rows; i++ {
		row := data.RawRow(i)
		row[0] = float64(rng.Intn(2))
		if rng.Float64() < 0.5 {
			row[1] = rng.NormFloat64()*2 + 20
		} else {
			row[1] = rng.NormFloat64()*5 + 80
		}
		if rng.Float64() < 0.3 {
			row[2] = 0 // special: no mortgage
		} else {
			row[2] = rng.NormFloat64()*10 + 100
		}
	}
	tbl, err := NewTable([]ColumnSpec{
		{Name: "gender", Kind: KindCategorical, Categories: []string{"M", "F"}},
		{Name: "income", Kind: KindContinuous},
		{Name: "mortgage", Kind: KindMixed, SpecialValues: []float64{0}},
	}, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	tests := []struct {
		name  string
		specs []ColumnSpec
		data  *tensor.Dense
	}{
		{
			"width mismatch",
			[]ColumnSpec{{Name: "a", Kind: KindContinuous}},
			tensor.New(1, 2),
		},
		{
			"categorical without categories",
			[]ColumnSpec{{Name: "a", Kind: KindCategorical}},
			tensor.New(1, 1),
		},
		{
			"mixed without specials",
			[]ColumnSpec{{Name: "a", Kind: KindMixed}},
			tensor.New(1, 1),
		},
		{
			"category index out of range",
			[]ColumnSpec{{Name: "a", Kind: KindCategorical, Categories: []string{"x"}}},
			tensor.FromRows([][]float64{{3}}),
		},
		{
			"non-integer category",
			[]ColumnSpec{{Name: "a", Kind: KindCategorical, Categories: []string{"x", "y"}}},
			tensor.FromRows([][]float64{{0.5}}),
		},
		{
			"NaN cell",
			[]ColumnSpec{{Name: "a", Kind: KindContinuous}},
			tensor.FromRows([][]float64{{math.NaN()}}),
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTable(tc.specs, tc.data); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestTransformerLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := sampleTable(t, rng, 400)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	spans := tr.Spans()
	// gender: 1 one-hot span; income: scalar+one-hot; mortgage: scalar+one-hot.
	if len(spans) != 5 {
		t.Fatalf("span count = %d want 5", len(spans))
	}
	if spans[0].Type != SpanOneHot || !spans[0].Categorical || spans[0].Width != 2 {
		t.Fatalf("gender span = %+v", spans[0])
	}
	if spans[1].Type != SpanScalar || spans[1].Width != 1 {
		t.Fatalf("income alpha span = %+v", spans[1])
	}
	if spans[2].Type != SpanOneHot || spans[2].Categorical {
		t.Fatalf("income mode span should not be conditionable: %+v", spans[2])
	}
	// Spans must tile [0, Width) contiguously.
	off := 0
	for _, s := range spans {
		if s.Start != off {
			t.Fatalf("span %+v starts at %d want %d", s, s.Start, off)
		}
		off = s.End()
	}
	if off != tr.Width() {
		t.Fatalf("spans cover %d, width %d", off, tr.Width())
	}
	if got := len(tr.CategoricalSpans()); got != 1 {
		t.Fatalf("categorical spans = %d want 1", got)
	}
}

func TestTransformOneHotValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := sampleTable(t, rng, 300)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	enc, err := tr.Transform(rng, tbl)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if enc.Cols() != tr.Width() {
		t.Fatalf("encoded width %d want %d", enc.Cols(), tr.Width())
	}
	for i := 0; i < enc.Rows(); i++ {
		for _, s := range tr.Spans() {
			if s.Type != SpanOneHot {
				continue
			}
			ones, sum := 0, 0.0
			for j := s.Start; j < s.End(); j++ {
				v := enc.At(i, j)
				sum += v
				if v == 1 {
					ones++
				} else if v != 0 {
					t.Fatalf("row %d span %+v has non-binary value %v", i, s, v)
				}
			}
			if ones != 1 || sum != 1 {
				t.Fatalf("row %d span %+v has %d ones", i, s, ones)
			}
		}
	}
}

func TestTransformScalarRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := sampleTable(t, rng, 300)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	enc, err := tr.Transform(rng, tbl)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	for i := 0; i < enc.Rows(); i++ {
		for _, s := range tr.Spans() {
			if s.Type != SpanScalar {
				continue
			}
			if v := enc.At(i, s.Start); v < -1 || v > 1 {
				t.Fatalf("alpha %v outside [-1,1]", v)
			}
		}
	}
}

func TestRoundTripCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tbl := sampleTable(t, rng, 200)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	enc, err := tr.Transform(rng, tbl)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	back, err := tr.Inverse(enc)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	for i := 0; i < tbl.Rows(); i++ {
		if back.Data.At(i, 0) != tbl.Data.At(i, 0) {
			t.Fatalf("row %d categorical round trip %v -> %v", i, tbl.Data.At(i, 0), back.Data.At(i, 0))
		}
	}
}

func TestRoundTripContinuousAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := sampleTable(t, rng, 500)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	enc, err := tr.Transform(rng, tbl)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	back, err := tr.Inverse(enc)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	// Mode-specific normalization is lossy only via the [-1,1] clip; for
	// in-distribution data reconstruction should be near-exact.
	var worst float64
	for i := 0; i < tbl.Rows(); i++ {
		d := math.Abs(back.Data.At(i, 1) - tbl.Data.At(i, 1))
		if d > worst {
			worst = d
		}
	}
	if worst > 1.0 {
		t.Fatalf("continuous round-trip worst error %v", worst)
	}
}

func TestRoundTripMixedSpecials(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl := sampleTable(t, rng, 300)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	enc, err := tr.Transform(rng, tbl)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	back, err := tr.Inverse(enc)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	for i := 0; i < tbl.Rows(); i++ {
		orig := tbl.Data.At(i, 2)
		got := back.Data.At(i, 2)
		if orig == 0 {
			if got != 0 {
				t.Fatalf("row %d special value lost: %v", i, got)
			}
		} else if math.Abs(got-orig) > 5 {
			t.Fatalf("row %d mixed continuous error %v vs %v", i, got, orig)
		}
	}
}

func TestCategoryFrequencies(t *testing.T) {
	data := tensor.FromRows([][]float64{{0}, {0}, {1}, {0}})
	tbl, err := NewTable([]ColumnSpec{{Name: "c", Kind: KindCategorical, Categories: []string{"a", "b"}}}, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	freq, err := CategoryFrequencies(tbl, 0)
	if err != nil {
		t.Fatalf("CategoryFrequencies: %v", err)
	}
	if freq[0] != 0.75 || freq[1] != 0.25 {
		t.Fatalf("freq = %v", freq)
	}
	if _, err := CategoryFrequencies(tbl, 5); err == nil {
		t.Fatal("expected error for bad column")
	}
}

func TestVerticalSplitAndConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := sampleTable(t, rng, 50)
	parts, err := tbl.VerticalSplit([]int{0, 1, 0}, 2)
	if err != nil {
		t.Fatalf("VerticalSplit: %v", err)
	}
	if parts[0].Cols() != 2 || parts[1].Cols() != 1 {
		t.Fatalf("split widths = %d,%d", parts[0].Cols(), parts[1].Cols())
	}
	if parts[0].Specs[0].Name != "gender" || parts[0].Specs[1].Name != "mortgage" {
		t.Fatalf("party 0 columns = %v", []string{parts[0].Specs[0].Name, parts[0].Specs[1].Name})
	}
	// Row alignment must be preserved.
	for i := 0; i < tbl.Rows(); i++ {
		if parts[1].Data.At(i, 0) != tbl.Data.At(i, 1) {
			t.Fatalf("row %d misaligned after split", i)
		}
	}
	joined, err := ConcatColumns(parts...)
	if err != nil {
		t.Fatalf("ConcatColumns: %v", err)
	}
	if joined.Cols() != 3 {
		t.Fatalf("joined cols = %d", joined.Cols())
	}
}

func TestVerticalSplitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tbl := sampleTable(t, rng, 10)
	if _, err := tbl.VerticalSplit([]int{0, 0}, 2); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := tbl.VerticalSplit([]int{0, 0, 0}, 2); err == nil {
		t.Fatal("expected empty-party error")
	}
	if _, err := tbl.VerticalSplit([]int{0, 5, 1}, 2); err == nil {
		t.Fatal("expected invalid-party error")
	}
}

func TestShuffleRowsKeepsAlignmentAcrossParties(t *testing.T) {
	// The training-with-shuffling invariant: two parties sharing a seed
	// produce permutations that keep rows aligned.
	rng := rand.New(rand.NewSource(9))
	tbl := sampleTable(t, rng, 40)
	parts, err := tbl.VerticalSplit([]int{0, 1, 1}, 2)
	if err != nil {
		t.Fatalf("VerticalSplit: %v", err)
	}
	seed := int64(12345)
	permA := tensor.Permutation(rand.New(rand.NewSource(seed)), tbl.Rows())
	permB := tensor.Permutation(rand.New(rand.NewSource(seed)), tbl.Rows())
	a := parts[0].ShuffleRows(permA)
	b := parts[1].ShuffleRows(permB)
	joined, err := ConcatColumns(a, b)
	if err != nil {
		t.Fatalf("ConcatColumns: %v", err)
	}
	// Every joined row must equal some original row (alignment preserved).
	orig, err := ConcatColumns(parts...)
	if err != nil {
		t.Fatalf("ConcatColumns: %v", err)
	}
	for i := 0; i < joined.Rows(); i++ {
		src := permA[i]
		for j := 0; j < joined.Cols(); j++ {
			if joined.Data.At(i, j) != orig.Data.At(src, j) {
				t.Fatalf("row %d col %d broken alignment", i, j)
			}
		}
	}
}

// Property: for random categorical-only tables, Transform->Inverse is exact.
func TestQuickCategoricalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		k := 2 + rng.Intn(5)
		data := tensor.New(rows, 1)
		for i := 0; i < rows; i++ {
			data.Set(i, 0, float64(rng.Intn(k)))
		}
		cats := make([]string, k)
		for i := range cats {
			cats[i] = string(rune('a' + i))
		}
		tbl, err := NewTable([]ColumnSpec{{Name: "c", Kind: KindCategorical, Categories: cats}}, data)
		if err != nil {
			return false
		}
		tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
		if err != nil {
			return false
		}
		enc, err := tr.Transform(rng, tbl)
		if err != nil {
			return false
		}
		back, err := tr.Inverse(enc)
		if err != nil {
			return false
		}
		return back.Data.Equal(tbl.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectColumnsOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tbl := sampleTable(t, rng, 5)
	if _, err := tbl.SelectColumns([]int{0, 7}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestColumnByName(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := sampleTable(t, rng, 5)
	if got := tbl.ColumnByName("income"); got != 1 {
		t.Fatalf("ColumnByName(income) = %d", got)
	}
	if got := tbl.ColumnByName("nope"); got != -1 {
		t.Fatalf("ColumnByName(nope) = %d", got)
	}
}

func TestInverseWidthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	tbl := sampleTable(t, rng, 30)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	if _, err := tr.Inverse(tensor.New(5, tr.Width()+1)); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestTransformSchemaMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tbl := sampleTable(t, rng, 30)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	sub, err := tbl.SelectColumns([]int{0})
	if err != nil {
		t.Fatalf("SelectColumns: %v", err)
	}
	if _, err := tr.Transform(rng, sub); err == nil {
		t.Fatal("expected column-count mismatch error")
	}
}

func TestTransformInvalidCategory(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tbl := sampleTable(t, rng, 30)
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	// Corrupt a categorical cell after validation.
	bad := tbl.GatherRows([]int{0, 1, 2})
	bad.Data.Set(1, 0, 99)
	if _, err := tr.Transform(rng, bad); err == nil {
		t.Fatal("expected invalid-category error")
	}
}

func TestMixedColumnAllSpecialValues(t *testing.T) {
	// Degenerate mixed column: every value is special. Encoding must not
	// crash and the round trip must preserve the specials.
	rng := rand.New(rand.NewSource(23))
	data := tensor.New(20, 1)
	tbl, err := NewTable([]ColumnSpec{
		{Name: "m", Kind: KindMixed, SpecialValues: []float64{0}},
	}, data)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	tr, err := FitTransformer(rng, tbl, gmm.DefaultConfig())
	if err != nil {
		t.Fatalf("FitTransformer: %v", err)
	}
	enc, err := tr.Transform(rng, tbl)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	back, err := tr.Inverse(enc)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	for i := 0; i < 20; i++ {
		if back.Data.At(i, 0) != 0 {
			t.Fatalf("row %d special value lost", i)
		}
	}
}
